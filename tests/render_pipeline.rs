//! Integration of the real-data pipeline: disk block store → background
//! prefetcher → partially resident bricked renderer → analytics.

use std::sync::Arc;
use viz_appaware::core::{visible_blocks, BlockPool, ImportanceTable, Prefetcher};
use viz_appaware::geom::angle::deg_to_rad;
use viz_appaware::geom::{CameraPose, SphericalCoord, Vec3};
use viz_appaware::render::{
    frame_working_set, region_histogram, render, BrickedSource, FieldSource, RenderConfig,
    TransferFunction,
};
use viz_appaware::volume::{
    BlockId, BlockKey, BlockSource, BrickLayout, DatasetKind, DatasetSpec, DiskBlockStore,
    MemBlockStore,
};

fn pose(d: f64) -> CameraPose {
    let sc = SphericalCoord { radius: d, theta: deg_to_rad(80.0), phi: deg_to_rad(20.0) };
    CameraPose::new(sc.to_cartesian(), Vec3::ZERO, deg_to_rad(20.0))
}

#[test]
fn disk_store_prefetch_and_render_roundtrip() {
    let dir = std::env::temp_dir().join(format!("viz_it_render_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let spec = DatasetSpec::new(DatasetKind::Ball3d, 16, 9); // 64³
    let field = spec.materialize(0, 0.0);
    let layout = BrickLayout::with_target_blocks(field.dims, 128);
    let store = Arc::new(DiskBlockStore::open(&dir).unwrap());
    store.write_field(&layout, &field, 0, 0).unwrap();

    // Prefetch the frame's working set through the background worker.
    let pool = Arc::new(BlockPool::new());
    let pf = Prefetcher::spawn(store.clone() as Arc<dyn BlockSource>, pool.clone(), 64);
    let p = pose(2.5);
    let ws = frame_working_set(&p, &layout);
    assert!(!ws.is_empty());
    for &b in &ws {
        pf.request(BlockKey::scalar(b));
    }
    pf.sync();
    for &b in &ws {
        assert!(pool.contains(BlockKey::scalar(b)), "block {b} not prefetched");
    }

    // Rendering through the pool must match rendering the full field except
    // where non-resident blocks clip samples — compare against full render
    // only on the resident working set by loading everything.
    for b in layout.block_ids() {
        if !pool.contains(BlockKey::scalar(b)) {
            pf.request(BlockKey::scalar(b));
        }
    }
    pf.sync();
    pf.shutdown();

    let tf = TransferFunction::heat(field.min_max());
    let rc = RenderConfig::preview(48, 48);
    let lookup = |id: BlockId| pool.get(BlockKey::scalar(id));
    let bricked = BrickedSource::new(&layout, &lookup);
    let img_bricked = render(&bricked, &p, &tf, &rc);
    let full = FieldSource::new(&field, &layout);
    let img_full = render(&full, &p, &tf, &rc);

    // Pixel-level agreement (same data, same sampling path).
    let mut max_diff = 0.0f32;
    for y in 0..48 {
        for x in 0..48 {
            let a = img_bricked.get(x, y);
            let b = img_full.get(x, y);
            for k in 0..3 {
                max_diff = max_diff.max((a[k] - b[k]).abs());
            }
        }
    }
    assert!(max_diff < 1e-4, "bricked render diverged: {max_diff}");
    assert!(img_full.mean_luminance() > 0.01, "ball should be visible");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn partial_residency_changes_frame_and_empty_pool_is_background() {
    let spec = DatasetSpec::new(DatasetKind::Ball3d, 16, 9);
    let field = spec.materialize(0, 0.0);
    let layout = BrickLayout::with_target_blocks(field.dims, 128);
    let store = MemBlockStore::new();
    store.insert_field(&layout, &field, 0, 0);

    let p = pose(2.5);
    let tf = TransferFunction::heat(field.min_max());
    let rc = RenderConfig::preview(32, 32);

    // Load only half the working set.
    let ws = visible_blocks(&p, &layout);
    let pool = BlockPool::new();
    for &b in ws.iter().take(ws.len() / 2) {
        pool.insert(BlockKey::scalar(b), store.read_block(BlockKey::scalar(b)).unwrap());
    }
    let lookup_half = |id: BlockId| pool.get(BlockKey::scalar(id));
    let src_half = BrickedSource::new(&layout, &lookup_half);
    let img_half = render(&src_half, &p, &tf, &rc);

    // Then the full set.
    for &b in &ws {
        if !pool.contains(BlockKey::scalar(b)) {
            pool.insert(BlockKey::scalar(b), store.read_block(BlockKey::scalar(b)).unwrap());
        }
    }
    let lookup_all = |id: BlockId| pool.get(BlockKey::scalar(id));
    let src_all = BrickedSource::new(&layout, &lookup_all);
    let img_all = render(&src_all, &p, &tf, &rc);

    // Missing occluders can brighten or darken individual pixels (front-
    // to-back compositing), but the image must change, stay finite, and an
    // empty pool must render pure background.
    assert_ne!(img_half, img_all, "partial residency should alter the frame");
    let empty = BlockPool::new();
    let lookup_none = |id: BlockId| empty.get(BlockKey::scalar(id));
    let src_none = BrickedSource::new(&layout, &lookup_none);
    let img_none = render(&src_none, &p, &tf, &rc);
    assert_eq!(img_none.mean_luminance(), 0.0, "empty pool must render background only");
}

#[test]
fn importance_guides_which_blocks_matter_for_rendering() {
    // Blocks with zero entropy (constant, fully ambient) contribute nothing
    // to a render with a TF that maps the ambient value to transparent —
    // the physical basis of Observation 2.
    let spec = DatasetSpec::new(DatasetKind::Ball3d, 16, 9);
    let field = spec.materialize(0, 0.0);
    let layout = BrickLayout::with_target_blocks(field.dims, 128);
    let importance = ImportanceTable::from_field(&layout, &field, 64);

    let store = MemBlockStore::new();
    store.insert_field(&layout, &field, 0, 0);
    let p = pose(2.5);
    let tf = TransferFunction::heat(field.min_max());
    let rc = RenderConfig::preview(32, 32);

    // Render with every block vs. only blocks of entropy > 0.
    let pool_all = BlockPool::new();
    let pool_important = BlockPool::new();
    for b in layout.block_ids() {
        let data = store.read_block(BlockKey::scalar(b)).unwrap();
        pool_all.insert(BlockKey::scalar(b), data.clone());
        if importance.entropy(b) > 1e-9 {
            pool_important.insert(BlockKey::scalar(b), data);
        }
    }
    assert!(pool_important.len() < pool_all.len(), "some blocks must be ambient");

    let la = |id: BlockId| pool_all.get(BlockKey::scalar(id));
    let li = |id: BlockId| pool_important.get(BlockKey::scalar(id));
    let sa = BrickedSource::new(&layout, &la);
    let si = BrickedSource::new(&layout, &li);
    let img_a = render(&sa, &p, &tf, &rc);
    let img_i = render(&si, &p, &tf, &rc);
    let diff = (img_a.mean_luminance() - img_i.mean_luminance()).abs();
    assert!(diff < 0.02, "dropping zero-entropy blocks changed the image by {diff}");
}

#[test]
fn region_histogram_over_visible_blocks_matches_direct() {
    let spec = DatasetSpec::new(DatasetKind::LiftedMixFrac, 16, 4);
    let field = spec.materialize(0, 0.0);
    let layout = BrickLayout::with_target_blocks(field.dims, 64);
    let p = pose(2.2);
    let vis = visible_blocks(&p, &layout);
    let blocks: Vec<Vec<f32>> = vis.iter().map(|&b| field.extract_block(&layout, b)).collect();
    let slices: Vec<&[f32]> = blocks.iter().map(|b| b.as_slice()).collect();
    let (lo, hi) = field.min_max();
    let h = region_histogram(&slices, (lo, hi), 32);
    let expect: u64 = blocks.iter().map(|b| b.len() as u64).sum();
    assert_eq!(h.total, expect);
}

#[test]
fn lod_levels_degrade_image_quality_monotonically() {
    use viz_appaware::render::{psnr, FieldSource};
    use viz_appaware::volume::lod::{LodLevel, LodPyramid};

    let spec = DatasetSpec::new(DatasetKind::Ball3d, 16, 9);
    let field = spec.materialize(0, 0.0);
    let range = field.min_max();
    let dims = field.dims;
    let pyramid = LodPyramid::build(field, 3);
    let p = pose(2.5);
    let tf = TransferFunction::heat(range);
    let rc = RenderConfig::preview(64, 64);

    // Render each level upsampled back onto the full-resolution layout by
    // sampling the coarse field through a scaled layout.
    let mut images = Vec::new();
    for l in 0..pyramid.num_levels() {
        let level = pyramid.level(LodLevel(l as u8));
        let layout = BrickLayout::with_target_blocks(level.dims, 64.max(level.dims.count() / 512));
        let src = FieldSource::new(level, &layout);
        images.push(render(&src, &p, &tf, &rc));
    }
    let _ = dims;

    // PSNR against level 0 must be non-increasing with level.
    let mut prev = f64::INFINITY;
    for (l, img) in images.iter().enumerate().skip(1) {
        let q = psnr(&images[0], img);
        assert!(q <= prev + 1e-9, "level {l} PSNR {q} should not beat level {}", l - 1);
        assert!(q.is_finite(), "coarse level should differ from native");
        prev = q;
    }
}
