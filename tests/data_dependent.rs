//! Integration of the data-dependent machinery (§III-A): transfer-function
//! retuning re-ranks importance through the per-block histogram table,
//! culls blocks through opacity ranges, and redirects the session's
//! prefetch — without ever rescanning voxel data.

use viz_appaware::core::{
    run_session, AppAwareConfig, BlockHistogramTable, RadiusModel, RadiusRule, SamplingConfig,
    SessionConfig, Strategy, VisibleTable,
};
use viz_appaware::geom::angle::deg_to_rad;
use viz_appaware::geom::{CameraPath, ExplorationDomain, SphericalPath, Vec3};
use viz_appaware::render::{block_stats_for, contributing_working_set, Rgba, TransferFunction};
use viz_appaware::volume::{BrickLayout, DatasetKind, DatasetSpec, VolumeField};

fn setup() -> (VolumeField, BrickLayout, BlockHistogramTable) {
    let spec = DatasetSpec::new(DatasetKind::Ball3d, 16, 13); // 64³
    let field = spec.materialize(0, 0.0);
    let layout = BrickLayout::with_target_blocks(field.dims, 512);
    let table = BlockHistogramTable::from_field(&layout, &field, 64);
    (field, layout, table)
}

#[test]
fn tf_retune_redirects_the_whole_pipeline() {
    let (field, layout, htable) = setup();
    let (lo, hi) = field.min_max();
    let span = hi - lo;

    // Two transfer functions: one showing only the high-value core, one
    // only the low-value shell.
    let tf_high = TransferFunction::iso_peak(0.85, 0.1, Rgba::new(1.0, 0.5, 0.0, 1.0), (lo, hi));
    let tf_low = TransferFunction::iso_peak(0.15, 0.1, Rgba::new(0.0, 0.5, 1.0, 1.0), (lo, hi));

    // 1. Importance re-ranks instantly from histograms.
    let thr_high = lo + 0.75 * span;
    let thr_low_a = lo + 0.05 * span;
    let thr_low_b = lo + 0.25 * span;
    let imp_high = htable.weighted_importance(move |v| if v > thr_high { 1.0 } else { 0.0 });
    let imp_low =
        htable.weighted_importance(move |v| if v > thr_low_a && v < thr_low_b { 1.0 } else { 0.0 });
    assert_ne!(
        imp_high.ranked()[0].block,
        imp_low.ranked()[0].block,
        "different TFs must promote different blocks"
    );

    // 2. Opacity culling keeps different (overlapping) working sets.
    let stats = block_stats_for(&layout, &field, 64);
    let pose = viz_appaware::render::orbit_pose(80.0, 30.0, 2.5, deg_to_rad(20.0));
    let ws_high = contributing_working_set(&pose, &layout, &stats, &tf_high);
    let ws_low = contributing_working_set(&pose, &layout, &stats, &tf_low);
    assert!(!ws_high.is_empty() && !ws_low.is_empty());
    assert_ne!(ws_high, ws_low, "culling must follow the TF");

    // 3. The session prefetches under each importance table and behaves
    //    sanely with both.
    let view_angle = deg_to_rad(15.0);
    let sampling = SamplingConfig::paper_default(2.0, 3.2, view_angle).with_target_samples(512);
    let tv = VisibleTable::build(
        sampling,
        &layout,
        RadiusRule::Optimal(RadiusModel::new(0.25, view_angle)),
        None,
    );
    let dom = ExplorationDomain::new(Vec3::ZERO, 2.0, 3.2);
    let path = SphericalPath::new(dom, 2.5, 8.0, view_angle).generate(60);
    let cfg = SessionConfig::paper(0.5, layout.nominal_block_bytes());
    for imp in [&imp_high, &imp_low] {
        let sigma = imp.sigma_for_fraction(0.25);
        let r = run_session(
            &cfg,
            &layout,
            &Strategy::AppAware(AppAwareConfig::paper(sigma)),
            &path,
            Some((&tv, imp)),
        );
        assert!(r.miss_rate < 1.0);
        assert!(r.prefetch_s >= 0.0);
    }
}

#[test]
fn histogram_table_entropy_agrees_with_block_stats() {
    let (field, layout, htable) = setup();
    let stats = block_stats_for(&layout, &field, 64);
    let derived = htable.entropy_importance();
    for id in layout.block_ids() {
        assert!(
            (stats[id.index()].entropy - derived.entropy(id)).abs() < 1e-9,
            "block {id}: render-side and core-side entropies diverged"
        );
    }
}

#[test]
fn culled_blocks_have_zero_weighted_importance() {
    // Consistency between the two data-dependent filters: a block culled by
    // a binary opacity function must score zero under the same function as
    // an importance weight.
    let (field, layout, htable) = setup();
    let (lo, hi) = field.min_max();
    let cut = lo + 0.6 * (hi - lo);
    let tf = TransferFunction::new(
        vec![
            viz_appaware::render::ControlPoint { x: 0.0, color: Rgba::TRANSPARENT },
            viz_appaware::render::ControlPoint {
                x: (cut - lo) / (hi - lo),
                color: Rgba::TRANSPARENT,
            },
            viz_appaware::render::ControlPoint { x: 1.0, color: Rgba::new(1.0, 1.0, 1.0, 1.0) },
        ],
        (lo, hi),
    );
    let stats = block_stats_for(&layout, &field, 64);
    let imp = htable.weighted_importance(move |v| if v > cut { 1.0 } else { 0.0 });
    for id in layout.block_ids() {
        let culled = tf.max_opacity_in(stats[id.index()].min, stats[id.index()].max) <= 0.0;
        if culled {
            // Histogram bins are coarser than exact min/max, allow epsilon.
            assert!(
                imp.entropy(id) < 0.05,
                "block {id} culled by TF but importance {}",
                imp.entropy(id)
            );
        }
    }
}
