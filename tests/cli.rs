//! End-to-end tests of the `viz-appaware` CLI binary: the full
//! prep → run → analyze → render pipeline through a real process boundary
//! and a real on-disk block store.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_viz-appaware"))
}

fn tmp(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("viz_cli_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

#[test]
fn info_lists_all_datasets() {
    let out = bin().arg("info").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in ["3d_ball", "lifted_mix_frac", "lifted_rr", "climate"] {
        assert!(text.contains(name), "missing {name} in:\n{text}");
    }
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = bin().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn unknown_command_fails_cleanly() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn full_pipeline_prep_run_analyze_render() {
    let prep_dir = tmp("pipeline");
    // prep: tiny dataset so the test stays fast.
    let out = bin()
        .args([
            "prep",
            "--out",
            prep_dir.to_str().unwrap(),
            "--dataset",
            "3d_ball",
            "--scale",
            "16",
            "--blocks",
            "128",
            "--samples",
            "256",
            "--seed",
            "5",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "prep failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(prep_dir.join("manifest.json").exists());
    assert!(prep_dir.join("t_visible.bin").exists());
    assert!(prep_dir.join("t_important.bin").exists());
    assert!(prep_dir.join("blocks").read_dir().unwrap().count() > 0);

    // run: both a baseline and the app-aware strategy.
    for policy in ["lru", "opt"] {
        let out = bin()
            .args([
                "run",
                "--prep",
                prep_dir.to_str().unwrap(),
                "--policy",
                policy,
                "--steps",
                "50",
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "run --policy {policy} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains("miss rate"), "no miss rate in:\n{text}");
        assert!(text.contains("total time"));
    }

    // analyze: reuse-distance profile.
    let out = bin()
        .args(["analyze", "--prep", prep_dir.to_str().unwrap(), "--steps", "60"])
        .output()
        .unwrap();
    assert!(out.status.success(), "analyze failed: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("LRU miss curve"));
    assert!(text.contains("distinct blocks"));

    // render: two small frames.
    let frames_dir = tmp("frames");
    let out = bin()
        .args([
            "render",
            "--prep",
            prep_dir.to_str().unwrap(),
            "--frames",
            "2",
            "--size",
            "32",
            "--out",
            frames_dir.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "render failed: {}", String::from_utf8_lossy(&out.stderr));
    let f0 = frames_dir.join("frame_000.ppm");
    assert!(f0.exists());
    let bytes = std::fs::read(&f0).unwrap();
    assert!(bytes.starts_with(b"P6\n32 32\n255\n"));

    let _ = std::fs::remove_dir_all(&prep_dir);
    let _ = std::fs::remove_dir_all(&frames_dir);
}

#[test]
fn run_with_missing_prep_fails() {
    let out = bin().args(["run", "--prep", "/nonexistent/prep_dir"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));
}

#[test]
fn bad_flag_values_fail_cleanly() {
    let out =
        bin().args(["prep", "--out", "/tmp/x", "--dataset", "not_a_dataset"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown dataset"));
}
