//! End-to-end integration: dataset generation → block partition → tables →
//! Algorithm 1 session on the simulated hierarchy, spanning every crate.

use viz_appaware::cache::PolicyKind;
use viz_appaware::core::{
    run_session, AppAwareConfig, ImportanceTable, RadiusModel, RadiusRule, SamplingConfig,
    SessionConfig, Strategy, VisibleTable,
};
use viz_appaware::geom::angle::deg_to_rad;
use viz_appaware::geom::{CameraPath, CameraPose, ExplorationDomain, SphericalPath, Vec3};
use viz_appaware::volume::{BrickLayout, DatasetKind, DatasetSpec};

struct Setup {
    layout: BrickLayout,
    importance: ImportanceTable,
    t_visible: VisibleTable,
    sigma: f64,
    cfg: SessionConfig,
}

fn setup(kind: DatasetKind) -> Setup {
    let spec = DatasetSpec::new(kind, 16, 5);
    let field = spec.materialize(0, 0.0);
    let layout = BrickLayout::with_target_blocks(field.dims, 256);
    let importance = ImportanceTable::from_field(&layout, &field, 64);
    let view_angle = deg_to_rad(15.0);
    let sampling = SamplingConfig::paper_default(2.0, 3.2, view_angle).with_target_samples(720);
    let t_visible = VisibleTable::build(
        sampling,
        &layout,
        RadiusRule::Optimal(RadiusModel::new(0.25, view_angle)),
        Some((&importance, layout.num_blocks() / 4)),
    );
    let sigma = importance.sigma_for_fraction(0.5);
    let cfg = SessionConfig::paper(0.5, layout.nominal_block_bytes());
    Setup { layout, importance, t_visible, sigma, cfg }
}

fn orbit(steps: usize, deg: f64) -> Vec<CameraPose> {
    let dom = ExplorationDomain::new(Vec3::ZERO, 2.0, 3.2);
    SphericalPath::new(dom, 2.5, deg, deg_to_rad(15.0)).generate(steps)
}

#[test]
fn appaware_beats_fifo_and_lru_on_every_dataset() {
    for kind in DatasetKind::ALL {
        let s = setup(kind);
        let path = orbit(120, 5.0);
        let opt = run_session(
            &s.cfg,
            &s.layout,
            &Strategy::AppAware(AppAwareConfig::paper(s.sigma)),
            &path,
            Some((&s.t_visible, &s.importance)),
        );
        for base in [PolicyKind::Fifo, PolicyKind::Lru] {
            let b = run_session(&s.cfg, &s.layout, &Strategy::Baseline(base), &path, None);
            assert!(
                opt.miss_rate < b.miss_rate,
                "{:?}: OPT {:.4} !< {} {:.4}",
                kind,
                opt.miss_rate,
                base.label(),
                b.miss_rate
            );
        }
    }
}

#[test]
fn miss_rate_grows_with_view_step_for_all_strategies() {
    let s = setup(DatasetKind::Ball3d);
    for strategy in
        [Strategy::Baseline(PolicyKind::Lru), Strategy::AppAware(AppAwareConfig::paper(s.sigma))]
    {
        let mut prev = -1.0f64;
        for deg in [1.0, 10.0, 30.0] {
            let tables =
                matches!(strategy, Strategy::AppAware(_)).then_some((&s.t_visible, &s.importance));
            let r = run_session(&s.cfg, &s.layout, &strategy, &orbit(120, deg), tables);
            assert!(
                r.miss_rate >= prev - 0.02,
                "{}: miss rate dropped {prev} -> {} at {deg} deg",
                r.strategy,
                r.miss_rate
            );
            prev = r.miss_rate;
        }
    }
}

#[test]
fn bigger_cache_ratio_reduces_total_time_for_opt() {
    let s = setup(DatasetKind::Ball3d);
    let path = orbit(120, 12.0);
    let strategy = Strategy::AppAware(AppAwareConfig::paper(s.sigma));
    let half =
        run_session(&s.cfg, &s.layout, &strategy, &path, Some((&s.t_visible, &s.importance)));
    let cfg7 = SessionConfig::paper(0.7, s.layout.nominal_block_bytes());
    let seven =
        run_session(&cfg7, &s.layout, &strategy, &path, Some((&s.t_visible, &s.importance)));
    assert!(
        seven.total_s <= half.total_s + 1e-9,
        "ratio 0.7 ({:.3}s) should not be slower than 0.5 ({:.3}s)",
        seven.total_s,
        half.total_s
    );
    assert!(seven.miss_rate <= half.miss_rate + 1e-9);
}

#[test]
fn reports_are_serializable_and_consistent() {
    let s = setup(DatasetKind::LiftedMixFrac);
    let path = orbit(60, 8.0);
    let r = run_session(
        &s.cfg,
        &s.layout,
        &Strategy::AppAware(AppAwareConfig::paper(s.sigma)),
        &path,
        Some((&s.t_visible, &s.importance)),
    );
    // Serde roundtrip across crate boundaries.
    let json = serde_json::to_string(&r).unwrap();
    let back: viz_appaware::core::SessionReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back, r);
    // Aggregates equal per-step sums.
    let io: f64 = r.per_step.iter().map(|x| x.io_s).sum();
    let total: f64 = r.per_step.iter().map(|x| x.total_s).sum();
    assert!((io - r.io_s).abs() < 1e-9);
    assert!((total - r.total_s).abs() < 1e-9);
    assert_eq!(r.steps, 60);
}

#[test]
fn sessions_are_deterministic() {
    let s = setup(DatasetKind::Ball3d);
    let path = orbit(60, 7.0);
    let strategy = Strategy::AppAware(AppAwareConfig::paper(s.sigma));
    let a = run_session(&s.cfg, &s.layout, &strategy, &path, Some((&s.t_visible, &s.importance)));
    let b = run_session(&s.cfg, &s.layout, &strategy, &path, Some((&s.t_visible, &s.importance)));
    assert_eq!(a, b);
}
