//! Small-scale checks that the *shapes* of the paper's figures hold: who
//! wins, roughly by how much, and in which direction the sweeps move.
//! (EXPERIMENTS.md records the full-scale numbers.)

use viz_appaware::cache::PolicyKind;
use viz_appaware::core::{
    run_session, AppAwareConfig, ImportanceTable, Metric, RadiusModel, RadiusRule, SamplingConfig,
    SessionConfig, Strategy, VisibleTable,
};
use viz_appaware::geom::angle::deg_to_rad;
use viz_appaware::geom::{CameraPath, CameraPose, ExplorationDomain, RandomWalkPath, Vec3};
use viz_appaware::volume::{BrickLayout, DatasetKind, DatasetSpec};

const VIEW: f64 = 15.0;

struct Ctx {
    layout: BrickLayout,
    importance: ImportanceTable,
    sigma: f64,
    cfg: SessionConfig,
}

fn ctx(blocks: usize) -> Ctx {
    let spec = DatasetSpec::new(DatasetKind::Ball3d, 16, 3);
    let field = spec.materialize(0, 0.0);
    let layout = BrickLayout::with_target_blocks(field.dims, blocks);
    let importance = ImportanceTable::from_field(&layout, &field, 64);
    let sigma = importance.sigma_for_fraction(0.5);
    let cfg = SessionConfig::paper(0.5, layout.nominal_block_bytes());
    Ctx { layout, importance, sigma, cfg }
}

fn table(c: &Ctx, samples: usize, ratio: f64) -> VisibleTable {
    let cfgs =
        SamplingConfig::paper_default(2.0, 3.2, deg_to_rad(VIEW)).with_target_samples(samples);
    VisibleTable::build(
        cfgs,
        &c.layout,
        RadiusRule::Optimal(RadiusModel::new(ratio, deg_to_rad(VIEW))),
        Some((&c.importance, c.layout.num_blocks() / 4)),
    )
}

fn random_path(lo: f64, hi: f64, steps: usize, seed: u64) -> Vec<CameraPose> {
    let dom = ExplorationDomain::new(Vec3::ZERO, 2.0, 3.2);
    RandomWalkPath::new(dom, 2.5, lo, hi, deg_to_rad(VIEW), seed).generate(steps)
}

/// Fig. 7(a): more sampling positions → miss rate does not increase.
#[test]
fn fig7a_miss_rate_improves_with_samples() {
    let c = ctx(256);
    let path = random_path(10.0, 15.0, 100, 77);
    let strategy = Strategy::AppAware(AppAwareConfig::paper(c.sigma));
    let mut rates = Vec::new();
    for samples in [64usize, 512, 2048] {
        let tv = table(&c, samples, 0.25);
        let r = run_session(&c.cfg, &c.layout, &strategy, &path, Some((&tv, &c.importance)));
        rates.push(r.miss_rate);
    }
    assert!(rates[2] <= rates[0] + 0.02, "more samples should not hurt: {rates:?}");
}

/// Fig. 7(b): look-up overhead eventually outweighs the miss saving, so
/// I/O+lookup time is not monotone in table size (U-shape).
#[test]
fn fig7b_lookup_overhead_creates_u_shape() {
    let c = ctx(256);
    let path = random_path(10.0, 15.0, 100, 77);
    let strategy = Strategy::AppAware(AppAwareConfig::paper(c.sigma));
    // Exaggerate the per-entry lookup cost so the upswing is visible at
    // test scale (the paper sees it at 72k+ samples).
    let mut cfg = c.cfg.clone();
    cfg.lookup_s_per_entry = 2e-6;
    let mut times = Vec::new();
    for samples in [64usize, 512, 8192] {
        let tv = table(&c, samples, 0.25);
        let r = run_session(&cfg, &c.layout, &strategy, &path, Some((&tv, &c.importance)));
        times.push(Metric::IoPlusPrefetchSeconds.of(&r));
    }
    assert!(times[2] > times[1], "oversampling should pay a lookup penalty: {times:?}");
}

/// Fig. 12 shape: OPT beats FIFO and LRU by a clear margin on both path
/// families, and FIFO is the worst.
#[test]
fn fig12_opt_margin() {
    let c = ctx(512);
    let tv = table(&c, 2048, 0.25);
    for (lo, hi) in [(0.0, 5.0), (10.0, 15.0)] {
        let path = random_path(lo, hi, 150, 5);
        let opt = run_session(
            &c.cfg,
            &c.layout,
            &Strategy::AppAware(AppAwareConfig::paper(c.sigma)),
            &path,
            Some((&tv, &c.importance)),
        );
        let lru = run_session(&c.cfg, &c.layout, &Strategy::Baseline(PolicyKind::Lru), &path, None);
        let fifo =
            run_session(&c.cfg, &c.layout, &Strategy::Baseline(PolicyKind::Fifo), &path, None);
        // The figure's headline: OPT clearly below BOTH baselines. (The
        // paper's LRU <= FIFO ordering holds at full scale — see
        // EXPERIMENTS.md — but not universally at this test's miniature
        // scale, where LRU's looping pathology can surface, so we don't
        // assert it here.)
        let best_baseline = lru.miss_rate.min(fifo.miss_rate);
        assert!(
            opt.miss_rate < 0.8 * best_baseline,
            "{lo}-{hi}: OPT {:.4} not clearly below baselines (LRU {:.4}, FIFO {:.4})",
            opt.miss_rate,
            lru.miss_rate,
            fifo.miss_rate
        );
    }
}

/// Fig. 11 shape: the Eq. 6 optimal radius is at least as good as every
/// fixed radius the paper compares against.
#[test]
fn fig11_optimal_radius_wins() {
    let c = ctx(256);
    let path = random_path(5.0, 10.0, 120, 9);
    let strategy = Strategy::AppAware(AppAwareConfig::paper(c.sigma));
    let run = |rule: RadiusRule| {
        let cfgs =
            SamplingConfig::paper_default(2.0, 3.2, deg_to_rad(VIEW)).with_target_samples(512);
        let tv = VisibleTable::build(
            cfgs,
            &c.layout,
            rule,
            Some((&c.importance, c.layout.num_blocks() / 4)),
        );
        let r = run_session(&c.cfg, &c.layout, &strategy, &path, Some((&tv, &c.importance)));
        Metric::IoPlusPrefetchSeconds.of(&r)
    };
    let best = run(RadiusRule::Optimal(RadiusModel::new(0.25, deg_to_rad(VIEW))));
    for fixed in [0.1, 0.025] {
        let t = run(RadiusRule::Fixed(fixed));
        assert!(
            best <= t * 1.15,
            "optimal r ({best:.3}s) should be competitive with r={fixed} ({t:.3}s)"
        );
    }
}

/// Fig. 13 shape: OPT's total-time advantage over LRU shrinks (or flips) as
/// the per-step view change grows, and a larger cache ratio recovers it.
#[test]
fn fig13_total_time_crossover_and_cache_ratio() {
    let c = ctx(512);
    let tv = table(&c, 2048, 0.25);
    let gap = |ratio: f64, lo: f64, hi: f64| {
        let cfg = SessionConfig::paper(ratio, c.layout.nominal_block_bytes());
        let path = random_path(lo, hi, 150, 13);
        let opt = run_session(
            &cfg,
            &c.layout,
            &Strategy::AppAware(AppAwareConfig::paper(c.sigma)),
            &path,
            Some((&tv, &c.importance)),
        );
        let lru = run_session(&cfg, &c.layout, &Strategy::Baseline(PolicyKind::Lru), &path, None);
        (lru.total_s - opt.total_s) / lru.total_s
    };
    // Small view changes: OPT wins on total time at ratio 0.5.
    let small = gap(0.5, 0.0, 5.0);
    assert!(small > 0.0, "OPT should win at small steps (gap {small:.3})");
    // The relative advantage shrinks for large view changes…
    let large = gap(0.5, 25.0, 30.0);
    assert!(large < small, "advantage should shrink with step size ({small:.3} -> {large:.3})");
    // …and a larger cache ratio improves OPT's standing there.
    let large_big_cache = gap(0.7, 25.0, 30.0);
    assert!(
        large_big_cache >= large - 0.05,
        "bigger cache should help OPT ({large:.3} -> {large_big_cache:.3})"
    );
}
