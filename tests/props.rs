//! Cross-crate property tests: invariants that span the geometry, volume,
//! cache, and core layers together.

use proptest::prelude::*;
use viz_appaware::cache::PolicyKind;
use viz_appaware::core::{
    demand_trace, run_session, ImportanceTable, RadiusRule, ReuseProfile, SamplingConfig,
    SessionConfig, Strategy, VisibleTable,
};
use viz_appaware::geom::angle::deg_to_rad;
use viz_appaware::geom::{CameraPath, CameraPose, ExplorationDomain, SphericalPath, Vec3};
use viz_appaware::volume::{BrickLayout, Dims3};

fn small_layout(seed: usize) -> BrickLayout {
    // Vary the grid a little so the properties aren't layout-specific.
    let n = 32 + (seed % 3) * 16;
    BrickLayout::new(Dims3::cube(n), Dims3::cube(8))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The session's miss accounting always agrees with the reuse-distance
    /// profile's cold-miss floor: no policy can miss less than the number
    /// of distinct blocks touched.
    #[test]
    fn misses_never_undercut_compulsory(
        step_deg in 2.0f64..30.0,
        steps in 10usize..60,
        lseed in 0usize..3,
    ) {
        let layout = small_layout(lseed);
        let dom = ExplorationDomain::new(Vec3::ZERO, 2.0, 3.2);
        let poses = SphericalPath::new(dom, 2.5, step_deg, deg_to_rad(15.0)).generate(steps);
        let trace = demand_trace(&layout, &poses);
        let profile = ReuseProfile::compute(&trace);
        let cfg = SessionConfig::paper(0.5, layout.nominal_block_bytes());
        for kind in [PolicyKind::Fifo, PolicyKind::Lru, PolicyKind::Arc] {
            let r = run_session(&cfg, &layout, &Strategy::Baseline(kind), &poses, None);
            prop_assert!(r.misses >= profile.cold,
                "{}: {} misses < {} compulsory", kind.label(), r.misses, profile.cold);
            prop_assert_eq!(r.accesses, trace.len() as u64);
        }
    }

    /// LRU session misses match the trace profile exactly (two independent
    /// implementations of the same semantics).
    #[test]
    fn lru_session_agrees_with_mattson_profile(
        step_deg in 2.0f64..25.0,
        steps in 10usize..50,
    ) {
        let layout = small_layout(0);
        let dom = ExplorationDomain::new(Vec3::ZERO, 2.0, 3.2);
        let poses = SphericalPath::new(dom, 2.5, step_deg, deg_to_rad(15.0)).generate(steps);
        let trace = demand_trace(&layout, &poses);
        let profile = ReuseProfile::compute(&trace);
        let cfg = SessionConfig::paper(0.5, layout.nominal_block_bytes());
        let r = run_session(&cfg, &layout, &Strategy::Baseline(PolicyKind::Lru), &poses, None);
        // DRAM capacity = 25% of blocks (ratio 0.5 squared).
        let cap = ((layout.num_blocks() as f64 * 0.25).round() as usize).max(1);
        prop_assert_eq!(r.misses, profile.lru_misses(cap));
    }

    /// T_visible predictions are always subsets of the block universe and
    /// respect the importance cap.
    #[test]
    fn predictions_are_valid_and_capped(
        samples in 32usize..256,
        cap in 4usize..64,
        theta in 0.0f64..180.0,
        phi in 0.0f64..360.0,
        d in 1.0f64..6.0,
    ) {
        let layout = small_layout(1);
        let imp = ImportanceTable::from_entropies(
            (0..layout.num_blocks()).map(|i| (i % 13) as f64).collect(),
            32,
        );
        let cfg = SamplingConfig::paper_default(2.0, 3.2, deg_to_rad(15.0))
            .with_target_samples(samples);
        let tv = VisibleTable::build(cfg, &layout, RadiusRule::Fixed(0.15), Some((&imp, cap)));
        let pose = CameraPose::orbit(theta, phi, d, 15.0);
        let pred = tv.predict(&pose);
        prop_assert!(pred.len() <= cap);
        for b in pred {
            prop_assert!(b.index() < layout.num_blocks());
        }
    }

    /// Session wall-time decomposition: total >= io + render for the
    /// app-aware overlap rule never undercounts components.
    #[test]
    fn wall_time_decomposition_is_sound(
        step_deg in 2.0f64..20.0,
        steps in 5usize..40,
    ) {
        let layout = small_layout(2);
        let dom = ExplorationDomain::new(Vec3::ZERO, 2.0, 3.2);
        let poses = SphericalPath::new(dom, 2.5, step_deg, deg_to_rad(15.0)).generate(steps);
        let cfg = SessionConfig::paper(0.5, layout.nominal_block_bytes());
        let imp = ImportanceTable::from_entropies(vec![1.0; layout.num_blocks()], 32);
        let scfg = SamplingConfig::paper_default(2.0, 3.2, deg_to_rad(15.0))
            .with_target_samples(64);
        let tv = VisibleTable::build(scfg, &layout, RadiusRule::Fixed(0.15), None);
        let r = run_session(
            &cfg,
            &layout,
            &Strategy::AppAware(viz_appaware::core::AppAwareConfig::paper(0.0)),
            &poses,
            Some((&tv, &imp)),
        );
        // Overlap can hide prefetch but never render or I/O.
        prop_assert!(r.total_s + 1e-9 >= r.io_s + r.render_s);
        prop_assert!(r.total_s <= r.io_s + r.render_s + r.prefetch_s + r.lookup_s + 1e-9);
        for s in &r.per_step {
            prop_assert!(s.total_s + 1e-12 >= s.io_s + s.render_s);
        }
    }
}
