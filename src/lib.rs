//! Umbrella crate for the viz-appaware workspace.
//!
//! Re-exports the public APIs of every workspace crate so downstream users
//! can depend on a single package. See the individual crates for details:
//!
//! - [`geom`] — vector math, cameras, frusta, camera paths.
//! - [`volume`] — bricked volumes, synthetic datasets, entropy.
//! - [`cache`] — replacement policies and the tiered-hierarchy simulator.
//! - [`fetch`] — the concurrent block-fetch engine: sharded resident
//!   pool, priority scheduling, request coalescing, cancellation.
//! - [`core`] — the paper's contribution: `T_visible`, `T_important`,
//!   the radius model, and the Algorithm 1 session engine.
//! - [`render`] — CPU ray caster and data-dependent analytics.
//! - [`serve`] — multi-client block/frame server: CRC-framed wire
//!   protocol, session registry, deficit-round-robin fairness, load
//!   shedding, cross-session request coalescing.
//! - [`cluster`] — sharded multi-node serving: consistent-hash shard
//!   map (with an octree-subtree variant), node-to-node peer fetch over
//!   the same wire protocol, and a client-side owner router.
//! - [`telemetry`] — zero-dependency tracing: per-thread event rings,
//!   log-bucketed histograms, Chrome-trace / Prometheus / summary
//!   exporters.

pub use viz_cache as cache;
pub use viz_cluster as cluster;
pub use viz_core as core;
pub use viz_fetch as fetch;
pub use viz_geom as geom;
pub use viz_render as render;
pub use viz_serve as serve;
pub use viz_telemetry as telemetry;
pub use viz_volume as volume;
