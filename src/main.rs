//! `viz-appaware` command-line tool.
//!
//! Drives the full pipeline end to end:
//!
//! ```text
//! viz-appaware info                         # dataset inventory (Table I)
//! viz-appaware prep  --dataset 3d_ball --out /tmp/prep
//!                                           # pre-processing: generate blocks,
//!                                           # build + persist both tables
//! viz-appaware run   --prep /tmp/prep --policy opt --steps 400
//!                                           # replay a camera path on the
//!                                           # simulated hierarchy
//! viz-appaware render --prep /tmp/prep --frames 8 --out /tmp/frames
//!                                           # ray-cast frames from the disk store
//! ```

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use viz_appaware::cache::PolicyKind;
use viz_appaware::core::{
    load_tables, run_session, save_tables, AppAwareConfig, ImportanceTable, RadiusModel,
    RadiusRule, SamplingConfig, SessionConfig, Strategy, VisibleTable,
};
use viz_appaware::fetch::{BlockPool, FetchConfig, FetchEngine};
use viz_appaware::geom::angle::deg_to_rad;
use viz_appaware::geom::{CameraPath, ExplorationDomain, RandomWalkPath, SphericalPath, Vec3};
use viz_appaware::render::{
    frame_working_set, render, BrickedSource, RenderConfig, TransferFunction,
};
use viz_appaware::volume::{
    BlockKey, BlockSource, BrickLayout, DatasetKind, DatasetSpec, DiskBlockStore,
};

const VIEW_ANGLE_DEG: f64 = 15.0;
const D_MIN: f64 = 2.0;
const D_MAX: f64 = 3.2;

fn usage() -> &'static str {
    "usage: viz-appaware <command> [options]\n\
     \n\
     commands:\n\
       info                               print the Table I dataset inventory\n\
       prep   --out DIR [--dataset NAME] [--scale N] [--blocks N] [--samples N] [--seed N]\n\
              generate the dataset, write its block store, build and persist\n\
              T_visible and T_important\n\
       run    --prep DIR [--policy fifo|lru|clock|lfu|arc|2q|mru|lirs|slru|opt]\n\
              [--path spherical|random] [--deg X] [--steps N] [--ratio R]\n\
              replay an exploration on the simulated DRAM/SSD/HDD hierarchy\n\
       render --prep DIR [--frames N] [--size PX] --out DIR\n\
              ray-cast frames through the out-of-core pipeline (PPM output)\n\
       analyze --prep DIR [--deg X] [--steps N]\n\
              reuse-distance profile + importance summary of an exploration\n"
}

/// Tiny flag parser: `--key value` pairs after the subcommand.
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let k = &args[i];
        if !k.starts_with("--") {
            return Err(format!("unexpected argument {k:?}"));
        }
        let v = args.get(i + 1).ok_or_else(|| format!("missing value for {k}"))?;
        map.insert(k.trim_start_matches("--").to_string(), v.clone());
        i += 2;
    }
    Ok(map)
}

fn get<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        Some(v) => v.parse().map_err(|_| format!("invalid value for --{key}: {v:?}")),
        None => Ok(default),
    }
}

fn dataset_by_name(name: &str) -> Result<DatasetKind, String> {
    DatasetKind::ALL.into_iter().find(|k| k.name() == name).ok_or_else(|| {
        format!("unknown dataset {name:?} (try: 3d_ball, lifted_mix_frac, lifted_rr, climate)")
    })
}

fn policy_by_name(name: &str) -> Result<Option<PolicyKind>, String> {
    Ok(Some(match name {
        "fifo" => PolicyKind::Fifo,
        "lru" => PolicyKind::Lru,
        "clock" => PolicyKind::Clock,
        "lfu" => PolicyKind::Lfu,
        "arc" => PolicyKind::Arc,
        "2q" => PolicyKind::TwoQ,
        "mru" => PolicyKind::Mru,
        "lirs" => PolicyKind::Lirs,
        "slru" => PolicyKind::Slru,
        "opt" => return Ok(None), // the app-aware strategy
        other => return Err(format!("unknown policy {other:?}")),
    }))
}

/// Files written by `prep` beyond the tables themselves.
#[derive(serde::Serialize, serde::Deserialize)]
struct PrepManifest {
    dataset: String,
    scale: usize,
    seed: u64,
    volume: [usize; 3],
    block: [usize; 3],
    num_blocks: usize,
    value_range: (f32, f32),
    sigma: f64,
}

fn cmd_info() -> Result<(), String> {
    println!("{:<17} {:<16} {:>6} {:>10}", "name", "resolution", "#vars", "size");
    for kind in DatasetKind::ALL {
        let spec = DatasetSpec::new(kind, 1, 0);
        println!(
            "{:<17} {:<16} {:>6} {:>9.1}G",
            kind.name(),
            kind.full_resolution().to_string(),
            kind.num_variables(),
            spec.table1_bytes() as f64 / 1e9
        );
    }
    Ok(())
}

fn cmd_prep(flags: HashMap<String, String>) -> Result<(), String> {
    let out: String = flags.get("out").cloned().ok_or("--out is required")?;
    let kind = dataset_by_name(&get(&flags, "dataset", "3d_ball".to_string())?)?;
    let scale: usize = get(&flags, "scale", 8)?;
    let blocks: usize = get(&flags, "blocks", 1024)?;
    let samples: usize = get(&flags, "samples", 3240)?;
    let seed: u64 = get(&flags, "seed", 42)?;

    let out = PathBuf::from(out);
    let spec = DatasetSpec::new(kind, scale, seed);
    eprintln!("generating {} at {} ...", kind.name(), spec.resolution());
    let field = spec.materialize(0, 0.0);
    let layout = BrickLayout::with_target_blocks(field.dims, blocks);

    eprintln!("writing {} blocks to {} ...", layout.num_blocks(), out.join("blocks").display());
    let store = DiskBlockStore::open(out.join("blocks")).map_err(|e| e.to_string())?;
    store.write_field(&layout, &field, 0, 0).map_err(|e| e.to_string())?;

    eprintln!("building T_important ...");
    let importance = ImportanceTable::from_field(&layout, &field, 64);
    let sigma = importance.sigma_for_fraction(0.5);

    eprintln!("building T_visible ({samples} samples) ...");
    let view_angle = deg_to_rad(VIEW_ANGLE_DEG);
    let cfg = SamplingConfig::paper_default(D_MIN, D_MAX, view_angle).with_target_samples(samples);
    let t_visible = VisibleTable::build(
        cfg,
        &layout,
        RadiusRule::Optimal(RadiusModel::new(0.25, view_angle)),
        Some((&importance, layout.num_blocks() / 4)),
    );

    save_tables(&out, &t_visible, &importance).map_err(|e| e.to_string())?;
    let manifest = PrepManifest {
        dataset: kind.name().to_string(),
        scale,
        seed,
        volume: [layout.volume.nx, layout.volume.ny, layout.volume.nz],
        block: [layout.block.nx, layout.block.ny, layout.block.nz],
        num_blocks: layout.num_blocks(),
        value_range: field.min_max(),
        sigma,
    };
    std::fs::write(
        out.join("manifest.json"),
        serde_json::to_vec_pretty(&manifest).map_err(|e| e.to_string())?,
    )
    .map_err(|e| e.to_string())?;
    println!(
        "prep complete: {} blocks, {} T_visible entries, sigma = {:.3} -> {}",
        layout.num_blocks(),
        t_visible.len(),
        sigma,
        out.display()
    );
    Ok(())
}

fn load_prep(
    dir: &str,
) -> Result<(PrepManifest, BrickLayout, VisibleTable, ImportanceTable), String> {
    let dir = PathBuf::from(dir);
    let manifest: PrepManifest = serde_json::from_slice(
        &std::fs::read(dir.join("manifest.json")).map_err(|e| format!("missing manifest: {e}"))?,
    )
    .map_err(|e| e.to_string())?;
    let layout = BrickLayout::new(
        viz_appaware::volume::Dims3::new(
            manifest.volume[0],
            manifest.volume[1],
            manifest.volume[2],
        ),
        viz_appaware::volume::Dims3::new(manifest.block[0], manifest.block[1], manifest.block[2]),
    );
    let (tv, ti) = load_tables(&dir).map_err(|e| e.to_string())?;
    Ok((manifest, layout, tv, ti))
}

fn cmd_run(flags: HashMap<String, String>) -> Result<(), String> {
    let prep: String = flags.get("prep").cloned().ok_or("--prep is required")?;
    let steps: usize = get(&flags, "steps", 400)?;
    let deg: f64 = get(&flags, "deg", 5.0)?;
    let ratio: f64 = get(&flags, "ratio", 0.5)?;
    let seed: u64 = get(&flags, "seed", 7)?;
    let policy = policy_by_name(&get(&flags, "policy", "opt".to_string())?)?;
    let path_kind: String = get(&flags, "path", "spherical".to_string())?;

    let (manifest, layout, tv, ti) = load_prep(&prep)?;
    let view_angle = deg_to_rad(VIEW_ANGLE_DEG);
    let domain = ExplorationDomain::new(Vec3::ZERO, D_MIN, D_MAX);
    let poses = match path_kind.as_str() {
        "spherical" => SphericalPath::new(domain, 2.5, deg, view_angle)
            .with_precession(deg * 0.2)
            .generate(steps),
        "random" => {
            RandomWalkPath::new(domain, 2.5, deg.max(0.5) - 0.5, deg + 0.5, view_angle, seed)
                .generate(steps)
        }
        other => return Err(format!("unknown path kind {other:?}")),
    };

    let strategy = match policy {
        Some(k) => Strategy::Baseline(k),
        None => Strategy::AppAware(AppAwareConfig::paper(manifest.sigma)),
    };
    let cfg = SessionConfig::paper(ratio, layout.nominal_block_bytes());
    let tables = matches!(strategy, Strategy::AppAware(_)).then_some((&tv, &ti));
    let r = run_session(&cfg, &layout, &strategy, &poses, tables);
    println!(
        "{} on {} ({} blocks), {} steps of {}:",
        r.strategy,
        manifest.dataset,
        layout.num_blocks(),
        steps,
        path_kind
    );
    println!("  miss rate     {:>10.4}", r.miss_rate);
    println!("  I/O time      {:>10.3} s", r.io_s);
    println!("  prefetch time {:>10.3} s", r.prefetch_s);
    println!("  render time   {:>10.3} s", r.render_s);
    println!("  total time    {:>10.3} s", r.total_s);
    Ok(())
}

fn cmd_render(flags: HashMap<String, String>) -> Result<(), String> {
    let prep: String = flags.get("prep").cloned().ok_or("--prep is required")?;
    let out: String = flags.get("out").cloned().ok_or("--out is required")?;
    let frames: usize = get(&flags, "frames", 8)?;
    let size: usize = get(&flags, "size", 256)?;

    let (manifest, layout, tv, ti) = load_prep(&prep)?;
    let store: Arc<dyn BlockSource> = Arc::new(
        DiskBlockStore::open(PathBuf::from(&prep).join("blocks")).map_err(|e| e.to_string())?,
    );
    let out = PathBuf::from(out);
    std::fs::create_dir_all(&out).map_err(|e| e.to_string())?;

    let pool = Arc::new(BlockPool::new());
    let engine = FetchEngine::spawn(
        store.clone(),
        pool.clone(),
        FetchConfig { workers: 4, queue_cap: 1024, ..FetchConfig::default() },
    );
    for b in ti.above_threshold(manifest.sigma).take(layout.num_blocks() / 4) {
        engine.prefetch(BlockKey::scalar(b), ti.entropy(b));
    }
    engine.sync();

    let view_angle = deg_to_rad(VIEW_ANGLE_DEG);
    let domain = ExplorationDomain::new(Vec3::ZERO, D_MIN, D_MAX);
    let poses = SphericalPath::new(domain, 2.4, 360.0 / frames as f64, view_angle).generate(frames);
    let tf = TransferFunction::heat(manifest.value_range);
    let rc = RenderConfig::preview(size, size);

    for (i, pose) in poses.iter().enumerate() {
        // The camera moved: cancel unstarted prefetches queued for the
        // previous frame's prediction before issuing this frame's work.
        engine.bump_generation();
        for b in frame_working_set(pose, &layout) {
            let key = BlockKey::scalar(b);
            if !pool.contains(key) {
                // Demand read: outranks queued prefetches and coalesces
                // with an in-flight read of the same block.
                engine.get(key).map_err(|e| e.message)?;
            }
        }
        for &b in tv.predict(pose) {
            let e = ti.entropy(b);
            if e > manifest.sigma {
                engine.prefetch(BlockKey::scalar(b), e);
            }
        }
        let lookup = |id: viz_appaware::volume::BlockId| pool.get(BlockKey::scalar(id));
        let src = BrickedSource::new(&layout, &lookup);
        let img = render(&src, pose, &tf, &rc);
        let path = out.join(format!("frame_{i:03}.ppm"));
        img.save_ppm(&path).map_err(|e| e.to_string())?;
        println!("wrote {}", path.display());
    }
    let m = engine.shutdown();
    println!(
        "done ({} blocks fetched: {} prefetch / {} demand; {} coalesced, {} cancelled)",
        m.completed, m.prefetch_completed, m.demand_completed, m.coalesced, m.cancelled
    );
    Ok(())
}

fn cmd_analyze(flags: HashMap<String, String>) -> Result<(), String> {
    use viz_appaware::core::{demand_trace, ReuseProfile};
    let prep: String = flags.get("prep").cloned().ok_or("--prep is required")?;
    let deg: f64 = get(&flags, "deg", 5.0)?;
    let steps: usize = get(&flags, "steps", 400)?;
    let (manifest, layout, _tv, ti) = load_prep(&prep)?;

    let view_angle = deg_to_rad(VIEW_ANGLE_DEG);
    let domain = ExplorationDomain::new(Vec3::ZERO, D_MIN, D_MAX);
    let poses =
        SphericalPath::new(domain, 2.5, deg, view_angle).with_precession(deg * 0.2).generate(steps);
    let trace = demand_trace(&layout, &poses);
    let profile = ReuseProfile::compute(&trace);

    println!(
        "{} ({} blocks): {deg} deg spherical path, {steps} steps",
        manifest.dataset,
        layout.num_blocks()
    );
    println!(
        "trace: {} accesses, {} distinct blocks, mean reuse distance {:.1}",
        profile.total,
        profile.cold,
        profile.mean_distance().unwrap_or(0.0)
    );
    println!(
        "
LRU miss curve (cache size as a fraction of blocks):"
    );
    for f in [0.05, 0.1, 0.2, 0.25, 0.35, 0.5, 0.75, 1.0] {
        let cap = ((layout.num_blocks() as f64 * f).round() as usize).max(1);
        println!("  {f:>5.2}  ->  {:.4}", profile.lru_miss_rate(cap));
    }
    if let Some(cap) = profile.capacity_for_miss_rate(0.1, layout.num_blocks()) {
        println!(
            "
smallest cache for <=10% misses: {cap} blocks ({:.0}% of the dataset)",
            100.0 * cap as f64 / layout.num_blocks() as f64
        );
    }
    println!(
        "
importance (T_important): sigma(50%) = {:.3} bits;",
        manifest.sigma
    );
    println!(
        "top 5 blocks by entropy: {}",
        ti.ranked()
            .iter()
            .take(5)
            .map(|e| format!("{}({:.2})", e.block, e.entropy))
            .collect::<Vec<_>>()
            .join(", ")
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprint!("{}", usage());
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "info" => cmd_info(),
        "prep" | "run" | "render" | "analyze" => match parse_flags(&args[1..]) {
            Ok(flags) => match cmd.as_str() {
                "prep" => cmd_prep(flags),
                "run" => cmd_run(flags),
                "analyze" => cmd_analyze(flags),
                _ => cmd_render(flags),
            },
            Err(e) => Err(e),
        },
        "--help" | "-h" | "help" => {
            print!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
