//! Out-of-core exploration of the combustion dataset with *real* data
//! movement: blocks live in an on-disk store, the `viz-fetch` engine pulls
//! predicted blocks into a sharded resident pool with a 4-worker pool
//! (Algorithm 1's overlap, as actual threads) while the CPU ray caster
//! renders, and frames are written as PPM images.
//!
//! Demonstrates the full engine surface: entropy-priority prefetch,
//! demand reads that jump the queue and coalesce with in-flight
//! prefetches, generation bumps that cancel stale predictions when the
//! camera moves on, and a byte-cap eviction sweep over the pool.
//!
//! The disk store is wrapped in a seeded [`FaultInjectingSource`] storm
//! (10% transient errors, 5% latency spikes), so the run also exercises
//! the fault path end to end: retries absorb the injected errors, each
//! frame's demand reads run under a deadline via [`fetch_frame`], and a
//! frame whose reads miss the budget renders *degraded* — resident blocks
//! only — instead of stalling, recovering on a later frame.
//!
//! Run with: `cargo run --release --example combustion_exploration`

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;
use viz_appaware::core::{
    fetch_frame, ImportanceTable, RadiusModel, RadiusRule, SamplingConfig, VisibleTable,
};
use viz_appaware::fetch::{BlockPool, FaultConfig, FaultInjectingSource, FetchConfig, FetchEngine};
use viz_appaware::geom::angle::deg_to_rad;
use viz_appaware::geom::{CameraPath, ExplorationDomain, SphericalPath, Vec3};
use viz_appaware::render::{
    frame_working_set, render, BrickedSource, CountingLookup, RenderConfig, TransferFunction,
};
use viz_appaware::volume::{BlockKey, BrickLayout, DatasetKind, DatasetSpec, DiskBlockStore};

/// Per-frame wall-clock budget for demand reads; past it the frame
/// renders with whatever is resident.
const FRAME_BUDGET: Duration = Duration::from_millis(100);

fn main() -> std::io::Result<()> {
    let out_dir = std::env::temp_dir().join("viz_combustion_example");
    std::fs::create_dir_all(&out_dir)?;

    // Pre-processing: generate lifted_rr at 1/8 scale and write every block
    // to the disk store (the "HDD" end of the pipeline).
    let spec = DatasetSpec::new(DatasetKind::LiftedRr, 8, 7);
    let field = spec.materialize(0, 0.0);
    let layout = BrickLayout::with_target_blocks(field.dims, 512);
    let store = Arc::new(DiskBlockStore::open(out_dir.join("blocks"))?);
    store.write_field(&layout, &field, 0, 0)?;
    println!(
        "wrote {} blocks of {} to {}",
        layout.num_blocks(),
        layout.block,
        store.root().display()
    );

    // The application-aware tables.
    let importance = ImportanceTable::from_field(&layout, &field, 64);
    let view_angle = deg_to_rad(15.0);
    let sampling = SamplingConfig::paper_default(2.0, 3.2, view_angle).with_target_samples(1620);
    let t_visible = VisibleTable::build(
        sampling,
        &layout,
        RadiusRule::Optimal(RadiusModel::new(0.25, view_angle)),
        Some((&importance, layout.num_blocks() / 4)),
    );
    let sigma = importance.sigma_for_fraction(0.5);

    // The fetch engine: sharded pool, 4 workers draining a priority queue,
    // reading through a seeded fault storm so the retry/deadline machinery
    // is visibly in play (a healthy run would look identical, just quieter).
    let faulty = Arc::new(FaultInjectingSource::new(store.clone(), FaultConfig::storm(7)));
    let pool = Arc::new(BlockPool::new());
    let engine = FetchEngine::spawn(
        faulty.clone(),
        pool.clone(),
        FetchConfig {
            workers: 4,
            queue_cap: 1024,
            source_timeout: Some(Duration::from_millis(250)),
            ..FetchConfig::default()
        },
    );

    // Keep at most half the dataset resident; evict coldest-entropy blocks
    // outside the current working set when the pool grows past the cap.
    let byte_cap = layout.nominal_block_bytes() * layout.num_blocks() / 2;

    // Pre-load the important blocks (Algorithm 1 line 7), hottest first.
    for b in importance.above_threshold(sigma).take(layout.num_blocks() / 4) {
        engine.prefetch(BlockKey::scalar(b), importance.entropy(b));
    }
    engine.sync();
    println!(
        "pre-loaded {} important blocks ({:.1} MiB resident, cap {:.1} MiB)",
        pool.len(),
        pool.bytes_resident() as f64 / (1024.0 * 1024.0),
        byte_cap as f64 / (1024.0 * 1024.0),
    );

    // Fly the camera, rendering frames while prefetching the next view.
    let domain = ExplorationDomain::new(Vec3::ZERO, 2.0, 3.2);
    let path = SphericalPath::new(domain, 2.4, 12.0, view_angle).generate(12);
    let tf = TransferFunction::heat(field.min_max());
    let rc = RenderConfig::preview(192, 192);
    let mut demand_loads = 0usize;
    let mut evicted = 0usize;
    let mut degraded_frames = 0usize;

    for (i, pose) in path.iter().enumerate() {
        // The camera has moved: predictions queued for the previous view are
        // stale. Bump the generation so unstarted ones are cancelled at
        // dequeue instead of wasting disk bandwidth.
        engine.bump_generation();

        // Demand-load whatever the frame needs that prefetch didn't cover,
        // under the frame budget. Demand requests outrank every queued
        // prefetch and coalesce with in-flight reads; blocks that miss the
        // deadline (or exhaust their retries) are reported back and the
        // frame renders without them — their reads stay in flight and land
        // for a later frame.
        let working: HashSet<BlockKey> =
            frame_working_set(pose, &layout).into_iter().map(BlockKey::scalar).collect();
        let missing: Vec<BlockKey> =
            working.iter().copied().filter(|&k| !pool.contains(k)).collect();
        let frame = fetch_frame(&engine, &missing, FRAME_BUDGET);
        demand_loads += frame.loaded;
        degraded_frames += usize::from(frame.degraded);

        // Enforce the residency cap: drop the lowest-entropy blocks that the
        // current frame does not need.
        if pool.bytes_resident() > byte_cap {
            let mut victims: Vec<BlockKey> =
                pool.keys().into_iter().filter(|k| !working.contains(k)).collect();
            victims.sort_by(|a, b| {
                importance.entropy(a.block).total_cmp(&importance.entropy(b.block))
            });
            for key in victims {
                if pool.bytes_resident() <= byte_cap {
                    break;
                }
                pool.remove(key);
                evicted += 1;
            }
        }

        // Kick off prefetch for the predicted *next* view, ordered by
        // entropy, then render this frame while the workers drain the queue.
        for &b in t_visible.predict(pose) {
            let e = importance.entropy(b);
            if e > sigma {
                engine.prefetch(BlockKey::scalar(b), e);
            }
        }
        let lookup =
            CountingLookup::new(|id: viz_appaware::volume::BlockId| pool.get(BlockKey::scalar(id)));
        let src = BrickedSource::new(&layout, &lookup);
        let img = render(&src, pose, &tf, &rc);
        let frame_path = out_dir.join(format!("frame_{i:02}.ppm"));
        img.save_ppm(&frame_path)?;
        let (_, render_misses) = lookup.counts();
        println!(
            "frame {i:02}: mean luminance {:.4}, pool = {} blocks / {:.1} MiB{} -> {}",
            img.mean_luminance(),
            pool.len(),
            pool.bytes_resident() as f64 / (1024.0 * 1024.0),
            if frame.degraded {
                format!(
                    " [DEGRADED: {} blocks late, {render_misses} render misses]",
                    frame.missed.len()
                )
            } else {
                String::new()
            },
            frame_path.display()
        );
    }

    let m = engine.shutdown();
    let (hits, misses) = pool.stats();
    println!(
        "\nengine: {} blocks loaded ({} on demand), {} coalesced, \
         {} stale prefetches cancelled, {} dropped, {} errors",
        m.completed, m.demand_completed, m.coalesced, m.cancelled, m.dropped, m.errors
    );
    println!(
        "faults: {} injected errors / {} spikes over {} reads; {} retries, \
         {} source timeouts, {} deadline misses, {} late arrivals; \
         breaker {:?} ({} opens), {degraded_frames} degraded frames",
        faulty.injected_errors(),
        faulty.injected_spikes(),
        faulty.reads(),
        m.retries,
        m.timeouts,
        m.deadline_misses,
        m.late_arrivals,
        m.breaker_state,
        m.breaker_opens,
    );
    println!(
        "render-path demand loads: {demand_loads}; evicted {evicted} blocks at the {:.1} MiB cap",
        byte_cap as f64 / (1024.0 * 1024.0)
    );
    println!("pool lookups: {hits} hits / {misses} misses");
    println!("frames written to {}", out_dir.display());
    Ok(())
}
