//! Out-of-core exploration of the combustion dataset with *real* data
//! movement: blocks live in an on-disk store, a background prefetcher
//! (Algorithm 1's overlap, as an actual thread) pulls predicted blocks into
//! a shared pool while the CPU ray caster renders, and frames are written
//! as PPM images.
//!
//! Run with: `cargo run --release --example combustion_exploration`

use std::sync::Arc;
use viz_appaware::core::{
    BlockPool, ImportanceTable, Prefetcher, RadiusModel, RadiusRule, SamplingConfig, VisibleTable,
};
use viz_appaware::geom::angle::deg_to_rad;
use viz_appaware::geom::{CameraPath, ExplorationDomain, SphericalPath, Vec3};
use viz_appaware::render::{
    frame_working_set, render, BrickedSource, RenderConfig, TransferFunction,
};
use viz_appaware::volume::{
    BlockKey, BlockSource, BrickLayout, DatasetKind, DatasetSpec, DiskBlockStore,
};

fn main() -> std::io::Result<()> {
    let out_dir = std::env::temp_dir().join("viz_combustion_example");
    std::fs::create_dir_all(&out_dir)?;

    // Pre-processing: generate lifted_rr at 1/8 scale and write every block
    // to the disk store (the "HDD" end of the pipeline).
    let spec = DatasetSpec::new(DatasetKind::LiftedRr, 8, 7);
    let field = spec.materialize(0, 0.0);
    let layout = BrickLayout::with_target_blocks(field.dims, 512);
    let store = Arc::new(DiskBlockStore::open(out_dir.join("blocks"))?);
    store.write_field(&layout, &field, 0, 0)?;
    println!(
        "wrote {} blocks of {} to {}",
        layout.num_blocks(),
        layout.block,
        store.root().display()
    );

    // The application-aware tables.
    let importance = ImportanceTable::from_field(&layout, &field, 64);
    let view_angle = deg_to_rad(15.0);
    let sampling = SamplingConfig::paper_default(2.0, 3.2, view_angle).with_target_samples(1620);
    let t_visible = VisibleTable::build(
        sampling,
        &layout,
        RadiusRule::Optimal(RadiusModel::new(0.25, view_angle)),
        Some((&importance, layout.num_blocks() / 4)),
    );
    let sigma = importance.sigma_for_fraction(0.5);

    // Shared pool + background prefetcher (the real Algorithm 1 overlap).
    let pool = Arc::new(BlockPool::new());
    let prefetcher = Prefetcher::spawn(store.clone() as Arc<dyn BlockSource>, pool.clone(), 256);

    // Pre-load the important blocks (Algorithm 1 line 7).
    for b in importance.above_threshold(sigma).take(layout.num_blocks() / 4) {
        prefetcher.request(BlockKey::scalar(b));
    }
    prefetcher.sync();
    println!("pre-loaded {} important blocks", pool.len());

    // Fly the camera, rendering frames while prefetching the next view.
    let domain = ExplorationDomain::new(Vec3::ZERO, 2.0, 3.2);
    let path = SphericalPath::new(domain, 2.4, 12.0, view_angle).generate(12);
    let tf = TransferFunction::heat(field.min_max());
    let rc = RenderConfig::preview(192, 192);
    let mut demand_loads = 0usize;

    for (i, pose) in path.iter().enumerate() {
        // Demand-load whatever the frame needs that prefetch didn't cover.
        for b in frame_working_set(pose, &layout) {
            let key = BlockKey::scalar(b);
            if !pool.contains(key) {
                pool.insert(key, store.read_block(key)?);
                demand_loads += 1;
            }
        }

        // Kick off prefetch for the predicted *next* view, then render this
        // frame while the worker drains the queue.
        for &b in t_visible.predict(pose) {
            if importance.entropy(b) > sigma {
                prefetcher.request(BlockKey::scalar(b));
            }
        }
        let lookup = |id: viz_appaware::volume::BlockId| pool.get(BlockKey::scalar(id));
        let src = BrickedSource::new(&layout, &lookup);
        let img = render(&src, pose, &tf, &rc);
        let frame_path = out_dir.join(format!("frame_{i:02}.ppm"));
        img.save_ppm(&frame_path)?;
        println!(
            "frame {i:02}: mean luminance {:.4}, pool = {} blocks -> {}",
            img.mean_luminance(),
            pool.len(),
            frame_path.display()
        );
    }

    let fetched = prefetcher.shutdown();
    let (hits, misses) = pool.stats();
    println!(
        "\nprefetcher loaded {fetched} blocks in the background; \
         demand loads on the render path: {demand_loads}"
    );
    println!("pool lookups: {hits} hits / {misses} misses");
    println!("frames written to {}", out_dir.display());
    Ok(())
}
