//! Out-of-core exploration of the combustion dataset with *real* data
//! movement: blocks live in an on-disk store, the `viz-fetch` engine pulls
//! predicted blocks into a sharded resident pool with a 4-worker pool
//! (Algorithm 1's overlap, as actual threads) while the CPU ray caster
//! renders, and frames are written as PPM images.
//!
//! Demonstrates the full engine surface: entropy-priority prefetch,
//! demand reads that jump the queue and coalesce with in-flight
//! prefetches, generation bumps that cancel stale predictions when the
//! camera moves on, and a byte-cap eviction sweep over the pool.
//!
//! Run with: `cargo run --release --example combustion_exploration`

use std::collections::HashSet;
use std::sync::Arc;
use viz_appaware::core::{ImportanceTable, RadiusModel, RadiusRule, SamplingConfig, VisibleTable};
use viz_appaware::fetch::{BlockPool, FetchConfig, FetchEngine};
use viz_appaware::geom::angle::deg_to_rad;
use viz_appaware::geom::{CameraPath, ExplorationDomain, SphericalPath, Vec3};
use viz_appaware::render::{
    frame_working_set, render, BrickedSource, RenderConfig, TransferFunction,
};
use viz_appaware::volume::{BlockKey, BrickLayout, DatasetKind, DatasetSpec, DiskBlockStore};

fn main() -> std::io::Result<()> {
    let out_dir = std::env::temp_dir().join("viz_combustion_example");
    std::fs::create_dir_all(&out_dir)?;

    // Pre-processing: generate lifted_rr at 1/8 scale and write every block
    // to the disk store (the "HDD" end of the pipeline).
    let spec = DatasetSpec::new(DatasetKind::LiftedRr, 8, 7);
    let field = spec.materialize(0, 0.0);
    let layout = BrickLayout::with_target_blocks(field.dims, 512);
    let store = Arc::new(DiskBlockStore::open(out_dir.join("blocks"))?);
    store.write_field(&layout, &field, 0, 0)?;
    println!(
        "wrote {} blocks of {} to {}",
        layout.num_blocks(),
        layout.block,
        store.root().display()
    );

    // The application-aware tables.
    let importance = ImportanceTable::from_field(&layout, &field, 64);
    let view_angle = deg_to_rad(15.0);
    let sampling = SamplingConfig::paper_default(2.0, 3.2, view_angle).with_target_samples(1620);
    let t_visible = VisibleTable::build(
        sampling,
        &layout,
        RadiusRule::Optimal(RadiusModel::new(0.25, view_angle)),
        Some((&importance, layout.num_blocks() / 4)),
    );
    let sigma = importance.sigma_for_fraction(0.5);

    // The fetch engine: sharded pool, 4 workers draining a priority queue.
    let pool = Arc::new(BlockPool::new());
    let engine = FetchEngine::spawn(
        store.clone(),
        pool.clone(),
        FetchConfig { workers: 4, queue_cap: 1024 },
    );

    // Keep at most half the dataset resident; evict coldest-entropy blocks
    // outside the current working set when the pool grows past the cap.
    let byte_cap = layout.nominal_block_bytes() * layout.num_blocks() / 2;

    // Pre-load the important blocks (Algorithm 1 line 7), hottest first.
    for b in importance.above_threshold(sigma).take(layout.num_blocks() / 4) {
        engine.prefetch(BlockKey::scalar(b), importance.entropy(b));
    }
    engine.sync();
    println!(
        "pre-loaded {} important blocks ({:.1} MiB resident, cap {:.1} MiB)",
        pool.len(),
        pool.bytes_resident() as f64 / (1024.0 * 1024.0),
        byte_cap as f64 / (1024.0 * 1024.0),
    );

    // Fly the camera, rendering frames while prefetching the next view.
    let domain = ExplorationDomain::new(Vec3::ZERO, 2.0, 3.2);
    let path = SphericalPath::new(domain, 2.4, 12.0, view_angle).generate(12);
    let tf = TransferFunction::heat(field.min_max());
    let rc = RenderConfig::preview(192, 192);
    let mut demand_loads = 0usize;
    let mut evicted = 0usize;

    for (i, pose) in path.iter().enumerate() {
        // The camera has moved: predictions queued for the previous view are
        // stale. Bump the generation so unstarted ones are cancelled at
        // dequeue instead of wasting disk bandwidth.
        engine.bump_generation();

        // Demand-load whatever the frame needs that prefetch didn't cover.
        // Demand requests outrank every queued prefetch and coalesce with
        // in-flight reads of the same block.
        let working: HashSet<BlockKey> =
            frame_working_set(pose, &layout).into_iter().map(BlockKey::scalar).collect();
        for &key in &working {
            if !pool.contains(key) {
                engine.get(key).map_err(std::io::Error::from)?;
                demand_loads += 1;
            }
        }

        // Enforce the residency cap: drop the lowest-entropy blocks that the
        // current frame does not need.
        if pool.bytes_resident() > byte_cap {
            let mut victims: Vec<BlockKey> =
                pool.keys().into_iter().filter(|k| !working.contains(k)).collect();
            victims.sort_by(|a, b| {
                importance.entropy(a.block).total_cmp(&importance.entropy(b.block))
            });
            for key in victims {
                if pool.bytes_resident() <= byte_cap {
                    break;
                }
                pool.remove(key);
                evicted += 1;
            }
        }

        // Kick off prefetch for the predicted *next* view, ordered by
        // entropy, then render this frame while the workers drain the queue.
        for &b in t_visible.predict(pose) {
            let e = importance.entropy(b);
            if e > sigma {
                engine.prefetch(BlockKey::scalar(b), e);
            }
        }
        let lookup = |id: viz_appaware::volume::BlockId| pool.get(BlockKey::scalar(id));
        let src = BrickedSource::new(&layout, &lookup);
        let img = render(&src, pose, &tf, &rc);
        let frame_path = out_dir.join(format!("frame_{i:02}.ppm"));
        img.save_ppm(&frame_path)?;
        println!(
            "frame {i:02}: mean luminance {:.4}, pool = {} blocks / {:.1} MiB -> {}",
            img.mean_luminance(),
            pool.len(),
            pool.bytes_resident() as f64 / (1024.0 * 1024.0),
            frame_path.display()
        );
    }

    let m = engine.shutdown();
    let (hits, misses) = pool.stats();
    println!(
        "\nengine: {} blocks loaded ({} on demand), {} coalesced, \
         {} stale prefetches cancelled, {} dropped, {} errors",
        m.completed, m.demand_completed, m.coalesced, m.cancelled, m.dropped, m.errors
    );
    println!(
        "render-path demand loads: {demand_loads}; evicted {evicted} blocks at the {:.1} MiB cap",
        byte_cap as f64 / (1024.0 * 1024.0)
    );
    println!("pool lookups: {hits} hits / {misses} misses");
    println!("frames written to {}", out_dir.display());
    Ok(())
}
