//! Compare every replacement policy in the workspace — the paper's FIFO and
//! LRU baselines, the extra CLOCK/LFU/ARC baselines, the app-aware policy,
//! and the offline Belady/MIN bound — on one interactive exploration.
//!
//! Run with: `cargo run --release --example policy_comparison`

use viz_appaware::cache::{simulate_belady, PolicyKind};
use viz_appaware::core::{
    compute_visibility, demand_trace, run_session_precomputed, AppAwareConfig, ImportanceTable,
    RadiusModel, RadiusRule, SamplingConfig, SessionConfig, Strategy, VisibleTable,
};
use viz_appaware::geom::angle::deg_to_rad;
use viz_appaware::geom::{CameraPath, ExplorationDomain, RandomWalkPath, Vec3};
use viz_appaware::volume::{BrickLayout, DatasetKind, DatasetSpec};

fn main() {
    let spec = DatasetSpec::new(DatasetKind::LiftedMixFrac, 8, 21);
    let field = spec.materialize(0, 0.0);
    let layout = BrickLayout::with_target_blocks(field.dims, 1024);
    let importance = ImportanceTable::from_field(&layout, &field, 64);
    let sigma = importance.sigma_for_fraction(0.5);

    let view_angle = deg_to_rad(15.0);
    let sampling = SamplingConfig::paper_default(2.0, 3.2, view_angle).with_target_samples(3240);
    let t_visible = VisibleTable::build(
        sampling,
        &layout,
        RadiusRule::Optimal(RadiusModel::new(0.25, view_angle)),
        Some((&importance, layout.num_blocks() / 4)),
    );

    let domain = ExplorationDomain::new(Vec3::ZERO, 2.0, 3.2);
    let path = RandomWalkPath::new(domain, 2.5, 5.0, 10.0, view_angle, 9).generate(400);
    let visibility = compute_visibility(&layout, &path);
    let cfg = SessionConfig::paper(0.5, layout.nominal_block_bytes());

    println!("lifted_mix_frac, {} blocks, 400-step random path (5-10 deg)\n", layout.num_blocks());
    println!("{:<22} {:>10} {:>10} {:>10}", "policy", "miss rate", "I/O (s)", "total (s)");

    for strategy in [
        Strategy::Baseline(PolicyKind::Fifo),
        Strategy::Baseline(PolicyKind::Lru),
        Strategy::Baseline(PolicyKind::Clock),
        Strategy::Baseline(PolicyKind::Lfu),
        Strategy::Baseline(PolicyKind::Arc),
        Strategy::AppAware(AppAwareConfig::paper(sigma)),
    ] {
        let tables = matches!(strategy, Strategy::AppAware(_)).then_some((&t_visible, &importance));
        let r = run_session_precomputed(&cfg, &layout, &strategy, &path, &visibility, tables);
        println!("{:<22} {:>10.4} {:>10.3} {:>10.3}", r.strategy, r.miss_rate, r.io_s, r.total_s);
    }

    // The unbeatable offline bound for reactive replacement (no prefetch).
    let trace = demand_trace(&layout, &path);
    let belady = simulate_belady(&trace, (layout.num_blocks() / 4).max(1));
    println!(
        "{:<22} {:>10.4}    (offline lower bound, DRAM tier)",
        "Belady/MIN",
        belady.miss_rate()
    );
}
