//! Virtual-reality / head-mounted-display stress test — the paper's §VI
//! future-work scenario: "virtual reality with head-mounted displays ...
//! require a faster interactive response, and impose more challenging I/O
//! stresses".
//!
//! An HMD renders *two* eyes per frame at 90 Hz (11.1 ms frame budget) and
//! the head moves continuously. This example replays a jittery head path,
//! renders stereo frames against the simulated hierarchy, and reports how
//! many frames meet the budget under LRU vs the app-aware policy.
//!
//! Run with: `cargo run --release --example vr_hmd`

use viz_appaware::cache::PolicyKind;
use viz_appaware::core::{
    run_session, AppAwareConfig, ImportanceTable, RadiusModel, RadiusRule, SamplingConfig,
    SessionConfig, SessionReport, Strategy, VisibleTable,
};
use viz_appaware::geom::angle::deg_to_rad;
use viz_appaware::geom::{CameraPath, CameraPose, ExplorationDomain, RandomWalkPath, Vec3};
use viz_appaware::volume::{BrickLayout, DatasetKind, DatasetSpec};

/// 90 Hz budget per stereo frame.
const FRAME_BUDGET_S: f64 = 1.0 / 90.0;
/// Interpupillary offset in normalized world units.
const IPD: f64 = 0.02;

fn stereo_path(mono: &[CameraPose]) -> Vec<CameraPose> {
    // Interleave left/right eye poses: each eye is offset along the view
    // tangent. Stereo doubles the pose rate at nearly identical views —
    // exactly the access pattern Observation 1 exploits.
    let mut out = Vec::with_capacity(mono.len() * 2);
    for p in mono {
        let tangent = p.view_direction().any_orthonormal();
        out.push(CameraPose::new(p.position - tangent * (IPD / 2.0), p.center, p.view_angle));
        out.push(CameraPose::new(p.position + tangent * (IPD / 2.0), p.center, p.view_angle));
    }
    out
}

fn frames_in_budget(r: &SessionReport) -> (usize, usize) {
    // A stereo frame = two consecutive eye steps.
    let mut ok = 0;
    let mut total = 0;
    for pair in r.per_step.chunks(2) {
        let t: f64 = pair.iter().map(|s| s.total_s).sum();
        total += 1;
        if t <= FRAME_BUDGET_S {
            ok += 1;
        }
    }
    (ok, total)
}

fn main() {
    let spec = DatasetSpec::new(DatasetKind::Ball3d, 8, 99);
    let field = spec.materialize(0, 0.0);
    let layout = BrickLayout::with_target_blocks(field.dims, 2048);
    let importance = ImportanceTable::from_field(&layout, &field, 64);
    let sigma = importance.sigma_for_fraction(0.5);

    let view_angle = deg_to_rad(15.0);
    let sampling = SamplingConfig::paper_default(2.0, 3.2, view_angle).with_target_samples(3240);
    let t_visible = VisibleTable::build(
        sampling,
        &layout,
        RadiusRule::Optimal(RadiusModel::new(0.25, view_angle)),
        Some((&importance, layout.num_blocks() / 4)),
    );

    // Head motion: rapid small rotations (1-3 deg between eye-pair frames)
    // with an abrupt "head snap" every 40 frames — the misprediction burst
    // that stresses the I/O path.
    let domain = ExplorationDomain::new(Vec3::ZERO, 2.0, 3.2);
    let smooth = RandomWalkPath::new(domain, 2.4, 1.0, 3.0, view_angle, 4242)
        .with_distance_jitter(0.02)
        .generate(300);
    let snaps = RandomWalkPath::new(domain, 2.4, 40.0, 70.0, view_angle, 777).generate(300);
    let head: Vec<CameraPose> =
        smooth.iter().enumerate().map(|(i, p)| if i % 40 == 39 { snaps[i] } else { *p }).collect();
    let eyes = stereo_path(&head);
    println!(
        "HMD session: {} head positions -> {} eye renders, 90 Hz budget = {:.1} ms/frame",
        head.len(),
        eyes.len(),
        FRAME_BUDGET_S * 1e3
    );

    // A VR rig streams from GPU memory / DRAM / NVMe, not the paper's
    // HDD testbed, and its renderer is much leaner per block.
    use viz_appaware::cache::TierCost;
    let mut cfg = SessionConfig::paper(0.5, layout.nominal_block_bytes()).with_tier_costs([
        TierCost::new(1e-7, 50e9), // GPU memory
        TierCost::dram(),          // host DRAM
        TierCost::new(20e-6, 3e9), // NVMe SSD backing
    ]);
    cfg.render.base_s = 1e-3;
    cfg.render.per_block_s = 8e-6;

    println!(
        "\n{:<6} {:>10} {:>12} {:>14} {:>10} {:>10}",
        "policy", "miss rate", "in budget", "stutter-free", "p99 (ms)", "worst (ms)"
    );
    for strategy in
        [Strategy::Baseline(PolicyKind::Lru), Strategy::AppAware(AppAwareConfig::paper(sigma))]
    {
        let tables = matches!(strategy, Strategy::AppAware(_)).then_some((&t_visible, &importance));
        let r = run_session(&cfg, &layout, &strategy, &eyes, tables);
        let (ok, total) = frames_in_budget(&r);
        let mut frame_times: Vec<f64> =
            r.per_step.chunks(2).map(|p| p.iter().map(|s| s.total_s).sum::<f64>()).collect();
        let stutter_free = r.per_step.chunks(2).filter(|p| p.iter().all(|s| s.misses == 0)).count();
        frame_times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p99 = frame_times[(frame_times.len() * 99 / 100).min(frame_times.len() - 1)];
        let worst = *frame_times.last().unwrap();
        println!(
            "{:<6} {:>10.4} {:>8}/{:<4} {:>10}/{:<4} {:>9.2} {:>10.2}",
            r.strategy,
            r.miss_rate,
            ok,
            total,
            stutter_free,
            total,
            p99 * 1e3,
            worst * 1e3
        );
    }
    println!("\nStereo eye pairs are the extreme case of Observation 1: the two eyes'");
    println!("frusta overlap almost entirely, so predicted-visible prefetch keeps the");
    println!("working set resident. The win shows in the tail: the app-aware policy's");
    println!("worst frame stays several ms below LRU's — exactly what an HMD needs,");
    println!("since a single long frame is a visible judder.");
}
