//! Data-dependent analytics on the multivariate climate dataset (the
//! paper's Figs. 2–3 scenario): follow the camera along a path over the
//! typhoon/smoke interaction and, for each view, compute the per-region
//! histograms and the variable correlation matrix over exactly the blocks
//! the view touches.
//!
//! Run with: `cargo run --release --example climate_analytics`

use viz_appaware::core::{visible_blocks, ImportanceTable};
use viz_appaware::geom::angle::deg_to_rad;
use viz_appaware::geom::{CameraPath, ExplorationDomain, RandomWalkPath, Vec3};
use viz_appaware::render::{query_count, region_histogram, CorrelationAccumulator};
use viz_appaware::volume::{BrickLayout, DatasetKind, DatasetSpec, VolumeField};

fn main() {
    // A handful of climate variables (the full dataset has 244; we analyze
    // one per physical family): moisture, wind, aerosol, thermodynamic.
    let spec = DatasetSpec::new(DatasetKind::Climate, 2, 11);
    let var_ids = [0usize, 1, 2, 3];
    let t = 0.4; // mid-track typhoon position
    let fields: Vec<VolumeField> = var_ids.iter().map(|&v| spec.materialize(v, t)).collect();
    let layout = BrickLayout::with_target_blocks(spec.resolution(), 256);
    println!(
        "climate at {} ({} blocks), {} variables materialized at t={t}",
        spec.resolution(),
        layout.num_blocks(),
        fields.len()
    );

    // Importance from the aerosol variable: scientists focus on the smoke
    // (Observation 2), so PM10-like entropy drives placement.
    let importance = ImportanceTable::from_field(&layout, &fields[2], 64);
    println!(
        "aerosol importance: top block H = {:.2}, median H = {:.2}",
        importance.ranked()[0].entropy,
        importance.ranked()[importance.len() / 2].entropy
    );

    // Explore along a random path and compute per-view analytics.
    let view_angle = deg_to_rad(15.0);
    let domain = ExplorationDomain::new(Vec3::ZERO, 2.0, 3.2);
    let path = RandomWalkPath::new(domain, 2.5, 8.0, 14.0, view_angle, 3).generate(4);

    for (vi, pose) in path.iter().enumerate() {
        let vis = visible_blocks(pose, &layout);
        // Extract the visible region of each variable.
        let regions: Vec<Vec<Vec<f32>>> = fields
            .iter()
            .map(|f| vis.iter().map(|&b| f.extract_block(&layout, b)).collect())
            .collect();

        // Histogram of the moisture variable over the view (Fig. 3 panels).
        let slices: Vec<&[f32]> = regions[0].iter().map(|v| v.as_slice()).collect();
        let (lo, hi) = fields[0].min_max();
        let hist = region_histogram(&slices, (lo, hi), 16);
        let peak = hist.counts.iter().enumerate().max_by_key(|(_, &c)| c).unwrap().0;

        // Smoke coverage query: voxels above an aerosol threshold.
        let smoke_slices: Vec<&[f32]> = regions[2].iter().map(|v| v.as_slice()).collect();
        let smoke = query_count(&smoke_slices, |v| v > 0.2);

        // Correlation matrix across the four variables, voxel-aligned.
        let mut acc = CorrelationAccumulator::new(fields.len());
        for bi in 0..vis.len() {
            let n = regions[0][bi].len();
            for i in 0..n {
                let sample: Vec<f32> = regions.iter().map(|r| r[bi][i]).collect();
                acc.add(&sample);
            }
        }
        let m = acc.matrix();

        println!("\nview {vi}: {} visible blocks, {} voxels analyzed", vis.len(), acc.count());
        println!("  moisture histogram peak at bin {peak}/15; smoke voxels (>0.2): {smoke}");
        println!("  correlation matrix (moisture, wind, aerosol, thermo):");
        for i in 0..4 {
            let row: Vec<String> = (0..4).map(|j| format!("{:+.2}", m[i * 4 + j])).collect();
            println!("    [{}]", row.join(", "));
        }
    }
    println!("\nThese statistics require every visible block at full resolution —");
    println!("the paper's case for application-aware placement (§III-B).");
}
