//! Time-varying playback of the climate dataset: scrub through timesteps
//! while orbiting, with a bounded `FieldCache` materializing grids on
//! demand and the multi-variable session engine measuring what the cache
//! hierarchy does when time advances (every timestep change is a fresh
//! compulsory working set — the hardest case for any reactive policy).
//!
//! Run with: `cargo run --release --example time_playback`

use std::sync::Arc;
use viz_appaware::cache::PolicyKind;
use viz_appaware::core::{
    run_multivar_session, ExplorationScript, ImportanceTable, MultiVarStrategy, RadiusModel,
    RadiusRule, SamplingConfig, SessionConfig, VisibleTable,
};
use viz_appaware::geom::angle::deg_to_rad;
use viz_appaware::geom::{CameraPath, ExplorationDomain, SphericalPath, Vec3};
use viz_appaware::volume::{BrickLayout, DatasetKind, DatasetSpec, FieldCache};

fn main() {
    let spec = DatasetSpec::new(DatasetKind::Climate, 2, 17);
    let steps_in_time = spec.kind.num_timesteps();
    let layout = BrickLayout::with_target_blocks(spec.resolution(), 512);

    // Materialize lazily through the bounded cache: aerosol (importance
    // driver) + wind, at whichever timesteps playback touches.
    let cache = Arc::new(FieldCache::new(spec.clone(), 4));
    println!(
        "climate at {} ({} blocks, {} timesteps), field cache capacity 4 grids",
        spec.resolution(),
        layout.num_blocks(),
        steps_in_time
    );

    // Importance per scripted variable, from the mid-track timestep.
    let aerosol = cache.get(2, steps_in_time / 2);
    let wind = cache.get(1, steps_in_time / 2);
    let importance = vec![
        ImportanceTable::from_field(&layout, &wind, 64),
        ImportanceTable::from_field(&layout, &aerosol, 64),
    ];
    let sigma = importance[1].sigma_for_fraction(0.5);

    let view_angle = deg_to_rad(15.0);
    let sampling = SamplingConfig::paper_default(2.0, 3.2, view_angle).with_target_samples(1620);
    let t_visible = VisibleTable::build(
        sampling,
        &layout,
        RadiusRule::Optimal(RadiusModel::new(0.25, view_angle)),
        Some((&importance[1], layout.num_blocks() / 4)),
    );

    // Orbit while time advances every 25 camera steps.
    let domain = ExplorationDomain::new(Vec3::ZERO, 2.0, 3.2);
    let poses = SphericalPath::new(domain, 2.5, 4.0, view_angle).with_precession(1.0).generate(200);
    let script = ExplorationScript::single_phase(&poses, vec![0, 1])
        .with_time_advance(25, steps_in_time as u16);
    // The climate grid is flat (73x64x24), so a frame sees a large block
    // fraction; use the paper's larger cache ratio (0.7, as in Fig. 13b)
    // to keep the two-variable working set inside fast memory.
    let cfg = SessionConfig::paper(0.7, layout.nominal_block_bytes());

    println!(
        "\n{:<8} {:>10} {:>10} {:>12} {:>10}",
        "policy", "miss rate", "I/O (s)", "prefetch (s)", "total (s)"
    );
    for (label, strategy) in [
        ("LRU", MultiVarStrategy::Baseline(PolicyKind::Lru)),
        ("OPT", MultiVarStrategy::AppAware { sigma }),
    ] {
        let tv = matches!(strategy, MultiVarStrategy::AppAware { .. }).then_some(&t_visible);
        let r = run_multivar_session(&cfg, &layout, &strategy, &script, tv, &importance);
        println!(
            "{:<8} {:>10.4} {:>10.3} {:>12.3} {:>10.3}",
            label, r.miss_rate, r.io_s, r.prefetch_s, r.total_s
        );
    }

    let (hits, misses) = cache.stats();
    println!("\nfield cache: {hits} hits / {misses} materializations");
    println!("Each timestep advance invalidates the (var, time, block) working set —");
    println!("the compulsory-miss walls in the per-step trace; prediction still wins");
    println!("between the walls, which is where interactive time feels smooth.");
}
