//! Serving many viewers from one machine: three clients explore the same
//! combustion flight at different phases through `viz-serve`, sharing a
//! single fetch engine and resident pool. Duplicate wants coalesce into
//! one source read even across clients; fairness interleaves their
//! demand; prefetch admission sheds under pressure while demand always
//! flows.
//!
//! Uses the deterministic in-process transport so the run is exactly
//! reproducible; swap [`InProcServer`] for [`viz_appaware::serve::TcpServer`]
//! and `TcpTransport::connect` to serve real sockets instead.
//!
//! Run with: `cargo run --release --example multi_client_serve`

use std::sync::Arc;
use std::time::Duration;
use viz_appaware::core::{compute_visibility, ClientFlight};
use viz_appaware::fetch::{BlockPool, FetchConfig, FetchEngine, InstrumentedSource};
use viz_appaware::geom::angle::deg_to_rad;
use viz_appaware::geom::{CameraPath, ExplorationDomain, Keyframe, KeyframePath, Vec3};
use viz_appaware::serve::{InProcServer, ServeClient, ServeConfig, Server};
use viz_appaware::volume::{BlockKey, BrickLayout, Dims3, MemBlockStore};

fn main() {
    // One modest bricked volume in a memory-backed store, read through an
    // instrumented source so we can count what actually hits "disk".
    let layout = BrickLayout::with_target_blocks(Dims3::cube(128), 128);
    let store = MemBlockStore::new();
    for id in layout.block_ids() {
        store.insert(BlockKey::scalar(id), vec![id.0 as f32; 64]);
    }
    let src = Arc::new(InstrumentedSource::new(Arc::new(store), Duration::from_micros(50)));
    let engine = FetchEngine::spawn(
        src.clone(),
        Arc::new(BlockPool::new()),
        FetchConfig { workers: 0, ..FetchConfig::default() }, // deterministic: no threads
    );
    let server = Server::new(Arc::new(engine), ServeConfig::default());
    let mut inproc = InProcServer::new(server.clone());

    // Three viewers on the same closed keyframe flight, phase-shifted — the
    // "colleagues inspecting the same feature" deployment.
    let domain = ExplorationDomain::new(Vec3::ZERO, 2.0, 3.2);
    let path = KeyframePath::new(
        domain,
        vec![
            Keyframe::new(Vec3::new(0.0, 0.0, 1.0), 3.0),
            Keyframe::new(Vec3::new(1.0, 0.3, 0.4), 2.2).with_weight(2.0),
            Keyframe::new(Vec3::new(-0.6, 0.4, 0.7), 2.8),
        ],
        deg_to_rad(15.0),
    )
    .closed();
    let poses = path.generate(12);
    let visible = compute_visibility(&layout, &poses);

    let mut clients: Vec<_> = (0..3)
        .map(|i| {
            let flight = ClientFlight::from_visible(poses.clone(), visible.clone(), None, 0.0)
                .rotated(i * 4);
            (ServeClient::new(inproc.connect()), flight)
        })
        .collect();

    // Open every session. The in-process server advances when ticked.
    for (i, (c, _)) in clients.iter_mut().enumerate() {
        c.send_open(&format!("viewer-{i}")).unwrap();
    }
    inproc.tick();
    for (c, _) in clients.iter_mut() {
        let sid = c.recv_open().unwrap();
        println!("opened session s{sid}");
    }

    // Replay the flight: every step each client advances its generation,
    // then asks for its visible set (demand) plus next-step speculation.
    let mut served = 0usize;
    for _step in 0..12 {
        for (c, flight) in clients.iter_mut() {
            let fr = flight.next_frame().expect("flight step");
            c.send_advance().unwrap();
            c.send_fetch(fr.generation, fr.demand, fr.prefetch).unwrap();
        }
        inproc.tick();
        for (c, _) in clients.iter_mut() {
            c.recv_response().unwrap(); // AdvanceAck
            let got = c.recv_fetch().unwrap();
            served += got.blocks.len();
            assert!(got.blocks.iter().all(|b| b.result.is_ok()));
        }
    }

    let m = server.metrics();
    println!("served {served} demand blocks across 3 clients");
    println!(
        "source reads: {} (cross-client coalescing saved {} duplicate reads)",
        src.reads(),
        served as u64 - src.reads()
    );
    println!(
        "admitted {} prefetch, downgraded {}, shed {}",
        m.prefetch_admitted, m.prefetch_downgraded, m.prefetch_shed
    );

    let report = server.drain();
    println!(
        "drained: {} sessions closed, {} demand flushed, {} prefetch dropped",
        report.sessions_closed, report.demand_flushed, report.prefetch_dropped
    );
}
