//! Quickstart: build the two application-aware tables for a small synthetic
//! volume and compare the paper's policy ("OPT") against LRU and FIFO on an
//! interactive camera path.
//!
//! Run with: `cargo run --release --example quickstart`

use viz_appaware::cache::PolicyKind;
use viz_appaware::core::{
    run_session, AppAwareConfig, ImportanceTable, RadiusModel, RadiusRule, SamplingConfig,
    SessionConfig, Strategy, VisibleTable,
};
use viz_appaware::geom::angle::deg_to_rad;
use viz_appaware::geom::{CameraPath, ExplorationDomain, SphericalPath, Vec3};
use viz_appaware::volume::{BrickLayout, DatasetKind, DatasetSpec};

fn main() {
    // 1. A volume: the paper's synthetic `3d_ball` at 1/8 scale (128³),
    //    partitioned into ~1000 uniform blocks.
    let spec = DatasetSpec::new(DatasetKind::Ball3d, 8, 42);
    let field = spec.materialize(0, 0.0);
    let layout = BrickLayout::with_target_blocks(field.dims, 1024);
    println!(
        "dataset: {} at {} ({} blocks of {})",
        spec.kind.name(),
        field.dims,
        layout.num_blocks(),
        layout.block
    );

    // 2. T_important: Shannon entropy per block (Eq. 2).
    let importance = ImportanceTable::from_field(&layout, &field, 64);
    let sigma = importance.sigma_for_fraction(0.5);
    println!(
        "T_important: top block H = {:.2} bits, sigma(50%) = {:.2} bits",
        importance.ranked()[0].entropy,
        sigma
    );

    // 3. T_visible: sample camera positions in the exploration domain and
    //    precompute visible blocks per sample (Eq. 1 + the Eq. 6 radius).
    let view_angle = deg_to_rad(15.0);
    let sampling = SamplingConfig::paper_default(2.0, 3.2, view_angle).with_target_samples(3240);
    let radius = RadiusModel::new(0.25, view_angle);
    let t_visible = VisibleTable::build(
        sampling,
        &layout,
        RadiusRule::Optimal(radius),
        Some((&importance, layout.num_blocks() / 4)),
    );
    println!(
        "T_visible: {} samples, mean |S_v| = {:.1} blocks, ~{} KiB",
        t_visible.len(),
        t_visible.mean_set_size(),
        t_visible.approx_bytes() / 1024
    );

    // 4. An interactive exploration: 400 positions orbiting at 5°/step.
    let domain = ExplorationDomain::new(Vec3::ZERO, 2.0, 3.2);
    let path = SphericalPath::new(domain, 2.5, 5.0, view_angle).with_precession(1.0).generate(400);

    // 5. Replay under each strategy on the simulated DRAM/SSD/HDD stack.
    let cfg = SessionConfig::paper(0.5, layout.nominal_block_bytes());
    println!(
        "\n{:<6} {:>10} {:>10} {:>12} {:>12}",
        "policy", "miss rate", "I/O (s)", "prefetch (s)", "total (s)"
    );
    for strategy in [
        Strategy::Baseline(PolicyKind::Fifo),
        Strategy::Baseline(PolicyKind::Lru),
        Strategy::AppAware(AppAwareConfig::paper(sigma)),
    ] {
        let tables = matches!(strategy, Strategy::AppAware(_)).then_some((&t_visible, &importance));
        let r = run_session(&cfg, &layout, &strategy, &path, tables);
        println!(
            "{:<6} {:>10.4} {:>10.3} {:>12.3} {:>12.3}",
            r.strategy, r.miss_rate, r.io_s, r.prefetch_s, r.total_s
        );
    }
    println!("\nOPT hides prefetch behind rendering (total = io + max(render, prefetch)).");
}
