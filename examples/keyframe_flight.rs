//! Guided keyframe flight: a scientist drops waypoints (overview → dive
//! toward the flame → pass along the jet → pull back) and the tool flies
//! smoothly between them with quaternion-slerped direction and log-linear
//! zoom, while the app-aware policy (with closed-loop σ) keeps the working
//! set resident.
//!
//! Run with: `cargo run --release --example keyframe_flight`

use viz_appaware::cache::PolicyKind;
use viz_appaware::core::{
    run_session, AdaptiveSigma, AppAwareConfig, ImportanceTable, RadiusModel, RadiusRule,
    SamplingConfig, SessionConfig, Strategy, VisibleTable,
};
use viz_appaware::geom::angle::deg_to_rad;
use viz_appaware::geom::{CameraPath, ExplorationDomain, Keyframe, KeyframePath, Vec3};
use viz_appaware::volume::{BrickLayout, DatasetKind, DatasetSpec};

fn main() {
    let spec = DatasetSpec::new(DatasetKind::LiftedMixFrac, 8, 31);
    let field = spec.materialize(0, 0.0);
    let layout = BrickLayout::with_target_blocks(field.dims, 1024);
    let importance = ImportanceTable::from_field(&layout, &field, 64);
    let sigma = importance.sigma_for_fraction(0.5);

    let view_angle = deg_to_rad(15.0);
    let domain = ExplorationDomain::new(Vec3::ZERO, 2.0, 3.2);

    // Waypoints of a typical combustion inspection.
    let flight = KeyframePath::new(
        domain,
        vec![
            Keyframe::new(Vec3::new(0.0, 0.0, 1.0), 3.1), // overview from above
            Keyframe::new(Vec3::new(1.0, 0.3, 0.4), 2.2).with_weight(2.0), // dive to the jet inlet
            Keyframe::new(Vec3::new(0.2, 1.0, 0.1), 2.0).with_weight(1.0), // pass along the flame
            Keyframe::new(Vec3::new(-0.6, 0.4, 0.7), 3.0).with_weight(1.5), // pull back
        ],
        view_angle,
    )
    .closed();
    let poses = flight.generate(400);
    println!("flight: {} over {} poses", flight.label(), poses.len());

    let sampling = SamplingConfig::paper_default(2.0, 3.2, view_angle).with_target_samples(3240);
    let t_visible = VisibleTable::build(
        sampling,
        &layout,
        RadiusRule::Optimal(RadiusModel::new(0.25, view_angle)),
        Some((&importance, layout.num_blocks() / 4)),
    );

    let cfg = SessionConfig::paper(0.5, layout.nominal_block_bytes());
    println!(
        "\n{:<22} {:>10} {:>10} {:>12} {:>10}",
        "policy", "miss rate", "I/O (s)", "prefetch (s)", "total (s)"
    );
    for strategy in [
        Strategy::Baseline(PolicyKind::Lru),
        Strategy::AppAware(AppAwareConfig::paper(sigma)),
        Strategy::AppAware(
            AppAwareConfig::paper(sigma).with_adaptive_sigma(AdaptiveSigma::default_for_bins(64)),
        ),
    ] {
        let label = match &strategy {
            Strategy::Baseline(_) => "LRU".to_string(),
            Strategy::AppAware(c) if c.adaptive.is_some() => "OPT (adaptive sigma)".to_string(),
            Strategy::AppAware(_) => "OPT (fixed sigma)".to_string(),
        };
        let tables = matches!(strategy, Strategy::AppAware(_)).then_some((&t_visible, &importance));
        let r = run_session(&cfg, &layout, &strategy, &poses, tables);
        println!(
            "{:<22} {:>10.4} {:>10.3} {:>12.3} {:>10.3}",
            label, r.miss_rate, r.io_s, r.prefetch_s, r.total_s
        );
    }
    println!("\nKeyframe flights are highly predictable (smooth slerp between waypoints)");
    println!("so predicted-visible prefetch hides almost all I/O behind rendering.");
}
