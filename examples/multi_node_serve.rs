//! Serving one dataset from four machines: a sharded cluster where every
//! block has exactly one owner, a client-side router that sends each
//! demand straight to that owner, and peer forwarding over VSRV for
//! requests that arrive at the wrong node. Then a node crashes
//! mid-flight and the demand keeps flowing — the map reassigns the
//! orphaned shards to the ring successors the router was already using
//! as fallbacks.
//!
//! Uses the deterministic in-process cluster (virtual clock, synchronous
//! transports) so the run replays exactly; swap the [`TestCluster`] for
//! [`viz_appaware::cluster::ClusterNode`] + `TcpServer::bind_with` +
//! [`viz_appaware::cluster::TcpPeerLink`] to deploy over real sockets
//! (see `crates/bench/src/bin/cluster.rs` for that wiring).
//!
//! Run with: `cargo run --release --example multi_node_serve`

use viz_appaware::cluster::{NodeId, ShardStrategy, TestCluster};
use viz_appaware::volume::{BlockKey, BrickLayout, Dims3};

fn main() {
    // A bricked volume sharded over four nodes. Subtree placement keeps
    // each 2x2x2 sibling cell of the octree on one owner, so a viewer
    // refining into a region talks to one node, not four.
    let layout = BrickLayout::with_target_blocks(Dims3::cube(128), 256);
    let grid = [layout.grid.nx as u32, layout.grid.ny as u32, layout.grid.nz as u32];
    let cluster = TestCluster::new(4, ShardStrategy::Subtree { bits: 1, grid });
    let keys: Vec<BlockKey> = layout
        .block_ids()
        .map(|id| {
            let k = BlockKey::scalar(id);
            cluster.insert(k, vec![id.0 as f32; 64]);
            k
        })
        .collect();
    println!("{} blocks sharded over 4 nodes (map v{})", keys.len(), cluster.map().version());

    // The viewer's router fans each frame out to the owners in per-node
    // batches and merges the replies back into request order.
    let mut router = cluster.router("viewer");
    let frame: Vec<BlockKey> = keys.iter().copied().take(64).collect();
    let prefetch: Vec<(BlockKey, f64)> =
        keys.iter().copied().skip(64).take(64).map(|k| (k, 0.5)).collect();
    let reply = router.fetch(frame.clone(), prefetch);
    assert!(reply.blocks.iter().all(|b| b.result.is_ok()));
    println!(
        "frame 1: {} demand blocks in {} round(s), {} shed",
        reply.blocks.len(),
        reply.rounds,
        reply.shed
    );
    for n in 0..4 {
        println!("  node {n}: {} storage reads", cluster.reads(NodeId(n)));
    }

    // A node dies. The map drops it (v2) and its shards move to the ring
    // successors; the router notices the dead transport, refreshes the
    // map from a survivor, and replays the orphaned keys — the viewer
    // sees a slower frame, never a failed one.
    let mut cluster = cluster;
    let dead = NodeId(2);
    cluster.fail_node(dead);
    println!("node {dead} crashed; map now v{}", cluster.map().version());

    let reply = router.fetch(frame, vec![]);
    assert!(reply.blocks.iter().all(|b| b.result.is_ok()), "failover must not drop demand");
    println!(
        "frame 2: {} demand blocks in {} round(s) despite the crash",
        reply.blocks.len(),
        reply.rounds
    );
    println!("router learned map v{}; down: {:?}", router.map().version(), router.down_nodes());
    for n in cluster.live_nodes() {
        let m = cluster.node(n).unwrap().server().metrics();
        assert_eq!(m.demand_errors, 0);
    }
    println!("zero demand errors on every survivor");
}
