#!/bin/bash
# Regenerate every table and figure of the paper. Outputs land in results/.
set -u
cd "$(dirname "$0")"
BINS="table1 fig07 fig09 fig11 fig12 fig13 ablation futurework reuse"
for b in $BINS; do
  echo "=== running $b ==="
  cargo run --release -q -p viz-bench --bin "$b" -- "$@" \
    > "results/$b.txt" 2> "results/$b.log" || echo "$b FAILED"
done
echo "all experiments done"
