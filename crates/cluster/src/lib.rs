//! # viz-cluster — sharded multi-node block serving
//!
//! Scales the single-node [`viz_serve`] server out: every
//! [`viz_volume::BlockKey`] maps to exactly one *owner* node, clients
//! route each frame's demand to the owners directly, and a node asked
//! for a block it does not own forwards to the owner over the same VSRV
//! protocol clients speak.
//!
//! - [`shard`] — the [`ShardMap`]: consistent-hash ring placement (plus
//!   an octree-subtree-aware variant that co-locates spatial siblings),
//!   versioned and CRC-framed so nodes and clients detect skew.
//! - [`peer`] — node-to-node fetch: one VSRV session per peer pair,
//!   bounded retry, and a per-peer circuit breaker reusing the
//!   [`viz_fetch`] fault machinery.
//! - [`node`] — a [`ClusterNode`] wraps a [`viz_serve::Server`] whose
//!   engine reads through a [`RoutedSource`]; cross-session coalescing
//!   then dedupes concurrent remote fetches into one peer round trip.
//! - [`router`] — the client side: split a frame's demand per owner,
//!   merge replies, fail over along the ring-successor order the map
//!   itself defines, spill to a replica when the owner is overloaded.
//! - [`membership`] — deadline-based failure detection over `Ping` /
//!   `Pong` heartbeats: suspected nodes route around *before* a demand
//!   read pays a timeout, and re-admit the moment a probe succeeds.
//!   Heartbeats piggyback shard-map versions, so stale participants
//!   pull a newer map immediately (anti-entropy).
//! - [`testing`] — a deterministic in-process [`TestCluster`]: N nodes
//!   over one shared store on a virtual clock, synchronous transports,
//!   crash/restart/join, fabric partitions, slow storage, and corrupted
//!   reply frames in one call each.
//! - [`chaos`] — seeded, replayable fault schedules ([`ChaosPlan`])
//!   driven through the test cluster by [`chaos::run_plan`], reporting
//!   detection/recovery latency and the zero-demand-errors invariant.
//! - [`adapt`] — per-node closed loops: a [`NodeControl`] wraps a
//!   [`viz_adapt::ControlPlane`] around each node's server, tuning the
//!   local shed ladder against the node's own demand-p99 and publishing
//!   node-prefixed `node<N>_adapt_*` gauges so co-resident planes stay
//!   distinguishable in one scrape.
//! - [`obs`] — cluster observability glue: `TelemetryGet` replies →
//!   [`viz_telemetry::collect`] drains (Perfetto merge + Prometheus
//!   rollup), and the CRC-framed flight-recorder dump file.
//!
//! The deployment model is shared storage (every node can read every
//! block, as on a parallel file system): ownership concentrates each
//! block's pool residency and request coalescing on one node, but any
//! peer failure can always fall back to a local read — so sharding
//! optimizes locality and can never cost availability.
//!
//! ## Example
//!
//! ```
//! use viz_cluster::{NodeId, ShardStrategy, TestCluster};
//! use viz_volume::{BlockId, BlockKey};
//!
//! let cluster = TestCluster::new(3, ShardStrategy::Ring);
//! for i in 0..32u32 {
//!     cluster.insert(BlockKey::scalar(BlockId(i)), vec![i as f32; 8]);
//! }
//! let mut router = cluster.router("viewer");
//! let demand: Vec<_> = (0..32u32).map(|i| BlockKey::scalar(BlockId(i))).collect();
//! let reply = router.fetch(demand.clone(), vec![]);
//! assert_eq!(reply.blocks.len(), 32);
//! assert!(reply.blocks.iter().all(|b| b.result.is_ok()));
//! // Each key was read by its owner node, not by whichever node was asked.
//! let total: u64 = (0..3).map(|n| cluster.reads(NodeId(n))).sum();
//! assert_eq!(total, 32);
//! ```

#![warn(missing_docs)]

pub mod adapt;
pub mod chaos;
pub mod membership;
pub mod node;
pub mod obs;
pub mod peer;
pub mod router;
pub mod shard;
pub mod testing;

pub use adapt::NodeControl;
pub use chaos::{ChaosAction, ChaosEvent, ChaosOptions, ChaosPlan, ChaosReport};
pub use membership::{Membership, MembershipConfig};
pub use node::{ClusterConfig, ClusterNode, RoutedSource};
pub use obs::{
    drain_from_wire, read_flight_dump, section_from_drain, sections_from_snapshot,
    write_flight_dump, DumpSection,
};
pub use peer::{Connector, LinkFactory, PeerClient, PeerConfig, PeerLink, TcpPeerLink};
pub use router::{Router, RouterConfig, RouterReply};
pub use shard::{MapError, NodeId, ShardMap, ShardStrategy};
pub use testing::{SyncLink, SyncTransport, TestCluster};
