//! A deterministic in-process multi-node cluster: every node's engine is
//! `workers = 0`, every "connection" is a synchronous function call, and
//! source time is a shared [`VirtualClock`] — so cluster tests replay
//! byte-for-byte, with no sockets, threads, or sleeps.
//!
//! [`SyncLink`] (node→node) and [`SyncTransport`] (client→node) both
//! resolve a frame by calling the target node's
//! [`ClusterNode::serve_frame`] on the calling thread. A peer forward
//! under map skew therefore *recurses* — node A serving a frame calls
//! into node B, which may call onward — and a thread-local depth guard
//! converts runaway recursion (a routing cycle two maps could otherwise
//! sustain) into a clean `WouldBlock`, which the peer layer treats like
//! any other peer failure: fall back to local storage.

use crate::node::{ClusterConfig, ClusterNode};
use crate::peer::{Connector, PeerLink};
use crate::router::{Router, RouterConfig};
use crate::shard::{splitmix64, NodeId, ShardMap, ShardStrategy};
use std::cell::Cell;
use std::collections::{HashMap, HashSet, VecDeque};
use std::io;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;
use viz_fetch::{FetchConfig, InstrumentedSource, VirtualClock, VirtualClockSource};
use viz_serve::proto::{decode_response, encode_request};
use viz_serve::{Request, Response, ServeClient, ServeConfig, Transport};
use viz_volume::{BlockKey, MemBlockStore};

/// The in-process "network": live nodes plus per-target fault state.
/// Removal from `nodes` models a crash (callers see
/// `ConnectionRefused`); `blocked` models a partition at the fabric
/// (the node stays alive but inbound frames refuse); `corrupt` flips
/// one byte in every reply a target serves (the "bad NIC" fault — CRC
/// framing rejects it at the caller).
#[derive(Default)]
struct Fabric {
    nodes: Mutex<HashMap<u32, Arc<ClusterNode>>>,
    blocked: Mutex<HashSet<u32>>,
    /// Corrupting targets, each with a counter seeding the
    /// deterministic flip position.
    corrupt: Mutex<HashMap<u32, u64>>,
}

/// Shared handle to the fabric every link and transport resolves
/// through.
type NodeRegistry = Arc<Fabric>;

fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

thread_local! {
    /// Frames currently being served recursively on this thread.
    static SERVE_DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// How deep synchronous node→node recursion may go before a link refuses
/// with `WouldBlock`. Deep enough for legitimate client→node→peer chains
/// (depth 2) plus one skew-induced extra hop; shallow enough to stop a
/// cycle immediately.
const MAX_SERVE_DEPTH: u32 = 4;

fn lookup(registry: &NodeRegistry, id: NodeId) -> io::Result<Arc<ClusterNode>> {
    relock(&registry.nodes)
        .get(&id.0)
        .cloned()
        .ok_or_else(|| io::Error::new(io::ErrorKind::ConnectionRefused, format!("{id} is offline")))
}

fn serve_sync(registry: &NodeRegistry, id: NodeId, frame: &[u8]) -> io::Result<Vec<u8>> {
    if relock(&registry.blocked).contains(&id.0) {
        return Err(io::Error::new(
            io::ErrorKind::ConnectionRefused,
            format!("{id} is partitioned"),
        ));
    }
    let node = lookup(registry, id)?;
    let depth = SERVE_DEPTH.with(|d| d.get());
    if depth >= MAX_SERVE_DEPTH {
        return Err(io::Error::new(io::ErrorKind::WouldBlock, "synchronous serve recursion cap"));
    }
    SERVE_DEPTH.with(|d| d.set(depth + 1));
    let mut reply = node.serve_frame(frame);
    SERVE_DEPTH.with(|d| d.set(depth));
    if let Some(count) = relock(&registry.corrupt).get_mut(&id.0) {
        // One deterministic byte flip anywhere in the frame breaks
        // either the length prefix or the CRC, so the caller always
        // sees a decode failure rather than silently bad data.
        let pos = (splitmix64(*count) as usize) % reply.len();
        reply[pos] ^= 0x40;
        *count += 1;
    }
    Ok(reply)
}

/// A [`PeerLink`] that serves each round trip by calling the target
/// node's dispatcher on this thread. Looks the target up per call, so a
/// failed node turns into `ConnectionRefused` exactly like a dead socket.
pub struct SyncLink {
    registry: NodeRegistry,
    target: NodeId,
}

impl PeerLink for SyncLink {
    fn round_trip(&mut self, req: &Request) -> io::Result<Response> {
        let reply = serve_sync(&self.registry, self.target, &encode_request(req))?;
        Ok(decode_response(&reply)?)
    }
}

/// A [`Transport`] over the same synchronous call path, for
/// [`ServeClient`]s talking to one node directly.
pub struct SyncTransport {
    registry: NodeRegistry,
    target: NodeId,
    replies: VecDeque<Vec<u8>>,
}

impl Transport for SyncTransport {
    fn send(&mut self, frame: &[u8]) -> io::Result<()> {
        let reply = serve_sync(&self.registry, self.target, frame)?;
        self.replies.push_back(reply);
        Ok(())
    }

    fn recv(&mut self) -> io::Result<Vec<u8>> {
        self.replies.pop_front().ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "no reply queued; send first")
        })
    }

    fn try_recv(&mut self) -> io::Result<Option<Vec<u8>>> {
        Ok(self.replies.pop_front())
    }
}

/// An in-process cluster over one shared [`MemBlockStore`] (the "shared
/// parallel file system" of the deployment model): every node can read
/// every block, each through its own [`InstrumentedSource`] tap so tests
/// can assert *which* node did the reading.
pub struct TestCluster {
    store: Arc<MemBlockStore>,
    clock: Arc<VirtualClock>,
    registry: NodeRegistry,
    taps: HashMap<u32, Arc<InstrumentedSource>>,
    map: ShardMap,
    serve_cfg: ServeConfig,
    cluster_cfg: ClusterConfig,
}

impl TestCluster {
    /// `n` nodes (ids `0..n`) sharded by `strategy`.
    pub fn new(n: u32, strategy: ShardStrategy) -> TestCluster {
        Self::with_configs(n, strategy, ServeConfig::default(), ClusterConfig::deterministic())
    }

    /// [`TestCluster::new`] with explicit per-node serve and cluster
    /// configs (also used when rebuilding a node on restart or join).
    pub fn with_configs(
        n: u32,
        strategy: ShardStrategy,
        serve_cfg: ServeConfig,
        cluster_cfg: ClusterConfig,
    ) -> TestCluster {
        let ids: Vec<NodeId> = (0..n).map(NodeId).collect();
        let mut cluster = TestCluster {
            store: Arc::new(MemBlockStore::new()),
            clock: Arc::new(VirtualClock::new()),
            registry: Arc::new(Fabric::default()),
            taps: HashMap::new(),
            map: ShardMap::new(&ids, 64, strategy),
            serve_cfg,
            cluster_cfg,
        };
        for id in ids {
            cluster.build_node(id);
        }
        cluster
    }

    /// Build (or rebuild) node `id` over the shared store under the
    /// current map, reusing its tap if it had one so read accounting
    /// spans restarts.
    fn build_node(&mut self, id: NodeId) {
        let tap = self
            .taps
            .entry(id.0)
            .or_insert_with(|| {
                let timed = VirtualClockSource::uniform(self.store.clone(), self.clock.clone(), 1);
                Arc::new(InstrumentedSource::new(Arc::new(timed), Duration::ZERO))
            })
            .clone();
        let node = ClusterNode::new(
            id,
            tap,
            self.map.clone(),
            Self::make_connector(self.registry.clone()),
            FetchConfig::deterministic(),
            self.serve_cfg.clone(),
            self.cluster_cfg.clone(),
        );
        relock(&self.registry.nodes).insert(id.0, node);
    }

    fn make_connector(
        registry: NodeRegistry,
    ) -> impl Fn(NodeId) -> io::Result<Box<dyn PeerLink>> + Send + Sync + 'static {
        move |id| {
            Ok(Box::new(SyncLink { registry: registry.clone(), target: id }) as Box<dyn PeerLink>)
        }
    }

    /// The shared backing store (seed blocks here).
    pub fn store(&self) -> &Arc<MemBlockStore> {
        &self.store
    }

    /// Insert a block into shared storage.
    pub fn insert(&self, key: BlockKey, data: Vec<f32>) {
        self.store.insert(key, data);
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &Arc<VirtualClock> {
        &self.clock
    }

    /// The authoritative (control-plane) map.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// A live node, if it has not been failed.
    pub fn node(&self, id: NodeId) -> Option<Arc<ClusterNode>> {
        relock(&self.registry.nodes).get(&id.0).cloned()
    }

    /// Live node ids, sorted.
    pub fn live_nodes(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> =
            relock(&self.registry.nodes).keys().map(|&id| NodeId(id)).collect();
        v.sort();
        v
    }

    /// Storage reads issued *by* `id`'s local source (local + forwarded
    /// work it performed), counting reads even after the node failed.
    pub fn reads(&self, id: NodeId) -> u64 {
        self.taps.get(&id.0).map_or(0, |t| t.reads())
    }

    /// A connector usable by routers and external peer clients.
    pub fn connector(&self) -> Arc<Connector> {
        Arc::new(Self::make_connector(self.registry.clone()))
    }

    /// A router named `name` holding the current map.
    pub fn router(&self, name: &str) -> Router {
        self.router_with(name, RouterConfig::default())
    }

    /// [`TestCluster::router`] with explicit tuning.
    pub fn router_with(&self, name: &str, cfg: RouterConfig) -> Router {
        Router::new(name, self.map.clone(), self.connector(), cfg)
    }

    /// A direct client to one node (bypasses routing; used to compare
    /// single-node behavior and to drive peer-coalescing assertions).
    pub fn client(&self, id: NodeId) -> ServeClient<SyncTransport> {
        ServeClient::new(SyncTransport {
            registry: self.registry.clone(),
            target: id,
            replies: VecDeque::new(),
        })
    }

    /// Crash `id`: it vanishes from the registry (in-flight callers see
    /// `ConnectionRefused`), and the successor map — with `id` removed
    /// and the version bumped — installs on every survivor. Returns the
    /// new map version.
    pub fn fail_node(&mut self, id: NodeId) -> u64 {
        relock(&self.registry.nodes).remove(&id.0);
        self.reassign_without(id)
    }

    /// Crash `id` *without* reassigning: the node vanishes but every
    /// surviving map still names it — the window between a crash and the
    /// control plane noticing. Peer fetches to it fail, fall back to
    /// local reads, and open the callers' breakers.
    pub fn partition_node(&mut self, id: NodeId) {
        relock(&self.registry.nodes).remove(&id.0);
    }

    /// Partition `id` at the fabric: inbound frames refuse while the
    /// node object stays alive, so its own outbound traffic still flows
    /// — the asymmetric half of a real network partition.
    /// [`TestCluster::heal`] reconnects it.
    pub fn isolate(&self, id: NodeId) {
        relock(&self.registry.blocked).insert(id.0);
    }

    /// Reconnect a node isolated by [`TestCluster::isolate`].
    pub fn heal(&self, id: NodeId) {
        relock(&self.registry.blocked).remove(&id.0);
    }

    /// Start (`on`) or stop corrupting every reply frame `id` serves:
    /// one deterministically-seeded byte flip per frame, which CRC
    /// framing converts into a decode failure at the caller.
    pub fn corrupt_from(&self, id: NodeId, on: bool) {
        let mut corrupt = relock(&self.registry.corrupt);
        if on {
            corrupt.entry(id.0).or_insert(0);
        } else {
            corrupt.remove(&id.0);
        }
    }

    /// Inject `delay` of real wall-clock sleep into every storage read
    /// `id` performs — the slow-node fault. `Duration::ZERO` restores
    /// full speed.
    pub fn set_read_delay(&self, id: NodeId, delay: Duration) {
        if let Some(tap) = self.taps.get(&id.0) {
            tap.set_delay(delay);
        }
    }

    /// Restart a crashed node: rebuild it over the shared store (same
    /// tap, so read accounting spans the restart) under the current map
    /// — re-adding it via [`ShardMap::with`] if a reassignment dropped
    /// it — and push that map to every live node. Returns the map
    /// version in force afterwards.
    pub fn restart_node(&mut self, id: NodeId) -> u64 {
        if !self.map.contains(id) {
            self.map = self.map.with(id);
        }
        self.build_node(id);
        self.push_map();
        self.map.version()
    }

    /// Grow the cluster: a brand-new node joins under [`ShardMap::with`]
    /// (bounded movement — only keys whose ring positions land on the
    /// newcomer move) and the new map pushes everywhere. Returns the new
    /// map version.
    pub fn join_node(&mut self, id: NodeId) -> u64 {
        self.map = self.map.with(id);
        self.build_node(id);
        self.push_map();
        self.map.version()
    }

    /// One membership round at the current virtual tick: every live
    /// node, in id order, runs [`ClusterNode::heartbeat_tick`]. Returns
    /// each node's `(id, alive, suspect)` counts.
    pub fn heartbeat_all(&self) -> Vec<(NodeId, usize, usize)> {
        let now = self.clock.now();
        self.live_nodes()
            .into_iter()
            .filter_map(|id| {
                self.node(id).map(|n| {
                    let (alive, suspect) = n.heartbeat_tick(now);
                    (id, alive, suspect)
                })
            })
            .collect()
    }

    fn push_map(&self) {
        let nodes: Vec<Arc<ClusterNode>> = relock(&self.registry.nodes).values().cloned().collect();
        for node in nodes {
            node.install_map(self.map.clone());
        }
    }

    /// Gracefully retire `id`: drain its server first (flushing queued
    /// demand), then remove it and reassign as in
    /// [`TestCluster::fail_node`].
    pub fn drain_node(&mut self, id: NodeId) -> u64 {
        if let Some(node) = self.node(id) {
            node.server().drain();
        }
        self.fail_node(id)
    }

    fn reassign_without(&mut self, id: NodeId) -> u64 {
        self.map = self.map.without(id);
        self.push_map();
        self.map.version()
    }
}
