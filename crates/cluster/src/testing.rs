//! A deterministic in-process multi-node cluster: every node's engine is
//! `workers = 0`, every "connection" is a synchronous function call, and
//! source time is a shared [`VirtualClock`] — so cluster tests replay
//! byte-for-byte, with no sockets, threads, or sleeps.
//!
//! [`SyncLink`] (node→node) and [`SyncTransport`] (client→node) both
//! resolve a frame by calling the target node's
//! [`ClusterNode::serve_frame`] on the calling thread. A peer forward
//! under map skew therefore *recurses* — node A serving a frame calls
//! into node B, which may call onward — and a thread-local depth guard
//! converts runaway recursion (a routing cycle two maps could otherwise
//! sustain) into a clean `WouldBlock`, which the peer layer treats like
//! any other peer failure: fall back to local storage.

use crate::node::{ClusterConfig, ClusterNode};
use crate::peer::{Connector, PeerLink};
use crate::router::{Router, RouterConfig};
use crate::shard::{NodeId, ShardMap, ShardStrategy};
use std::cell::Cell;
use std::collections::{HashMap, VecDeque};
use std::io;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;
use viz_fetch::{FetchConfig, InstrumentedSource, VirtualClock, VirtualClockSource};
use viz_serve::proto::{decode_response, encode_request};
use viz_serve::{Request, Response, ServeClient, ServeConfig, Transport};
use viz_volume::{BlockKey, MemBlockStore};

/// Live nodes by id; removal is how the harness models a crash.
type NodeRegistry = Arc<Mutex<HashMap<u32, Arc<ClusterNode>>>>;

fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

thread_local! {
    /// Frames currently being served recursively on this thread.
    static SERVE_DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// How deep synchronous node→node recursion may go before a link refuses
/// with `WouldBlock`. Deep enough for legitimate client→node→peer chains
/// (depth 2) plus one skew-induced extra hop; shallow enough to stop a
/// cycle immediately.
const MAX_SERVE_DEPTH: u32 = 4;

fn lookup(registry: &NodeRegistry, id: NodeId) -> io::Result<Arc<ClusterNode>> {
    relock(registry)
        .get(&id.0)
        .cloned()
        .ok_or_else(|| io::Error::new(io::ErrorKind::ConnectionRefused, format!("{id} is offline")))
}

fn serve_sync(registry: &NodeRegistry, id: NodeId, frame: &[u8]) -> io::Result<Vec<u8>> {
    let node = lookup(registry, id)?;
    let depth = SERVE_DEPTH.with(|d| d.get());
    if depth >= MAX_SERVE_DEPTH {
        return Err(io::Error::new(io::ErrorKind::WouldBlock, "synchronous serve recursion cap"));
    }
    SERVE_DEPTH.with(|d| d.set(depth + 1));
    let reply = node.serve_frame(frame);
    SERVE_DEPTH.with(|d| d.set(depth));
    Ok(reply)
}

/// A [`PeerLink`] that serves each round trip by calling the target
/// node's dispatcher on this thread. Looks the target up per call, so a
/// failed node turns into `ConnectionRefused` exactly like a dead socket.
pub struct SyncLink {
    registry: NodeRegistry,
    target: NodeId,
}

impl PeerLink for SyncLink {
    fn round_trip(&mut self, req: &Request) -> io::Result<Response> {
        let reply = serve_sync(&self.registry, self.target, &encode_request(req))?;
        Ok(decode_response(&reply)?)
    }
}

/// A [`Transport`] over the same synchronous call path, for
/// [`ServeClient`]s talking to one node directly.
pub struct SyncTransport {
    registry: NodeRegistry,
    target: NodeId,
    replies: VecDeque<Vec<u8>>,
}

impl Transport for SyncTransport {
    fn send(&mut self, frame: &[u8]) -> io::Result<()> {
        let reply = serve_sync(&self.registry, self.target, frame)?;
        self.replies.push_back(reply);
        Ok(())
    }

    fn recv(&mut self) -> io::Result<Vec<u8>> {
        self.replies.pop_front().ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "no reply queued; send first")
        })
    }

    fn try_recv(&mut self) -> io::Result<Option<Vec<u8>>> {
        Ok(self.replies.pop_front())
    }
}

/// An in-process cluster over one shared [`MemBlockStore`] (the "shared
/// parallel file system" of the deployment model): every node can read
/// every block, each through its own [`InstrumentedSource`] tap so tests
/// can assert *which* node did the reading.
pub struct TestCluster {
    store: Arc<MemBlockStore>,
    clock: Arc<VirtualClock>,
    registry: NodeRegistry,
    taps: HashMap<u32, Arc<InstrumentedSource>>,
    map: ShardMap,
}

impl TestCluster {
    /// `n` nodes (ids `0..n`) sharded by `strategy`.
    pub fn new(n: u32, strategy: ShardStrategy) -> TestCluster {
        Self::with_configs(n, strategy, ServeConfig::default(), ClusterConfig::deterministic())
    }

    /// [`TestCluster::new`] with explicit per-node serve and cluster
    /// configs.
    pub fn with_configs(
        n: u32,
        strategy: ShardStrategy,
        serve_cfg: ServeConfig,
        cluster_cfg: ClusterConfig,
    ) -> TestCluster {
        let store = Arc::new(MemBlockStore::new());
        let clock = Arc::new(VirtualClock::new());
        let ids: Vec<NodeId> = (0..n).map(NodeId).collect();
        let map = ShardMap::new(&ids, 64, strategy);
        let registry: NodeRegistry = Arc::new(Mutex::new(HashMap::new()));
        let mut taps = HashMap::new();
        for id in ids {
            let timed = VirtualClockSource::uniform(store.clone(), clock.clone(), 1);
            let tap = Arc::new(InstrumentedSource::new(Arc::new(timed), Duration::ZERO));
            taps.insert(id.0, tap.clone());
            let node = ClusterNode::new(
                id,
                tap,
                map.clone(),
                Self::make_connector(registry.clone()),
                FetchConfig::deterministic(),
                serve_cfg.clone(),
                cluster_cfg.clone(),
            );
            relock(&registry).insert(id.0, node);
        }
        TestCluster { store, clock, registry, taps, map }
    }

    fn make_connector(
        registry: NodeRegistry,
    ) -> impl Fn(NodeId) -> io::Result<Box<dyn PeerLink>> + Send + Sync + 'static {
        move |id| {
            Ok(Box::new(SyncLink { registry: registry.clone(), target: id }) as Box<dyn PeerLink>)
        }
    }

    /// The shared backing store (seed blocks here).
    pub fn store(&self) -> &Arc<MemBlockStore> {
        &self.store
    }

    /// Insert a block into shared storage.
    pub fn insert(&self, key: BlockKey, data: Vec<f32>) {
        self.store.insert(key, data);
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &Arc<VirtualClock> {
        &self.clock
    }

    /// The authoritative (control-plane) map.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// A live node, if it has not been failed.
    pub fn node(&self, id: NodeId) -> Option<Arc<ClusterNode>> {
        relock(&self.registry).get(&id.0).cloned()
    }

    /// Live node ids, sorted.
    pub fn live_nodes(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = relock(&self.registry).keys().map(|&id| NodeId(id)).collect();
        v.sort();
        v
    }

    /// Storage reads issued *by* `id`'s local source (local + forwarded
    /// work it performed), counting reads even after the node failed.
    pub fn reads(&self, id: NodeId) -> u64 {
        self.taps.get(&id.0).map_or(0, |t| t.reads())
    }

    /// A connector usable by routers and external peer clients.
    pub fn connector(&self) -> Arc<Connector> {
        Arc::new(Self::make_connector(self.registry.clone()))
    }

    /// A router named `name` holding the current map.
    pub fn router(&self, name: &str) -> Router {
        self.router_with(name, RouterConfig::default())
    }

    /// [`TestCluster::router`] with explicit tuning.
    pub fn router_with(&self, name: &str, cfg: RouterConfig) -> Router {
        Router::new(name, self.map.clone(), self.connector(), cfg)
    }

    /// A direct client to one node (bypasses routing; used to compare
    /// single-node behavior and to drive peer-coalescing assertions).
    pub fn client(&self, id: NodeId) -> ServeClient<SyncTransport> {
        ServeClient::new(SyncTransport {
            registry: self.registry.clone(),
            target: id,
            replies: VecDeque::new(),
        })
    }

    /// Crash `id`: it vanishes from the registry (in-flight callers see
    /// `ConnectionRefused`), and the successor map — with `id` removed
    /// and the version bumped — installs on every survivor. Returns the
    /// new map version.
    pub fn fail_node(&mut self, id: NodeId) -> u64 {
        relock(&self.registry).remove(&id.0);
        self.reassign_without(id)
    }

    /// Crash `id` *without* reassigning: the node vanishes but every
    /// surviving map still names it — the window between a crash and the
    /// control plane noticing. Peer fetches to it fail, fall back to
    /// local reads, and open the callers' breakers.
    pub fn partition_node(&mut self, id: NodeId) {
        relock(&self.registry).remove(&id.0);
    }

    /// Gracefully retire `id`: drain its server first (flushing queued
    /// demand), then remove it and reassign as in
    /// [`TestCluster::fail_node`].
    pub fn drain_node(&mut self, id: NodeId) -> u64 {
        if let Some(node) = self.node(id) {
            node.server().drain();
        }
        self.fail_node(id)
    }

    fn reassign_without(&mut self, id: NodeId) -> u64 {
        self.map = self.map.without(id);
        let survivors: Vec<Arc<ClusterNode>> = relock(&self.registry).values().cloned().collect();
        for node in survivors {
            node.install_map(self.map.clone());
        }
        self.map.version()
    }
}
