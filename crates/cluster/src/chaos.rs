//! Deterministic chaos: seeded fault schedules driven through a
//! [`TestCluster`] on the virtual clock.
//!
//! A [`ChaosPlan`] is a list of `(step, action)` events — crash, restart,
//! fabric partition, slow storage, corrupted reply frames — generated
//! from a seed so every run replays exactly. [`run_plan`] executes the
//! plan step by step: apply the step's faults, advance the clock, run
//! one membership round (every node's
//! [`crate::ClusterNode::heartbeat_tick`] plus the router's
//! [`crate::Router::heartbeat`]), route one frame of demand through the
//! router, and record what happened. The report carries the two numbers
//! the resilience layer is judged on — steps from fault injection to
//! *detection* (the router or any node marks the target down/suspect)
//! and steps from the repair action to *re-admission* (no one marks it
//! anymore) — alongside the invariant every schedule must uphold: zero
//! demand errors, no matter what the plan did.

use crate::router::Router;
use crate::shard::{splitmix64, NodeId};
use crate::testing::TestCluster;
use std::time::Duration;
use viz_telemetry::{instant, EventKind as Ev};
use viz_volume::{BlockId, BlockKey};

/// One fault (or repair) the harness can apply to a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// Remove the node from the fabric without reassigning its keys —
    /// the window between a crash and the control plane noticing.
    Crash(NodeId),
    /// Rebuild a crashed node over the shared store and push the current
    /// map everywhere.
    Restart(NodeId),
    /// Refuse inbound frames to the node while it stays alive.
    Isolate(NodeId),
    /// Undo [`ChaosAction::Isolate`].
    Heal(NodeId),
    /// Inject this many microseconds of real sleep into each storage
    /// read the node performs.
    Slow(NodeId, u64),
    /// Undo [`ChaosAction::Slow`].
    Unslow(NodeId),
    /// Flip one byte in every reply frame the node serves (callers see
    /// CRC/decode failures).
    Corrupt(NodeId),
    /// Undo [`ChaosAction::Corrupt`].
    Uncorrupt(NodeId),
}

impl ChaosAction {
    /// `(fault family, is_repair)` for telemetry: families are Crash 0,
    /// Isolate 1, Slow 2, Corrupt 3; the repair bit marks the undo
    /// action. Packed into [`Ev::FaultInjected`]'s `arg` as
    /// `family << 1 | repair`.
    pub fn wire_code(&self) -> (u64, bool) {
        match *self {
            ChaosAction::Crash(_) => (0, false),
            ChaosAction::Restart(_) => (0, true),
            ChaosAction::Isolate(_) => (1, false),
            ChaosAction::Heal(_) => (1, true),
            ChaosAction::Slow(..) => (2, false),
            ChaosAction::Unslow(_) => (2, true),
            ChaosAction::Corrupt(_) => (3, false),
            ChaosAction::Uncorrupt(_) => (3, true),
        }
    }

    /// The node this action targets.
    pub fn target(&self) -> NodeId {
        match *self {
            ChaosAction::Crash(n)
            | ChaosAction::Restart(n)
            | ChaosAction::Isolate(n)
            | ChaosAction::Heal(n)
            | ChaosAction::Slow(n, _)
            | ChaosAction::Unslow(n)
            | ChaosAction::Corrupt(n)
            | ChaosAction::Uncorrupt(n) => n,
        }
    }
}

/// One scheduled action.
#[derive(Debug, Clone, Copy)]
pub struct ChaosEvent {
    /// The driver step (0-based) at which the action applies.
    pub step: u32,
    /// What happens.
    pub action: ChaosAction,
}

/// A replayable fault schedule.
#[derive(Debug, Clone, Default)]
pub struct ChaosPlan {
    /// Events in step order (ties applied in list order).
    pub events: Vec<ChaosEvent>,
}

impl ChaosPlan {
    /// A seeded schedule over `steps` driver steps against node ids
    /// `0..nodes` (`nodes >= 2`, or every fault would be unroutable).
    ///
    /// The generator keeps the schedule *survivable by construction*:
    /// one fault window at a time, every fault paired with its repair a
    /// few steps later, and a quiet tail so the last repair's
    /// re-admission resolves inside the plan. Randomness (from
    /// `splitmix64` over the seed) decides fault kind, target, window
    /// length, and gaps — not whether the plan is fair.
    pub fn seeded(seed: u64, nodes: u32, steps: u32) -> ChaosPlan {
        assert!(nodes >= 2, "chaos plans need at least two nodes");
        let mut ctr = seed;
        let mut rnd = move || {
            ctr = ctr.wrapping_add(1);
            splitmix64(ctr)
        };
        let tail = 8u32; // quiet steps reserved for the last re-admission
        let mut events = Vec::new();
        let mut step = 2u32;
        while step + tail < steps {
            let node = NodeId((rnd() % u64::from(nodes)) as u32);
            let window = 2 + (rnd() % 3) as u32;
            if step + window + tail >= steps {
                break;
            }
            let (fault, repair) = match rnd() % 4 {
                0 => (ChaosAction::Crash(node), ChaosAction::Restart(node)),
                1 => (ChaosAction::Isolate(node), ChaosAction::Heal(node)),
                2 => {
                    let micros = 200 + rnd() % 600;
                    (ChaosAction::Slow(node, micros), ChaosAction::Unslow(node))
                }
                _ => (ChaosAction::Corrupt(node), ChaosAction::Uncorrupt(node)),
            };
            events.push(ChaosEvent { step, action: fault });
            events.push(ChaosEvent { step: step + window, action: repair });
            step += window + 2 + (rnd() % 3) as u32;
        }
        ChaosPlan { events }
    }
}

/// Driver tuning for [`run_plan`].
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// Demand keys routed per step (a rotating window over `key_space`).
    pub demand_per_step: usize,
    /// Distinct block keys the workload cycles through (seeded into the
    /// shared store up front).
    pub key_space: u32,
    /// Virtual ticks the clock advances per step (drives suspicion
    /// deadlines).
    pub ticks_per_step: u64,
    /// When set, the first flight-recorder trigger observed during the
    /// run writes a cluster flight dump here
    /// ([`crate::obs::write_flight_dump`]) — the injected fault's
    /// cross-node timeline, reconstructable offline. Requires the
    /// telemetry gate on to observe anything.
    pub flight_dump: Option<std::path::PathBuf>,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions { demand_per_step: 8, key_space: 64, ticks_per_step: 10, flight_dump: None }
    }
}

/// What a plan run observed.
#[derive(Debug, Clone, Default)]
pub struct ChaosReport {
    /// Driver steps executed.
    pub steps: u32,
    /// Demand blocks requested across all steps.
    pub demand_blocks: u64,
    /// Demand blocks that came back as errors — the invariant says 0.
    pub demand_errors: u64,
    /// Steps from each unreachability fault (crash, isolate, corrupt)
    /// to the cluster marking the target down or suspect.
    pub detections: Vec<u32>,
    /// Steps from each repair action to full re-admission (no router
    /// down mark, no node suspicion).
    pub recoveries: Vec<u32>,
    /// Virtual ticks each step's demand frame took.
    pub frame_ticks: Vec<u64>,
    /// Wall-clock seconds each step's demand frame took. Deterministic
    /// assertions use the virtual numbers; benches read these.
    pub frame_wall_s: Vec<f64>,
    /// Flight-recorder triggers observed during the run (0 with the
    /// telemetry gate off).
    pub triggers: u64,
    /// Events written to the flight dump, when one was triggered and
    /// [`ChaosOptions::flight_dump`] named a path.
    pub dump_events: u64,
}

fn chaos_key(i: u32) -> BlockKey {
    BlockKey::scalar(BlockId(i))
}

/// Whether anyone — the router or a live node's failure detector —
/// currently holds `target` unreachable.
fn marked(cluster: &TestCluster, router: &Router, target: NodeId) -> bool {
    router.down_nodes().contains(&target)
        || cluster
            .live_nodes()
            .into_iter()
            .filter(|&id| id != target)
            .filter_map(|id| cluster.node(id))
            .any(|n| n.is_suspect(target))
}

/// Execute `plan` (see module docs). Per step: apply due actions,
/// advance the virtual clock, run one membership round everywhere,
/// route one demand frame, and update the detection/recovery trackers.
pub fn run_plan(
    cluster: &mut TestCluster,
    router: &mut Router,
    plan: &ChaosPlan,
    opts: &ChaosOptions,
) -> ChaosReport {
    for i in 0..opts.key_space {
        cluster.insert(chaos_key(i), vec![i as f32; 8]);
    }
    let steps = plan.events.iter().map(|e| e.step + 1).max().unwrap_or(0) + 8;
    let mut report = ChaosReport::default();
    // Faults awaiting detection / repairs awaiting re-admission, each
    // with the step its action applied.
    let mut pending_detect: Vec<(NodeId, u32)> = Vec::new();
    let mut pending_recover: Vec<(NodeId, u32)> = Vec::new();
    for step in 0..steps {
        for ev in plan.events.iter().filter(|e| e.step == step) {
            let target = ev.action.target();
            // The injection lands on the timeline *before* its effects,
            // so a reconstructed trace shows cause then symptom.
            let (family, repair) = ev.action.wire_code();
            instant(Ev::FaultInjected, u64::from(target.0), family << 1 | u64::from(repair));
            match ev.action {
                ChaosAction::Crash(n) => cluster.partition_node(n),
                ChaosAction::Restart(n) => {
                    cluster.restart_node(n);
                }
                ChaosAction::Isolate(n) => cluster.isolate(n),
                ChaosAction::Heal(n) => cluster.heal(n),
                ChaosAction::Slow(n, micros) => {
                    cluster.set_read_delay(n, Duration::from_micros(micros));
                }
                ChaosAction::Unslow(n) => cluster.set_read_delay(n, Duration::ZERO),
                ChaosAction::Corrupt(n) => cluster.corrupt_from(n, true),
                ChaosAction::Uncorrupt(n) => cluster.corrupt_from(n, false),
            }
            match ev.action {
                ChaosAction::Crash(_) | ChaosAction::Isolate(_) | ChaosAction::Corrupt(_) => {
                    pending_detect.push((target, step));
                    pending_recover.retain(|(n, _)| *n != target);
                }
                ChaosAction::Restart(_) | ChaosAction::Heal(_) | ChaosAction::Uncorrupt(_) => {
                    pending_recover.push((target, step));
                    // An undetected fault that already got repaired has
                    // nothing left to detect.
                    pending_detect.retain(|(n, _)| *n != target);
                }
                ChaosAction::Slow(..) | ChaosAction::Unslow(_) => {}
            }
        }
        cluster.clock().advance(opts.ticks_per_step);
        cluster.heartbeat_all();
        router.heartbeat();
        // A rotating demand window so ownership of the requested keys
        // moves across nodes over the run.
        let demand: Vec<BlockKey> = (0..opts.demand_per_step as u32)
            .map(|i| chaos_key((step.wrapping_mul(3) + i) % opts.key_space))
            .collect();
        let t0 = cluster.clock().now();
        let w0 = std::time::Instant::now();
        let reply = router.fetch(demand, Vec::new());
        report.frame_wall_s.push(w0.elapsed().as_secs_f64());
        report.frame_ticks.push(cluster.clock().now() - t0);
        report.demand_blocks += reply.blocks.len() as u64;
        report.demand_errors += reply.blocks.iter().filter(|b| b.result.is_err()).count() as u64;
        pending_detect.retain(|&(n, since)| {
            if marked(cluster, router, n) {
                report.detections.push(step - since);
                false
            } else {
                true
            }
        });
        pending_recover.retain(|&(n, since)| {
            if !marked(cluster, router, n) {
                report.recoveries.push(step - since);
                false
            } else {
                true
            }
        });
        // Pump the rings through the flight recorder and poll its
        // triggers: the first one during the run cuts the dump.
        if viz_telemetry::enabled() {
            let _ = viz_telemetry::drain();
            let fired = viz_telemetry::flight::take_triggers();
            report.triggers += fired.len() as u64;
            if !fired.is_empty() && report.dump_events == 0 {
                if let Some(path) = &opts.flight_dump {
                    let mut snap = viz_telemetry::flight::snapshot_history();
                    snap.triggers = fired;
                    let sections = crate::obs::sections_from_snapshot(&snap);
                    if let Ok(n) = crate::obs::write_flight_dump(path, &sections) {
                        report.dump_events = n;
                    }
                }
            }
        }
    }
    report.steps = steps;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_replay_and_pair_every_fault() {
        let a = ChaosPlan::seeded(42, 4, 40);
        let b = ChaosPlan::seeded(42, 4, 40);
        assert_eq!(a.events.len(), b.events.len());
        for (x, y) in a.events.iter().zip(&b.events) {
            assert_eq!(x.step, y.step);
            assert_eq!(x.action, y.action);
        }
        assert!(!a.events.is_empty());
        // Every fault has a later repair on the same node.
        for (i, ev) in a.events.iter().enumerate() {
            let repair = match ev.action {
                ChaosAction::Crash(n) => Some(ChaosAction::Restart(n)),
                ChaosAction::Isolate(n) => Some(ChaosAction::Heal(n)),
                ChaosAction::Slow(n, _) => Some(ChaosAction::Unslow(n)),
                ChaosAction::Corrupt(n) => Some(ChaosAction::Uncorrupt(n)),
                _ => None,
            };
            if let Some(repair) = repair {
                assert!(
                    a.events[i + 1..].iter().any(|e| e.action == repair && e.step > ev.step),
                    "unpaired fault {:?}",
                    ev.action
                );
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = ChaosPlan::seeded(1, 4, 60);
        let b = ChaosPlan::seeded(2, 4, 60);
        let same = a.events.len() == b.events.len()
            && a.events.iter().zip(&b.events).all(|(x, y)| x.action == y.action);
        assert!(!same, "seeds should produce distinct schedules");
    }
}
