//! The shard map: every [`BlockKey`] → exactly one owner node.
//!
//! Ownership is a consistent-hash ring — each node contributes `vnodes`
//! pseudo-random points, a key belongs to the first point at or past its
//! hash (wrapping). Adding or removing one node therefore moves only the
//! arcs that node's points covered; everything else keeps its owner, which
//! is what makes failover cheap (only the dead node's shard reassigns, and
//! it lands on the ring successors — exactly the nodes
//! [`ShardMap::owners`] already named as fallback candidates).
//!
//! Two sharding strategies pick what gets hashed:
//!
//! - [`ShardStrategy::Ring`] hashes each key independently — perfectly
//!   uniform, but spatially adjacent blocks scatter across nodes.
//! - [`ShardStrategy::Subtree`] hashes the octree-style cell a block's
//!   grid coordinates fall in (`coord >> bits` per axis), so every block
//!   in one `2^bits`-wide cube co-locates on one node. Vicinal prefetch
//!   around a camera position then stays mostly shard-local, at the cost
//!   of coarser balance (the unit of placement is a subtree, not a key).
//!
//! Maps are versioned (every membership change bumps the version) and
//! travel between nodes/clients as a CRC-framed `VMAP` blob inside the
//! VSRV `MapReply` message, so both sides detect skew by comparing
//! versions before decoding anything.

use std::fmt;
use viz_volume::{crc32, BlockKey};

/// Identifies one serve node in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// What a key hashes as when placed on the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardStrategy {
    /// Hash each key independently: uniform, spatially scattered.
    Ring,
    /// Hash the `2^bits`-wide grid cell the block sits in, so spatial
    /// siblings co-locate. `grid` is the volume's block-grid dimensions
    /// (blocks per axis), matching the row-major [`viz_volume::BlockId`]
    /// layout.
    Subtree {
        /// Cell width exponent: blocks whose coordinates agree after a
        /// `>> bits` per axis share an owner.
        bits: u32,
        /// Blocks per axis, for decomposing a dense block id.
        grid: [u32; 3],
    },
}

/// Why a `VMAP` blob failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// Fewer bytes than the frame promises.
    Truncated,
    /// Stored CRC does not match the body.
    BadCrc,
    /// Body does not open with `VMAP`.
    BadMagic,
    /// Codec version this build does not speak.
    BadVersion(u16),
    /// Structurally invalid payload.
    Malformed(&'static str),
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::Truncated => write!(f, "truncated shard map frame"),
            MapError::BadCrc => write!(f, "shard map checksum mismatch"),
            MapError::BadMagic => write!(f, "bad shard map magic"),
            MapError::BadVersion(v) => write!(f, "unsupported shard map codec v{v}"),
            MapError::Malformed(what) => write!(f, "malformed shard map: {what}"),
        }
    }
}

impl std::error::Error for MapError {}

const MAP_MAGIC: [u8; 4] = *b"VMAP";
const MAP_CODEC_VERSION: u16 = 1;

/// Local copy of the splitmix64 finalizer (viz-fetch keeps its own
/// crate-private); used for ring points, key hashes, and the chaos
/// harness's seeded schedules.
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The versioned key→owner assignment (see module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    version: u64,
    vnodes: u32,
    strategy: ShardStrategy,
    nodes: Vec<NodeId>,
    /// `(point, node)` sorted by point; rebuilt deterministically from
    /// `nodes` and `vnodes` on every membership change and after decode.
    ring: Vec<(u64, NodeId)>,
}

impl ShardMap {
    /// Build version-1 map over `nodes` with `vnodes` ring points each.
    pub fn new(nodes: &[NodeId], vnodes: u32, strategy: ShardStrategy) -> ShardMap {
        assert!(vnodes > 0, "vnodes must be positive");
        let mut nodes: Vec<NodeId> = nodes.to_vec();
        nodes.sort();
        nodes.dedup();
        let ring = Self::build_ring(&nodes, vnodes);
        ShardMap { version: 1, vnodes, strategy, nodes, ring }
    }

    fn build_ring(nodes: &[NodeId], vnodes: u32) -> Vec<(u64, NodeId)> {
        let mut ring = Vec::with_capacity(nodes.len() * vnodes as usize);
        for &n in nodes {
            for v in 0..vnodes {
                let point = splitmix64((u64::from(n.0) << 32) | u64::from(v));
                ring.push((point, n));
            }
        }
        ring.sort();
        ring
    }

    /// Monotonic map version; every membership change bumps it.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The sharding strategy in force.
    pub fn strategy(&self) -> ShardStrategy {
        self.strategy
    }

    /// Member nodes, sorted.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// `true` when `node` is a member.
    pub fn contains(&self, node: NodeId) -> bool {
        self.nodes.binary_search(&node).is_ok()
    }

    /// The hashable placement unit for `key` under the strategy.
    fn shard_hash(&self, key: BlockKey) -> u64 {
        let vt = (u64::from(key.var) << 16) | u64::from(key.time);
        match self.strategy {
            ShardStrategy::Ring => {
                splitmix64((vt << 32) ^ u64::from(key.block.0).wrapping_mul(0x9E37_79B9))
            }
            ShardStrategy::Subtree { bits, grid } => {
                let id = key.block.0;
                let (gx, gy) = (grid[0].max(1), grid[1].max(1));
                let bx = id % gx;
                let by = (id / gx) % gy;
                let bz = id / (gx * gy);
                let cell = (u64::from(bx >> bits) << 42)
                    | (u64::from(by >> bits) << 21)
                    | u64::from(bz >> bits);
                splitmix64(splitmix64(cell) ^ vt)
            }
        }
    }

    /// The key's single owner; `None` only for an empty map.
    pub fn owner(&self, key: BlockKey) -> Option<NodeId> {
        self.owners(key, 1).first().copied()
    }

    /// The key's owner followed by up to `n - 1` distinct fallback nodes
    /// in ring-successor order — the same nodes the key would reassign to
    /// if its owner left, so routing retries and failover agree by
    /// construction.
    pub fn owners(&self, key: BlockKey, n: usize) -> Vec<NodeId> {
        if self.ring.is_empty() || n == 0 {
            return Vec::new();
        }
        let h = self.shard_hash(key);
        let start = self.ring.partition_point(|&(p, _)| p < h);
        let mut out: Vec<NodeId> = Vec::with_capacity(n.min(self.nodes.len()));
        for i in 0..self.ring.len() {
            let (_, node) = self.ring[(start + i) % self.ring.len()];
            if !out.contains(&node) {
                out.push(node);
                if out.len() == n.min(self.nodes.len()) {
                    break;
                }
            }
        }
        out
    }

    /// A successor map without `node` (version bumped). A no-op member
    /// set still bumps the version so callers can always distinguish "I
    /// reassigned" from "same map".
    pub fn without(&self, node: NodeId) -> ShardMap {
        let nodes: Vec<NodeId> = self.nodes.iter().copied().filter(|&n| n != node).collect();
        let ring = Self::build_ring(&nodes, self.vnodes);
        ShardMap {
            version: self.version + 1,
            vnodes: self.vnodes,
            strategy: self.strategy,
            nodes,
            ring,
        }
    }

    /// A successor map with `node` added (version bumped).
    pub fn with(&self, node: NodeId) -> ShardMap {
        let mut nodes = self.nodes.clone();
        if let Err(at) = nodes.binary_search(&node) {
            nodes.insert(at, node);
        }
        let ring = Self::build_ring(&nodes, self.vnodes);
        ShardMap {
            version: self.version + 1,
            vnodes: self.vnodes,
            strategy: self.strategy,
            nodes,
            ring,
        }
    }

    /// Serialize as a CRC-framed `VMAP` blob (`[len][crc][body]`, same
    /// outer convention as the VSRV wire frames).
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(32 + self.nodes.len() * 4);
        b.extend_from_slice(&MAP_MAGIC);
        b.extend_from_slice(&MAP_CODEC_VERSION.to_le_bytes());
        b.extend_from_slice(&self.version.to_le_bytes());
        b.extend_from_slice(&self.vnodes.to_le_bytes());
        match self.strategy {
            ShardStrategy::Ring => b.push(0),
            ShardStrategy::Subtree { bits, grid } => {
                b.push(1);
                b.extend_from_slice(&bits.to_le_bytes());
                for g in grid {
                    b.extend_from_slice(&g.to_le_bytes());
                }
            }
        }
        b.extend_from_slice(&(self.nodes.len() as u32).to_le_bytes());
        for n in &self.nodes {
            b.extend_from_slice(&n.0.to_le_bytes());
        }
        let mut out = Vec::with_capacity(8 + b.len());
        out.extend_from_slice(&(b.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&b).to_le_bytes());
        out.extend_from_slice(&b);
        out
    }

    /// Decode a `VMAP` blob; every corruption mode is a typed
    /// [`MapError`], never a panic.
    pub fn decode(buf: &[u8]) -> Result<ShardMap, MapError> {
        if buf.len() < 8 {
            return Err(MapError::Truncated);
        }
        let len = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
        let stored = u32::from_le_bytes(buf[4..8].try_into().unwrap());
        if buf.len() < 8 + len {
            return Err(MapError::Truncated);
        }
        let body = &buf[8..8 + len];
        if crc32(body) != stored {
            return Err(MapError::BadCrc);
        }
        let mut at = 0usize;
        let take = |at: &mut usize, n: usize| -> Result<&[u8], MapError> {
            if body.len() - *at < n {
                return Err(MapError::Truncated);
            }
            let s = &body[*at..*at + n];
            *at += n;
            Ok(s)
        };
        let magic: [u8; 4] = take(&mut at, 4)?.try_into().unwrap();
        if magic != MAP_MAGIC {
            return Err(MapError::BadMagic);
        }
        let codec = u16::from_le_bytes(take(&mut at, 2)?.try_into().unwrap());
        if codec != MAP_CODEC_VERSION {
            return Err(MapError::BadVersion(codec));
        }
        let version = u64::from_le_bytes(take(&mut at, 8)?.try_into().unwrap());
        let vnodes = u32::from_le_bytes(take(&mut at, 4)?.try_into().unwrap());
        if vnodes == 0 {
            return Err(MapError::Malformed("vnodes must be positive"));
        }
        let strategy = match take(&mut at, 1)?[0] {
            0 => ShardStrategy::Ring,
            1 => {
                let bits = u32::from_le_bytes(take(&mut at, 4)?.try_into().unwrap());
                let mut grid = [0u32; 3];
                for g in &mut grid {
                    *g = u32::from_le_bytes(take(&mut at, 4)?.try_into().unwrap());
                }
                ShardStrategy::Subtree { bits, grid }
            }
            _ => return Err(MapError::Malformed("unknown strategy tag")),
        };
        let count = u32::from_le_bytes(take(&mut at, 4)?.try_into().unwrap()) as usize;
        if count.saturating_mul(4) > body.len() - at {
            return Err(MapError::Malformed("node count exceeds payload"));
        }
        let mut nodes = Vec::with_capacity(count);
        for _ in 0..count {
            nodes.push(NodeId(u32::from_le_bytes(take(&mut at, 4)?.try_into().unwrap())));
        }
        if at != body.len() {
            return Err(MapError::Malformed("trailing bytes after payload"));
        }
        nodes.sort();
        nodes.dedup();
        let ring = Self::build_ring(&nodes, vnodes);
        Ok(ShardMap { version, vnodes, strategy, nodes, ring })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viz_volume::BlockId;

    fn nodes(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    fn key(i: u32) -> BlockKey {
        BlockKey::scalar(BlockId(i))
    }

    /// Seeded key sweep standing in for a proptest generator (no proptest
    /// in the offline build): every key in a dense id range plus a salted
    /// scatter of var/time combinations.
    fn key_corpus() -> Vec<BlockKey> {
        let mut v: Vec<BlockKey> = (0..4096).map(key).collect();
        for i in 0..512u64 {
            let h = splitmix64(i ^ 0xC0FFEE);
            v.push(BlockKey::new((h >> 48) as u16 % 8, (h >> 32) as u16 % 8, BlockId(h as u32)));
        }
        v
    }

    #[test]
    fn every_key_has_exactly_one_owner() {
        for strategy in
            [ShardStrategy::Ring, ShardStrategy::Subtree { bits: 1, grid: [16, 16, 16] }]
        {
            let map = ShardMap::new(&nodes(4), 64, strategy);
            for k in key_corpus() {
                let owner = map.owner(k).expect("non-empty map always owns");
                assert!(map.contains(owner));
                // Deterministic: ask twice, same answer.
                assert_eq!(map.owner(k), Some(owner));
                // owners(1) agrees with owner().
                assert_eq!(map.owners(k, 1), vec![owner]);
            }
        }
    }

    #[test]
    fn owners_are_distinct_and_lead_with_the_owner() {
        let map = ShardMap::new(&nodes(4), 64, ShardStrategy::Ring);
        for k in key_corpus().into_iter().take(512) {
            let cands = map.owners(k, 3);
            assert_eq!(cands.len(), 3);
            assert_eq!(cands[0], map.owner(k).unwrap());
            let mut uniq = cands.clone();
            uniq.sort();
            uniq.dedup();
            assert_eq!(uniq.len(), 3, "owners must be distinct: {cands:?}");
        }
        // Asking for more candidates than nodes saturates at the node set.
        assert_eq!(map.owners(key(0), 9).len(), 4);
    }

    #[test]
    fn removal_moves_only_the_dead_nodes_keys() {
        let map = ShardMap::new(&nodes(4), 64, ShardStrategy::Ring);
        let dead = NodeId(2);
        let next = map.without(dead);
        assert_eq!(next.version(), map.version() + 1);
        let mut moved = 0usize;
        let corpus = key_corpus();
        for &k in &corpus {
            let before = map.owner(k).unwrap();
            let after = next.owner(k).unwrap();
            if before == dead {
                moved += 1;
                assert_ne!(after, dead);
                // The dead node's keys land on its ring successors — the
                // same nodes owners() listed as fallbacks.
                assert!(
                    map.owners(k, 2).contains(&after) || map.owners(k, 4)[1..].contains(&after)
                );
            } else {
                assert_eq!(before, after, "surviving keys must not move");
            }
        }
        assert!(moved > 0, "node 2 owned nothing in a {}-key corpus?", corpus.len());
    }

    #[test]
    fn addition_moves_only_keys_onto_the_new_node() {
        let map = ShardMap::new(&nodes(3), 64, ShardStrategy::Ring);
        let grown = map.with(NodeId(3));
        let mut moved = 0usize;
        for k in key_corpus() {
            let before = map.owner(k).unwrap();
            let after = grown.owner(k).unwrap();
            if before != after {
                moved += 1;
                assert_eq!(after, NodeId(3), "moves may only target the new node");
            }
        }
        assert!(moved > 0);
    }

    #[test]
    fn removal_is_roughly_minimal() {
        // Consistent hashing's promise: removing 1 of N nodes moves about
        // 1/N of keys, not all of them. Allow generous slack — the bound
        // being asserted is "nowhere near a full reshuffle".
        let map = ShardMap::new(&nodes(4), 64, ShardStrategy::Ring);
        let next = map.without(NodeId(1));
        let corpus = key_corpus();
        let moved =
            corpus.iter().filter(|&&k| map.owner(k).unwrap() != next.owner(k).unwrap()).count();
        let frac = moved as f64 / corpus.len() as f64;
        assert!(frac < 0.45, "removal moved {:.0}% of keys", frac * 100.0);
        assert!(frac > 0.05, "removal moved implausibly few keys ({moved})");
    }

    #[test]
    fn subtree_strategy_colocates_siblings() {
        let grid = [16u32, 16, 16];
        let map = ShardMap::new(&nodes(4), 64, ShardStrategy::Subtree { bits: 1, grid });
        // Every 2x2x2 sibling group shares one owner.
        for cz in 0..8u32 {
            for cy in 0..8u32 {
                for cx in 0..8u32 {
                    let mut owners = Vec::new();
                    for dz in 0..2u32 {
                        for dy in 0..2u32 {
                            for dx in 0..2u32 {
                                let (bx, by, bz) = (cx * 2 + dx, cy * 2 + dy, cz * 2 + dz);
                                let id = (bz * grid[1] + by) * grid[0] + bx;
                                owners.push(map.owner(key(id)).unwrap());
                            }
                        }
                    }
                    owners.dedup();
                    assert_eq!(owners.len(), 1, "cell ({cx},{cy},{cz}) split across {owners:?}");
                }
            }
        }
        // ...while the map still uses every node (the cells spread out).
        let mut all: Vec<NodeId> = (0..4096).map(|i| map.owner(key(i)).unwrap()).collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn ring_balance_is_reasonable() {
        let map = ShardMap::new(&nodes(4), 64, ShardStrategy::Ring);
        let mut counts = [0usize; 4];
        let corpus = key_corpus();
        for &k in &corpus {
            counts[map.owner(k).unwrap().0 as usize] += 1;
        }
        let expect = corpus.len() / 4;
        for (n, &c) in counts.iter().enumerate() {
            assert!(
                c > expect / 3 && c < expect * 3,
                "node {n} owns {c} of {} keys (expected ~{expect})",
                corpus.len()
            );
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        for strategy in [ShardStrategy::Ring, ShardStrategy::Subtree { bits: 2, grid: [32, 16, 8] }]
        {
            let map = ShardMap::new(&nodes(4), 32, strategy).without(NodeId(1));
            let decoded = ShardMap::decode(&map.encode()).unwrap();
            assert_eq!(decoded, map);
            assert_eq!(decoded.version(), 2);
            for k in key_corpus().into_iter().take(256) {
                assert_eq!(decoded.owner(k), map.owner(k));
            }
        }
    }

    #[test]
    fn decode_corruption_is_typed() {
        let blob = ShardMap::new(&nodes(3), 16, ShardStrategy::Ring).encode();
        assert_eq!(ShardMap::decode(&blob[..4]), Err(MapError::Truncated));
        assert_eq!(ShardMap::decode(&blob[..blob.len() - 2]), Err(MapError::Truncated));
        let mut crc_flip = blob.clone();
        crc_flip[5] ^= 0x40;
        assert_eq!(ShardMap::decode(&crc_flip), Err(MapError::BadCrc));
        let mut magic_flip = blob.clone();
        magic_flip[8] = b'X';
        // CRC is over the body, so a magic flip also fails the CRC first;
        // manufacture a frame with a valid CRC over a bad magic.
        let mut body = blob[8..].to_vec();
        body[0] = b'X';
        let mut reframed = Vec::new();
        reframed.extend_from_slice(&(body.len() as u32).to_le_bytes());
        reframed.extend_from_slice(&crc32(&body).to_le_bytes());
        reframed.extend_from_slice(&body);
        assert_eq!(ShardMap::decode(&reframed), Err(MapError::BadMagic));
        assert_eq!(ShardMap::decode(&magic_flip), Err(MapError::BadCrc));
    }

    #[test]
    fn empty_map_owns_nothing() {
        let map = ShardMap::new(&[], 16, ShardStrategy::Ring);
        assert_eq!(map.owner(key(1)), None);
        assert!(map.owners(key(1), 2).is_empty());
    }
}
