//! One cluster node: a viz-serve [`Server`] whose engine reads through a
//! [`RoutedSource`] — keys this node owns read local storage, keys owned
//! elsewhere forward to their owner over VSRV ([`crate::peer`]).
//!
//! ## Why the source is the routing seam
//!
//! Putting the forward *inside* the node's fetch engine (rather than in
//! front of it) means every piece of single-node machinery applies to
//! remote keys for free: N local clients demanding one remote key
//! coalesce in the engine into **one** peer round trip (the same
//! cross-session coalescing that dedupes local reads), the block lands in
//! this node's pool so the next frame is a pool hit, and prefetch
//! admission/shedding treat remote keys like any other.
//!
//! ## Cycle safety
//!
//! A forward can only cycle if two nodes disagree about ownership (map
//! skew mid-reassignment). Three fences bound it: the node's dispatcher
//! answers a `PeerFetch` through its engine only when it owns *every*
//! key under its own map (otherwise it reads local storage directly —
//! shared storage makes that always correct); forwarded frames carry a
//! hop count that receivers refuse to extend past
//! [`ClusterConfig::max_hops`]; and any peer failure — including a
//! refused forward — falls back to a local read. Demand therefore never
//! errors because of cluster topology; skew costs locality, not
//! availability.

use crate::membership::{Membership, MembershipConfig};
use crate::peer::{note_fallback, Connector, PeerClient, PeerConfig};
use crate::shard::{NodeId, ShardMap};
use std::collections::HashMap;
use std::io;
use std::sync::{mpsc, Arc, Mutex, MutexGuard, RwLock};
use std::time::Duration;
use viz_fetch::{BlockPool, FetchConfig, FetchEngine};
use viz_serve::proto::{errkind_code, PING_FROM_CLIENT};
use viz_serve::{
    handle_request, BlockReply, Outcome, Request, RequestDispatch, Response, ServeConfig, Server,
};
use viz_telemetry::{instant, EventKind as Ev};
use viz_volume::{BlockKey, BlockSource};

/// Cluster-layer tuning for one node.
#[derive(Clone)]
pub struct ClusterConfig {
    /// Peer-fetch behaviour (retry, breaker, outgoing hop stamp).
    pub peer: PeerConfig,
    /// Refuse to re-forward a `PeerFetch` whose hop count reaches this;
    /// answer from local storage instead.
    pub max_hops: u8,
    /// `true` resolves peer-forwarded fetches by stepping the `workers =
    /// 0` engine inline (the deterministic test cluster); `false` blocks
    /// on worker threads (real deployments).
    pub deterministic: bool,
    /// Replica candidates a demand read considers: the key's owner plus
    /// `read_replicas - 1` ring successors. The read goes to the first
    /// candidate the failure detector calls healthy, so a suspected
    /// owner costs nothing — the read routes around it up front.
    pub read_replicas: usize,
    /// When set, a remote demand read that has not answered within this
    /// wall-clock threshold triggers a hedged second read (the next
    /// replica — under shared storage, the local copy) and the first
    /// result wins. `None` disables hedging.
    pub hedge_after: Option<Duration>,
    /// Failure-detector tuning (heartbeat suspicion deadline).
    pub membership: MembershipConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            peer: PeerConfig::default(),
            max_hops: 2,
            deterministic: false,
            read_replicas: 2,
            hedge_after: None,
            membership: MembershipConfig::default(),
        }
    }
}

impl ClusterConfig {
    /// Tuning for the in-process deterministic cluster: inline engine
    /// stepping, no retry sleeps.
    pub fn deterministic() -> Self {
        ClusterConfig {
            peer: PeerConfig { retry: viz_fetch::RetryPolicy::none(), ..PeerConfig::default() },
            deterministic: true,
            ..ClusterConfig::default()
        }
    }
}

fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Shard map + peer clients shared between the node and its engine's
/// [`RoutedSource`].
struct ClusterShared {
    self_id: NodeId,
    map: RwLock<Arc<ShardMap>>,
    connect: Arc<Connector>,
    peer_cfg: PeerConfig,
    /// One lazily-dialed client per peer, each behind its own lock so
    /// concurrent fetches to *different* peers proceed in parallel while
    /// fetches to the same peer serialize on its one connection.
    peers: Mutex<HashMap<u32, Arc<Mutex<PeerClient>>>>,
    /// The failure detector. Only the heartbeat path records evidence
    /// (note_ok / note_fail / sweep); the demand read path *consults* it
    /// ([`Membership::is_suspect`]) but never writes, so per-peer fetch
    /// fault handling (retry, breaker) keeps its own semantics.
    membership: Mutex<Membership>,
    read_replicas: usize,
    hedge_after: Option<Duration>,
}

impl ClusterShared {
    fn map(&self) -> Arc<ShardMap> {
        self.map.read().unwrap_or_else(|p| p.into_inner()).clone()
    }

    /// Pick the node that serves a demand read of `key`: the first
    /// replica candidate (owner, then ring successors) that is either us
    /// or not currently suspect. Falls back to local — shared storage
    /// makes a local read always correct — when every candidate is
    /// suspect.
    fn route(&self, map: &ShardMap, key: BlockKey) -> NodeId {
        let candidates = map.owners(key, self.read_replicas.max(1));
        if candidates.is_empty() {
            return self.self_id;
        }
        let mem = relock(&self.membership);
        candidates
            .iter()
            .copied()
            .find(|&n| n == self.self_id || !mem.is_suspect(n))
            .unwrap_or(self.self_id)
    }

    fn peer(&self, id: NodeId) -> Arc<Mutex<PeerClient>> {
        let mut peers = relock(&self.peers);
        peers
            .entry(id.0)
            .or_insert_with(|| {
                let connect = self.connect.clone();
                Arc::new(Mutex::new(PeerClient::new(
                    self.self_id,
                    id,
                    Box::new(move || connect(id)),
                    self.peer_cfg.clone(),
                )))
            })
            .clone()
    }

    /// Race a peer fetch against a local read: the primary runs on a
    /// detached thread (a scoped join would block on the slow peer —
    /// exactly what hedging exists to avoid); if it has not answered
    /// within `threshold`, the calling thread reads locally and the
    /// first result wins. `Ok` is the primary's outcome (possibly late
    /// but preferred once it landed); `Err` carries local results that
    /// already resolved the read. The detached thread holds that peer's
    /// client lock until the slow fetch returns, so later fetches to the
    /// same peer serialize behind it — the price of not abandoning the
    /// connection.
    fn hedged_fetch(
        &self,
        owner: NodeId,
        keys: &[BlockKey],
        threshold: Duration,
        local: &Arc<dyn BlockSource>,
    ) -> Result<io::Result<Vec<BlockReply>>, Vec<io::Result<Vec<f32>>>> {
        let (tx, rx) = mpsc::channel();
        let peer = self.peer(owner);
        let keys_owned = keys.to_vec();
        std::thread::spawn(move || {
            let mut peer = relock(&peer);
            // The receiver gives up after its own local read; ignore a
            // closed channel.
            let _ = tx.send(peer.fetch(&keys_owned));
        });
        match rx.recv_timeout(threshold) {
            Ok(fetched) => Ok(fetched),
            Err(_) => {
                let local_results = local.read_blocks(keys);
                // Prefer a primary that landed while we were reading —
                // it came from the owner's warm pool.
                match rx.try_recv() {
                    Ok(Ok(blocks)) => {
                        instant(Ev::HedgedRead, u64::from(owner.0), 0);
                        Ok(Ok(blocks))
                    }
                    _ => {
                        instant(Ev::HedgedRead, u64::from(owner.0), 1);
                        Err(local_results)
                    }
                }
            }
        }
    }

    /// Fetch `keys` from `owner`, falling back to `local` per key (or
    /// whole-batch) on any peer failure. Results land in `out` at the
    /// positions named by `idxs`. Records no membership evidence: the
    /// heartbeat path owns suspicion, the read path only routes by it.
    fn peer_or_local(
        &self,
        owner: NodeId,
        keys: &[BlockKey],
        idxs: &[usize],
        local: &Arc<dyn BlockSource>,
        out: &mut [Option<io::Result<Vec<f32>>>],
    ) {
        let fetched = match self.hedge_after {
            Some(threshold) => match self.hedged_fetch(owner, keys, threshold, local) {
                Ok(f) => f,
                Err(local_results) => {
                    for (slot, r) in idxs.iter().zip(local_results) {
                        out[*slot] = Some(r);
                    }
                    return;
                }
            },
            None => {
                let peer = self.peer(owner);
                let mut peer = relock(&peer);
                peer.fetch(keys)
            }
        };
        match fetched {
            Ok(blocks) if blocks.len() == keys.len() => {
                for (slot, reply) in idxs.iter().zip(blocks) {
                    out[*slot] = Some(match reply.result {
                        Ok(data) => Ok(Arc::try_unwrap(data).unwrap_or_else(|a| (*a).clone())),
                        Err(code) => {
                            // The owner failed this one key; shared
                            // storage lets us retry locally.
                            note_fallback(owner, viz_serve::proto::errkind_from_code(code));
                            local.read_block(reply.key)
                        }
                    });
                }
            }
            Ok(_) | Err(_) => {
                let kind = match &fetched {
                    Err(e) => e.kind(),
                    Ok(_) => io::ErrorKind::InvalidData,
                };
                note_fallback(owner, kind);
                for (slot, r) in idxs.iter().zip(local.read_blocks(keys)) {
                    out[*slot] = Some(r);
                }
            }
        }
    }
}

/// The node's [`BlockSource`]: owned keys read `local`, remote keys
/// round-trip to the first *healthy* replica (owner, then ring
/// successors) with local fallback (see module docs).
pub struct RoutedSource {
    local: Arc<dyn BlockSource>,
    shared: Arc<ClusterShared>,
}

impl BlockSource for RoutedSource {
    fn read_block(&self, key: BlockKey) -> io::Result<Vec<f32>> {
        let map = self.shared.map();
        let target = self.shared.route(&map, key);
        if target != self.shared.self_id {
            let mut out = [None];
            self.shared.peer_or_local(target, &[key], &[0], &self.local, &mut out);
            out[0].take().expect("peer_or_local fills every slot")
        } else {
            self.local.read_block(key)
        }
    }

    fn block_bytes(&self, key: BlockKey) -> io::Result<usize> {
        // Size probes stay local: shared storage answers them without a
        // round trip, and quota accounting only needs an estimate.
        self.local.block_bytes(key)
    }

    fn read_blocks(&self, keys: &[BlockKey]) -> Vec<io::Result<Vec<f32>>> {
        let map = self.shared.map();
        let mut out: Vec<Option<io::Result<Vec<f32>>>> = Vec::new();
        out.resize_with(keys.len(), || None);
        // Group request positions per routed target (first healthy
        // replica), preserving request order within each group.
        let mut local_keys = Vec::new();
        let mut local_idxs = Vec::new();
        let mut remote: HashMap<u32, (Vec<BlockKey>, Vec<usize>)> = HashMap::new();
        for (i, &key) in keys.iter().enumerate() {
            let target = self.shared.route(&map, key);
            if target != self.shared.self_id {
                let entry = remote.entry(target.0).or_default();
                entry.0.push(key);
                entry.1.push(i);
            } else {
                local_keys.push(key);
                local_idxs.push(i);
            }
        }
        if !local_keys.is_empty() {
            for (slot, r) in local_idxs.iter().zip(self.local.read_blocks(&local_keys)) {
                out[*slot] = Some(r);
            }
        }
        let mut owners: Vec<u32> = remote.keys().copied().collect();
        owners.sort();
        for owner in owners {
            let (ks, idxs) = &remote[&owner];
            self.shared.peer_or_local(NodeId(owner), ks, idxs, &self.local, &mut out);
        }
        out.into_iter().map(|r| r.expect("every slot fills")).collect()
    }
}

/// One sharded serve node (see module docs). Implements
/// [`RequestDispatch`] so a [`viz_serve::TcpServer::bind_with`] front end
/// routes every decoded request through the cluster layer.
pub struct ClusterNode {
    id: NodeId,
    server: Arc<Server>,
    shared: Arc<ClusterShared>,
    local: Arc<dyn BlockSource>,
    cfg: ClusterConfig,
}

impl ClusterNode {
    /// Build a node over `local` storage with the initial `map`.
    /// `connect` dials peers (TCP in deployments, in-process links in
    /// tests); the engine and server are built here so their source is
    /// the node's [`RoutedSource`].
    pub fn new(
        id: NodeId,
        local: Arc<dyn BlockSource>,
        map: ShardMap,
        connect: impl Fn(NodeId) -> io::Result<Box<dyn crate::peer::PeerLink>> + Send + Sync + 'static,
        fetch_cfg: FetchConfig,
        serve_cfg: ServeConfig,
        cfg: ClusterConfig,
    ) -> Arc<ClusterNode> {
        let shared = Arc::new(ClusterShared {
            self_id: id,
            map: RwLock::new(Arc::new(map)),
            connect: Arc::new(connect),
            peer_cfg: cfg.peer.clone(),
            peers: Mutex::new(HashMap::new()),
            membership: Mutex::new(Membership::new(cfg.membership)),
            read_replicas: cfg.read_replicas,
            hedge_after: cfg.hedge_after,
        });
        let routed = Arc::new(RoutedSource { local: local.clone(), shared: shared.clone() });
        let engine = FetchEngine::spawn(routed, Arc::new(BlockPool::new()), fetch_cfg);
        let server = Server::new(Arc::new(engine), serve_cfg);
        Arc::new(ClusterNode { id, server, shared, local, cfg })
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The wrapped serve layer.
    pub fn server(&self) -> &Arc<Server> {
        &self.server
    }

    /// The shard map currently in force.
    pub fn map(&self) -> Arc<ShardMap> {
        self.shared.map()
    }

    /// Breaker transition counters `(opens, half_opens, closes,
    /// rejected)` for this node's client to `peer` — `None` until a
    /// fetch has actually dialed it.
    pub fn peer_breaker_counters(&self, peer: NodeId) -> Option<(u64, u64, u64, u64)> {
        let peers = relock(&self.shared.peers);
        peers.get(&peer.0).map(|p| relock(p).breaker_counters())
    }

    /// Peers this node's failure detector currently suspects, sorted.
    pub fn suspects(&self) -> Vec<NodeId> {
        relock(&self.shared.membership).suspects()
    }

    /// Whether this node's failure detector currently suspects `peer`.
    pub fn is_suspect(&self, peer: NodeId) -> bool {
        relock(&self.shared.membership).is_suspect(peer)
    }

    /// One membership round at `now` (the caller's monotonic clock —
    /// virtual ticks in tests, wall-clock milliseconds in deployments):
    /// ping every map peer, record the evidence, pull a newer shard map
    /// from any peer that advertises one (anti-entropy), then apply the
    /// suspicion deadline. Returns `(alive, suspect)` counts over the
    /// map's peers.
    pub fn heartbeat_tick(&self, now: u64) -> (usize, usize) {
        let map = self.shared.map();
        let mut alive = 0usize;
        for &peer in map.nodes() {
            if peer == self.id {
                continue;
            }
            let my_version = self.shared.map().version();
            let pinged = {
                let client = self.shared.peer(peer);
                let mut client = relock(&client);
                client.ping(my_version)
            };
            match pinged {
                Ok((_, their_version)) => {
                    alive += 1;
                    relock(&self.shared.membership).note_ok(peer, now);
                    if their_version > my_version {
                        // The peer is ahead: pull its map now rather
                        // than waiting to fail a misrouted fetch.
                        let _ = self.pull_map_from(peer);
                    }
                }
                Err(_) => {
                    relock(&self.shared.membership).note_fail(peer);
                }
            }
        }
        let suspect = {
            let mut mem = relock(&self.shared.membership);
            mem.sweep(now);
            mem.suspects().into_iter().filter(|&n| map.contains(n)).count()
        };
        (alive, suspect)
    }

    /// Pull `peer`'s shard map and install it if newer than ours.
    /// Returns whether a newer map was installed.
    pub fn pull_map_from(&self, peer: NodeId) -> io::Result<bool> {
        let (version, bytes) = {
            let client = self.shared.peer(peer);
            let mut client = relock(&client);
            client.map_get()?
        };
        if version <= self.shared.map().version() {
            return Ok(false);
        }
        let map = crate::shard::ShardMap::decode(&bytes)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        Ok(self.install_map(map))
    }

    /// Install `map` if it is newer than the current one; returns whether
    /// it was installed. Reassignment control planes push the same map to
    /// every node; version ordering makes the push idempotent and
    /// tolerant of reordering.
    pub fn install_map(&self, map: ShardMap) -> bool {
        let mut cur = self.shared.map.write().unwrap_or_else(|p| p.into_inner());
        if map.version() <= cur.version() {
            return false;
        }
        instant(Ev::MapUpdate, u64::from(self.id.0), map.version());
        *cur = Arc::new(map);
        true
    }

    /// The node id as stamped on telemetry events: `NodeId + 1`, so node
    /// 0 stays the "client / unattributed" sentinel in merged traces.
    fn node_tag(&self) -> u16 {
        (self.id.0 as u16).saturating_add(1)
    }

    /// Serve one already-framed request synchronously on the calling
    /// thread — the deterministic in-process transport. Fetches pump the
    /// scheduler and step the inline engine to idle (recursing into peer
    /// nodes through their own `serve_frame` when a read forwards).
    /// Replies at the requester's claimed protocol version, and stamps
    /// every telemetry event emitted while serving with this node's id.
    pub fn serve_frame(&self, frame: &[u8]) -> Vec<u8> {
        viz_telemetry::with_node(self.node_tag(), || {
            let mut ver = viz_serve::proto::PROTO_VERSION;
            let resp = match viz_serve::proto::decode_request_full(frame) {
                Ok((v, req)) => {
                    ver = v;
                    match self.dispatch(&self.server, req) {
                        Outcome::Ready(r) => r,
                        Outcome::Fetch(p) => {
                            self.server.pump();
                            if self.cfg.deterministic {
                                self.server.engine().run_until_idle();
                                p.resolve_now(&self.server)
                            } else {
                                p.wait(&self.server)
                            }
                        }
                    }
                }
                Err(pe) => Response::Error { code: pe.code(), message: pe.to_string() },
            };
            viz_serve::proto::encode_response_versioned(&resp, ver)
        })
    }

    /// Answer a `PeerFetch` without engine submission: straight local
    /// reads (shared storage), used past the hop cap and under map skew.
    fn peer_direct(&self, session: u32, demand: Vec<BlockKey>) -> Outcome {
        self.server.record_peer_direct(demand.len() as u64);
        let results = self.local.read_blocks(&demand);
        let blocks = demand
            .into_iter()
            .zip(results)
            .map(|(key, r)| BlockReply {
                key,
                result: r.map(Arc::new).map_err(|e| errkind_code(e.kind())),
            })
            .collect();
        Outcome::Ready(Response::FetchReply { session, blocks, shed: 0, downgraded: 0 })
    }
}

impl RequestDispatch for ClusterNode {
    fn dispatch(&self, server: &Arc<Server>, req: Request) -> Outcome {
        // Every event emitted while this node serves — dispatch, pump,
        // inline engine steps — carries the node's id, so a merged
        // cluster trace can tell the owner's spans from the peer's.
        viz_telemetry::with_node(self.node_tag(), || self.dispatch_inner(server, req))
    }
}

impl ClusterNode {
    fn dispatch_inner(&self, server: &Arc<Server>, req: Request) -> Outcome {
        match req {
            Request::MapGet => {
                let m = self.shared.map();
                Outcome::Ready(Response::MapReply { version: m.version(), map_bytes: m.encode() })
            }
            Request::TelemetryGet => {
                // The serve layer answers with the client sentinel; the
                // cluster layer knows which node it is.
                Outcome::Ready(Response::TelemetryReply(server.wire_telemetry(self.id.0)))
            }
            Request::Ping { from, map_version } => {
                // Anti-entropy runs in both directions: we pull if the
                // sender is ahead; a behind sender pulls off our Pong.
                // Deliberately NOT positive membership evidence: under
                // an asymmetric partition the isolated node's outbound
                // pings still arrive, and admitting them would keep
                // clearing the suspicion that routes reads around it.
                // Evidence is directional — only our own probe
                // succeeding proves *we* can reach the peer.
                if from != PING_FROM_CLIENT && map_version > self.shared.map().version() {
                    let _ = self.pull_map_from(NodeId(from));
                }
                Outcome::Ready(Response::Pong {
                    node: self.id.0,
                    map_version: self.shared.map().version(),
                    now_ns: viz_telemetry::now_ns(),
                })
            }
            Request::PeerFetch { session, hops, demand, trace } => {
                let map = self.shared.map();
                let all_owned = demand.iter().all(|&k| map.owner(k) == Some(self.id));
                if hops < self.cfg.max_hops && all_owned {
                    // Normal ownership: resolve through the engine so
                    // concurrent peers coalesce and the pool warms.
                    handle_request(server, Request::PeerFetch { session, hops, demand, trace })
                } else if trace.is_some() {
                    viz_telemetry::with_trace(trace.trace, || self.peer_direct(session, demand))
                } else {
                    self.peer_direct(session, demand)
                }
            }
            other => handle_request(server, other),
        }
    }
}
