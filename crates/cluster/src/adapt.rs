//! Per-node control planes for a sharded cluster.
//!
//! Each [`ClusterNode`] carries its own serve-layer signals — its shard's
//! demand RTTs, its ladder, its sheds — so adaptation is strictly local:
//! one [`NodeControl`] per node, no consensus, no cross-node coupling. A
//! hot shard tightens its own ladder while a cold one reopens, which is
//! exactly the behaviour a shared controller would have to approximate
//! anyway.
//!
//! The only cluster-wide concern is naming: the gauge registry is
//! process-global (a [`crate::TestCluster`] runs many nodes in one
//! process, and a deployment may co-locate several), so each plane
//! publishes under a `node<N>_` prefix. A telemetry scrape of any node
//! therefore shows every co-resident controller, unambiguously.

use crate::node::ClusterNode;
use crate::shard::NodeId;
use viz_adapt::{ControlPlane, ControlPlaneConfig, TickReport};

/// One node's closed loop: a [`ControlPlane`] over the node's server,
/// publishing under `node<N>_`.
pub struct NodeControl {
    id: NodeId,
    plane: ControlPlane,
}

impl NodeControl {
    /// Attach a plane to `node`, chasing `slo_p99_ns` on its local
    /// demand traffic.
    pub fn new(id: NodeId, node: &ClusterNode, slo_p99_ns: u64) -> Self {
        let mut cfg = ControlPlaneConfig::for_slo(slo_p99_ns);
        cfg.gauge_prefix = format!("node{}_", id.0);
        NodeControl { id, plane: ControlPlane::new(node.server().clone(), cfg) }
    }

    /// The node this plane controls.
    pub fn node_id(&self) -> NodeId {
        self.id
    }

    /// Control periods run so far.
    pub fn ticks(&self) -> u64 {
        self.plane.ticks()
    }

    /// Run one control period on this node (scrape → retune → publish).
    pub fn tick(&mut self) -> TickReport {
        self.plane.tick()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::ShardStrategy;
    use crate::testing::TestCluster;
    use viz_volume::{BlockId, BlockKey};

    fn key(i: u32) -> BlockKey {
        BlockKey::scalar(BlockId(i))
    }

    #[test]
    fn nodes_adapt_independently_under_skewed_load() {
        let cluster = TestCluster::new(2, ShardStrategy::Ring);
        for i in 0..64u32 {
            cluster.insert(key(i), vec![i as f32; 8]);
        }
        let n0 = cluster.node(NodeId(0)).unwrap();
        let n1 = cluster.node(NodeId(1)).unwrap();
        // Node 0 chases an unmeetable SLO (1 ns), node 1 a trivial one
        // (10 s): after identical traffic their ladders must diverge.
        let mut c0 = NodeControl::new(NodeId(0), &n0, 1);
        let mut c1 = NodeControl::new(NodeId(1), &n1, 10_000_000_000);
        let base0 = n0.server().ladder();
        let base1 = n1.server().ladder();

        let mut router = cluster.router("viewer");
        for round in 0..8 {
            let demand: Vec<BlockKey> = (0..16u32).map(|i| key((round * 16 + i) % 64)).collect();
            let reply = router.fetch(demand, vec![]);
            assert!(reply.blocks.iter().all(|b| b.result.is_ok()));
            c0.tick();
            c1.tick();
        }

        let l0 = n0.server().ladder();
        let l1 = n1.server().ladder();
        assert!(
            l0.per_client_queue < base0.per_client_queue,
            "node 0 is always over its SLO and must tighten"
        );
        assert!(
            l1.per_client_queue >= base1.per_client_queue,
            "node 1 is always under its SLO and must not tighten"
        );
        // Both planes are visible, disambiguated, in ONE scrape — the
        // registry is process-global and the prefix carries the node id.
        let stats = n0.server().wire_counters();
        let g = |name: &str| stats.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
        assert_eq!(g("node0_adapt_ticks"), Some(8));
        assert_eq!(g("node1_adapt_ticks"), Some(8));
        viz_telemetry::stats::clear_gauges();
    }
}
