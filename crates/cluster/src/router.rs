//! The client-side router: holds the shard map, splits each frame's
//! demand across owner nodes in per-node batches, sends the batches
//! concurrently (one scoped thread per node, joined before the call
//! returns — this is what makes an N-node cold frame approach 1/N of
//! the single-node time instead of paying N sequential round trips),
//! merges the replies back into request order, and fails over when an
//! owner stops answering.
//!
//! ## Failover without a control plane
//!
//! [`crate::ShardMap::owners`] lists a key's owner followed by its ring
//! successors — the exact nodes the key reassigns to if the owner
//! leaves. The router retries a failed key against those successors, so
//! routing's fallback order and the control plane's reassignment agree
//! by construction: when the new map arrives the router is already
//! talking to the right node, the map refresh just makes it official.
//!
//! ## Load-aware tie-breaking
//!
//! Every node's `Stats` reply carries its engine queue depths
//! (`engine_queue_demand` + `engine_queue_prefetch`). When the primary
//! owner's backlog exceeds the first fallback's by more than
//! [`RouterConfig::spill_depth`], the router sends the batch to the
//! fallback instead — shared storage means any node *can* serve any key;
//! ownership is a locality optimization, not a correctness constraint.
//!
//! A batch sent to a node that does *not* own its keys (spill, or
//! failover before the survivors reassigned) goes out as a hop-capped
//! `PeerFetch` rather than a plain `Fetch`: the receiving node's own
//! router-at-the-source would otherwise forward the keys straight back
//! to the overloaded or dead owner. The hop cap makes the receiver read
//! its local storage directly — which is the entire point of the spill.

use crate::peer::{Connector, PeerLink};
use crate::shard::{NodeId, ShardMap};
use std::collections::HashMap;
use std::io;
use std::sync::Arc;
use viz_serve::proto::{ERR_DRAINING, ERR_UNKNOWN_SESSION, PING_FROM_CLIENT};
use viz_serve::{BlockReply, Request, Response, TraceCtx};
use viz_telemetry::{instant, span, EventKind as Ev};
use viz_volume::BlockKey;

/// Hop count stamped on an off-owner batch: past every node's
/// `max_hops`, so the receiver answers from local storage instead of
/// forwarding onward (see module docs).
const DIRECT_HOPS: u8 = u8::MAX;

/// Router tuning.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Candidate nodes considered per key (owner + `candidates - 1` ring
    /// successors). Raising it tolerates more simultaneous node loss.
    pub candidates: usize,
    /// Routing rounds per [`Router::fetch`] before unresolved keys give
    /// up. Each round regroups the still-pending keys under the freshest
    /// map, so one round per tolerated failure is enough.
    pub max_rounds: u32,
    /// Send a batch to the first fallback instead of the owner when the
    /// owner's queue backlog exceeds the fallback's by more than this.
    pub spill_depth: u64,
    /// While any node is marked down, probe it with a `Ping` every this
    /// many frames (0 disables) — a crashed-then-restarted node resumes
    /// taking traffic without waiting for a map change.
    pub probe_every: u32,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig { candidates: 2, max_rounds: 3, spill_depth: 512, probe_every: 8 }
    }
}

/// One frame's merged routing outcome.
#[derive(Debug)]
pub struct RouterReply {
    /// One reply per demand key, in request order.
    pub blocks: Vec<BlockReply>,
    /// Prefetch entries shed — by node admission, or dropped here
    /// because their owner was down.
    pub shed: u64,
    /// Prefetch entries the nodes admitted at reduced priority.
    pub downgraded: u64,
    /// Routing rounds the frame needed (1 = every owner answered).
    pub rounds: u32,
}

struct NodeConn {
    link: Option<Box<dyn PeerLink>>,
    session: Option<u32>,
    down: bool,
}

impl NodeConn {
    fn fresh() -> NodeConn {
        NodeConn { link: None, session: None, down: false }
    }
}

/// A sharded-cluster client (see module docs). One router holds one
/// session per node; viewers each own a router.
pub struct Router {
    name: String,
    map: Arc<ShardMap>,
    connect: Arc<Connector>,
    cfg: RouterConfig,
    conns: HashMap<u32, NodeConn>,
    /// Last observed queue backlog per node (from `Stats`, or
    /// [`Router::note_load`] in tests).
    loads: HashMap<u32, u64>,
    /// Frames routed so far (drives the periodic down-node probe).
    frames: u64,
    /// Per-node clock-offset estimates from [`Router::sync_clocks`]
    /// (ns to add to that node's event timestamps).
    offsets: HashMap<u32, i64>,
}

/// Mint the trace id for one routed frame: a hash of the router's name
/// and its frame counter, so concurrent routers mint distinct ids and a
/// deterministic test run mints the same ids every time. Never 0 (the
/// "untraced" sentinel).
fn mint_trace(name: &str, frame: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h = (h ^ u64::from(*b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    // splitmix64 finisher over (name hash ⊕ frame).
    let mut z = h ^ frame.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    z.max(1)
}

impl Router {
    /// A router named `name` (its per-node sessions open as
    /// `router/<name>`) over an initial `map`; `connect` dials nodes.
    pub fn new(name: &str, map: ShardMap, connect: Arc<Connector>, cfg: RouterConfig) -> Router {
        Router {
            name: name.to_string(),
            map: Arc::new(map),
            connect,
            cfg,
            conns: HashMap::new(),
            loads: HashMap::new(),
            frames: 0,
            offsets: HashMap::new(),
        }
    }

    /// The map currently routing.
    pub fn map(&self) -> Arc<ShardMap> {
        self.map.clone()
    }

    /// Install `map` if newer; returns whether it replaced the current
    /// one.
    pub fn install_map(&mut self, map: ShardMap) -> bool {
        if map.version() <= self.map.version() {
            return false;
        }
        self.map = Arc::new(map);
        // A new membership is fresh evidence: nodes it still lists get
        // another chance even if we marked them down.
        for (id, conn) in &mut self.conns {
            if conn.down && self.map.contains(NodeId(*id)) {
                conn.down = false;
            }
        }
        true
    }

    /// Nodes currently marked unreachable.
    pub fn down_nodes(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> =
            self.conns.iter().filter(|(_, c)| c.down).map(|(&id, _)| NodeId(id)).collect();
        v.sort();
        v
    }

    /// Record a node's queue backlog (tests; production uses
    /// [`Router::refresh_loads`]).
    pub fn note_load(&mut self, node: NodeId, backlog: u64) {
        self.loads.insert(node.0, backlog);
    }

    /// Poll every live node's `Stats` and record its engine queue
    /// backlog for spill decisions. Returns nodes successfully polled.
    pub fn refresh_loads(&mut self) -> usize {
        let mut polled = 0;
        for node in self.map.clone().nodes() {
            if self.conns.get(&node.0).is_some_and(|c| c.down) {
                continue;
            }
            if let Ok(Response::StatsReply { counters }) = self.round_trip(*node, &Request::Stats) {
                let backlog: u64 = counters
                    .iter()
                    .filter(|(n, _)| n == "engine_queue_demand" || n == "engine_queue_prefetch")
                    .map(|(_, v)| v)
                    .sum();
                self.loads.insert(node.0, backlog);
                polled += 1;
            }
        }
        polled
    }

    /// Ask any live node for its map and install it if newer. Returns
    /// whether a newer map was installed.
    pub fn refresh_map(&mut self) -> bool {
        for node in self.map.clone().nodes() {
            if self.conns.get(&node.0).is_some_and(|c| c.down) {
                continue;
            }
            if let Ok(Response::MapReply { version, map_bytes }) =
                self.round_trip(*node, &Request::MapGet)
            {
                if version > self.map.version() {
                    if let Ok(m) = ShardMap::decode(&map_bytes) {
                        return self.install_map(m);
                    }
                }
                // Same or older version: the cluster agrees with us.
                return false;
            }
        }
        false
    }

    /// Probe every map node with a `Ping` heartbeat: an answer re-admits
    /// a node previously marked down (emitting [`Ev::NodeRecovered`]),
    /// and a node advertising a newer shard map gets its map pulled and
    /// installed before any demand fetch pays for the skew. Returns the
    /// number of nodes that answered.
    pub fn heartbeat(&mut self) -> usize {
        let nodes: Vec<NodeId> = self.map.nodes().to_vec();
        nodes.into_iter().filter(|&n| self.probe(n)).count()
    }

    /// Probe only the nodes currently marked down (the cheap revival
    /// path [`Router::fetch`] runs every [`RouterConfig::probe_every`]
    /// frames). Returns how many recovered.
    pub fn probe_down(&mut self) -> usize {
        self.down_nodes().into_iter().filter(|&n| self.probe(n)).count()
    }

    /// One `Ping` round trip to `node`, attempted even while it is
    /// marked down — the probe *is* how a down node earns its way back.
    fn probe(&mut self, node: NodeId) -> bool {
        let my_version = self.map.version();
        let was_down = {
            let conn = self.conn(node);
            let was = conn.down;
            // Clear the down gate for the attempt; a transport failure
            // inside `round_trip` re-marks it.
            conn.down = false;
            was
        };
        let req = Request::Ping { from: PING_FROM_CLIENT, map_version: my_version };
        match self.round_trip(node, &req) {
            Ok(Response::Pong { map_version, .. }) => {
                if was_down {
                    instant(Ev::NodeRecovered, u64::from(node.0), 0);
                }
                if map_version > my_version {
                    // The node is ahead of us: pull its map now so the
                    // next frame routes under current membership.
                    if let Ok(Response::MapReply { version, map_bytes }) =
                        self.round_trip(node, &Request::MapGet)
                    {
                        if version > self.map.version() {
                            if let Ok(m) = ShardMap::decode(&map_bytes) {
                                self.install_map(m);
                            }
                        }
                    }
                }
                true
            }
            Ok(_) => {
                // Answered, but not with a Pong: keep the prior verdict.
                self.conn(node).down = was_down;
                false
            }
            Err(_) => false,
        }
    }

    /// Route one frame: demand split per owner, prefetch attached to
    /// each key's owner batch, failed batches retried against ring
    /// successors across up to [`RouterConfig::max_rounds`] rounds (with
    /// a map refresh between rounds once anything failed). Unresolved
    /// keys report `TimedOut`; the call itself only errs when *no* node
    /// is reachable at all.
    pub fn fetch(&mut self, demand: Vec<BlockKey>, prefetch: Vec<(BlockKey, f64)>) -> RouterReply {
        self.frames = self.frames.wrapping_add(1);
        // Every frame gets one trace id, stamped on every batch it fans
        // out — the root of the cross-node span tree.
        let trace = mint_trace(&self.name, self.frames);
        let ctx = TraceCtx { trace, span: 0 };
        let t0 = viz_telemetry::start();
        let demand_n = demand.len() as u64;
        if self.cfg.probe_every > 0
            && self.frames.is_multiple_of(u64::from(self.cfg.probe_every))
            && self.conns.values().any(|c| c.down)
        {
            self.probe_down();
        }
        let mut results: Vec<Option<Result<Arc<Vec<f32>>, u16>>> = Vec::new();
        results.resize_with(demand.len(), || None);
        let mut attempted: Vec<Vec<NodeId>> = vec![Vec::new(); demand.len()];
        let (mut shed, mut downgraded, mut rounds) = (0u64, 0u64, 0u32);

        // Prefetch rides along exactly once, grouped by primary owner;
        // entries owned by a down node shed here (speculation is not
        // worth a failover round trip).
        let mut prefetch_by_node: HashMap<u32, Vec<(BlockKey, f64)>> = HashMap::new();
        for (key, pri) in prefetch {
            match self.map.owner(key) {
                Some(owner) => prefetch_by_node.entry(owner.0).or_default().push((key, pri)),
                None => shed += 1,
            }
        }

        while rounds < self.cfg.max_rounds {
            let pending: Vec<usize> = (0..demand.len()).filter(|&i| results[i].is_none()).collect();
            if pending.is_empty() {
                break;
            }
            rounds += 1;
            // Group this round's keys by chosen node, split by whether
            // the node owns them (off-owner batches go out hop-capped).
            let mut groups: HashMap<(u32, bool), Vec<usize>> = HashMap::new();
            let mut routable = false;
            for &i in &pending {
                if let Some(node) = self.pick(demand[i], &attempted[i]) {
                    let direct = self.map.owner(demand[i]) != Some(node);
                    groups.entry((node.0, direct)).or_default().push(i);
                    routable = true;
                }
            }
            if !routable {
                break;
            }
            let mut batches: Vec<(u32, bool)> = groups.keys().copied().collect();
            batches.sort();
            // One job per node; a node serving both an owner batch and a
            // direct (spill/failover) batch this round gets both, in
            // order, on its one connection.
            type Batch = (bool, Vec<usize>, Vec<BlockKey>, Vec<(BlockKey, f64)>);
            let mut jobs: Vec<(u32, Vec<Batch>)> = Vec::new();
            for (nid, direct) in batches {
                let idxs = groups.remove(&(nid, direct)).expect("batch key came from groups");
                let keys: Vec<BlockKey> = idxs.iter().map(|&i| demand[i]).collect();
                // Prefetch rides only with an owner batch; a spill target
                // has no use speculating on blocks it does not own.
                let pf = if direct {
                    Vec::new()
                } else {
                    prefetch_by_node.remove(&nid).unwrap_or_default()
                };
                for &i in &idxs {
                    attempted[i].push(NodeId(nid));
                }
                match jobs.last_mut() {
                    Some((last, list)) if *last == nid => list.push((direct, idxs, keys, pf)),
                    _ => jobs.push((nid, vec![(direct, idxs, keys, pf)])),
                }
            }
            // Fan the round out: each node's batches run on their own
            // scoped thread, owning that node's connection until the
            // join. Replies are still folded in sorted node order below,
            // so accounting stays deterministic.
            let connect = self.connect.clone();
            let name = self.name.clone();
            let mut conns: Vec<(u32, NodeConn)> = jobs
                .iter()
                .map(|(nid, _)| (*nid, self.conns.remove(nid).unwrap_or_else(NodeConn::fresh)))
                .collect();
            type BatchOutcome = (Vec<usize>, u64, io::Result<(Vec<BlockReply>, u32, u32)>);
            let round_results: Vec<Vec<BatchOutcome>> = std::thread::scope(|s| {
                let handles: Vec<_> = jobs
                    .into_iter()
                    .zip(conns.iter_mut())
                    .map(|((nid, list), (_, conn))| {
                        let (connect, name) = (&connect, &name);
                        s.spawn(move || {
                            list.into_iter()
                                .map(|(direct, idxs, keys, pf)| {
                                    let pf_n = pf.len() as u64;
                                    let r = exchange_on(
                                        connect.as_ref(),
                                        name,
                                        NodeId(nid),
                                        conn,
                                        keys,
                                        pf,
                                        direct,
                                        ctx,
                                    );
                                    (idxs, pf_n, r)
                                })
                                .collect()
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("router fan-out thread")).collect()
            });
            for (nid, conn) in conns {
                self.conns.insert(nid, conn);
            }
            let mut any_failed = false;
            for (idxs, pf_n, res) in round_results.into_iter().flatten() {
                match res {
                    Ok((blocks, s, d)) => {
                        shed += u64::from(s);
                        downgraded += u64::from(d);
                        for (&i, reply) in idxs.iter().zip(blocks) {
                            match reply.result {
                                Ok(data) => results[i] = Some(Ok(data)),
                                // Transient server-side kinds retry on
                                // the next candidate; the rest are
                                // final (NotFound won't improve by
                                // asking another replica of the same
                                // storage).
                                Err(code) if is_transient_code(code) => any_failed = true,
                                Err(code) => results[i] = Some(Err(code)),
                            }
                        }
                    }
                    Err(_) => {
                        // Transport-level failure: `exchange_on` marked
                        // the node down; its keys stay pending for the
                        // next round. Its prefetch is gone — count it
                        // shed.
                        any_failed = true;
                        shed += pf_n;
                    }
                }
            }
            if any_failed {
                // Something died or drained mid-frame; a reassigned map
                // may already exist on the survivors.
                self.refresh_map();
            }
        }

        // Prefetch whose owner took no demand batch still gets
        // delivered, as a prefetch-only request; owners that are down
        // shed it (speculation is not worth a failover).
        let mut leftover: Vec<u32> = prefetch_by_node.keys().copied().collect();
        leftover.sort();
        for nid in leftover {
            let entries = prefetch_by_node.remove(&nid).unwrap_or_default();
            let n = entries.len() as u64;
            match self.exchange(NodeId(nid), Vec::new(), entries, false, ctx) {
                Ok((_, s, d)) => {
                    shed += u64::from(s);
                    downgraded += u64::from(d);
                }
                Err(_) => shed += n,
            }
        }

        let timed_out = viz_serve::proto::errkind_code(io::ErrorKind::TimedOut);
        let blocks = demand
            .into_iter()
            .zip(results)
            .map(|(key, r)| BlockReply { key, result: r.unwrap_or(Err(timed_out)) })
            .collect();
        // The frame's root span: key = the minted trace id, arg packs
        // demand size and the rounds the frame needed.
        viz_telemetry::with_trace(trace, || {
            span(Ev::RouterFetch, trace, (demand_n << 8) | u64::from(rounds.min(255)), t0);
        });
        RouterReply { blocks, shed, downgraded, rounds }
    }

    /// The node this key should try next: the first live, un-attempted
    /// candidate — spilled to the next one when the load gap says the
    /// primary is drowning. Falls back to any live candidate (repeat
    /// attempts allowed) so transient errors can retry; `None` when every
    /// candidate is down.
    fn pick(&self, key: BlockKey, attempted: &[NodeId]) -> Option<NodeId> {
        let cands = self.map.owners(key, self.cfg.candidates.max(1));
        let live: Vec<NodeId> = cands
            .iter()
            .copied()
            .filter(|n| !self.conns.get(&n.0).is_some_and(|c| c.down))
            .collect();
        let fresh: Vec<NodeId> = live.iter().copied().filter(|n| !attempted.contains(n)).collect();
        match fresh.as_slice() {
            [] => live.first().copied(),
            [only] => Some(*only),
            [first, second, ..] => {
                let load = |n: &NodeId| self.loads.get(&n.0).copied().unwrap_or(0);
                if load(first) > load(second).saturating_add(self.cfg.spill_depth) {
                    Some(*second)
                } else {
                    Some(*first)
                }
            }
        }
    }

    /// One batch round trip to `node` (see [`exchange_on`]).
    fn exchange(
        &mut self,
        node: NodeId,
        keys: Vec<BlockKey>,
        prefetch: Vec<(BlockKey, f64)>,
        direct: bool,
        trace: TraceCtx,
    ) -> io::Result<(Vec<BlockReply>, u32, u32)> {
        let connect = self.connect.clone();
        let name = self.name.clone();
        exchange_on(connect.as_ref(), &name, node, self.conn(node), keys, prefetch, direct, trace)
    }

    fn conn(&mut self, node: NodeId) -> &mut NodeConn {
        self.conns.entry(node.0).or_insert_with(NodeConn::fresh)
    }

    /// One framed round trip (see [`round_trip_on`]).
    fn round_trip(&mut self, node: NodeId, req: &Request) -> io::Result<Response> {
        let connect = self.connect.clone();
        round_trip_on(connect.as_ref(), node, self.conn(node), req)
    }

    /// Estimate every live node's clock offset from one `Ping` round
    /// trip each (RTT-midpoint,
    /// [`viz_telemetry::collect::offset_from_rtt`]); the estimates align
    /// scraped drains onto the router's timeline. A v1 node (reporting
    /// `now_ns = 0`) keeps its previous estimate. Returns nodes synced.
    pub fn sync_clocks(&mut self) -> usize {
        let my_version = self.map.version();
        let mut synced = 0;
        for node in self.map.clone().nodes() {
            if self.conns.get(&node.0).is_some_and(|c| c.down) {
                continue;
            }
            let t_send = viz_telemetry::now_ns();
            let req = Request::Ping { from: PING_FROM_CLIENT, map_version: my_version };
            if let Ok(Response::Pong { now_ns, .. }) = self.round_trip(*node, &req) {
                let t_recv = viz_telemetry::now_ns();
                if now_ns != 0 {
                    let off = viz_telemetry::collect::offset_from_rtt(t_send, t_recv, now_ns);
                    self.offsets.insert(node.0, off);
                    synced += 1;
                }
            }
        }
        synced
    }

    /// The last [`Router::sync_clocks`] estimate for `node` (ns to add
    /// to its event timestamps; 0 until synced).
    pub fn clock_offset(&self, node: NodeId) -> i64 {
        self.offsets.get(&node.0).copied().unwrap_or(0)
    }

    /// Drain every live node's telemetry plane (`TelemetryGet`) into
    /// collector drains, clock-aligned with the last
    /// [`Router::sync_clocks`] estimates — the scrape half of
    /// [`viz_telemetry::collect::cluster_chrome_trace`] /
    /// [`cluster_prometheus`](viz_telemetry::collect::cluster_prometheus).
    pub fn scrape(&mut self) -> Vec<viz_telemetry::collect::NodeDrain> {
        let mut drains = Vec::new();
        for node in self.map.clone().nodes() {
            if self.conns.get(&node.0).is_some_and(|c| c.down) {
                continue;
            }
            if let Ok(Response::TelemetryReply(w)) = self.round_trip(*node, &Request::TelemetryGet)
            {
                let off = self.clock_offset(*node);
                drains.push(crate::obs::drain_from_wire(&w, off));
            }
        }
        drains
    }
}

/// One batch round trip to `node` on its connection — a plain `Fetch`
/// for an owner batch, a hop-capped `PeerFetch` for an off-owner one.
/// Reopens the session once on `ERR_UNKNOWN_SESSION`; `ERR_DRAINING` and
/// transport failures mark the node down. A free function over the
/// node's [`NodeConn`] so a fan-out thread can run it while the `Router`
/// itself stays on the caller's thread.
#[allow(clippy::too_many_arguments)]
fn exchange_on(
    connect: &Connector,
    name: &str,
    node: NodeId,
    conn: &mut NodeConn,
    keys: Vec<BlockKey>,
    prefetch: Vec<(BlockKey, f64)>,
    direct: bool,
    trace: TraceCtx,
) -> io::Result<(Vec<BlockReply>, u32, u32)> {
    for attempt in 0..2 {
        let session = ensure_session_on(connect, name, node, conn)?;
        let req = if direct {
            Request::PeerFetch { session, hops: DIRECT_HOPS, demand: keys.clone(), trace }
        } else {
            Request::Fetch {
                session,
                generation: 0,
                demand: keys.clone(),
                prefetch: prefetch.clone(),
                trace,
            }
        };
        match round_trip_on(connect, node, conn, &req) {
            Ok(Response::FetchReply { blocks, shed, downgraded, .. }) => {
                return Ok((blocks, shed, downgraded));
            }
            Ok(Response::Error { code, message }) if code == ERR_UNKNOWN_SESSION => {
                // The node restarted or drained our session; reopen
                // once within this round.
                conn.session = None;
                if attempt == 1 {
                    return Err(io::Error::new(io::ErrorKind::Interrupted, message));
                }
            }
            Ok(Response::Error { code, message }) if code == ERR_DRAINING => {
                conn.down = true;
                return Err(io::Error::new(io::ErrorKind::ConnectionRefused, message));
            }
            Ok(Response::Error { message, .. }) => {
                return Err(io::Error::new(io::ErrorKind::InvalidData, message));
            }
            Ok(_) => {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "expected FetchReply"));
            }
            Err(e) => return Err(e),
        }
    }
    unreachable!("loop returns on every arm by attempt 1")
}

fn ensure_session_on(
    connect: &Connector,
    name: &str,
    node: NodeId,
    conn: &mut NodeConn,
) -> io::Result<u32> {
    if let Some(s) = conn.session {
        return Ok(s);
    }
    let name = format!("router/{name}");
    match round_trip_on(connect, node, conn, &Request::Open { name })? {
        Response::OpenAck { session } => {
            conn.session = Some(session);
            Ok(session)
        }
        Response::Error { code, message } if code == ERR_DRAINING => {
            conn.down = true;
            Err(io::Error::new(io::ErrorKind::ConnectionRefused, message))
        }
        Response::Error { message, .. } => Err(io::Error::new(io::ErrorKind::InvalidData, message)),
        _ => Err(io::Error::new(io::ErrorKind::InvalidData, "expected OpenAck")),
    }
}

/// One framed round trip; transport failure drops the link and marks
/// the node down (the next map refresh can revive it).
fn round_trip_on(
    connect: &Connector,
    node: NodeId,
    conn: &mut NodeConn,
    req: &Request,
) -> io::Result<Response> {
    if conn.down {
        return Err(io::Error::new(io::ErrorKind::ConnectionRefused, "node marked down"));
    }
    if conn.link.is_none() {
        match connect(node) {
            Ok(l) => {
                conn.link = Some(l);
                conn.session = None;
            }
            Err(e) => {
                conn.down = true;
                return Err(e);
            }
        }
    }
    let link = conn.link.as_mut().expect("link just ensured");
    match link.round_trip(req) {
        Ok(resp) => Ok(resp),
        Err(e) => {
            conn.link = None;
            conn.session = None;
            conn.down = true;
            Err(e)
        }
    }
}

/// Wire error codes the router treats as retryable on another node:
/// Interrupted (3), TimedOut (4), WouldBlock (5).
fn is_transient_code(code: u16) -> bool {
    matches!(code, 3..=5)
}
