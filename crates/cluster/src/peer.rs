//! Node-to-node fetch over the VSRV protocol: a [`PeerLink`] is one
//! framed round trip to a peer, a [`PeerClient`] wraps it with session
//! lifecycle, bounded retry, and a per-peer circuit breaker reusing the
//! viz-fetch fault machinery.
//!
//! The client is deliberately pessimistic: any transport error drops the
//! link (the next attempt redials through the factory), an
//! `ERR_UNKNOWN_SESSION` reply drops only the session (the peer
//! restarted or drained us), and consecutive failures open the breaker
//! so a dead peer costs one probe per recovery window instead of a
//! timeout per key. Callers treat every [`PeerClient::fetch`] error as
//! "read it locally instead" — shared storage makes the fallback always
//! correct, so peer failure degrades locality, never availability.

use crate::shard::NodeId;
use std::io;
use std::net::TcpStream;
use std::time::Instant;
use viz_fetch::{BreakerConfig, BreakerState, CircuitBreaker, RetryPolicy};
use viz_serve::proto::{
    decode_response, encode_request, ERR_DRAINING, ERR_NO_MAP, ERR_UNKNOWN_SESSION,
};
use viz_serve::{BlockReply, Request, Response, TcpTransport, TraceCtx, Transport, WireTelemetry};
use viz_telemetry::{instant, span, EventKind as Ev};
use viz_volume::BlockKey;

/// One framed request→response round trip to a peer node. Implementations
/// are a live connection; errors mean the connection is unusable and the
/// owner should redial.
pub trait PeerLink: Send {
    /// Send `req`, block for the reply.
    fn round_trip(&mut self, req: &Request) -> io::Result<Response>;
}

/// Dials a fresh link to one peer; called on first use and after any
/// transport error.
pub type LinkFactory = Box<dyn Fn() -> io::Result<Box<dyn PeerLink>> + Send + Sync>;

/// Dials a fresh link to the named peer (shared by every [`PeerClient`]
/// of a node and by the router).
pub type Connector = dyn Fn(NodeId) -> io::Result<Box<dyn PeerLink>> + Send + Sync;

/// A [`PeerLink`] over localhost/LAN TCP.
pub struct TcpPeerLink {
    t: TcpTransport,
}

impl TcpPeerLink {
    /// Connect to a peer's VSRV listener.
    pub fn connect(addr: std::net::SocketAddr) -> io::Result<TcpPeerLink> {
        Ok(TcpPeerLink { t: TcpTransport::new(TcpStream::connect(addr)?) })
    }
}

impl PeerLink for TcpPeerLink {
    fn round_trip(&mut self, req: &Request) -> io::Result<Response> {
        self.t.send(&encode_request(req))?;
        let frame = self.t.recv()?;
        Ok(decode_response(&frame)?)
    }
}

/// Peer-fetch tuning.
#[derive(Debug, Clone)]
pub struct PeerConfig {
    /// Retry policy for transient failures (transport drop, peer timeout).
    /// Deterministic clusters use [`RetryPolicy::none`] or `immediate`.
    pub retry: RetryPolicy,
    /// Per-peer circuit breaker tuning.
    pub breaker: BreakerConfig,
    /// Hop count stamped on outgoing `PeerFetch` frames. A node forwards
    /// at 1; receivers past the cap answer from local storage instead of
    /// forwarding again, bounding cycles under shard-map skew.
    pub hops: u8,
}

impl Default for PeerConfig {
    fn default() -> Self {
        PeerConfig { retry: RetryPolicy::default(), breaker: BreakerConfig::default(), hops: 1 }
    }
}

/// A resilient client for one peer node (see module docs).
pub struct PeerClient {
    self_id: NodeId,
    peer: NodeId,
    /// Session name on the peer; the `peer/` prefix tags the session as
    /// cluster traffic in the peer's registry and stats.
    name: String,
    factory: LinkFactory,
    cfg: PeerConfig,
    breaker: CircuitBreaker,
    link: Option<Box<dyn PeerLink>>,
    session: Option<u32>,
}

impl PeerClient {
    /// A client for `peer`, identifying itself as `self_id`.
    pub fn new(self_id: NodeId, peer: NodeId, factory: LinkFactory, cfg: PeerConfig) -> PeerClient {
        PeerClient {
            self_id,
            peer,
            name: format!("peer/{self_id}"),
            factory,
            cfg,
            breaker: CircuitBreaker::new(),
            link: None,
            session: None,
        }
    }

    /// The peer this client dials.
    pub fn peer(&self) -> NodeId {
        self.peer
    }

    /// The breaker's current state (tests and diagnostics).
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.state()
    }

    /// Breaker transition counters: `(opens, half_opens, closes,
    /// rejected)`.
    pub fn breaker_counters(&self) -> (u64, u64, u64, u64) {
        self.breaker.counters()
    }

    fn call(&mut self, req: &Request) -> io::Result<Response> {
        if self.link.is_none() {
            self.link = Some((self.factory)()?);
            self.session = None;
        }
        let link = self.link.as_mut().expect("link just ensured");
        match link.round_trip(req) {
            Ok(resp) => Ok(resp),
            Err(e) => {
                // Any transport failure poisons the connection; redial on
                // the next attempt.
                self.link = None;
                self.session = None;
                Err(e)
            }
        }
    }

    fn ensure_session(&mut self) -> io::Result<u32> {
        if let Some(s) = self.session {
            return Ok(s);
        }
        match self.call(&Request::Open { name: self.name.clone() })? {
            Response::OpenAck { session } => {
                self.session = Some(session);
                Ok(session)
            }
            Response::Error { code, message } if code == ERR_DRAINING => {
                Err(io::Error::new(io::ErrorKind::ConnectionRefused, message))
            }
            Response::Error { message, .. } => {
                Err(io::Error::new(io::ErrorKind::InvalidData, message))
            }
            _ => Err(io::Error::new(io::ErrorKind::InvalidData, "expected OpenAck")),
        }
    }

    fn try_fetch(&mut self, demand: &[BlockKey]) -> io::Result<Vec<BlockReply>> {
        let session = self.ensure_session()?;
        // Forwarded demand keeps the originating client's trace id so the
        // owner's spans join the same cross-node tree.
        let trace = TraceCtx { trace: viz_telemetry::current_trace(), span: 0 };
        let req =
            Request::PeerFetch { session, hops: self.cfg.hops, demand: demand.to_vec(), trace };
        match self.call(&req)? {
            Response::FetchReply { blocks, .. } => Ok(blocks),
            Response::Error { code, message } if code == ERR_UNKNOWN_SESSION => {
                // Peer restarted or drained our session: transient —
                // the next attempt reopens.
                self.session = None;
                Err(io::Error::new(io::ErrorKind::Interrupted, message))
            }
            Response::Error { code, message } if code == ERR_DRAINING => {
                Err(io::Error::new(io::ErrorKind::ConnectionRefused, message))
            }
            Response::Error { message, .. } => {
                Err(io::Error::new(io::ErrorKind::InvalidData, message))
            }
            _ => Err(io::Error::new(io::ErrorKind::InvalidData, "expected FetchReply")),
        }
    }

    /// Resolve `demand` on the peer: one `PeerFetch` round trip, with
    /// bounded retry on transient failures and the breaker gating
    /// attempts while the peer is presumed down. Returns one reply per
    /// key in request order.
    pub fn fetch(&mut self, demand: &[BlockKey]) -> io::Result<Vec<BlockReply>> {
        match self.breaker.state() {
            BreakerState::Closed => {}
            // We become the probe: the CAS flips Open → HalfOpen and
            // emits the BreakerHalfOpen transition.
            BreakerState::Open => self.breaker.on_demand_dispatch(),
            // Someone else's probe is in flight; fail fast so demand
            // falls back to local storage instead of queueing on a
            // presumed-dead peer.
            BreakerState::HalfOpen => {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "peer breaker probing"));
            }
        }
        let t0 = Instant::now();
        let mut attempt = 0u32;
        loop {
            match self.try_fetch(demand) {
                Ok(blocks) => {
                    self.breaker.on_success();
                    span(
                        Ev::PeerFetch,
                        u64::from(self.peer.0),
                        (demand.len() as u64) << 1 | 1,
                        Some(t0),
                    );
                    return Ok(blocks);
                }
                Err(e) => {
                    if self.cfg.retry.should_retry(e.kind(), attempt) {
                        let backoff = self.cfg.retry.backoff(attempt, u64::from(self.peer.0));
                        if !backoff.is_zero() {
                            std::thread::sleep(backoff);
                        }
                        attempt += 1;
                        continue;
                    }
                    self.breaker.on_failure(self.cfg.breaker.failure_threshold);
                    span(
                        Ev::PeerFetch,
                        u64::from(self.peer.0),
                        (demand.len() as u64) << 1,
                        Some(t0),
                    );
                    return Err(e);
                }
            }
        }
    }

    /// One membership heartbeat: send `Ping` carrying our `map_version`,
    /// return the peer's `(node, map_version)` from its `Pong`.
    /// Sessionless and not breaker-gated — the heartbeat *is* the probe
    /// that detects recovery, so it must keep flowing while the breaker
    /// holds fetches back. Emits [`Ev::HeartbeatSent`] per attempt.
    pub fn ping(&mut self, map_version: u64) -> io::Result<(u32, u64)> {
        self.ping_timed(map_version).map(|(node, ver, _)| (node, ver))
    }

    /// [`PeerClient::ping`] that also returns the peer's telemetry clock
    /// (`now_ns`; 0 from a v1 peer) — paired with the local send/receive
    /// instants it yields an RTT-midpoint clock-offset estimate for
    /// cross-node trace alignment.
    pub fn ping_timed(&mut self, map_version: u64) -> io::Result<(u32, u64, u64)> {
        instant(Ev::HeartbeatSent, u64::from(self.peer.0), map_version);
        let from = self.self_id.0;
        match self.call(&Request::Ping { from, map_version })? {
            Response::Pong { node, map_version, now_ns } => Ok((node, map_version, now_ns)),
            Response::Error { message, .. } => {
                Err(io::Error::new(io::ErrorKind::InvalidData, message))
            }
            _ => Err(io::Error::new(io::ErrorKind::InvalidData, "expected Pong")),
        }
    }

    /// Drain the peer's telemetry plane (events, histograms, counters) —
    /// the scrape collector's per-node round trip. Sessionless and not
    /// breaker-gated: observability must keep working while fetches are
    /// held back, or the trace of the outage loses exactly the node that
    /// matters.
    pub fn telemetry_get(&mut self) -> io::Result<WireTelemetry> {
        match self.call(&Request::TelemetryGet)? {
            Response::TelemetryReply(t) => Ok(t),
            Response::Error { message, .. } => {
                Err(io::Error::new(io::ErrorKind::InvalidData, message))
            }
            _ => Err(io::Error::new(io::ErrorKind::InvalidData, "expected TelemetryReply")),
        }
    }

    /// Fetch the peer's shard map: `(version, map_bytes)`. No session
    /// needed; not breaker-gated (map refresh is how recovery learns the
    /// cluster healed).
    pub fn map_get(&mut self) -> io::Result<(u64, Vec<u8>)> {
        match self.call(&Request::MapGet)? {
            Response::MapReply { version, map_bytes } => Ok((version, map_bytes)),
            Response::Error { code, message } if code == ERR_NO_MAP => {
                Err(io::Error::new(io::ErrorKind::NotFound, message))
            }
            Response::Error { message, .. } => {
                Err(io::Error::new(io::ErrorKind::InvalidData, message))
            }
            _ => Err(io::Error::new(io::ErrorKind::InvalidData, "expected MapReply")),
        }
    }

    /// Snapshot the peer's wire counters (the router's load probe).
    pub fn stats(&mut self) -> io::Result<Vec<(String, u64)>> {
        match self.call(&Request::Stats)? {
            Response::StatsReply { counters } => Ok(counters),
            Response::Error { message, .. } => {
                Err(io::Error::new(io::ErrorKind::InvalidData, message))
            }
            _ => Err(io::Error::new(io::ErrorKind::InvalidData, "expected StatsReply")),
        }
    }
}

/// Record a peer-fetch failure that fell back to the local path.
pub(crate) fn note_fallback(peer: NodeId, kind: io::ErrorKind) {
    instant(Ev::PeerFallback, u64::from(peer.0), u64::from(viz_serve::proto::errkind_code(kind)));
}
