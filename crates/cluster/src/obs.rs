//! Cluster observability glue: the scrape plane's wire→collector
//! conversion and the CRC-framed flight-dump file.
//!
//! The scrape path: [`crate::Router::scrape`] issues one `TelemetryGet`
//! per reachable node, [`drain_from_wire`] turns each reply into a
//! [`NodeDrain`], and `viz_telemetry::collect` merges the drains into
//! one Perfetto trace / Prometheus rollup.
//!
//! The dump path: when a flight-recorder trigger fires (demand error,
//! deadline-miss burst, breaker open, SLO burn), the harness captures
//! the recorder's recent history — which, in an in-process cluster,
//! already holds every node's events, split by each event's `node`
//! attribution — and [`write_flight_dump`] serializes it into a
//! length-prefixed, CRC-framed file [`read_flight_dump`] can
//! reconstruct. A TCP deployment builds the remote sections from
//! scraped drains instead ([`section_from_drain`]); the dumping process
//! contributes its own flight history.

use std::collections::BTreeMap;
use std::io::{self, Read as _, Write as _};
use std::path::Path;
use viz_serve::WireTelemetry;
use viz_telemetry::collect::NodeDrain;
use viz_telemetry::flight::{FlightSnapshot, Trigger, TriggerKind};
use viz_telemetry::{EventKind, LogHistogram, TraceEvent};
use viz_volume::crc32;

/// Convert one node's `TelemetryGet` reply into a collector drain,
/// aligned onto the collector's timeline by `clock_offset_ns` (from an
/// RTT-midpoint estimate, [`viz_telemetry::collect::offset_from_rtt`]).
pub fn drain_from_wire(w: &WireTelemetry, clock_offset_ns: i64) -> NodeDrain {
    let hists = w
        .hists
        .iter()
        .filter_map(|h| {
            let kind = *EventKind::ALL.get(h.kind as usize)?;
            Some((kind, LogHistogram::from_sparse(&h.pairs, h.count, h.sum, h.min, h.max)))
        })
        .collect();
    NodeDrain {
        node: w.node,
        events: w.events.clone(),
        dropped: w.dropped,
        clock_offset_ns,
        counters: w.counters.clone(),
        hists,
    }
}

/// One node's slice of a flight dump. `node` follows the event
/// attribution convention: 0 is the router/client, `NodeId + 1` a
/// cluster node.
#[derive(Clone, Default)]
pub struct DumpSection {
    /// Attribution id (see type docs).
    pub node: u32,
    /// Cumulative ring-overflow drops on that node.
    pub dropped: u64,
    /// Flight triggers pending on that node when the dump was cut.
    pub triggers: Vec<Trigger>,
    /// The node's recent-history window, time-sorted.
    pub events: Vec<TraceEvent>,
}

/// Split a process-wide [`FlightSnapshot`] into per-node dump sections
/// by each event's `node` attribution — the in-process cluster's dump
/// shape, where one flight recorder saw every node's drains. Triggers
/// ride with the section of the event that fired them (by subject key
/// match), defaulting to section 0.
pub fn sections_from_snapshot(snap: &FlightSnapshot) -> Vec<DumpSection> {
    let mut by_node: BTreeMap<u32, DumpSection> = BTreeMap::new();
    for e in &snap.events {
        let s = by_node
            .entry(u32::from(e.node))
            .or_insert_with(|| DumpSection { node: u32::from(e.node), ..DumpSection::default() });
        s.events.push(*e);
    }
    for t in &snap.triggers {
        let node = snap
            .events
            .iter()
            .find(|e| e.key == t.key && e.t_ns == t.t_ns)
            .map_or(0, |e| u32::from(e.node));
        by_node
            .entry(node)
            .or_insert_with(|| DumpSection { node, ..DumpSection::default() })
            .triggers
            .push(*t);
    }
    let mut sections: Vec<DumpSection> = by_node.into_values().collect();
    if let Some(first) = sections.first_mut() {
        first.dropped = snap.dropped;
    }
    sections
}

/// A scraped remote drain as a dump section (no trigger state — that
/// never leaves the remote process).
pub fn section_from_drain(d: &NodeDrain) -> DumpSection {
    DumpSection {
        // The drain names the node by raw id; sections use the
        // attribution convention.
        node: d.node + 1,
        dropped: d.dropped,
        triggers: Vec::new(),
        events: d.events.clone(),
    }
}

const DUMP_MAGIC: [u8; 4] = *b"VFDR";
const DUMP_VERSION: u16 = 1;
const EVENT_BYTES: usize = 45;
const TRIGGER_BYTES: usize = 17;

fn put_event(out: &mut Vec<u8>, e: &TraceEvent) {
    out.extend_from_slice(&e.t_ns.to_le_bytes());
    out.extend_from_slice(&e.dur_ns.to_le_bytes());
    out.extend_from_slice(&e.key.to_le_bytes());
    out.extend_from_slice(&e.arg.to_le_bytes());
    out.extend_from_slice(&e.trace.to_le_bytes());
    out.push(e.kind as u8);
    out.extend_from_slice(&e.tid.to_le_bytes());
    out.extend_from_slice(&e.node.to_le_bytes());
}

fn frame(payload: &[u8]) -> Vec<u8> {
    let mut f = Vec::with_capacity(8 + payload.len());
    f.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    f.extend_from_slice(&crc32(payload).to_le_bytes());
    f.extend_from_slice(payload);
    f
}

/// Serialize `sections` to `path` as a sequence of CRC-framed chunks
/// (header frame, then one frame per section). Emits one
/// [`EventKind::FlightDump`] instant — key = the first pending
/// trigger's wire code (0 if none), arg = total events written — so the
/// dump itself lands on the timeline. Returns total events written.
pub fn write_flight_dump(path: &Path, sections: &[DumpSection]) -> io::Result<u64> {
    let mut total = 0u64;
    let mut out = Vec::new();
    let mut header = Vec::with_capacity(10);
    header.extend_from_slice(&DUMP_MAGIC);
    header.extend_from_slice(&DUMP_VERSION.to_le_bytes());
    header.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    out.extend_from_slice(&frame(&header));
    for s in sections {
        let mut p = Vec::with_capacity(24 + s.events.len() * EVENT_BYTES);
        p.extend_from_slice(&s.node.to_le_bytes());
        p.extend_from_slice(&s.dropped.to_le_bytes());
        p.extend_from_slice(&(s.triggers.len() as u32).to_le_bytes());
        for t in &s.triggers {
            p.push(t.kind.code());
            p.extend_from_slice(&t.t_ns.to_le_bytes());
            p.extend_from_slice(&t.key.to_le_bytes());
        }
        p.extend_from_slice(&(s.events.len() as u32).to_le_bytes());
        for e in &s.events {
            put_event(&mut p, e);
        }
        total += s.events.len() as u64;
        out.extend_from_slice(&frame(&p));
    }
    std::fs::File::create(path)?.write_all(&out)?;
    let first = sections.iter().find_map(|s| s.triggers.first()).map_or(0, |t| t.kind.code());
    viz_telemetry::instant(EventKind::FlightDump, u64::from(first), total);
    Ok(total)
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.buf.len() - self.at < n {
            return Err(bad("flight dump truncated"));
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> io::Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn next_frame(&mut self) -> io::Result<&'a [u8]> {
        let len = self.u32()? as usize;
        let want = self.u32()?;
        let payload = self.take(len)?;
        if crc32(payload) != want {
            return Err(bad("flight dump frame checksum mismatch"));
        }
        Ok(payload)
    }
}

/// Read a dump written by [`write_flight_dump`], validating every
/// frame's CRC, the magic/version, and each event's kind code.
pub fn read_flight_dump(path: &Path) -> io::Result<Vec<DumpSection>> {
    let mut buf = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut buf)?;
    let mut cur = Cursor { buf: &buf, at: 0 };
    let header = cur.next_frame()?;
    let mut h = Cursor { buf: header, at: 0 };
    if h.take(4)? != DUMP_MAGIC {
        return Err(bad("not a flight dump (bad magic)"));
    }
    if h.u16()? != DUMP_VERSION {
        return Err(bad("unsupported flight dump version"));
    }
    let n = h.u32()? as usize;
    let mut sections = Vec::with_capacity(n);
    for _ in 0..n {
        let payload = cur.next_frame()?;
        let mut c = Cursor { buf: payload, at: 0 };
        let node = c.u32()?;
        let dropped = c.u64()?;
        let nt = c.u32()? as usize;
        if payload.len() < 16 + nt * TRIGGER_BYTES {
            return Err(bad("flight dump truncated"));
        }
        let mut triggers = Vec::with_capacity(nt);
        for _ in 0..nt {
            let code = c.u8()?;
            let kind = TriggerKind::from_code(code)
                .ok_or_else(|| bad("flight dump: unknown trigger kind"))?;
            triggers.push(Trigger { kind, t_ns: c.u64()?, key: c.u64()? });
        }
        let ne = c.u32()? as usize;
        if payload.len() - c.at < ne * EVENT_BYTES {
            return Err(bad("flight dump truncated"));
        }
        let mut events = Vec::with_capacity(ne);
        for _ in 0..ne {
            let (t_ns, dur_ns, key, arg, trace) =
                (c.u64()?, c.u64()?, c.u64()?, c.u64()?, c.u64()?);
            let code = c.u8()?;
            let kind = *EventKind::ALL
                .get(code as usize)
                .ok_or_else(|| bad("flight dump: unknown event kind"))?;
            events.push(TraceEvent {
                t_ns,
                dur_ns,
                key,
                arg,
                trace,
                kind,
                tid: c.u16()?,
                node: c.u16()?,
            });
        }
        sections.push(DumpSection { node, dropped, triggers, events });
    }
    Ok(sections)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, t_ns: u64, key: u64, node: u16) -> TraceEvent {
        TraceEvent { t_ns, dur_ns: 7, key, arg: 3, trace: 0x51, kind, tid: 2, node }
    }

    #[test]
    fn dump_roundtrips_bit_exact() {
        let dir = std::env::temp_dir().join("viz-obs-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.vfdr");
        let sections = vec![
            DumpSection {
                node: 0,
                dropped: 5,
                triggers: vec![Trigger { kind: TriggerKind::BreakerOpen, t_ns: 9, key: 2 }],
                events: vec![ev(EventKind::RouterFetch, 1, 0xA, 0)],
            },
            DumpSection {
                node: 2,
                dropped: 0,
                triggers: vec![],
                events: vec![
                    ev(EventKind::FaultInjected, 2, 1, 2),
                    ev(EventKind::PeerFetch, 3, 0xA, 2),
                ],
            },
        ];
        let written = write_flight_dump(&path, &sections).unwrap();
        assert_eq!(written, 3);
        let back = read_flight_dump(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].node, 0);
        assert_eq!(back[0].dropped, 5);
        assert_eq!(back[0].triggers.len(), 1);
        assert_eq!(back[0].triggers[0].kind, TriggerKind::BreakerOpen);
        assert_eq!(back[1].events.len(), 2);
        assert_eq!(back[1].events[0].kind, EventKind::FaultInjected);
        assert_eq!(back[1].events[1].key, 0xA);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_dump_is_a_typed_error_not_a_panic() {
        let dir = std::env::temp_dir().join("viz-obs-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.vfdr");
        let sections = vec![DumpSection {
            node: 1,
            events: vec![ev(EventKind::CacheHit, 1, 2, 1)],
            ..DumpSection::default()
        }];
        write_flight_dump(&path, &sections).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        for i in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[i] ^= 0xff;
            std::fs::write(&path, &flipped).unwrap();
            // Any flip must surface as Err, never a panic or a silently
            // different parse that round-trips as valid.
            let _ = read_flight_dump(&path);
        }
        bytes.truncate(bytes.len() / 2);
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_flight_dump(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshot_splits_per_node() {
        let snap = FlightSnapshot {
            events: vec![
                ev(EventKind::RouterFetch, 1, 0xA, 0),
                ev(EventKind::RpcServe, 2, 1, 1),
                ev(EventKind::PeerFetch, 3, 0xA, 2),
                ev(EventKind::FetchFail, 4, 0xB, 2),
            ],
            dropped: 9,
            triggers: vec![Trigger { kind: TriggerKind::DemandError, t_ns: 4, key: 0xB }],
            hists: vec![],
        };
        let sections = sections_from_snapshot(&snap);
        assert_eq!(sections.len(), 3);
        assert_eq!(sections[0].node, 0);
        assert_eq!(sections[0].dropped, 9, "drops ride the first section");
        assert_eq!(sections[2].node, 2);
        assert_eq!(sections[2].events.len(), 2);
        // The trigger followed its firing event to node 2's section.
        assert_eq!(sections[2].triggers.len(), 1);
    }

    #[test]
    fn wire_drain_conversion_keeps_hists_and_counters() {
        let w = WireTelemetry {
            node: 3,
            now_ns: 0,
            dropped: 2,
            events: vec![ev(EventKind::SourceRead, 5, 0xC, 4)],
            hists: vec![viz_serve::HistSnapshot {
                kind: EventKind::SourceRead as u8,
                pairs: vec![(4, 2)],
                count: 2,
                sum: 40,
                min: 16,
                max: 24,
            }],
            counters: vec![("serve_demand_keys".to_string(), 11)],
        };
        let d = drain_from_wire(&w, 1_000);
        assert_eq!(d.node, 3);
        assert_eq!(d.clock_offset_ns, 1_000);
        assert_eq!(d.events.len(), 1);
        assert_eq!(d.counters[0].1, 11);
        let (kind, h) = &d.hists[0];
        assert_eq!(*kind, EventKind::SourceRead);
        assert_eq!((h.count(), h.min(), h.max()), (2, 16, 24));
    }
}
