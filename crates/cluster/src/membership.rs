//! Failure detection: deadline-based suspicion over heartbeat acks.
//!
//! Each participant (node or router) keeps one [`Membership`] view of its
//! peers. Evidence is *directional*: only the outcomes of this
//! participant's own probes count — a successful `Pong` to our `Ping` is
//! positive evidence ([`Membership::note_ok`]), while inbound traffic
//! from a peer proves nothing about whether *we* can reach *it* (under
//! an asymmetric partition the unreachable node's outbound pings still
//! arrive, and must not clear the suspicion routing depends on). A
//! probe's transport failure is
//! immediate negative evidence ([`Membership::note_fail`]); and
//! [`Membership::sweep`] applies the deadline rule: a peer whose last
//! positive evidence is older than [`MembershipConfig::suspect_after`]
//! becomes *suspect*. Suspect peers are excluded from demand routing
//! proactively — the read path skips them before paying a timeout — and
//! re-admitted the moment a probe succeeds.
//!
//! Time is a caller-supplied monotonic `u64` so the same detector runs on
//! the deterministic virtual clock (ticks) in tests and on wall-clock
//! milliseconds in deployments.

use crate::shard::NodeId;
use std::collections::HashMap;
use viz_telemetry::{instant, EventKind as Ev};

/// Failure-detector tuning.
#[derive(Debug, Clone, Copy)]
pub struct MembershipConfig {
    /// A peer with no positive evidence for this long (in the caller's
    /// clock units) becomes suspect at the next [`Membership::sweep`].
    pub suspect_after: u64,
}

impl Default for MembershipConfig {
    fn default() -> Self {
        // Generous for wall-clock milliseconds (several heartbeat
        // intervals); deterministic tests override in virtual ticks.
        MembershipConfig { suspect_after: 3_000 }
    }
}

#[derive(Debug, Clone, Copy)]
struct PeerHealth {
    last_ok: u64,
    suspect: bool,
}

/// One participant's live view of its peers (see module docs).
#[derive(Debug, Default)]
pub struct Membership {
    cfg: MembershipConfig,
    peers: HashMap<u32, PeerHealth>,
}

impl Membership {
    /// An empty view under `cfg`; peers register on first evidence.
    pub fn new(cfg: MembershipConfig) -> Membership {
        Membership { cfg, peers: HashMap::new() }
    }

    /// Record positive evidence for `peer` at `now`. Returns `true` when
    /// this re-admitted a suspect (emitting [`Ev::NodeRecovered`]).
    pub fn note_ok(&mut self, peer: NodeId, now: u64) -> bool {
        let h = self.peers.entry(peer.0).or_insert(PeerHealth { last_ok: now, suspect: false });
        h.last_ok = now;
        let recovered = h.suspect;
        h.suspect = false;
        if recovered {
            instant(Ev::NodeRecovered, u64::from(peer.0), 0);
        }
        recovered
    }

    /// Record a hard failure (transport error, refused connection) for
    /// `peer`: immediate suspicion, no deadline wait. Returns `true` when
    /// the peer was not already suspect (emitting [`Ev::SuspectNode`]).
    pub fn note_fail(&mut self, peer: NodeId) -> bool {
        let h = self.peers.entry(peer.0).or_insert(PeerHealth { last_ok: 0, suspect: false });
        let newly = !h.suspect;
        h.suspect = true;
        if newly {
            instant(Ev::SuspectNode, u64::from(peer.0), 1);
        }
        newly
    }

    /// Apply the deadline rule at `now`: peers silent longer than
    /// [`MembershipConfig::suspect_after`] become suspect. Returns the
    /// newly suspected peers, sorted.
    pub fn sweep(&mut self, now: u64) -> Vec<NodeId> {
        let mut newly = Vec::new();
        for (&id, h) in &mut self.peers {
            if !h.suspect && now.saturating_sub(h.last_ok) > self.cfg.suspect_after {
                h.suspect = true;
                instant(Ev::SuspectNode, u64::from(id), 0);
                newly.push(NodeId(id));
            }
        }
        newly.sort();
        newly
    }

    /// Whether `peer` is currently suspect. Unknown peers are healthy:
    /// absence of evidence is not evidence of death.
    pub fn is_suspect(&self, peer: NodeId) -> bool {
        self.peers.get(&peer.0).is_some_and(|h| h.suspect)
    }

    /// Currently suspect peers, sorted.
    pub fn suspects(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> =
            self.peers.iter().filter(|(_, h)| h.suspect).map(|(&id, _)| NodeId(id)).collect();
        v.sort();
        v
    }

    /// Drop all recorded state for `peer` (it left the map for good).
    pub fn forget(&mut self, peer: NodeId) {
        self.peers.remove(&peer.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(suspect_after: u64) -> Membership {
        Membership::new(MembershipConfig { suspect_after })
    }

    #[test]
    fn deadline_lapse_marks_suspect_and_probe_recovers() {
        let mut mem = m(10);
        mem.note_ok(NodeId(1), 0);
        mem.note_ok(NodeId(2), 0);
        assert!(mem.sweep(10).is_empty(), "deadline is exclusive");
        mem.note_ok(NodeId(2), 11);
        assert_eq!(mem.sweep(11), vec![NodeId(1)]);
        assert!(mem.is_suspect(NodeId(1)));
        assert!(!mem.is_suspect(NodeId(2)));
        // A successful probe re-admits immediately.
        assert!(mem.note_ok(NodeId(1), 12));
        assert!(!mem.is_suspect(NodeId(1)));
        assert_eq!(mem.suspects(), Vec::<NodeId>::new());
    }

    #[test]
    fn hard_failure_suspects_without_waiting() {
        let mut mem = m(1_000_000);
        mem.note_ok(NodeId(3), 5);
        assert!(mem.note_fail(NodeId(3)));
        assert!(!mem.note_fail(NodeId(3)), "already suspect");
        assert_eq!(mem.suspects(), vec![NodeId(3)]);
    }

    #[test]
    fn unknown_peers_are_healthy_and_sweep_is_idempotent() {
        let mut mem = m(10);
        assert!(!mem.is_suspect(NodeId(9)));
        mem.note_ok(NodeId(1), 0);
        assert_eq!(mem.sweep(100), vec![NodeId(1)]);
        assert!(mem.sweep(200).is_empty(), "no double suspicion");
        mem.forget(NodeId(1));
        assert!(!mem.is_suspect(NodeId(1)));
    }
}
