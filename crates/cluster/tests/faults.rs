//! Deterministic failure injection: partitions the control plane has
//! not noticed yet, breaker state on dead peers, and routing under map
//! skew. Availability invariant throughout: demand never errors because
//! of cluster topology — shared storage always allows a local read.

use viz_cluster::{ClusterConfig, NodeId, ShardStrategy, TestCluster};
use viz_fetch::BreakerConfig;
use viz_telemetry::EventKind;
use viz_volume::{BlockId, BlockKey};

fn key(i: u32) -> BlockKey {
    BlockKey::scalar(BlockId(i))
}

fn seed(cluster: &TestCluster, n: u32) -> Vec<BlockKey> {
    (0..n)
        .map(|i| {
            let k = key(i);
            cluster.insert(k, vec![i as f32; 16]);
            k
        })
        .collect()
}

#[test]
fn partitioned_peer_falls_back_locally_and_breaker_opens() {
    viz_telemetry::set_enabled(true);
    let _ = viz_telemetry::drain();

    // Low breaker threshold so a handful of remote keys crosses it.
    let mut cluster_cfg = ClusterConfig::deterministic();
    cluster_cfg.peer.breaker = BreakerConfig { failure_threshold: 3 };
    let mut cluster = TestCluster::with_configs(
        2,
        ShardStrategy::Ring,
        viz_serve::ServeConfig::default(),
        cluster_cfg,
    );
    let keys = seed(&cluster, 64);
    let remote: Vec<BlockKey> = keys
        .iter()
        .copied()
        .filter(|&k| cluster.map().owner(k) == Some(NodeId(1)))
        .take(8)
        .collect();
    assert!(remote.len() >= 6, "need several node-1 keys");

    // Node 1 dies, but nobody reassigns the map: node 0 keeps trying to
    // forward, failing, and falling back to its local (shared) storage.
    cluster.partition_node(NodeId(1));
    let mut client = cluster.client(NodeId(0));
    client.open("viewer").unwrap();
    for &k in &remote {
        let out = client.fetch(vec![k], vec![]).unwrap();
        assert!(
            out.blocks[0].result.is_ok(),
            "a dead peer must degrade locality, never availability"
        );
    }
    // Every read happened on node 0 (the fallback), none on the corpse.
    assert_eq!(cluster.reads(NodeId(0)), remote.len() as u64);
    assert_eq!(cluster.reads(NodeId(1)), 0);

    // The per-peer breaker crossed its threshold and opened; later
    // demands became half-open probes that failed and re-opened it.
    let node0 = cluster.node(NodeId(0)).unwrap();
    let (opens, half_opens, _closes, _rejected) =
        node0.peer_breaker_counters(NodeId(1)).expect("peer client was dialed");
    assert!(opens >= 1, "breaker never opened after {} failures", remote.len());
    assert!(half_opens >= 1, "no probe was attempted after the breaker opened");

    // And the transitions are visible in telemetry, alongside the
    // per-failure fallback records.
    let trace = viz_telemetry::drain();
    assert!(trace.count(EventKind::BreakerOpen) >= 1, "BreakerOpen not recorded");
    assert!(
        trace.count(EventKind::PeerFallback) >= remote.len(),
        "every failed forward should record a PeerFallback"
    );
    assert!(trace.count(EventKind::PeerFetch) >= remote.len());
    viz_telemetry::set_enabled(false);
}

#[test]
fn router_survives_partition_before_any_reassignment() {
    let mut cluster = TestCluster::new(4, ShardStrategy::Ring);
    let keys = seed(&cluster, 64);
    let mut router = cluster.router("viewer");
    assert!(router.fetch(keys.clone(), vec![]).blocks.iter().all(|b| b.result.is_ok()));

    // Partition without reassignment: the surviving nodes still hold the
    // old map, so a map refresh brings nothing new. The router must
    // fail over on its own, via the ring-successor candidates.
    let dead = NodeId(3);
    let orphaned = keys.iter().filter(|&&k| cluster.map().owner(k) == Some(dead)).count();
    assert!(orphaned > 0);
    cluster.partition_node(dead);

    let reply = router.fetch(keys.clone(), vec![]);
    assert!(
        reply.blocks.iter().all(|b| b.result.is_ok()),
        "router failover must cover a partition the control plane missed"
    );
    assert!(reply.rounds >= 2);
    assert_eq!(router.map().version(), 1, "no newer map existed to learn");
    assert_eq!(router.down_nodes(), vec![dead]);
    for n in cluster.live_nodes() {
        assert_eq!(cluster.node(n).unwrap().server().metrics().demand_errors, 0);
    }
}

#[test]
fn map_skew_resolves_by_direct_read_not_a_cycle() {
    let cluster = TestCluster::new(2, ShardStrategy::Ring);
    let keys = seed(&cluster, 32);
    let remote =
        *keys.iter().find(|&&k| cluster.map().owner(k) == Some(NodeId(1))).expect("a key on n1");

    // Manufacture disagreement: node 1 now believes node 0 owns
    // everything (v2), while node 0 still believes node 1 owns `remote`
    // (v1). A naive forward chases the key in a circle forever.
    let skewed = cluster.map().without(NodeId(1));
    assert!(cluster.node(NodeId(1)).unwrap().install_map(skewed));

    let mut client = cluster.client(NodeId(0));
    client.open("viewer").unwrap();
    let out = client.fetch(vec![remote], vec![]).unwrap();
    assert!(out.blocks[0].result.is_ok(), "skew must cost locality, not availability");

    // Node 1 answered the forward with a direct local read (its
    // dispatcher refuses to re-forward keys it does not own under its
    // own map), so exactly one storage read happened, on node 1.
    assert_eq!(cluster.reads(NodeId(1)), 1);
    assert_eq!(cluster.reads(NodeId(0)), 0);
}

#[test]
fn failed_node_keys_reassign_to_ring_successors() {
    // The failover the router performs and the reassignment the map
    // performs must agree: after a crash, each orphaned key's new owner
    // is one of the fallback candidates the OLD map already listed.
    let mut cluster = TestCluster::new(4, ShardStrategy::Ring);
    let keys = seed(&cluster, 128);
    let old_map = cluster.map().clone();
    let dead = NodeId(0);
    cluster.fail_node(dead);
    for &k in &keys {
        let before = old_map.owner(k).unwrap();
        let after = cluster.map().owner(k).unwrap();
        if before == dead {
            assert!(
                old_map.owners(k, 4)[1..].contains(&after),
                "key reassigned off the successor list"
            );
        } else {
            assert_eq!(before, after, "unrelated key moved on node failure");
        }
    }
}
