//! Deterministic multi-node acceptance: a 4-node in-process cluster on
//! synchronous transports — no sockets or sleeps anywhere, and the only
//! threads are the router's per-round fan-out, joined inside each
//! `fetch` call. Replies merge in sorted node order over disjoint
//! per-node state, so every asserted outcome replays exactly.

use viz_cluster::{NodeId, RouterConfig, ShardMap, ShardStrategy, TestCluster};
use viz_volume::{BlockId, BlockKey};

fn key(i: u32) -> BlockKey {
    BlockKey::scalar(BlockId(i))
}

/// Insert blocks `0..n` with recognizable payloads.
fn seed(cluster: &TestCluster, n: u32) -> Vec<BlockKey> {
    (0..n)
        .map(|i| {
            let k = key(i);
            cluster.insert(k, vec![i as f32; 16]);
            k
        })
        .collect()
}

#[test]
fn router_resolves_cross_node_demand_through_owners() {
    let cluster = TestCluster::new(4, ShardStrategy::Ring);
    let keys = seed(&cluster, 64);
    let mut router = cluster.router("viewer");

    let reply = router.fetch(keys.clone(), vec![]);
    assert_eq!(reply.rounds, 1, "healthy cluster resolves in one round");
    assert_eq!(reply.blocks.len(), 64);
    for (i, b) in reply.blocks.iter().enumerate() {
        assert_eq!(b.key, keys[i], "replies keep request order");
        let data = b.result.as_ref().expect("healthy cluster serves every key");
        assert_eq!(data[0], i as f32);
    }

    // Each key was read exactly once, by its owner — the router sent it
    // to the right node, and that node read local storage.
    let mut by_owner = [0u64; 4];
    for &k in &keys {
        by_owner[cluster.map().owner(k).unwrap().0 as usize] += 1;
    }
    for n in 0..4 {
        assert_eq!(
            cluster.reads(NodeId(n)),
            by_owner[n as usize],
            "node {n} read a different set than it owns"
        );
        assert!(by_owner[n as usize] > 0, "64 ring-hashed keys should touch all 4 nodes");
    }
}

#[test]
fn reads_spread_roughly_uniformly_across_nodes() {
    let cluster = TestCluster::new(4, ShardStrategy::Ring);
    let keys = seed(&cluster, 256);
    let mut router = cluster.router("viewer");
    let reply = router.fetch(keys, vec![]);
    assert!(reply.blocks.iter().all(|b| b.result.is_ok()));

    let expect = 256 / 4;
    for n in 0..4 {
        let reads = cluster.reads(NodeId(n));
        assert!(
            reads > expect / 3 && reads < expect * 3,
            "node {n} read {reads} of 256 (expected ~{expect})"
        );
    }
}

#[test]
fn non_owner_forward_reaches_owner_and_warms_the_pool() {
    let cluster = TestCluster::new(2, ShardStrategy::Ring);
    let keys = seed(&cluster, 32);
    let remote =
        *keys.iter().find(|&&k| cluster.map().owner(k) == Some(NodeId(1))).expect("some key on n1");

    // Ask node 0 for a block node 1 owns: the forward goes through node
    // 0's engine to node 1, which reads its local storage.
    let mut client = cluster.client(NodeId(0));
    client.open("viewer").unwrap();
    let out = client.fetch(vec![remote], vec![]).unwrap();
    assert_eq!(out.blocks[0].result.as_ref().unwrap()[0], remote.block.0 as f32);
    assert_eq!(cluster.reads(NodeId(1)), 1, "the owner performed the read");
    assert_eq!(cluster.reads(NodeId(0)), 0, "the asked node read nothing locally");

    let peer_reqs = |n: u32| {
        cluster
            .node(NodeId(n))
            .unwrap()
            .server()
            .wire_counters()
            .into_iter()
            .find(|(name, _)| name == "serve_peer_requests")
            .map(|(_, v)| v)
            .unwrap()
    };
    assert_eq!(peer_reqs(1), 1, "owner served exactly one peer forward");

    // The remote block landed in node 0's pool: asking again costs no
    // read anywhere.
    let again = client.fetch(vec![remote], vec![]).unwrap();
    assert!(again.blocks[0].result.is_ok());
    assert_eq!(cluster.reads(NodeId(1)), 1, "second ask was a pool hit, not a re-read");
    assert_eq!(peer_reqs(1), 1, "no second peer round trip");
}

#[test]
fn duplicate_remote_keys_coalesce_to_one_peer_read() {
    let cluster = TestCluster::new(2, ShardStrategy::Ring);
    let keys = seed(&cluster, 32);
    let remote =
        *keys.iter().find(|&&k| cluster.map().owner(k) == Some(NodeId(1))).expect("some key on n1");

    // Two sessions on node 0 demand the same remote key with both
    // submissions queued before the engine runs: the engine coalesces
    // them onto one job, so the cluster sees ONE peer round trip and the
    // owner does ONE storage read.
    let node0 = cluster.node(NodeId(0)).unwrap();
    let server = node0.server().clone();
    let s1 = server.open_session("viewer-a").unwrap();
    let s2 = server.open_session("viewer-b").unwrap();
    let sub1 = server.submit(s1, 0, vec![remote], vec![]).unwrap();
    let sub2 = server.submit(s2, 0, vec![remote], vec![]).unwrap();
    server.pump();
    server.engine().run_until_idle();
    let r1 = sub1.collect_ready(&server);
    let r2 = sub2.collect_ready(&server);
    assert!(r1[0].result.is_ok() && r2[0].result.is_ok());

    assert!(
        server.engine().metrics().cross_tag_coalesced >= 1,
        "the second session's demand must join the first's in-flight job"
    );
    assert_eq!(cluster.reads(NodeId(1)), 1, "one storage read on the owner");
    let peer_reqs = cluster
        .node(NodeId(1))
        .unwrap()
        .server()
        .wire_counters()
        .into_iter()
        .find(|(name, _)| name == "serve_peer_requests")
        .map(|(_, v)| v)
        .unwrap();
    assert_eq!(peer_reqs, 1, "one peer round trip for two client demands");
}

#[test]
fn crash_failover_keeps_demand_flowing() {
    let mut cluster = TestCluster::new(4, ShardStrategy::Ring);
    let keys = seed(&cluster, 64);
    let mut router = cluster.router("viewer");
    assert!(router.fetch(keys.clone(), vec![]).blocks.iter().all(|b| b.result.is_ok()));

    let dead = NodeId(2);
    let owned_by_dead = keys.iter().filter(|&&k| cluster.map().owner(k) == Some(dead)).count();
    assert!(owned_by_dead > 0, "node 2 must own something for this test to bite");
    let new_version = cluster.fail_node(dead);
    assert_eq!(new_version, 2);

    // The router still holds the old map: its batch to the dead node
    // fails at the transport, it refreshes the map from a survivor, and
    // the orphaned keys resolve against their reassigned owners.
    let reply = router.fetch(keys.clone(), vec![]);
    assert!(
        reply.blocks.iter().all(|b| b.result.is_ok()),
        "failover must not surface a single demand error"
    );
    assert!(reply.rounds >= 2, "the dead node's keys needed a second round");
    assert_eq!(router.map().version(), 2, "router learned the reassigned map");
    assert_eq!(router.down_nodes(), vec![dead]);

    // Survivor serve layers saw zero demand errors throughout.
    for n in cluster.live_nodes() {
        let m = cluster.node(n).unwrap().server().metrics();
        assert_eq!(m.demand_errors, 0, "node {n} reported demand errors");
    }
}

#[test]
fn drain_failover_reports_zero_demand_errors() {
    let mut cluster = TestCluster::new(4, ShardStrategy::Ring);
    let keys = seed(&cluster, 48);
    let mut router = cluster.router("viewer");
    assert!(router.fetch(keys.clone(), vec![]).blocks.iter().all(|b| b.result.is_ok()));

    cluster.drain_node(NodeId(1));

    let reply = router.fetch(keys, vec![]);
    assert!(reply.blocks.iter().all(|b| b.result.is_ok()), "drain must be invisible to demand");
    for n in cluster.live_nodes() {
        assert_eq!(cluster.node(n).unwrap().server().metrics().demand_errors, 0);
    }
}

#[test]
fn map_get_exchanges_the_current_map() {
    let mut cluster = TestCluster::new(3, ShardStrategy::Ring);
    seed(&cluster, 16);
    let mut client = cluster.client(NodeId(0));
    let (version, bytes) = client.map_get().unwrap();
    assert_eq!(version, 1);
    let decoded = ShardMap::decode(&bytes).unwrap();
    assert_eq!(&decoded, cluster.map());

    cluster.fail_node(NodeId(2));
    let (version, bytes) = client.map_get().unwrap();
    assert_eq!(version, 2);
    let decoded = ShardMap::decode(&bytes).unwrap();
    for i in 0..16 {
        assert_eq!(decoded.owner(key(i)), cluster.map().owner(key(i)));
    }
}

#[test]
fn overloaded_owner_spills_to_fallback_replica() {
    let cluster = TestCluster::new(2, ShardStrategy::Ring);
    let keys = seed(&cluster, 8);
    let k = keys[0];
    let cands = cluster.map().owners(k, 2);
    let (owner, fallback) = (cands[0], cands[1]);

    let mut router =
        cluster.router_with("viewer", RouterConfig { spill_depth: 10, ..Default::default() });
    router.note_load(owner, 100);
    router.note_load(fallback, 0);

    let reply = router.fetch(vec![k], vec![]);
    assert!(reply.blocks[0].result.is_ok());
    // The spill batch went out hop-capped, so the fallback read its own
    // storage instead of forwarding back to the drowning owner.
    assert_eq!(cluster.reads(fallback), 1, "fallback served the spilled key locally");
    assert_eq!(cluster.reads(owner), 0, "owner was left alone — that was the point");
}

#[test]
fn subtree_strategy_serves_sibling_batches_from_one_node() {
    let grid = [8u32, 8, 8];
    let cluster = TestCluster::new(4, ShardStrategy::Subtree { bits: 1, grid });
    // One 2x2x2 sibling cell's eight blocks.
    let mut keys = Vec::new();
    for dz in 0..2u32 {
        for dy in 0..2u32 {
            for dx in 0..2u32 {
                let id = (dz * grid[1] + dy) * grid[0] + dx;
                let k = key(id);
                cluster.insert(k, vec![id as f32; 8]);
                keys.push(k);
            }
        }
    }
    let mut router = cluster.router("viewer");
    let reply = router.fetch(keys, vec![]);
    assert!(reply.blocks.iter().all(|b| b.result.is_ok()));

    let readers: Vec<u64> = (0..4).map(|n| cluster.reads(NodeId(n))).collect();
    assert_eq!(readers.iter().sum::<u64>(), 8);
    assert_eq!(
        readers.iter().filter(|&&r| r > 0).count(),
        1,
        "sibling cell split across nodes: {readers:?}"
    );
}

#[test]
fn prefetch_rides_to_owners_and_warms_their_pools() {
    let cluster = TestCluster::new(2, ShardStrategy::Ring);
    let keys = seed(&cluster, 32);
    let mut router = cluster.router("viewer");

    // Demand one key, speculate on the rest.
    let pf: Vec<(BlockKey, f64)> = keys[1..].iter().map(|&k| (k, 1.0)).collect();
    let reply = router.fetch(vec![keys[0]], pf);
    assert!(reply.blocks[0].result.is_ok());
    assert_eq!(reply.shed, 0, "a healthy cluster sheds nothing");

    // Every block was read exactly once cluster-wide (each by its
    // owner's prefetch), so a follow-up demand sweep is pure pool hits.
    let total: u64 = (0..2).map(|n| cluster.reads(NodeId(n))).sum();
    assert_eq!(total, 32);
    let again = router.fetch(keys, vec![]);
    assert!(again.blocks.iter().all(|b| b.result.is_ok()));
    let total_after: u64 = (0..2).map(|n| cluster.reads(NodeId(n))).sum();
    assert_eq!(total_after, 32, "the demand sweep re-read nothing");
}
