//! Cross-node trace propagation and the flight recorder, end to end on
//! the deterministic in-process cluster: a client's trace context rides
//! the wire through owner and peer nodes, coalesced sessions join into
//! one connected span tree, the router's scrape plane merges per-node
//! drains into one clock-aligned Perfetto document, and a chaos-injected
//! crash cuts a reconstructable flight dump with zero demand errors.

use std::sync::Mutex;
use viz_cluster::chaos::run_plan;
use viz_cluster::{
    read_flight_dump, ChaosAction, ChaosEvent, ChaosOptions, ChaosPlan, NodeId, ShardStrategy,
    TestCluster,
};
use viz_serve::TraceCtx;
use viz_telemetry::{collect, json, EventKind};
use viz_volume::{BlockId, BlockKey};

/// Serializes the tests that enable + drain the global telemetry trace.
static TRACE: Mutex<()> = Mutex::new(());

fn key(i: u32) -> BlockKey {
    BlockKey::scalar(BlockId(i))
}

fn seed(cluster: &TestCluster, n: u32) -> Vec<BlockKey> {
    (0..n)
        .map(|i| {
            let k = key(i);
            cluster.insert(k, vec![i as f32; 16]);
            k
        })
        .collect()
}

/// A key owned by `node` under the cluster's current map.
fn owned_key(cluster: &TestCluster, keys: &[BlockKey], node: NodeId) -> BlockKey {
    *keys
        .iter()
        .find(|&&k| cluster.map().owner(k) == Some(node))
        .expect("some key lands on the node")
}

/// A wire client's trace context survives the forward chain: asked node
/// → engine job → peer fetch → owner node, so every event on both nodes
/// carries the originating request's trace id.
#[test]
fn wire_trace_ctx_attributes_events_on_both_nodes() {
    let _guard = TRACE.lock().unwrap_or_else(|p| p.into_inner());
    viz_telemetry::set_enabled(true);
    let _ = viz_telemetry::drain();

    let cluster = TestCluster::new(2, ShardStrategy::Ring);
    let keys = seed(&cluster, 32);
    let remote = owned_key(&cluster, &keys, NodeId(1));

    const T: u64 = 0xC11E27;
    let mut client = cluster.client(NodeId(0));
    client.open("viewer").unwrap();
    client.set_trace_ctx(TraceCtx { trace: T, span: 1 });
    let out = client.fetch(vec![remote], vec![]).unwrap();
    assert!(out.blocks[0].result.is_ok());
    assert_eq!(cluster.reads(NodeId(1)), 1, "the owner performed the read");

    let trace = viz_telemetry::drain();
    let on_node = |n: u16| trace.events.iter().filter(move |e| e.trace == T && e.node == n);
    assert!(on_node(1).count() > 0, "traced events on the asked node (node 0)");
    assert!(on_node(2).count() > 0, "traced events on the peer owner (node 1)");
    assert!(
        trace.events.iter().any(|e| e.kind == EventKind::RpcServe && e.trace == T && e.node == 2),
        "the owner's serve span is attributed to the client's trace"
    );
    assert!(
        trace.events.iter().any(|e| e.kind == EventKind::SourceRead && e.trace == T && e.node == 2),
        "the storage read on the owner is attributed to the client's trace"
    );
    viz_telemetry::set_enabled(false);
}

/// The propagation acceptance test: one demand key, two sessions with
/// distinct trace ids, coalesced in the engine and forwarded to the
/// peer owner — the drained events hold both ids, a `TraceJoin` edge
/// links them, and together they form ONE connected span tree whose
/// primary trace spans both nodes.
#[test]
fn coalesced_sessions_and_peer_forward_yield_one_connected_span_tree() {
    let _guard = TRACE.lock().unwrap_or_else(|p| p.into_inner());
    viz_telemetry::set_enabled(true);
    let _ = viz_telemetry::drain();

    let cluster = TestCluster::new(2, ShardStrategy::Ring);
    let keys = seed(&cluster, 32);
    let remote = owned_key(&cluster, &keys, NodeId(1));

    const T1: u64 = 0xA11CE;
    const T2: u64 = 0xB0B;
    let node0 = cluster.node(NodeId(0)).unwrap();
    let server = node0.server().clone();
    let s1 = server.open_session("viewer-a").unwrap();
    let s2 = server.open_session("viewer-b").unwrap();
    // Both submissions queue before the engine runs (exactly the wire
    // dispatch order under node 0's attribution scope), so the second
    // session's demand joins the first's queued job.
    let (sub1, sub2) = viz_telemetry::with_node(1, || {
        let sub1 =
            viz_telemetry::with_trace(T1, || server.submit(s1, 0, vec![remote], vec![])).unwrap();
        let sub2 =
            viz_telemetry::with_trace(T2, || server.submit(s2, 0, vec![remote], vec![])).unwrap();
        server.pump();
        server.engine().run_until_idle();
        (sub1, sub2)
    });
    let r1 = sub1.collect_ready(&server);
    let r2 = sub2.collect_ready(&server);
    assert!(r1[0].result.is_ok() && r2[0].result.is_ok());
    assert!(server.engine().metrics().cross_tag_coalesced >= 1, "the sessions coalesced");
    assert_eq!(cluster.reads(NodeId(1)), 1, "one storage read on the owner");

    let trace = viz_telemetry::drain();
    let ids = collect::trace_ids(&trace.events);
    assert_eq!(ids, vec![T2, T1], "both trace ids recorded (sorted)");
    assert!(
        trace.events.iter().any(|e| e.kind == EventKind::TraceJoin && e.trace == T2 && e.arg == T1),
        "the coalesce recorded the joining trace against the primary"
    );
    assert!(
        collect::traces_connected(&trace.events, &ids),
        "the two traces form one connected span tree, not islands"
    );
    // The primary trace's tree spans both nodes: admission + forward on
    // node 0, serve + read on node 1.
    assert!(trace.events.iter().any(|e| e.trace == T1 && e.node == 1));
    assert!(trace.events.iter().any(|e| e.trace == T1 && e.node == 2));
    // The joining trace is recorded on the coalescing node.
    assert!(trace.events.iter().any(|e| e.trace == T2 && e.node == 1));
    viz_telemetry::set_enabled(false);
}

/// The scrape plane: heartbeat-RTT clock sync, per-node `TelemetryGet`
/// drains, and one merged Perfetto document that passes the structural
/// validator, plus the cluster Prometheus rollup.
#[test]
fn router_scrape_merges_clock_aligned_perfetto_trace() {
    let _guard = TRACE.lock().unwrap_or_else(|p| p.into_inner());
    viz_telemetry::set_enabled(true);
    let _ = viz_telemetry::drain();

    let cluster = TestCluster::new(2, ShardStrategy::Ring);
    let keys = seed(&cluster, 16);
    let mut router = cluster.router("viewer");
    assert_eq!(router.sync_clocks(), 2, "both nodes answered the clock probe");

    let reply = router.fetch(keys, vec![]);
    assert!(reply.blocks.iter().all(|b| b.result.is_ok()));

    let drains = router.scrape();
    assert_eq!(drains.len(), 2, "one drain per live node");
    let all: Vec<_> = drains.iter().flat_map(|d| d.events.iter().cloned()).collect();
    let ids = collect::trace_ids(&all);
    assert_eq!(ids.len(), 1, "one frame mints one trace id");
    assert!(
        all.iter().any(|e| e.kind == EventKind::RouterFetch && e.node == 0 && e.trace == ids[0]),
        "the router's frame span is present and attributed"
    );
    assert!(
        all.iter().any(|e| e.kind == EventKind::RpcServe && e.node != 0 && e.trace == ids[0]),
        "a node-side serve span carries the same trace"
    );

    let doc = collect::cluster_chrome_trace(&drains);
    json::validate(&doc).expect("merged cluster trace is valid JSON");
    assert!(doc.contains("\"name\":\"router\""), "router process named");
    assert!(doc.contains("\"name\":\"node-0\"") && doc.contains("\"name\":\"node-1\""));

    let prom = collect::cluster_prometheus(&drains);
    assert!(prom.contains("viz_node_counter_total{node=\"0\""), "per-node series present");
    assert!(prom.contains("viz_counter_total{"), "summed series present");
    assert!(prom.contains("viz_telemetry_ring_dropped_total"), "drop diagnostics present");
    viz_telemetry::set_enabled(false);
}

/// A chaos window fires a flight-recorder trigger and the dump cut at
/// that moment replays the fault timeline — injection events first,
/// symptoms after — while the demand invariant holds. Crashes alone
/// never produce failure events (the membership layer routes around
/// them before demand pays), so the trigger here is the SLO burn
/// tracker catching a slow node the failure detector cannot see, with a
/// crash window overlapping it on the same timeline.
#[test]
fn chaos_faults_trigger_flight_dump_with_zero_demand_errors() {
    let _guard = TRACE.lock().unwrap_or_else(|p| p.into_inner());
    viz_telemetry::set_enabled(true);
    viz_telemetry::reset();
    // Interactive-frame SLO scaled to the test workload: a read through
    // the slowed node (~1.5 ms) blows a 100 µs service SLO; 2 of any 16
    // services over is a burn.
    viz_telemetry::flight::configure(viz_telemetry::flight::FlightConfig {
        slo_ns: 100_000,
        slo_burn: 0.1,
        slo_min_count: 16,
        ..viz_telemetry::flight::FlightConfig::default()
    });

    let mut cluster = TestCluster::new(3, ShardStrategy::Ring);
    let mut router = cluster.router("chaos");
    let slow = NodeId(1);
    let crashed = NodeId(2);
    let plan = ChaosPlan {
        events: vec![
            ChaosEvent { step: 2, action: ChaosAction::Slow(slow, 1_500) },
            ChaosEvent { step: 3, action: ChaosAction::Crash(crashed) },
            ChaosEvent { step: 6, action: ChaosAction::Restart(crashed) },
            ChaosEvent { step: 8, action: ChaosAction::Unslow(slow) },
        ],
    };
    let path = std::env::temp_dir().join("viz_trace_test_flight.vfdr");
    let _ = std::fs::remove_file(&path);
    let opts = ChaosOptions { flight_dump: Some(path.clone()), ..ChaosOptions::default() };

    let report = run_plan(&mut cluster, &mut router, &plan, &opts);
    assert_eq!(report.demand_errors, 0, "no fault cost a demand block");
    assert!(report.demand_blocks > 0, "the workload ran");
    assert!(report.triggers >= 1, "the slow window burned the SLO and fired a trigger");
    assert!(report.dump_events > 0, "the trigger cut a dump");

    let sections = read_flight_dump(&path).expect("dump reads back");
    assert!(!sections.is_empty());
    let total: usize = sections.iter().map(|s| s.events.len()).sum();
    assert_eq!(total as u64, report.dump_events, "dump holds what the report counted");
    assert!(
        sections.iter().any(|s| !s.triggers.is_empty()),
        "the firing trigger rides in the dump"
    );
    let injected: Vec<_> = sections
        .iter()
        .flat_map(|s| s.events.iter())
        .filter(|e| e.kind == EventKind::FaultInjected)
        .collect();
    assert!(injected.len() >= 2, "the injections are on the reconstructed timeline");
    assert!(
        injected.iter().any(|e| e.key == u64::from(slow.0) && e.arg == 2 << 1),
        "the slow fault (family 2) names its victim"
    );
    assert!(
        injected.iter().any(|e| e.key == u64::from(crashed.0) && e.arg == 0),
        "the crash (family 0, not a repair) names its victim"
    );
    let _ = std::fs::remove_file(&path);
    viz_telemetry::flight::configure(viz_telemetry::flight::FlightConfig::default());
    viz_telemetry::reset();
    viz_telemetry::set_enabled(false);
}
