//! The resilience layer under deterministic chaos: seeded fault
//! schedules (crash, restart, partition, slow storage, corrupted
//! frames), membership suspicion and probe re-admission, heartbeat
//! anti-entropy, hedged reads, and join rebalancing — all on the
//! in-process cluster with the virtual clock, so every run replays.
//!
//! The invariant every test enforces: demand never errors because of
//! cluster topology. Faults cost locality or latency, never
//! availability.

use std::sync::Mutex;
use std::time::Duration;
use viz_cluster::chaos::run_plan;
use viz_cluster::{
    ChaosAction, ChaosOptions, ChaosPlan, ClusterConfig, NodeId, RouterConfig, ShardStrategy,
    TestCluster,
};
use viz_telemetry::EventKind;
use viz_volume::{BlockId, BlockKey};

/// Serializes the tests that enable + drain the global telemetry trace.
static TRACE: Mutex<()> = Mutex::new(());

fn key(i: u32) -> BlockKey {
    BlockKey::scalar(BlockId(i))
}

fn seed(cluster: &TestCluster, n: u32) -> Vec<BlockKey> {
    (0..n)
        .map(|i| {
            let k = key(i);
            cluster.insert(k, vec![i as f32; 16]);
            k
        })
        .collect()
}

fn owned_by(cluster: &TestCluster, keys: &[BlockKey], node: NodeId) -> Vec<BlockKey> {
    keys.iter().copied().filter(|&k| cluster.map().owner(k) == Some(node)).collect()
}

#[test]
fn seeded_plans_zero_demand_errors_across_seeds() {
    for seed in [11u64, 17, 23] {
        let mut cluster = TestCluster::new(4, ShardStrategy::Ring);
        let mut router = cluster.router("chaos");
        let plan = ChaosPlan::seeded(seed, 4, 40);
        assert!(!plan.events.is_empty(), "seed {seed}: plan scheduled nothing");
        let faults = plan
            .events
            .iter()
            .filter(|e| {
                matches!(
                    e.action,
                    ChaosAction::Crash(_) | ChaosAction::Isolate(_) | ChaosAction::Corrupt(_)
                )
            })
            .count();
        let repairs = plan
            .events
            .iter()
            .filter(|e| {
                matches!(
                    e.action,
                    ChaosAction::Restart(_) | ChaosAction::Heal(_) | ChaosAction::Uncorrupt(_)
                )
            })
            .count();

        let report = run_plan(&mut cluster, &mut router, &plan, &ChaosOptions::default());

        assert_eq!(report.demand_errors, 0, "seed {seed}: demand must never error");
        assert!(report.demand_blocks > 0, "seed {seed}: the workload ran");
        assert_eq!(
            report.detections.len(),
            faults,
            "seed {seed}: every unreachability fault was detected"
        );
        assert_eq!(
            report.recoveries.len(),
            repairs,
            "seed {seed}: every repaired node was re-admitted"
        );
        assert!(
            report.detections.iter().all(|&d| d <= 2),
            "seed {seed}: detection within 2 steps, got {:?}",
            report.detections
        );
        assert!(
            report.recoveries.iter().all(|&r| r <= 3),
            "seed {seed}: re-admission within 3 steps, got {:?}",
            report.recoveries
        );
        assert!(router.down_nodes().is_empty(), "seed {seed}: nothing down once healed");
        assert_eq!(cluster.live_nodes().len(), 4, "seed {seed}: every crashed node restarted");
        for id in cluster.live_nodes() {
            assert!(
                cluster.node(id).unwrap().suspects().is_empty(),
                "seed {seed}: {id} still suspects someone after the quiet tail"
            );
        }
    }
}

#[test]
fn seeded_plan_replays_identically() {
    let mut c1 = TestCluster::new(4, ShardStrategy::Ring);
    let mut r1 = c1.router("a");
    let mut c2 = TestCluster::new(4, ShardStrategy::Ring);
    let mut r2 = c2.router("a");
    let plan = ChaosPlan::seeded(17, 4, 40);
    let opts = ChaosOptions::default();
    let a = run_plan(&mut c1, &mut r1, &plan, &opts);
    let b = run_plan(&mut c2, &mut r2, &plan, &opts);
    assert_eq!(a.demand_blocks, b.demand_blocks);
    assert_eq!(a.demand_errors, b.demand_errors);
    assert_eq!(a.detections, b.detections);
    assert_eq!(a.recoveries, b.recoveries);
    assert_eq!(a.frame_ticks, b.frame_ticks);
}

/// The router-revival regression: a node that crashed (marked down) and
/// restarted under the *same* map version can only re-admit through the
/// periodic probe — no map change will ever clear the flag for it.
#[test]
fn crashed_then_restarted_node_resumes_traffic_via_probe() {
    let mut cluster = TestCluster::new(3, ShardStrategy::Ring);
    let keys = seed(&cluster, 96);
    let mut router =
        cluster.router_with("viewer", RouterConfig { probe_every: 4, ..RouterConfig::default() });
    let victim = NodeId(1);
    let owned = owned_by(&cluster, &keys, victim);
    assert!(!owned.is_empty());

    let r = router.fetch(owned.clone(), vec![]);
    assert!(r.blocks.iter().all(|b| b.result.is_ok()));
    assert!(cluster.reads(victim) > 0, "the victim served its keys before the crash");

    // Crash without reassignment: the next frame fails over whole and
    // marks the node down.
    cluster.partition_node(victim);
    let r = router.fetch(owned.clone(), vec![]);
    assert!(r.blocks.iter().all(|b| b.result.is_ok()), "failover keeps demand whole");
    assert_eq!(router.down_nodes(), vec![victim]);

    // Restart under the unchanged map: only the probe can re-admit.
    cluster.restart_node(victim);
    let before = cluster.reads(victim);
    let mut readmitted = false;
    for _ in 0..8 {
        let r = router.fetch(owned.clone(), vec![]);
        assert!(r.blocks.iter().all(|b| b.result.is_ok()));
        if router.down_nodes().is_empty() {
            readmitted = true;
            break;
        }
    }
    assert!(readmitted, "the periodic probe re-admitted the restarted node");
    // The re-admitting frame itself routed to the victim (cold pool →
    // storage reads through its tap).
    assert!(cluster.reads(victim) > before, "the restarted node serves its keys again");
}

/// Membership suspicion routes demand around an unreachable peer
/// *before* any read pays for the discovery, and a successful heartbeat
/// re-admits it.
#[test]
fn isolation_suspects_and_heal_readmits_with_zero_errors() {
    let _guard = TRACE.lock().unwrap_or_else(|p| p.into_inner());
    viz_telemetry::set_enabled(true);
    let _ = viz_telemetry::drain();

    let cluster = TestCluster::new(3, ShardStrategy::Ring);
    let keys = seed(&cluster, 96);
    let victim = NodeId(2);
    let owned = owned_by(&cluster, &keys, victim);
    assert!(!owned.is_empty());

    cluster.isolate(victim);
    cluster.clock().advance(10);
    cluster.heartbeat_all();
    for id in [NodeId(0), NodeId(1)] {
        assert!(cluster.node(id).unwrap().is_suspect(victim), "{id} suspects the isolated node");
    }

    // Demand lands on a healthy replica up front: zero errors, zero
    // failure-driven fallbacks, and nothing reaches the victim.
    let victim_reads = cluster.reads(victim);
    let mut client = cluster.client(NodeId(0));
    client.open("viewer").unwrap();
    let out = client.fetch(owned.clone(), vec![]).unwrap();
    assert!(out.blocks.iter().all(|b| b.result.is_ok()));
    assert_eq!(cluster.reads(victim), victim_reads, "the suspect node saw no demand");

    cluster.heal(victim);
    cluster.clock().advance(10);
    cluster.heartbeat_all();
    for id in [NodeId(0), NodeId(1)] {
        assert!(!cluster.node(id).unwrap().is_suspect(victim), "{id} re-admitted after heal");
    }

    let trace = viz_telemetry::drain();
    assert!(trace.count(EventKind::HeartbeatSent) >= 4, "heartbeats recorded");
    assert!(trace.count(EventKind::SuspectNode) >= 2, "suspicion recorded");
    assert!(trace.count(EventKind::NodeRecovered) >= 2, "re-admission recorded");
    assert_eq!(
        trace.count(EventKind::PeerFallback),
        0,
        "reads routed around the suspect proactively, not through failure fallback"
    );
    viz_telemetry::set_enabled(false);
}

/// With hedging on, a slow owner does not stall demand: past the
/// threshold the node reads its local replica and answers from
/// whichever source lands first.
#[test]
fn slow_owner_hedged_read_serves_from_local_replica() {
    let _guard = TRACE.lock().unwrap_or_else(|p| p.into_inner());
    viz_telemetry::set_enabled(true);
    let _ = viz_telemetry::drain();

    let mut cfg = ClusterConfig::deterministic();
    cfg.hedge_after = Some(Duration::from_millis(2));
    let cluster =
        TestCluster::with_configs(2, ShardStrategy::Ring, viz_serve::ServeConfig::default(), cfg);
    let keys = seed(&cluster, 64);
    let slow = NodeId(1);
    let owned: Vec<BlockKey> = owned_by(&cluster, &keys, slow).into_iter().take(4).collect();
    assert!(!owned.is_empty());
    cluster.set_read_delay(slow, Duration::from_millis(50));

    let mut client = cluster.client(NodeId(0));
    client.open("viewer").unwrap();
    let t0 = std::time::Instant::now();
    let out = client.fetch(owned.clone(), vec![]).unwrap();
    let elapsed = t0.elapsed();
    assert!(out.blocks.iter().all(|b| b.result.is_ok()));

    let trace = viz_telemetry::drain();
    assert!(trace.count(EventKind::HedgedRead) >= 1, "the hedge fired");
    // Each primary read sleeps 50ms; the hedged local path answers in
    // ~the 2ms threshold. Generous bound: anything under one primary
    // read proves demand did not wait out the slow chain.
    assert!(
        elapsed < Duration::from_millis(50 * owned.len() as u64),
        "demand stalled: {elapsed:?}"
    );
    viz_telemetry::set_enabled(false);
}

/// A router left behind by a reassignment learns the newer map from its
/// first heartbeat — before any demand fetch pays for the skew.
#[test]
fn stale_router_learns_newer_map_from_heartbeat() {
    let mut cluster = TestCluster::new(3, ShardStrategy::Ring);
    let keys = seed(&cluster, 48);
    let mut router = cluster.router("viewer");
    assert_eq!(router.map().version(), 1);

    cluster.fail_node(NodeId(2)); // survivors install v2; the router still holds v1

    let answered = router.heartbeat();
    assert_eq!(answered, 2, "both survivors answered the heartbeat");
    assert_eq!(router.map().version(), 2, "the heartbeat pulled the newer map");

    let r = router.fetch(keys.clone(), vec![]);
    assert!(r.blocks.iter().all(|b| b.result.is_ok()));
    assert_eq!(r.rounds, 1, "no failed round needed to discover the reassignment");
}

/// Nodes converge divergent map versions through heartbeat
/// anti-entropy, in both directions: a behind *receiver* pulls off the
/// Ping's advertised version, a behind *sender* pulls off the Pong's.
#[test]
fn nodes_converge_map_versions_through_heartbeats() {
    let cluster = TestCluster::new(3, ShardStrategy::Ring);
    seed(&cluster, 16);
    let newer = cluster.map().without(NodeId(2));
    assert_eq!(newer.version(), 2);
    assert!(cluster.node(NodeId(0)).unwrap().install_map(newer));
    assert_eq!(cluster.node(NodeId(1)).unwrap().map().version(), 1);
    assert_eq!(cluster.node(NodeId(2)).unwrap().map().version(), 1);

    cluster.heartbeat_all();

    for id in [0u32, 1, 2] {
        assert_eq!(
            cluster.node(NodeId(id)).unwrap().map().version(),
            2,
            "node {id} converged after one heartbeat round"
        );
    }
}

/// Join choreography over [`viz_cluster::ShardMap::with`]: bounded key
/// movement (only keys the newcomer gains move), zero demand errors for
/// a router still holding the pre-join map, and the newcomer actually
/// serving once the router catches up.
#[test]
fn join_moves_only_gained_keys_and_serves_during_rebalance() {
    let mut cluster = TestCluster::new(3, ShardStrategy::Ring);
    let keys = seed(&cluster, 128);
    let mut router = cluster.router("viewer");
    let before: Vec<Option<NodeId>> = keys.iter().map(|&k| cluster.map().owner(k)).collect();

    let r = router.fetch(keys.clone(), vec![]);
    assert!(r.blocks.iter().all(|b| b.result.is_ok()));

    let v = cluster.join_node(NodeId(3));
    assert_eq!(v, 2);

    let mut gained = 0;
    for (i, &k) in keys.iter().enumerate() {
        let now = cluster.map().owner(k);
        if now != before[i] {
            assert_eq!(now, Some(NodeId(3)), "key {i} moved to a node other than the joiner");
            gained += 1;
        }
    }
    assert!(gained > 0, "the joiner took over some keys");
    assert!(gained < keys.len(), "the joiner did not take everything");

    // Stale-router frame mid-rebalance: nodes forward under the new map,
    // demand stays whole.
    let r = router.fetch(keys.clone(), vec![]);
    assert!(r.blocks.iter().all(|b| b.result.is_ok()), "zero errors mid-rebalance");

    router.heartbeat();
    assert_eq!(router.map().version(), 2, "heartbeat anti-entropy reached the router");
    let joiner_reads = cluster.reads(NodeId(3));
    let r = router.fetch(keys.clone(), vec![]);
    assert!(r.blocks.iter().all(|b| b.result.is_ok()));
    assert_eq!(r.rounds, 1);
    assert!(cluster.reads(NodeId(3)) > joiner_reads, "the joiner serves its gained keys");
}
