//! Fault-path integration tests: seeded fault injection driving retry,
//! fail-fast classification, circuit-breaker transitions, deadlines,
//! source timeouts, worker supervision, and shutdown under load.
//!
//! Most tests use the deterministic engine (`workers = 0`) so every
//! scheduling decision and breaker transition is exact; the threaded
//! tests cover the supervision/timeout machinery that only exists with
//! real workers.

use std::io;
use std::sync::Arc;
use std::time::{Duration, Instant};
use viz_fetch::{
    BlockPool, BreakerConfig, BreakerState, FaultConfig, FaultInjectingSource, FetchConfig,
    FetchEngine, RetryPolicy, Ticket,
};
use viz_volume::{BlockId, BlockKey, BlockSource, MemBlockStore};

fn key(i: u32) -> BlockKey {
    BlockKey::scalar(BlockId(i))
}

fn store_with(n: u32) -> Arc<MemBlockStore> {
    let s = MemBlockStore::new();
    for i in 0..n {
        s.insert(key(i), vec![i as f32; 64]);
    }
    Arc::new(s)
}

fn det_engine(source: Arc<FaultInjectingSource>, cfg: FetchConfig) -> (FetchEngine, Arc<BlockPool>) {
    let pool = Arc::new(BlockPool::new());
    let engine = FetchEngine::spawn(source as Arc<dyn BlockSource>, pool.clone(), cfg);
    (engine, pool)
}

#[test]
fn transient_error_is_retried_to_success() {
    let source = Arc::new(FaultInjectingSource::healthy(store_with(1)));
    source.script_fail(key(0), 2, io::ErrorKind::Interrupted);
    let (eng, pool) = det_engine(source.clone(), FetchConfig::deterministic());

    let ticket = eng.request(key(0));
    eng.run_until_idle();
    let payload = ticket.try_wait().expect("resolved").expect("retried to success");
    assert_eq!(payload.as_slice(), &[0.0f32; 64]);
    assert!(pool.contains(key(0)));

    // Two injected failures, two retries, one eventual success, no error.
    assert_eq!(source.reads(), 3);
    let m = eng.shutdown();
    assert_eq!(m.retries, 2);
    assert_eq!(m.errors, 0);
    assert_eq!(m.completed, 1);
}

#[test]
fn permanent_errors_fail_fast_without_retry() {
    for kind in [io::ErrorKind::NotFound, io::ErrorKind::InvalidData] {
        let source = Arc::new(FaultInjectingSource::healthy(store_with(1)));
        source.script_fail(key(0), 1, kind);
        let (eng, _pool) = det_engine(source.clone(), FetchConfig::deterministic());

        let ticket = eng.request(key(0));
        eng.run_until_idle();
        let err = ticket.try_wait().expect("resolved").expect_err("must fail");
        assert_eq!(err.kind, kind);
        assert!(!err.is_transient());

        // Exactly one source read: no retry budget spent on permanent kinds.
        assert_eq!(source.reads(), 1);
        let m = eng.shutdown();
        assert_eq!(m.retries, 0);
        assert_eq!(m.errors, 1);
    }
}

#[test]
fn exhausted_retries_surface_the_transient_error() {
    let source = Arc::new(FaultInjectingSource::healthy(store_with(1)));
    source.script_fail(key(0), 10, io::ErrorKind::TimedOut);
    let cfg = FetchConfig { retry: RetryPolicy::immediate(3), ..FetchConfig::deterministic() };
    let (eng, _pool) = det_engine(source.clone(), cfg);

    let ticket = eng.request(key(0));
    eng.run_until_idle();
    let err = ticket.try_wait().expect("resolved").expect_err("budget exhausted");
    assert_eq!(err.kind, io::ErrorKind::TimedOut);
    assert!(err.is_transient());

    // 1 initial attempt + 3 retries.
    assert_eq!(source.reads(), 4);
    let m = eng.shutdown();
    assert_eq!(m.retries, 3);
    assert_eq!(m.errors, 1);
}

/// Satellite regression: a failed fetch must clear its pending/inflight
/// entry, so the *next* `get`/`prefetch` for that key re-reads the source
/// instead of replaying a cached error (or hanging on a dead entry).
#[test]
fn failed_fetch_is_not_cached_and_next_request_rereads() {
    let source = Arc::new(FaultInjectingSource::healthy(store_with(2)));
    source.script_fail(key(0), 1, io::ErrorKind::NotFound);
    let (eng, pool) = det_engine(source.clone(), FetchConfig::deterministic());

    let t1 = eng.request(key(0));
    eng.run_until_idle();
    assert!(t1.try_wait().expect("resolved").is_err());
    assert!(!pool.contains(key(0)));
    assert_eq!(source.reads(), 1);

    // The retry path of the *caller*: a fresh request goes back to the
    // source (script consumed, so it succeeds).
    let t2 = eng.request(key(0));
    eng.run_until_idle();
    assert!(t2.try_wait().expect("resolved").is_ok());
    assert_eq!(source.reads(), 2, "second request must re-read the source");
    assert!(pool.contains(key(0)));

    // Same property through the prefetch path.
    source.script_fail(key(1), 1, io::ErrorKind::InvalidData);
    assert!(eng.prefetch(key(1), 1.0));
    eng.run_until_idle();
    assert!(!pool.contains(key(1)));
    assert!(eng.prefetch(key(1), 1.0), "prefetch after failure must re-enqueue");
    eng.run_until_idle();
    assert!(pool.contains(key(1)));
    eng.shutdown();
}

#[test]
fn breaker_opens_half_opens_and_closes() {
    let source = Arc::new(FaultInjectingSource::healthy(store_with(16)));
    let cfg = FetchConfig {
        retry: RetryPolicy::none(),
        breaker: BreakerConfig { failure_threshold: 3 },
        ..FetchConfig::deterministic()
    };
    let (eng, pool) = det_engine(source.clone(), cfg);
    assert_eq!(eng.breaker_state(), BreakerState::Closed);

    // Outage: three consecutive demand failures trip the breaker.
    source.set_outage(Some(io::ErrorKind::TimedOut));
    let tickets: Vec<Ticket> = (0..3).map(|i| eng.request(key(i))).collect();
    eng.run_until_idle();
    for t in tickets {
        assert!(t.try_wait().expect("resolved").is_err());
    }
    assert_eq!(eng.breaker_state(), BreakerState::Open);
    assert_eq!(eng.metrics().breaker_opens, 1);

    // While open, prefetches fail fast at admission: no source read.
    let reads_before = source.reads();
    assert!(!eng.prefetch(key(8), 1.0), "prefetch must be rejected while open");
    assert_eq!(source.reads(), reads_before, "rejected prefetch must not touch the source");
    assert!(eng.metrics().breaker_rejected >= 1);

    // A demand read is the half-open probe; the outage persists, so the
    // probe fails and the breaker re-opens.
    let t = eng.request(key(3));
    eng.run_until_idle();
    assert!(t.try_wait().expect("resolved").is_err());
    assert_eq!(eng.breaker_state(), BreakerState::Open);
    let m = eng.metrics();
    assert_eq!(m.breaker_half_opens, 1);
    assert_eq!(m.breaker_opens, 2, "failed probe re-opens");

    // Source recovers: the next demand probe succeeds and closes the
    // breaker — demand reads recover automatically, no timers involved.
    source.set_outage(None);
    let t = eng.request(key(4));
    eng.run_until_idle();
    assert!(t.try_wait().expect("resolved").is_ok());
    assert_eq!(eng.breaker_state(), BreakerState::Closed);
    let m = eng.metrics();
    assert_eq!(m.breaker_half_opens, 2);
    assert_eq!(m.breaker_closes, 1);

    // Closed again: prefetches flow.
    assert!(eng.prefetch(key(9), 1.0));
    eng.run_until_idle();
    assert!(pool.contains(key(9)));
    eng.shutdown();
}

#[test]
fn queued_prefetches_fail_fast_when_breaker_opens_behind_them() {
    let source = Arc::new(FaultInjectingSource::healthy(store_with(16)));
    let cfg = FetchConfig {
        retry: RetryPolicy::none(),
        breaker: BreakerConfig { failure_threshold: 2 },
        ..FetchConfig::deterministic()
    };
    let (eng, pool) = det_engine(source.clone(), cfg);

    // Queue prefetches while healthy, then trip the breaker with demand
    // failures before the queue drains. Demand outranks prefetch, so the
    // failures run first and the queued prefetches must be failed fast.
    for i in 8..12 {
        assert!(eng.prefetch(key(i), 1.0));
    }
    source.set_outage(Some(io::ErrorKind::Interrupted));
    let t0 = eng.request(key(0));
    let t1 = eng.request(key(1));
    eng.run_until_idle();
    assert!(t0.try_wait().expect("resolved").is_err());
    assert!(t1.try_wait().expect("resolved").is_err());
    assert_eq!(eng.breaker_state(), BreakerState::Open);
    // Only the two demand reads touched the source.
    assert_eq!(source.reads(), 2);
    for i in 8..12 {
        assert!(!pool.contains(key(i)));
    }
    eng.shutdown();
}

#[test]
fn deadline_miss_degrades_now_and_recovers_later() {
    let source = Arc::new(FaultInjectingSource::healthy(store_with(2)));
    source.script_delay(key(0), Duration::from_millis(60));
    let pool = Arc::new(BlockPool::new());
    let eng = FetchEngine::spawn(
        source.clone() as Arc<dyn BlockSource>,
        pool.clone(),
        FetchConfig { workers: 1, ..FetchConfig::default() },
    );

    // The frame gives the read 5 ms; the read takes 60 ms.
    let err = eng.get_deadline(key(0), Duration::from_millis(5)).expect_err("must miss");
    assert_eq!(err.kind, io::ErrorKind::TimedOut);
    assert_eq!(eng.metrics().deadline_misses, 1);

    // The abandoned wait did not abandon the read: it lands, and the next
    // frame gets the block instantly without a second source read.
    eng.sync();
    assert!(pool.contains(key(0)));
    assert_eq!(source.reads(), 1);
    assert!(eng.get_deadline(key(0), Duration::from_millis(5)).is_ok());
    let m = eng.shutdown();
    assert_eq!(m.deadline_misses, 1);
}

#[test]
fn hung_read_is_abandoned_and_lands_late_without_losing_the_worker() {
    let source = Arc::new(FaultInjectingSource::healthy(store_with(4)));
    source.script_delay(key(0), Duration::from_millis(120));
    let pool = Arc::new(BlockPool::new());
    let eng = FetchEngine::spawn(
        source.clone() as Arc<dyn BlockSource>,
        pool.clone(),
        FetchConfig {
            workers: 1,
            retry: RetryPolicy::none(),
            source_timeout: Some(Duration::from_millis(10)),
            ..FetchConfig::default()
        },
    );

    // The worker abandons the hung read at the source timeout.
    let err = eng.get(key(0)).expect_err("abandoned");
    assert_eq!(err.kind, io::ErrorKind::TimedOut);
    assert_eq!(eng.metrics().timeouts, 1);

    // The worker survived: it can service other keys immediately, while
    // the orphaned read is still sleeping.
    assert!(eng.get(key(1)).is_ok());

    // The orphaned read eventually parks its payload in the pool as a
    // late arrival — paid-for data is never thrown away.
    let t0 = Instant::now();
    while !pool.contains(key(0)) {
        assert!(t0.elapsed() < Duration::from_secs(5), "late arrival never landed");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(source.reads(), 2, "no extra source read for the late block");
    let m = eng.shutdown();
    assert_eq!(m.late_arrivals, 1);
}

/// A source that panics on one key — the supervision test needs a panic
/// the fault injector cannot produce.
struct PanickingSource {
    inner: Arc<MemBlockStore>,
    poison: BlockKey,
}

impl BlockSource for PanickingSource {
    fn read_block(&self, key: BlockKey) -> io::Result<Vec<f32>> {
        assert!(key != self.poison, "poisoned block {key:?}");
        self.inner.read_block(key)
    }

    fn block_bytes(&self, key: BlockKey) -> io::Result<usize> {
        self.inner.block_bytes(key)
    }
}

#[test]
fn worker_panic_becomes_an_error_and_the_worker_respawns() {
    let source = Arc::new(PanickingSource { inner: store_with(4), poison: key(0) });
    let pool = Arc::new(BlockPool::new());
    let eng = FetchEngine::spawn(
        source,
        pool.clone(),
        FetchConfig { workers: 1, retry: RetryPolicy::none(), ..FetchConfig::default() },
    );

    // The panic reaches the supervisor, which fails the waiter instead of
    // hanging it.
    let err = eng.get(key(0)).expect_err("panic must surface as an error");
    assert!(err.message.contains("panic during block read"), "got: {}", err.message);

    // The single worker was respawned in place: later reads still work.
    for i in 1..4 {
        assert!(eng.get(key(i)).is_ok(), "worker lost after panic");
    }
    let m = eng.shutdown();
    assert_eq!(m.worker_panics, 1);
    assert_eq!(m.errors, 1);
    assert_eq!(m.completed, 3);
}

#[test]
fn deterministic_shutdown_under_load_resolves_every_waiter() {
    let source = Arc::new(FaultInjectingSource::healthy(store_with(64)));
    let (eng, _pool) = det_engine(source.clone(), FetchConfig::deterministic());

    // Deep backlog: demand tickets and prefetches, nothing serviced yet.
    let tickets: Vec<Ticket> = (0..32).map(|i| eng.request(key(i))).collect();
    for i in 32..64 {
        assert!(eng.prefetch(key(i), i as f64));
    }
    let m = eng.shutdown();
    assert_eq!(m.completed, 0, "nothing was stepped before shutdown");

    // Every abandoned waiter resolves with the shutdown error — no hangs,
    // no leaked receivers.
    for t in tickets {
        let err = t.wait().expect_err("shutdown must fail the waiter");
        assert_eq!(err.kind, io::ErrorKind::Interrupted);
    }
    assert_eq!(source.reads(), 0, "backlog must be abandoned, not drained");
}

#[test]
fn threaded_shutdown_under_load_resolves_blocked_waiters() {
    // Slow every read down so shutdown lands mid-backlog.
    let cfg = FaultConfig {
        seed: 42,
        spike_rate: 1.0,
        spike: Duration::from_millis(2),
        ..FaultConfig::default()
    };
    let source = Arc::new(FaultInjectingSource::new(store_with(256), cfg));
    let pool = Arc::new(BlockPool::new());
    let eng = FetchEngine::spawn(
        source as Arc<dyn BlockSource>,
        pool,
        FetchConfig { workers: 4, queue_cap: 10_000, ..FetchConfig::default() },
    );

    let tickets: Vec<Ticket> = (0..64).map(|i| eng.request(key(i))).collect();
    for i in 64..256 {
        eng.prefetch(key(i), i as f64);
    }

    // Tickets outlive the engine: move each onto its own blocked waiter
    // thread, then shut down while the backlog is deep.
    let waiters: Vec<std::thread::JoinHandle<bool>> = tickets
        .into_iter()
        .map(|t| std::thread::spawn(move || t.wait().is_ok()))
        .collect();
    std::thread::sleep(Duration::from_millis(10));
    let m = eng.shutdown();

    // Every waiter resolves — serviced before the cut, or failed by it.
    let mut ok = 0usize;
    let mut failed = 0usize;
    for w in waiters {
        if w.join().expect("waiter thread must not panic") {
            ok += 1;
        } else {
            failed += 1;
        }
    }
    assert_eq!(ok + failed, 64);
    assert!(m.completed >= ok as u64, "every Ok waiter saw a completed read");
    // Shutdown returning proves the worker pool joined: no leaked threads.
    assert_eq!(m.inflight, 0);
}

/// Acceptance criterion: under a seeded fault storm (10% transient
/// errors, 5% latency spikes) a 100-step camera path completes with zero
/// engine stalls — every step's demand set resolves (success, or a
/// degraded miss that recovers on a later step) and the engine returns to
/// idle every step.
#[test]
fn fault_storm_completes_100_step_camera_path_without_stalls() {
    const STEPS: u32 = 100;
    const WINDOW: u32 = 8; // demand set per step
    const BLOCKS: u32 = STEPS + 2 * WINDOW;

    let source = Arc::new(FaultInjectingSource::new(
        store_with(BLOCKS),
        FaultConfig {
            spike: Duration::ZERO, // keep the deterministic run fast
            ..FaultConfig::storm(0xD15EA5E)
        },
    ));
    let (eng, pool) = det_engine(source.clone(), FetchConfig::deterministic());

    let mut degraded_steps = 0u32;
    let mut carry: Vec<BlockKey> = Vec::new(); // misses retried next frame
    for step in 0..STEPS {
        // The camera advances one block per step: demand the window,
        // prefetch the predicted next window, cancel stale predictions.
        eng.bump_generation();
        let demand: Vec<BlockKey> =
            carry.drain(..).chain((step..step + WINDOW).map(key)).collect();
        let tickets: Vec<(BlockKey, Ticket)> =
            demand.iter().map(|&k| (k, eng.request(k))).collect();
        for i in step + WINDOW..step + 2 * WINDOW {
            eng.prefetch(key(i), f64::from(BLOCKS - i));
        }

        eng.run_until_idle();

        // Zero stalls: after stepping to idle every ticket has resolved.
        let mut step_degraded = false;
        for (k, t) in tickets {
            match t.try_wait() {
                Ok(Ok(_)) => {}
                Ok(Err(e)) => {
                    // Only exhausted *transient* errors may surface under
                    // the storm, and they degrade the frame, not the run.
                    assert!(e.is_transient(), "unexpected permanent error: {e}");
                    step_degraded = true;
                    carry.push(k);
                }
                Err(_) => panic!("ticket unresolved after run_until_idle: engine stalled"),
            }
        }
        degraded_steps += u32::from(step_degraded);

        let m = eng.metrics();
        assert_eq!(m.queue_depth, 0, "queue not drained at step {step}");
        assert_eq!(m.inflight, 0, "reads stuck in flight at step {step}");
    }

    // Degraded frames recover: retry the stragglers to done.
    let mut rounds = 0;
    while !carry.is_empty() {
        rounds += 1;
        assert!(rounds < 32, "carried misses never recovered");
        let tickets: Vec<(BlockKey, Ticket)> =
            carry.drain(..).map(|k| (k, eng.request(k))).collect();
        eng.run_until_idle();
        for (k, t) in tickets {
            if t.try_wait().expect("resolved").is_err() {
                carry.push(k);
            }
        }
    }
    for i in 0..STEPS + WINDOW {
        assert!(pool.contains(key(i)), "block {i} missing after recovery");
    }

    let m = eng.shutdown();
    // The storm actually stormed, and the retry layer absorbed it.
    assert!(source.injected_errors() > 0, "no faults injected");
    assert!(m.retries > 0, "no retries under a 10% error storm");
    assert!(
        m.errors <= source.injected_errors(),
        "every surfaced error traces back to an injected fault"
    );
    // The breaker never saw 8 consecutive *request* failures under a 10%
    // storm with retries absorbing most faults.
    assert_eq!(m.breaker_state, BreakerState::Closed);
    println!(
        "storm: reads={} injected={} retries={} surfaced={} degraded_steps={}",
        source.reads(),
        source.injected_errors(),
        m.retries,
        m.errors,
        degraded_steps
    );
}
