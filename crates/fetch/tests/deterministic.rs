//! Deterministic-mode tests: with `workers = 0` the caller steps the
//! scheduler, so service order, coalescing, and cancellation are exact,
//! and the virtual clock makes Algorithm 1's overlap assertable.

use std::sync::Arc;
use viz_fetch::{BlockPool, FetchConfig, FetchEngine, VirtualClock, VirtualClockSource};
use viz_volume::{BlockId, BlockKey, BlockSource, MemBlockStore};

fn key(i: u32) -> BlockKey {
    BlockKey::scalar(BlockId(i))
}

fn store_with(n: u32) -> Arc<MemBlockStore> {
    let s = MemBlockStore::new();
    for i in 0..n {
        s.insert(key(i), vec![i as f32; 64]);
    }
    Arc::new(s)
}

struct Rig {
    clock: Arc<VirtualClock>,
    source: Arc<VirtualClockSource>,
    pool: Arc<BlockPool>,
    engine: FetchEngine,
}

fn rig(blocks: u32, latency_ticks: u64) -> Rig {
    let clock = Arc::new(VirtualClock::new());
    let source =
        Arc::new(VirtualClockSource::uniform(store_with(blocks), clock.clone(), latency_ticks));
    let pool = Arc::new(BlockPool::new());
    let engine = FetchEngine::deterministic(source.clone() as Arc<dyn BlockSource>, pool.clone());
    Rig { clock, source, pool, engine }
}

#[test]
fn demand_outranks_prefetch_and_prefetch_orders_by_entropy() {
    let r = rig(8, 1);
    assert!(r.engine.prefetch(key(1), 0.2));
    assert!(r.engine.prefetch(key(2), 0.9));
    assert!(r.engine.prefetch(key(3), 0.5));
    let ticket = r.engine.request(key(4)); // demand, issued last
    assert_eq!(r.engine.run_until_idle(), 4);
    // Demand first, then prefetches by descending entropy.
    assert_eq!(r.source.read_order(), vec![key(4), key(2), key(3), key(1)]);
    assert_eq!(ticket.wait().unwrap().as_slice(), &[4.0f32; 64]);
}

#[test]
fn equal_priority_prefetches_service_fifo() {
    let r = rig(4, 1);
    for i in 0..4 {
        r.engine.prefetch(key(i), 0.5);
    }
    r.engine.run_until_idle();
    assert_eq!(r.source.read_order(), vec![key(0), key(1), key(2), key(3)]);
}

#[test]
fn stale_generation_prefetch_cancelled_without_hitting_source() {
    let r = rig(4, 1);
    assert!(r.engine.prefetch(key(0), 0.7));
    r.engine.bump_generation(); // camera moved; the prediction is void
    assert_eq!(r.engine.run_until_idle(), 0);
    assert_eq!(r.source.reads(), 0, "cancelled prefetch must never touch the source");
    assert!(!r.pool.contains(key(0)));
    let m = r.engine.metrics();
    assert_eq!(m.cancelled, 1);
    assert_eq!(m.completed, 0);
    assert_eq!(m.queue_depth, 0);
}

#[test]
fn demand_fetch_survives_generation_bump() {
    let r = rig(4, 1);
    let t = r.engine.request(key(1));
    r.engine.bump_generation();
    assert_eq!(r.engine.run_until_idle(), 1);
    assert!(t.wait().is_ok());
    assert!(r.pool.contains(key(1)));
    assert_eq!(r.engine.metrics().cancelled, 0);
}

#[test]
fn re_requested_prefetch_adopts_current_generation() {
    let r = rig(4, 1);
    r.engine.prefetch(key(0), 0.5);
    r.engine.bump_generation();
    // Re-requested after the camera step: wanted again, so not stale.
    r.engine.prefetch(key(0), 0.5);
    assert_eq!(r.engine.run_until_idle(), 1);
    assert!(r.pool.contains(key(0)));
    assert_eq!(r.engine.metrics().cancelled, 0);
}

#[test]
fn prefetch_issued_before_render_is_resident_when_renderer_asks() {
    // Algorithm 1 / §V-D: prefetch overlaps rendering, so the step costs
    // max(prefetch, render), and the predicted block is resident when the
    // next frame needs it. Fetch = 5 ticks, render = 12 ticks.
    let r = rig(8, 5);
    let t_issue = r.clock.now();
    assert!(r.engine.prefetch(key(3), 0.9));
    let render_done = t_issue + 12;

    // The worker drains the queue while the frame renders.
    assert_eq!(r.engine.run_until_idle(), 1);
    let rec = r.source.records()[0];
    assert_eq!(rec.key, key(3));
    assert!(
        rec.end <= render_done,
        "fetch finished at t={} but the frame only completes at t={render_done}",
        rec.end
    );

    // The renderer asks at the end of the frame: the block is resident and
    // the step's wall time was max(prefetch, render) = render.
    assert!(r.pool.contains(key(3)));
    let step_total = rec.end.max(render_done) - t_issue;
    assert_eq!(step_total, 12);
}

#[test]
fn coalesced_demands_share_one_read_and_one_payload() {
    let r = rig(4, 1);
    let t1 = r.engine.request(key(2));
    let t2 = r.engine.request(key(2));
    let t3 = r.engine.request(key(2));
    assert_eq!(r.engine.run_until_idle(), 1, "three requests must coalesce onto one read");
    assert_eq!(r.source.reads(), 1);
    let (p1, p2, p3) = (t1.wait().unwrap(), t2.wait().unwrap(), t3.wait().unwrap());
    assert!(Arc::ptr_eq(&p1, &p2) && Arc::ptr_eq(&p2, &p3), "waiters share the pooled Arc");
    assert_eq!(r.engine.metrics().coalesced, 2);
}

#[test]
fn demand_upgrade_promotes_queued_prefetch() {
    let r = rig(4, 1);
    r.engine.prefetch(key(0), 0.1); // low priority...
    r.engine.prefetch(key(1), 0.9);
    let t = r.engine.request(key(0)); // ...until the renderer needs it now
    r.engine.run_until_idle();
    assert_eq!(r.source.read_order(), vec![key(0), key(1)]);
    assert_eq!(r.source.reads(), 2, "upgrade must not duplicate the read");
    assert!(t.wait().is_ok());
}

#[test]
fn priority_raise_reorders_a_queued_prefetch() {
    let r = rig(4, 1);
    r.engine.prefetch(key(0), 0.1);
    r.engine.prefetch(key(1), 0.5);
    r.engine.prefetch(key(0), 0.8); // better entropy estimate arrives
    r.engine.run_until_idle();
    assert_eq!(r.source.read_order(), vec![key(0), key(1)]);
    assert_eq!(r.source.reads(), 2);
}

#[test]
fn queue_cap_drops_excess_prefetches_and_counts_them() {
    let clock = Arc::new(VirtualClock::new());
    let source = Arc::new(VirtualClockSource::uniform(store_with(8), clock, 1));
    let pool = Arc::new(BlockPool::new());
    let engine = FetchEngine::spawn(
        source.clone() as Arc<dyn BlockSource>,
        pool,
        FetchConfig { workers: 0, queue_cap: 2, ..FetchConfig::default() },
    );
    assert!(engine.prefetch(key(0), 0.5));
    assert!(engine.prefetch(key(1), 0.5));
    assert!(!engine.prefetch(key(2), 0.5), "third prefetch exceeds queue_cap=2");
    let m = engine.metrics();
    assert_eq!(m.dropped, 1);
    assert_eq!(m.queue_depth, 2);
    // Demand fetches are exempt from the cap.
    let t = engine.request(key(3));
    assert_eq!(engine.run_until_idle(), 3);
    assert!(t.wait().is_ok());
}

#[test]
fn resident_key_coalesces_instead_of_refetching() {
    let r = rig(4, 1);
    r.engine.prefetch(key(0), 0.5);
    r.engine.run_until_idle();
    assert_eq!(r.source.reads(), 1);
    r.engine.prefetch(key(0), 0.9);
    assert_eq!(r.engine.run_until_idle(), 0);
    assert_eq!(r.source.reads(), 1, "resident key must not be refetched");
    assert_eq!(r.engine.metrics().coalesced, 1);
}

#[test]
fn error_fans_out_to_every_coalesced_waiter() {
    let r = rig(1, 1);
    let t1 = r.engine.request(key(9)); // not in the store
    let t2 = r.engine.request(key(9));
    assert_eq!(r.engine.run_until_idle(), 1);
    assert!(t1.wait().is_err());
    assert!(t2.wait().is_err());
    let m = r.engine.metrics();
    assert_eq!(m.errors, 1);
    assert_eq!(m.completed, 0);
}

#[test]
fn metrics_snapshot_is_consistent_after_mixed_run() {
    let r = rig(16, 2);
    for i in 0..8 {
        r.engine.prefetch(key(i), i as f64 / 8.0);
    }
    r.engine.bump_generation();
    for i in 4..8 {
        r.engine.prefetch(key(i), 0.9); // re-request half in the new gen
    }
    let t = r.engine.request(key(12));
    r.engine.run_until_idle();
    assert!(t.wait().is_ok());
    let m = r.engine.metrics();
    assert_eq!(m.cancelled, 4, "keys 0..4 were stale");
    assert_eq!(m.completed, 5, "keys 4..8 plus the demand fetch");
    assert_eq!(m.demand_completed, 1);
    assert_eq!(m.prefetch_completed, 4);
    assert_eq!(m.generation, 1);
    assert_eq!(m.queue_depth, 0);
    assert_eq!(m.inflight, 0);
    assert_eq!(r.source.reads(), 5);
}
