//! Multi-thread stress tests for the worker-pool engine. Run these in
//! release (`cargo test --release -p viz-fetch`); the latency injection
//! makes them timing-sensitive under an unoptimized build.

use std::sync::Arc;
use std::time::Duration;
use viz_fetch::{BlockPool, FetchConfig, FetchEngine, InstrumentedSource, Ticket};
use viz_volume::{BlockId, BlockKey, BlockSource, MemBlockStore};

fn key(i: u32) -> BlockKey {
    BlockKey::scalar(BlockId(i))
}

fn store_with(n: u32) -> Arc<MemBlockStore> {
    let s = MemBlockStore::new();
    for i in 0..n {
        s.insert(key(i), vec![i as f32; 64]);
    }
    Arc::new(s)
}

/// Coalescing invariant under contention: many threads hammering a small
/// key set must produce exactly one source read per distinct key, zero
/// concurrent duplicate reads, and every ticket resolves exactly once
/// with the right payload.
#[test]
fn coalescing_no_duplicate_reads_and_every_ticket_resolves() {
    const KEYS: u32 = 32;
    const THREADS: u32 = 8;
    const OPS: u32 = 200;

    let source = Arc::new(InstrumentedSource::new(store_with(KEYS), Duration::from_micros(200)));
    let pool = Arc::new(BlockPool::new());
    let engine = FetchEngine::spawn(
        source.clone() as Arc<dyn BlockSource>,
        pool.clone(),
        FetchConfig { workers: 8, queue_cap: 10_000, ..FetchConfig::default() },
    );

    let resolved: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let engine = &engine;
                s.spawn(move || {
                    let mut tickets: Vec<(u32, Ticket)> = Vec::new();
                    for j in 0..OPS {
                        let k = (t * 31 + j * 7) % KEYS;
                        if j % 2 == 0 {
                            tickets.push((k, engine.request(key(k))));
                        } else {
                            engine.prefetch(key(k), (k as f64) / KEYS as f64);
                        }
                    }
                    let mut n = 0u64;
                    for (k, ticket) in tickets {
                        let payload = ticket.wait().expect("demand fetch failed");
                        assert_eq!(payload[0], k as f32, "wrong payload for key {k}");
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });

    engine.sync();
    assert_eq!(resolved, (THREADS * OPS / 2) as u64, "every ticket resolves exactly once");
    assert_eq!(source.concurrent_dup_reads(), 0, "a key was read twice concurrently");
    assert_eq!(source.reads(), KEYS as u64, "each distinct key must be read exactly once");
    assert_eq!(pool.len(), KEYS as usize);
    let m = engine.shutdown();
    assert_eq!(m.completed, KEYS as u64);
    assert_eq!(m.errors, 0);
    // Everything beyond the first request per key merged onto it.
    assert_eq!(m.coalesced, m.demand_requests + m.prefetch_requests - KEYS as u64 - m.dropped);
}

/// A demand fetch arriving behind a deep prefetch backlog must jump the
/// queue: it completes while most of the backlog is still pending.
#[test]
fn demand_jumps_a_deep_prefetch_backlog() {
    const BACKLOG: u32 = 100;
    let source =
        Arc::new(InstrumentedSource::new(store_with(BACKLOG + 1), Duration::from_millis(1)));
    let pool = Arc::new(BlockPool::new());
    let engine = FetchEngine::spawn(
        source as Arc<dyn BlockSource>,
        pool,
        FetchConfig { workers: 4, queue_cap: 10_000, ..FetchConfig::default() },
    );
    for i in 0..BACKLOG {
        assert!(engine.prefetch(key(i), 0.5));
    }
    engine.get(key(BACKLOG)).expect("demand fetch failed");
    let m = engine.metrics();
    // Only prefetches already in flight when the demand arrived (≤ the
    // worker count, plus scheduling slack) may finish first.
    assert!(
        m.prefetch_completed < 30,
        "demand waited behind {} prefetches — priority inversion",
        m.prefetch_completed
    );
    engine.sync();
    assert_eq!(engine.shutdown().completed, (BACKLOG + 1) as u64);
}

/// Generation bumps cancel a queued backlog cheaply: the source only sees
/// the handful of reads that were already in flight.
#[test]
fn generation_bump_cancels_queued_backlog() {
    const BACKLOG: u64 = 500;
    let source =
        Arc::new(InstrumentedSource::new(store_with(BACKLOG as u32), Duration::from_millis(1)));
    let pool = Arc::new(BlockPool::new());
    let engine = FetchEngine::spawn(
        source.clone() as Arc<dyn BlockSource>,
        pool,
        FetchConfig { workers: 4, queue_cap: 10_000, ..FetchConfig::default() },
    );
    for i in 0..BACKLOG as u32 {
        assert!(engine.prefetch(key(i), 0.5));
    }
    engine.bump_generation();
    engine.sync();
    let m = engine.shutdown();
    assert_eq!(m.cancelled + m.completed, BACKLOG, "every request resolved one way");
    assert!(
        m.cancelled >= BACKLOG - 50,
        "expected a near-total cancellation, got {} of {BACKLOG}",
        m.cancelled
    );
    // The cancellation invariant: cancelled prefetches never reach the
    // source, so reads == completions.
    assert_eq!(source.reads(), m.completed);
}

/// The worker pool actually runs fetches in parallel.
#[test]
fn worker_pool_overlaps_reads() {
    const N: u32 = 64;
    let source = Arc::new(InstrumentedSource::new(store_with(N), Duration::from_millis(1)));
    let pool = Arc::new(BlockPool::new());
    let engine = FetchEngine::spawn(
        source.clone() as Arc<dyn BlockSource>,
        pool,
        FetchConfig { workers: 4, queue_cap: 1024, ..FetchConfig::default() },
    );
    for i in 0..N {
        engine.prefetch(key(i), 0.0);
    }
    engine.sync();
    assert!(
        source.max_concurrency() >= 2,
        "4 workers over a 1 ms source never overlapped (peak concurrency {})",
        source.max_concurrency()
    );
    assert_eq!(engine.shutdown().completed, N as u64);
}
