//! # viz-fetch — concurrent block-fetch engine
//!
//! The serving layer for Algorithm 1's I/O overlap on real data. The paper
//! hides block-fetch latency behind rendering (`total = io + max(prefetch,
//! render)`, §V-D); this crate turns that accounting rule into an actual
//! multi-worker engine over the [`viz_volume::BlockSource`] trait:
//!
//! - [`BlockPool`] — a sharded resident set (N lock shards by key hash) so
//!   renderer reads and worker inserts do not serialize on one `RwLock`,
//!   with payload-byte accounting for capacity enforcement.
//! - [`FetchEngine`] — a configurable worker pool draining a binary heap of
//!   requests. **Demand** fetches (the renderer is blocked on them) always
//!   outrank **prefetches**; prefetches order by `T_important` entropy.
//! - **Request coalescing** — concurrent requests for one [`BlockKey`]
//!   attach to a single in-flight read and all receive the shared `Arc`
//!   payload; a key is never read twice concurrently.
//! - **Generation-based cancellation** — each camera step bumps a
//!   generation; queued prefetches from stale generations are dropped at
//!   dequeue without ever touching the source. Demand fetches are never
//!   cancelled.
//! - **Deterministic mode** — `workers = 0` runs the scheduler inline via
//!   [`FetchEngine::run_one`], and [`VirtualClockSource`] injects per-tier
//!   latency on a logical clock, so scheduling order, coalescing and
//!   cancellation are reproducibly testable.
//! - **Fault tolerance** — transient source errors retry with bounded
//!   exponential backoff + jitter ([`RetryPolicy`]); permanent ones fail
//!   fast. A [`CircuitBreaker`] sheds prefetch load off a failing source
//!   and recovers via demand-read probes. Hung reads are abandoned at
//!   [`FetchConfig::source_timeout`] without losing the worker; waiters
//!   can bound their stall via [`FetchEngine::get_deadline`]. Workers are
//!   supervised (panics become [`FetchError`]s, locks are
//!   poison-tolerant), and [`FaultInjectingSource`] injects seeded
//!   deterministic fault storms to prove all of it in tests and benches.
//!
//! [`BlockKey`]: viz_volume::BlockKey
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use viz_fetch::{BlockPool, FetchConfig, FetchEngine};
//! use viz_volume::{BlockId, BlockKey, MemBlockStore};
//!
//! let store = MemBlockStore::new();
//! for i in 0..8u32 {
//!     store.insert(BlockKey::scalar(BlockId(i)), vec![i as f32; 16]);
//! }
//! let pool = Arc::new(BlockPool::new());
//! let engine = FetchEngine::spawn(
//!     Arc::new(store),
//!     pool.clone(),
//!     FetchConfig { workers: 2, queue_cap: 64, ..Default::default() },
//! );
//! // Prefetch by importance; demand-fetch what the frame needs now.
//! engine.prefetch(BlockKey::scalar(BlockId(3)), 0.9);
//! let block = engine.get(BlockKey::scalar(BlockId(0))).unwrap();
//! assert_eq!(block[0], 0.0);
//! engine.sync();
//! assert!(pool.contains(BlockKey::scalar(BlockId(3))));
//! let m = engine.shutdown();
//! assert_eq!(m.completed, 2);
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod fault;
pub mod iopool;
pub mod pool;
pub mod reactor;
pub mod retry;
pub mod virt;

pub use engine::{FetchConfig, FetchEngine, FetchError, FetchMetrics, Ticket};
pub use fault::{FaultConfig, FaultInjectingSource};
pub use iopool::IoPool;
pub use pool::BlockPool;
pub use reactor::{poll_fds, PollFd, ReadyHandle, ReadySet, TimerId, TimerWheel};
pub use retry::{is_transient, BreakerConfig, BreakerState, CircuitBreaker, RetryPolicy};
pub use virt::{
    InstrumentedSource, ReadRecord, Tier, TierLatency, VirtualClock, VirtualClockSource,
};
