//! The fetch engine: priority scheduling, coalescing, cancellation, and
//! fault tolerance.
//!
//! A [`FetchEngine`] owns a binary heap of requests drained by a pool of
//! worker threads (or stepped inline in deterministic mode). Scheduling
//! order is: demand fetches first (the renderer is stalled on them), then
//! prefetches by descending priority (callers pass `T_important` entropy),
//! FIFO among equals. Concurrent requests for one key coalesce onto a
//! single read; queued prefetches whose generation predates the current
//! camera step are cancelled at dequeue without touching the source.
//!
//! The fault-tolerance layer (this PR's `retry`/`fault` modules) keeps a
//! misbehaving source from stalling the render loop:
//!
//! - transient read errors are retried with bounded exponential backoff
//!   and jitter ([`RetryPolicy`]); permanent ones fail fast;
//! - a hung read is abandoned after [`FetchConfig::source_timeout`]
//!   without losing the worker (the read finishes on a side thread and
//!   its payload still lands in the pool as a *late arrival*);
//! - a [`CircuitBreaker`] trips after consecutive request failures,
//!   fails prefetches fast while open, and half-opens on the next demand
//!   read so recovery needs no timers;
//! - workers are supervised: a panic is converted into a [`FetchError`]
//!   for the in-flight waiters and the worker re-enters its loop, and all
//!   engine locks are poison-tolerant so one bad block can never wedge
//!   the engine;
//! - waiters can bound their stall with [`FetchEngine::get_deadline`] /
//!   [`Ticket::wait_timeout`] and render degraded instead of blocking.

use crate::iopool::IoPool;
use crate::pool::BlockPool;
use crate::retry::{BreakerConfig, BreakerState, CircuitBreaker, RetryPolicy};
use std::any::Any;
use std::cmp::Ordering as CmpOrdering;
use std::collections::{BinaryHeap, HashMap};
use std::fmt;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use viz_telemetry::{Counter, EventKind as Ev};
use viz_volume::{BlockKey, BlockSource};

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct FetchConfig {
    /// Worker threads. `0` selects deterministic mode: nothing runs until
    /// the caller steps the scheduler with [`FetchEngine::run_one`] /
    /// [`FetchEngine::run_until_idle`] on its own thread.
    pub workers: usize,
    /// Maximum queued *prefetch* requests; beyond it new prefetches are
    /// dropped (counted in [`FetchMetrics::dropped`]). Demand fetches are
    /// never dropped.
    pub queue_cap: usize,
    /// Retry policy for transient source errors. In deterministic mode
    /// retries happen inline with no backoff sleep.
    pub retry: RetryPolicy,
    /// Abandon a single source read after this long (the worker moves on;
    /// the read finishes on a pooled I/O thread and its payload still
    /// lands in the pool). `None` trusts the source to return. Timed
    /// reads dispatch through the bounded [`IoPool`] when set.
    pub source_timeout: Option<Duration>,
    /// Cap on concurrent I/O threads servicing timed reads. Reads beyond
    /// the cap queue for a pool thread instead of spawning more, so a
    /// fault storm of hung reads can no longer leak one thread per read.
    pub io_threads: usize,
    /// Maximum prefetches grouped into one batched source read per
    /// dispatch (`1` disables batching — the default, preserving strict
    /// one-key-per-dispatch semantics). Batches go through
    /// [`viz_volume::BlockSource::read_blocks`], letting disk-backed
    /// sources group and order their accesses. Demand reads always
    /// dispatch solo so batching never adds sibling latency to a stalled
    /// renderer.
    pub batch_max: usize,
    /// Circuit-breaker tuning (see [`CircuitBreaker`]). Set
    /// `failure_threshold` to `u32::MAX` to effectively disable it.
    pub breaker: BreakerConfig,
}

impl Default for FetchConfig {
    fn default() -> Self {
        FetchConfig {
            workers: 4,
            queue_cap: 4096,
            retry: RetryPolicy::default(),
            source_timeout: None,
            io_threads: 32,
            batch_max: 1,
            breaker: BreakerConfig::default(),
        }
    }
}

impl FetchConfig {
    /// The configuration [`FetchEngine::deterministic`] uses: no workers,
    /// effectively unbounded queue, inline zero-delay retries.
    pub fn deterministic() -> Self {
        FetchConfig { workers: 0, queue_cap: usize::MAX >> 1, ..Default::default() }
    }
}

/// Cloneable fetch failure. `io::Error` is not `Clone`, but a coalesced
/// read has many waiters and each needs a copy of the outcome.
#[derive(Debug, Clone)]
pub struct FetchError {
    /// The underlying `io::ErrorKind`.
    pub kind: io::ErrorKind,
    /// Human-readable context.
    pub message: String,
}

impl FetchError {
    /// Would the engine's retry layer consider this error transient?
    /// (See [`crate::retry::is_transient`].)
    pub fn is_transient(&self) -> bool {
        crate::retry::is_transient(self.kind)
    }
}

impl fmt::Display for FetchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fetch failed ({:?}): {}", self.kind, self.message)
    }
}

impl std::error::Error for FetchError {}

impl From<io::Error> for FetchError {
    fn from(e: io::Error) -> Self {
        FetchError { kind: e.kind(), message: e.to_string() }
    }
}

impl From<FetchError> for io::Error {
    fn from(e: FetchError) -> Self {
        io::Error::new(e.kind, e.message)
    }
}

fn shutdown_error() -> FetchError {
    FetchError { kind: io::ErrorKind::Interrupted, message: "fetch engine shut down".into() }
}

fn panic_error(p: &(dyn Any + Send)) -> FetchError {
    let msg = p
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| p.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic payload".into());
    FetchError { kind: io::ErrorKind::Other, message: format!("panic during block read: {msg}") }
}

type Payload = Arc<Vec<f32>>;
type FetchResult = Result<Payload, FetchError>;

/// Handle to one demand fetch. Resolves exactly once, via [`Ticket::wait`],
/// a successful [`Ticket::try_wait`], or a resolved [`Ticket::wait_timeout`].
#[derive(Debug)]
pub struct Ticket(TicketInner);

#[derive(Debug)]
enum TicketInner {
    Ready(FetchResult),
    Waiting(Receiver<FetchResult>),
}

impl Ticket {
    /// Block until the fetch completes. If the engine shuts down first,
    /// returns an [`io::ErrorKind::Interrupted`]-kinded error.
    pub fn wait(self) -> FetchResult {
        match self.0 {
            TicketInner::Ready(r) => r,
            TicketInner::Waiting(rx) => rx.recv().unwrap_or_else(|_| Err(shutdown_error())),
        }
    }

    /// Non-blocking poll: `Ok(result)` once resolved, `Err(self)` while the
    /// fetch is still in flight (deterministic mode: step the engine, then
    /// poll again).
    pub fn try_wait(self) -> Result<FetchResult, Ticket> {
        match self.0 {
            TicketInner::Ready(r) => Ok(r),
            TicketInner::Waiting(rx) => match rx.try_recv() {
                Ok(r) => Ok(r),
                Err(TryRecvError::Disconnected) => Ok(Err(shutdown_error())),
                Err(TryRecvError::Empty) => Err(Ticket(TicketInner::Waiting(rx))),
            },
        }
    }

    /// Wait up to `timeout`: `Ok(result)` once resolved, `Err(self)` on
    /// deadline expiry — the fetch stays in flight and the ticket can keep
    /// waiting, or be dropped to render degraded (the payload still lands
    /// in the pool when the read completes).
    pub fn wait_timeout(self, timeout: Duration) -> Result<FetchResult, Ticket> {
        match self.0 {
            TicketInner::Ready(r) => Ok(r),
            TicketInner::Waiting(rx) => match rx.recv_timeout(timeout) {
                Ok(r) => Ok(r),
                Err(RecvTimeoutError::Disconnected) => Ok(Err(shutdown_error())),
                Err(RecvTimeoutError::Timeout) => Err(Ticket(TicketInner::Waiting(rx))),
            },
        }
    }

    /// [`Self::wait_timeout`] against an absolute deadline. Callers
    /// bounding many fetches by one budget (a frame's demand set) compute
    /// the deadline once and pass it to every wait, so the blocks share a
    /// single clock instead of each re-measuring its own remainder.
    pub fn wait_until(self, deadline: Instant) -> Result<FetchResult, Ticket> {
        self.wait_timeout(deadline.saturating_duration_since(Instant::now()))
    }
}

/// Heap node. `stamp` pairs it with the live [`Pending`] entry: priority
/// upgrades push a fresh node and re-stamp the entry, so superseded nodes
/// are recognized and skipped at dequeue (lazy deletion).
#[derive(Debug)]
struct HeapEntry {
    demand: bool,
    pri: f64,
    seq: u64,
    stamp: u64,
    key: BlockKey,
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        self.demand
            .cmp(&other.demand)
            .then(self.pri.total_cmp(&other.pri))
            .then(other.seq.cmp(&self.seq)) // earlier request wins ties
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == CmpOrdering::Equal
    }
}

impl Eq for HeapEntry {}

/// One logical queued request per key (coalescing happens at enqueue).
struct Pending {
    demand: bool,
    pri: f64,
    gen: u64,
    stamp: u64,
    /// Fairness tag of the caller that *created* this entry (0 = untagged;
    /// the serve layer passes session ids). Later coalescers with a
    /// different tag count as cross-tag saves but do not take ownership.
    tag: u32,
    /// Enqueue time when telemetry was enabled at admission (closes the
    /// `QueueWait` span at dispatch).
    enq: Option<Instant>,
    /// Trace context of the caller that created this entry (0 = untraced).
    /// Restored on the servicing thread so `SourceRead` / `FetchService` /
    /// `PoolInsert` attribute to the originating client request. A traced
    /// demand upgrade adopts an untraced entry's attribution; other
    /// cross-trace coalescers are recorded as [`Ev::TraceJoin`] edges.
    trace: u64,
    /// Node id of the admitting context (0 = client/router process),
    /// restored alongside `trace` while servicing.
    node: u16,
    waiters: Vec<Sender<FetchResult>>,
}

/// One read being serviced right now; keeps the owner's fairness tag so
/// coalescers arriving mid-read are still attributed.
struct Inflight {
    tag: u32,
    /// Owning trace for [`Ev::TraceJoin`] edges from late coalescers.
    trace: u64,
    waiters: Vec<Sender<FetchResult>>,
}

struct State {
    heap: BinaryHeap<HeapEntry>,
    pending: HashMap<BlockKey, Pending>,
    inflight: HashMap<BlockKey, Inflight>,
    pending_prefetch: usize,
    seq: u64,
    stamp: u64,
    shutdown: bool,
}

/// Engine counters: named [`viz_telemetry::Counter`]s so the same values
/// feed [`FetchMetrics`] and Prometheus exposition without a mapping
/// table.
struct Counters {
    demand_requests: Counter,
    prefetch_requests: Counter,
    coalesced: Counter,
    cross_tag_coalesced: Counter,
    dropped: Counter,
    cancelled: Counter,
    completed: Counter,
    demand_completed: Counter,
    prefetch_completed: Counter,
    errors: Counter,
    retries: Counter,
    timeouts: Counter,
    deadline_misses: Counter,
    worker_panics: Counter,
    late_arrivals: Counter,
    breaker_rejected_admission: Counter,
    breaker_rejected_dequeue: Counter,
    lat_sum_ns: Counter,
    /// Starts at `u64::MAX` so `min_of` records the true minimum;
    /// `lat_count == 0` means "no reads yet".
    lat_min_ns: Counter,
    lat_max_ns: Counter,
    lat_count: Counter,
}

impl Default for Counters {
    fn default() -> Self {
        Counters {
            demand_requests: Counter::new("demand_requests"),
            prefetch_requests: Counter::new("prefetch_requests"),
            coalesced: Counter::new("coalesced"),
            cross_tag_coalesced: Counter::new("cross_tag_coalesced"),
            dropped: Counter::new("dropped"),
            cancelled: Counter::new("cancelled"),
            completed: Counter::new("completed"),
            demand_completed: Counter::new("demand_completed"),
            prefetch_completed: Counter::new("prefetch_completed"),
            errors: Counter::new("errors"),
            retries: Counter::new("retries"),
            timeouts: Counter::new("timeouts"),
            deadline_misses: Counter::new("deadline_misses"),
            worker_panics: Counter::new("worker_panics"),
            late_arrivals: Counter::new("late_arrivals"),
            breaker_rejected_admission: Counter::new("breaker_rejected_admission"),
            breaker_rejected_dequeue: Counter::new("breaker_rejected_dequeue"),
            lat_sum_ns: Counter::new("lat_sum_ns"),
            lat_min_ns: Counter::with_initial("lat_min_ns", u64::MAX),
            lat_max_ns: Counter::new("lat_max_ns"),
            lat_count: Counter::new("lat_count"),
        }
    }
}

impl Counters {
    /// `(name, value)` pairs for every counter, in declaration order —
    /// the `extra` input of [`viz_telemetry::Trace::prometheus_text`].
    fn pairs(&self) -> Vec<(&'static str, u64)> {
        let all = [
            &self.demand_requests,
            &self.prefetch_requests,
            &self.coalesced,
            &self.cross_tag_coalesced,
            &self.dropped,
            &self.cancelled,
            &self.completed,
            &self.demand_completed,
            &self.prefetch_completed,
            &self.errors,
            &self.retries,
            &self.timeouts,
            &self.deadline_misses,
            &self.worker_panics,
            &self.late_arrivals,
            &self.breaker_rejected_admission,
            &self.breaker_rejected_dequeue,
            &self.lat_sum_ns,
            &self.lat_min_ns,
            &self.lat_max_ns,
            &self.lat_count,
        ];
        all.iter().map(|c| (c.name(), c.get())).collect()
    }
}

struct Shared {
    state: Mutex<State>,
    work: Condvar,
    idle: Condvar,
    source: Arc<dyn BlockSource>,
    pool: Arc<BlockPool>,
    generation: AtomicU64,
    breaker: CircuitBreaker,
    io: IoPool,
    cfg: FetchConfig,
    m: Counters,
    /// Completion hook (see [`FetchEngine::set_completion_hook`]).
    wake: Mutex<Option<Arc<dyn Fn() + Send + Sync>>>,
}

/// Invoke the registered completion hook, if any, outside the state lock.
fn wake_hook(s: &Shared) {
    let hook = s.wake.lock().unwrap_or_else(PoisonError::into_inner).clone();
    if let Some(hook) = hook {
        hook();
    }
}

/// Poison-tolerant state lock: a panicking worker must never wedge the
/// engine, so a poisoned mutex is entered anyway (the supervisor repairs
/// any half-done job via the inflight map).
fn lock_state(s: &Shared) -> MutexGuard<'_, State> {
    s.state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Point-in-time engine statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FetchMetrics {
    /// Demand (`request`/`get`) calls.
    pub demand_requests: u64,
    /// `prefetch` calls.
    pub prefetch_requests: u64,
    /// Requests merged onto an existing result (resident block), queue
    /// entry, or in-flight read instead of issuing their own.
    pub coalesced: u64,
    /// Of `coalesced`, merges where the incoming fairness tag differed
    /// from the tag that created the queue/in-flight entry — i.e. one
    /// client's read served another client (resident-pool hits carry no
    /// owner and are not attributed here).
    pub cross_tag_coalesced: u64,
    /// Prefetches rejected because the queue was at `queue_cap`.
    pub dropped: u64,
    /// Stale-generation prefetches discarded at dequeue (source untouched).
    pub cancelled: u64,
    /// Reads that completed successfully.
    pub completed: u64,
    /// Of `completed`, how many were demand fetches.
    pub demand_completed: u64,
    /// Of `completed`, how many were prefetches.
    pub prefetch_completed: u64,
    /// Requests that failed after retries were exhausted (or fail-fast).
    pub errors: u64,
    /// Transient-error retry attempts issued.
    pub retries: u64,
    /// Source reads abandoned at [`FetchConfig::source_timeout`].
    pub timeouts: u64,
    /// [`FetchEngine::get_deadline`] calls that expired unresolved.
    pub deadline_misses: u64,
    /// Worker panics caught and converted to waiter errors.
    pub worker_panics: u64,
    /// Abandoned reads whose payload later landed in the pool anyway.
    pub late_arrivals: u64,
    /// I/O threads spawned for timed reads over the engine's lifetime —
    /// bounded by [`FetchConfig::io_threads`] even under a fault storm.
    pub io_threads_spawned: u64,
    /// Circuit-breaker state at snapshot time.
    pub breaker_state: BreakerState,
    /// Closed/half-open → open transitions.
    pub breaker_opens: u64,
    /// Open → half-open probe dispatches.
    pub breaker_half_opens: u64,
    /// Open/half-open → closed recoveries.
    pub breaker_closes: u64,
    /// Prefetches failed fast while the breaker was open (admission +
    /// dequeue; `breaker_rejected_admission + breaker_rejected_dequeue`).
    pub breaker_rejected: u64,
    /// Of `breaker_rejected`, how many were turned away at admission.
    pub breaker_rejected_admission: u64,
    /// Of `breaker_rejected`, how many were queued prefetches discarded
    /// at dequeue after the breaker opened.
    pub breaker_rejected_dequeue: u64,
    /// Requests currently queued (gauge).
    pub queue_depth: usize,
    /// Of `queue_depth`, entries in the demand class (gauge).
    pub queue_depth_demand: usize,
    /// Of `queue_depth`, entries in the prefetch class (gauge). The serve
    /// layer's shed decision watches this without poking engine internals.
    pub queue_depth_prefetch: usize,
    /// Reads currently in flight (gauge).
    pub inflight: usize,
    /// Current cancellation generation.
    pub generation: u64,
    /// Fastest successful read, seconds (0 if none).
    pub latency_min_s: f64,
    /// Mean successful read, seconds (0 if none).
    pub latency_mean_s: f64,
    /// Slowest successful read, seconds (0 if none).
    pub latency_max_s: f64,
}

/// Multi-worker block-fetch engine over a [`BlockSource`]. See the crate
/// docs for the scheduling/coalescing/cancellation contract.
pub struct FetchEngine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

struct Job {
    key: BlockKey,
    demand: bool,
    /// Admitting caller's trace context, restored while servicing.
    trace: u64,
    /// Admitting caller's node id, restored while servicing.
    node: u16,
}

impl FetchEngine {
    /// Start an engine. `cfg.workers == 0` selects deterministic mode.
    pub fn spawn(source: Arc<dyn BlockSource>, pool: Arc<BlockPool>, cfg: FetchConfig) -> Self {
        assert!(cfg.queue_cap > 0, "queue_cap must be positive");
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                heap: BinaryHeap::new(),
                pending: HashMap::new(),
                inflight: HashMap::new(),
                pending_prefetch: 0,
                seq: 0,
                stamp: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            idle: Condvar::new(),
            source,
            pool,
            generation: AtomicU64::new(0),
            breaker: CircuitBreaker::new(),
            io: IoPool::new(cfg.io_threads),
            cfg,
            m: Counters::default(),
            wake: Mutex::new(None),
        });
        let workers = (0..cfg.workers)
            .map(|i| {
                let s = shared.clone();
                std::thread::Builder::new()
                    .name(format!("viz-fetch-{i}"))
                    .spawn(move || supervised_worker(&s))
                    .expect("failed to spawn fetch worker")
            })
            .collect();
        FetchEngine { shared, workers }
    }

    /// Deterministic single-stepped engine (no threads, unbounded queue).
    pub fn deterministic(source: Arc<dyn BlockSource>, pool: Arc<BlockPool>) -> Self {
        Self::spawn(source, pool, FetchConfig::deterministic())
    }

    /// The resident pool this engine fills.
    pub fn pool(&self) -> &Arc<BlockPool> {
        &self.shared.pool
    }

    /// Queue a background load of `key` at `priority` (higher = sooner;
    /// callers pass `T_important` entropy). Returns `false` only when the
    /// request was dropped: queue at capacity, circuit breaker open, or
    /// engine shutting down. Requests for resident, queued, or in-flight
    /// keys coalesce and return `true`.
    pub fn prefetch(&self, key: BlockKey, priority: f64) -> bool {
        self.prefetch_tagged(key, priority, 0)
    }

    /// [`Self::prefetch`] with a fairness tag (the serve layer passes
    /// session ids; 0 means untagged). When the request coalesces onto a
    /// queue entry or in-flight read created under a *different* tag, the
    /// engine counts a [`FetchMetrics::cross_tag_coalesced`] save and
    /// emits a `CrossClientCoalesce` event — one client's read served
    /// another's.
    pub fn prefetch_tagged(&self, key: BlockKey, priority: f64, tag: u32) -> bool {
        let s = &*self.shared;
        s.m.prefetch_requests.inc();
        if s.pool.contains(key) {
            s.m.coalesced.inc();
            viz_telemetry::instant(Ev::FetchCoalesce, key_salt(key), 0);
            return true;
        }
        let mut st = lock_state(s);
        if st.shutdown {
            s.m.dropped.inc();
            viz_telemetry::instant(Ev::FetchDrop, key_salt(key), 1);
            return false;
        }
        let gen = s.generation.load(Ordering::Relaxed);
        let (accepted, enqueued) = prefetch_locked(s, &mut st, key, priority, tag, gen);
        drop(st);
        if enqueued {
            s.work.notify_one();
        }
        accepted
    }

    /// Admit a whole visible-set delta in one call: every `(key,
    /// priority)` pair runs the full per-key admission — pool/in-flight/
    /// pending coalescing, breaker and queue-cap checks — under a single
    /// state lock, so a thousand-block camera step costs one lock
    /// round-trip instead of a thousand. Returns how many entries were
    /// accepted (queued, upgraded, or coalesced); dropped and
    /// breaker-rejected keys are counted exactly as per-key admission
    /// would count them.
    pub fn prefetch_batch(&self, items: &[(BlockKey, f64)]) -> usize {
        self.prefetch_batch_tagged(items, 0)
    }

    /// [`Self::prefetch_batch`] with a fairness tag (see
    /// [`Self::prefetch_tagged`]).
    pub fn prefetch_batch_tagged(&self, items: &[(BlockKey, f64)], tag: u32) -> usize {
        let s = &*self.shared;
        let mut st = lock_state(s);
        let gen = s.generation.load(Ordering::Relaxed);
        let mut accepted = 0usize;
        let mut enqueued = 0usize;
        for &(key, priority) in items {
            s.m.prefetch_requests.inc();
            if st.shutdown {
                s.m.dropped.inc();
                viz_telemetry::instant(Ev::FetchDrop, key_salt(key), 1);
                continue;
            }
            let (acc, enq) = prefetch_locked(s, &mut st, key, priority, tag, gen);
            accepted += usize::from(acc);
            enqueued += usize::from(enq);
        }
        drop(st);
        if enqueued == 1 {
            s.work.notify_one();
        } else if enqueued > 1 {
            s.work.notify_all();
        }
        accepted
    }

    /// Demand-fetch `key`: resident blocks resolve immediately; otherwise
    /// the request jumps every queued prefetch (upgrading one already
    /// queued for this key) and the [`Ticket`] resolves when the read
    /// lands. Demand fetches are never dropped or cancelled.
    pub fn request(&self, key: BlockKey) -> Ticket {
        self.request_tagged(key, 0)
    }

    /// [`Self::request`] with a fairness tag (see
    /// [`Self::prefetch_tagged`] for the cross-tag coalescing contract).
    pub fn request_tagged(&self, key: BlockKey, tag: u32) -> Ticket {
        let s = &*self.shared;
        s.m.demand_requests.inc();
        if let Some(p) = s.pool.get(key) {
            s.m.coalesced.inc();
            viz_telemetry::instant(Ev::FetchCoalesce, key_salt(key), 0);
            return Ticket(TicketInner::Ready(Ok(p)));
        }
        let mut st = lock_state(s);
        // Re-check under the lock: completions insert into the pool while
        // holding it, so a miss above may have landed just before we got in.
        if let Some(p) = s.pool.get(key) {
            s.m.coalesced.inc();
            viz_telemetry::instant(Ev::FetchCoalesce, key_salt(key), 0);
            return Ticket(TicketInner::Ready(Ok(p)));
        }
        if st.shutdown {
            return Ticket(TicketInner::Ready(Err(shutdown_error())));
        }
        let (tx, rx) = channel();
        if let Some(inf) = st.inflight.get_mut(&key) {
            s.m.coalesced.inc();
            viz_telemetry::instant(Ev::FetchCoalesce, key_salt(key), 1);
            let owner = inf.tag;
            let owner_trace = inf.trace;
            inf.waiters.push(tx);
            note_cross_tag(s, key, owner, tag);
            note_trace_join(key, owner_trace);
            return Ticket(TicketInner::Waiting(rx));
        }
        if st.pending.contains_key(&key) {
            s.m.coalesced.inc();
            viz_telemetry::instant(Ev::FetchCoalesce, key_salt(key), 2);
            st.seq += 1;
            st.stamp += 1;
            let (seq, stamp) = (st.seq, st.stamp);
            let p = st.pending.get_mut(&key).unwrap();
            note_cross_tag(s, key, p.tag, tag);
            note_trace_join(key, p.trace);
            if p.trace == 0 {
                // The demand caller takes over attribution of an entry
                // admitted untraced (typically a speculative prefetch).
                p.trace = viz_telemetry::current_trace();
                p.node = viz_telemetry::current_node();
            }
            p.waiters.push(tx);
            if !p.demand {
                p.demand = true;
                p.stamp = stamp;
                let pri = p.pri;
                st.pending_prefetch -= 1;
                st.heap.push(HeapEntry { demand: true, pri, seq, stamp, key });
                drop(st);
                viz_telemetry::instant(Ev::FetchAdmitDemand, key_salt(key), 1);
                s.work.notify_one();
            }
            return Ticket(TicketInner::Waiting(rx));
        }
        let gen = s.generation.load(Ordering::Relaxed);
        st.seq += 1;
        st.stamp += 1;
        let (seq, stamp) = (st.seq, st.stamp);
        let enq = viz_telemetry::start();
        st.pending.insert(
            key,
            Pending {
                demand: true,
                pri: 0.0,
                gen,
                stamp,
                tag,
                enq,
                trace: viz_telemetry::current_trace(),
                node: viz_telemetry::current_node(),
                waiters: vec![tx],
            },
        );
        st.heap.push(HeapEntry { demand: true, pri: 0.0, seq, stamp, key });
        drop(st);
        viz_telemetry::instant(Ev::FetchAdmitDemand, key_salt(key), 0);
        s.work.notify_one();
        Ticket(TicketInner::Waiting(rx))
    }

    /// Blocking demand fetch: `request(key).wait()`. Do not call in
    /// deterministic mode (no worker will ever service it — use
    /// [`Self::request`] + [`Self::run_until_idle`] there).
    pub fn get(&self, key: BlockKey) -> FetchResult {
        self.request(key).wait()
    }

    /// Demand fetch with a per-request deadline. On expiry returns a
    /// [`io::ErrorKind::TimedOut`]-kinded error and counts a
    /// [`FetchMetrics::deadline_misses`]; the read itself stays in flight,
    /// so the payload lands in the pool for the next frame (degraded
    /// rendering now, recovery later). Not meaningful in deterministic
    /// mode, where nothing services requests while the caller blocks.
    pub fn get_deadline(&self, key: BlockKey, deadline: Duration) -> FetchResult {
        match self.request(key).wait_timeout(deadline) {
            Ok(r) => r,
            Err(_ticket) => {
                self.shared.m.deadline_misses.inc();
                viz_telemetry::instant(Ev::DeadlineMiss, key_salt(key), deadline.as_nanos() as u64);
                Err(FetchError {
                    kind: io::ErrorKind::TimedOut,
                    message: format!("demand read of {key:?} missed {deadline:?} deadline"),
                })
            }
        }
    }

    /// Demand fetch bounded by an absolute deadline: [`Self::get_deadline`]
    /// with the budget arithmetic done once on the caller's clock (see
    /// [`Ticket::wait_until`]). An already-passed deadline still admits
    /// the request — the read stays in flight for a later frame — and
    /// returns [`io::ErrorKind::TimedOut`] immediately.
    pub fn get_until(&self, key: BlockKey, deadline: Instant) -> FetchResult {
        match self.request(key).wait_until(deadline) {
            Ok(r) => r,
            Err(_ticket) => {
                self.shared.m.deadline_misses.inc();
                viz_telemetry::instant(Ev::DeadlineMiss, key_salt(key), 0);
                Err(FetchError {
                    kind: io::ErrorKind::TimedOut,
                    message: format!("demand read of {key:?} missed its frame deadline"),
                })
            }
        }
    }

    /// Advance the cancellation generation (call once per camera step).
    /// Prefetches queued under earlier generations and not re-requested
    /// since are dropped at dequeue. Returns the new generation.
    pub fn bump_generation(&self) -> u64 {
        self.shared.generation.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Current cancellation generation.
    pub fn generation(&self) -> u64 {
        self.shared.generation.load(Ordering::Relaxed)
    }

    /// Current circuit-breaker state.
    pub fn breaker_state(&self) -> BreakerState {
        self.shared.breaker.state()
    }

    /// Register (or clear, with `None`) a hook called after every job
    /// resolution — success, error, cancellation, or panic. An event loop
    /// parked in `poll(2)` points this at its wake pipe so it learns about
    /// completions immediately instead of at its poll timeout. The hook
    /// runs on the resolving worker thread and must be cheap and
    /// non-blocking.
    pub fn set_completion_hook(&self, hook: Option<Arc<dyn Fn() + Send + Sync>>) {
        *self.shared.wake.lock().unwrap_or_else(PoisonError::into_inner) = hook;
    }

    /// Wait until every queued and in-flight request has been serviced,
    /// cancelled, or dropped. In deterministic mode this steps the
    /// scheduler to idle on the calling thread.
    pub fn sync(&self) {
        if self.shared.cfg.workers == 0 {
            self.run_until_idle();
            return;
        }
        let s = &*self.shared;
        let mut st = lock_state(s);
        while !(st.pending.is_empty() && st.inflight.is_empty()) {
            st = s.idle.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Deterministic mode: dequeue and service the single highest-priority
    /// runnable request on the calling thread. Stale-generation prefetches
    /// encountered on the way are cancelled (and not counted as serviced).
    /// A panicking source is caught here, surfaced to waiters as a
    /// [`FetchError`], and does not propagate to the caller.
    /// Returns the serviced key, or `None` when the queue is idle.
    pub fn run_one(&self) -> Option<BlockKey> {
        let s = &self.shared;
        let job = {
            let mut st = lock_state(s);
            try_dequeue(s, &mut st)
        }?;
        let key = job.key;
        if let Err(p) = catch_unwind(AssertUnwindSafe(|| service(s, job))) {
            s.m.worker_panics.inc();
            fail_job_after_panic(s, key, p.as_ref());
        }
        Some(key)
    }

    /// Deterministic mode: run until the queue drains; returns how many
    /// requests were serviced (cancelled ones don't count).
    pub fn run_until_idle(&self) -> usize {
        let mut n = 0;
        while self.run_one().is_some() {
            n += 1;
        }
        n
    }

    /// Deterministic mode: dequeue up to [`FetchConfig::batch_max`]
    /// runnable prefetches and service them as one grouped source read
    /// (a demand job at the front still dispatches solo). Returns the
    /// serviced keys, empty when the queue is idle. With `batch_max == 1`
    /// this is exactly [`Self::run_one`].
    pub fn run_batch(&self) -> Vec<BlockKey> {
        let s = &self.shared;
        let jobs = {
            let mut st = lock_state(s);
            try_dequeue_batch(s, &mut st, s.cfg.batch_max.max(1))
        };
        if jobs.is_empty() {
            return Vec::new();
        }
        let keys: Vec<BlockKey> = jobs.iter().map(|j| j.key).collect();
        if let Err(p) = catch_unwind(AssertUnwindSafe(|| service_batch(s, jobs))) {
            s.m.worker_panics.inc();
            for &key in &keys {
                if lock_state(s).inflight.contains_key(&key) {
                    fail_job_after_panic(s, key, p.as_ref());
                }
            }
        }
        keys
    }

    /// Requests currently queued (logical entries, not stale heap nodes).
    pub fn queue_depth(&self) -> usize {
        lock_state(&self.shared).pending.len()
    }

    /// Queued entries per priority class, `(demand, prefetch)` — one lock,
    /// no full metrics snapshot. The serve layer polls this on every
    /// admission decision.
    pub fn queue_depths(&self) -> (usize, usize) {
        let st = lock_state(&self.shared);
        (st.pending.len() - st.pending_prefetch, st.pending_prefetch)
    }

    /// Engine counter `(name, value)` pairs, for Prometheus exposition
    /// (the `extra` argument of [`viz_telemetry::Trace::prometheus_text`]).
    pub fn counter_pairs(&self) -> Vec<(&'static str, u64)> {
        let mut pairs = self.shared.m.pairs();
        pairs.push(("io_threads_spawned", self.shared.io.spawned() as u64));
        pairs
    }

    /// Snapshot the engine metrics.
    pub fn metrics(&self) -> FetchMetrics {
        let s = &*self.shared;
        let (queue_depth, queue_depth_prefetch, inflight) = {
            let st = lock_state(s);
            (st.pending.len(), st.pending_prefetch, st.inflight.len())
        };
        let count = s.m.lat_count.get();
        let (min, mean, max) = if count == 0 {
            (0.0, 0.0, 0.0)
        } else {
            (
                s.m.lat_min_ns.get() as f64 * 1e-9,
                s.m.lat_sum_ns.get() as f64 * 1e-9 / count as f64,
                s.m.lat_max_ns.get() as f64 * 1e-9,
            )
        };
        let (breaker_opens, breaker_half_opens, breaker_closes, breaker_rejected) =
            s.breaker.counters();
        FetchMetrics {
            demand_requests: s.m.demand_requests.get(),
            prefetch_requests: s.m.prefetch_requests.get(),
            coalesced: s.m.coalesced.get(),
            cross_tag_coalesced: s.m.cross_tag_coalesced.get(),
            dropped: s.m.dropped.get(),
            cancelled: s.m.cancelled.get(),
            completed: s.m.completed.get(),
            demand_completed: s.m.demand_completed.get(),
            prefetch_completed: s.m.prefetch_completed.get(),
            errors: s.m.errors.get(),
            retries: s.m.retries.get(),
            timeouts: s.m.timeouts.get(),
            deadline_misses: s.m.deadline_misses.get(),
            worker_panics: s.m.worker_panics.get(),
            late_arrivals: s.m.late_arrivals.get(),
            io_threads_spawned: s.io.spawned() as u64,
            breaker_state: s.breaker.state(),
            breaker_opens,
            breaker_half_opens,
            breaker_closes,
            breaker_rejected,
            breaker_rejected_admission: s.m.breaker_rejected_admission.get(),
            breaker_rejected_dequeue: s.m.breaker_rejected_dequeue.get(),
            queue_depth,
            queue_depth_demand: queue_depth - queue_depth_prefetch,
            queue_depth_prefetch,
            inflight,
            generation: s.generation.load(Ordering::Relaxed),
            latency_min_s: min,
            latency_mean_s: mean,
            latency_max_s: max,
        }
    }

    /// Stop the workers (queued requests are abandoned; waiting tickets
    /// resolve with an `Interrupted` error) and return final metrics.
    /// Call [`Self::sync`] first to drain instead.
    pub fn shutdown(mut self) -> FetchMetrics {
        self.stop_workers();
        self.metrics()
    }

    fn stop_workers(&mut self) {
        {
            let mut st = lock_state(&self.shared);
            if st.shutdown {
                return;
            }
            st.shutdown = true;
            // Abandoned demand waiters unblock via sender drop.
            st.pending.clear();
            st.pending_prefetch = 0;
            st.heap.clear();
        }
        self.shared.work.notify_all();
        self.shared.idle.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // Close the I/O pool last: queued timed reads finish (or hang on
        // their detached threads), and dropping the job channel breaks
        // the `Arc<Shared>` cycle through queued jobs.
        self.shared.io.shutdown();
    }
}

impl Drop for FetchEngine {
    fn drop(&mut self) {
        self.stop_workers();
    }
}

impl fmt::Debug for FetchEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FetchEngine")
            .field("cfg", &self.shared.cfg)
            .field("metrics", &self.metrics())
            .finish()
    }
}

/// Per-key prefetch admission with the state lock already held: pool and
/// in-flight coalescing, pending merge/upgrade, breaker and queue-cap
/// checks, fresh enqueue. The pool check runs under the lock because
/// completions insert while holding it — a racing miss would otherwise
/// re-read a key that just landed. Returns `(accepted, enqueued)`;
/// `enqueued` means a heap node was pushed and a worker needs waking.
fn prefetch_locked(
    s: &Shared,
    st: &mut MutexGuard<'_, State>,
    key: BlockKey,
    priority: f64,
    tag: u32,
    gen: u64,
) -> (bool, bool) {
    if s.pool.contains(key) {
        s.m.coalesced.inc();
        viz_telemetry::instant(Ev::FetchCoalesce, key_salt(key), 0);
        return (true, false);
    }
    if let Some(inf) = st.inflight.get(&key) {
        s.m.coalesced.inc();
        viz_telemetry::instant(Ev::FetchCoalesce, key_salt(key), 1);
        note_cross_tag(s, key, inf.tag, tag);
        note_trace_join(key, inf.trace);
        return (true, false);
    }
    if st.pending.contains_key(&key) {
        s.m.coalesced.inc();
        viz_telemetry::instant(Ev::FetchCoalesce, key_salt(key), 2);
        st.seq += 1;
        st.stamp += 1;
        let (seq, stamp) = (st.seq, st.stamp);
        let p = st.pending.get_mut(&key).unwrap();
        note_cross_tag(s, key, p.tag, tag);
        note_trace_join(key, p.trace);
        // Re-requested now: wanted by the current generation even if it
        // was first queued before a camera step.
        p.gen = gen;
        if !p.demand && priority > p.pri {
            p.pri = priority;
            p.stamp = stamp;
            st.heap.push(HeapEntry { demand: false, pri: priority, seq, stamp, key });
            return (true, true);
        }
        return (true, false);
    }
    // Source presumed down: speculative reads would only feed the
    // failure run. Demand reads still pass (they carry the probe).
    if !s.breaker.admit_prefetch() {
        s.m.breaker_rejected_admission.inc();
        viz_telemetry::instant(Ev::BreakerReject, key_salt(key), 0);
        return (false, false);
    }
    if st.pending_prefetch >= s.cfg.queue_cap {
        s.m.dropped.inc();
        viz_telemetry::instant(Ev::FetchDrop, key_salt(key), 0);
        return (false, false);
    }
    st.seq += 1;
    st.stamp += 1;
    let (seq, stamp) = (st.seq, st.stamp);
    let enq = viz_telemetry::start();
    st.pending.insert(
        key,
        Pending {
            demand: false,
            pri: priority,
            gen,
            stamp,
            tag,
            enq,
            trace: viz_telemetry::current_trace(),
            node: viz_telemetry::current_node(),
            waiters: Vec::new(),
        },
    );
    st.pending_prefetch += 1;
    st.heap.push(HeapEntry { demand: false, pri: priority, seq, stamp, key });
    viz_telemetry::instant(Ev::FetchAdmitPrefetch, key_salt(key), priority.to_bits());
    (true, true)
}

/// Pop the next runnable job, discarding stale heap nodes (superseded by a
/// priority upgrade), cancelling stale-generation prefetches, and failing
/// prefetches fast while the breaker is not closed. Demand dequeues while
/// the breaker is open become its half-open probe.
fn try_dequeue(s: &Shared, st: &mut MutexGuard<'_, State>) -> Option<Job> {
    while let Some(e) = st.heap.pop() {
        let live = st.pending.get(&e.key).is_some_and(|p| p.stamp == e.stamp);
        if !live {
            continue;
        }
        let p = st.pending.remove(&e.key).unwrap();
        if !p.demand {
            st.pending_prefetch -= 1;
            if p.gen < s.generation.load(Ordering::Relaxed) {
                // The camera moved on; this prediction is void. The source
                // is never touched. Demand fetches never take this branch.
                s.m.cancelled.inc();
                viz_telemetry::instant(Ev::FetchCancel, key_salt(e.key), p.gen);
                notify_if_idle(s, st);
                continue;
            }
            if !s.breaker.admit_prefetch() {
                // Queued before the breaker opened: fail fast rather than
                // burn a read on a source presumed down.
                s.m.breaker_rejected_dequeue.inc();
                viz_telemetry::instant(Ev::BreakerReject, key_salt(e.key), 1);
                notify_if_idle(s, st);
                continue;
            }
        } else {
            s.breaker.on_demand_dispatch();
        }
        viz_telemetry::span(Ev::QueueWait, key_salt(e.key), u64::from(p.demand), p.enq);
        st.inflight.insert(e.key, Inflight { tag: p.tag, trace: p.trace, waiters: p.waiters });
        return Some(Job { key: e.key, demand: p.demand, trace: p.trace, node: p.node });
    }
    None
}

/// Pop up to `max` runnable jobs for one dispatch. A demand job always
/// dispatches solo (batching must never add sibling-read latency to a
/// stalled renderer); prefetches batch together so the source sees one
/// grouped read. Gathering stops early when the heap's next node is a
/// demand entry — a stale such node can only shrink the batch, never
/// starve the demand (it dispatches next).
fn try_dequeue_batch(s: &Shared, st: &mut MutexGuard<'_, State>, max: usize) -> Vec<Job> {
    let mut jobs = Vec::new();
    let Some(first) = try_dequeue(s, st) else {
        return jobs;
    };
    let solo = first.demand;
    jobs.push(first);
    if solo {
        return jobs;
    }
    while jobs.len() < max {
        match st.heap.peek() {
            Some(e) if !e.demand => {}
            _ => break,
        }
        match try_dequeue(s, st) {
            Some(j) => {
                // A stale prefetch node can unmask a demand entry; take it
                // into the batch (correct, just not solo) and stop there.
                let demand = j.demand;
                jobs.push(j);
                if demand {
                    break;
                }
            }
            None => break,
        }
    }
    jobs
}

fn notify_if_idle(s: &Shared, st: &MutexGuard<'_, State>) {
    if st.pending.is_empty() && st.inflight.is_empty() {
        s.idle.notify_all();
    }
}

/// Record a cross-trace coalesce: the calling thread's ambient trace
/// joins a read owned by `owner_trace`. Emitted on the joining caller's
/// thread so the event auto-stamps the joining trace id; `arg` carries
/// the owner's. Silent when either side is untraced or both are the
/// same request — the join edge is what lets a merged cluster trace
/// connect every client whose demand was served by one source read.
fn note_trace_join(key: BlockKey, owner_trace: u64) {
    if !viz_telemetry::enabled() {
        return;
    }
    let joining = viz_telemetry::current_trace();
    if joining != 0 && owner_trace != 0 && joining != owner_trace {
        viz_telemetry::instant(Ev::TraceJoin, key_salt(key), owner_trace);
    }
}

/// Count a coalesce that crossed fairness tags (one client's queued or
/// in-flight read serving another client's request).
fn note_cross_tag(s: &Shared, key: BlockKey, owner: u32, incoming: u32) {
    if owner != incoming {
        s.m.cross_tag_coalesced.inc();
        viz_telemetry::instant(
            Ev::CrossClientCoalesce,
            key_salt(key),
            (u64::from(owner) << 32) | u64::from(incoming),
        );
    }
}

/// Stable per-key salt decorrelating backoff jitter between hot keys.
fn key_salt(key: BlockKey) -> u64 {
    (u64::from(key.var) << 48) ^ (u64::from(key.time) << 32) ^ u64::from(key.block.0)
}

/// One source read attempt, honoring `cfg.source_timeout`. With a timeout
/// the read runs on the bounded [`IoPool`]: if it outlasts the deadline
/// the worker abandons it (returning `TimedOut`), and the pool thread
/// parks a successful late result straight into the pool so the block is
/// not lost — only late. At most [`FetchConfig::io_threads`] such reads
/// run concurrently; a storm of hung reads queues instead of leaking one
/// thread per read.
fn read_source(s: &Arc<Shared>, key: BlockKey) -> Result<Vec<f32>, FetchError> {
    let Some(limit) = s.cfg.source_timeout else {
        // No timeout: read inline. A panicking source propagates to the
        // worker supervisor / `run_one`, which fails the job's waiters.
        return s.source.read_block(key).map_err(FetchError::from);
    };
    let (tx, rx) = channel::<Result<Vec<f32>, FetchError>>();
    let io_shared = s.clone();
    let submitted = s.io.submit(Box::new(move || {
        let res = catch_unwind(AssertUnwindSafe(|| io_shared.source.read_block(key)));
        let out = match res {
            Ok(Ok(v)) => Ok(v),
            Ok(Err(e)) => Err(FetchError::from(e)),
            Err(p) => Err(panic_error(p.as_ref())),
        };
        if let Err(unsent) = tx.send(out) {
            // The worker timed out and dropped the receiver. Land the
            // payload anyway: the next frame hits the pool instead of
            // re-reading a block we already paid for.
            if let Ok(data) = unsent.0 {
                let _st = lock_state(&io_shared);
                io_shared.pool.insert_arc(key, Arc::new(data));
                io_shared.m.late_arrivals.inc();
                viz_telemetry::instant(Ev::LateArrival, key_salt(key), 0);
            }
        }
    }));
    if !submitted {
        // Pool already shut down (engine stopping): read inline; the
        // shutdown path does not need the timeout guard.
        return s.source.read_block(key).map_err(FetchError::from);
    }
    match rx.recv_timeout(limit) {
        Ok(out) => out,
        Err(RecvTimeoutError::Timeout) => {
            // A result that raced the timeout decision is still a result.
            if let Ok(out) = rx.try_recv() {
                return out;
            }
            drop(rx); // further sends fail; the io thread self-handles
            s.m.timeouts.inc();
            viz_telemetry::instant(Ev::SourceTimeout, key_salt(key), limit.as_nanos() as u64);
            Err(FetchError {
                kind: io::ErrorKind::TimedOut,
                message: format!("source read of {key:?} exceeded {limit:?}; abandoned"),
            })
        }
        Err(RecvTimeoutError::Disconnected) => Err(FetchError {
            kind: io::ErrorKind::Other,
            message: "fetch io pool dropped the read without reporting".into(),
        }),
    }
}

fn engine_shutting_down(s: &Shared) -> bool {
    lock_state(s).shutdown
}

/// Read one block — retrying transient failures per `cfg.retry` — and
/// publish the outcome: pool insert + waiter fan-out happen under the
/// state lock so a concurrent `request` either sees the in-flight entry
/// or the resident block, never neither.
fn service(s: &Arc<Shared>, job: Job) {
    viz_telemetry::with_node(job.node, || {
        viz_telemetry::with_trace(job.trace, || {
            let t0 = Instant::now();
            let res = read_retrying(s, job.key, 0);
            publish_one(s, &job, res, t0);
        })
    });
}

/// Read one key, retrying transient failures per `cfg.retry` starting at
/// 0-based `attempt` (batch dispatch enters at 1: the batched read was
/// the key's first attempt).
fn read_retrying(s: &Arc<Shared>, key: BlockKey, mut attempt: u32) -> Result<Vec<f32>, FetchError> {
    let salt = key_salt(key);
    loop {
        let ta = viz_telemetry::start();
        let r = read_source(s, key);
        viz_telemetry::span(
            Ev::SourceRead,
            salt,
            (u64::from(attempt) << 1) | u64::from(r.is_ok()),
            ta,
        );
        let kind = match &r {
            Ok(_) => return r,
            Err(e) => e.kind,
        };
        if !s.cfg.retry.should_retry(kind, attempt) || engine_shutting_down(s) {
            return r;
        }
        count_retry(s, salt, attempt);
        attempt += 1;
    }
}

/// Count one retry and, in threaded mode, sleep the backoff for 0-based
/// `attempt`.
fn count_retry(s: &Shared, salt: u64, attempt: u32) {
    s.m.retries.inc();
    viz_telemetry::instant(Ev::FetchRetry, salt, u64::from(attempt));
    if s.cfg.workers > 0 {
        let d = s.cfg.retry.backoff(attempt, salt);
        if !d.is_zero() {
            let tb = viz_telemetry::start();
            std::thread::sleep(d);
            viz_telemetry::span(Ev::FetchBackoff, salt, u64::from(attempt), tb);
        }
    }
}

/// Publish one finished read: pool insert + waiter fan-out + terminal
/// counters, all under the state lock (see [`service`]).
fn publish_one(s: &Arc<Shared>, job: &Job, res: Result<Vec<f32>, FetchError>, t0: Instant) {
    let salt = key_salt(job.key);
    let dt_ns = t0.elapsed().as_nanos() as u64;
    let mut st = lock_state(s);
    let waiters = st.inflight.remove(&job.key).map(|i| i.waiters).unwrap_or_default();
    match res {
        Ok(data) => {
            s.breaker.on_success();
            let payload = Arc::new(data);
            s.pool.insert_arc(job.key, payload.clone());
            s.m.completed.inc();
            if job.demand {
                s.m.demand_completed.inc();
            } else {
                s.m.prefetch_completed.inc();
            }
            s.m.lat_sum_ns.add(dt_ns);
            s.m.lat_count.inc();
            s.m.lat_max_ns.max_of(dt_ns);
            s.m.lat_min_ns.min_of(dt_ns);
            viz_telemetry::instant(Ev::PoolInsert, salt, payload.len() as u64);
            if !waiters.is_empty() {
                viz_telemetry::instant(Ev::WaiterWake, salt, waiters.len() as u64);
            }
            for w in waiters {
                let _ = w.send(Ok(payload.clone()));
            }
            viz_telemetry::span_from(Ev::FetchService, salt, 1, t0);
        }
        Err(e) => {
            s.m.errors.inc();
            s.breaker.on_failure(s.cfg.breaker.failure_threshold);
            viz_telemetry::instant(Ev::FetchFail, salt, errkind_code(e.kind));
            for w in waiters {
                let _ = w.send(Err(e.clone()));
            }
            viz_telemetry::span_from(Ev::FetchService, salt, 0, t0);
        }
    }
    notify_if_idle(s, &st);
    drop(st);
    wake_hook(s);
}

/// Service a whole dequeued batch with one grouped source read
/// ([`viz_volume::BlockSource::read_blocks`]), then publish each key
/// independently. A key whose slot failed transiently falls back to the
/// per-key retry path (its batched attempt counts as attempt 0); failures
/// never poison batch siblings. Single-job batches take the plain
/// [`service`] path so one-key dispatch telemetry is unchanged.
fn service_batch(s: &Arc<Shared>, jobs: Vec<Job>) {
    if jobs.len() == 1 {
        let job = jobs.into_iter().next().expect("len checked");
        return service(s, job);
    }
    let t0 = Instant::now();
    let keys: Vec<BlockKey> = jobs.iter().map(|j| j.key).collect();
    let tb = viz_telemetry::start();
    let results = batched_read(s, &keys);
    let all_ok = results.iter().all(|r| r.is_ok());
    viz_telemetry::span(
        Ev::BatchRead,
        key_salt(keys[0]),
        ((keys.len() as u64) << 1) | u64::from(all_ok),
        tb,
    );
    for (job, first) in jobs.into_iter().zip(results) {
        viz_telemetry::with_node(job.node, || {
            viz_telemetry::with_trace(job.trace, || {
                let res = match first {
                    Ok(v) => Ok(v),
                    Err(e) if s.cfg.retry.should_retry(e.kind, 0) && !engine_shutting_down(s) => {
                        count_retry(s, key_salt(job.key), 0);
                        read_retrying(s, job.key, 1)
                    }
                    Err(e) => Err(e),
                };
                publish_one(s, &job, res, t0);
            })
        });
    }
}

/// One batched source read, honoring `cfg.source_timeout` the same way
/// [`read_source`] does: with a timeout the whole batch runs on the
/// bounded [`IoPool`] and is abandoned as a unit at the deadline, with
/// any late-completing payloads still landing in the pool.
fn batched_read(s: &Arc<Shared>, keys: &[BlockKey]) -> Vec<Result<Vec<f32>, FetchError>> {
    let Some(limit) = s.cfg.source_timeout else {
        return s
            .source
            .read_blocks(keys)
            .into_iter()
            .map(|r| r.map_err(FetchError::from))
            .collect();
    };
    let (tx, rx) = channel::<Vec<Result<Vec<f32>, FetchError>>>();
    let io_shared = s.clone();
    let batch: Vec<BlockKey> = keys.to_vec();
    let submitted = s.io.submit(Box::new(move || {
        let res = catch_unwind(AssertUnwindSafe(|| io_shared.source.read_blocks(&batch)));
        let out: Vec<Result<Vec<f32>, FetchError>> = match res {
            Ok(v) => v.into_iter().map(|r| r.map_err(FetchError::from)).collect(),
            Err(p) => {
                let e = panic_error(p.as_ref());
                batch.iter().map(|_| Err(e.clone())).collect()
            }
        };
        if let Err(unsent) = tx.send(out) {
            // The worker abandoned the batch at its deadline. Land every
            // payload that did complete — late, not lost.
            let _st = lock_state(&io_shared);
            for (k, r) in batch.iter().zip(unsent.0) {
                if let Ok(data) = r {
                    io_shared.pool.insert_arc(*k, Arc::new(data));
                    io_shared.m.late_arrivals.inc();
                    viz_telemetry::instant(Ev::LateArrival, key_salt(*k), 0);
                }
            }
        }
    }));
    if !submitted {
        // Pool already shut down (engine stopping): read inline.
        return s
            .source
            .read_blocks(keys)
            .into_iter()
            .map(|r| r.map_err(FetchError::from))
            .collect();
    }
    match rx.recv_timeout(limit) {
        Ok(out) => out,
        Err(RecvTimeoutError::Timeout) => {
            if let Ok(out) = rx.try_recv() {
                return out;
            }
            drop(rx);
            viz_telemetry::instant(Ev::SourceTimeout, key_salt(keys[0]), limit.as_nanos() as u64);
            keys.iter()
                .map(|k| {
                    s.m.timeouts.inc();
                    Err(FetchError {
                        kind: io::ErrorKind::TimedOut,
                        message: format!("batched read of {k:?} exceeded {limit:?}; abandoned"),
                    })
                })
                .collect()
        }
        Err(RecvTimeoutError::Disconnected) => keys
            .iter()
            .map(|_| {
                Err(FetchError {
                    kind: io::ErrorKind::Other,
                    message: "fetch io pool dropped the batch without reporting".into(),
                })
            })
            .collect(),
    }
}

/// Small stable code for [`io::ErrorKind`]s the engine distinguishes, for
/// the `arg` of [`Ev::FetchFail`] events (0 = anything else).
fn errkind_code(kind: io::ErrorKind) -> u64 {
    match kind {
        io::ErrorKind::NotFound => 1,
        io::ErrorKind::InvalidData => 2,
        io::ErrorKind::Interrupted => 3,
        io::ErrorKind::TimedOut => 4,
        io::ErrorKind::WouldBlock => 5,
        _ => 0,
    }
}

/// Fail the waiters of a job whose service panicked, counting the panic
/// as a request failure for the breaker.
fn fail_job_after_panic(s: &Arc<Shared>, key: BlockKey, p: &(dyn Any + Send)) {
    let e = panic_error(p);
    let mut st = lock_state(s);
    let waiters = st.inflight.remove(&key).map(|i| i.waiters).unwrap_or_default();
    s.m.errors.inc();
    viz_telemetry::instant(Ev::WorkerPanic, key_salt(key), 0);
    s.breaker.on_failure(s.cfg.breaker.failure_threshold);
    for w in waiters {
        let _ = w.send(Err(e.clone()));
    }
    notify_if_idle(s, &st);
    drop(st);
    wake_hook(s);
}

fn worker_loop(s: &Arc<Shared>, active: &Mutex<Vec<BlockKey>>) {
    let batch_max = s.cfg.batch_max.max(1);
    let mut st = lock_state(s);
    loop {
        let jobs = try_dequeue_batch(s, &mut st, batch_max);
        if !jobs.is_empty() {
            drop(st);
            *active.lock().unwrap_or_else(PoisonError::into_inner) =
                jobs.iter().map(|j| j.key).collect();
            service_batch(s, jobs);
            active.lock().unwrap_or_else(PoisonError::into_inner).clear();
            st = lock_state(s);
            continue;
        }
        if st.shutdown {
            return;
        }
        st = s.work.wait(st).unwrap_or_else(PoisonError::into_inner);
    }
}

/// Worker supervision: catch a panic anywhere in the worker's loop, fail
/// the in-flight jobs it was holding (so waiters see a [`FetchError`],
/// not a hang), and re-enter the loop — the worker respawns in place and
/// the pool never shrinks. Batch keys already published before the panic
/// are left alone (they are no longer in the in-flight map).
fn supervised_worker(s: &Arc<Shared>) {
    let active: Mutex<Vec<BlockKey>> = Mutex::new(Vec::new());
    loop {
        match catch_unwind(AssertUnwindSafe(|| worker_loop(s, &active))) {
            Ok(()) => return, // clean shutdown
            Err(p) => {
                s.m.worker_panics.inc();
                let keys =
                    std::mem::take(&mut *active.lock().unwrap_or_else(PoisonError::into_inner));
                for key in keys {
                    if lock_state(s).inflight.contains_key(&key) {
                        fail_job_after_panic(s, key, p.as_ref());
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viz_volume::{BlockId, MemBlockStore};

    fn key(i: u32) -> BlockKey {
        BlockKey::scalar(BlockId(i))
    }

    fn store_with(n: u32) -> Arc<MemBlockStore> {
        let s = MemBlockStore::new();
        for i in 0..n {
            s.insert(key(i), vec![i as f32; 8]);
        }
        Arc::new(s)
    }

    #[test]
    fn heap_orders_demand_then_priority_then_fifo() {
        let mut h = BinaryHeap::new();
        h.push(HeapEntry { demand: false, pri: 0.9, seq: 1, stamp: 1, key: key(1) });
        h.push(HeapEntry { demand: false, pri: 0.2, seq: 2, stamp: 2, key: key(2) });
        h.push(HeapEntry { demand: true, pri: 0.0, seq: 3, stamp: 3, key: key(3) });
        h.push(HeapEntry { demand: false, pri: 0.9, seq: 4, stamp: 4, key: key(4) });
        let order: Vec<u32> = std::iter::from_fn(|| h.pop()).map(|e| e.key.block.0).collect();
        assert_eq!(order, vec![3, 1, 4, 2]);
    }

    #[test]
    fn threaded_prefetch_then_sync_makes_resident() {
        let pool = Arc::new(BlockPool::new());
        let eng = FetchEngine::spawn(store_with(32), pool.clone(), FetchConfig::default());
        for i in 0..32 {
            assert!(eng.prefetch(key(i), i as f64));
        }
        eng.sync();
        assert_eq!(pool.len(), 32);
        let m = eng.shutdown();
        assert_eq!(m.completed, 32);
        assert_eq!(m.errors, 0);
        assert_eq!(m.breaker_state, BreakerState::Closed);
        assert!(m.latency_max_s >= m.latency_min_s);
    }

    #[test]
    fn demand_get_blocks_until_payload() {
        let pool = Arc::new(BlockPool::new());
        let eng = FetchEngine::spawn(store_with(4), pool.clone(), FetchConfig::default());
        let p = eng.get(key(2)).unwrap();
        assert_eq!(p.as_slice(), &[2.0f32; 8]);
        // Second get hits the pool without a second read.
        let p2 = eng.get(key(2)).unwrap();
        assert!(Arc::ptr_eq(&p, &p2));
        assert_eq!(eng.metrics().completed, 1);
    }

    #[test]
    fn missing_block_reports_error_to_waiter_only() {
        let pool = Arc::new(BlockPool::new());
        let eng = FetchEngine::spawn(store_with(1), pool.clone(), FetchConfig::default());
        assert!(eng.get(key(0)).is_ok());
        let err = eng.get(key(99)).unwrap_err();
        assert_eq!(err.kind, io::ErrorKind::NotFound);
        assert!(!err.is_transient());
        let m = eng.metrics();
        assert_eq!((m.completed, m.errors), (1, 1));
        assert_eq!(m.retries, 0, "NotFound must fail fast, never retry");
    }

    #[test]
    fn shutdown_unblocks_waiting_tickets() {
        let pool = Arc::new(BlockPool::new());
        // Deterministic engine: nothing services the request.
        let eng = FetchEngine::deterministic(store_with(1), pool);
        let t = eng.request(key(0));
        drop(eng);
        let err = t.wait().unwrap_err();
        assert_eq!(err.kind, io::ErrorKind::Interrupted);
    }

    #[test]
    fn ticket_try_wait_round_trips() {
        let pool = Arc::new(BlockPool::new());
        let eng = FetchEngine::deterministic(store_with(2), pool);
        let t = eng.request(key(1));
        let t = t.try_wait().unwrap_err(); // not serviced yet
        assert_eq!(eng.run_until_idle(), 1);
        let got = t.try_wait().expect("resolved after stepping").unwrap();
        assert_eq!(got.as_slice(), &[1.0f32; 8]);
    }

    #[test]
    fn ticket_wait_timeout_returns_ticket_on_expiry() {
        let pool = Arc::new(BlockPool::new());
        let eng = FetchEngine::deterministic(store_with(1), pool);
        let t = eng.request(key(0));
        let t = t.wait_timeout(Duration::from_millis(5)).unwrap_err();
        eng.run_until_idle();
        let got = t.wait_timeout(Duration::from_millis(5)).expect("resolved").unwrap();
        assert_eq!(got.as_slice(), &[0.0f32; 8]);
    }

    /// Every admitted request must end in exactly one terminal counter
    /// (or still be accounted by the queue/in-flight gauges):
    ///
    /// ```text
    /// demand_requests + prefetch_requests ==
    ///     coalesced + dropped + breaker_rejected_admission
    ///   + completed + cancelled + breaker_rejected_dequeue + errors
    ///   + queue_depth + inflight
    /// ```
    ///
    /// Deterministic scenario exercising all seven terminal outcomes; the
    /// identity is checked at every snapshot, including mid-queue ones.
    #[test]
    fn counters_balance_across_all_outcomes() {
        fn assert_balanced(m: &FetchMetrics) {
            let admitted = m.demand_requests + m.prefetch_requests;
            let settled = m.coalesced
                + m.dropped
                + m.breaker_rejected_admission
                + m.completed
                + m.cancelled
                + m.breaker_rejected_dequeue
                + m.errors
                + m.queue_depth as u64
                + m.inflight as u64;
            assert_eq!(admitted, settled, "unbalanced counters: {m:?}");
        }

        let pool = Arc::new(BlockPool::new());
        let cfg = FetchConfig { queue_cap: 4, ..FetchConfig::deterministic() };
        let eng = FetchEngine::spawn(store_with(16), pool.clone(), cfg);

        // Outcome "dropped": fill the prefetch queue, then overflow it.
        for i in 0..4 {
            assert!(eng.prefetch(key(i), 1.0));
        }
        assert!(!eng.prefetch(key(4), 1.0));
        assert!(!eng.prefetch(key(5), 1.0));
        // Outcome "coalesced": duplicate prefetch of a queued key.
        assert!(eng.prefetch(key(0), 2.0));
        assert_balanced(&eng.metrics());

        // Outcome "cancelled": a camera step voids all queued prefetches.
        eng.bump_generation();
        assert_eq!(eng.run_until_idle(), 0, "stale prefetches must not be serviced");
        let m = eng.metrics();
        assert_eq!(m.cancelled, 4);
        assert_balanced(&m);

        // Outcome "completed": fresh prefetches under the new generation.
        assert!(eng.prefetch(key(0), 1.0));
        assert!(eng.prefetch(key(1), 1.0));
        assert_eq!(eng.run_until_idle(), 2);
        // Resident hits coalesce (demand and prefetch paths).
        assert!(eng.get(key(0)).is_ok());
        assert!(eng.prefetch(key(1), 1.0));
        assert_balanced(&eng.metrics());

        // Outcome "errors", repeated until the breaker opens. Queue one
        // good-generation prefetch *before* the failures so it is still
        // queued when the breaker trips.
        assert!(eng.prefetch(key(2), 1.0));
        let threshold = eng.shared.cfg.breaker.failure_threshold;
        // Distinct missing keys (NotFound fails fast, no retry, no
        // coalescing); demands outrank the queued prefetch, so all
        // failures land before key(2) reaches the front.
        let tickets: Vec<_> = (0..threshold).map(|i| eng.request(key(900 + i))).collect();
        eng.run_until_idle();
        for t in tickets {
            assert!(t.wait().is_err());
        }
        assert_eq!(eng.breaker_state(), BreakerState::Open);
        let m = eng.metrics();
        assert_eq!(m.errors, u64::from(threshold));
        // Outcome "breaker_rejected_dequeue": key(2) was discarded at
        // dequeue while draining the failing demands.
        assert_eq!(m.breaker_rejected_dequeue, 1);
        assert_balanced(&m);

        // Outcome "breaker_rejected_admission": new prefetch while open.
        assert!(!eng.prefetch(key(3), 1.0));
        let m = eng.metrics();
        assert_eq!(m.breaker_rejected_admission, 1);
        assert_eq!(m.breaker_rejected, m.breaker_rejected_admission + m.breaker_rejected_dequeue);
        assert_balanced(&m);

        // All seven outcome classes were exercised.
        assert!(m.coalesced > 0 && m.dropped > 0 && m.cancelled > 0);
        assert!(m.completed > 0 && m.errors > 0);
        eng.sync();
        assert_balanced(&eng.metrics());
    }

    #[test]
    fn cross_tag_coalescing_is_counted_per_owner() {
        let pool = Arc::new(BlockPool::new());
        let eng = FetchEngine::deterministic(store_with(8), pool.clone());

        // Session 1 queues the read; session 2 and an untagged caller pile
        // on. Only the differing-tag merges count as cross-tag saves.
        let t1 = eng.request_tagged(key(0), 1);
        let t2 = eng.request_tagged(key(0), 2); // cross (1 → 2)
        assert!(eng.prefetch_tagged(key(0), 0.5, 1)); // same tag: not cross
        assert!(eng.prefetch_tagged(key(0), 0.5, 7)); // cross (1 → 7)
        let m = eng.metrics();
        assert_eq!(m.coalesced, 3);
        assert_eq!(m.cross_tag_coalesced, 2);

        // Per-class gauges: one demand queued, plus two tagged prefetches.
        assert!(eng.prefetch_tagged(key(1), 0.9, 2));
        assert!(eng.prefetch_tagged(key(2), 0.1, 1));
        assert_eq!(eng.queue_depths(), (1, 2));
        let m = eng.metrics();
        assert_eq!((m.queue_depth_demand, m.queue_depth_prefetch), (1, 2));
        assert_eq!(m.queue_depth, m.queue_depth_demand + m.queue_depth_prefetch);

        assert_eq!(eng.run_until_idle(), 3);
        assert_eq!(eng.queue_depths(), (0, 0));
        let a = t1.wait().unwrap();
        let b = t2.wait().unwrap();
        assert!(Arc::ptr_eq(&a, &b), "both sessions share one payload");
        assert_eq!(eng.metrics().completed, 3, "the shared key was read once");
    }

    #[test]
    fn timed_read_storm_spawns_bounded_io_threads() {
        /// Every read hangs long past the timeout: the worst case that
        /// used to spawn one sacrificial thread per read.
        struct HangingSource;
        impl viz_volume::BlockSource for HangingSource {
            fn read_block(&self, _key: BlockKey) -> io::Result<Vec<f32>> {
                std::thread::sleep(Duration::from_millis(100));
                Err(io::Error::new(io::ErrorKind::NotFound, "hung source"))
            }
            fn block_bytes(&self, _key: BlockKey) -> io::Result<usize> {
                Ok(0)
            }
        }
        let pool = Arc::new(BlockPool::new());
        let cfg = FetchConfig {
            workers: 4,
            source_timeout: Some(Duration::from_millis(2)),
            retry: RetryPolicy::none(),
            io_threads: 2,
            ..FetchConfig::default()
        };
        let eng = FetchEngine::spawn(Arc::new(HangingSource), pool, cfg);
        let tickets: Vec<_> = (0..16).map(|i| eng.request(key(i))).collect();
        for t in tickets {
            assert_eq!(t.wait().unwrap_err().kind, io::ErrorKind::TimedOut);
        }
        let m = eng.metrics();
        assert!(m.timeouts >= 16, "every read should have been abandoned: {m:?}");
        assert!(
            m.io_threads_spawned <= 2,
            "storm leaked past the io_threads cap: {}",
            m.io_threads_spawned
        );
    }

    #[test]
    fn get_deadline_times_out_and_counts_a_miss() {
        let pool = Arc::new(BlockPool::new());
        // Deterministic: nothing will service the read within the deadline.
        let eng = FetchEngine::deterministic(store_with(1), pool);
        let err = eng.get_deadline(key(0), Duration::from_millis(5)).unwrap_err();
        assert_eq!(err.kind, io::ErrorKind::TimedOut);
        assert_eq!(eng.metrics().deadline_misses, 1);
        // The abandoned read is still queued; servicing it lands the block.
        assert_eq!(eng.run_until_idle(), 1);
        assert!(eng.pool().contains(key(0)));
    }

    #[test]
    fn wait_until_and_get_until_honor_absolute_deadlines() {
        let pool = Arc::new(BlockPool::new());
        let eng = FetchEngine::deterministic(store_with(2), pool);
        let t = eng.request(key(0));
        let past = Instant::now();
        let t = t.wait_until(past).unwrap_err(); // already expired
        let err = eng.get_until(key(1), past).unwrap_err();
        assert_eq!(err.kind, io::ErrorKind::TimedOut);
        assert_eq!(eng.metrics().deadline_misses, 1);
        eng.run_until_idle();
        let got = t
            .wait_until(Instant::now() + Duration::from_millis(100))
            .expect("resolved after stepping")
            .unwrap();
        assert_eq!(got.as_slice(), &[0.0f32; 8]);
        assert!(eng.pool().contains(key(1)), "missed read still landed");
    }

    #[test]
    fn batch_admission_matches_per_key_semantics() {
        let pool = Arc::new(BlockPool::new());
        let cfg = FetchConfig { queue_cap: 4, ..FetchConfig::deterministic() };
        let eng = FetchEngine::spawn(store_with(16), pool.clone(), cfg);
        // 6 fresh keys against cap 4: first 4 queue, last 2 drop.
        let items: Vec<(BlockKey, f64)> = (0..6).map(|i| (key(i), f64::from(i))).collect();
        assert_eq!(eng.prefetch_batch(&items), 4);
        let m = eng.metrics();
        assert_eq!(m.dropped, 2);
        assert_eq!(m.queue_depth_prefetch, 4);
        // Re-submitting queued keys coalesces; the upgrade takes effect.
        assert_eq!(eng.prefetch_batch(&[(key(0), 9.0), (key(1), 0.0)]), 2);
        assert_eq!(eng.metrics().coalesced, 2);
        assert_eq!(eng.run_one(), Some(key(0)), "upgraded key dispatches first");
        eng.run_until_idle();
        assert_eq!(pool.len(), 4);
    }

    #[test]
    fn run_batch_groups_prefetches_and_isolates_failures() {
        let pool = Arc::new(BlockPool::new());
        let cfg = FetchConfig { batch_max: 4, ..FetchConfig::deterministic() };
        let eng = FetchEngine::spawn(store_with(8), pool.clone(), cfg);
        for i in 0..5 {
            assert!(eng.prefetch(key(i), 1.0));
        }
        assert!(eng.prefetch(key(99), 0.5)); // missing from the store
        assert_eq!(eng.run_batch().len(), 4);
        assert_eq!(eng.run_batch().len(), 2);
        assert!(eng.run_batch().is_empty());
        let m = eng.metrics();
        assert_eq!(m.completed, 5);
        assert_eq!(m.errors, 1, "missing key fails without poisoning batch siblings");
        assert_eq!(m.retries, 0, "NotFound in a batch must fail fast");
        assert_eq!(pool.len(), 5);
    }

    #[test]
    fn demand_dispatches_solo_even_with_batching() {
        let cfg = FetchConfig { batch_max: 8, ..FetchConfig::deterministic() };
        let eng = FetchEngine::spawn(store_with(8), Arc::new(BlockPool::new()), cfg);
        for i in 0..4 {
            assert!(eng.prefetch(key(i), 1.0));
        }
        let t = eng.request(key(7));
        assert_eq!(eng.run_batch(), vec![key(7)], "demand outranks and dispatches alone");
        assert_eq!(eng.run_batch().len(), 4);
        assert!(t.wait().is_ok());
    }
}
