//! The fetch engine: priority scheduling, coalescing, cancellation.
//!
//! A [`FetchEngine`] owns a binary heap of requests drained by a pool of
//! worker threads (or stepped inline in deterministic mode). Scheduling
//! order is: demand fetches first (the renderer is stalled on them), then
//! prefetches by descending priority (callers pass `T_important` entropy),
//! FIFO among equals. Concurrent requests for one key coalesce onto a
//! single read; queued prefetches whose generation predates the current
//! camera step are cancelled at dequeue without touching the source.

use crate::pool::BlockPool;
use std::cmp::Ordering as CmpOrdering;
use std::collections::{BinaryHeap, HashMap};
use std::fmt;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;
use viz_volume::{BlockKey, BlockSource};

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct FetchConfig {
    /// Worker threads. `0` selects deterministic mode: nothing runs until
    /// the caller steps the scheduler with [`FetchEngine::run_one`] /
    /// [`FetchEngine::run_until_idle`] on its own thread.
    pub workers: usize,
    /// Maximum queued *prefetch* requests; beyond it new prefetches are
    /// dropped (counted in [`FetchMetrics::dropped`]). Demand fetches are
    /// never dropped.
    pub queue_cap: usize,
}

impl Default for FetchConfig {
    fn default() -> Self {
        FetchConfig { workers: 4, queue_cap: 4096 }
    }
}

/// Cloneable fetch failure. `io::Error` is not `Clone`, but a coalesced
/// read has many waiters and each needs a copy of the outcome.
#[derive(Debug, Clone)]
pub struct FetchError {
    /// The underlying `io::ErrorKind`.
    pub kind: io::ErrorKind,
    /// Human-readable context.
    pub message: String,
}

impl fmt::Display for FetchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fetch failed ({:?}): {}", self.kind, self.message)
    }
}

impl std::error::Error for FetchError {}

impl From<io::Error> for FetchError {
    fn from(e: io::Error) -> Self {
        FetchError { kind: e.kind(), message: e.to_string() }
    }
}

impl From<FetchError> for io::Error {
    fn from(e: FetchError) -> Self {
        io::Error::new(e.kind, e.message)
    }
}

fn shutdown_error() -> FetchError {
    FetchError { kind: io::ErrorKind::Interrupted, message: "fetch engine shut down".into() }
}

type Payload = Arc<Vec<f32>>;
type FetchResult = Result<Payload, FetchError>;

/// Handle to one demand fetch. Resolves exactly once, via [`Ticket::wait`]
/// or a successful [`Ticket::try_wait`].
#[derive(Debug)]
pub struct Ticket(TicketInner);

#[derive(Debug)]
enum TicketInner {
    Ready(FetchResult),
    Waiting(Receiver<FetchResult>),
}

impl Ticket {
    /// Block until the fetch completes. If the engine shuts down first,
    /// returns an [`io::ErrorKind::Interrupted`]-kinded error.
    pub fn wait(self) -> FetchResult {
        match self.0 {
            TicketInner::Ready(r) => r,
            TicketInner::Waiting(rx) => rx.recv().unwrap_or_else(|_| Err(shutdown_error())),
        }
    }

    /// Non-blocking poll: `Ok(result)` once resolved, `Err(self)` while the
    /// fetch is still in flight (deterministic mode: step the engine, then
    /// poll again).
    pub fn try_wait(self) -> Result<FetchResult, Ticket> {
        match self.0 {
            TicketInner::Ready(r) => Ok(r),
            TicketInner::Waiting(rx) => match rx.try_recv() {
                Ok(r) => Ok(r),
                Err(TryRecvError::Disconnected) => Ok(Err(shutdown_error())),
                Err(TryRecvError::Empty) => Err(Ticket(TicketInner::Waiting(rx))),
            },
        }
    }
}

/// Heap node. `stamp` pairs it with the live [`Pending`] entry: priority
/// upgrades push a fresh node and re-stamp the entry, so superseded nodes
/// are recognized and skipped at dequeue (lazy deletion).
#[derive(Debug)]
struct HeapEntry {
    demand: bool,
    pri: f64,
    seq: u64,
    stamp: u64,
    key: BlockKey,
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        self.demand
            .cmp(&other.demand)
            .then(self.pri.total_cmp(&other.pri))
            .then(other.seq.cmp(&self.seq)) // earlier request wins ties
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == CmpOrdering::Equal
    }
}

impl Eq for HeapEntry {}

/// One logical queued request per key (coalescing happens at enqueue).
struct Pending {
    demand: bool,
    pri: f64,
    gen: u64,
    stamp: u64,
    waiters: Vec<Sender<FetchResult>>,
}

struct State {
    heap: BinaryHeap<HeapEntry>,
    pending: HashMap<BlockKey, Pending>,
    inflight: HashMap<BlockKey, Vec<Sender<FetchResult>>>,
    pending_prefetch: usize,
    seq: u64,
    stamp: u64,
    shutdown: bool,
}

struct Counters {
    demand_requests: AtomicU64,
    prefetch_requests: AtomicU64,
    coalesced: AtomicU64,
    dropped: AtomicU64,
    cancelled: AtomicU64,
    completed: AtomicU64,
    demand_completed: AtomicU64,
    prefetch_completed: AtomicU64,
    errors: AtomicU64,
    lat_sum_ns: AtomicU64,
    /// `u64::MAX` until the first read completes.
    lat_min_ns: AtomicU64,
    lat_max_ns: AtomicU64,
    lat_count: AtomicU64,
}

impl Default for Counters {
    fn default() -> Self {
        Counters {
            demand_requests: AtomicU64::new(0),
            prefetch_requests: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            demand_completed: AtomicU64::new(0),
            prefetch_completed: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            lat_sum_ns: AtomicU64::new(0),
            lat_min_ns: AtomicU64::new(u64::MAX),
            lat_max_ns: AtomicU64::new(0),
            lat_count: AtomicU64::new(0),
        }
    }
}

struct Shared {
    state: Mutex<State>,
    work: Condvar,
    idle: Condvar,
    source: Arc<dyn BlockSource>,
    pool: Arc<BlockPool>,
    generation: AtomicU64,
    cfg: FetchConfig,
    m: Counters,
}

/// Point-in-time engine statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FetchMetrics {
    /// Demand (`request`/`get`) calls.
    pub demand_requests: u64,
    /// `prefetch` calls.
    pub prefetch_requests: u64,
    /// Requests merged onto an existing result (resident block), queue
    /// entry, or in-flight read instead of issuing their own.
    pub coalesced: u64,
    /// Prefetches rejected because the queue was at `queue_cap`.
    pub dropped: u64,
    /// Stale-generation prefetches discarded at dequeue (source untouched).
    pub cancelled: u64,
    /// Reads that completed successfully.
    pub completed: u64,
    /// Of `completed`, how many were demand fetches.
    pub demand_completed: u64,
    /// Of `completed`, how many were prefetches.
    pub prefetch_completed: u64,
    /// Reads that failed at the source.
    pub errors: u64,
    /// Requests currently queued (gauge).
    pub queue_depth: usize,
    /// Reads currently in flight (gauge).
    pub inflight: usize,
    /// Current cancellation generation.
    pub generation: u64,
    /// Fastest successful read, seconds (0 if none).
    pub latency_min_s: f64,
    /// Mean successful read, seconds (0 if none).
    pub latency_mean_s: f64,
    /// Slowest successful read, seconds (0 if none).
    pub latency_max_s: f64,
}

/// Multi-worker block-fetch engine over a [`BlockSource`]. See the crate
/// docs for the scheduling/coalescing/cancellation contract.
pub struct FetchEngine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

struct Job {
    key: BlockKey,
    demand: bool,
}

impl FetchEngine {
    /// Start an engine. `cfg.workers == 0` selects deterministic mode.
    pub fn spawn(source: Arc<dyn BlockSource>, pool: Arc<BlockPool>, cfg: FetchConfig) -> Self {
        assert!(cfg.queue_cap > 0, "queue_cap must be positive");
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                heap: BinaryHeap::new(),
                pending: HashMap::new(),
                inflight: HashMap::new(),
                pending_prefetch: 0,
                seq: 0,
                stamp: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            idle: Condvar::new(),
            source,
            pool,
            generation: AtomicU64::new(0),
            cfg,
            m: Counters::default(),
        });
        let workers = (0..cfg.workers)
            .map(|i| {
                let s = shared.clone();
                std::thread::Builder::new()
                    .name(format!("viz-fetch-{i}"))
                    .spawn(move || worker_loop(&s))
                    .expect("failed to spawn fetch worker")
            })
            .collect();
        FetchEngine { shared, workers }
    }

    /// Deterministic single-stepped engine (no threads, unbounded queue).
    pub fn deterministic(source: Arc<dyn BlockSource>, pool: Arc<BlockPool>) -> Self {
        Self::spawn(source, pool, FetchConfig { workers: 0, queue_cap: usize::MAX >> 1 })
    }

    /// The resident pool this engine fills.
    pub fn pool(&self) -> &Arc<BlockPool> {
        &self.shared.pool
    }

    /// Queue a background load of `key` at `priority` (higher = sooner;
    /// callers pass `T_important` entropy). Returns `false` only when the
    /// request was dropped: queue at capacity, or engine shutting down.
    /// Requests for resident, queued, or in-flight keys coalesce and
    /// return `true`.
    pub fn prefetch(&self, key: BlockKey, priority: f64) -> bool {
        let s = &*self.shared;
        s.m.prefetch_requests.fetch_add(1, Ordering::Relaxed);
        if s.pool.contains(key) {
            s.m.coalesced.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        let mut st = s.state.lock().unwrap();
        if st.shutdown {
            s.m.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        // Re-check under the lock: completions insert into the pool while
        // holding it, so the miss above may have landed just before we got
        // in — re-enqueueing would read the key a second time.
        if s.pool.contains(key) {
            s.m.coalesced.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        if st.inflight.contains_key(&key) {
            s.m.coalesced.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        let gen = s.generation.load(Ordering::Relaxed);
        if st.pending.contains_key(&key) {
            s.m.coalesced.fetch_add(1, Ordering::Relaxed);
            st.seq += 1;
            st.stamp += 1;
            let (seq, stamp) = (st.seq, st.stamp);
            let p = st.pending.get_mut(&key).unwrap();
            // Re-requested now: wanted by the current generation even if it
            // was first queued before a camera step.
            p.gen = gen;
            if !p.demand && priority > p.pri {
                p.pri = priority;
                p.stamp = stamp;
                st.heap.push(HeapEntry { demand: false, pri: priority, seq, stamp, key });
                drop(st);
                s.work.notify_one();
            }
            return true;
        }
        if st.pending_prefetch >= s.cfg.queue_cap {
            s.m.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        st.seq += 1;
        st.stamp += 1;
        let (seq, stamp) = (st.seq, st.stamp);
        st.pending
            .insert(key, Pending { demand: false, pri: priority, gen, stamp, waiters: Vec::new() });
        st.pending_prefetch += 1;
        st.heap.push(HeapEntry { demand: false, pri: priority, seq, stamp, key });
        drop(st);
        s.work.notify_one();
        true
    }

    /// Demand-fetch `key`: resident blocks resolve immediately; otherwise
    /// the request jumps every queued prefetch (upgrading one already
    /// queued for this key) and the [`Ticket`] resolves when the read
    /// lands. Demand fetches are never dropped or cancelled.
    pub fn request(&self, key: BlockKey) -> Ticket {
        let s = &*self.shared;
        s.m.demand_requests.fetch_add(1, Ordering::Relaxed);
        if let Some(p) = s.pool.get(key) {
            s.m.coalesced.fetch_add(1, Ordering::Relaxed);
            return Ticket(TicketInner::Ready(Ok(p)));
        }
        let mut st = s.state.lock().unwrap();
        // Re-check under the lock: completions insert into the pool while
        // holding it, so a miss above may have landed just before we got in.
        if let Some(p) = s.pool.get(key) {
            s.m.coalesced.fetch_add(1, Ordering::Relaxed);
            return Ticket(TicketInner::Ready(Ok(p)));
        }
        if st.shutdown {
            return Ticket(TicketInner::Ready(Err(shutdown_error())));
        }
        let (tx, rx) = channel();
        if let Some(waiters) = st.inflight.get_mut(&key) {
            s.m.coalesced.fetch_add(1, Ordering::Relaxed);
            waiters.push(tx);
            return Ticket(TicketInner::Waiting(rx));
        }
        if st.pending.contains_key(&key) {
            s.m.coalesced.fetch_add(1, Ordering::Relaxed);
            st.seq += 1;
            st.stamp += 1;
            let (seq, stamp) = (st.seq, st.stamp);
            let p = st.pending.get_mut(&key).unwrap();
            p.waiters.push(tx);
            if !p.demand {
                p.demand = true;
                p.stamp = stamp;
                let pri = p.pri;
                st.pending_prefetch -= 1;
                st.heap.push(HeapEntry { demand: true, pri, seq, stamp, key });
                drop(st);
                s.work.notify_one();
            }
            return Ticket(TicketInner::Waiting(rx));
        }
        let gen = s.generation.load(Ordering::Relaxed);
        st.seq += 1;
        st.stamp += 1;
        let (seq, stamp) = (st.seq, st.stamp);
        st.pending.insert(key, Pending { demand: true, pri: 0.0, gen, stamp, waiters: vec![tx] });
        st.heap.push(HeapEntry { demand: true, pri: 0.0, seq, stamp, key });
        drop(st);
        s.work.notify_one();
        Ticket(TicketInner::Waiting(rx))
    }

    /// Blocking demand fetch: `request(key).wait()`. Do not call in
    /// deterministic mode (no worker will ever service it — use
    /// [`Self::request`] + [`Self::run_until_idle`] there).
    pub fn get(&self, key: BlockKey) -> FetchResult {
        self.request(key).wait()
    }

    /// Advance the cancellation generation (call once per camera step).
    /// Prefetches queued under earlier generations and not re-requested
    /// since are dropped at dequeue. Returns the new generation.
    pub fn bump_generation(&self) -> u64 {
        self.shared.generation.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Current cancellation generation.
    pub fn generation(&self) -> u64 {
        self.shared.generation.load(Ordering::Relaxed)
    }

    /// Wait until every queued and in-flight request has been serviced,
    /// cancelled, or dropped. In deterministic mode this steps the
    /// scheduler to idle on the calling thread.
    pub fn sync(&self) {
        if self.shared.cfg.workers == 0 {
            self.run_until_idle();
            return;
        }
        let s = &*self.shared;
        let mut st = s.state.lock().unwrap();
        while !(st.pending.is_empty() && st.inflight.is_empty()) {
            st = s.idle.wait(st).unwrap();
        }
    }

    /// Deterministic mode: dequeue and service the single highest-priority
    /// runnable request on the calling thread. Stale-generation prefetches
    /// encountered on the way are cancelled (and not counted as serviced).
    /// Returns the serviced key, or `None` when the queue is idle.
    pub fn run_one(&self) -> Option<BlockKey> {
        let s = &*self.shared;
        let job = {
            let mut st = s.state.lock().unwrap();
            try_dequeue(s, &mut st)
        }?;
        let key = job.key;
        service(s, job);
        Some(key)
    }

    /// Deterministic mode: run until the queue drains; returns how many
    /// requests were serviced (cancelled ones don't count).
    pub fn run_until_idle(&self) -> usize {
        let mut n = 0;
        while self.run_one().is_some() {
            n += 1;
        }
        n
    }

    /// Requests currently queued (logical entries, not stale heap nodes).
    pub fn queue_depth(&self) -> usize {
        self.shared.state.lock().unwrap().pending.len()
    }

    /// Snapshot the engine metrics.
    pub fn metrics(&self) -> FetchMetrics {
        let s = &*self.shared;
        let (queue_depth, inflight) = {
            let st = s.state.lock().unwrap();
            (st.pending.len(), st.inflight.len())
        };
        let count = s.m.lat_count.load(Ordering::Relaxed);
        let (min, mean, max) = if count == 0 {
            (0.0, 0.0, 0.0)
        } else {
            (
                s.m.lat_min_ns.load(Ordering::Relaxed) as f64 * 1e-9,
                s.m.lat_sum_ns.load(Ordering::Relaxed) as f64 * 1e-9 / count as f64,
                s.m.lat_max_ns.load(Ordering::Relaxed) as f64 * 1e-9,
            )
        };
        FetchMetrics {
            demand_requests: s.m.demand_requests.load(Ordering::Relaxed),
            prefetch_requests: s.m.prefetch_requests.load(Ordering::Relaxed),
            coalesced: s.m.coalesced.load(Ordering::Relaxed),
            dropped: s.m.dropped.load(Ordering::Relaxed),
            cancelled: s.m.cancelled.load(Ordering::Relaxed),
            completed: s.m.completed.load(Ordering::Relaxed),
            demand_completed: s.m.demand_completed.load(Ordering::Relaxed),
            prefetch_completed: s.m.prefetch_completed.load(Ordering::Relaxed),
            errors: s.m.errors.load(Ordering::Relaxed),
            queue_depth,
            inflight,
            generation: s.generation.load(Ordering::Relaxed),
            latency_min_s: min,
            latency_mean_s: mean,
            latency_max_s: max,
        }
    }

    /// Stop the workers (queued requests are abandoned; waiting tickets
    /// resolve with an `Interrupted` error) and return final metrics.
    /// Call [`Self::sync`] first to drain instead.
    pub fn shutdown(mut self) -> FetchMetrics {
        self.stop_workers();
        self.metrics()
    }

    fn stop_workers(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            if st.shutdown {
                return;
            }
            st.shutdown = true;
            // Abandoned demand waiters unblock via sender drop.
            st.pending.clear();
            st.pending_prefetch = 0;
            st.heap.clear();
        }
        self.shared.work.notify_all();
        self.shared.idle.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for FetchEngine {
    fn drop(&mut self) {
        self.stop_workers();
    }
}

impl fmt::Debug for FetchEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FetchEngine")
            .field("cfg", &self.shared.cfg)
            .field("metrics", &self.metrics())
            .finish()
    }
}

/// Pop the next runnable job, discarding stale heap nodes (superseded by a
/// priority upgrade) and cancelling stale-generation prefetches.
fn try_dequeue(s: &Shared, st: &mut MutexGuard<'_, State>) -> Option<Job> {
    while let Some(e) = st.heap.pop() {
        let live = st.pending.get(&e.key).is_some_and(|p| p.stamp == e.stamp);
        if !live {
            continue;
        }
        let p = st.pending.remove(&e.key).unwrap();
        if !p.demand {
            st.pending_prefetch -= 1;
            if p.gen < s.generation.load(Ordering::Relaxed) {
                // The camera moved on; this prediction is void. The source
                // is never touched. Demand fetches never take this branch.
                s.m.cancelled.fetch_add(1, Ordering::Relaxed);
                notify_if_idle(s, st);
                continue;
            }
        }
        st.inflight.insert(e.key, p.waiters);
        return Some(Job { key: e.key, demand: p.demand });
    }
    None
}

fn notify_if_idle(s: &Shared, st: &MutexGuard<'_, State>) {
    if st.pending.is_empty() && st.inflight.is_empty() {
        s.idle.notify_all();
    }
}

/// Read one block and publish the outcome: pool insert + waiter fan-out
/// happen under the state lock so a concurrent `request` either sees the
/// in-flight entry or the resident block, never neither.
fn service(s: &Shared, job: Job) {
    let t0 = Instant::now();
    let res = s.source.read_block(job.key);
    let dt_ns = t0.elapsed().as_nanos() as u64;
    let mut st = s.state.lock().unwrap();
    let waiters = st.inflight.remove(&job.key).unwrap_or_default();
    match res {
        Ok(data) => {
            let payload = Arc::new(data);
            s.pool.insert_arc(job.key, payload.clone());
            s.m.completed.fetch_add(1, Ordering::Relaxed);
            if job.demand {
                s.m.demand_completed.fetch_add(1, Ordering::Relaxed);
            } else {
                s.m.prefetch_completed.fetch_add(1, Ordering::Relaxed);
            }
            s.m.lat_sum_ns.fetch_add(dt_ns, Ordering::Relaxed);
            s.m.lat_count.fetch_add(1, Ordering::Relaxed);
            s.m.lat_max_ns.fetch_max(dt_ns, Ordering::Relaxed);
            s.m.lat_min_ns.fetch_min(dt_ns, Ordering::Relaxed);
            for w in waiters {
                let _ = w.send(Ok(payload.clone()));
            }
        }
        Err(e) => {
            s.m.errors.fetch_add(1, Ordering::Relaxed);
            let fe = FetchError::from(e);
            for w in waiters {
                let _ = w.send(Err(fe.clone()));
            }
        }
    }
    notify_if_idle(s, &st);
}

fn worker_loop(s: &Shared) {
    let mut st = s.state.lock().unwrap();
    loop {
        if let Some(job) = try_dequeue(s, &mut st) {
            drop(st);
            service(s, job);
            st = s.state.lock().unwrap();
            continue;
        }
        if st.shutdown {
            return;
        }
        st = s.work.wait(st).unwrap();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viz_volume::{BlockId, MemBlockStore};

    fn key(i: u32) -> BlockKey {
        BlockKey::scalar(BlockId(i))
    }

    fn store_with(n: u32) -> Arc<MemBlockStore> {
        let s = MemBlockStore::new();
        for i in 0..n {
            s.insert(key(i), vec![i as f32; 8]);
        }
        Arc::new(s)
    }

    #[test]
    fn heap_orders_demand_then_priority_then_fifo() {
        let mut h = BinaryHeap::new();
        h.push(HeapEntry { demand: false, pri: 0.9, seq: 1, stamp: 1, key: key(1) });
        h.push(HeapEntry { demand: false, pri: 0.2, seq: 2, stamp: 2, key: key(2) });
        h.push(HeapEntry { demand: true, pri: 0.0, seq: 3, stamp: 3, key: key(3) });
        h.push(HeapEntry { demand: false, pri: 0.9, seq: 4, stamp: 4, key: key(4) });
        let order: Vec<u32> = std::iter::from_fn(|| h.pop()).map(|e| e.key.block.0).collect();
        assert_eq!(order, vec![3, 1, 4, 2]);
    }

    #[test]
    fn threaded_prefetch_then_sync_makes_resident() {
        let pool = Arc::new(BlockPool::new());
        let eng = FetchEngine::spawn(store_with(32), pool.clone(), FetchConfig::default());
        for i in 0..32 {
            assert!(eng.prefetch(key(i), i as f64));
        }
        eng.sync();
        assert_eq!(pool.len(), 32);
        let m = eng.shutdown();
        assert_eq!(m.completed, 32);
        assert_eq!(m.errors, 0);
        assert!(m.latency_max_s >= m.latency_min_s);
    }

    #[test]
    fn demand_get_blocks_until_payload() {
        let pool = Arc::new(BlockPool::new());
        let eng = FetchEngine::spawn(store_with(4), pool.clone(), FetchConfig::default());
        let p = eng.get(key(2)).unwrap();
        assert_eq!(p.as_slice(), &[2.0f32; 8]);
        // Second get hits the pool without a second read.
        let p2 = eng.get(key(2)).unwrap();
        assert!(Arc::ptr_eq(&p, &p2));
        assert_eq!(eng.metrics().completed, 1);
    }

    #[test]
    fn missing_block_reports_error_to_waiter_only() {
        let pool = Arc::new(BlockPool::new());
        let eng = FetchEngine::spawn(store_with(1), pool.clone(), FetchConfig::default());
        assert!(eng.get(key(0)).is_ok());
        let err = eng.get(key(99)).unwrap_err();
        assert_eq!(err.kind, io::ErrorKind::NotFound);
        let m = eng.metrics();
        assert_eq!((m.completed, m.errors), (1, 1));
    }

    #[test]
    fn shutdown_unblocks_waiting_tickets() {
        let pool = Arc::new(BlockPool::new());
        // Deterministic engine: nothing services the request.
        let eng = FetchEngine::deterministic(store_with(1), pool);
        let t = eng.request(key(0));
        drop(eng);
        let err = t.wait().unwrap_err();
        assert_eq!(err.kind, io::ErrorKind::Interrupted);
    }

    #[test]
    fn ticket_try_wait_round_trips() {
        let pool = Arc::new(BlockPool::new());
        let eng = FetchEngine::deterministic(store_with(2), pool);
        let t = eng.request(key(1));
        let t = t.try_wait().unwrap_err(); // not serviced yet
        assert_eq!(eng.run_until_idle(), 1);
        let got = t.try_wait().expect("resolved after stepping").unwrap();
        assert_eq!(got.as_slice(), &[1.0f32; 8]);
    }
}
