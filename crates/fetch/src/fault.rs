//! Deterministic fault injection for the fetch path.
//!
//! [`FaultInjectingSource`] wraps any [`BlockSource`] and perturbs reads
//! three ways, all reproducible from a seed:
//!
//! - **Random faults** — each read rolls a seeded RNG against
//!   [`FaultConfig::error_rate`] (fail with a kind drawn from the
//!   weighted [`FaultConfig::kinds`] mix) and
//!   [`FaultConfig::spike_rate`] (sleep [`FaultConfig::spike`] before
//!   succeeding, modeling a latency spike on a loaded tier).
//! - **Per-key scripts** — [`script_fail`](FaultInjectingSource::script_fail)
//!   queues "fail N times with this kind, then succeed" (the classic
//!   retry-to-success scenario); [`script_delay`](FaultInjectingSource::script_delay)
//!   queues one slow read (for hung-read/timeout tests). Scripted faults
//!   take precedence over the random roll and are consumed in order.
//! - **Outage** — [`set_outage`](FaultInjectingSource::set_outage) fails
//!   *every* read with one kind until cleared, driving circuit-breaker
//!   open/half-open/closed transitions deterministically.
//!
//! The RNG is one [`splitmix64`](crate::retry) stream stepped per read,
//! so with a single consumer (deterministic engine mode, or one worker)
//! the fault sequence is exactly reproducible; with many workers the
//! *set* of faults stays seed-determined even though interleaving varies.

use crate::retry::splitmix64;
use std::collections::{HashMap, VecDeque};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;
use viz_volume::{BlockKey, BlockSource};

/// Randomized fault mix applied to every read (scripts override it).
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// RNG seed; same seed, same fault sequence.
    pub seed: u64,
    /// Probability in `[0, 1]` that a read fails.
    pub error_rate: f64,
    /// Weighted error-kind mix drawn from on an injected failure.
    pub kinds: Vec<(io::ErrorKind, f64)>,
    /// Probability in `[0, 1]` that a read sleeps `spike` first.
    pub spike_rate: f64,
    /// Latency-spike duration.
    pub spike: Duration,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0x000F_A017,
            error_rate: 0.0,
            kinds: vec![
                (io::ErrorKind::Interrupted, 0.5),
                (io::ErrorKind::TimedOut, 0.3),
                (io::ErrorKind::WouldBlock, 0.2),
            ],
            spike_rate: 0.0,
            spike: Duration::ZERO,
        }
    }
}

impl FaultConfig {
    /// The acceptance-criteria fault storm: 10% transient errors (default
    /// kind mix) and 5% latency spikes of 500 µs.
    pub fn storm(seed: u64) -> Self {
        FaultConfig {
            seed,
            error_rate: 0.10,
            spike_rate: 0.05,
            spike: Duration::from_micros(500),
            ..Default::default()
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Fault {
    Error(io::ErrorKind),
    Delay(Duration),
}

/// A [`BlockSource`] wrapper injecting seeded faults; see module docs.
pub struct FaultInjectingSource {
    inner: Arc<dyn BlockSource>,
    cfg: FaultConfig,
    rng: Mutex<u64>,
    scripts: Mutex<HashMap<BlockKey, VecDeque<Fault>>>,
    outage: Mutex<Option<io::ErrorKind>>,
    reads: AtomicU64,
    injected_errors: AtomicU64,
    injected_spikes: AtomicU64,
}

impl FaultInjectingSource {
    /// Wrap `inner` with the given fault mix.
    pub fn new(inner: Arc<dyn BlockSource>, cfg: FaultConfig) -> Self {
        let rng = Mutex::new(splitmix64(cfg.seed));
        FaultInjectingSource {
            inner,
            cfg,
            rng,
            scripts: Mutex::new(HashMap::new()),
            outage: Mutex::new(None),
            reads: AtomicU64::new(0),
            injected_errors: AtomicU64::new(0),
            injected_spikes: AtomicU64::new(0),
        }
    }

    /// Wrap `inner` with no random faults (scripts and outages only).
    pub fn healthy(inner: Arc<dyn BlockSource>) -> Self {
        Self::new(inner, FaultConfig::default())
    }

    /// Script the next `n` reads of `key` to fail with `kind`, after which
    /// reads pass through (N-then-succeed).
    pub fn script_fail(&self, key: BlockKey, n: u32, kind: io::ErrorKind) {
        let mut scripts = self.scripts.lock().unwrap_or_else(PoisonError::into_inner);
        let q = scripts.entry(key).or_default();
        for _ in 0..n {
            q.push_back(Fault::Error(kind));
        }
    }

    /// Script the next read of `key` to sleep `delay` before succeeding
    /// (a hung read, for source-timeout tests).
    pub fn script_delay(&self, key: BlockKey, delay: Duration) {
        self.scripts
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(key)
            .or_default()
            .push_back(Fault::Delay(delay));
    }

    /// Fail every read with `kind` until cleared with `set_outage(None)`.
    /// Drives breaker transitions deterministically.
    pub fn set_outage(&self, kind: Option<io::ErrorKind>) {
        *self.outage.lock().unwrap_or_else(PoisonError::into_inner) = kind;
    }

    /// Total reads attempted against this source.
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Reads failed by injection (scripted, outage, or random).
    pub fn injected_errors(&self) -> u64 {
        self.injected_errors.load(Ordering::Relaxed)
    }

    /// Latency spikes injected (scripted delays or random spikes).
    pub fn injected_spikes(&self) -> u64 {
        self.injected_spikes.load(Ordering::Relaxed)
    }

    /// Next uniform draw in `[0, 1)` from the seeded stream.
    fn next01(&self) -> f64 {
        let mut g = self.rng.lock().unwrap_or_else(PoisonError::into_inner);
        *g = splitmix64(*g);
        (*g >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Draw an error kind from the weighted mix.
    fn pick_kind(&self, u: f64) -> io::ErrorKind {
        let total: f64 = self.cfg.kinds.iter().map(|&(_, w)| w).sum();
        if total <= 0.0 {
            return io::ErrorKind::Interrupted;
        }
        let mut acc = 0.0;
        for &(kind, w) in &self.cfg.kinds {
            acc += w / total;
            if u < acc {
                return kind;
            }
        }
        self.cfg.kinds.last().map(|&(k, _)| k).unwrap_or(io::ErrorKind::Interrupted)
    }

    fn injected(&self, kind: io::ErrorKind, why: &str, key: BlockKey) -> io::Error {
        self.injected_errors.fetch_add(1, Ordering::Relaxed);
        io::Error::new(kind, format!("injected {why} fault reading {key:?}"))
    }
}

impl BlockSource for FaultInjectingSource {
    fn read_block(&self, key: BlockKey) -> io::Result<Vec<f32>> {
        self.reads.fetch_add(1, Ordering::Relaxed);

        // Scripted faults first, consumed in order.
        let scripted = {
            let mut scripts = self.scripts.lock().unwrap_or_else(PoisonError::into_inner);
            match scripts.get_mut(&key) {
                Some(q) => {
                    let f = q.pop_front();
                    if q.is_empty() {
                        scripts.remove(&key);
                    }
                    f
                }
                None => None,
            }
        };
        match scripted {
            Some(Fault::Error(kind)) => return Err(self.injected(kind, "scripted", key)),
            Some(Fault::Delay(d)) => {
                self.injected_spikes.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(d);
            }
            None => {
                if let Some(kind) = *self.outage.lock().unwrap_or_else(PoisonError::into_inner) {
                    return Err(self.injected(kind, "outage", key));
                }
                if self.cfg.spike_rate > 0.0 && self.next01() < self.cfg.spike_rate {
                    self.injected_spikes.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(self.cfg.spike);
                }
                if self.cfg.error_rate > 0.0 && self.next01() < self.cfg.error_rate {
                    let kind = self.pick_kind(self.next01());
                    return Err(self.injected(kind, "random", key));
                }
            }
        }
        self.inner.read_block(key)
    }

    fn block_bytes(&self, key: BlockKey) -> io::Result<usize> {
        self.inner.block_bytes(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viz_volume::{BlockId, MemBlockStore};

    fn key(i: u32) -> BlockKey {
        BlockKey::scalar(BlockId(i))
    }

    fn backing(n: u32) -> Arc<MemBlockStore> {
        let s = MemBlockStore::new();
        for i in 0..n {
            s.insert(key(i), vec![i as f32; 4]);
        }
        Arc::new(s)
    }

    #[test]
    fn healthy_source_is_a_passthrough() {
        let src = FaultInjectingSource::healthy(backing(2));
        assert_eq!(src.read_block(key(1)).unwrap(), vec![1.0; 4]);
        assert_eq!(src.block_bytes(key(1)).unwrap(), 16);
        assert_eq!((src.reads(), src.injected_errors(), src.injected_spikes()), (1, 0, 0));
    }

    #[test]
    fn script_fails_n_times_then_succeeds() {
        let src = FaultInjectingSource::healthy(backing(1));
        src.script_fail(key(0), 2, io::ErrorKind::Interrupted);
        assert_eq!(src.read_block(key(0)).unwrap_err().kind(), io::ErrorKind::Interrupted);
        assert_eq!(src.read_block(key(0)).unwrap_err().kind(), io::ErrorKind::Interrupted);
        assert_eq!(src.read_block(key(0)).unwrap(), vec![0.0; 4]);
        assert_eq!(src.injected_errors(), 2);
        // Other keys are untouched by the script.
        let src2 = FaultInjectingSource::healthy(backing(2));
        src2.script_fail(key(0), 1, io::ErrorKind::TimedOut);
        assert!(src2.read_block(key(1)).is_ok());
    }

    #[test]
    fn scripted_delay_sleeps_then_succeeds() {
        let src = FaultInjectingSource::healthy(backing(1));
        src.script_delay(key(0), Duration::from_millis(20));
        let t0 = std::time::Instant::now();
        assert!(src.read_block(key(0)).is_ok());
        assert!(t0.elapsed() >= Duration::from_millis(20));
        assert_eq!(src.injected_spikes(), 1);
        // Script consumed: next read is fast.
        let t0 = std::time::Instant::now();
        assert!(src.read_block(key(0)).is_ok());
        assert!(t0.elapsed() < Duration::from_millis(20));
    }

    #[test]
    fn outage_fails_everything_until_cleared() {
        let src = FaultInjectingSource::healthy(backing(2));
        src.set_outage(Some(io::ErrorKind::TimedOut));
        assert_eq!(src.read_block(key(0)).unwrap_err().kind(), io::ErrorKind::TimedOut);
        assert_eq!(src.read_block(key(1)).unwrap_err().kind(), io::ErrorKind::TimedOut);
        src.set_outage(None);
        assert!(src.read_block(key(0)).is_ok());
        assert_eq!(src.injected_errors(), 2);
    }

    #[test]
    fn random_faults_are_seed_deterministic_and_near_rate() {
        let run = |seed| {
            let cfg = FaultConfig { seed, error_rate: 0.1, ..Default::default() };
            let src = FaultInjectingSource::new(backing(1), cfg);
            let outcomes: Vec<bool> = (0..2000).map(|_| src.read_block(key(0)).is_ok()).collect();
            (outcomes, src.injected_errors())
        };
        let (a, errs_a) = run(7);
        let (b, errs_b) = run(7);
        assert_eq!(a, b, "same seed, same fault sequence");
        assert_eq!(errs_a, errs_b);
        let rate = errs_a as f64 / 2000.0;
        assert!((0.05..0.20).contains(&rate), "≈10% injected, got {rate}");
        let (c, _) = run(8);
        assert_ne!(a, c, "different seed, different sequence");
    }

    #[test]
    fn injected_kinds_follow_the_mix() {
        let cfg = FaultConfig {
            seed: 3,
            error_rate: 1.0,
            kinds: vec![(io::ErrorKind::WouldBlock, 1.0)],
            ..Default::default()
        };
        let src = FaultInjectingSource::new(backing(1), cfg);
        for _ in 0..16 {
            assert_eq!(src.read_block(key(0)).unwrap_err().kind(), io::ErrorKind::WouldBlock);
        }
    }
}
