//! Retry policy and circuit breaker for the fetch path.
//!
//! The slow-memory tiers the engine reads from (SSD, HDD, network object
//! stores) fail in two distinct ways that demand opposite reactions:
//!
//! - **Transient** faults — an interrupted syscall, a timed-out read, a
//!   tier that momentarily pushes back — succeed if simply tried again.
//!   [`is_transient`] classifies them; [`RetryPolicy`] retries them with
//!   bounded exponential backoff plus deterministic jitter.
//! - **Permanent** faults — a missing block file, a corrupt frame — will
//!   fail identically forever. Retrying them only burns I/O bandwidth the
//!   renderer needs, so they fail fast.
//!
//! When the source itself goes down (every read failing), per-request
//! retries amplify the outage instead of riding it out. The
//! [`CircuitBreaker`] counts *consecutive* request failures; past a
//! threshold it opens and the engine fails prefetches fast without
//! touching the source. Demand reads are never blocked — the first demand
//! read dequeued while the breaker is open becomes the half-open *probe*
//! whose outcome decides whether the breaker closes (source recovered) or
//! re-opens (still down). Probing on demand reads means recovery needs no
//! timers and no background poller: the renderer's own traffic heals the
//! circuit, deterministically.

use std::io;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::time::Duration;
use viz_telemetry::EventKind as Ev;

/// Is an error kind worth retrying? `Interrupted`, `TimedOut` and
/// `WouldBlock` are momentary conditions of a healthy source;
/// `NotFound`, `InvalidData`, permission errors and everything else are
/// properties of the request and fail identically on every attempt.
pub fn is_transient(kind: io::ErrorKind) -> bool {
    matches!(kind, io::ErrorKind::Interrupted | io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock)
}

/// Bounded exponential backoff with deterministic jitter.
///
/// Attempt `n` (0-based) backs off `base_delay * 2^n`, capped at
/// `max_delay`, plus up to `jitter * delay` of extra wait drawn from a
/// seeded hash of `(seed, salt, attempt)` — so two workers retrying the
/// same hot key at the same moment do not hammer the source in lockstep,
/// yet every delay is reproducible for a given seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 disables retrying).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Jitter as a fraction of the computed delay, in `[0, 1]`.
    pub jitter: f64,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_delay: Duration::from_micros(500),
            max_delay: Duration::from_millis(10),
            jitter: 0.5,
            seed: 0x5EED_F17C,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (errors surface on first failure).
    pub fn none() -> Self {
        RetryPolicy { max_retries: 0, ..Default::default() }
    }

    /// A policy with `max_retries` retries and zero delay — deterministic
    /// tests step retries without sleeping.
    pub fn immediate(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            ..Default::default()
        }
    }

    /// Should a read that failed with `kind` on 0-based attempt `attempt`
    /// be tried again?
    pub fn should_retry(&self, kind: io::ErrorKind, attempt: u32) -> bool {
        attempt < self.max_retries && is_transient(kind)
    }

    /// Backoff before 0-based retry `attempt`. `salt` individualizes the
    /// jitter stream (callers pass a key hash).
    pub fn backoff(&self, attempt: u32, salt: u64) -> Duration {
        let exp = self.base_delay.saturating_mul(1u32 << attempt.min(20));
        let capped = exp.min(self.max_delay);
        if self.jitter <= 0.0 || capped.is_zero() {
            return capped;
        }
        let unit = splitmix64(self.seed ^ salt.rotate_left(17) ^ u64::from(attempt)) as f64
            / u64::MAX as f64;
        let extra = capped.as_secs_f64() * self.jitter.min(1.0) * unit;
        capped + Duration::from_secs_f64(extra)
    }
}

/// SplitMix64: the standard 64-bit finalizer — one multiply-xor-shift
/// chain, full avalanche, no state.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Circuit-breaker configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive request failures (after retries) that open the breaker.
    pub failure_threshold: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig { failure_threshold: 8 }
    }
}

/// Breaker state, exposed in [`crate::FetchMetrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BreakerState {
    /// Healthy: all traffic flows.
    #[default]
    Closed,
    /// Source presumed down: prefetches fail fast, demand reads probe.
    Open,
    /// A demand probe is in flight; its outcome closes or re-opens.
    HalfOpen,
}

const ST_CLOSED: u8 = 0;
const ST_OPEN: u8 = 1;
const ST_HALF_OPEN: u8 = 2;

/// Consecutive-failure circuit breaker (see module docs for the
/// demand-probe recovery protocol). Lock-free: state transitions are a
/// CAS loop over one atomic, so it can sit on the dequeue hot path.
#[derive(Debug, Default)]
pub struct CircuitBreaker {
    state: AtomicU8,
    consecutive_failures: AtomicU32,
    opens: AtomicU64,
    half_opens: AtomicU64,
    closes: AtomicU64,
    rejected: AtomicU64,
}

impl CircuitBreaker {
    /// A closed breaker with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        match self.state.load(Ordering::Acquire) {
            ST_OPEN => BreakerState::Open,
            ST_HALF_OPEN => BreakerState::HalfOpen,
            _ => BreakerState::Closed,
        }
    }

    /// `(opens, half_opens, closes, rejected)` transition counters.
    pub fn counters(&self) -> (u64, u64, u64, u64) {
        (
            self.opens.load(Ordering::Relaxed),
            self.half_opens.load(Ordering::Relaxed),
            self.closes.load(Ordering::Relaxed),
            self.rejected.load(Ordering::Relaxed),
        )
    }

    /// May a *prefetch* touch the source right now? `false` while open or
    /// half-open (the probe decides first); rejections are counted.
    pub fn admit_prefetch(&self) -> bool {
        if self.state.load(Ordering::Acquire) == ST_CLOSED {
            true
        } else {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            false
        }
    }

    /// A demand read is about to run. While open it becomes the half-open
    /// probe. Demand is never rejected.
    pub fn on_demand_dispatch(&self) {
        if self
            .state
            .compare_exchange(ST_OPEN, ST_HALF_OPEN, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
        {
            self.half_opens.fetch_add(1, Ordering::Relaxed);
            viz_telemetry::instant(Ev::BreakerHalfOpen, 0, 0);
        }
    }

    /// A request completed successfully: reset the failure run and close
    /// the breaker if it was open or probing.
    pub fn on_success(&self) {
        self.consecutive_failures.store(0, Ordering::Relaxed);
        let prev = self.state.swap(ST_CLOSED, Ordering::AcqRel);
        if prev != ST_CLOSED {
            self.closes.fetch_add(1, Ordering::Relaxed);
            viz_telemetry::instant(Ev::BreakerClose, 0, u64::from(prev));
        }
    }

    /// A request failed (after retries). Opens the breaker when the
    /// consecutive-failure run reaches `threshold`, and re-opens it when a
    /// half-open probe fails.
    pub fn on_failure(&self, threshold: u32) {
        let run = self.consecutive_failures.fetch_add(1, Ordering::Relaxed) + 1;
        let cur = self.state.load(Ordering::Acquire);
        let should_open = match cur {
            ST_HALF_OPEN => true,          // the probe failed: back to open
            ST_CLOSED => run >= threshold, // failure run crossed the line
            _ => false,
        };
        if should_open
            && self
                .state
                .compare_exchange(cur, ST_OPEN, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
        {
            self.opens.fetch_add(1, Ordering::Relaxed);
            viz_telemetry::instant(Ev::BreakerOpen, 0, u64::from(run));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_classification_matches_contract() {
        assert!(is_transient(io::ErrorKind::Interrupted));
        assert!(is_transient(io::ErrorKind::TimedOut));
        assert!(is_transient(io::ErrorKind::WouldBlock));
        assert!(!is_transient(io::ErrorKind::NotFound));
        assert!(!is_transient(io::ErrorKind::InvalidData));
        assert!(!is_transient(io::ErrorKind::PermissionDenied));
        assert!(!is_transient(io::ErrorKind::Other));
    }

    #[test]
    fn should_retry_respects_budget_and_kind() {
        let p = RetryPolicy { max_retries: 2, ..Default::default() };
        assert!(p.should_retry(io::ErrorKind::Interrupted, 0));
        assert!(p.should_retry(io::ErrorKind::TimedOut, 1));
        assert!(!p.should_retry(io::ErrorKind::Interrupted, 2), "budget exhausted");
        assert!(!p.should_retry(io::ErrorKind::NotFound, 0), "permanent errors never retry");
        assert!(!RetryPolicy::none().should_retry(io::ErrorKind::Interrupted, 0));
    }

    #[test]
    fn backoff_doubles_then_caps() {
        let p = RetryPolicy {
            max_retries: 8,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(4),
            jitter: 0.0,
            seed: 1,
        };
        assert_eq!(p.backoff(0, 0), Duration::from_millis(1));
        assert_eq!(p.backoff(1, 0), Duration::from_millis(2));
        assert_eq!(p.backoff(2, 0), Duration::from_millis(4));
        assert_eq!(p.backoff(3, 0), Duration::from_millis(4), "capped");
        assert_eq!(p.backoff(31, 0), Duration::from_millis(4), "huge attempts don't overflow");
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let p = RetryPolicy {
            max_retries: 4,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(16),
            jitter: 0.5,
            seed: 42,
        };
        for attempt in 0..4 {
            for salt in [0u64, 7, 0xDEAD_BEEF] {
                let base = Duration::from_millis(2) * (1 << attempt);
                let d = p.backoff(attempt, salt);
                assert!(d >= base, "jitter must only add");
                assert!(d <= base + base.mul_f64(0.5) + Duration::from_nanos(1));
                assert_eq!(d, p.backoff(attempt, salt), "same inputs, same delay");
            }
        }
        // Different salts decorrelate the jitter.
        assert_ne!(p.backoff(0, 1), p.backoff(0, 2));
    }

    #[test]
    fn immediate_policy_has_zero_delay() {
        let p = RetryPolicy::immediate(3);
        assert_eq!(p.backoff(0, 9), Duration::ZERO);
        assert_eq!(p.backoff(2, 9), Duration::ZERO);
        assert!(p.should_retry(io::ErrorKind::Interrupted, 2));
        assert!(!p.should_retry(io::ErrorKind::Interrupted, 3));
    }

    #[test]
    fn breaker_opens_after_threshold_consecutive_failures() {
        let b = CircuitBreaker::new();
        for _ in 0..2 {
            b.on_failure(3);
            assert_eq!(b.state(), BreakerState::Closed);
        }
        b.on_failure(3);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.counters().0, 1, "one open transition");
        assert!(!b.admit_prefetch());
        assert_eq!(b.counters().3, 1, "rejection counted");
    }

    #[test]
    fn success_resets_the_failure_run() {
        let b = CircuitBreaker::new();
        b.on_failure(3);
        b.on_failure(3);
        b.on_success();
        b.on_failure(3);
        b.on_failure(3);
        assert_eq!(b.state(), BreakerState::Closed, "run was reset by the success");
    }

    #[test]
    fn demand_probe_closes_on_success_reopens_on_failure() {
        let b = CircuitBreaker::new();
        for _ in 0..3 {
            b.on_failure(3);
        }
        assert_eq!(b.state(), BreakerState::Open);

        // Probe fails: back to open.
        b.on_demand_dispatch();
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.admit_prefetch(), "prefetches stay out during the probe");
        b.on_failure(3);
        assert_eq!(b.state(), BreakerState::Open);

        // Probe succeeds: closed, traffic flows again.
        b.on_demand_dispatch();
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.admit_prefetch());
        let (opens, half_opens, closes, _) = b.counters();
        assert_eq!((opens, half_opens, closes), (2, 2, 1));
    }

    #[test]
    fn demand_dispatch_is_a_noop_while_closed() {
        let b = CircuitBreaker::new();
        b.on_demand_dispatch();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.counters().1, 0);
    }
}
