//! Bounded pool of detached I/O threads for timed source reads.
//!
//! When [`crate::FetchConfig::source_timeout`] is set, each source read
//! runs off the worker thread so the worker can abandon it at the
//! deadline. The original implementation spawned one short-lived thread
//! per read — under a fault storm (every read hanging to its timeout)
//! that is an unbounded thread leak, limited only by how fast workers
//! retry. [`IoPool`] caps it: at most `cap` threads ever exist, spawned
//! lazily on demand, and reads beyond the cap queue until a thread frees
//! up. The threads are deliberately *detached* — a read hung inside the
//! source must never wedge engine shutdown, so nothing joins them; they
//! exit when the job channel closes (pool drop) and their queue drains.
//!
//! This is the thread backend's containment measure; the reactor backend
//! (see [`crate::reactor`]) removes per-read threads from the serving
//! path entirely by parking deadlines on a timer wheel.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, PoisonError};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Fixed-capacity, lazily-populated pool of detached I/O threads.
#[derive(Debug)]
pub struct IoPool {
    inner: Arc<Inner>,
    cap: usize,
    /// `None` after shutdown; also the lock serializing spawn decisions.
    tx: Mutex<Option<Sender<Job>>>,
}

#[derive(Debug)]
struct Inner {
    /// Workers take turns holding the receiver; one blocks in `recv` while
    /// the rest wait on the mutex, so a ready job wakes exactly one.
    rx: Mutex<Receiver<Job>>,
    /// Threads currently between jobs (counting the one parked in `recv`).
    idle: AtomicUsize,
    /// Threads ever spawned; never exceeds the cap.
    spawned: AtomicUsize,
}

impl IoPool {
    /// A pool allowing at most `cap` concurrent I/O threads (min 1). No
    /// thread exists until the first [`IoPool::submit`].
    pub fn new(cap: usize) -> Self {
        let (tx, rx) = channel();
        IoPool {
            inner: Arc::new(Inner {
                rx: Mutex::new(rx),
                idle: AtomicUsize::new(0),
                spawned: AtomicUsize::new(0),
            }),
            cap: cap.max(1),
            tx: Mutex::new(Some(tx)),
        }
    }

    /// Threads spawned over the pool's lifetime (gauge; bounded by the
    /// cap passed to [`IoPool::new`] — the storm-containment guarantee).
    pub fn spawned(&self) -> usize {
        self.inner.spawned.load(Ordering::Relaxed)
    }

    /// Run `job` on a pool thread. Spawns a new thread only when every
    /// existing one is busy and the cap allows; otherwise the job queues
    /// until a thread frees up. Returns `false` if the pool is shut down
    /// (the job is dropped).
    pub fn submit(&self, job: Job) -> bool {
        let guard = self.tx.lock().unwrap_or_else(PoisonError::into_inner);
        let Some(tx) = guard.as_ref() else {
            return false;
        };
        if tx.send(job).is_err() {
            return false;
        }
        // Spawn decision under the tx lock so `spawned` never overshoots
        // the cap even with concurrent submitters.
        let spawned = self.inner.spawned.load(Ordering::Relaxed);
        if self.inner.idle.load(Ordering::Acquire) == 0 && spawned < self.cap {
            self.inner.spawned.store(spawned + 1, Ordering::Relaxed);
            let inner = self.inner.clone();
            // Detached on purpose: a hung read must not block shutdown.
            let _ = std::thread::Builder::new()
                .name(format!("viz-fetch-io-{spawned}"))
                .spawn(move || worker(&inner));
        }
        true
    }

    /// Close the job channel: queued jobs still run, threads exit after.
    pub fn shutdown(&self) {
        self.tx.lock().unwrap_or_else(PoisonError::into_inner).take();
    }
}

impl Drop for IoPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker(inner: &Inner) {
    loop {
        inner.idle.fetch_add(1, Ordering::AcqRel);
        let job = {
            let rx = inner.rx.lock().unwrap_or_else(PoisonError::into_inner);
            rx.recv()
        };
        inner.idle.fetch_sub(1, Ordering::AcqRel);
        match job {
            Ok(job) => job(),
            Err(_) => return, // channel closed and drained: pool shut down
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;
    use std::time::Duration;

    #[test]
    fn runs_jobs_and_reuses_threads() {
        let pool = IoPool::new(2);
        let (tx, rx) = channel();
        for i in 0..16 {
            let tx = tx.clone();
            assert!(pool.submit(Box::new(move || tx.send(i).unwrap())));
        }
        let mut got: Vec<i32> = (0..16).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..16).collect::<Vec<_>>());
        assert!(pool.spawned() <= 2, "cap 2 exceeded: {}", pool.spawned());
    }

    #[test]
    fn storm_of_hung_jobs_respects_the_cap() {
        let pool = IoPool::new(3);
        let (hang_tx, hang_rx) = channel::<()>();
        let hang_rx = Arc::new(Mutex::new(hang_rx));
        // 32 jobs that all block until released: an unbounded spawner
        // would create 32 threads; the pool must stop at 3.
        for _ in 0..32 {
            let rx = hang_rx.clone();
            assert!(pool.submit(Box::new(move || {
                let _ = rx.lock().unwrap().recv();
            })));
        }
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(pool.spawned(), 3, "storm must not spawn past the cap");
        drop(hang_tx); // release the hung jobs
    }

    #[test]
    fn shutdown_rejects_new_jobs() {
        let pool = IoPool::new(1);
        pool.shutdown();
        assert!(!pool.submit(Box::new(|| {})));
    }
}
