//! Deterministic-mode instrumentation: virtual clock, per-tier latency
//! injection, and a concurrency-checking source wrapper.
//!
//! The engine's scheduling behavior (priority order, coalescing,
//! cancellation) must be testable without real time. [`VirtualClock`] is a
//! logical tick counter; [`VirtualClockSource`] wraps any [`BlockSource`]
//! and advances the clock by a per-tier latency on every read while
//! logging `(key, start, end)` records. [`InstrumentedSource`] adds real
//! (wall-clock) latency injection plus detection of concurrent duplicate
//! reads — the invariant request coalescing must uphold.

use std::collections::HashSet;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;
use viz_volume::{BlockKey, BlockSource};

/// Monotonic logical clock measured in abstract ticks.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now: AtomicU64,
}

impl VirtualClock {
    /// A clock at tick 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current tick.
    pub fn now(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }

    /// Advance by `ticks`; returns the clock value after advancing.
    pub fn advance(&self, ticks: u64) -> u64 {
        self.now.fetch_add(ticks, Ordering::SeqCst) + ticks
    }
}

/// Storage tier of a block, for latency modeling (paper §III: the data
/// flows HDD → SSD → DRAM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Already in host memory.
    Dram,
    /// On solid-state staging storage.
    Ssd,
    /// On the archival disk.
    Hdd,
}

/// Per-tier read latency in virtual ticks.
#[derive(Debug, Clone, Copy)]
pub struct TierLatency {
    /// Ticks per DRAM read.
    pub dram: u64,
    /// Ticks per SSD read.
    pub ssd: u64,
    /// Ticks per HDD read.
    pub hdd: u64,
}

impl TierLatency {
    /// The paper's relative ordering at convenient round numbers:
    /// DRAM 1, SSD 20, HDD 400.
    pub fn paper_like() -> Self {
        TierLatency { dram: 1, ssd: 20, hdd: 400 }
    }

    /// Ticks for one read from `tier`.
    pub fn of(&self, tier: Tier) -> u64 {
        match tier {
            Tier::Dram => self.dram,
            Tier::Ssd => self.ssd,
            Tier::Hdd => self.hdd,
        }
    }
}

/// One logged read: the key and the virtual `[start, end)` interval the
/// read occupied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadRecord {
    /// Which block was read.
    pub key: BlockKey,
    /// Clock tick when the read began.
    pub start: u64,
    /// Clock tick when the read completed (`start + latency`).
    pub end: u64,
}

type LatencyFn = dyn Fn(BlockKey) -> u64 + Send + Sync;

/// A [`BlockSource`] wrapper that charges per-read latency to a
/// [`VirtualClock`] and logs every read, making engine schedules
/// reproducible and assertable.
pub struct VirtualClockSource {
    inner: Arc<dyn BlockSource>,
    clock: Arc<VirtualClock>,
    latency: Box<LatencyFn>,
    log: Mutex<Vec<ReadRecord>>,
}

impl VirtualClockSource {
    /// Every read costs the same `ticks`.
    pub fn uniform(inner: Arc<dyn BlockSource>, clock: Arc<VirtualClock>, ticks: u64) -> Self {
        Self::with_latency(inner, clock, move |_| ticks)
    }

    /// Latency decided per key (tier assignment is the caller's model).
    pub fn with_latency(
        inner: Arc<dyn BlockSource>,
        clock: Arc<VirtualClock>,
        latency: impl Fn(BlockKey) -> u64 + Send + Sync + 'static,
    ) -> Self {
        VirtualClockSource { inner, clock, latency: Box::new(latency), log: Mutex::new(Vec::new()) }
    }

    /// Tiered latency: `tier_of` assigns each key to a [`Tier`], `lat`
    /// prices it.
    pub fn tiered(
        inner: Arc<dyn BlockSource>,
        clock: Arc<VirtualClock>,
        lat: TierLatency,
        tier_of: impl Fn(BlockKey) -> Tier + Send + Sync + 'static,
    ) -> Self {
        Self::with_latency(inner, clock, move |k| lat.of(tier_of(k)))
    }

    /// Keys in service order.
    pub fn read_order(&self) -> Vec<BlockKey> {
        self.log.lock().unwrap_or_else(PoisonError::into_inner).iter().map(|r| r.key).collect()
    }

    /// Full `(key, start, end)` log.
    pub fn records(&self) -> Vec<ReadRecord> {
        self.log.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }

    /// Total reads issued to the inner source.
    pub fn reads(&self) -> usize {
        self.log.lock().unwrap_or_else(PoisonError::into_inner).len()
    }
}

impl BlockSource for VirtualClockSource {
    fn read_block(&self, key: BlockKey) -> io::Result<Vec<f32>> {
        let ticks = (self.latency)(key);
        let end = self.clock.advance(ticks);
        self.log.lock().unwrap_or_else(PoisonError::into_inner).push(ReadRecord {
            key,
            start: end - ticks,
            end,
        });
        self.inner.read_block(key)
    }

    fn block_bytes(&self, key: BlockKey) -> io::Result<usize> {
        self.inner.block_bytes(key)
    }
}

/// A [`BlockSource`] wrapper for stress tests and benches: optional real
/// sleep per read (latency injection) plus read accounting, including the
/// number of *concurrent duplicate* reads of one key — which must be zero
/// if request coalescing works.
pub struct InstrumentedSource {
    inner: Arc<dyn BlockSource>,
    /// Injected per-read sleep, in nanoseconds (0 = none). Atomic so
    /// chaos scripts can slow a node mid-run without a rebuild.
    delay_nanos: AtomicU64,
    active: Mutex<HashSet<BlockKey>>,
    reads: AtomicU64,
    concurrent_dups: AtomicU64,
    max_concurrency: AtomicU64,
}

impl InstrumentedSource {
    /// Wrap `inner`, sleeping `delay` inside every read (pass
    /// `Duration::ZERO` to only count).
    pub fn new(inner: Arc<dyn BlockSource>, delay: Duration) -> Self {
        InstrumentedSource {
            inner,
            delay_nanos: AtomicU64::new(delay.as_nanos() as u64),
            active: Mutex::new(HashSet::new()),
            reads: AtomicU64::new(0),
            concurrent_dups: AtomicU64::new(0),
            max_concurrency: AtomicU64::new(0),
        }
    }

    /// Change the injected per-read delay (slow-node fault scripts;
    /// `Duration::ZERO` restores full speed). Applies to reads that
    /// start after the call.
    pub fn set_delay(&self, delay: Duration) {
        self.delay_nanos.store(delay.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Total reads issued to the inner source.
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Times a key was read while another read of the *same* key was in
    /// flight. Coalescing makes this 0.
    pub fn concurrent_dup_reads(&self) -> u64 {
        self.concurrent_dups.load(Ordering::Relaxed)
    }

    /// Peak number of simultaneously in-flight reads (observed
    /// parallelism of the worker pool).
    pub fn max_concurrency(&self) -> u64 {
        self.max_concurrency.load(Ordering::Relaxed)
    }
}

impl BlockSource for InstrumentedSource {
    fn read_block(&self, key: BlockKey) -> io::Result<Vec<f32>> {
        self.reads.fetch_add(1, Ordering::Relaxed);
        {
            let mut active = self.active.lock().unwrap_or_else(PoisonError::into_inner);
            if !active.insert(key) {
                self.concurrent_dups.fetch_add(1, Ordering::Relaxed);
            }
            self.max_concurrency.fetch_max(active.len() as u64, Ordering::Relaxed);
        }
        let delay = self.delay_nanos.load(Ordering::Relaxed);
        if delay > 0 {
            std::thread::sleep(Duration::from_nanos(delay));
        }
        let res = self.inner.read_block(key);
        self.active.lock().unwrap_or_else(PoisonError::into_inner).remove(&key);
        res
    }

    fn block_bytes(&self, key: BlockKey) -> io::Result<usize> {
        self.inner.block_bytes(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viz_volume::{BlockId, MemBlockStore};

    fn key(i: u32) -> BlockKey {
        BlockKey::scalar(BlockId(i))
    }

    #[test]
    fn clock_advances_and_reports() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.advance(5), 5);
        assert_eq!(c.advance(3), 8);
        assert_eq!(c.now(), 8);
    }

    #[test]
    fn virtual_source_logs_reads_with_tier_latency() {
        let store = MemBlockStore::new();
        store.insert(key(0), vec![0.0]);
        store.insert(key(1), vec![1.0]);
        let clock = Arc::new(VirtualClock::new());
        let src = VirtualClockSource::tiered(
            Arc::new(store),
            clock.clone(),
            TierLatency::paper_like(),
            |k| if k.block.0 == 0 { Tier::Hdd } else { Tier::Ssd },
        );
        src.read_block(key(0)).unwrap();
        src.read_block(key(1)).unwrap();
        assert_eq!(clock.now(), 420);
        let recs = src.records();
        assert_eq!(recs[0], ReadRecord { key: key(0), start: 0, end: 400 });
        assert_eq!(recs[1], ReadRecord { key: key(1), start: 400, end: 420 });
        assert_eq!(src.read_order(), vec![key(0), key(1)]);
    }

    #[test]
    fn instrumented_source_counts_reads_and_passthrough_errors() {
        let store = MemBlockStore::new();
        store.insert(key(0), vec![7.0]);
        let src = InstrumentedSource::new(Arc::new(store), Duration::ZERO);
        assert_eq!(src.read_block(key(0)).unwrap(), vec![7.0]);
        assert!(src.read_block(key(9)).is_err());
        assert_eq!(src.reads(), 2);
        assert_eq!(src.concurrent_dup_reads(), 0);
        assert_eq!(src.block_bytes(key(0)).unwrap(), 4);
    }
}
