//! Reactor core: readiness polling + a timer wheel + virtual readiness.
//!
//! The thread-per-connection serving model and the sacrificial per-read
//! timeout threads both burn one OS thread per waiting thing. This module
//! is the shared substrate that replaces them: a thin, dependency-free
//! wrapper over `poll(2)` for socket readiness, a hashed [`TimerWheel`]
//! that tracks thousands of deadlines with O(1) schedule/cancel and no
//! threads at all, and a [`ReadySet`] that gives the deterministic
//! in-process transport the same readiness semantics as a socket — so one
//! event loop drives both real TCP connections and virtual test
//! connections, and the whole loop is steppable under a virtual clock.
//!
//! The pieces are deliberately separable: `viz-serve`'s reactor backend
//! composes all three; the fetch engine's IO pool uses only the wheel's
//! sibling idea (bounded threads instead of per-read spawns). Nothing
//! here owns a thread.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};

/// Readable-readiness bit for [`PollFd::events`] (`POLLIN`).
pub const POLL_IN: i16 = 0x001;
/// Writable-readiness bit (`POLLOUT`).
pub const POLL_OUT: i16 = 0x004;
/// Error condition reported in `revents` (`POLLERR`).
pub const POLL_ERR: i16 = 0x008;
/// Peer hangup reported in `revents` (`POLLHUP`).
pub const POLL_HUP: i16 = 0x010;

/// One pollable descriptor, layout-compatible with the C `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// The raw file descriptor.
    pub fd: i32,
    /// Requested readiness ([`POLL_IN`] | [`POLL_OUT`]).
    pub events: i16,
    /// Kernel-reported readiness after [`poll_fds`].
    pub revents: i16,
}

impl PollFd {
    /// Watch `fd` for the given interest bits.
    pub fn new(fd: i32, events: i16) -> Self {
        PollFd { fd, events, revents: 0 }
    }

    /// `true` when the descriptor reported readable (or a condition the
    /// reader must consume: error/hangup surface on the next read).
    pub fn readable(self) -> bool {
        self.revents & (POLL_IN | POLL_ERR | POLL_HUP) != 0
    }

    /// `true` when the descriptor reported writable.
    pub fn writable(self) -> bool {
        self.revents & POLL_OUT != 0
    }
}

#[cfg(unix)]
mod sys {
    use super::PollFd;
    extern "C" {
        // `poll(2)`: declared directly so the crate stays dependency-free
        // (libc is linked into every Rust binary on unix anyway).
        pub fn poll(fds: *mut PollFd, nfds: std::os::raw::c_ulong, timeout: i32) -> i32;
    }
}

/// Block until at least one descriptor is ready or `timeout_ms` elapses
/// (`0` = non-blocking check, negative = wait forever). Returns how many
/// descriptors have non-zero `revents`. `EINTR` reports as `Ok(0)` — the
/// caller's loop re-polls anyway.
#[cfg(unix)]
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> std::io::Result<usize> {
    let n = unsafe { sys::poll(fds.as_mut_ptr(), fds.len() as std::os::raw::c_ulong, timeout_ms) };
    if n >= 0 {
        return Ok(n as usize);
    }
    let err = std::io::Error::last_os_error();
    if err.kind() == std::io::ErrorKind::Interrupted {
        Ok(0)
    } else {
        Err(err)
    }
}

/// Non-unix fallback: no sockets to poll; virtual readiness still works.
#[cfg(not(unix))]
pub fn poll_fds(_fds: &mut [PollFd], _timeout_ms: i32) -> std::io::Result<usize> {
    Err(std::io::Error::new(std::io::ErrorKind::Unsupported, "poll(2) unavailable"))
}

/// Handle a scheduled timer; pass back to [`TimerWheel::cancel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

/// Hashed timer wheel over caller-supplied nanosecond timestamps.
///
/// Deadlines hash into `slots` buckets by tick; expiry scans only the
/// buckets the clock passed since the last call, re-checking entries that
/// hashed in from a later lap. The clock is explicit — wall time, a bench
/// clock, or a test's virtual clock all work — which is what lets the
/// deterministic soak suite drive thousands of deadlines without
/// sleeping. Cancellation is O(1) (a tombstone map), and entries carry an
/// opaque `token` so callers map expiries back to their own state.
#[derive(Debug)]
pub struct TimerWheel {
    tick_ns: u64,
    slots: Vec<Vec<WheelEntry>>,
    /// Deadline by live timer id; the authority for cancel/len.
    live: HashMap<u64, u64>,
    next_id: u64,
    /// Wheel tick the last expiry sweep ended at.
    cursor: u64,
    started: bool,
}

#[derive(Debug, Clone, Copy)]
struct WheelEntry {
    id: u64,
    deadline_ns: u64,
    token: u64,
}

impl TimerWheel {
    /// A wheel with `slots` buckets of `tick_ns` granularity each.
    /// Deadlines resolve no finer than one tick.
    pub fn new(tick_ns: u64, slots: usize) -> Self {
        assert!(tick_ns > 0 && slots > 0, "wheel needs positive tick and slot count");
        TimerWheel {
            tick_ns,
            slots: (0..slots).map(|_| Vec::new()).collect(),
            live: HashMap::new(),
            next_id: 0,
            cursor: 0,
            started: false,
        }
    }

    /// Default shape for serving: 1 ms ticks, 512 slots (a half-second
    /// horizon before laps overlap — laps are handled, just rescanned).
    pub fn for_serving() -> Self {
        TimerWheel::new(1_000_000, 512)
    }

    /// Live (scheduled, not yet expired or cancelled) timers.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// `true` when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Schedule `token` to expire at `deadline_ns` on the caller's clock.
    pub fn schedule(&mut self, deadline_ns: u64, token: u64) -> TimerId {
        let id = self.next_id;
        self.next_id += 1;
        let slot = ((deadline_ns / self.tick_ns) as usize) % self.slots.len();
        self.slots[slot].push(WheelEntry { id, deadline_ns, token });
        self.live.insert(id, deadline_ns);
        TimerId(id)
    }

    /// Cancel a timer; `false` when it already expired or was cancelled.
    pub fn cancel(&mut self, id: TimerId) -> bool {
        self.live.remove(&id.0).is_some()
    }

    /// Earliest live deadline, if any (the poll-timeout bound).
    pub fn next_deadline_ns(&self) -> Option<u64> {
        self.live.values().copied().min()
    }

    /// Sweep every bucket the clock passed since the last call and return
    /// the `(TimerId, token)` of each expired live timer, unordered.
    /// Cancelled tombstones are dropped on the way.
    pub fn expire(&mut self, now_ns: u64) -> Vec<(TimerId, u64)> {
        let mut fired = Vec::new();
        if self.live.is_empty() {
            // Nothing can fire, but keep the cursor moving so the next
            // schedule/expire pair does not rescan the whole gap.
            self.cursor = now_ns / self.tick_ns;
            self.started = true;
            return fired;
        }
        let now_tick = now_ns / self.tick_ns;
        // First sweep starts at bucket zero: anything scheduled before the
        // wheel ever expired must still be found (the span cap below bounds
        // the scan to one full lap regardless).
        let from = if self.started { self.cursor } else { 0 };
        // A full lap covers every bucket; more is pointless.
        let span = (now_tick - from.min(now_tick)).min(self.slots.len() as u64 - 1);
        for t in 0..=span {
            let slot = ((from + t) as usize) % self.slots.len();
            self.slots[slot].retain(|e| {
                if self.live.get(&e.id) != Some(&e.deadline_ns) {
                    return false; // cancelled tombstone
                }
                if e.deadline_ns <= now_ns {
                    self.live.remove(&e.id);
                    fired.push((TimerId(e.id), e.token));
                    return false;
                }
                true // hashed in from a later lap
            });
        }
        self.cursor = now_tick;
        self.started = true;
        fired
    }
}

fn relock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Virtual readiness: the in-process transport's stand-in for `poll(2)`.
///
/// Producers [`ReadyHandle::mark`] their token when they enqueue a frame;
/// the event loop [`ReadySet::take_ready`]s the set each tick and treats
/// the tokens exactly like readable descriptors. Level-triggered by
/// convention: the consumer re-marks itself if it drained only part of
/// its queue (the serve reactor does this when a fetch parks).
#[derive(Debug, Default)]
pub struct ReadySet {
    ready: Mutex<Vec<u64>>,
}

impl ReadySet {
    /// An empty set.
    pub fn new() -> Arc<Self> {
        Arc::new(ReadySet::default())
    }

    /// Mark `token` ready (idempotent until taken).
    pub fn mark(&self, token: u64) {
        let mut r = relock(&self.ready);
        if !r.contains(&token) {
            r.push(token);
        }
    }

    /// Take and clear the ready tokens, in mark order.
    pub fn take_ready(&self) -> Vec<u64> {
        std::mem::take(&mut relock(&self.ready))
    }

    /// `true` when any token is marked (cheap poll-timeout decision).
    pub fn any_ready(&self) -> bool {
        !relock(&self.ready).is_empty()
    }

    /// A producer-side handle that marks `token` on this set.
    pub fn handle(self: &Arc<Self>, token: u64) -> ReadyHandle {
        ReadyHandle { set: self.clone(), token }
    }
}

/// Producer-side handle: marks one token on its [`ReadySet`].
#[derive(Debug, Clone)]
pub struct ReadyHandle {
    set: Arc<ReadySet>,
    token: u64,
}

impl ReadyHandle {
    /// Mark the token ready.
    pub fn mark(&self) {
        self.set.mark(self.token);
    }

    /// The token this handle marks.
    pub fn token(&self) -> u64 {
        self.token
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wheel_fires_in_deadline_windows_not_before() {
        let mut w = TimerWheel::new(1_000, 16); // 1 us ticks
        let a = w.schedule(5_000, 0xA);
        let _b = w.schedule(9_000, 0xB);
        assert_eq!(w.len(), 2);
        assert_eq!(w.next_deadline_ns(), Some(5_000));
        assert!(w.expire(4_999).is_empty());
        let fired = w.expire(5_000);
        assert_eq!(fired, vec![(a, 0xA)]);
        assert_eq!(w.len(), 1);
        let fired = w.expire(20_000);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].1, 0xB);
        assert!(w.is_empty());
        assert_eq!(w.next_deadline_ns(), None);
    }

    #[test]
    fn wheel_cancel_is_a_tombstone() {
        let mut w = TimerWheel::new(1_000, 8);
        let a = w.schedule(3_000, 1);
        let b = w.schedule(3_000, 2);
        assert!(w.cancel(a));
        assert!(!w.cancel(a), "double cancel reports false");
        let fired = w.expire(10_000);
        assert_eq!(fired, vec![(b, 2)]);
        assert!(!w.cancel(b), "expired timers cannot be cancelled");
    }

    #[test]
    fn wheel_handles_laps_past_the_horizon() {
        // 4 slots of 1 us: a 10 us deadline laps the wheel twice.
        let mut w = TimerWheel::new(1_000, 4);
        let far = w.schedule(10_500, 7);
        let near = w.schedule(2_500, 3);
        // The far entry shares a bucket region with near ticks but must
        // not fire early.
        assert_eq!(w.expire(3_000), vec![(near, 3)]);
        assert!(w.expire(9_000).is_empty());
        assert_eq!(w.expire(11_000), vec![(far, 7)]);
    }

    #[test]
    fn wheel_expire_with_sparse_calls_only_scans_one_lap() {
        let mut w = TimerWheel::new(1_000, 8);
        let id = w.schedule(1_000_000_000, 9); // 1 s out
                                               // Huge clock jumps (sparse expiry calls) still find it, once.
        assert!(w.expire(500_000_000).is_empty());
        assert_eq!(w.expire(2_000_000_000), vec![(id, 9)]);
    }

    #[test]
    fn ready_set_is_idempotent_and_ordered() {
        let set = ReadySet::new();
        let h1 = set.handle(1);
        let h2 = set.handle(2);
        assert!(!set.any_ready());
        h2.mark();
        h1.mark();
        h2.mark(); // duplicate collapses
        assert!(set.any_ready());
        assert_eq!(set.take_ready(), vec![2, 1]);
        assert!(set.take_ready().is_empty());
        assert_eq!(h1.token(), 1);
    }

    #[cfg(unix)]
    #[test]
    fn poll_wrapper_sees_pipe_readiness() {
        use std::io::Write;
        use std::net::{TcpListener, TcpStream};
        use std::os::unix::io::AsRawFd;
        // A socketpair via localhost TCP: write one byte, poll reports
        // the reader readable; a fresh pair reports nothing at timeout 0.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        let mut fds = [PollFd::new(server.as_raw_fd(), POLL_IN)];
        assert_eq!(poll_fds(&mut fds, 0).unwrap(), 0);
        assert!(!fds[0].readable());
        client.write_all(&[42]).unwrap();
        client.flush().unwrap();
        assert_eq!(poll_fds(&mut fds, 1000).unwrap(), 1);
        assert!(fds[0].readable());
    }
}
