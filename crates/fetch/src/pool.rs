//! Sharded resident-block pool.
//!
//! The renderer reads blocks out of the pool while fetch workers insert
//! into it; a single `RwLock<HashMap>` would serialize both sides. The
//! pool therefore splits the key space over N lock shards by key hash
//! (N is a power of two, default [`BlockPool::DEFAULT_SHARDS`]).
//!
//! Eviction *policy* stays in `viz-cache`; the pool only stores what it is
//! given. It does, however, account resident payload bytes so callers can
//! enforce a byte cap (see [`BlockPool::bytes_resident`]).

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};
use viz_volume::BlockKey;

type Map = HashMap<BlockKey, Arc<Vec<f32>>>;
type Shard = RwLock<Map>;

/// Poison-tolerant shard locks: a panicking fetch worker must never make
/// the resident set unreadable for the renderer.
fn rd(shard: &Shard) -> RwLockReadGuard<'_, Map> {
    shard.read().unwrap_or_else(PoisonError::into_inner)
}

fn wr(shard: &Shard) -> RwLockWriteGuard<'_, Map> {
    shard.write().unwrap_or_else(PoisonError::into_inner)
}

/// Shared pool of resident block payloads, sharded by key hash.
#[derive(Debug)]
pub struct BlockPool {
    shards: Box<[Shard]>,
    mask: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    bytes: AtomicUsize,
}

impl Default for BlockPool {
    fn default() -> Self {
        Self::with_shards(Self::DEFAULT_SHARDS)
    }
}

impl BlockPool {
    /// Default shard count: enough that a handful of render threads and
    /// fetch workers rarely collide, small enough to stay cache-friendly.
    pub const DEFAULT_SHARDS: usize = 16;

    /// Create an empty pool with [`Self::DEFAULT_SHARDS`] shards.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty pool with `n` shards (rounded up to a power of two).
    pub fn with_shards(n: usize) -> Self {
        let n = n.max(1).next_power_of_two();
        let shards: Vec<Shard> = (0..n).map(|_| RwLock::new(HashMap::new())).collect();
        BlockPool {
            shards: shards.into_boxed_slice(),
            mask: n - 1,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            bytes: AtomicUsize::new(0),
        }
    }

    fn shard(&self, key: &BlockKey) -> &Shard {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) & self.mask]
    }

    /// Look up a resident block, counting hit/miss statistics.
    pub fn get(&self, key: BlockKey) -> Option<Arc<Vec<f32>>> {
        let got = rd(self.shard(&key)).get(&key).cloned();
        match got {
            Some(b) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(b)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Residency check without statistics side effects.
    pub fn contains(&self, key: BlockKey) -> bool {
        rd(self.shard(&key)).contains_key(&key)
    }

    /// Insert a payload.
    pub fn insert(&self, key: BlockKey, data: Vec<f32>) {
        self.insert_arc(key, Arc::new(data));
    }

    /// Insert an already-shared payload (what the fetch engine hands to
    /// coalesced waiters is the same `Arc` it parks here).
    pub fn insert_arc(&self, key: BlockKey, data: Arc<Vec<f32>>) {
        let added = data.len() * 4;
        let old = wr(self.shard(&key)).insert(key, data);
        if let Some(old) = old {
            self.bytes.fetch_sub(old.len() * 4, Ordering::Relaxed);
        }
        self.bytes.fetch_add(added, Ordering::Relaxed);
    }

    /// Drop a block (eviction decided by the cache layer).
    pub fn remove(&self, key: BlockKey) {
        if let Some(old) = wr(self.shard(&key)).remove(&key) {
            self.bytes.fetch_sub(old.len() * 4, Ordering::Relaxed);
        }
    }

    /// Drop every resident block (dataset/timestep switch).
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            let mut map = wr(shard);
            let freed: usize = map.values().map(|v| v.len() * 4).sum();
            map.clear();
            self.bytes.fetch_sub(freed, Ordering::Relaxed);
        }
    }

    /// Number of resident blocks.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| rd(s).len()).sum()
    }

    /// `true` when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| rd(s).is_empty())
    }

    /// Resident payload bytes (f32 payloads only, not map overhead). Lets
    /// callers enforce a capacity instead of growing without bound.
    pub fn bytes_resident(&self) -> usize {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Snapshot of every resident key (for eviction scans). Taken shard by
    /// shard, so it is a consistent view per shard, not globally atomic.
    pub fn keys(&self) -> Vec<BlockKey> {
        let mut out = Vec::with_capacity(self.len());
        for shard in self.shards.iter() {
            out.extend(rd(shard).keys().copied());
        }
        out
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }

    /// Number of lock shards (for diagnostics).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viz_volume::BlockId;

    fn key(i: u32) -> BlockKey {
        BlockKey::scalar(BlockId(i))
    }

    #[test]
    fn get_insert_remove_and_stats() {
        let pool = BlockPool::new();
        assert!(pool.get(key(1)).is_none());
        pool.insert(key(1), vec![1.0, 2.0]);
        assert_eq!(pool.get(key(1)).unwrap().as_slice(), &[1.0, 2.0]);
        pool.remove(key(1));
        assert!(pool.get(key(1)).is_none());
        assert_eq!(pool.stats(), (1, 2));
    }

    #[test]
    fn byte_accounting_tracks_insert_replace_remove_clear() {
        let pool = BlockPool::with_shards(4);
        assert_eq!(pool.bytes_resident(), 0);
        pool.insert(key(0), vec![0.0; 10]); // 40 bytes
        pool.insert(key(1), vec![0.0; 5]); // 20 bytes
        assert_eq!(pool.bytes_resident(), 60);
        pool.insert(key(0), vec![0.0; 2]); // replace: 40 -> 8
        assert_eq!(pool.bytes_resident(), 28);
        pool.remove(key(1));
        assert_eq!(pool.bytes_resident(), 8);
        pool.remove(key(1)); // double-remove is a no-op
        assert_eq!(pool.bytes_resident(), 8);
        pool.clear();
        assert_eq!(pool.bytes_resident(), 0);
        assert!(pool.is_empty());
    }

    #[test]
    fn keys_and_len_span_all_shards() {
        let pool = BlockPool::with_shards(8);
        for i in 0..100 {
            pool.insert(key(i), vec![i as f32]);
        }
        assert_eq!(pool.len(), 100);
        let mut ks: Vec<u32> = pool.keys().iter().map(|k| k.block.0).collect();
        ks.sort_unstable();
        assert_eq!(ks, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(BlockPool::with_shards(0).num_shards(), 1);
        assert_eq!(BlockPool::with_shards(3).num_shards(), 4);
        assert_eq!(BlockPool::with_shards(16).num_shards(), 16);
    }

    #[test]
    fn concurrent_readers_and_writers_smoke() {
        let pool = Arc::new(BlockPool::new());
        std::thread::scope(|s| {
            for t in 0..4 {
                let pool = pool.clone();
                s.spawn(move || {
                    for i in 0..250u32 {
                        let k = key(t * 1000 + i);
                        pool.insert(k, vec![i as f32; 4]);
                        assert!(pool.contains(k));
                    }
                });
            }
        });
        assert_eq!(pool.len(), 1000);
        assert_eq!(pool.bytes_resident(), 1000 * 16);
    }
}
