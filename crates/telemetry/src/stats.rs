//! The always-on stats plane: named gauges and rotating histograms.
//!
//! The event rings ([`crate::drain`]) are a *consuming* channel — one
//! drain steals the batch from every other consumer, which is exactly
//! right for exporters and exactly wrong for a control loop that wants to
//! peek at live load every few hundred milliseconds without disturbing
//! the trace pipeline. This module is the non-consuming complement:
//!
//! - **Gauges** are named `u64` values behind one registry lock, written
//!   by whoever owns the signal (a controller publishing its current
//!   knob, a server publishing a derived percentile) and read by anything
//!   — the serve layer folds them into its `Stats` wire frames, so a
//!   remote scraper sees them with no extra protocol.
//! - **[`RotatingHist`]** is a mutex-held [`LogHistogram`] with a
//!   `take()` that swaps in a fresh window: the recorder keeps appending,
//!   the controller consumes *windows* (recent p99, not lifetime p99),
//!   and nobody touches the event rings.
//!
//! Cost model: gauges and histograms are always live (like [`crate::Counter`]),
//! one short lock per operation, no per-event allocation. They sit on
//! per-frame paths (one record per served fetch request), not per-key
//! paths, so the lock is uncontended in practice.

use crate::hist::LogHistogram;
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

fn registry() -> MutexGuard<'static, BTreeMap<String, u64>> {
    static REG: OnceLock<Mutex<BTreeMap<String, u64>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(BTreeMap::new())).lock().unwrap_or_else(PoisonError::into_inner)
}

/// Set gauge `name` to `v`, creating it on first use.
pub fn set_gauge(name: &str, v: u64) {
    let mut reg = registry();
    match reg.get_mut(name) {
        Some(slot) => *slot = v,
        None => {
            reg.insert(name.to_string(), v);
        }
    }
}

/// Add `delta` (saturating) to gauge `name`, creating it at `delta`.
pub fn add_gauge(name: &str, delta: u64) {
    let mut reg = registry();
    match reg.get_mut(name) {
        Some(slot) => *slot = slot.saturating_add(delta),
        None => {
            reg.insert(name.to_string(), delta);
        }
    }
}

/// Read gauge `name`; `None` when never set.
pub fn gauge(name: &str) -> Option<u64> {
    registry().get(name).copied()
}

/// Every gauge, sorted by name — the shape `Stats` wire frames append.
pub fn gauges() -> Vec<(String, u64)> {
    registry().iter().map(|(n, v)| (n.clone(), *v)).collect()
}

/// Remove every gauge (test isolation; production never clears).
pub fn clear_gauges() {
    registry().clear();
}

/// A windowed log2 histogram: record continuously, consume in windows.
///
/// `take()` hands the accumulated window to the caller and starts a new
/// one — the controller's "demand p99 over the last control period" read
/// — while `snapshot()` peeks without resetting (diagnostics, gauges).
#[derive(Default)]
pub struct RotatingHist {
    inner: Mutex<LogHistogram>,
}

impl RotatingHist {
    /// An empty window.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, LogHistogram> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Record one value into the current window.
    pub fn record(&self, v: u64) {
        self.lock().record(v);
    }

    /// Swap out the current window, leaving a fresh one behind.
    pub fn take(&self) -> LogHistogram {
        std::mem::take(&mut *self.lock())
    }

    /// Clone the current window without resetting it.
    pub fn snapshot(&self) -> LogHistogram {
        self.lock().clone()
    }

    /// Percentile of the current window (0 when empty) without reset.
    pub fn percentile(&self, p: f64) -> u64 {
        let h = self.lock();
        if h.count() == 0 {
            0
        } else {
            h.percentile(p)
        }
    }

    /// Values recorded in the current window.
    pub fn count(&self) -> u64 {
        self.lock().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    // The gauge registry is process-global; serialize these tests.
    static GUARD: StdMutex<()> = StdMutex::new(());

    #[test]
    fn gauges_set_add_read_sorted() {
        let _g = GUARD.lock().unwrap_or_else(PoisonError::into_inner);
        clear_gauges();
        set_gauge("zeta", 5);
        set_gauge("alpha", 1);
        add_gauge("alpha", 2);
        add_gauge("mid", 7);
        assert_eq!(gauge("alpha"), Some(3));
        assert_eq!(gauge("missing"), None);
        let all = gauges();
        assert_eq!(
            all,
            vec![("alpha".to_string(), 3), ("mid".to_string(), 7), ("zeta".to_string(), 5)]
        );
        set_gauge("alpha", 0);
        assert_eq!(gauge("alpha"), Some(0));
        clear_gauges();
        assert!(gauges().is_empty());
    }

    #[test]
    fn add_gauge_saturates() {
        let _g = GUARD.lock().unwrap_or_else(PoisonError::into_inner);
        clear_gauges();
        set_gauge("sat", u64::MAX - 1);
        add_gauge("sat", 10);
        assert_eq!(gauge("sat"), Some(u64::MAX));
        clear_gauges();
    }

    #[test]
    fn rotating_hist_windows_are_independent() {
        let h = RotatingHist::new();
        for v in [100u64, 200, 400] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert!(h.percentile(0.99) >= 256, "p99 lands in the top bucket range");
        let w1 = h.take();
        assert_eq!(w1.count(), 3);
        assert_eq!(h.count(), 0, "take starts a fresh window");
        assert_eq!(h.percentile(0.99), 0, "empty window reports 0");
        h.record(7);
        let snap = h.snapshot();
        assert_eq!(snap.count(), 1);
        assert_eq!(h.count(), 1, "snapshot does not reset");
    }

    #[test]
    fn rotating_hist_is_shareable_across_threads() {
        use std::sync::Arc;
        let h = Arc::new(RotatingHist::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for v in 1..=1000u64 {
                        h.record(v);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.take().count(), 4000);
    }
}
