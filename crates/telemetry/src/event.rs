//! Event taxonomy: every traced moment in the block lifecycle is one of
//! these kinds, either an *instant* (a point in time) or a *span* (a
//! duration). Events are fixed-size and `Copy` so the per-thread rings
//! never allocate on the hot path.

/// What happened. Covers the full block lifecycle — fetch admit → queue →
/// dispatch → retry/backoff → source read → pool insert → waiter wake —
/// plus cache hit/miss/evict with policy attribution, frame spans with a
/// degraded/skipped cause, circuit-breaker state transitions, and the
/// serve layer's session lifecycle (open/close, admit/shed, cross-client
/// coalescing).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// A demand request was admitted to the engine (instant; `arg` = 1
    /// when it upgraded an already-queued prefetch, 0 for a fresh entry).
    FetchAdmitDemand,
    /// A prefetch was admitted to the queue (instant; `arg` = priority
    /// bits).
    FetchAdmitPrefetch,
    /// A request coalesced onto an existing resident/in-flight/pending
    /// entry (instant; `arg`: 0 resident, 1 in-flight, 2 pending merge).
    FetchCoalesce,
    /// A prefetch was dropped at admission (instant; `arg`: 0 queue full,
    /// 1 shutdown).
    FetchDrop,
    /// A queued prefetch was discarded at dequeue because its generation
    /// was stale (instant; `arg` = generation it carried).
    FetchCancel,
    /// Time a job spent queued, admit → dispatch (span; `arg` = 1 for
    /// demand jobs).
    QueueWait,
    /// One attempt reading the backing source (span; `arg` =
    /// `attempt << 1 | success`).
    SourceRead,
    /// A transient failure will be retried (instant; `arg` = attempt).
    FetchRetry,
    /// Backoff sleep between attempts (span; `arg` = attempt).
    FetchBackoff,
    /// Full service of one job, dispatch → publish (span; `arg` = 1 on
    /// success).
    FetchService,
    /// A fetch failed permanently (instant; `arg` = error-kind code).
    FetchFail,
    /// A payload was published to the block pool (instant; `arg` = payload
    /// length).
    PoolInsert,
    /// Waiters were woken after a publish (instant; `arg` = waiter count).
    WaiterWake,
    /// A read outlived its deadline but still landed in the pool
    /// (instant).
    LateArrival,
    /// A source read hit the per-read timeout and was abandoned
    /// (instant).
    SourceTimeout,
    /// A demand fetch missed its caller deadline (instant).
    DeadlineMiss,
    /// Cache hierarchy hit (instant; `arg` = tier level).
    CacheHit,
    /// Cache hierarchy miss to backing store (instant).
    CacheMiss,
    /// A resident block was evicted (instant; `arg` =
    /// `tier << 8 | policy code`).
    CacheEvict,
    /// One rendered/simulated frame (span; `arg` =
    /// `missing << 8 | degraded`).
    Frame,
    /// One render pass over the sample grid (span; `arg` = pixel count).
    RenderPass,
    /// Circuit breaker Closed/HalfOpen → Open (instant).
    BreakerOpen,
    /// Circuit breaker Open → HalfOpen probe (instant).
    BreakerHalfOpen,
    /// Circuit breaker → Closed (instant).
    BreakerClose,
    /// The breaker rejected a prefetch (instant; `arg`: 0 at admission,
    /// 1 at dequeue).
    BreakerReject,
    /// A fetch worker panicked and was respawned (instant).
    WorkerPanic,
    /// A serve-layer client session was opened (instant; `key` = session
    /// id, `arg` = sessions now registered).
    SessionOpen,
    /// A serve-layer client session was closed (instant; `key` = session
    /// id, `arg` = 1 when closed by a graceful drain, 0 otherwise).
    SessionClose,
    /// A client request passed serve-layer admission (instant; `key` =
    /// session id, `arg` = `demand << 32 | prefetch` counts admitted).
    RequestAdmit,
    /// The serve layer shed or downgraded a prefetch under pressure
    /// (instant; `key` = session id, `arg` = shed-reason code; demand is
    /// never shed).
    RequestShed,
    /// Two *different* sessions coalesced onto one source read (instant;
    /// `key` = salted block key, `arg` = `owner_tag << 32 | incoming_tag`).
    CrossClientCoalesce,
    /// One reactor event-loop iteration (span; `key` = loop id, `arg` =
    /// readiness events handled this tick).
    ReactorTick,
    /// One batched source read covering several keys (span; `key` = salted
    /// key of the first batch member, `arg` = `batch_size << 1 | success`).
    BatchRead,
    /// One peer-node block fetch round trip over VSRV (span; `key` = peer
    /// node id, `arg` = `keys << 1 | success`).
    PeerFetch,
    /// A peer fetch failed after retries and the read fell back to the
    /// local shared-storage path (instant; `key` = peer node id, `arg` =
    /// error-kind code).
    PeerFallback,
    /// A node or router installed a newer shard map (instant; `key` =
    /// node id, `arg` = new map version).
    MapUpdate,
    /// A membership heartbeat (`Ping`) went out to a peer (instant;
    /// `key` = peer node id, `arg` = the sender's map version).
    HeartbeatSent,
    /// Failure detection marked a peer suspect — missed heartbeat
    /// deadline or a hard transport failure (instant; `key` = suspected
    /// node id, `arg` = 1 for a hard failure, 0 for a deadline lapse).
    SuspectNode,
    /// A suspected or down node answered a probe and was re-admitted to
    /// routing (instant; `key` = recovered node id).
    NodeRecovered,
    /// A demand read hedged to a second replica after the primary passed
    /// the latency threshold (instant; `key` = primary node id, `arg` =
    /// 1 when the hedge result was used, 0 when the primary still won).
    HedgedRead,
    /// One router-side fetch round — mint trace id, fan out to owners,
    /// collect replies (span; `key` = minted trace id, `arg` =
    /// `demand_keys << 8 | rounds`).
    RouterFetch,
    /// Server-side handling of one traced request frame, decode → reply
    /// (span; `key` = session id, `arg` = request tag code).
    RpcServe,
    /// A traced request joined an already-pending or in-flight fetch for
    /// the same key; the event's own `trace` is the joining request, `arg`
    /// is the primary trace it merged into (instant; `key` = salted block
    /// key).
    TraceJoin,
    /// The flight recorder captured a triggered snapshot (instant; `key`
    /// = trigger code, `arg` = events captured).
    FlightDump,
    /// The chaos harness injected or repaired a fault (instant; `key` =
    /// target node id, `arg` = `action code << 1 | 1 when repair`).
    FaultInjected,
}

/// Number of event kinds (array sizing for per-kind aggregation).
pub const KIND_COUNT: usize = 45;

impl EventKind {
    /// Every kind, in declaration order.
    pub const ALL: [EventKind; KIND_COUNT] = [
        EventKind::FetchAdmitDemand,
        EventKind::FetchAdmitPrefetch,
        EventKind::FetchCoalesce,
        EventKind::FetchDrop,
        EventKind::FetchCancel,
        EventKind::QueueWait,
        EventKind::SourceRead,
        EventKind::FetchRetry,
        EventKind::FetchBackoff,
        EventKind::FetchService,
        EventKind::FetchFail,
        EventKind::PoolInsert,
        EventKind::WaiterWake,
        EventKind::LateArrival,
        EventKind::SourceTimeout,
        EventKind::DeadlineMiss,
        EventKind::CacheHit,
        EventKind::CacheMiss,
        EventKind::CacheEvict,
        EventKind::Frame,
        EventKind::RenderPass,
        EventKind::BreakerOpen,
        EventKind::BreakerHalfOpen,
        EventKind::BreakerClose,
        EventKind::BreakerReject,
        EventKind::WorkerPanic,
        EventKind::SessionOpen,
        EventKind::SessionClose,
        EventKind::RequestAdmit,
        EventKind::RequestShed,
        EventKind::CrossClientCoalesce,
        EventKind::ReactorTick,
        EventKind::BatchRead,
        EventKind::PeerFetch,
        EventKind::PeerFallback,
        EventKind::MapUpdate,
        EventKind::HeartbeatSent,
        EventKind::SuspectNode,
        EventKind::NodeRecovered,
        EventKind::HedgedRead,
        EventKind::RouterFetch,
        EventKind::RpcServe,
        EventKind::TraceJoin,
        EventKind::FlightDump,
        EventKind::FaultInjected,
    ];

    /// Stable snake_case name used by every exporter.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::FetchAdmitDemand => "fetch_admit_demand",
            EventKind::FetchAdmitPrefetch => "fetch_admit_prefetch",
            EventKind::FetchCoalesce => "fetch_coalesce",
            EventKind::FetchDrop => "fetch_drop",
            EventKind::FetchCancel => "fetch_cancel",
            EventKind::QueueWait => "queue_wait",
            EventKind::SourceRead => "source_read",
            EventKind::FetchRetry => "fetch_retry",
            EventKind::FetchBackoff => "fetch_backoff",
            EventKind::FetchService => "fetch_service",
            EventKind::FetchFail => "fetch_fail",
            EventKind::PoolInsert => "pool_insert",
            EventKind::WaiterWake => "waiter_wake",
            EventKind::LateArrival => "late_arrival",
            EventKind::SourceTimeout => "source_timeout",
            EventKind::DeadlineMiss => "deadline_miss",
            EventKind::CacheHit => "cache_hit",
            EventKind::CacheMiss => "cache_miss",
            EventKind::CacheEvict => "cache_evict",
            EventKind::Frame => "frame",
            EventKind::RenderPass => "render_pass",
            EventKind::BreakerOpen => "breaker_open",
            EventKind::BreakerHalfOpen => "breaker_half_open",
            EventKind::BreakerClose => "breaker_close",
            EventKind::BreakerReject => "breaker_reject",
            EventKind::WorkerPanic => "worker_panic",
            EventKind::SessionOpen => "session_open",
            EventKind::SessionClose => "session_close",
            EventKind::RequestAdmit => "request_admit",
            EventKind::RequestShed => "request_shed",
            EventKind::CrossClientCoalesce => "cross_client_coalesce",
            EventKind::ReactorTick => "reactor_tick",
            EventKind::BatchRead => "batch_read",
            EventKind::PeerFetch => "peer_fetch",
            EventKind::PeerFallback => "peer_fallback",
            EventKind::MapUpdate => "map_update",
            EventKind::HeartbeatSent => "heartbeat_sent",
            EventKind::SuspectNode => "suspect_node",
            EventKind::NodeRecovered => "node_recovered",
            EventKind::HedgedRead => "hedged_read",
            EventKind::RouterFetch => "router_fetch",
            EventKind::RpcServe => "rpc_serve",
            EventKind::TraceJoin => "trace_join",
            EventKind::FlightDump => "flight_dump",
            EventKind::FaultInjected => "fault_injected",
        }
    }

    /// Coarse grouping used as the Chrome trace `cat` field.
    pub fn category(self) -> &'static str {
        match self {
            EventKind::FetchAdmitDemand
            | EventKind::FetchAdmitPrefetch
            | EventKind::FetchCoalesce
            | EventKind::FetchDrop
            | EventKind::FetchCancel
            | EventKind::QueueWait
            | EventKind::SourceRead
            | EventKind::FetchRetry
            | EventKind::FetchBackoff
            | EventKind::FetchService
            | EventKind::FetchFail
            | EventKind::PoolInsert
            | EventKind::WaiterWake
            | EventKind::LateArrival
            | EventKind::SourceTimeout
            | EventKind::DeadlineMiss
            | EventKind::WorkerPanic
            | EventKind::TraceJoin
            | EventKind::BatchRead => "fetch",
            EventKind::CacheHit | EventKind::CacheMiss | EventKind::CacheEvict => "cache",
            EventKind::Frame | EventKind::RenderPass => "frame",
            EventKind::BreakerOpen
            | EventKind::BreakerHalfOpen
            | EventKind::BreakerClose
            | EventKind::BreakerReject => "breaker",
            EventKind::SessionOpen
            | EventKind::SessionClose
            | EventKind::RequestAdmit
            | EventKind::RequestShed
            | EventKind::CrossClientCoalesce
            | EventKind::ReactorTick
            | EventKind::RpcServe => "serve",
            EventKind::PeerFetch
            | EventKind::PeerFallback
            | EventKind::MapUpdate
            | EventKind::HeartbeatSent
            | EventKind::SuspectNode
            | EventKind::NodeRecovered
            | EventKind::HedgedRead
            | EventKind::RouterFetch
            | EventKind::FlightDump
            | EventKind::FaultInjected => "cluster",
        }
    }

    /// Span kinds carry a meaningful duration; instants always record 0.
    pub fn is_span(self) -> bool {
        matches!(
            self,
            EventKind::QueueWait
                | EventKind::SourceRead
                | EventKind::FetchBackoff
                | EventKind::FetchService
                | EventKind::Frame
                | EventKind::RenderPass
                | EventKind::ReactorTick
                | EventKind::BatchRead
                | EventKind::PeerFetch
                | EventKind::RouterFetch
                | EventKind::RpcServe
        )
    }
}

/// One recorded event. 48 bytes, `Copy`, no heap: what the per-thread
/// rings store and what [`crate::drain`] hands back.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Start time in nanoseconds since the telemetry epoch (the moment the
    /// gate was last enabled), or a caller-supplied virtual timestamp.
    pub t_ns: u64,
    /// Duration in nanoseconds; 0 for instants.
    pub dur_ns: u64,
    /// Subject key — usually a salted block key, a frame index, or 0.
    pub key: u64,
    /// Kind-specific argument (see each [`EventKind`]'s docs).
    pub arg: u64,
    /// Distributed trace id this event is attributed to (the thread's
    /// trace context at record time, see [`crate::set_trace`]); 0 when
    /// the work was not serving any traced request.
    pub trace: u64,
    /// What happened.
    pub kind: EventKind,
    /// Recording thread, as a small dense id assigned at first use.
    pub tid: u16,
    /// Recording node's attribution id ([`crate::set_node`]); 0 for
    /// client/unattributed work, cluster nodes record `NodeId + 1`.
    pub node: u16,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn labels_are_unique_and_snake_case() {
        let mut seen = HashSet::new();
        for k in EventKind::ALL {
            let l = k.label();
            assert!(seen.insert(l), "duplicate label {l}");
            assert!(
                l.chars().all(|c| c.is_ascii_lowercase() || c == '_' || c.is_ascii_digit()),
                "label {l} is not snake_case"
            );
        }
        assert_eq!(seen.len(), KIND_COUNT);
    }

    #[test]
    fn categories_cover_all_kinds() {
        for k in EventKind::ALL {
            assert!(matches!(
                k.category(),
                "fetch" | "cache" | "frame" | "breaker" | "serve" | "cluster"
            ));
        }
    }

    #[test]
    fn span_kinds_are_exactly_the_duration_carriers() {
        let spans: Vec<_> = EventKind::ALL.iter().filter(|k| k.is_span()).collect();
        assert_eq!(spans.len(), 11);
    }

    #[test]
    fn trace_event_is_small() {
        assert!(std::mem::size_of::<TraceEvent>() <= 48);
    }
}
