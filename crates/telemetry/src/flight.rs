//! Always-on flight recorder + SLO tracker.
//!
//! The per-thread rings are the first-stage pre-drain buffer; every
//! batch that leaves them through [`crate::drain`] also flows through
//! [`observe`], which (a) retains a bounded copy of the most recent
//! events — so a triggered dump can reach *back in time* past the last
//! scrape — (b) accumulates per-span-kind log-bucketed latency
//! histograms, and (c) evaluates the fault triggers below. Nothing here
//! touches the record hot path: a thread recording events never takes
//! the flight lock; only drains do.
//!
//! Triggers (see [`TriggerKind`]):
//! - **DemandError** — any permanent fetch failure (`FetchFail`).
//! - **DeadlineBurst** — ≥ `deadline_burst` `DeadlineMiss` events inside
//!   `burst_window_ns`.
//! - **BreakerOpen** — a circuit breaker tripped open.
//! - **SloBurn** — over a window of `slo_min_count` `FetchService`
//!   spans, the fraction slower than `slo_ns` reached `slo_burn`.
//!
//! Consumers poll [`take_triggers`] (the chaos harness does this every
//! step) and call [`snapshot`] to capture the recent history — the
//! cluster layer serializes snapshots from every reachable node into one
//! CRC-framed dump file.

use crate::event::{EventKind, TraceEvent, KIND_COUNT};
use crate::hist::LogHistogram;
use std::collections::VecDeque;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Why a snapshot was triggered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum TriggerKind {
    /// A demand fetch failed permanently.
    DemandError = 1,
    /// A burst of demand deadline misses.
    DeadlineBurst = 2,
    /// A circuit breaker opened.
    BreakerOpen = 3,
    /// The latency SLO burn rate crossed its threshold.
    SloBurn = 4,
}

impl TriggerKind {
    /// Stable wire code.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Decode a wire code.
    pub fn from_code(code: u8) -> Option<TriggerKind> {
        match code {
            1 => Some(TriggerKind::DemandError),
            2 => Some(TriggerKind::DeadlineBurst),
            3 => Some(TriggerKind::BreakerOpen),
            4 => Some(TriggerKind::SloBurn),
            _ => None,
        }
    }

    /// Stable snake_case name.
    pub fn label(self) -> &'static str {
        match self {
            TriggerKind::DemandError => "demand_error",
            TriggerKind::DeadlineBurst => "deadline_burst",
            TriggerKind::BreakerOpen => "breaker_open",
            TriggerKind::SloBurn => "slo_burn",
        }
    }
}

/// One fired trigger.
#[derive(Clone, Copy, Debug)]
pub struct Trigger {
    /// What fired.
    pub kind: TriggerKind,
    /// Timestamp (ns since epoch) of the event that fired it.
    pub t_ns: u64,
    /// The firing event's subject key (block key, breaker id, …).
    pub key: u64,
}

/// Flight-recorder tuning. The defaults suit the interactive-frame
/// workload: a burst is 4 misses inside one ~33 ms frame pair, the SLO
/// is 50 ms demand service with a 20% burn threshold over 64 services.
#[derive(Clone, Copy, Debug)]
pub struct FlightConfig {
    /// Events retained in the recent-history buffer (drop-oldest).
    pub capacity: usize,
    /// `DeadlineMiss` count that constitutes a burst…
    pub deadline_burst: usize,
    /// …within this window (ns, over event timestamps).
    pub burst_window_ns: u64,
    /// Demand service latency SLO (ns) for burn-rate tracking.
    pub slo_ns: u64,
    /// Burn-rate threshold in `[0, 1]`: fraction of services over
    /// `slo_ns` that fires [`TriggerKind::SloBurn`].
    pub slo_burn: f64,
    /// Services per burn-rate evaluation window.
    pub slo_min_count: u64,
}

impl Default for FlightConfig {
    fn default() -> Self {
        FlightConfig {
            capacity: 1 << 14,
            deadline_burst: 4,
            burst_window_ns: 66_000_000,
            slo_ns: 50_000_000,
            slo_burn: 0.2,
            slo_min_count: 64,
        }
    }
}

/// A captured flight snapshot: the recent-history window plus the
/// cumulative latency summaries, ready to serialize into a dump.
#[derive(Clone)]
pub struct FlightSnapshot {
    /// Most recent events, time-sorted, up to the configured capacity.
    pub events: Vec<TraceEvent>,
    /// Cumulative ring-overflow drops, process lifetime
    /// ([`crate::dropped_total`]).
    pub dropped: u64,
    /// Triggers fired since the last [`take_triggers`] (left in place —
    /// snapshotting must not race the poller out of its edge).
    pub triggers: Vec<Trigger>,
    /// Per-span-kind duration histograms accumulated since the last
    /// [`reset`], as `(kind, histogram)` for kinds with any data.
    pub hists: Vec<(EventKind, LogHistogram)>,
}

struct FlightState {
    cfg: FlightConfig,
    history: VecDeque<TraceEvent>,
    hists: Box<[LogHistogram]>,
    recent_misses: VecDeque<u64>,
    slo_total: u64,
    slo_over: u64,
    triggers: Vec<Trigger>,
}

impl FlightState {
    fn new(cfg: FlightConfig) -> FlightState {
        FlightState {
            cfg,
            history: VecDeque::new(),
            hists: (0..KIND_COUNT).map(|_| LogHistogram::new()).collect(),
            recent_misses: VecDeque::new(),
            slo_total: 0,
            slo_over: 0,
            triggers: Vec::new(),
        }
    }

    fn fire(&mut self, kind: TriggerKind, ev: &TraceEvent) {
        self.triggers.push(Trigger { kind, t_ns: ev.t_ns, key: ev.key });
    }

    fn observe_one(&mut self, ev: &TraceEvent) {
        if self.history.len() >= self.cfg.capacity {
            self.history.pop_front();
        }
        self.history.push_back(*ev);
        if ev.kind.is_span() {
            self.hists[ev.kind as usize].record(ev.dur_ns);
        }
        match ev.kind {
            EventKind::FetchFail => self.fire(TriggerKind::DemandError, ev),
            EventKind::BreakerOpen => self.fire(TriggerKind::BreakerOpen, ev),
            EventKind::DeadlineMiss => {
                let horizon = ev.t_ns.saturating_sub(self.cfg.burst_window_ns);
                while self.recent_misses.front().is_some_and(|&t| t < horizon) {
                    self.recent_misses.pop_front();
                }
                self.recent_misses.push_back(ev.t_ns);
                if self.recent_misses.len() >= self.cfg.deadline_burst {
                    self.fire(TriggerKind::DeadlineBurst, ev);
                    // One trigger per burst, not one per miss past the
                    // threshold.
                    self.recent_misses.clear();
                }
            }
            EventKind::FetchService => {
                self.slo_total += 1;
                if ev.dur_ns > self.cfg.slo_ns {
                    self.slo_over += 1;
                }
                if self.slo_total >= self.cfg.slo_min_count {
                    let burn = self.slo_over as f64 / self.slo_total as f64;
                    if burn >= self.cfg.slo_burn {
                        self.fire(TriggerKind::SloBurn, ev);
                    }
                    self.slo_total = 0;
                    self.slo_over = 0;
                }
            }
            _ => {}
        }
    }
}

fn state() -> &'static Mutex<FlightState> {
    static STATE: OnceLock<Mutex<FlightState>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(FlightState::new(FlightConfig::default())))
}

fn lock() -> MutexGuard<'static, FlightState> {
    match state().lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// Replace the recorder's tuning. History, histograms, and pending
/// triggers are kept; only thresholds and capacity change (the history
/// shrinks lazily as new events arrive).
pub fn configure(cfg: FlightConfig) {
    lock().cfg = cfg;
}

/// Feed one drained batch through the recorder. Called by
/// [`crate::drain`] with the batch it is about to hand out; events must
/// be time-sorted.
pub(crate) fn observe(events: &[TraceEvent], _ring_dropped: u64) {
    if events.is_empty() {
        return;
    }
    let mut st = lock();
    for ev in events {
        st.observe_one(ev);
    }
}

/// Triggers fired since the last call (edge-drained).
pub fn take_triggers() -> Vec<Trigger> {
    std::mem::take(&mut lock().triggers)
}

/// Capture the current flight window. Pumps the rings first (via
/// [`crate::drain`]) so events recorded since the last scrape are
/// included; those events are thereby consumed from the regular drain
/// stream — a dump supersedes the scrape it raced with.
pub fn snapshot() -> FlightSnapshot {
    let _ = crate::drain();
    snapshot_history()
}

/// Capture the current flight window without pumping the rings —
/// for callers that just drained (e.g. a `TelemetryGet` handler).
pub fn snapshot_history() -> FlightSnapshot {
    let st = lock();
    FlightSnapshot {
        events: st.history.iter().copied().collect(),
        dropped: crate::dropped_total(),
        triggers: st.triggers.clone(),
        hists: EventKind::ALL
            .iter()
            .filter(|k| st.hists[**k as usize].count() > 0)
            .map(|&k| (k, st.hists[k as usize].clone()))
            .collect(),
    }
}

/// Clear history, histograms, SLO windows, and pending triggers (fresh
/// recording window; called by [`crate::reset`]).
pub fn reset() {
    let mut st = lock();
    let cfg = st.cfg;
    *st = FlightState::new(cfg);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, t_ns: u64, dur_ns: u64) -> TraceEvent {
        TraceEvent { t_ns, dur_ns, key: 0xF11, arg: 0, trace: 7, kind, tid: 1, node: 2 }
    }

    // The recorder is process-global, shared with the lib tests that
    // call drain(); serialize the trigger-edge tests against each other
    // and check only what each injected.
    static GUARD: Mutex<()> = Mutex::new(());

    fn serial() -> MutexGuard<'static, ()> {
        match GUARD.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    fn serial_reset(cfg: FlightConfig) {
        reset();
        configure(cfg);
    }

    #[test]
    fn history_is_bounded_and_keeps_newest() {
        let _g = serial();
        serial_reset(FlightConfig { capacity: 8, ..FlightConfig::default() });
        let batch: Vec<_> = (0..20).map(|i| ev(EventKind::CacheHit, i, 0)).collect();
        observe(&batch, 0);
        let snap = snapshot_history();
        let mine: Vec<_> = snap.events.iter().filter(|e| e.key == 0xF11).collect();
        assert!(mine.len() <= 8);
        assert_eq!(mine.last().unwrap().t_ns, 19, "newest survives");
        serial_reset(FlightConfig::default());
    }

    #[test]
    fn deadline_burst_fires_once_per_burst() {
        let _g = serial();
        serial_reset(FlightConfig {
            deadline_burst: 3,
            burst_window_ns: 100,
            ..FlightConfig::default()
        });
        let _ = take_triggers();
        // Two misses far apart: no burst.
        observe(&[ev(EventKind::DeadlineMiss, 0, 0), ev(EventKind::DeadlineMiss, 1_000, 0)], 0);
        assert!(take_triggers().iter().all(|t| t.kind != TriggerKind::DeadlineBurst));
        // Three misses inside the window: exactly one trigger.
        let batch: Vec<_> = (0..3).map(|i| ev(EventKind::DeadlineMiss, 2_000 + i, 0)).collect();
        observe(&batch, 0);
        let fired: Vec<_> =
            take_triggers().into_iter().filter(|t| t.kind == TriggerKind::DeadlineBurst).collect();
        assert_eq!(fired.len(), 1);
        serial_reset(FlightConfig::default());
    }

    #[test]
    fn demand_error_and_breaker_open_trigger_immediately() {
        let _g = serial();
        serial_reset(FlightConfig::default());
        let _ = take_triggers();
        observe(&[ev(EventKind::FetchFail, 5, 0), ev(EventKind::BreakerOpen, 6, 0)], 0);
        let kinds: Vec<_> = take_triggers().into_iter().map(|t| t.kind).collect();
        assert!(kinds.contains(&TriggerKind::DemandError));
        assert!(kinds.contains(&TriggerKind::BreakerOpen));
        serial_reset(FlightConfig::default());
    }

    #[test]
    fn slo_burn_fires_on_slow_window() {
        let _g = serial();
        serial_reset(FlightConfig {
            slo_ns: 1_000,
            slo_burn: 0.5,
            slo_min_count: 4,
            ..FlightConfig::default()
        });
        let _ = take_triggers();
        // 4 fast services: no burn.
        let fast: Vec<_> = (0..4).map(|i| ev(EventKind::FetchService, i, 10)).collect();
        observe(&fast, 0);
        assert!(take_triggers().iter().all(|t| t.kind != TriggerKind::SloBurn));
        // 2 fast + 2 slow = 50% burn: fires.
        let mixed = vec![
            ev(EventKind::FetchService, 10, 10),
            ev(EventKind::FetchService, 11, 9_999),
            ev(EventKind::FetchService, 12, 10),
            ev(EventKind::FetchService, 13, 8_888),
        ];
        observe(&mixed, 0);
        let fired: Vec<_> =
            take_triggers().into_iter().filter(|t| t.kind == TriggerKind::SloBurn).collect();
        assert_eq!(fired.len(), 1);
        serial_reset(FlightConfig::default());
    }

    #[test]
    fn span_histograms_accumulate() {
        let _g = serial();
        serial_reset(FlightConfig::default());
        observe(
            &[
                ev(EventKind::SourceRead, 0, 100),
                ev(EventKind::SourceRead, 1, 300),
                ev(EventKind::CacheHit, 2, 0),
            ],
            0,
        );
        let snap = snapshot_history();
        let (_, h) = snap
            .hists
            .iter()
            .find(|(k, _)| *k == EventKind::SourceRead)
            .expect("source_read histogram present");
        assert!(h.count() >= 2);
        assert!(h.max() >= 300);
        assert!(!snap.hists.iter().any(|(k, _)| *k == EventKind::CacheHit), "instants not timed");
        serial_reset(FlightConfig::default());
    }

    #[test]
    fn trigger_codes_roundtrip() {
        for k in [
            TriggerKind::DemandError,
            TriggerKind::DeadlineBurst,
            TriggerKind::BreakerOpen,
            TriggerKind::SloBurn,
        ] {
            assert_eq!(TriggerKind::from_code(k.code()), Some(k));
        }
        assert_eq!(TriggerKind::from_code(0), None);
        assert_eq!(TriggerKind::from_code(9), None);
    }
}
