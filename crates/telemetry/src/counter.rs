//! Named atomic counters: the always-on complement to the event rings.
//!
//! Counters are cheap enough to leave unconditional (one relaxed RMW), so
//! the engine's existing metrics structs become thin facades over these —
//! same numbers, plus a name that the Prometheus exporter can expose
//! without a separate mapping table.

use std::sync::atomic::{AtomicU64, Ordering};

/// A named monotonic (or min/max-tracking) `u64` counter. `const`-
/// constructible so metrics structs can hold them without lazy init.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// A counter starting at zero.
    pub const fn new(name: &'static str) -> Counter {
        Counter { name, value: AtomicU64::new(0) }
    }

    /// A counter with an explicit initial value (e.g. `u64::MAX` for a
    /// running minimum).
    pub const fn with_initial(name: &'static str, v: u64) -> Counter {
        Counter { name, value: AtomicU64::new(v) }
    }

    /// The exposition name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Add 1.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Overwrite (gauges, resets).
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Lower the value to `v` if smaller (running minimum).
    pub fn min_of(&self, v: u64) {
        self.value.fetch_min(v, Ordering::Relaxed);
    }

    /// Raise the value to `v` if larger (running maximum).
    pub fn max_of(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}={}", self.name, self.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let c = Counter::new("reads");
        assert_eq!(c.name(), "reads");
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        c.set(3);
        assert_eq!(c.get(), 3);
    }

    #[test]
    fn min_max_tracking() {
        let lo = Counter::with_initial("lat_min_ns", u64::MAX);
        let hi = Counter::new("lat_max_ns");
        for v in [500u64, 100, 900, 250] {
            lo.min_of(v);
            hi.max_of(v);
        }
        assert_eq!(lo.get(), 100);
        assert_eq!(hi.get(), 900);
    }

    #[test]
    fn concurrent_increments_do_not_lose_counts() {
        static C: Counter = Counter::new("concurrent");
        let threads: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..10_000 {
                        C.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(C.get(), 40_000);
    }
}
