//! # viz-telemetry — unified tracing for the viz pipeline
//!
//! Zero-dependency observability: per-thread lock-free event rings behind
//! a global on/off gate, log-bucketed histograms, named counters, and
//! three exporters (Chrome trace-event JSON, Prometheus text exposition,
//! per-run summary JSON).
//!
//! Design points:
//!
//! - **Off means off.** Every recording call starts with one relaxed
//!   atomic load of the gate; when disabled, nothing else happens — no
//!   clock reads, no TLS access, no allocation. [`start`] returns `None`
//!   when disabled so call sites skip their `Instant::now()` too.
//! - **Recording never blocks.** Each thread writes to its own SPSC ring;
//!   a full ring drops the newest event and counts it. The only lock in
//!   the crate serializes [`drain`] against ring registration.
//! - **One timeline.** All built-in instrumentation records wall-clock
//!   time relative to a single epoch (set when the gate turns on), so one
//!   [`drain`] yields a coherent cross-crate trace. [`span_at`] /
//!   [`instant_at`] accept caller-supplied timestamps for virtual-time
//!   traces.
//!
//! ```
//! viz_telemetry::set_enabled(true);
//! let t0 = viz_telemetry::start();
//! // ... do the work being measured ...
//! viz_telemetry::span(viz_telemetry::EventKind::SourceRead, 0xB10C, 1, t0);
//! let trace = viz_telemetry::drain();
//! assert_eq!(trace.count(viz_telemetry::EventKind::SourceRead), 1);
//! viz_telemetry::set_enabled(false);
//! ```

pub mod collect;
mod counter;
mod event;
mod export;
pub mod flight;
mod hist;
mod ring;
pub mod stats;

pub use counter::Counter;
pub use event::{EventKind, TraceEvent, KIND_COUNT};
pub use export::{json, prometheus_text, Trace};
pub use hist::{LogHistogram, BUCKETS};
pub use ring::{dropped_total, ring_count};

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Turn event recording on or off. Enabling pins the epoch that all
/// wall-clock timestamps are measured from (first enable wins). Counters
/// are unaffected — they are always live.
pub fn set_enabled(on: bool) {
    if on {
        epoch();
    }
    ENABLED.store(on, Ordering::Release);
}

/// Is recording on? One relaxed load — cheap enough for every hot path.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Start a span clock: `Some(Instant::now())` when recording, `None`
/// when off. Pass the result to [`span`] at the end of the region.
#[inline]
pub fn start() -> Option<Instant> {
    if enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

fn since_epoch(t: Instant) -> u64 {
    t.saturating_duration_since(epoch()).as_nanos() as u64
}

/// Nanoseconds since the telemetry epoch — the clock every event
/// timestamp is measured on. Usable with the gate off (the epoch pins on
/// first use); heartbeat `Pong`s carry it so a collector can estimate
/// per-node clock offsets from RTT midpoints.
pub fn now_ns() -> u64 {
    since_epoch(Instant::now())
}

/// Record a point event at the current wall-clock time.
#[inline]
pub fn instant(kind: EventKind, key: u64, arg: u64) {
    if !enabled() {
        return;
    }
    let t_ns = since_epoch(Instant::now());
    push(kind, key, arg, t_ns, 0);
}

/// Close a span opened with [`start`]. No-op when `started` is `None`
/// (the gate was off at open) or the gate is off now.
#[inline]
pub fn span(kind: EventKind, key: u64, arg: u64, started: Option<Instant>) {
    if let Some(t0) = started {
        span_from(kind, key, arg, t0);
    }
}

/// Close a span whose start `Instant` was measured by the caller (e.g. an
/// engine that already timestamps jobs for its own metrics).
#[inline]
pub fn span_from(kind: EventKind, key: u64, arg: u64, t0: Instant) {
    if !enabled() {
        return;
    }
    let dur_ns = t0.elapsed().as_nanos() as u64;
    push(kind, key, arg, since_epoch(t0), dur_ns);
}

/// Record a span with caller-supplied timestamps (virtual-time traces,
/// replays).
#[inline]
pub fn span_at(kind: EventKind, key: u64, arg: u64, t_ns: u64, dur_ns: u64) {
    if !enabled() {
        return;
    }
    push(kind, key, arg, t_ns, dur_ns);
}

/// Record a point event with a caller-supplied timestamp.
#[inline]
pub fn instant_at(kind: EventKind, key: u64, arg: u64, t_ns: u64) {
    if !enabled() {
        return;
    }
    push(kind, key, arg, t_ns, 0);
}

// ---- trace / node attribution context ------------------------------
//
// Both are plain thread-locals read only *after* the gate check, so the
// gate-off hot path stays one relaxed load. The trace context names the
// originating client request a thread is currently working for (minted
// by the Router, carried over VSRV); the node context names which
// in-process cluster node the thread belongs to, letting one process
// host many nodes (the deterministic TestCluster) and still split the
// merged ring drain per node.

thread_local! {
    static TRACE_CTX: Cell<u64> = const { Cell::new(0) };
    static NODE_CTX: Cell<u16> = const { Cell::new(0) };
}

/// Set the calling thread's trace context; every event recorded by this
/// thread carries it until changed. Returns the previous value so scoped
/// callers can restore it. 0 means "no traced request".
#[inline]
pub fn set_trace(trace: u64) -> u64 {
    TRACE_CTX.with(|c| c.replace(trace))
}

/// The calling thread's current trace context (0 when none).
#[inline]
pub fn current_trace() -> u64 {
    TRACE_CTX.with(Cell::get)
}

/// Set the calling thread's node attribution id (0 = client /
/// unattributed; cluster nodes record `NodeId + 1`). Returns the
/// previous value.
#[inline]
pub fn set_node(node: u16) -> u16 {
    NODE_CTX.with(|c| c.replace(node))
}

/// The calling thread's current node attribution id.
#[inline]
pub fn current_node() -> u16 {
    NODE_CTX.with(Cell::get)
}

/// Run `f` with the thread's trace context set to `trace`, restoring the
/// previous context on the way out (panic-safe via the guard's `Drop`).
pub fn with_trace<R>(trace: u64, f: impl FnOnce() -> R) -> R {
    struct Restore(u64);
    impl Drop for Restore {
        fn drop(&mut self) {
            set_trace(self.0);
        }
    }
    let _g = Restore(set_trace(trace));
    f()
}

/// Run `f` with the thread's node attribution set to `node`, restoring
/// the previous value on the way out.
pub fn with_node<R>(node: u16, f: impl FnOnce() -> R) -> R {
    struct Restore(u16);
    impl Drop for Restore {
        fn drop(&mut self) {
            set_node(self.0);
        }
    }
    let _g = Restore(set_node(node));
    f()
}

fn push(kind: EventKind, key: u64, arg: u64, t_ns: u64, dur_ns: u64) {
    // Only reached with the gate on; the two TLS reads are the whole
    // cost of attribution.
    let trace = current_trace();
    let node = current_node();
    let ev = TraceEvent { t_ns, dur_ns, key, arg, trace, kind, tid: 0, node };
    ring::with_local(|r| r.push(ev));
}

/// Drain every thread's ring into one time-sorted [`Trace`]. Events
/// recorded after the drain starts land in the next drain. Every drained
/// batch also flows through the flight recorder ([`flight`]), which
/// retains a bounded recent-history copy and evaluates its triggers.
pub fn drain() -> Trace {
    let (mut events, dropped) = ring::drain_all();
    events.sort_by_key(|e| (e.t_ns, e.tid));
    flight::observe(&events, dropped);
    Trace { events, dropped }
}

/// Discard all buffered events (start a fresh recording window). Also
/// clears the flight recorder's history and trigger state.
pub fn reset() {
    let _ = ring::drain_all();
    flight::reset();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // The gate and rings are process-global: serialize the tests that
    // toggle them so they cannot observe each other's events.
    static GUARD: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        match GUARD.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    #[test]
    fn disabled_gate_records_nothing() {
        let _g = lock();
        set_enabled(false);
        reset();
        assert!(start().is_none());
        instant(EventKind::CacheHit, 1, 0);
        span_at(EventKind::Frame, 2, 0, 100, 50);
        let t = drain();
        assert!(t.events.is_empty());
        assert_eq!(t.dropped, 0);
    }

    #[test]
    fn wall_clock_spans_measure_elapsed_time() {
        let _g = lock();
        set_enabled(true);
        reset();
        let t0 = start();
        assert!(t0.is_some());
        std::thread::sleep(std::time::Duration::from_millis(2));
        span(EventKind::SourceRead, 0xF00, 9, t0);
        instant(EventKind::PoolInsert, 0xF00, 4096);
        let t = drain();
        set_enabled(false);
        let reads: Vec<_> =
            t.events.iter().filter(|e| e.kind == EventKind::SourceRead && e.key == 0xF00).collect();
        assert_eq!(reads.len(), 1);
        assert!(reads[0].dur_ns >= 2_000_000, "slept 2ms, got {}ns", reads[0].dur_ns);
        let inserts: Vec<_> =
            t.events.iter().filter(|e| e.kind == EventKind::PoolInsert && e.key == 0xF00).collect();
        assert_eq!(inserts.len(), 1);
        assert_eq!(inserts[0].arg, 4096);
        // Sorted timeline: the insert comes at-or-after the read start.
        assert!(inserts[0].t_ns >= reads[0].t_ns);
    }

    #[test]
    fn virtual_time_events_keep_caller_timestamps() {
        let _g = lock();
        set_enabled(true);
        reset();
        span_at(EventKind::Frame, 3, 1, 5_000, 16_000_000);
        instant_at(EventKind::DeadlineMiss, 3, 0, 21_000_000);
        let t = drain();
        set_enabled(false);
        let frame = t.events.iter().find(|e| e.kind == EventKind::Frame && e.key == 3).unwrap();
        assert_eq!((frame.t_ns, frame.dur_ns, frame.arg), (5_000, 16_000_000, 1));
        let miss =
            t.events.iter().find(|e| e.kind == EventKind::DeadlineMiss && e.key == 3).unwrap();
        assert_eq!(miss.t_ns, 21_000_000);
    }

    #[test]
    fn multithreaded_events_merge_into_one_sorted_trace() {
        let _g = lock();
        set_enabled(true);
        reset();
        let threads: Vec<_> = (0..4u64)
            .map(|t| {
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        instant(EventKind::WaiterWake, 0xBEEF_0000 + t, i);
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        let t = drain();
        set_enabled(false);
        let mine: Vec<_> = t
            .events
            .iter()
            .filter(|e| e.kind == EventKind::WaiterWake && (e.key & 0xFFFF_0000) == 0xBEEF_0000)
            .collect();
        assert_eq!(mine.len() as u64 + t.dropped, 2_000);
        assert!(t.events.windows(2).all(|w| (w[0].t_ns, w[0].tid) <= (w[1].t_ns, w[1].tid)));
        // Distinct producer threads got distinct tids.
        let tids: std::collections::HashSet<u16> = mine.iter().map(|e| e.tid).collect();
        assert!(tids.len() > 1 || mine.len() < 2);
    }

    #[test]
    fn trace_and_node_context_stamp_events() {
        let _g = lock();
        set_enabled(true);
        reset();
        with_node(3, || {
            with_trace(0xABCD, || instant(EventKind::CacheHit, 0x7AC0, 1));
            assert_eq!(current_trace(), 0, "with_trace restored");
        });
        assert_eq!(current_node(), 0, "with_node restored");
        instant(EventKind::CacheMiss, 0x7AC1, 0);
        let t = drain();
        set_enabled(false);
        let hit = t.events.iter().find(|e| e.key == 0x7AC0).unwrap();
        assert_eq!((hit.trace, hit.node), (0xABCD, 3));
        let miss = t.events.iter().find(|e| e.key == 0x7AC1).unwrap();
        assert_eq!((miss.trace, miss.node), (0, 0), "context does not leak");
    }

    #[test]
    fn drained_trace_exports_roundtrip_through_validator() {
        let _g = lock();
        set_enabled(true);
        reset();
        for i in 0..10 {
            instant(EventKind::CacheEvict, i, i << 8);
            span_at(EventKind::QueueWait, i, 1, i * 100, 42);
        }
        let t = drain();
        set_enabled(false);
        json::validate(&t.chrome_trace_json()).unwrap();
        json::validate(&t.summary_json()).unwrap();
        let p = t.prometheus_text(&[("extra", 1)]);
        assert!(p.contains("viz_counter_total{name=\"extra\"} 1"));
    }
}
