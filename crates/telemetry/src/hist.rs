//! Log-bucketed HDR-style histogram: fixed 252 buckets covering the full
//! `u64` range with 2 significant bits of resolution (≤ ~25% relative
//! error per bucket), zero allocation after construction, mergeable.
//!
//! Values 0–3 get exact buckets; above that each power-of-two octave is
//! split into 4 sub-buckets. Percentiles are answered from the bucket
//! upper bounds, clamped to the recorded max so `percentile(1.0) == max`.

/// Number of buckets: 4 exact + 60 octaves × 4 sub-buckets.
pub const BUCKETS: usize = 252;

/// Fixed-size log-bucketed histogram over `u64` values (nanoseconds,
/// bytes, counts — unit-agnostic).
#[derive(Clone)]
pub struct LogHistogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

/// Bucket index for `v`: exact below 4, then `(msb - 1) * 4 + 2-bit
/// mantissa`.
fn bucket_of(v: u64) -> usize {
    if v < 4 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as usize;
    let sub = ((v >> (msb - 2)) & 3) as usize;
    (msb - 1) * 4 + sub
}

/// Inclusive upper bound of bucket `i` (the value reported for
/// percentiles landing in it).
fn bucket_bound(i: usize) -> u64 {
    if i < 4 {
        return i as u64;
    }
    if i >= BUCKETS - 1 {
        return u64::MAX;
    }
    let msb = i / 4 + 1;
    let sub = (i % 4) as u64;
    let base = 1u64 << msb;
    let step = 1u64 << (msb - 2);
    base + step * (sub + 1) - 1
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram { counts: [0; BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at quantile `p` in `[0, 1]`: the upper bound of the bucket
    /// holding the rank-`⌈p·count⌉` value, clamped to the recorded max.
    /// Within ~25% of the true value by construction; 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(inclusive upper bound, count)`, ascending —
    /// the exposition format Prometheus-style exporters consume.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().enumerate().filter(|(_, &c)| c > 0).map(|(i, &c)| (bucket_bound(i), c))
    }

    /// Non-empty buckets as `(bucket index, count)` pairs plus the scalar
    /// summary — the wire form `TelemetryGet` ships (sparse: a latency
    /// histogram rarely touches more than a few dozen of the 252
    /// buckets).
    pub fn sparse(&self) -> (Vec<(u16, u64)>, u64, u64, u64, u64) {
        let pairs = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i as u16, c))
            .collect();
        (pairs, self.count, self.sum, self.min(), self.max)
    }

    /// Rebuild a histogram from its [`LogHistogram::sparse`] form.
    /// Out-of-range bucket indices are ignored.
    pub fn from_sparse(pairs: &[(u16, u64)], count: u64, sum: u64, min: u64, max: u64) -> Self {
        let mut h = LogHistogram::new();
        for &(i, c) in pairs {
            if let Some(slot) = h.counts.get_mut(i as usize) {
                *slot += c;
            }
        }
        h.count = count;
        h.sum = sum;
        h.min = if count == 0 { u64::MAX } else { min };
        h.max = max;
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..4u64 {
            assert_eq!(bucket_of(v), v as usize);
            assert_eq!(bucket_bound(v as usize), v);
        }
    }

    #[test]
    fn buckets_are_monotone_and_cover_u64() {
        let mut prev = 0;
        for i in 1..BUCKETS {
            let b = bucket_bound(i);
            assert!(b > prev, "bucket {i} bound {b} <= {prev}");
            prev = b;
        }
        assert_eq!(bucket_bound(BUCKETS - 1), u64::MAX);
        // Every value maps into a bucket whose bound is >= the value and
        // within 25% relative error.
        for &v in &[4u64, 5, 7, 8, 9, 100, 1_000, 1 << 20, (1 << 40) + 3, u64::MAX] {
            let i = bucket_of(v);
            assert!(i < BUCKETS);
            let bound = bucket_bound(i);
            assert!(bound >= v, "bound {bound} < value {v}");
            assert!(
                (bound - v) as f64 <= 0.25 * v as f64 + 1.0,
                "bucket error too large for {v}: bound {bound}"
            );
        }
    }

    #[test]
    fn percentiles_track_a_known_distribution() {
        let mut h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.sum(), 500_500);
        assert!((h.mean() - 500.5).abs() < 1e-9);
        let p50 = h.percentile(0.50);
        let p99 = h.percentile(0.99);
        assert!((450..=650).contains(&p50), "p50 = {p50}");
        assert!((950..=1000).contains(&p99), "p99 = {p99}");
        assert_eq!(h.percentile(1.0), 1000, "p100 clamps to max");
        assert_eq!(h.percentile(0.0), h.percentile(0.001));
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.buckets().count(), 0);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut both = LogHistogram::new();
        for v in [3u64, 17, 500, 123_456, 9] {
            a.record(v);
            both.record(v);
        }
        for v in [1u64, 1_000_000, 42] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.sum(), both.sum());
        assert_eq!(a.min(), both.min());
        assert_eq!(a.max(), both.max());
        for p in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.percentile(p), both.percentile(p));
        }
    }

    #[test]
    fn extreme_values_do_not_overflow() {
        let mut h = LogHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.sum(), u64::MAX, "sum saturates");
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.min(), 0);
        assert_eq!(h.percentile(0.9), u64::MAX);
    }

    #[test]
    fn sparse_roundtrip_preserves_everything() {
        let mut h = LogHistogram::new();
        for v in [0u64, 3, 17, 500, 123_456, 9, 1 << 40] {
            h.record(v);
        }
        let (pairs, count, sum, min, max) = h.sparse();
        let back = LogHistogram::from_sparse(&pairs, count, sum, min, max);
        assert_eq!(back.count(), h.count());
        assert_eq!(back.sum(), h.sum());
        assert_eq!(back.min(), h.min());
        assert_eq!(back.max(), h.max());
        for p in [0.1, 0.5, 0.9, 1.0] {
            assert_eq!(back.percentile(p), h.percentile(p));
        }
        let (ep, ec, es, emin, emax) = LogHistogram::new().sparse();
        assert!(ep.is_empty());
        let empty = LogHistogram::from_sparse(&ep, ec, es, emin, emax);
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.min(), 0);
    }

    #[test]
    fn bucket_iter_counts_match_total() {
        let mut h = LogHistogram::new();
        for v in 0..10_000u64 {
            h.record(v * 7);
        }
        let total: u64 = h.buckets().map(|(_, c)| c).sum();
        assert_eq!(total, h.count());
        let bounds: Vec<u64> = h.buckets().map(|(b, _)| b).collect();
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "ascending bounds");
    }
}
