//! Drained-trace container and the three exporters: Chrome trace-event
//! JSON (Perfetto-loadable), Prometheus-style text exposition, and a
//! per-run summary JSON. All output is hand-assembled so the crate stays
//! dependency-free; [`json::validate`] gives tests and bench bins an
//! offline syntax check.

use crate::event::{EventKind, TraceEvent, KIND_COUNT};
use crate::hist::LogHistogram;
use std::fmt::Write as _;

/// A drained, time-sorted snapshot of every per-thread ring.
#[derive(Clone, Default)]
pub struct Trace {
    /// Events sorted by `(t_ns, tid)`.
    pub events: Vec<TraceEvent>,
    /// Events lost to ring overflow since the previous drain.
    pub dropped: u64,
}

impl Trace {
    /// Number of events of `kind`.
    pub fn count(&self, kind: EventKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// Duration histogram over the span events of `kind` (empty for
    /// instants).
    pub fn histogram(&self, kind: EventKind) -> LogHistogram {
        let mut h = LogHistogram::new();
        for e in self.events.iter().filter(|e| e.kind == kind && e.kind.is_span()) {
            h.record(e.dur_ns);
        }
        h
    }

    /// Chrome trace-event JSON: an object with a `traceEvents` array,
    /// loadable in Perfetto / `chrome://tracing`. Spans become complete
    /// (`"X"`) events, instants become thread-scoped (`"i"`) events;
    /// timestamps are microseconds with nanosecond precision kept as three
    /// decimals.
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 128);
        out.push_str("{\"traceEvents\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_chrome_event(&mut out, e, 1, 0);
        }
        let _ = write!(out, "],\"otherData\":{{\"dropped\":{}}}}}", self.dropped);
        out
    }

    /// Per-run summary JSON: per-kind counts and duration percentiles.
    /// Bench bins write this next to their `BENCH_*.json`.
    pub fn summary_json(&self) -> String {
        let mut counts = [0u64; KIND_COUNT];
        let mut hists: Vec<LogHistogram> = (0..KIND_COUNT).map(|_| LogHistogram::new()).collect();
        for e in &self.events {
            let i = e.kind as usize;
            counts[i] += 1;
            if e.kind.is_span() {
                hists[i].record(e.dur_ns);
            }
        }
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"events\":{},\"dropped\":{},\"kinds\":{{",
            self.events.len(),
            self.dropped
        );
        let mut first = true;
        for kind in EventKind::ALL {
            let i = kind as usize;
            if counts[i] == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":{{\"count\":{}", kind.label(), counts[i]);
            if kind.is_span() {
                let h = &hists[i];
                let _ = write!(
                    out,
                    ",\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{},\"max_ns\":{},\"sum_ns\":{}",
                    h.percentile(0.50),
                    h.percentile(0.90),
                    h.percentile(0.99),
                    h.max(),
                    h.sum()
                );
            }
            out.push('}');
        }
        out.push_str("}}");
        out
    }

    /// Prometheus-style exposition of this trace's per-kind counts and
    /// span histograms, with `extra` appended as additional
    /// `viz_counter_total` samples (e.g. the engine's counter pairs).
    pub fn prometheus_text(&self, extra: &[(&str, u64)]) -> String {
        let mut counters: Vec<(&str, u64)> = Vec::new();
        let mut hists: Vec<(&str, LogHistogram)> = Vec::new();
        for kind in EventKind::ALL {
            let n = self.count(kind);
            if n == 0 {
                continue;
            }
            counters.push((kind.label(), n as u64));
            if kind.is_span() {
                hists.push((kind.label(), self.histogram(kind)));
            }
        }
        counters.extend_from_slice(extra);
        let hist_refs: Vec<(&str, &LogHistogram)> = hists.iter().map(|(n, h)| (*n, h)).collect();
        let mut out = prometheus_text(&counters, &hist_refs);
        out.push_str(&gate_prometheus_text());
        out
    }
}

/// The always-present self-diagnostics exposition: the telemetry gate
/// state and the cumulative ring-overflow drop count, so a scraper can
/// tell silent event loss from a quiet system.
pub fn gate_prometheus_text() -> String {
    let mut out = String::new();
    out.push_str("# HELP viz_telemetry_gate Event recording gate (1 on, 0 off).\n");
    out.push_str("# TYPE viz_telemetry_gate gauge\n");
    let _ = writeln!(out, "viz_telemetry_gate {}", u64::from(crate::enabled()));
    out.push_str("# HELP viz_telemetry_ring_dropped_total Events lost to ring overflow since process start.\n");
    out.push_str("# TYPE viz_telemetry_ring_dropped_total counter\n");
    let _ = writeln!(out, "viz_telemetry_ring_dropped_total {}", crate::dropped_total());
    out
}

/// Write one event as a Chrome trace-event object under process `pid`,
/// with `offset_ns` added to its timestamp (clock alignment when merging
/// nodes). Shared by [`Trace::chrome_trace_json`] (pid 1, no offset) and
/// the cluster aggregator ([`crate::collect`]).
pub(crate) fn write_chrome_event(out: &mut String, e: &TraceEvent, pid: u32, offset_ns: i64) {
    let t_ns = e.t_ns.saturating_add_signed(offset_ns);
    out.push_str("{\"name\":\"");
    json::escape_into(e.kind.label(), out);
    out.push_str("\",\"cat\":\"");
    json::escape_into(e.kind.category(), out);
    let _ = write!(
        out,
        "\",\"pid\":{},\"tid\":{},\"ts\":{}.{:03}",
        pid,
        e.tid,
        t_ns / 1_000,
        t_ns % 1_000
    );
    if e.kind.is_span() {
        let _ = write!(out, ",\"ph\":\"X\",\"dur\":{}.{:03}", e.dur_ns / 1_000, e.dur_ns % 1_000);
    } else {
        out.push_str(",\"ph\":\"i\",\"s\":\"t\"");
    }
    let _ = write!(out, ",\"args\":{{\"key\":\"{:#x}\",\"arg\":{}", e.key, e.arg);
    if e.trace != 0 {
        let _ = write!(out, ",\"trace\":\"{:#x}\"", e.trace);
    }
    if e.node != 0 {
        let _ = write!(out, ",\"node\":{}", e.node - 1);
    }
    out.push_str("}}");
}

/// Prometheus text exposition (format 0.0.4) for a set of named counters
/// and histograms: one `viz_counter_total` family plus one
/// `viz_span_duration_ns` histogram family with cumulative buckets.
pub fn prometheus_text(counters: &[(&str, u64)], hists: &[(&str, &LogHistogram)]) -> String {
    let mut out = String::new();
    if !counters.is_empty() {
        out.push_str("# HELP viz_counter_total Event and engine counters.\n");
        out.push_str("# TYPE viz_counter_total counter\n");
        for (name, v) in counters {
            let _ = writeln!(out, "viz_counter_total{{name=\"{name}\"}} {v}");
        }
    }
    if !hists.is_empty() {
        out.push_str("# HELP viz_span_duration_ns Span durations in nanoseconds.\n");
        out.push_str("# TYPE viz_span_duration_ns histogram\n");
        for (name, h) in hists {
            let mut cum = 0u64;
            for (bound, count) in h.buckets() {
                cum += count;
                let _ = writeln!(
                    out,
                    "viz_span_duration_ns_bucket{{span=\"{name}\",le=\"{bound}\"}} {cum}"
                );
            }
            let _ = writeln!(
                out,
                "viz_span_duration_ns_bucket{{span=\"{name}\",le=\"+Inf\"}} {}",
                h.count()
            );
            let _ = writeln!(out, "viz_span_duration_ns_sum{{span=\"{name}\"}} {}", h.sum());
            let _ = writeln!(out, "viz_span_duration_ns_count{{span=\"{name}\"}} {}", h.count());
        }
    }
    out
}

/// Minimal recursive-descent JSON *syntax* checker, so tests and bench
/// bins can validate exporter output in environments where `serde_json`
/// is stubbed out. Accepts exactly the RFC 8259 grammar; reports the byte
/// offset of the first error.
pub mod json {
    /// Append `s` to `out` as the body of a JSON string (no surrounding
    /// quotes), escaping quotes, backslashes, and control characters per
    /// RFC 8259.
    pub fn escape_into(s: &str, out: &mut String) {
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\u{08}' => out.push_str("\\b"),
                '\u{0C}' => out.push_str("\\f"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
    }

    /// [`escape_into`] returning a fresh `String`.
    pub fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        escape_into(s, &mut out);
        out
    }

    /// Validate that `s` is one complete JSON value.
    pub fn validate(s: &str) -> Result<(), String> {
        let b = s.as_bytes();
        let mut pos = 0usize;
        skip_ws(b, &mut pos);
        value(b, &mut pos)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(())
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
        match b.get(*pos) {
            Some(b'{') => object(b, pos),
            Some(b'[') => array(b, pos),
            Some(b'"') => string(b, pos),
            Some(b't') => literal(b, pos, b"true"),
            Some(b'f') => literal(b, pos, b"false"),
            Some(b'n') => literal(b, pos, b"null"),
            Some(c) if *c == b'-' || c.is_ascii_digit() => number(b, pos),
            Some(c) => Err(format!("unexpected byte {c:#04x} at {pos}", pos = *pos)),
            None => Err(format!("unexpected end of input at byte {pos}", pos = *pos)),
        }
    }

    fn literal(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
        if b.len() >= *pos + lit.len() && &b[*pos..*pos + lit.len()] == lit {
            *pos += lit.len();
            Ok(())
        } else {
            Err(format!("bad literal at byte {pos}", pos = *pos))
        }
    }

    fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
        *pos += 1; // '{'
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(());
        }
        loop {
            skip_ws(b, pos);
            if b.get(*pos) != Some(&b'"') {
                return Err(format!("expected object key at byte {pos}", pos = *pos));
            }
            string(b, pos)?;
            skip_ws(b, pos);
            if b.get(*pos) != Some(&b':') {
                return Err(format!("expected ':' at byte {pos}", pos = *pos));
            }
            *pos += 1;
            skip_ws(b, pos);
            value(b, pos)?;
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
            }
        }
    }

    fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
        *pos += 1; // '['
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(());
        }
        loop {
            skip_ws(b, pos);
            value(b, pos)?;
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
            }
        }
    }

    fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
        *pos += 1; // '"'
        while let Some(&c) = b.get(*pos) {
            match c {
                b'"' => {
                    *pos += 1;
                    return Ok(());
                }
                b'\\' => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                        Some(b'u') => {
                            *pos += 1;
                            for _ in 0..4 {
                                match b.get(*pos) {
                                    Some(h) if h.is_ascii_hexdigit() => *pos += 1,
                                    _ => {
                                        return Err(format!(
                                            "bad \\u escape at byte {pos}",
                                            pos = *pos
                                        ))
                                    }
                                }
                            }
                        }
                        _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                    }
                }
                0x00..=0x1F => {
                    return Err(format!("raw control byte in string at {pos}", pos = *pos))
                }
                _ => *pos += 1,
            }
        }
        Err("unterminated string".to_string())
    }

    fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
        if b.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        match b.get(*pos) {
            Some(b'0') => *pos += 1,
            Some(c) if c.is_ascii_digit() => {
                while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
                    *pos += 1;
                }
            }
            _ => return Err(format!("bad number at byte {pos}", pos = *pos)),
        }
        if b.get(*pos) == Some(&b'.') {
            *pos += 1;
            if !matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
                return Err(format!("bad fraction at byte {pos}", pos = *pos));
            }
            while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
                *pos += 1;
            }
        }
        if matches!(b.get(*pos), Some(b'e' | b'E')) {
            *pos += 1;
            if matches!(b.get(*pos), Some(b'+' | b'-')) {
                *pos += 1;
            }
            if !matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
                return Err(format!("bad exponent at byte {pos}", pos = *pos));
            }
            while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
                *pos += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(kind: EventKind, t_ns: u64, dur_ns: u64) -> TraceEvent {
        TraceEvent { t_ns, dur_ns, key: 0xAB, arg: 3, trace: 0xDEAD, kind, tid: 2, node: 3 }
    }

    fn sample_trace() -> Trace {
        Trace {
            events: vec![
                span(EventKind::FetchAdmitDemand, 10, 0),
                span(EventKind::SourceRead, 20, 1_500),
                span(EventKind::SourceRead, 40, 2_500),
                span(EventKind::CacheEvict, 50, 0),
                span(EventKind::Frame, 60, 1_000_000),
            ],
            dropped: 2,
        }
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_phases() {
        let t = sample_trace();
        let j = t.chrome_trace_json();
        json::validate(&j).expect("chrome trace must be valid JSON");
        assert!(j.contains("\"traceEvents\""));
        assert!(j.contains("\"ph\":\"X\""), "span events present");
        assert!(j.contains("\"ph\":\"i\""), "instant events present");
        assert!(j.contains("\"name\":\"source_read\""));
        assert!(j.contains("\"cat\":\"cache\""));
        assert!(j.contains("\"dropped\":2"));
        // 1500 ns -> 1.500 us
        assert!(j.contains("\"dur\":1.500"), "ns precision kept: {j}");
        // Trace/node attribution lands in args (node shown as NodeId).
        assert!(j.contains("\"trace\":\"0xdead\""), "trace id in args: {j}");
        assert!(j.contains("\"node\":2"), "node id in args: {j}");
    }

    #[test]
    fn empty_trace_exports_cleanly() {
        let t = Trace::default();
        json::validate(&t.chrome_trace_json()).unwrap();
        json::validate(&t.summary_json()).unwrap();
        // Even an empty trace exposes the gate and drop diagnostics.
        let p = t.prometheus_text(&[]);
        assert!(p.contains("viz_telemetry_gate "));
        assert!(p.contains("viz_telemetry_ring_dropped_total "));
        assert!(!p.contains("viz_counter_total"));
    }

    #[test]
    fn json_escape_handles_hostile_names() {
        assert_eq!(json::escape("plain"), "plain");
        assert_eq!(json::escape("q\"q"), "q\\\"q");
        assert_eq!(json::escape("b\\b"), "b\\\\b");
        assert_eq!(json::escape("n\nn\tt\rr"), "n\\nn\\tt\\rr");
        assert_eq!(json::escape("\u{08}\u{0c}\u{01}\u{1f}"), "\\b\\f\\u0001\\u001f");
        // Escaped output embeds into a valid JSON document.
        for hostile in ["a\"b\\c", "ctl\u{01}\u{02}", "nl\nnl", "\\u0000 literal", "\""] {
            let doc = format!("{{\"name\":\"{}\"}}", json::escape(hostile));
            json::validate(&doc).unwrap_or_else(|e| panic!("{hostile:?}: {e}"));
        }
    }

    #[test]
    fn chrome_event_writer_escapes_and_aligns() {
        let e = span(EventKind::SourceRead, 10_000, 500);
        let mut out = String::new();
        write_chrome_event(&mut out, &e, 7, 2_000);
        json::validate(&out).unwrap();
        assert!(out.contains("\"pid\":7"));
        assert!(out.contains("\"ts\":12.000"), "offset applied: {out}");
        let mut neg = String::new();
        write_chrome_event(&mut neg, &e, 7, -4_000);
        assert!(neg.contains("\"ts\":6.000"), "negative offset applied: {neg}");
        let mut clamped = String::new();
        write_chrome_event(&mut clamped, &e, 7, -100_000);
        assert!(clamped.contains("\"ts\":0.000"), "clamps at zero: {clamped}");
    }

    #[test]
    fn summary_aggregates_per_kind() {
        let t = sample_trace();
        let s = t.summary_json();
        json::validate(&s).expect("summary must be valid JSON");
        assert!(s.contains("\"events\":5"));
        assert!(s.contains("\"source_read\":{\"count\":2"));
        assert!(s.contains("\"p50_ns\""));
        assert!(!s.contains("fetch_retry"), "absent kinds are omitted");
        // Instants have no percentile fields.
        assert!(s.contains("\"cache_evict\":{\"count\":1}"));
    }

    #[test]
    fn prometheus_exposition_shape() {
        let t = sample_trace();
        let p = t.prometheus_text(&[("demand_requests", 7)]);
        assert!(p.contains("# TYPE viz_counter_total counter\n"));
        assert!(p.contains("viz_counter_total{name=\"source_read\"} 2\n"));
        assert!(p.contains("viz_counter_total{name=\"demand_requests\"} 7\n"));
        assert!(p.contains("# TYPE viz_span_duration_ns histogram\n"));
        assert!(p.contains("viz_span_duration_ns_bucket{span=\"source_read\",le=\"+Inf\"} 2\n"));
        assert!(p.contains("viz_span_duration_ns_sum{span=\"source_read\"} 4000\n"));
        assert!(p.contains("viz_span_duration_ns_count{span=\"frame\"} 1\n"));
        // Cumulative bucket counts end at the total.
        let last_bucket = p
            .lines()
            .filter(|l| l.starts_with("viz_span_duration_ns_bucket{span=\"source_read\""))
            .last()
            .unwrap();
        assert!(last_bucket.ends_with(" 2"));
    }

    #[test]
    fn count_and_histogram_helpers() {
        let t = sample_trace();
        assert_eq!(t.count(EventKind::SourceRead), 2);
        assert_eq!(t.count(EventKind::FetchRetry), 0);
        let h = t.histogram(EventKind::SourceRead);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 1_500);
        assert_eq!(h.max(), 2_500);
        // Instant kinds yield empty histograms.
        assert_eq!(t.histogram(EventKind::CacheEvict).count(), 0);
    }

    #[test]
    fn json_validator_accepts_and_rejects() {
        for good in [
            "null",
            "true",
            "-12.5e+3",
            "\"a\\u00e9\\n\"",
            "[]",
            "{}",
            "[1,2,[3,{\"k\":null}]]",
            "{\"a\":{\"b\":[1.0,2]},\"c\":\"\"}",
            "  { \"x\" : 0 }  ",
        ] {
            json::validate(good).unwrap_or_else(|e| panic!("{good}: {e}"));
        }
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "{a:1}",
            "01",
            "1.",
            "1e",
            "\"unterminated",
            "tru",
            "[1] trailing",
            "\"bad\\q\"",
        ] {
            assert!(json::validate(bad).is_err(), "accepted invalid JSON: {bad}");
        }
    }
}
