//! Cluster-wide telemetry aggregation: merge per-node ring drains into
//! one Perfetto-loadable trace and one Prometheus rollup.
//!
//! Each node's `TelemetryGet` reply becomes a [`NodeDrain`]. The merge
//! keys every event to a Perfetto *process*: process 1 is the
//! router/client (events whose `node` attribution is 0), process
//! `NodeId + 2` is that cluster node — so an in-process test cluster,
//! where every node shares one set of rings, still splits per node by
//! the event's own attribution. Per-drain clock offsets (estimated from
//! heartbeat RTT midpoints, [`offset_from_rtt`]) shift each drain onto
//! the collector's timeline before the global sort.

use crate::event::{EventKind, TraceEvent, KIND_COUNT};
use crate::export::write_chrome_event;
use crate::hist::LogHistogram;
use crate::json;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One node's drained telemetry, as shipped by `TelemetryGet`.
#[derive(Clone, Default)]
pub struct NodeDrain {
    /// The drained node's id.
    pub node: u32,
    /// Events from that node's rings (its own epoch timebase).
    pub events: Vec<TraceEvent>,
    /// Cumulative ring-overflow drops on that node.
    pub dropped: u64,
    /// Added to every event timestamp to map the node's epoch onto the
    /// collector's timeline (see [`offset_from_rtt`]).
    pub clock_offset_ns: i64,
    /// The node's wire counters (serve + engine), for the rollup.
    pub counters: Vec<(String, u64)>,
    /// The node's summary span histograms.
    pub hists: Vec<(EventKind, LogHistogram)>,
}

/// Estimate the offset that maps a peer's clock onto ours from one
/// request/reply exchange: we sent at `local_send_ns`, received the
/// reply at `local_recv_ns`, and the peer stamped its clock
/// `remote_now_ns` in between. Assuming symmetric network halves, the
/// peer's stamp corresponds to our RTT midpoint, so
/// `peer_time + offset ≈ our_time`.
pub fn offset_from_rtt(local_send_ns: u64, local_recv_ns: u64, remote_now_ns: u64) -> i64 {
    let mid = (local_send_ns / 2).wrapping_add(local_recv_ns / 2);
    mid as i64 - remote_now_ns as i64
}

fn event_pid(e: &TraceEvent) -> u32 {
    if e.node != 0 {
        u32::from(e.node) + 1
    } else {
        1
    }
}

/// Merge N node drains into one Chrome trace-event JSON document:
/// per-node process ids with `process_name` metadata, clock-offset
/// aligned, globally time-sorted. Router/client-attributed events (node
/// 0) land in process 1.
pub fn cluster_chrome_trace(drains: &[NodeDrain]) -> String {
    // (aligned_t_ns, tid, drain index, event index) sort keys.
    let mut order: Vec<(u64, u16, usize, usize)> = Vec::new();
    let mut pids: BTreeMap<u32, String> = BTreeMap::new();
    pids.insert(1, "router".to_string());
    let mut dropped = 0u64;
    for (di, d) in drains.iter().enumerate() {
        dropped += d.dropped;
        pids.insert(d.node + 2, format!("node-{}", d.node));
        for (ei, e) in d.events.iter().enumerate() {
            if e.node != 0 {
                pids.entry(u32::from(e.node) + 1).or_insert_with(|| format!("node-{}", e.node - 1));
            }
            let t = e.t_ns.saturating_add_signed(d.clock_offset_ns);
            order.push((t, e.tid, di, ei));
        }
    }
    order.sort_unstable();
    let mut out = String::with_capacity(256 + order.len() * 160);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for (&pid, name) in &pids {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":\"{}\"}}}}",
            json::escape(name)
        );
    }
    for &(_, _, di, ei) in &order {
        let d = &drains[di];
        let e = &d.events[ei];
        if !first {
            out.push(',');
        }
        first = false;
        write_chrome_event(&mut out, e, event_pid(e), d.clock_offset_ns);
    }
    let _ = write!(out, "],\"otherData\":{{\"dropped\":{dropped},\"nodes\":{}}}}}", drains.len());
    out
}

/// Cluster Prometheus rollup: per-node event-kind counts and wire
/// counters as `viz_node_counter_total{node=...,name=...}`, summed
/// cluster-wide series as `viz_counter_total`, and the nodes' span
/// histograms merged per kind into one `viz_span_duration_ns` family.
/// Per-cache-tier hits/misses/evictions and the shed ladder arrive here
/// through the event kinds (`cache_hit`/`cache_miss`/`cache_evict`) and
/// the serve wire counters each node ships.
pub fn cluster_prometheus(drains: &[NodeDrain]) -> String {
    let mut per_node: Vec<(u32, Vec<(String, u64)>)> = Vec::new();
    let mut summed: BTreeMap<String, u64> = BTreeMap::new();
    let mut merged: Vec<LogHistogram> = (0..KIND_COUNT).map(|_| LogHistogram::new()).collect();
    let mut total_dropped = 0u64;
    for d in drains {
        let mut counts = [0u64; KIND_COUNT];
        for e in &d.events {
            counts[e.kind as usize] += 1;
        }
        let mut rows: Vec<(String, u64)> = Vec::new();
        for kind in EventKind::ALL {
            let c = counts[kind as usize];
            if c > 0 {
                rows.push((kind.label().to_string(), c));
            }
        }
        rows.extend(d.counters.iter().cloned());
        rows.push(("telemetry_ring_dropped".to_string(), d.dropped));
        total_dropped += d.dropped;
        for (name, v) in &rows {
            *summed.entry(name.clone()).or_insert(0) += v;
        }
        for (kind, h) in &d.hists {
            merged[*kind as usize].merge(h);
        }
        per_node.push((d.node, rows));
    }
    let mut out = String::new();
    out.push_str("# HELP viz_node_counter_total Per-node event and engine counters.\n");
    out.push_str("# TYPE viz_node_counter_total counter\n");
    for (node, rows) in &per_node {
        for (name, v) in rows {
            let _ = writeln!(
                out,
                "viz_node_counter_total{{node=\"{node}\",name=\"{}\"}} {v}",
                json::escape(name)
            );
        }
    }
    let counters: Vec<(&str, u64)> = summed.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    let hists: Vec<(&str, &LogHistogram)> = EventKind::ALL
        .iter()
        .filter(|k| merged[**k as usize].count() > 0)
        .map(|k| (k.label(), &merged[*k as usize]))
        .collect();
    out.push_str(&crate::export::prometheus_text(&counters, &hists));
    let _ = writeln!(out, "viz_telemetry_ring_dropped_total {total_dropped}");
    out
}

/// All distinct nonzero trace ids present in a merged event set.
pub fn trace_ids(events: &[TraceEvent]) -> Vec<u64> {
    let mut ids: Vec<u64> = events.iter().map(|e| e.trace).filter(|&t| t != 0).collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

/// Whether the given trace ids form one connected component when events
/// are linked by (a) sharing a subject `key` and (b) `TraceJoin` edges
/// (whose `arg` names the primary trace the event's own trace merged
/// into). This is the acceptance check for cross-node propagation: a
/// request that coalesced and forwarded must yield a single connected
/// span tree, not islands.
pub fn traces_connected(events: &[TraceEvent], ids: &[u64]) -> bool {
    if ids.len() <= 1 {
        return true;
    }
    // Union-find over the trace ids.
    let idx = |t: u64| ids.iter().position(|&i| i == t);
    let mut parent: Vec<usize> = (0..ids.len()).collect();
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    let union = |parent: &mut [usize], a: u64, b: u64| {
        if let (Some(ia), Some(ib)) = (idx(a), idx(b)) {
            let (ra, rb) = (find(parent, ia), find(parent, ib));
            parent[ra] = rb;
        }
    };
    // TraceJoin edges: joining trace (event's own) ↔ primary (arg).
    for e in events.iter().filter(|e| e.kind == EventKind::TraceJoin) {
        if e.trace != 0 && e.arg != 0 {
            union(&mut parent, e.trace, e.arg);
        }
    }
    // Same-subject edges: two traces touching the same key are causally
    // linked through that block's fetch.
    let mut by_key: BTreeMap<u64, u64> = BTreeMap::new();
    for e in events.iter().filter(|e| e.trace != 0 && e.key != 0) {
        match by_key.get(&e.key) {
            Some(&t0) => union(&mut parent, t0, e.trace),
            None => {
                by_key.insert(e.key, e.trace);
            }
        }
    }
    let root = find(&mut parent, 0);
    (1..ids.len()).all(|i| find(&mut parent, i) == root)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, t_ns: u64, key: u64, trace: u64, node: u16) -> TraceEvent {
        TraceEvent { t_ns, dur_ns: 10, key, arg: 0, trace, kind, tid: 1, node }
    }

    #[test]
    fn offset_from_rtt_midpoint() {
        // Sent at 100, received at 300 → midpoint 200. Peer said 150 →
        // peer runs 50 behind, offset +50 maps it onto our timeline.
        assert_eq!(offset_from_rtt(100, 300, 150), 50);
        assert_eq!(offset_from_rtt(100, 300, 250), -50);
        assert_eq!(offset_from_rtt(0, 0, 0), 0);
    }

    #[test]
    fn merged_trace_is_valid_and_per_node() {
        let drains = vec![
            NodeDrain {
                node: 0,
                events: vec![
                    ev(EventKind::RouterFetch, 1_000, 0xA, 7, 0),
                    ev(EventKind::RpcServe, 2_000, 1, 7, 1),
                ],
                dropped: 1,
                clock_offset_ns: 0,
                ..NodeDrain::default()
            },
            NodeDrain {
                node: 1,
                events: vec![ev(EventKind::PeerFetch, 500, 0xA, 7, 2)],
                dropped: 0,
                clock_offset_ns: 2_000,
                ..NodeDrain::default()
            },
        ];
        let j = cluster_chrome_trace(&drains);
        json::validate(&j).expect("merged trace is valid JSON");
        assert!(j.contains("\"process_name\""));
        assert!(j.contains("\"name\":\"router\""));
        assert!(j.contains("\"name\":\"node-0\""));
        assert!(j.contains("\"name\":\"node-1\""));
        // Node-attributed events get pid NodeId+2; router events pid 1.
        assert!(j.contains("\"pid\":1,"), "router pid present");
        assert!(j.contains("\"pid\":2,"), "node 0 pid present");
        assert!(j.contains("\"pid\":3,"), "node 1 pid present");
        // Node 1's event aligned: 500 + 2000 = 2500 ns → 2.500 µs.
        assert!(j.contains("\"ts\":2.500"), "clock offset applied: {j}");
        assert!(j.contains("\"dropped\":1"));
    }

    #[test]
    fn cluster_prometheus_rolls_up_per_node_and_summed() {
        let drains = vec![
            NodeDrain {
                node: 0,
                events: vec![
                    ev(EventKind::CacheHit, 1, 0xA, 0, 1),
                    ev(EventKind::CacheHit, 2, 0xB, 0, 1),
                ],
                counters: vec![("serve_demand_keys".to_string(), 5)],
                ..NodeDrain::default()
            },
            NodeDrain {
                node: 1,
                events: vec![ev(EventKind::CacheHit, 3, 0xC, 0, 2)],
                counters: vec![("serve_demand_keys".to_string(), 7)],
                hists: {
                    let mut h = LogHistogram::new();
                    h.record(100);
                    vec![(EventKind::SourceRead, h)]
                },
                ..NodeDrain::default()
            },
        ];
        let p = cluster_prometheus(&drains);
        assert!(p.contains("viz_node_counter_total{node=\"0\",name=\"cache_hit\"} 2"));
        assert!(p.contains("viz_node_counter_total{node=\"1\",name=\"cache_hit\"} 1"));
        assert!(p.contains("viz_counter_total{name=\"cache_hit\"} 3"), "summed: {p}");
        assert!(p.contains("viz_counter_total{name=\"serve_demand_keys\"} 12"));
        assert!(p.contains("viz_span_duration_ns_count{span=\"source_read\"} 1"));
        assert!(p.contains("viz_telemetry_ring_dropped_total 0"));
    }

    #[test]
    fn connectivity_detects_joined_and_island_traces() {
        // Traces 1 and 2 join via TraceJoin; 1 and 3 share a key; 9 is
        // an island.
        let mut events = vec![
            ev(EventKind::FetchAdmitDemand, 1, 0xA, 1, 1),
            ev(EventKind::TraceJoin, 2, 0xA, 2, 1),
            ev(EventKind::SourceRead, 3, 0xB, 1, 1),
            ev(EventKind::PeerFetch, 4, 0xB, 3, 2),
        ];
        events[1].arg = 1; // join primary = trace 1
        assert_eq!(trace_ids(&events), vec![1, 2, 3]);
        assert!(traces_connected(&events, &[1, 2, 3]));
        let island = ev(EventKind::CacheHit, 5, 0xEE, 9, 1);
        let mut with_island = events.clone();
        with_island.push(island);
        assert!(!traces_connected(&with_island, &[1, 2, 3, 9]));
        assert!(traces_connected(&[], &[]));
        assert!(traces_connected(&events, &[1]));
    }
}
