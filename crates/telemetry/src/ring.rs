//! Per-thread SPSC event rings and the global registry that drains them.
//!
//! Each recording thread owns one [`Ring`] (via a thread-local), so pushes
//! are single-producer and never contend: a push is two relaxed loads, a
//! slot write, and one release store. The drain side (any thread) takes
//! the registry mutex, walks every ring, and consumes `[tail, head)` with
//! acquire/release pairing on `head`/`tail` — the only cross-thread
//! synchronization in the crate.
//!
//! Overflow policy is *drop-newest*: a full ring counts the event in
//! `dropped` and moves on, so a stalled drain can never block or corrupt a
//! producer. Dropped counts surface in [`crate::Trace::dropped`].

use crate::event::{EventKind, TraceEvent};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Events per thread ring. Power of two; 8192 × 48 B = 384 KiB per
/// recording thread, enough for ~80 ms of saturated fetch traffic between
/// drains.
pub(crate) const RING_CAP: usize = 1 << 13;

/// Events dropped across all rings since process start. Unlike each
/// ring's own counter (reset by every drain so [`crate::Trace::dropped`]
/// covers just that window), this one only grows — the Prometheus
/// exporter and serve wire counters read it so silent loss is visible
/// from a remote scraper even when drains race.
static DROPPED_TOTAL: AtomicU64 = AtomicU64::new(0);

/// Cumulative count of events dropped by full rings, process lifetime.
pub fn dropped_total() -> u64 {
    DROPPED_TOTAL.load(Ordering::Relaxed)
}

/// Number of per-thread rings registered so far.
pub fn ring_count() -> usize {
    lock_registry().len()
}

pub(crate) struct Ring {
    buf: Box<[UnsafeCell<TraceEvent>]>,
    /// Next write slot (monotonic; slot = head % len). Producer-owned,
    /// release-stored so the consumer sees slot writes.
    head: AtomicUsize,
    /// Next unread slot (monotonic). Consumer-owned, release-stored so the
    /// producer sees freed capacity.
    tail: AtomicUsize,
    dropped: AtomicU64,
    tid: u16,
}

// SAFETY: slot access is disciplined by the head/tail protocol below —
// the owning thread writes only slots in [head, tail + cap), the draining
// thread reads only [tail, head), and the release/acquire pairs on `head`
// (producer→consumer) and `tail` (consumer→producer) order the slot
// accesses on both sides.
unsafe impl Send for Ring {}
unsafe impl Sync for Ring {}

impl Ring {
    fn new(tid: u16) -> Ring {
        let zero = TraceEvent {
            t_ns: 0,
            dur_ns: 0,
            key: 0,
            arg: 0,
            trace: 0,
            kind: EventKind::FetchAdmitDemand,
            tid: 0,
            node: 0,
        };
        Ring {
            buf: (0..RING_CAP).map(|_| UnsafeCell::new(zero)).collect(),
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            tid,
        }
    }

    /// Record one event. Must only be called by the ring's owning thread
    /// (guaranteed by the thread-local in [`with_local`]).
    pub(crate) fn push(&self, mut ev: TraceEvent) {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head.wrapping_sub(tail) >= self.buf.len() {
            // Full: drop-newest so the producer never stalls. The global
            // total only moves on this (overflow) path, never per-push.
            self.dropped.fetch_add(1, Ordering::Relaxed);
            DROPPED_TOTAL.fetch_add(1, Ordering::Relaxed);
            return;
        }
        ev.tid = self.tid;
        let slot = head % self.buf.len();
        // SAFETY: `[tail, head)` is unread by us and `head` hasn't been
        // published yet, so slot `head % len` is exclusively ours; the
        // release store below publishes the write before the consumer can
        // read it.
        unsafe { *self.buf[slot].get() = ev };
        self.head.store(head.wrapping_add(1), Ordering::Release);
    }

    /// Consume all pending events into `out`. Caller must hold the
    /// registry lock (serializing consumers).
    fn drain_into(&self, out: &mut Vec<TraceEvent>) -> u64 {
        let head = self.head.load(Ordering::Acquire);
        let mut tail = self.tail.load(Ordering::Relaxed);
        while tail != head {
            let slot = tail % self.buf.len();
            // SAFETY: `tail < head` (mod wrap), so the producer published
            // this slot via its release store on `head`, which our acquire
            // load observed; it won't overwrite it until we advance `tail`.
            out.push(unsafe { *self.buf[slot].get() });
            tail = tail.wrapping_add(1);
        }
        self.tail.store(tail, Ordering::Release);
        self.dropped.swap(0, Ordering::Relaxed)
    }
}

fn registry() -> &'static Mutex<Vec<Arc<Ring>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn lock_registry() -> MutexGuard<'static, Vec<Arc<Ring>>> {
    // A panic while holding the registry lock leaves the rings intact;
    // keep draining rather than poisoning telemetry forever.
    match registry().lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

static NEXT_TID: AtomicU32 = AtomicU32::new(1);

thread_local! {
    static LOCAL: Arc<Ring> = {
        let ring = Arc::new(Ring::new(NEXT_TID.fetch_add(1, Ordering::Relaxed) as u16));
        lock_registry().push(ring.clone());
        ring
    };
}

/// Run `f` with the calling thread's ring, registering it on first use.
pub(crate) fn with_local<R>(f: impl FnOnce(&Ring) -> R) -> Option<R> {
    // During thread teardown the TLS slot may already be gone; losing a
    // final event there is fine.
    LOCAL.try_with(|r| f(r)).ok()
}

/// Drain every registered ring. Returns `(events, dropped)`; events are
/// unsorted here — [`crate::drain`] sorts the merged timeline.
pub(crate) fn drain_all() -> (Vec<TraceEvent>, u64) {
    let rings = lock_registry();
    let mut out = Vec::new();
    let mut dropped = 0u64;
    for ring in rings.iter() {
        dropped += ring.drain_into(&mut out);
    }
    (out, dropped)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t_ns: u64) -> TraceEvent {
        TraceEvent {
            t_ns,
            dur_ns: 0,
            key: 7,
            arg: 0,
            trace: 0,
            kind: EventKind::CacheHit,
            tid: 0,
            node: 0,
        }
    }

    #[test]
    fn push_then_drain_roundtrips_in_order() {
        let ring = Ring::new(42);
        for i in 0..100 {
            ring.push(ev(i));
        }
        let mut out = Vec::new();
        let dropped = ring.drain_into(&mut out);
        assert_eq!(dropped, 0);
        assert_eq!(out.len(), 100);
        for (i, e) in out.iter().enumerate() {
            assert_eq!(e.t_ns, i as u64);
            assert_eq!(e.tid, 42, "push stamps the ring's tid");
        }
    }

    #[test]
    fn overflow_drops_newest_and_counts() {
        let ring = Ring::new(1);
        for i in 0..(RING_CAP as u64 + 10) {
            ring.push(ev(i));
        }
        let mut out = Vec::new();
        let dropped = ring.drain_into(&mut out);
        assert_eq!(out.len(), RING_CAP);
        assert_eq!(dropped, 10);
        // The *oldest* events survive.
        assert_eq!(out[0].t_ns, 0);
        assert_eq!(out.last().unwrap().t_ns, RING_CAP as u64 - 1);
        // Dropped counter reset by the drain.
        assert_eq!(ring.drain_into(&mut Vec::new()), 0);
    }

    #[test]
    fn drain_frees_capacity() {
        let ring = Ring::new(1);
        for round in 0..3u64 {
            for i in 0..RING_CAP as u64 {
                ring.push(ev(round * RING_CAP as u64 + i));
            }
            let mut out = Vec::new();
            assert_eq!(ring.drain_into(&mut out), 0, "round {round}");
            assert_eq!(out.len(), RING_CAP);
        }
    }

    #[test]
    fn cross_thread_drain_sees_producer_writes() {
        let ring = Arc::new(Ring::new(9));
        let producer = {
            let ring = ring.clone();
            std::thread::spawn(move || {
                for i in 0..50_000u64 {
                    ring.push(ev(i));
                }
            })
        };
        // Concurrent consumer: everything drained must be well-formed.
        let mut seen = 0u64;
        let mut dropped = 0u64;
        let mut out = Vec::new();
        loop {
            out.clear();
            dropped += ring.drain_into(&mut out);
            for e in &out {
                assert_eq!(e.kind, EventKind::CacheHit);
                assert_eq!(e.key, 7);
                assert_eq!(e.tid, 9);
            }
            seen += out.len() as u64;
            if producer.is_finished() && out.is_empty() {
                break;
            }
        }
        producer.join().unwrap();
        out.clear();
        dropped += ring.drain_into(&mut out);
        seen += out.len() as u64;
        assert_eq!(seen + dropped, 50_000);
    }
}
