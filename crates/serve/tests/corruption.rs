//! Wire-protocol corruption against a live server loop: every mangled
//! frame gets a typed `Error` reply (or at least *a* reply) and the
//! server never panics, mirroring the persist codecs' corruption
//! contract.

use std::sync::Arc;
use viz_fetch::{BlockPool, FetchConfig, FetchEngine};
use viz_serve::proto::{
    encode_request, encode_request_versioned, ERR_PROTO, ERR_VERSION, MAGIC, PROTO_VERSION,
};
use viz_serve::{InProcServer, Request, Response, ServeClient, ServeConfig, Server};
use viz_volume::{crc32, BlockId, BlockKey, MemBlockStore};

fn serve() -> (InProcServer, ServeClient<viz_serve::InProcTransport>) {
    let store = MemBlockStore::new();
    for i in 0..8u32 {
        store.insert(BlockKey::scalar(BlockId(i)), vec![i as f32; 4]);
    }
    let engine = FetchEngine::spawn(
        Arc::new(store),
        Arc::new(BlockPool::new()),
        FetchConfig { workers: 0, ..FetchConfig::default() },
    );
    let mut inproc = InProcServer::new(Server::new(Arc::new(engine), ServeConfig::default()));
    let client = ServeClient::new(inproc.connect());
    (inproc, client)
}

fn expect_error(c: &mut ServeClient<viz_serve::InProcTransport>, want_code: u16) -> String {
    match c.recv_response().unwrap() {
        Response::Error { code, message } => {
            assert_eq!(code, want_code, "{message}");
            message
        }
        other => panic!("wanted an Error reply, got {other:?}"),
    }
}

#[test]
fn truncated_frame_gets_a_typed_error_reply() {
    let (mut s, mut c) = serve();
    let frame = encode_request(&Request::Open { name: "trunc".into() });
    c.send_raw(&frame[..frame.len() - 3]).unwrap();
    s.tick();
    let msg = expect_error(&mut c, ERR_PROTO);
    assert!(msg.contains("truncated"), "{msg}");

    // The connection survives and serves the intact retry.
    c.send_open("trunc").unwrap();
    s.tick();
    c.recv_open().unwrap();
}

#[test]
fn flipped_crc_byte_is_rejected() {
    let (mut s, mut c) = serve();
    let mut frame = encode_request(&Request::Stats);
    frame[5] ^= 0x40; // one bit of the stored CRC
    c.send_raw(&frame).unwrap();
    s.tick();
    let msg = expect_error(&mut c, ERR_PROTO);
    assert!(msg.contains("checksum"), "{msg}");
}

#[test]
fn flipped_body_byte_fails_the_checksum() {
    let (mut s, mut c) = serve();
    let mut frame = encode_request(&Request::Close { session: 1 });
    let last = frame.len() - 1;
    frame[last] ^= 0x01;
    c.send_raw(&frame).unwrap();
    s.tick();
    let msg = expect_error(&mut c, ERR_PROTO);
    assert!(msg.contains("checksum"), "{msg}");
}

#[test]
fn unknown_tag_is_rejected() {
    let (mut s, mut c) = serve();
    let mut body = Vec::new();
    body.extend_from_slice(&MAGIC);
    body.extend_from_slice(&PROTO_VERSION.to_le_bytes());
    body.push(0x7e); // no such message
    let mut frame = Vec::new();
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&body).to_le_bytes());
    frame.extend_from_slice(&body);
    c.send_raw(&frame).unwrap();
    s.tick();
    let msg = expect_error(&mut c, ERR_PROTO);
    assert!(msg.contains("tag"), "{msg}");
}

#[test]
fn version_skew_answers_err_version_and_keeps_the_connection() {
    let (mut s, mut c) = serve();
    // A client one protocol version ahead greets today's server.
    let future = encode_request_versioned(
        &Request::Open { name: "from-the-future".into() },
        PROTO_VERSION + 1,
    );
    c.send_raw(&future).unwrap();
    s.tick();
    let msg = expect_error(&mut c, ERR_VERSION);
    assert!(msg.contains("version"), "{msg}");

    // Downgrading to the supported version works on the same connection.
    c.send_open("downgraded").unwrap();
    s.tick();
    c.recv_open().unwrap();
}

#[test]
fn byte_flip_sweep_never_panics_and_always_answers() {
    let (mut s, mut c) = serve();
    c.send_open("sweeper").unwrap();
    s.tick();
    let sid = c.recv_open().unwrap();

    let template = encode_request(&Request::Fetch {
        session: sid,
        generation: 0,
        demand: vec![BlockKey::scalar(BlockId(1))],
        prefetch: vec![(BlockKey::scalar(BlockId(2)), 0.5)],
        trace: viz_serve::TraceCtx::NONE,
    });
    for i in 0..template.len() {
        let mut frame = template.clone();
        frame[i] ^= 0xff;
        c.send_raw(&frame).unwrap();
        s.tick();
        // Whatever the flip produced — a decode error, an unknown-session
        // error, or even an accidentally-valid request — the server must
        // answer it, on a connection that stays up.
        let _ = c.recv_response().unwrap();
    }

    // Still fully functional after the storm.
    c.send_fetch(0, vec![BlockKey::scalar(BlockId(3))], vec![]).unwrap();
    s.tick();
    let got = c.recv_fetch().unwrap();
    assert_eq!(got.blocks[0].result.as_ref().unwrap()[0], 3.0);
}
