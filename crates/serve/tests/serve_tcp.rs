//! Localhost TCP end-to-end: real sockets, real worker threads, many
//! concurrent clients against one shared engine.
//!
//! Every scenario runs twice — once per [`IoBackend`] — through the
//! backend-generic [`TcpFrontend`], so the reactor front end proves it
//! keeps the thread model's observable contract (replies, coalescing,
//! metrics, shutdown) on real sockets.

use std::sync::Arc;
use std::time::Duration;
use viz_fetch::{BlockPool, FetchConfig, FetchEngine, InstrumentedSource};
use viz_serve::{IoBackend, ServeClient, ServeConfig, Server, TcpFrontend, TcpTransport};
use viz_volume::{BlockId, BlockKey, MemBlockStore};

fn key(i: u32) -> BlockKey {
    BlockKey::scalar(BlockId(i))
}

fn tcp_server(
    backend: IoBackend,
    workers: usize,
    n: u32,
) -> (TcpFrontend, Arc<InstrumentedSource>) {
    let store = MemBlockStore::new();
    for i in 0..n {
        store.insert(key(i), vec![i as f32; 8]);
    }
    let src = Arc::new(InstrumentedSource::new(Arc::new(store), Duration::from_micros(200)));
    let engine = FetchEngine::spawn(
        src.clone(),
        Arc::new(BlockPool::new()),
        FetchConfig { workers, ..FetchConfig::default() },
    );
    let server = Server::new(Arc::new(engine), ServeConfig { backend, ..ServeConfig::default() });
    (TcpFrontend::bind(server, "127.0.0.1:0").unwrap(), src)
}

fn four_tcp_clients_share_one_engine(backend: IoBackend) {
    let (tcp, src) = tcp_server(backend, 2, 32);
    let addr = tcp.local_addr().to_string();

    let handles: Vec<_> = (0..4)
        .map(|c| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = ServeClient::new(TcpTransport::connect(&addr).expect("connect"));
                client.open(&format!("client-{c}")).expect("open");
                // Every client wants blocks 0..4 (shared) plus one of its
                // own — cross-client coalescing territory.
                let demand: Vec<BlockKey> = (0..4).map(key).chain([key(10 + c)]).collect();
                let got = client.fetch(demand.clone(), vec![(key(20 + c), 0.8)]).expect("fetch");
                assert_eq!(got.blocks.len(), 5);
                for (i, reply) in got.blocks.iter().enumerate() {
                    assert_eq!(reply.key, demand[i]);
                    let data = reply.result.as_ref().expect("payload");
                    assert_eq!(data[0], reply.key.block.0 as f32);
                }
                assert_eq!(got.shed, 0);
                let generation = client.advance().expect("advance");
                assert_eq!(generation, 1);
                client.close().expect("close");
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // 4 clients × 5 demand + 4 prefetch = 24 wants over at most 12
    // distinct keys; the shared engine must not have read more than the
    // distinct set (demand 0..4 and 10..14, prefetch 20..24).
    assert!(src.reads() <= 13, "shared engine read {} times", src.reads());

    let server = tcp.server().clone();
    let m = server.metrics();
    assert_eq!(m.demand_served, 20);
    assert_eq!(m.sessions_opened, 4);
    assert_eq!(m.sessions_closed, 4);

    let report = tcp.shutdown();
    assert_eq!(report.sessions_closed, 0, "clients closed their own sessions");
}

#[test]
fn four_tcp_clients_share_one_engine_threads() {
    four_tcp_clients_share_one_engine(IoBackend::Threads);
}

#[test]
fn four_tcp_clients_share_one_engine_reactor() {
    four_tcp_clients_share_one_engine(IoBackend::Reactor);
}

fn stats_round_trip_over_tcp(backend: IoBackend) {
    let (tcp, _src) = tcp_server(backend, 1, 8);
    let addr = tcp.local_addr().to_string();

    let mut client = ServeClient::new(TcpTransport::connect(&addr).unwrap());
    client.open("stats").unwrap();
    client.fetch(vec![key(1), key(2)], vec![]).unwrap();
    let stats = client.stats().unwrap();
    let get = |name: &str| stats.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
    assert_eq!(get("serve_demand_served"), Some(2));
    assert_eq!(get("serve_sessions_opened"), Some(1));
    assert!(get("fetch_completed").unwrap_or(0) >= 2, "engine counters ride along");
    assert!(get("pool_resident_blocks").unwrap_or(0) >= 2, "pool gauges ride along");

    drop(client);
    tcp.shutdown();
}

#[test]
fn stats_round_trip_over_tcp_threads() {
    stats_round_trip_over_tcp(IoBackend::Threads);
}

#[test]
fn stats_round_trip_over_tcp_reactor() {
    stats_round_trip_over_tcp(IoBackend::Reactor);
}

fn shutdown_forces_out_a_lingering_client(backend: IoBackend) {
    let (tcp, _src) = tcp_server(backend, 1, 8);
    let addr = tcp.local_addr().to_string();

    let mut client = ServeClient::new(TcpTransport::connect(&addr).unwrap());
    client.open("lingerer").unwrap();
    client.fetch(vec![key(3)], vec![]).unwrap();
    assert_eq!(tcp.server().sessions().len(), 1);

    // The client neither closes nor disconnects; shutdown must not hang:
    // it forces the connection out, and the handler closes the orphaned
    // session on its way down.
    let server = tcp.server().clone();
    tcp.shutdown();
    assert_eq!(server.sessions().len(), 0);
    assert_eq!(server.metrics().sessions_closed, 1);

    // The socket is dead afterwards.
    assert!(client.stats().is_err());
}

#[test]
fn shutdown_forces_out_a_lingering_client_threads() {
    shutdown_forces_out_a_lingering_client(IoBackend::Threads);
}

#[test]
fn shutdown_forces_out_a_lingering_client_reactor() {
    shutdown_forces_out_a_lingering_client(IoBackend::Reactor);
}

/// Reactor-only: a demand deadline on the timer wheel bounds the reply
/// even when the source is far slower — no sacrificial timeout thread,
/// and the abandoned read still lands in the pool afterwards.
#[test]
fn reactor_demand_deadline_bounds_a_slow_source() {
    let store = MemBlockStore::new();
    store.insert(key(0), vec![0.5; 8]);
    let src = Arc::new(InstrumentedSource::new(Arc::new(store), Duration::from_millis(300)));
    let engine = FetchEngine::spawn(
        src,
        Arc::new(BlockPool::new()),
        FetchConfig { workers: 1, ..FetchConfig::default() },
    );
    let server = Server::new(
        Arc::new(engine),
        ServeConfig {
            backend: IoBackend::Reactor,
            demand_deadline: Some(Duration::from_millis(25)),
            ..ServeConfig::default()
        },
    );
    let tcp = TcpFrontend::bind(server, "127.0.0.1:0").unwrap();

    let mut client =
        ServeClient::new(TcpTransport::connect(&tcp.local_addr().to_string()).unwrap());
    client.open("impatient").unwrap();
    let t0 = std::time::Instant::now();
    let got = client.fetch(vec![key(0)], vec![]).unwrap();
    let waited = t0.elapsed();
    assert!(got.blocks[0].result.is_err(), "the 300 ms read cannot beat a 25 ms deadline");
    assert!(
        waited < Duration::from_millis(290),
        "deadline reply took {waited:?}, the wheel must fire long before the read lands"
    );
    // The read was abandoned, not cancelled: once it lands, the block is
    // resident and the retry is a pool hit.
    std::thread::sleep(Duration::from_millis(350));
    let again = client.fetch(vec![key(0)], vec![]).unwrap();
    assert_eq!(again.blocks[0].result.as_ref().unwrap()[0], 0.5);
    client.close().unwrap();
    tcp.shutdown();
}

/// Reactor-only: one connection pipelines several requests; replies come
/// back in order even though fetches park mid-stream, and a second
/// connection's traffic interleaves on the same loop thread.
#[test]
fn reactor_preserves_per_connection_order_under_pipelining() {
    let (tcp, _src) = tcp_server(IoBackend::Reactor, 2, 64);
    let addr = tcp.local_addr().to_string();

    let mut a = ServeClient::new(TcpTransport::connect(&addr).unwrap());
    let mut b = ServeClient::new(TcpTransport::connect(&addr).unwrap());
    a.open("pipeliner").unwrap();
    b.open("bystander").unwrap();

    // Queue three fetches back-to-back without reading any reply, then a
    // stats probe: four responses must arrive, in request order.
    for i in 0..3u32 {
        a.send_fetch(0, vec![key(i), key(i + 8)], vec![(key(40 + i), 0.5)]).unwrap();
    }
    a.send_stats().unwrap();
    let other = b.fetch(vec![key(7)], vec![]).unwrap();
    assert_eq!(other.blocks.len(), 1);
    for i in 0..3u32 {
        let got = a.recv_fetch().unwrap();
        assert_eq!(got.blocks.len(), 2);
        assert_eq!(got.blocks[0].key, key(i), "reply order must match request order");
        assert!(got.blocks.iter().all(|r| r.result.is_ok()));
    }
    let tail = a.recv_response().unwrap();
    assert!(
        matches!(tail, viz_serve::Response::StatsReply { .. }),
        "the pipelined stats probe answers last: {tail:?}"
    );
    let m = tcp.server().metrics();
    assert_eq!(m.demand_served, 7);
    tcp.shutdown();
}
