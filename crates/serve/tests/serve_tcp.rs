//! Localhost TCP end-to-end: real sockets, real worker threads, many
//! concurrent clients against one shared engine.

use std::sync::Arc;
use std::time::Duration;
use viz_fetch::{BlockPool, FetchConfig, FetchEngine, InstrumentedSource};
use viz_serve::{ServeClient, ServeConfig, Server, TcpServer, TcpTransport};
use viz_volume::{BlockId, BlockKey, MemBlockStore};

fn key(i: u32) -> BlockKey {
    BlockKey::scalar(BlockId(i))
}

fn tcp_server(workers: usize, n: u32) -> (TcpServer, Arc<InstrumentedSource>) {
    let store = MemBlockStore::new();
    for i in 0..n {
        store.insert(key(i), vec![i as f32; 8]);
    }
    let src = Arc::new(InstrumentedSource::new(Arc::new(store), Duration::from_micros(200)));
    let engine = FetchEngine::spawn(
        src.clone(),
        Arc::new(BlockPool::new()),
        FetchConfig { workers, ..FetchConfig::default() },
    );
    let server = Server::new(Arc::new(engine), ServeConfig::default());
    (TcpServer::bind(server, "127.0.0.1:0").unwrap(), src)
}

#[test]
fn four_tcp_clients_share_one_engine() {
    let (tcp, src) = tcp_server(2, 32);
    let addr = tcp.local_addr().to_string();

    let handles: Vec<_> = (0..4)
        .map(|c| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = ServeClient::new(TcpTransport::connect(&addr).expect("connect"));
                client.open(&format!("client-{c}")).expect("open");
                // Every client wants blocks 0..4 (shared) plus one of its
                // own — cross-client coalescing territory.
                let demand: Vec<BlockKey> = (0..4).map(key).chain([key(10 + c)]).collect();
                let got = client.fetch(demand.clone(), vec![(key(20 + c), 0.8)]).expect("fetch");
                assert_eq!(got.blocks.len(), 5);
                for (i, reply) in got.blocks.iter().enumerate() {
                    assert_eq!(reply.key, demand[i]);
                    let data = reply.result.as_ref().expect("payload");
                    assert_eq!(data[0], reply.key.block.0 as f32);
                }
                assert_eq!(got.shed, 0);
                let generation = client.advance().expect("advance");
                assert_eq!(generation, 1);
                client.close().expect("close");
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // 4 clients × 5 demand + 4 prefetch = 24 wants over at most 12
    // distinct keys; the shared engine must not have read more than the
    // distinct set (demand 0..4 and 10..14, prefetch 20..24).
    assert!(src.reads() <= 13, "shared engine read {} times", src.reads());

    let server = tcp.server().clone();
    let m = server.metrics();
    assert_eq!(m.demand_served, 20);
    assert_eq!(m.sessions_opened, 4);
    assert_eq!(m.sessions_closed, 4);

    let report = tcp.shutdown();
    assert_eq!(report.sessions_closed, 0, "clients closed their own sessions");
}

#[test]
fn stats_round_trip_over_tcp() {
    let (tcp, _src) = tcp_server(1, 8);
    let addr = tcp.local_addr().to_string();

    let mut client = ServeClient::new(TcpTransport::connect(&addr).unwrap());
    client.open("stats").unwrap();
    client.fetch(vec![key(1), key(2)], vec![]).unwrap();
    let stats = client.stats().unwrap();
    let get = |name: &str| stats.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
    assert_eq!(get("serve_demand_served"), Some(2));
    assert_eq!(get("serve_sessions_opened"), Some(1));
    assert!(get("fetch_completed").unwrap_or(0) >= 2, "engine counters ride along");
    assert!(get("pool_resident_blocks").unwrap_or(0) >= 2, "pool gauges ride along");

    drop(client);
    tcp.shutdown();
}

#[test]
fn shutdown_forces_out_a_lingering_client() {
    let (tcp, _src) = tcp_server(1, 8);
    let addr = tcp.local_addr().to_string();

    let mut client = ServeClient::new(TcpTransport::connect(&addr).unwrap());
    client.open("lingerer").unwrap();
    client.fetch(vec![key(3)], vec![]).unwrap();
    assert_eq!(tcp.server().sessions().len(), 1);

    // The client neither closes nor disconnects; shutdown must not hang:
    // it forces the connection out, and the handler closes the orphaned
    // session on its way down.
    let server = tcp.server().clone();
    tcp.shutdown();
    assert_eq!(server.sessions().len(), 0);
    assert_eq!(server.metrics().sessions_closed, 1);

    // The socket is dead afterwards.
    assert!(client.stats().is_err());
}
