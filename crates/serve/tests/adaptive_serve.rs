//! The serve-side adaptive surface: per-reason shed counters on the wire,
//! runtime-mutable ladder, demand-RTT window, and the σ loop driven by
//! `Server::advance`.

use std::sync::Arc;
use std::time::Duration;
use viz_core::{AdaptiveSigma, ClientFlight, ImportanceTable, VisibleTable};
use viz_core::{RadiusRule, SamplingConfig};
use viz_fetch::{BlockPool, FetchConfig, FetchEngine, InstrumentedSource};
use viz_geom::angle::deg_to_rad;
use viz_geom::{CameraPath, SphericalPath};
use viz_serve::{InProcServer, LadderConfig, ServeClient, ServeConfig, Server};
use viz_volume::{BlockId, BlockKey, BrickLayout, DatasetKind, DatasetSpec, Dims3, MemBlockStore};

fn key(i: u32) -> BlockKey {
    BlockKey::scalar(BlockId(i))
}

fn det_server(cfg: ServeConfig, n: u32) -> Arc<Server> {
    let store = MemBlockStore::new();
    for i in 0..n {
        store.insert(key(i), vec![i as f32; 16]);
    }
    let src = Arc::new(InstrumentedSource::new(Arc::new(store), Duration::ZERO));
    let engine = FetchEngine::spawn(
        src,
        Arc::new(BlockPool::new()),
        FetchConfig { workers: 0, ..FetchConfig::default() },
    );
    Server::new(Arc::new(engine), cfg)
}

fn counter(stats: &[(String, u64)], name: &str) -> u64 {
    stats.iter().find(|(n, _)| n == name).unwrap_or_else(|| panic!("missing {name}")).1
}

#[test]
fn per_reason_shed_counters_reach_the_wire() {
    let cfg = ServeConfig { per_client_queue: 2, ..ServeConfig::default() };
    let server = det_server(cfg, 32);
    let id = server.open_session("v").unwrap();
    // 5 prefetch entries against an entry quota of 2: 3 shed for quota.
    let prefetch: Vec<(BlockKey, f64)> = (10..15).map(|i| (key(i), 1.0)).collect();
    let sub = server.submit(id, 0, vec![], prefetch).unwrap();
    assert_eq!(sub.shed(), 3);

    let stats = server.wire_counters();
    assert_eq!(counter(&stats, "serve_prefetch_shed"), 3);
    assert_eq!(counter(&stats, "serve_shed_entry_quota"), 3);
    for other in [
        "serve_shed_draining",
        "serve_shed_stale_gen",
        "serve_shed_byte_quota",
        "serve_shed_breaker",
        "serve_shed_queue_depth",
        "serve_shed_pool_pressure",
    ] {
        assert_eq!(counter(&stats, other), 0, "{other} must stay untouched");
    }
}

#[test]
fn ladder_is_runtime_mutable_and_scrape_visible() {
    let server = det_server(ServeConfig::default(), 32);
    let id = server.open_session("v").unwrap();

    // Defaults admit freely.
    let sub = server.submit(id, 0, vec![], vec![(key(1), 1.0)]).unwrap();
    assert_eq!(sub.shed(), 0);

    // Choke the entry quota at runtime: everything sheds.
    let mut ladder = server.ladder();
    ladder.per_client_queue = 1; // one already queued above
    server.set_ladder(ladder);
    let sub = server.submit(id, 0, vec![], vec![(key(2), 1.0), (key(3), 1.0)]).unwrap();
    assert_eq!(sub.shed(), 2, "tightened quota must shed immediately");

    // Re-open the quota: admission resumes, no restart required.
    ladder.per_client_queue = 256;
    server.set_ladder(ladder);
    let sub = server.submit(id, 0, vec![], vec![(key(4), 1.0)]).unwrap();
    assert_eq!(sub.shed(), 0);

    let stats = server.wire_counters();
    assert_eq!(counter(&stats, "ladder_per_client_queue"), 256);
    assert_eq!(counter(&stats, "serve_shed_entry_quota"), 2);
}

#[test]
fn demand_rtt_window_feeds_the_p99_gauge() {
    let server = det_server(ServeConfig::default(), 8);
    let mut inproc = InProcServer::new(server.clone());
    let mut c = ServeClient::new(inproc.connect());
    c.send_open("v").unwrap();
    inproc.tick();
    c.recv_open().unwrap();
    c.send_fetch(0, vec![key(1), key(2)], vec![]).unwrap();
    inproc.tick();
    let r = c.recv_fetch().unwrap();
    assert_eq!(r.blocks.len(), 2);

    let stats = server.wire_counters();
    assert_eq!(counter(&stats, "serve_demand_rtt_count"), 1, "one frame = one RTT sample");
    assert!(server.demand_p99_ns() > 0);
    // Consuming the window resets it.
    let w = server.take_demand_window();
    assert_eq!(w.count(), 1);
    assert_eq!(server.demand_p99_ns(), 0);
}

#[test]
fn stats_frames_carry_published_gauges() {
    viz_telemetry::stats::set_gauge("adapt_test_gauge", 42);
    let server = det_server(ServeConfig::default(), 4);
    let stats = server.wire_counters();
    assert_eq!(counter(&stats, "adapt_test_gauge"), 42);
    viz_telemetry::stats::clear_gauges();
}

/// A small flight with real prediction tables, so σ actually gates
/// prefetch admission.
fn table_flight(sigma: f64) -> ClientFlight {
    let spec = DatasetSpec::new(DatasetKind::Ball3d, 16, 5);
    let field = spec.materialize(0, 0.0);
    let layout = BrickLayout::new(field.dims, Dims3::cube(8));
    let importance = Arc::new(ImportanceTable::from_field(&layout, &field, 32));
    let angle = deg_to_rad(20.0);
    let sampling = SamplingConfig::paper_default(2.0, 3.0, angle).with_target_samples(64);
    let tv = Arc::new(VisibleTable::build(sampling, &layout, RadiusRule::Fixed(0.6), None));
    let domain = viz_geom::ExplorationDomain::new(viz_geom::Vec3::ZERO, 2.0, 3.0);
    let poses = SphericalPath::new(domain, 2.5, 10.0, angle).generate(64);
    ClientFlight::new(&layout, poses, Some((tv, importance)), sigma)
}

#[test]
fn sigma_rises_when_backlog_is_never_consumed() {
    let server = det_server(ServeConfig::default(), 0);
    let id = server.open_session("v").unwrap();
    assert!(server.attach_flight(id, table_flight(0.5)));
    let cfg = AdaptiveSigma { gain: 0.3, min_sigma: 0.0, max_sigma: 5.0, target_ratio: 0.9 };
    assert!(server.attach_adaptive_sigma(id, cfg, 2.0));
    assert_eq!(server.session_sigma(id), Some(0.5));

    // Never pump: every frame's admitted prefetch is still queued at the
    // next advance — a persistent overshoot the controller must answer by
    // raising σ (speculate less).
    for _ in 0..20 {
        server.advance(id).unwrap();
    }
    let sigma = server.session_sigma(id).unwrap();
    assert!(sigma > 0.5, "σ should rise under persistent backlog, got {sigma}");
}

#[test]
fn sigma_falls_when_the_pump_keeps_up() {
    let server = det_server(ServeConfig::default(), 0);
    let id = server.open_session("v").unwrap();
    assert!(server.attach_flight(id, table_flight(3.0)));
    let cfg = AdaptiveSigma { gain: 0.3, min_sigma: 0.0, max_sigma: 5.0, target_ratio: 0.9 };
    assert!(server.attach_adaptive_sigma(id, cfg, 8.0));

    // Pump + run the engine to idle after every advance: backlog is
    // always consumed, so the controller sees idle I/O headroom and
    // lowers σ (speculate more).
    for _ in 0..20 {
        server.advance(id).unwrap();
        server.pump();
        server.engine().run_until_idle();
    }
    let sigma = server.session_sigma(id).unwrap();
    assert!(sigma < 3.0, "σ should fall when the backlog clears, got {sigma}");
}

#[test]
fn attach_adaptive_sigma_requires_a_flight() {
    let server = det_server(ServeConfig::default(), 0);
    let id = server.open_session("v").unwrap();
    let cfg = AdaptiveSigma::default_for_bins(32);
    assert!(!server.attach_adaptive_sigma(id, cfg, 4.0), "no flight attached yet");
    assert!(server.attach_flight(id, table_flight(1.0)));
    assert!(server.attach_adaptive_sigma(id, cfg, 4.0));
    let _ = server.advance(id);
    let ladder = server.ladder();
    assert_eq!(ladder, LadderConfig::from_serve(server.config()));
}
