//! Deterministic multi-client serving: `workers = 0`, every interleaving
//! chosen by the test via the [`InProcServer`] stepper.

use std::sync::Arc;
use std::time::Duration;
use viz_fetch::{BlockPool, FetchConfig, FetchEngine, InstrumentedSource};
use viz_serve::proto::ERR_UNKNOWN_SESSION;
use viz_serve::{InProcServer, ServeClient, ServeConfig, Server, SessionId};
use viz_volume::{BlockId, BlockKey, MemBlockStore};

fn key(i: u32) -> BlockKey {
    BlockKey::scalar(BlockId(i))
}

/// A deterministic server over an instrumented in-memory store holding
/// blocks `0..n`, each `[i; 16]`.
fn det_server(cfg: ServeConfig, n: u32) -> (Arc<Server>, Arc<InstrumentedSource>) {
    let store = MemBlockStore::new();
    for i in 0..n {
        store.insert(key(i), vec![i as f32; 16]);
    }
    let src = Arc::new(InstrumentedSource::new(Arc::new(store), Duration::ZERO));
    let engine = FetchEngine::spawn(
        src.clone(),
        Arc::new(BlockPool::new()),
        FetchConfig { workers: 0, ..FetchConfig::default() },
    );
    (Server::new(Arc::new(engine), cfg), src)
}

#[test]
fn two_clients_same_key_is_one_source_read() {
    let (server, src) = det_server(ServeConfig::default(), 8);
    let mut inproc = InProcServer::new(server.clone());
    let mut a = ServeClient::new(inproc.connect());
    let mut b = ServeClient::new(inproc.connect());

    a.send_open("a").unwrap();
    b.send_open("b").unwrap();
    inproc.tick();
    let sa = a.recv_open().unwrap();
    let sb = b.recv_open().unwrap();
    assert_ne!(sa, sb);

    // Both demand the same key before the engine runs: the second request
    // must coalesce onto the first's in-flight read.
    a.send_fetch(0, vec![key(3)], vec![]).unwrap();
    b.send_fetch(0, vec![key(3)], vec![]).unwrap();
    assert_eq!(inproc.poll(), 2, "both requests decoded before any engine work");
    inproc.step();
    assert_eq!(inproc.flush(), 2);

    let ra = a.recv_fetch().unwrap();
    let rb = b.recv_fetch().unwrap();
    let pa = ra.blocks[0].result.as_ref().unwrap();
    let pb = rb.blocks[0].result.as_ref().unwrap();
    assert_eq!(pa.as_ref(), &vec![3.0; 16], "client A got the payload");
    assert_eq!(pa, pb, "client B got the same payload");

    assert_eq!(src.reads(), 1, "exactly one source read for two clients");
    let m = server.engine().metrics();
    assert_eq!(m.cross_tag_coalesced, 1, "the join was across sessions");
    assert_eq!(server.metrics().demand_served, 2);
}

#[test]
fn replies_route_to_the_requesting_session() {
    let (server, _src) = det_server(ServeConfig::default(), 8);
    let mut inproc = InProcServer::new(server);
    let mut a = ServeClient::new(inproc.connect());
    let mut b = ServeClient::new(inproc.connect());

    a.send_open("a").unwrap();
    b.send_open("b").unwrap();
    inproc.tick();
    a.recv_open().unwrap();
    b.recv_open().unwrap();

    a.send_fetch(0, vec![key(1)], vec![]).unwrap();
    b.send_fetch(0, vec![key(2)], vec![]).unwrap();
    inproc.tick();
    assert_eq!(a.recv_fetch().unwrap().blocks[0].result.as_ref().unwrap()[0], 1.0);
    assert_eq!(b.recv_fetch().unwrap().blocks[0].result.as_ref().unwrap()[0], 2.0);

    a.send_stats().unwrap();
    inproc.tick();
    let stats = match a.recv_response().unwrap() {
        viz_serve::Response::StatsReply { counters } => counters,
        other => panic!("wanted StatsReply, got {other:?}"),
    };
    assert_eq!(stats.iter().find(|(n, _)| n == "serve_demand_served").unwrap().1, 2);
    assert_eq!(stats.iter().find(|(n, _)| n == "serve_sessions_opened").unwrap().1, 2);
}

#[test]
fn unknown_session_is_a_typed_error_not_a_dead_connection() {
    let (server, _src) = det_server(ServeConfig::default(), 4);
    let mut inproc = InProcServer::new(server);
    let mut c = ServeClient::new(inproc.connect());

    c.send_raw(&viz_serve::proto::encode_request(&viz_serve::Request::Fetch {
        session: 999,
        generation: 0,
        demand: vec![key(0)],
        prefetch: vec![],
        trace: viz_serve::TraceCtx::NONE,
    }))
    .unwrap();
    inproc.tick();
    match c.recv_response().unwrap() {
        viz_serve::Response::Error { code, .. } => assert_eq!(code, ERR_UNKNOWN_SESSION),
        other => panic!("wanted Error, got {other:?}"),
    }

    // The connection is still good.
    c.send_open("late").unwrap();
    inproc.tick();
    c.recv_open().unwrap();
}

#[test]
fn demand_is_never_shed_while_prefetch_downgrades_then_sheds() {
    let cfg =
        ServeConfig { downgrade_queue_depth: 2, shed_queue_depth: 4, ..ServeConfig::default() };
    let (server, _src) = det_server(cfg, 64);
    let sid = server.open_session("storm").unwrap();

    let demand: Vec<BlockKey> = (0..8).map(key).collect();
    let prefetch: Vec<(BlockKey, f64)> = (8..16).map(|i| (key(i), 0.9)).collect();
    let sub = server.submit(sid, 0, demand, prefetch).unwrap();

    // Backlog walks 0..8 as entries are admitted: 2 at full priority,
    // 2 downgraded (backlog 2..4), the remaining 4 shed at the watermark.
    assert_eq!(sub.shed(), 4);
    assert_eq!(sub.downgraded(), 2);

    server.pump();
    server.engine().run_until_idle();
    let replies = sub.collect_ready(&server);
    assert_eq!(replies.len(), 8, "every demand key answered despite the storm");
    assert!(replies.iter().all(|r| r.result.is_ok()));

    let m = server.metrics();
    assert_eq!(m.demand_admitted, 8);
    assert_eq!(m.demand_served, 8);
    assert_eq!(m.prefetch_shed, 4);
    assert_eq!(m.prefetch_downgraded, 2);
}

#[test]
fn per_client_quotas_bound_a_greedy_session() {
    let cfg = ServeConfig { per_client_queue: 4, ..ServeConfig::default() };
    let (server, _src) = det_server(cfg, 64);
    let greedy = server.open_session("greedy").unwrap();
    let modest = server.open_session("modest").unwrap();

    let sub = server.submit(greedy, 0, vec![], (0..10).map(|i| (key(i), 1.0)).collect()).unwrap();
    assert_eq!(sub.shed(), 6, "entries past the per-client queue quota shed");

    // The quota is per client: the other session still admits freely.
    let sub2 = server.submit(modest, 0, vec![], (20..23).map(|i| (key(i), 1.0)).collect()).unwrap();
    assert_eq!(sub2.shed(), 0);

    let views = server.sessions();
    assert_eq!(views[0].prefetch_shed, 6);
    assert_eq!(views[1].prefetch_shed, 0);
}

#[test]
fn pool_pressure_sheds_new_prefetch() {
    let cfg = ServeConfig { shed_resident_bytes: 1, ..ServeConfig::default() };
    let (server, _src) = det_server(cfg, 8);
    let sid = server.open_session("v").unwrap();
    server.engine().pool().insert(key(0), vec![0.0; 16]);

    let sub = server.submit(sid, 0, vec![], vec![(key(1), 1.0)]).unwrap();
    assert_eq!(sub.shed(), 1, "resident bytes over the watermark shed speculation");

    // Demand still flows under pool pressure.
    let sub = server.submit(sid, 0, vec![key(2)], vec![]).unwrap();
    server.pump();
    server.engine().run_until_idle();
    assert!(sub.collect_ready(&server)[0].result.is_ok());
}

#[test]
fn advance_purges_stale_prefetch_and_sheds_stale_generations() {
    let (server, src) = det_server(ServeConfig::default(), 64);
    let sid = server.open_session("stepper").unwrap();

    // Queue speculation under generation 0, then advance before pumping:
    // the queued entries must never reach the source.
    let sub = server.submit(sid, 0, vec![], vec![(key(1), 1.0), (key(2), 1.0)]).unwrap();
    assert_eq!(sub.shed(), 0);
    assert_eq!(server.advance(sid), Some(1));
    server.pump();
    server.engine().run_until_idle();
    assert_eq!(src.reads(), 0, "purged prefetch never touched the source");

    // A straggler still submitting under generation 0 sheds...
    let stale = server.submit(sid, 0, vec![], vec![(key(3), 1.0)]).unwrap();
    assert_eq!(stale.shed(), 1);
    // ...while the current generation admits.
    let fresh = server.submit(sid, 1, vec![], vec![(key(4), 1.0)]).unwrap();
    assert_eq!(fresh.shed(), 0);
    server.pump();
    server.engine().run_until_idle();
    assert!(server.engine().pool().contains(key(4)));
    assert!(!server.engine().pool().contains(key(3)));
}

#[test]
fn attached_flight_feeds_next_frame_speculation_on_advance() {
    use viz_core::ClientFlight;
    use viz_geom::{CameraPose, Vec3};

    let (server, _src) = det_server(ServeConfig::default(), 8);
    let sid = server.open_session("guided").unwrap();

    let pose = CameraPose::new(Vec3::new(2.0, 0.0, 0.0), Vec3::new(0.0, 0.0, 0.0), 1.0);
    let visible = vec![vec![BlockId(0), BlockId(1)], vec![BlockId(2)], vec![BlockId(3)]];
    let flight = ClientFlight::from_visible(vec![pose; 3], visible, None, 0.0);
    assert!(server.attach_flight(sid, flight));
    assert!(!server.attach_flight(SessionId(999), {
        let pose = CameraPose::new(Vec3::new(2.0, 0.0, 0.0), Vec3::new(0.0, 0.0, 0.0), 1.0);
        ClientFlight::from_visible(vec![pose], vec![vec![]], None, 0.0)
    }));

    // Step 0's frame speculates step 1's visible set (block 2).
    server.advance(sid).unwrap();
    server.pump();
    server.engine().run_until_idle();
    assert!(server.engine().pool().contains(key(2)));
    assert!(!server.engine().pool().contains(key(3)));

    // The next advance speculates step 2's set.
    server.advance(sid).unwrap();
    server.pump();
    server.engine().run_until_idle();
    assert!(server.engine().pool().contains(key(3)));
}

#[test]
fn drain_flushes_demand_drops_prefetch_and_refuses_new_work() {
    let (server, src) = det_server(ServeConfig::default(), 64);
    let a = server.open_session("a").unwrap();
    let b = server.open_session("b").unwrap();

    let sub_a = server.submit(a, 0, vec![key(0), key(1)], vec![(key(10), 1.0)]).unwrap();
    let sub_b = server.submit(b, 0, vec![key(2)], vec![(key(11), 1.0), (key(12), 0.5)]).unwrap();

    let report = server.drain();
    assert_eq!(report.sessions_closed, 2);
    assert_eq!(report.demand_flushed, 3, "all queued demand reached the engine");
    assert_eq!(report.prefetch_dropped, 3, "queued speculation was discarded");
    assert_eq!(src.reads(), 3, "drain ran the engine to idle on demand only");

    let ra = sub_a.collect_ready(&server);
    let rb = sub_b.collect_ready(&server);
    assert!(ra.iter().all(|r| r.result.is_ok()), "flushed demand still delivers");
    assert!(rb[0].result.is_ok());

    assert_eq!(server.open_session("late"), Err(viz_serve::ServeError::Draining));
    assert_eq!(server.sessions().len(), 0);
}

#[test]
fn session_cap_refuses_the_overflow_open() {
    let cfg = ServeConfig { max_sessions: 2, ..ServeConfig::default() };
    let (server, _src) = det_server(cfg, 4);
    server.open_session("a").unwrap();
    server.open_session("b").unwrap();
    assert_eq!(server.open_session("c"), Err(viz_serve::ServeError::TooManySessions));
    // Closing one frees a slot.
    let views = server.sessions();
    assert!(server.close_session(views[0].id));
    server.open_session("c").unwrap();
}

#[test]
fn disconnecting_a_client_closes_its_sessions() {
    let (server, _src) = det_server(ServeConfig::default(), 4);
    let mut inproc = InProcServer::new(server.clone());
    let mut a = ServeClient::new(inproc.connect());
    a.send_open("ephemeral").unwrap();
    inproc.tick();
    a.recv_open().unwrap();
    assert_eq!(server.sessions().len(), 1);

    drop(a);
    inproc.tick();
    assert_eq!(server.sessions().len(), 0, "owned session closed on disconnect");
    assert_eq!(server.metrics().sessions_closed, 1);
}
