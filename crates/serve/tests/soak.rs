//! Deterministic 1 000-session churn soak over the in-process reactor.
//!
//! Everything runs on one thread, on a virtual clock, through
//! [`ReactorInProcServer`] — the same dispatch/park/unpark/expire state
//! machine the TCP reactor runs, minus the kernel. A thousand live
//! sessions churn for several rounds (each round: every client fetches,
//! a cohort leaves — some politely, some by vanishing — and a new cohort
//! joins) while the suite asserts the invariants the reactor exists to
//! keep:
//!
//! - **session ids are never reused**, across opens, closes, and drops;
//! - **demand is never shed and never errors** — every demanded block
//!   comes back with its payload, every round;
//! - **memory stays bounded**: the pool never exceeds the distinct key
//!   set, engine queues and the scheduler return to zero after every
//!   round, and closed sessions leave nothing behind.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;
use viz_fetch::{BlockPool, FetchConfig, FetchEngine};
use viz_serve::{
    InProcTransport, IoBackend, ReactorInProcServer, ServeClient, ServeConfig, Server,
};
use viz_volume::{BlockId, BlockKey, MemBlockStore};

const DISTINCT_KEYS: u32 = 256;
const SESSIONS: usize = 1_000;
const CHURN: usize = 100;
const ROUNDS: usize = 5;

fn key(i: u32) -> BlockKey {
    BlockKey::scalar(BlockId(i % DISTINCT_KEYS))
}

fn soak_server() -> ReactorInProcServer {
    let store = MemBlockStore::new();
    for i in 0..DISTINCT_KEYS {
        store.insert(key(i), vec![i as f32; 16]);
    }
    let engine = FetchEngine::spawn(
        Arc::new(store),
        Arc::new(BlockPool::new()),
        // workers = 0: the reactor steps the engine inline, in batches.
        FetchConfig { workers: 0, batch_max: 8, ..FetchConfig::deterministic() },
    );
    let server = Server::new(
        Arc::new(engine),
        ServeConfig {
            backend: IoBackend::Reactor,
            max_sessions: SESSIONS + CHURN + 1,
            engine_queue_target: 8 * 1024,
            shed_queue_depth: 64 * 1024,
            downgrade_queue_depth: 64 * 1024,
            demand_deadline: Some(Duration::from_millis(50)),
            ..ServeConfig::default()
        },
    );
    ReactorInProcServer::new(server)
}

struct SoakClient {
    client: ServeClient<InProcTransport>,
    session: u32,
}

/// Open `n` fresh sessions (pipelined: all sends, one tick, all acks),
/// recording ids in `seen` and asserting none was ever handed out before.
fn open_cohort(
    reactor: &mut ReactorInProcServer,
    n: usize,
    seen: &mut HashSet<u32>,
) -> Vec<SoakClient> {
    let mut cohort: Vec<SoakClient> = (0..n)
        .map(|i| SoakClient {
            client: ServeClient::new(reactor.connect()),
            session: u32::MAX - i as u32,
        })
        .collect();
    for c in &mut cohort {
        c.client.send_open("soak").unwrap();
    }
    reactor.tick();
    for c in &mut cohort {
        let id = c.client.recv_open().unwrap();
        assert!(seen.insert(id), "session id {id} was reused");
        c.session = id;
    }
    cohort
}

#[test]
fn thousand_session_churn_soak() {
    let mut reactor = soak_server();
    let mut seen = HashSet::new();
    let mut clients = open_cohort(&mut reactor, SESSIONS, &mut seen);
    let mut expected_served: u64 = 0;

    for round in 0..ROUNDS {
        // Every live session asks for two demand blocks and speculates on
        // two more — all sends land before a single tick runs, the way a
        // poll loop sees a burst of simultaneously-readable sockets.
        for (i, c) in clients.iter_mut().enumerate() {
            let base = (round * 7 + i * 2) as u32;
            c.client
                .send_fetch(
                    0,
                    vec![key(base), key(base + 1)],
                    vec![(key(base + 64), 0.9), (key(base + 65), 0.4)],
                )
                .unwrap();
        }
        reactor.tick();
        for c in &mut clients {
            let got = c.client.recv_fetch().unwrap();
            assert_eq!(got.blocks.len(), 2);
            for reply in &got.blocks {
                let data = reply.result.as_ref().unwrap_or_else(|code| {
                    panic!("round {round}: demand errored with code {code}")
                });
                assert_eq!(data[0], (reply.key.block.0 % DISTINCT_KEYS) as f32);
            }
            assert_eq!(got.shed, 0, "round {round}: prefetch shed under generous quotas");
            expected_served += 2;
        }

        // Churn: the oldest cohort leaves — half politely, half by
        // dropping the pipe mid-session — and a fresh cohort joins.
        let leavers: Vec<SoakClient> = clients.drain(..CHURN).collect();
        let mut polite = Vec::new();
        for (i, mut c) in leavers.into_iter().enumerate() {
            if i % 2 == 0 {
                c.client.send_close().unwrap();
                polite.push(c);
            }
            // Odd leavers drop here: no Close, the pipe just dies.
        }
        reactor.sweep();
        reactor.tick();
        for c in &mut polite {
            c.client.close_ack();
        }
        drop(polite);
        // The vanished halves' pipes report hangup on the sweep; their
        // sessions must be gone before the new cohort opens.
        reactor.sweep();
        reactor.tick();
        clients.extend(open_cohort(&mut reactor, CHURN, &mut seen));

        // Bounded memory, checked every round: queues fully drain, the
        // pool never outgrows the distinct key set, and the registry
        // holds exactly the live sessions.
        let server = reactor.server().clone();
        assert_eq!(server.engine().queue_depths(), (0, 0), "round {round}: engine not drained");
        assert!(
            server.engine().pool().len() <= DISTINCT_KEYS as usize,
            "round {round}: pool outgrew the key universe"
        );
        assert_eq!(server.sessions().len(), SESSIONS, "round {round}: session leak");
        assert_eq!(reactor.open_conns(), SESSIONS, "round {round}: connection leak");
        reactor.advance(16_000_000); // 16 ms of virtual time per round
    }

    let m = reactor.server().metrics();
    assert_eq!(m.demand_errors, 0, "no demand may fail in the soak");
    assert_eq!(m.demand_served, expected_served);
    assert_eq!(m.prefetch_shed, 0);
    assert_eq!(m.sessions_opened as usize, seen.len());
    assert_eq!(seen.len(), SESSIONS + ROUNDS * CHURN);
    // Ids are dense and monotone: the registry never recycled one.
    assert_eq!(seen.iter().max().copied(), Some(seen.len() as u32));

    // Everyone leaves; the server ends empty.
    for c in &mut clients {
        c.client.send_close().unwrap();
    }
    reactor.tick();
    for c in &mut clients {
        c.client.close_ack();
    }
    drop(clients);
    reactor.sweep();
    reactor.tick();
    assert_eq!(reactor.server().sessions().len(), 0);
    assert_eq!(reactor.open_conns(), 0);
    assert_eq!(reactor.tick(), 0, "a quiescent reactor does no work");
}

trait SoakClientExt {
    fn close_ack(&mut self);
}

impl SoakClientExt for ServeClient<InProcTransport> {
    fn close_ack(&mut self) {
        match self.recv_response().unwrap() {
            viz_serve::Response::CloseAck { .. } => {}
            other => panic!("expected CloseAck, got {other:?}"),
        }
    }
}
