//! Reactor front ends: every connection on one poll-driven event loop.
//!
//! The thread-per-connection [`crate::TcpServer`] spends an OS thread
//! (stack, scheduler slot) per client, which caps a server at a few
//! hundred sessions. The reactor model holds *all* connections in one
//! loop built from the [`viz_fetch::reactor`] substrate: `poll(2)` for
//! socket readiness, a [`TimerWheel`] for demand deadlines (no
//! sacrificial timeout threads), and a [`viz_fetch::ReadySet`] so the
//! deterministic in-process transport runs through the *same* state
//! machine — the soak suite drives thousands of virtual connections on a
//! virtual clock and exercises exactly the code the TCP loop runs.
//!
//! ## Per-connection state machine
//!
//! A connection is either **idle** (buffered requests decode and
//! dispatch immediately) or **parked** on one in-flight `Fetch`. While
//! parked, later requests stay buffered — request→reply order per
//! connection is the same contract [`crate::serve_connection`] keeps.
//! A parked fetch unparks when its demand tickets resolve
//! ([`PendingFetch::poll`]) or when its deadline timer fires, in which
//! case unresolved keys report `TimedOut` and their reads stay in
//! flight for a later frame — degraded, not dropped.
//!
//! Pick the backend with [`ServeConfig::backend`]; [`crate::TcpFrontend`]
//! dispatches on it so callers and tests are backend-generic.

use crate::proto::{self, frame_body_len, Request, Response};
use crate::registry::SessionId;
use crate::server::{DrainReport, Outcome, PendingFetch, Server};
use crate::transport::{InProcTransport, Transport};
use crate::{handle_request, inproc_pair};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;
use viz_fetch::reactor::{POLL_IN, POLL_OUT};
use viz_fetch::{poll_fds, PollFd, ReadySet, TimerId, TimerWheel};
use viz_telemetry::EventKind as Ev;

/// One parked `Fetch` and its (optional) deadline timer.
struct Parked {
    fetch: PendingFetch,
    timer: Option<TimerId>,
}

/// Shared per-connection protocol state: buffered inbound bytes/frames,
/// sessions opened on the connection, and the park slot.
struct ConnState {
    owned: Vec<SessionId>,
    parked: Option<Parked>,
    dead: bool,
    /// Protocol version the peer's last request claimed; replies answer
    /// at it so a v1 client keeps decoding them.
    ver: u16,
}

impl ConnState {
    fn new() -> Self {
        ConnState { owned: Vec::new(), parked: None, dead: false, ver: proto::PROTO_VERSION }
    }

    /// Track session ownership from a response about to be sent, so the
    /// reaper can close sessions the peer abandoned.
    fn note_response(&mut self, resp: &Response) {
        match resp {
            Response::OpenAck { session } => self.owned.push(SessionId(*session)),
            Response::CloseAck { session } => self.owned.retain(|s| s.0 != *session),
            _ => {}
        }
    }
}

/// Dispatch one decoded request; `Some` is a ready reply, `None` means
/// the fetch parked in `st` (the caller arms its deadline timer).
fn dispatch(
    server: &Arc<Server>,
    st: &mut ConnState,
    req: Result<(u16, Request), proto::ProtoError>,
) -> Option<Response> {
    let resp = match req {
        Ok((ver, req)) => {
            st.ver = ver;
            match handle_request(server, req) {
                Outcome::Ready(r) => r,
                Outcome::Fetch(fetch) => {
                    // Issue the demand now so the engine starts on it this
                    // tick; the reply completes when the tickets resolve.
                    server.pump();
                    st.parked = Some(Parked { fetch, timer: None });
                    return None;
                }
            }
        }
        Err(pe) => Response::Error { code: pe.code(), message: pe.to_string() },
    };
    st.note_response(&resp);
    Some(resp)
}

/// Split complete frames off the front of `rbuf`. `Err` means the
/// header itself is garbage — the stream cannot be resynchronized.
fn take_frame(rbuf: &mut Vec<u8>) -> Result<Option<Vec<u8>>, ()> {
    if rbuf.len() < 8 {
        return Ok(None);
    }
    let header: &[u8; 8] = rbuf[..8].try_into().expect("8-byte slice");
    let body = frame_body_len(header).map_err(|_| ())?;
    let total = 8 + body;
    if rbuf.len() < total {
        return Ok(None);
    }
    Ok(Some(rbuf.drain(..total).collect()))
}

// ---------------------------------------------------------------------
// TCP reactor
// ---------------------------------------------------------------------

struct TcpConn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    st: ConnState,
}

/// A localhost TCP front end running every connection on one poll loop.
/// API-compatible with [`crate::TcpServer`]; see the module docs for the
/// model.
pub struct ReactorTcpServer {
    server: Arc<Server>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    event_loop: Option<JoinHandle<()>>,
}

impl ReactorTcpServer {
    /// Bind and start the event loop. Use `"127.0.0.1:0"` for an
    /// OS-assigned port, read back via [`ReactorTcpServer::local_addr`].
    pub fn bind(server: Arc<Server>, addr: &str) -> io::Result<ReactorTcpServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let event_loop = {
            let server = server.clone();
            let stop = stop.clone();
            Some(
                std::thread::Builder::new()
                    .name("viz-serve-reactor".into())
                    .spawn(move || run_tcp_loop(&server, &listener, &stop))?,
            )
        };
        Ok(ReactorTcpServer { server, addr: local, stop, event_loop })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served [`Server`].
    pub fn server(&self) -> &Arc<Server> {
        &self.server
    }

    /// Stop the loop, close remaining connections, and drain.
    pub fn shutdown(mut self) -> DrainReport {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the loop out of its poll with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.event_loop.take() {
            let _ = h.join();
        }
        self.server.drain()
    }
}

fn run_tcp_loop(server: &Arc<Server>, listener: &TcpListener, stop: &AtomicBool) {
    use std::os::unix::io::AsRawFd;
    let epoch = Instant::now();
    let mut conns: HashMap<u64, TcpConn> = HashMap::new();
    let mut next_token: u64 = 0;
    let mut wheel = TimerWheel::for_serving();
    let mut ticks: u64 = 0;
    // Engine-completion wake: a self-connected loopback UDP socket whose
    // fd joins the poll set. The engine's completion hook sends one byte
    // per resolved job, so a loop parked in poll(2) over idle sockets
    // learns about finished reads immediately instead of at its timeout.
    let wake = std::net::UdpSocket::bind("127.0.0.1:0").ok().and_then(|w| {
        w.set_nonblocking(true).ok()?;
        w.connect(w.local_addr().ok()?).ok()?;
        let tx = w.try_clone().ok()?;
        server.engine().set_completion_hook(Some(Arc::new(move || {
            let _ = tx.send(&[1]);
        })));
        Some(w)
    });
    let conn_base = 1 + usize::from(wake.is_some());
    loop {
        let tt = viz_telemetry::start();
        let now_ns = epoch.elapsed().as_nanos() as u64;
        // Poll interest: the listener plus every live connection; write
        // interest only while a reply is partially flushed.
        let mut tokens: Vec<u64> = conns.keys().copied().collect();
        tokens.sort_unstable();
        let mut fds = Vec::with_capacity(tokens.len() + conn_base);
        fds.push(PollFd::new(listener.as_raw_fd(), POLL_IN));
        if let Some(w) = &wake {
            fds.push(PollFd::new(w.as_raw_fd(), POLL_IN));
        }
        let mut any_parked = false;
        for &t in &tokens {
            let c = &conns[&t];
            let mut ev = POLL_IN;
            if !c.wbuf.is_empty() {
                ev |= POLL_OUT;
            }
            any_parked |= c.st.parked.is_some();
            fds.push(PollFd::new(c.stream.as_raw_fd(), ev));
        }
        // Parked fetches resolve on engine-worker time; the wake socket
        // reports that as readiness, so the loop sleeps to the next timer
        // deadline (bounded so shutdown and accept recover within a beat
        // even if a wake races the poll). Only when the wake socket could
        // not be set up does a short parked-poll timeout stand in.
        let timeout_ms = if any_parked && wake.is_none() {
            1
        } else {
            match wheel.next_deadline_ns() {
                Some(d) => ((d.saturating_sub(now_ns)) / 1_000_000).clamp(1, 25) as i32,
                None => 25,
            }
        };
        let events = poll_fds(&mut fds, timeout_ms).unwrap_or(0);
        if stop.load(Ordering::SeqCst) {
            break;
        }
        // Drain wake bytes: their only meaning is "look at parked fetches".
        if let Some(w) = &wake {
            if fds[1].readable() {
                let mut sink = [0u8; 64];
                while w.recv(&mut sink).is_ok() {}
            }
        }
        // Accept every waiting connection.
        if fds[0].readable() {
            while let Ok((stream, _)) = listener.accept() {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let token = next_token;
                next_token += 1;
                conns.insert(
                    token,
                    TcpConn { stream, rbuf: Vec::new(), wbuf: Vec::new(), st: ConnState::new() },
                );
            }
        }
        // Read + dispatch on readable connections.
        for (i, &token) in tokens.iter().enumerate() {
            let fd = fds[i + conn_base];
            let Some(c) = conns.get_mut(&token) else { continue };
            if fd.readable() && !read_into(&mut c.stream, &mut c.rbuf) {
                c.st.dead = true;
            }
            process_buffered(server, &mut wheel, now_ns, token, c);
            if fd.writable() {
                flush_wbuf(c);
            }
        }
        // Move queued work into the engine; its workers resolve tickets.
        server.pump();
        // Unpark completed fetches, then expire missed deadlines.
        for (&token, c) in &mut conns {
            if unpark_ready(server, &mut wheel, c) {
                // The reply freed the park slot: buffered requests can
                // now dispatch without waiting for more socket bytes.
                process_buffered(server, &mut wheel, now_ns, token, c);
            }
        }
        for (_, token) in wheel.expire(now_ns) {
            if let Some(c) = conns.get_mut(&token) {
                if let Some(p) = c.st.parked.take() {
                    let resp = p.fetch.resolve_timed_out(server);
                    c.st.note_response(&resp);
                    send_response(c, &resp);
                }
            }
        }
        // Opportunistic flush (most replies fit the socket buffer).
        for c in conns.values_mut() {
            if !c.wbuf.is_empty() {
                flush_wbuf(c);
            }
        }
        // Reap dead connections: their sessions close, timers lapse as
        // tombstones.
        conns.retain(|_, c| {
            if c.st.dead {
                if let Some(p) = c.st.parked.take() {
                    if let Some(t) = p.timer {
                        wheel.cancel(t);
                    }
                }
                for id in c.st.owned.drain(..) {
                    server.close_session(id);
                }
                false
            } else {
                true
            }
        });
        if viz_telemetry::enabled() {
            ticks += 1;
            viz_telemetry::span(
                Ev::ReactorTick,
                ticks,
                ((events as u64) << 32) | conns.len() as u64,
                tt,
            );
        }
    }
    // Loop stopped: close whatever is still connected.
    if wake.is_some() {
        server.engine().set_completion_hook(None);
    }
    for (_, mut c) in conns {
        for id in c.st.owned.drain(..) {
            server.close_session(id);
        }
        let _ = c.stream.shutdown(std::net::Shutdown::Both);
    }
}

/// Drain the socket into `rbuf`; `false` on EOF or a hard error.
fn read_into(stream: &mut TcpStream, rbuf: &mut Vec<u8>) -> bool {
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return false,
            Ok(n) => rbuf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
}

/// Decode and dispatch buffered frames until the connection parks or
/// the buffer runs dry.
fn process_buffered(
    server: &Arc<Server>,
    wheel: &mut TimerWheel,
    now_ns: u64,
    token: u64,
    c: &mut TcpConn,
) {
    while !c.st.dead && c.st.parked.is_none() {
        let frame = match take_frame(&mut c.rbuf) {
            Ok(Some(f)) => f,
            Ok(None) => break,
            Err(()) => {
                c.st.dead = true;
                break;
            }
        };
        match dispatch(server, &mut c.st, proto::decode_request_full(&frame)) {
            Some(resp) => send_response(c, &resp),
            None => {
                // Parked: arm the demand deadline, if the config sets one.
                if let Some(d) = server.config().demand_deadline {
                    let deadline = now_ns + d.as_nanos() as u64;
                    if let Some(p) = c.st.parked.as_mut() {
                        p.timer = Some(wheel.schedule(deadline, token));
                    }
                }
            }
        }
    }
}

/// If the parked fetch completed, send its reply. Returns `true` when
/// the park slot was freed.
fn unpark_ready(server: &Arc<Server>, wheel: &mut TimerWheel, c: &mut TcpConn) -> bool {
    let Some(p) = c.st.parked.as_mut() else { return false };
    if !p.fetch.poll() {
        return false;
    }
    let p = c.st.parked.take().unwrap();
    if let Some(t) = p.timer {
        wheel.cancel(t);
    }
    let resp = p.fetch.resolve_now(server);
    c.st.note_response(&resp);
    send_response(c, &resp);
    true
}

fn send_response(c: &mut TcpConn, resp: &Response) {
    c.wbuf.extend_from_slice(&proto::encode_response_versioned(resp, c.st.ver));
    flush_wbuf(c);
}

/// Write as much of `wbuf` as the socket takes right now.
fn flush_wbuf(c: &mut TcpConn) {
    let mut written = 0;
    while written < c.wbuf.len() {
        match c.stream.write(&c.wbuf[written..]) {
            Ok(0) => {
                c.st.dead = true;
                break;
            }
            Ok(n) => written += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                c.st.dead = true;
                break;
            }
        }
    }
    c.wbuf.drain(..written);
}

// ---------------------------------------------------------------------
// Deterministic in-process reactor
// ---------------------------------------------------------------------

/// The reactor state machine over virtual connections and a virtual
/// clock: the soak suite's workhorse. [`ReactorInProcServer::connect`]
/// hands back a client pipe whose sends mark a [`ReadySet`] token —
/// the loop's stand-in for socket readability — and
/// [`ReactorInProcServer::tick`] runs the same
/// dispatch/park/unpark/expire cycle as the TCP loop, but to
/// quiescence, with the engine stepped inline
/// ([`viz_fetch::FetchEngine::run_batch`], so batched source reads are
/// exercised too). Deadlines come off the caller-advanced clock
/// ([`ReactorInProcServer::advance`]), never the wall.
pub struct ReactorInProcServer {
    server: Arc<Server>,
    ready: Arc<ReadySet>,
    wheel: TimerWheel,
    /// Token == index; dead slots tombstone as `None` so tokens stay
    /// stable for the ready set and timer wheel.
    conns: Vec<Option<VConn>>,
    now_ns: u64,
    ticks: u64,
}

struct VConn {
    t: InProcTransport,
    st: ConnState,
}

impl ReactorInProcServer {
    /// Wrap a server (typically over a `workers = 0` engine).
    pub fn new(server: Arc<Server>) -> ReactorInProcServer {
        ReactorInProcServer {
            server,
            ready: ReadySet::new(),
            wheel: TimerWheel::for_serving(),
            conns: Vec::new(),
            now_ns: 0,
            ticks: 0,
        }
    }

    /// The served [`Server`].
    pub fn server(&self) -> &Arc<Server> {
        &self.server
    }

    /// The virtual clock, in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Live (non-tombstoned) connections.
    pub fn open_conns(&self) -> usize {
        self.conns.iter().flatten().count()
    }

    /// Open a connection; the returned client end's sends wake the loop.
    pub fn connect(&mut self) -> InProcTransport {
        let (mut client, server_end) = inproc_pair();
        let token = self.conns.len() as u64;
        let h = self.ready.handle(token);
        client.set_notify(Arc::new(move || h.mark()));
        self.conns.push(Some(VConn { t: server_end, st: ConnState::new() }));
        client
    }

    /// Advance the virtual clock; deadlines crossed fire on the next
    /// [`ReactorInProcServer::tick`].
    pub fn advance(&mut self, ns: u64) {
        self.now_ns += ns;
    }

    /// Probe every live connection on the next tick — the virtual
    /// counterpart of `POLLHUP`: a client end that was dropped without a
    /// `Close` is only observable by polling its pipe, so churn tests
    /// sweep periodically the way the TCP loop's `poll` reports hangups.
    pub fn sweep(&mut self) {
        for (i, slot) in self.conns.iter().enumerate() {
            if slot.is_some() {
                self.ready.mark(i as u64);
            }
        }
    }

    /// Run the reactor cycle to quiescence: drain ready connections,
    /// pump, step the engine (batched), unpark completed fetches, expire
    /// deadlines — until a full round makes no progress. Returns units of
    /// work done (requests + engine jobs + replies).
    pub fn tick(&mut self) -> usize {
        let tt = viz_telemetry::start();
        let mut total = 0;
        loop {
            let mut progress = 0;
            for token in self.ready.take_ready() {
                progress += self.service(token);
            }
            self.server.pump();
            loop {
                let done = self.server.engine().run_batch();
                if done.is_empty() {
                    break;
                }
                progress += done.len();
            }
            progress += self.unpark();
            progress += self.expire();
            if progress == 0 {
                break;
            }
            total += progress;
        }
        self.reap();
        if viz_telemetry::enabled() {
            self.ticks += 1;
            viz_telemetry::span(
                Ev::ReactorTick,
                self.ticks,
                ((total as u64) << 32) | self.open_conns() as u64,
                tt,
            );
        }
        total
    }

    /// Dispatch buffered requests on one ready connection.
    fn service(&mut self, token: u64) -> usize {
        let Some(Some(c)) = self.conns.get_mut(token as usize) else { return 0 };
        let mut n = 0;
        while !c.st.dead && c.st.parked.is_none() {
            let frame = match c.t.try_recv() {
                Ok(Some(f)) => f,
                Ok(None) => break,
                Err(_) => {
                    c.st.dead = true;
                    break;
                }
            };
            n += 1;
            match dispatch(&self.server, &mut c.st, proto::decode_request_full(&frame)) {
                Some(resp) => {
                    if c.t.send(&proto::encode_response_versioned(&resp, c.st.ver)).is_err() {
                        c.st.dead = true;
                    }
                }
                None => {
                    if let Some(d) = self.server.config().demand_deadline {
                        let deadline = self.now_ns + d.as_nanos() as u64;
                        if let Some(p) = c.st.parked.as_mut() {
                            p.timer = Some(self.wheel.schedule(deadline, token));
                        }
                    }
                }
            }
        }
        n
    }

    /// Send replies for parked fetches whose tickets all resolved; the
    /// freed connections re-mark themselves so still-buffered requests
    /// dispatch on the next round.
    fn unpark(&mut self) -> usize {
        let mut sent = 0;
        for (i, slot) in self.conns.iter_mut().enumerate() {
            let Some(c) = slot else { continue };
            let Some(p) = c.st.parked.as_mut() else { continue };
            if !p.fetch.poll() {
                continue;
            }
            let p = c.st.parked.take().unwrap();
            if let Some(t) = p.timer {
                self.wheel.cancel(t);
            }
            let resp = p.fetch.resolve_now(&self.server);
            c.st.note_response(&resp);
            if c.t.send(&proto::encode_response_versioned(&resp, c.st.ver)).is_err() {
                c.st.dead = true;
            } else {
                sent += 1;
            }
            self.ready.mark(i as u64);
        }
        sent
    }

    /// Fire deadlines the virtual clock has passed.
    fn expire(&mut self) -> usize {
        let mut fired = 0;
        for (_, token) in self.wheel.expire(self.now_ns) {
            let Some(Some(c)) = self.conns.get_mut(token as usize) else { continue };
            let Some(p) = c.st.parked.take() else { continue };
            let resp = p.fetch.resolve_timed_out(&self.server);
            c.st.note_response(&resp);
            if c.t.send(&proto::encode_response_versioned(&resp, c.st.ver)).is_err() {
                c.st.dead = true;
            }
            fired += 1;
            self.ready.mark(token);
        }
        fired
    }

    fn reap(&mut self) {
        for slot in &mut self.conns {
            let dead = matches!(slot, Some(c) if c.st.dead);
            if dead {
                let mut c = slot.take().unwrap();
                if let Some(p) = c.st.parked.take() {
                    if let Some(t) = p.timer {
                        self.wheel.cancel(t);
                    }
                }
                for id in c.st.owned.drain(..) {
                    self.server.close_session(id);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Backend dispatcher
// ---------------------------------------------------------------------

/// A TCP front end of either backend, picked by
/// [`crate::ServeConfig::backend`] — callers and the shared test suite
/// stay backend-generic.
pub enum TcpFrontend {
    /// Thread-per-connection ([`crate::TcpServer`]).
    Threads(crate::TcpServer),
    /// Single poll loop ([`ReactorTcpServer`]).
    Reactor(ReactorTcpServer),
}

impl TcpFrontend {
    /// Bind whichever backend the server's config selects.
    pub fn bind(server: Arc<Server>, addr: &str) -> io::Result<TcpFrontend> {
        match server.config().backend {
            crate::IoBackend::Threads => {
                crate::TcpServer::bind(server, addr).map(TcpFrontend::Threads)
            }
            crate::IoBackend::Reactor => {
                ReactorTcpServer::bind(server, addr).map(TcpFrontend::Reactor)
            }
        }
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        match self {
            TcpFrontend::Threads(s) => s.local_addr(),
            TcpFrontend::Reactor(s) => s.local_addr(),
        }
    }

    /// The served [`Server`].
    pub fn server(&self) -> &Arc<Server> {
        match self {
            TcpFrontend::Threads(s) => s.server(),
            TcpFrontend::Reactor(s) => s.server(),
        }
    }

    /// Stop and drain.
    pub fn shutdown(self) -> DrainReport {
        match self {
            TcpFrontend::Threads(s) => s.shutdown(),
            TcpFrontend::Reactor(s) => s.shutdown(),
        }
    }
}
