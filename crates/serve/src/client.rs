//! A typed client over any [`Transport`]: encodes requests, decodes
//! replies, tracks the open session.
//!
//! The blocking calls (`open`, `fetch`, …) suit threaded use against a
//! [`crate::server::TcpServer`] or a dedicated
//! [`crate::server::serve_connection`] thread. The split `send_*` /
//! `recv_*` halves exist for the deterministic tests, where the request
//! must be on the wire *before* the test steps the
//! [`crate::server::InProcServer`], and the reply is only read after.

use crate::proto::{
    decode_response, encode_request, BlockReply, ProtoError, Request, Response, TraceCtx,
    WireTelemetry,
};
use crate::transport::Transport;
use std::io;
use viz_volume::BlockKey;

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (peer gone, socket error).
    Io(io::Error),
    /// The reply frame did not decode.
    Proto(ProtoError),
    /// The server answered with a typed error.
    Server {
        /// One of the wire `ERR_*` codes.
        code: u16,
        /// Server-provided context.
        message: String,
    },
    /// The server answered with the wrong response kind.
    Unexpected(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Proto(e) => write!(f, "protocol: {e}"),
            ClientError::Server { code, message } => write!(f, "server error {code}: {message}"),
            ClientError::Unexpected(what) => write!(f, "unexpected response, wanted {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

/// One `fetch` round trip's result.
#[derive(Debug, Clone)]
pub struct FetchOutcome {
    /// One entry per demand key, in request order.
    pub blocks: Vec<BlockReply>,
    /// Prefetches the server shed.
    pub shed: u32,
    /// Prefetches admitted at reduced priority.
    pub downgraded: u32,
}

/// A connected client (see module docs).
pub struct ServeClient<T: Transport> {
    t: T,
    session: Option<u32>,
    trace: TraceCtx,
}

impl<T: Transport> ServeClient<T> {
    /// Wrap a connected transport.
    pub fn new(t: T) -> Self {
        ServeClient { t, session: None, trace: TraceCtx::NONE }
    }

    /// The open session id, once [`ServeClient::open`] succeeded.
    pub fn session(&self) -> Option<u32> {
        self.session
    }

    /// Set the trace context stamped on subsequent `Fetch` / `Advance` /
    /// `PeerFetch` frames (the Router mints one per client request).
    /// Returns the previous context.
    pub fn set_trace_ctx(&mut self, trace: TraceCtx) -> TraceCtx {
        std::mem::replace(&mut self.trace, trace)
    }

    /// The trace context currently stamped on traced requests.
    pub fn trace_ctx(&self) -> TraceCtx {
        self.trace
    }

    fn sid(&self) -> Result<u32, ClientError> {
        self.session.ok_or(ClientError::Unexpected("an open session"))
    }

    // ---- blocking round trips -------------------------------------

    /// Open a session under `name`.
    pub fn open(&mut self, name: &str) -> Result<u32, ClientError> {
        self.send_open(name)?;
        self.recv_open()
    }

    /// One frame's wants: demand keys plus `(key, priority)` prefetch.
    pub fn fetch(
        &mut self,
        demand: Vec<BlockKey>,
        prefetch: Vec<(BlockKey, f64)>,
    ) -> Result<FetchOutcome, ClientError> {
        self.send_fetch(0, demand, prefetch)?;
        self.recv_fetch()
    }

    /// Fetch under an explicit generation (stale generations shed).
    pub fn fetch_at(
        &mut self,
        generation: u64,
        demand: Vec<BlockKey>,
        prefetch: Vec<(BlockKey, f64)>,
    ) -> Result<FetchOutcome, ClientError> {
        self.send_fetch(generation, demand, prefetch)?;
        self.recv_fetch()
    }

    /// Advance the frame generation; returns the new generation.
    pub fn advance(&mut self) -> Result<u64, ClientError> {
        self.send_advance()?;
        match self.recv_response()? {
            Response::AdvanceAck { generation, .. } => Ok(generation),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::Unexpected("AdvanceAck")),
        }
    }

    /// Snapshot the server's counters.
    pub fn stats(&mut self) -> Result<Vec<(String, u64)>, ClientError> {
        self.send_stats()?;
        match self.recv_response()? {
            Response::StatsReply { counters } => Ok(counters),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::Unexpected("StatsReply")),
        }
    }

    /// Fetch the server's shard map (cluster nodes answer; a plain
    /// server replies `ERR_NO_MAP`). Returns `(version, map_bytes)`.
    pub fn map_get(&mut self) -> Result<(u64, Vec<u8>), ClientError> {
        self.send(&Request::MapGet)?;
        match self.recv_response()? {
            Response::MapReply { version, map_bytes } => Ok((version, map_bytes)),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::Unexpected("MapReply")),
        }
    }

    /// Membership heartbeat: probe the server's liveness and shard-map
    /// version. `from` is the caller's node id, or
    /// [`crate::proto::PING_FROM_CLIENT`] for a plain client probe.
    /// Returns the responder's `(node, map_version)`.
    pub fn ping(&mut self, from: u32, map_version: u64) -> Result<(u32, u64), ClientError> {
        self.ping_timed(from, map_version).map(|(node, ver, _)| (node, ver))
    }

    /// [`ServeClient::ping`] that also returns the responder's telemetry
    /// clock (`now_ns`, v2) — the raw material for an RTT-midpoint clock
    /// offset estimate. A v1 responder reports 0.
    pub fn ping_timed(
        &mut self,
        from: u32,
        map_version: u64,
    ) -> Result<(u32, u64, u64), ClientError> {
        self.send(&Request::Ping { from, map_version })?;
        match self.recv_response()? {
            Response::Pong { node, map_version, now_ns } => Ok((node, map_version, now_ns)),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::Unexpected("Pong")),
        }
    }

    /// Drain the server's telemetry plane: events, span histograms, and
    /// counters in one round trip.
    pub fn telemetry_get(&mut self) -> Result<WireTelemetry, ClientError> {
        self.send(&Request::TelemetryGet)?;
        match self.recv_response()? {
            Response::TelemetryReply(t) => Ok(t),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::Unexpected("TelemetryReply")),
        }
    }

    /// Node-to-node demand forward: resolve `demand` on this server as
    /// the owner. Requires an open (peer) session.
    pub fn peer_fetch(
        &mut self,
        hops: u8,
        demand: Vec<BlockKey>,
    ) -> Result<FetchOutcome, ClientError> {
        let session = self.sid()?;
        let trace = self.trace;
        self.send(&Request::PeerFetch { session, hops, demand, trace })?;
        self.recv_fetch()
    }

    /// Close the open session.
    pub fn close(&mut self) -> Result<(), ClientError> {
        self.send_close()?;
        match self.recv_response()? {
            Response::CloseAck { .. } => {
                self.session = None;
                Ok(())
            }
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::Unexpected("CloseAck")),
        }
    }

    // ---- split halves (deterministic stepping) --------------------

    /// Put an `Open` on the wire without waiting for the ack.
    pub fn send_open(&mut self, name: &str) -> Result<(), ClientError> {
        self.send(&Request::Open { name: name.to_string() })
    }

    /// Put a `Fetch` on the wire without waiting for the reply.
    pub fn send_fetch(
        &mut self,
        generation: u64,
        demand: Vec<BlockKey>,
        prefetch: Vec<(BlockKey, f64)>,
    ) -> Result<(), ClientError> {
        let session = self.sid()?;
        let trace = self.trace;
        self.send(&Request::Fetch { session, generation, demand, prefetch, trace })
    }

    /// Put an `Advance` on the wire without waiting for the ack.
    pub fn send_advance(&mut self) -> Result<(), ClientError> {
        let session = self.sid()?;
        let trace = self.trace;
        self.send(&Request::Advance { session, trace })
    }

    /// Put a `Stats` on the wire without waiting for the reply.
    pub fn send_stats(&mut self) -> Result<(), ClientError> {
        self.send(&Request::Stats)
    }

    /// Put a `Close` on the wire without waiting for the ack.
    pub fn send_close(&mut self) -> Result<(), ClientError> {
        let session = self.sid()?;
        self.send(&Request::Close { session })
    }

    /// Send a raw request frame (corruption tests build their own).
    pub fn send_raw(&mut self, frame: &[u8]) -> Result<(), ClientError> {
        Ok(self.t.send(frame)?)
    }

    /// Receive and decode the next response frame.
    pub fn recv_response(&mut self) -> Result<Response, ClientError> {
        let frame = self.t.recv()?;
        Ok(decode_response(&frame)?)
    }

    /// Receive an `OpenAck`, recording the session id.
    pub fn recv_open(&mut self) -> Result<u32, ClientError> {
        match self.recv_response()? {
            Response::OpenAck { session } => {
                self.session = Some(session);
                Ok(session)
            }
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::Unexpected("OpenAck")),
        }
    }

    /// Receive a `FetchReply`.
    pub fn recv_fetch(&mut self) -> Result<FetchOutcome, ClientError> {
        match self.recv_response()? {
            Response::FetchReply { blocks, shed, downgraded, .. } => {
                Ok(FetchOutcome { blocks, shed, downgraded })
            }
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::Unexpected("FetchReply")),
        }
    }

    fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        Ok(self.t.send(&encode_request(req))?)
    }
}
