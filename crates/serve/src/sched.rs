//! Deficit-round-robin fairness across sessions, within each priority
//! class.
//!
//! Every session owns two FIFO lanes — demand and prefetch — and the
//! scheduler drains them round-robin with a per-visit deficit refill of
//! `quantum` requests: a client flooding 10,000 prefetches cannot starve
//! a client asking for 4, because each visit serves at most `quantum`
//! entries before the cursor moves on. Demand and prefetch run separate
//! cursors so a demand burst never charges a session's prefetch deficit.
//! The scheduler holds requests *before* the engine; the pump moves them
//! into the shared [`viz_fetch::FetchEngine`] in the fair order, bounded
//! by the engine backlog target.

use std::collections::{HashMap, VecDeque};
use std::sync::mpsc::Sender;
use viz_fetch::Ticket;
use viz_volume::BlockKey;

/// A queued demand request; the ticket is routed back to the waiting
/// connection handler through `tx` when the pump issues it.
pub(crate) struct DemandEntry {
    pub key: BlockKey,
    pub tx: Sender<(BlockKey, Ticket)>,
    /// Trace context of the submitting request; the pump restores it
    /// around engine admission so the engine's events stay attributed
    /// even though they run on the pump thread.
    pub trace: u64,
}

/// A queued prefetch request.
pub(crate) struct PrefetchEntry {
    pub key: BlockKey,
    pub pri: f64,
    /// Session generation at submit; `purge_prefetch` drops entries from
    /// earlier generations when the client advances its frame.
    pub gen: u64,
    /// Byte estimate for the session's byte quota.
    pub bytes: usize,
}

#[derive(Default)]
struct SessQueue {
    demand: VecDeque<DemandEntry>,
    prefetch: VecDeque<PrefetchEntry>,
    d_deficit: u32,
    p_deficit: u32,
    p_bytes: usize,
}

/// Two-class DRR scheduler (see module docs).
#[derive(Default)]
pub(crate) struct Scheduler {
    queues: HashMap<u32, SessQueue>,
    order: Vec<u32>,
    d_cursor: usize,
    p_cursor: usize,
    d_total: usize,
    p_total: usize,
}

impl Scheduler {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add_session(&mut self, sid: u32) {
        if let std::collections::hash_map::Entry::Vacant(e) = self.queues.entry(sid) {
            e.insert(SessQueue::default());
            self.order.push(sid);
        }
    }

    /// Drop a session's lanes; returns `(demand, prefetch)` entries
    /// discarded (demand senders drop, unblocking any waiter with a
    /// disconnect).
    pub fn remove_session(&mut self, sid: u32) -> (usize, usize) {
        let Some(q) = self.queues.remove(&sid) else {
            return (0, 0);
        };
        self.order.retain(|&s| s != sid);
        self.d_total -= q.demand.len();
        self.p_total -= q.prefetch.len();
        (q.demand.len(), q.prefetch.len())
    }

    pub fn push_demand(&mut self, sid: u32, e: DemandEntry) {
        self.add_session(sid);
        self.queues.get_mut(&sid).unwrap().demand.push_back(e);
        self.d_total += 1;
    }

    pub fn push_prefetch(&mut self, sid: u32, e: PrefetchEntry) {
        self.add_session(sid);
        let q = self.queues.get_mut(&sid).unwrap();
        q.p_bytes += e.bytes;
        q.prefetch.push_back(e);
        self.p_total += 1;
    }

    /// Discard a session's queued prefetch older than `cur_gen`.
    pub fn purge_prefetch(&mut self, sid: u32, cur_gen: u64) -> usize {
        let Some(q) = self.queues.get_mut(&sid) else {
            return 0;
        };
        let before = q.prefetch.len();
        q.prefetch.retain(|e| e.gen >= cur_gen);
        q.p_bytes = q.prefetch.iter().map(|e| e.bytes).sum();
        let dropped = before - q.prefetch.len();
        self.p_total -= dropped;
        dropped
    }

    /// `(entries, bytes)` a session has queued in its prefetch lane.
    pub fn queued_prefetch(&self, sid: u32) -> (usize, usize) {
        self.queues.get(&sid).map_or((0, 0), |q| (q.prefetch.len(), q.p_bytes))
    }

    pub fn queued_demand_total(&self) -> usize {
        self.d_total
    }

    pub fn queued_prefetch_total(&self) -> usize {
        self.p_total
    }

    /// Pop the next demand entry in DRR order.
    pub fn pop_next_demand(&mut self, quantum: u32) -> Option<(u32, DemandEntry)> {
        if self.d_total == 0 {
            return None;
        }
        let n = self.order.len();
        let mut visited = 0;
        loop {
            debug_assert!(visited <= n, "DRR walk looped past every session");
            let idx = self.d_cursor % n;
            let sid = self.order[idx];
            let q = self.queues.get_mut(&sid).unwrap();
            if q.demand.is_empty() {
                q.d_deficit = 0;
                self.d_cursor = (idx + 1) % n;
                visited += 1;
                continue;
            }
            if q.d_deficit == 0 {
                q.d_deficit = quantum.max(1);
            }
            let e = q.demand.pop_front().unwrap();
            q.d_deficit -= 1;
            self.d_total -= 1;
            if q.d_deficit == 0 || q.demand.is_empty() {
                if q.demand.is_empty() {
                    q.d_deficit = 0;
                }
                self.d_cursor = (idx + 1) % n;
            }
            return Some((sid, e));
        }
    }

    /// Pop the next prefetch entry in DRR order.
    pub fn pop_next_prefetch(&mut self, quantum: u32) -> Option<(u32, PrefetchEntry)> {
        if self.p_total == 0 {
            return None;
        }
        let n = self.order.len();
        let mut visited = 0;
        loop {
            debug_assert!(visited <= n, "DRR walk looped past every session");
            let idx = self.p_cursor % n;
            let sid = self.order[idx];
            let q = self.queues.get_mut(&sid).unwrap();
            if q.prefetch.is_empty() {
                q.p_deficit = 0;
                self.p_cursor = (idx + 1) % n;
                visited += 1;
                continue;
            }
            if q.p_deficit == 0 {
                q.p_deficit = quantum.max(1);
            }
            let e = q.prefetch.pop_front().unwrap();
            q.p_deficit -= 1;
            q.p_bytes -= e.bytes;
            self.p_total -= 1;
            if q.p_deficit == 0 || q.prefetch.is_empty() {
                if q.prefetch.is_empty() {
                    q.p_deficit = 0;
                }
                self.p_cursor = (idx + 1) % n;
            }
            return Some((sid, e));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;
    use viz_volume::BlockId;

    fn pe(i: u32, gen: u64) -> PrefetchEntry {
        PrefetchEntry { key: BlockKey::scalar(BlockId(i)), pri: 1.0, gen, bytes: 100 }
    }

    #[test]
    fn drr_interleaves_a_flood_with_a_trickle() {
        let mut s = Scheduler::new();
        for i in 0..12 {
            s.push_prefetch(1, pe(i, 0));
        }
        for i in 100..103 {
            s.push_prefetch(2, pe(i, 0));
        }
        let order: Vec<u32> =
            std::iter::from_fn(|| s.pop_next_prefetch(2)).map(|(sid, _)| sid).collect();
        // Quantum 2: the flood gets 2, the trickle gets 2, and so on — the
        // trickle's last entry leaves within the third round, not after all
        // 12 flood entries.
        assert_eq!(order.len(), 15);
        let trickle_done = order.iter().rposition(|&s| s == 2).unwrap();
        assert!(trickle_done <= 8, "trickle finished at {trickle_done}: {order:?}");
        assert_eq!(&order[..4], &[1, 1, 2, 2]);
    }

    #[test]
    fn demand_and_prefetch_cursors_are_independent() {
        let mut s = Scheduler::new();
        let (tx, _rx) = channel();
        for i in 0..4 {
            s.push_demand(
                1,
                DemandEntry { key: BlockKey::scalar(BlockId(i)), tx: tx.clone(), trace: 0 },
            );
        }
        s.push_prefetch(2, pe(9, 0));
        assert_eq!(s.queued_demand_total(), 4);
        assert_eq!(s.pop_next_prefetch(1).unwrap().0, 2, "session 1's demand burst is no charge");
        assert_eq!(s.pop_next_demand(1).unwrap().0, 1);
        assert_eq!((s.queued_demand_total(), s.queued_prefetch_total()), (3, 0));
    }

    #[test]
    fn purge_drops_only_stale_generations_and_rebalances_bytes() {
        let mut s = Scheduler::new();
        s.push_prefetch(1, pe(0, 1));
        s.push_prefetch(1, pe(1, 2));
        s.push_prefetch(1, pe(2, 3));
        assert_eq!(s.queued_prefetch(1), (3, 300));
        assert_eq!(s.purge_prefetch(1, 3), 2);
        assert_eq!(s.queued_prefetch(1), (1, 100));
        assert_eq!(s.queued_prefetch_total(), 1);
    }

    #[test]
    fn remove_session_reports_dropped_entries() {
        let mut s = Scheduler::new();
        let (tx, _rx) = channel();
        s.push_demand(5, DemandEntry { key: BlockKey::scalar(BlockId(0)), tx, trace: 0 });
        s.push_prefetch(5, pe(1, 0));
        s.push_prefetch(5, pe(2, 0));
        assert_eq!(s.remove_session(5), (1, 2));
        assert_eq!(s.remove_session(5), (0, 0));
        assert!(s.pop_next_demand(4).is_none());
        assert!(s.pop_next_prefetch(4).is_none());
    }
}
