//! The multi-tenant server: one shared [`FetchEngine`] + [`BlockPool`]
//! behind a session registry, DRR fairness, admission control, and load
//! shedding.
//!
//! ## Request life cycle
//!
//! A `Fetch` request is **admitted** (demand unconditionally; prefetch
//! subject to the shed ladder below), queued in the per-session DRR
//! lanes, **pumped** into the shared engine in fair order, and its demand
//! tickets **collected** into a `FetchReply`. Duplicate keys across
//! different sessions coalesce inside the engine onto one source read —
//! the whole point of sharing it — and the engine counts those
//! cross-tag joins ([`viz_fetch::FetchMetrics::cross_tag_coalesced`]).
//!
//! ## The shed ladder
//!
//! Prefetch admission walks, in order: draining → stale generation →
//! per-client entry quota → per-client byte quota → breaker open →
//! global queue depth → pool pressure. First failure sheds the entry
//! with a typed [`ShedReason`]; between the downgrade and shed
//! watermarks entries are admitted at a quarter of their priority
//! instead. **Demand is never shed** — a blocked renderer beats a
//! speculation every time, which is the same demand-over-prefetch
//! invariant the engine heap enforces, applied one layer up.

use crate::proto::{errkind_code, Request, Response};
use crate::registry::{Registry, SessionId, SessionView};
use crate::sched::{DemandEntry, PrefetchEntry, Scheduler};
use crate::transport::{InProcTransport, Transport};
use crate::{inproc_pair, proto, BlockReply};
use std::collections::HashMap;
use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use viz_core::{AdaptiveSigma, ClientFlight, SigmaController};
use viz_fetch::{BreakerState, FetchEngine, Ticket};
use viz_telemetry::stats::RotatingHist;
use viz_telemetry::{instant, Counter, EventKind as Ev};
use viz_volume::BlockKey;

/// Which I/O front end drives connections (see [`crate::reactor`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoBackend {
    /// One thread per connection, blocking reads. The original model:
    /// simple, fine up to a few hundred sessions.
    #[default]
    Threads,
    /// One poll-driven event loop for every connection; threads stay
    /// constant as sessions scale to the thousands.
    Reactor,
}

/// Serving policy knobs. `Default` suits tests and small deployments;
/// the bench stresses the watermarks explicitly.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// DRR deficit refilled per visit, in requests.
    pub quantum: u32,
    /// Per-session cap on queued prefetch entries.
    pub per_client_queue: usize,
    /// Per-session cap on queued prefetch bytes (estimated).
    pub per_client_bytes: usize,
    /// Byte estimate per block for quota accounting.
    pub block_bytes_hint: usize,
    /// Stop pumping prefetch into the engine once its prefetch backlog
    /// reaches this depth (demand pumps unconditionally).
    pub engine_queue_target: usize,
    /// Shed new prefetch outright at this combined backlog.
    pub shed_queue_depth: usize,
    /// Admit prefetch at a quarter priority from this backlog up.
    pub downgrade_queue_depth: usize,
    /// Shed new prefetch when the shared pool holds this many bytes.
    pub shed_resident_bytes: usize,
    /// Bound each demand wait; `None` waits for the engine's own
    /// timeout/retry machinery to resolve the ticket.
    pub demand_deadline: Option<Duration>,
    /// Registry cap; opens past it are refused.
    pub max_sessions: usize,
    /// Connection front-end model ([`crate::TcpFrontend::bind`] reads
    /// this to pick between thread-per-connection and the reactor).
    pub backend: IoBackend,
    /// How many prefetch entries one pump pass hands the engine as a
    /// single batched admission (grouped per session, DRR order kept).
    pub pump_batch: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            quantum: 8,
            per_client_queue: 256,
            per_client_bytes: 64 << 20,
            block_bytes_hint: 4096,
            engine_queue_target: 1024,
            shed_queue_depth: 4096,
            downgrade_queue_depth: 2048,
            shed_resident_bytes: 1 << 30,
            demand_deadline: None,
            max_sessions: 1024,
            backend: IoBackend::Threads,
            pump_batch: 64,
        }
    }
}

/// The runtime-mutable subset of [`ServeConfig`]: the shed-ladder
/// watermarks and per-client quotas. [`ServeConfig`] seeds these at
/// construction; [`Server::set_ladder`] swaps them while the server runs
/// — the adaptive control plane's serve-side actuator. Reads are relaxed
/// atomics: admission sees *a* recent ladder, which is all a watermark
/// needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LadderConfig {
    /// Per-session cap on queued prefetch entries.
    pub per_client_queue: usize,
    /// Per-session cap on queued prefetch bytes (estimated).
    pub per_client_bytes: usize,
    /// Stop pumping prefetch into the engine at this backlog.
    pub engine_queue_target: usize,
    /// Shed new prefetch outright at this combined backlog.
    pub shed_queue_depth: usize,
    /// Admit prefetch at a quarter priority from this backlog up.
    pub downgrade_queue_depth: usize,
    /// Shed new prefetch when the shared pool holds this many bytes.
    pub shed_resident_bytes: usize,
}

impl LadderConfig {
    /// The ladder a [`ServeConfig`] starts with.
    pub fn from_serve(cfg: &ServeConfig) -> Self {
        LadderConfig {
            per_client_queue: cfg.per_client_queue,
            per_client_bytes: cfg.per_client_bytes,
            engine_queue_target: cfg.engine_queue_target,
            shed_queue_depth: cfg.shed_queue_depth,
            downgrade_queue_depth: cfg.downgrade_queue_depth,
            shed_resident_bytes: cfg.shed_resident_bytes,
        }
    }
}

/// Atomic cells holding the live ladder (see [`LadderConfig`]).
struct LadderCells {
    per_client_queue: AtomicUsize,
    per_client_bytes: AtomicUsize,
    engine_queue_target: AtomicUsize,
    shed_queue_depth: AtomicUsize,
    downgrade_queue_depth: AtomicUsize,
    shed_resident_bytes: AtomicUsize,
}

impl LadderCells {
    fn new(cfg: LadderConfig) -> Self {
        LadderCells {
            per_client_queue: AtomicUsize::new(cfg.per_client_queue),
            per_client_bytes: AtomicUsize::new(cfg.per_client_bytes),
            engine_queue_target: AtomicUsize::new(cfg.engine_queue_target),
            shed_queue_depth: AtomicUsize::new(cfg.shed_queue_depth),
            downgrade_queue_depth: AtomicUsize::new(cfg.downgrade_queue_depth),
            shed_resident_bytes: AtomicUsize::new(cfg.shed_resident_bytes),
        }
    }

    fn load(&self) -> LadderConfig {
        LadderConfig {
            per_client_queue: self.per_client_queue.load(Ordering::Relaxed),
            per_client_bytes: self.per_client_bytes.load(Ordering::Relaxed),
            engine_queue_target: self.engine_queue_target.load(Ordering::Relaxed),
            shed_queue_depth: self.shed_queue_depth.load(Ordering::Relaxed),
            downgrade_queue_depth: self.downgrade_queue_depth.load(Ordering::Relaxed),
            shed_resident_bytes: self.shed_resident_bytes.load(Ordering::Relaxed),
        }
    }

    fn store(&self, cfg: LadderConfig) {
        self.per_client_queue.store(cfg.per_client_queue, Ordering::Relaxed);
        self.per_client_bytes.store(cfg.per_client_bytes, Ordering::Relaxed);
        self.engine_queue_target.store(cfg.engine_queue_target, Ordering::Relaxed);
        self.shed_queue_depth.store(cfg.shed_queue_depth, Ordering::Relaxed);
        self.downgrade_queue_depth.store(cfg.downgrade_queue_depth, Ordering::Relaxed);
        self.shed_resident_bytes.store(cfg.shed_resident_bytes, Ordering::Relaxed);
    }
}

/// Why a prefetch entry was refused admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// Server is draining; only demand still flows.
    Draining,
    /// Entry belongs to a generation older than the session's current.
    StaleGeneration,
    /// The session's prefetch lane is at its entry quota.
    ClientQuota,
    /// The session's prefetch lane is at its byte quota.
    ByteQuota,
    /// The engine's circuit breaker is open — the source is presumed
    /// down, speculation would only deepen the failure.
    BreakerOpen,
    /// Combined scheduler + engine prefetch backlog crossed the shed
    /// watermark.
    QueueDepth,
    /// The shared pool crossed its resident-byte watermark.
    PoolPressure,
}

impl ShedReason {
    /// Stable code, used as the `RequestShed` telemetry arg.
    pub fn code(self) -> u16 {
        match self {
            ShedReason::Draining => 1,
            ShedReason::StaleGeneration => 2,
            ShedReason::ClientQuota => 3,
            ShedReason::ByteQuota => 4,
            ShedReason::BreakerOpen => 5,
            ShedReason::QueueDepth => 6,
            ShedReason::PoolPressure => 7,
        }
    }
}

/// Typed serving failure, mapped onto wire `ERR_*` codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// The server is draining and refuses new sessions/work.
    Draining,
    /// The registry is at [`ServeConfig::max_sessions`].
    TooManySessions,
    /// The request named a session the registry does not know.
    UnknownSession,
}

impl ServeError {
    /// The matching wire error code.
    pub fn code(self) -> u16 {
        match self {
            ServeError::Draining => proto::ERR_DRAINING,
            ServeError::TooManySessions => proto::ERR_TOO_MANY_SESSIONS,
            ServeError::UnknownSession => proto::ERR_UNKNOWN_SESSION,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Draining => write!(f, "server is draining"),
            ServeError::TooManySessions => write!(f, "session cap reached"),
            ServeError::UnknownSession => write!(f, "unknown session"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Serve-layer counters, named for the wire/Prometheus exposition.
struct ServeStats {
    sessions_opened: Counter,
    sessions_closed: Counter,
    fetch_requests: Counter,
    demand_admitted: Counter,
    prefetch_admitted: Counter,
    prefetch_downgraded: Counter,
    prefetch_shed: Counter,
    demand_served: Counter,
    demand_errors: Counter,
    bytes_served: Counter,
    peer_requests: Counter,
    peer_demand_keys: Counter,
    // Per-reason shed breakdown: the controller and the cluster router
    // need to know *why* prefetch is being refused (a byte-quota shed
    // wants a bigger quota; a breaker shed wants nothing at all).
    shed_draining: Counter,
    shed_stale_gen: Counter,
    shed_entry_quota: Counter,
    shed_byte_quota: Counter,
    shed_breaker: Counter,
    shed_queue_depth: Counter,
    shed_pool_pressure: Counter,
}

impl ServeStats {
    const fn new() -> Self {
        ServeStats {
            sessions_opened: Counter::new("serve_sessions_opened"),
            sessions_closed: Counter::new("serve_sessions_closed"),
            fetch_requests: Counter::new("serve_fetch_requests"),
            demand_admitted: Counter::new("serve_demand_admitted"),
            prefetch_admitted: Counter::new("serve_prefetch_admitted"),
            prefetch_downgraded: Counter::new("serve_prefetch_downgraded"),
            prefetch_shed: Counter::new("serve_prefetch_shed"),
            demand_served: Counter::new("serve_demand_served"),
            demand_errors: Counter::new("serve_demand_errors"),
            bytes_served: Counter::new("serve_bytes_served"),
            peer_requests: Counter::new("serve_peer_requests"),
            peer_demand_keys: Counter::new("serve_peer_demand_keys"),
            shed_draining: Counter::new("serve_shed_draining"),
            shed_stale_gen: Counter::new("serve_shed_stale_gen"),
            shed_entry_quota: Counter::new("serve_shed_entry_quota"),
            shed_byte_quota: Counter::new("serve_shed_byte_quota"),
            shed_breaker: Counter::new("serve_shed_breaker"),
            shed_queue_depth: Counter::new("serve_shed_queue_depth"),
            shed_pool_pressure: Counter::new("serve_shed_pool_pressure"),
        }
    }

    fn shed_counter(&self, reason: ShedReason) -> &Counter {
        match reason {
            ShedReason::Draining => &self.shed_draining,
            ShedReason::StaleGeneration => &self.shed_stale_gen,
            ShedReason::ClientQuota => &self.shed_entry_quota,
            ShedReason::ByteQuota => &self.shed_byte_quota,
            ShedReason::BreakerOpen => &self.shed_breaker,
            ShedReason::QueueDepth => &self.shed_queue_depth,
            ShedReason::PoolPressure => &self.shed_pool_pressure,
        }
    }

    fn pairs(&self) -> Vec<(&'static str, u64)> {
        [
            &self.sessions_opened,
            &self.sessions_closed,
            &self.fetch_requests,
            &self.demand_admitted,
            &self.prefetch_admitted,
            &self.prefetch_downgraded,
            &self.prefetch_shed,
            &self.demand_served,
            &self.demand_errors,
            &self.bytes_served,
            &self.peer_requests,
            &self.peer_demand_keys,
            &self.shed_draining,
            &self.shed_stale_gen,
            &self.shed_entry_quota,
            &self.shed_byte_quota,
            &self.shed_breaker,
            &self.shed_queue_depth,
            &self.shed_pool_pressure,
        ]
        .iter()
        .map(|c| (c.name(), c.get()))
        .collect()
    }
}

/// Point-in-time serve-layer metrics snapshot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeMetrics {
    /// Sessions opened over the server's lifetime.
    pub sessions_opened: u64,
    /// Sessions closed (including drain).
    pub sessions_closed: u64,
    /// `Fetch` requests processed.
    pub fetch_requests: u64,
    /// Demand keys admitted (demand is never shed).
    pub demand_admitted: u64,
    /// Prefetch keys admitted at full priority.
    pub prefetch_admitted: u64,
    /// Prefetch keys admitted at reduced priority.
    pub prefetch_downgraded: u64,
    /// Prefetch keys refused admission.
    pub prefetch_shed: u64,
    /// Demand replies delivered with a payload.
    pub demand_served: u64,
    /// Demand replies delivered with an error code.
    pub demand_errors: u64,
    /// Payload bytes delivered to clients.
    pub bytes_served: u64,
}

/// Report from [`Server::drain`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DrainReport {
    /// Sessions closed by the drain.
    pub sessions_closed: usize,
    /// Demand entries flushed into the engine before closing.
    pub demand_flushed: usize,
    /// Queued prefetch entries discarded.
    pub prefetch_dropped: usize,
}

/// The multi-tenant block server (see module docs).
pub struct Server {
    engine: Arc<FetchEngine>,
    cfg: ServeConfig,
    ladder: LadderCells,
    registry: Mutex<Registry>,
    sched: Mutex<Scheduler>,
    stats: ServeStats,
    /// Whole-frame demand round trip (submit → last demand outcome), in
    /// nanoseconds, windowed for the control plane's p99 SLO signal.
    demand_rtt: RotatingHist,
    draining: AtomicBool,
}

fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Same poison policy as the fetch engine: a panic while holding the
    // lock fails that request, not every future one.
    m.lock().unwrap_or_else(|p| p.into_inner())
}

impl Server {
    /// Wrap a shared engine in a server.
    pub fn new(engine: Arc<FetchEngine>, cfg: ServeConfig) -> Arc<Server> {
        let ladder = LadderCells::new(LadderConfig::from_serve(&cfg));
        Arc::new(Server {
            engine,
            cfg,
            ladder,
            registry: Mutex::new(Registry::new()),
            sched: Mutex::new(Scheduler::new()),
            stats: ServeStats::new(),
            demand_rtt: RotatingHist::new(),
            draining: AtomicBool::new(false),
        })
    }

    /// The shared fetch engine.
    pub fn engine(&self) -> &Arc<FetchEngine> {
        &self.engine
    }

    /// The config the server started with. The watermarks and quotas in
    /// it are *initial* values — [`Server::ladder`] reads the live ones.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// The shed ladder currently in force.
    pub fn ladder(&self) -> LadderConfig {
        self.ladder.load()
    }

    /// Replace the live shed ladder (watermarks + per-client quotas).
    /// Takes effect for the next admission; queued entries are untouched.
    pub fn set_ladder(&self, cfg: LadderConfig) {
        self.ladder.store(cfg);
    }

    /// p99 of the demand-RTT window being accumulated, in ns (0 when no
    /// demand was served since the window opened).
    pub fn demand_p99_ns(&self) -> u64 {
        self.demand_rtt.percentile(0.99)
    }

    /// Close the demand-RTT window and return it (the control plane's
    /// per-tick consumption; a fresh window starts accumulating).
    pub fn take_demand_window(&self) -> viz_telemetry::LogHistogram {
        self.demand_rtt.take()
    }

    /// `true` once [`Server::drain`] has started.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Register a session.
    pub fn open_session(&self, name: &str) -> Result<SessionId, ServeError> {
        if self.is_draining() {
            return Err(ServeError::Draining);
        }
        let mut reg = relock(&self.registry);
        if reg.len() >= self.cfg.max_sessions {
            return Err(ServeError::TooManySessions);
        }
        let id = reg.open(name);
        let n = reg.len() as u64;
        drop(reg);
        relock(&self.sched).add_session(id.0);
        self.stats.sessions_opened.inc();
        instant(Ev::SessionOpen, u64::from(id.0), n);
        Ok(id)
    }

    /// Unregister a session, discarding its queued work. Returns `false`
    /// for an unknown id.
    pub fn close_session(&self, id: SessionId) -> bool {
        self.close_session_inner(id, false)
    }

    fn close_session_inner(&self, id: SessionId, drained: bool) -> bool {
        if relock(&self.registry).close(id).is_none() {
            return false;
        }
        relock(&self.sched).remove_session(id.0);
        self.stats.sessions_closed.inc();
        instant(Ev::SessionClose, u64::from(id.0), u64::from(drained));
        true
    }

    /// Attach a server-side camera flight: each `Advance` then feeds the
    /// flight's next frame's speculation through admission automatically.
    pub fn attach_flight(&self, id: SessionId, flight: ClientFlight) -> bool {
        match relock(&self.registry).get_mut(id) {
            Some(s) => {
                s.flight = Some(flight);
                true
            }
            None => false,
        }
    }

    /// Put a session's flight under closed-loop σ control: every
    /// [`Server::advance`] then observes the session's *leftover* queued
    /// prefetch (entries admitted last frame that the pump never
    /// consumed — the serve-side analogue of "prefetch time" spilling
    /// past the render window) against `target_backlog` and retunes the
    /// flight's entropy gate before producing the next frame. Requires an
    /// attached flight; returns `false` without one.
    pub fn attach_adaptive_sigma(
        &self,
        id: SessionId,
        cfg: AdaptiveSigma,
        target_backlog: f64,
    ) -> bool {
        let mut reg = relock(&self.registry);
        match reg.get_mut(id) {
            Some(s) => match &s.flight {
                Some(f) => {
                    let ctl = SigmaController::new(cfg, f.sigma());
                    s.sigma_ctl = Some((ctl, target_backlog.max(1.0)));
                    true
                }
                None => false,
            },
            None => false,
        }
    }

    /// The σ a session's flight currently gates prefetch with (`None`
    /// for an unknown session or one without a flight).
    pub fn session_sigma(&self, id: SessionId) -> Option<f64> {
        relock(&self.registry).get_mut(id)?.flight.as_ref().map(|f| f.sigma())
    }

    /// Bump a session's frame generation: queued prefetch from earlier
    /// generations is purged, and an attached flight contributes the next
    /// frame's prefetch set. Returns the new generation, or `None` for an
    /// unknown session.
    ///
    /// With [`Server::attach_adaptive_sigma`] active, the leftover
    /// prefetch backlog (about to be purged as stale) first feeds the σ
    /// controller: a backlog persistently above target means admission
    /// outruns consumption — raise σ, speculate less; an empty backlog
    /// means idle I/O headroom — lower σ, speculate more.
    pub fn advance(&self, id: SessionId) -> Option<u64> {
        let (leftover, _) = relock(&self.sched).queued_prefetch(id.0);
        let (generation, frame) = {
            let mut reg = relock(&self.registry);
            let s = reg.get_mut(id)?;
            s.generation += 1;
            if let Some((ctl, target)) = &mut s.sigma_ctl {
                let render_window = *target / ctl.config().target_ratio.max(1e-9);
                ctl.observe(leftover as f64, render_window);
                let sigma = ctl.sigma();
                if let Some(f) = &mut s.flight {
                    f.set_sigma(sigma);
                }
            }
            (s.generation, s.flight.as_mut().and_then(|f| f.next_frame()))
        };
        relock(&self.sched).purge_prefetch(id.0, generation);
        if let Some(fr) = frame {
            self.admit_prefetch(id, generation, fr.prefetch);
        }
        Some(generation)
    }

    /// Admit one frame request: demand unconditionally, prefetch through
    /// the shed ladder. The returned [`Submission`] collects the demand
    /// outcomes after a [`Server::pump`].
    pub fn submit(
        &self,
        id: SessionId,
        generation: u64,
        demand: Vec<BlockKey>,
        prefetch: Vec<(BlockKey, f64)>,
    ) -> Result<Submission, ServeError> {
        if !relock(&self.registry).contains(id) {
            return Err(ServeError::UnknownSession);
        }
        self.stats.fetch_requests.inc();
        let (tx, rx) = channel();
        let demand_n = demand.len();
        {
            let trace = viz_telemetry::current_trace();
            let mut sched = relock(&self.sched);
            for &key in &demand {
                sched.push_demand(id.0, DemandEntry { key, tx: tx.clone(), trace });
            }
        }
        self.stats.demand_admitted.add(demand_n as u64);
        if let Some(s) = relock(&self.registry).get_mut(id) {
            s.demand_submitted += demand_n as u64;
        }
        let (shed, downgraded, admitted) = self.admit_prefetch(id, generation, prefetch);
        instant(Ev::RequestAdmit, u64::from(id.0), ((demand_n as u64) << 32) | admitted);
        Ok(Submission {
            session: id,
            demand_keys: demand,
            rx,
            received: 0,
            disconnected: false,
            waiting: Vec::new(),
            got: HashMap::new(),
            shed,
            downgraded,
            t0: Instant::now(),
        })
    }

    /// Walk the shed ladder for each prefetch entry; returns
    /// `(shed, downgraded, admitted)` counts.
    fn admit_prefetch(
        &self,
        id: SessionId,
        generation: u64,
        prefetch: Vec<(BlockKey, f64)>,
    ) -> (u32, u32, u64) {
        if prefetch.is_empty() {
            return (0, 0, 0);
        }
        let session_gen = match relock(&self.registry).get_mut(id) {
            Some(s) => {
                s.prefetch_submitted += prefetch.len() as u64;
                s.generation
            }
            None => return (0, 0, 0),
        };
        // One poll per submit; admitted entries adjust the view so a
        // single huge request cannot blow through the watermark unseen.
        let (_, engine_pf) = self.engine.queue_depths();
        let breaker_open = self.engine.breaker_state() == BreakerState::Open;
        let pool_bytes = self.engine.pool().bytes_resident();
        let draining = self.is_draining();
        let hint = self.cfg.block_bytes_hint;
        let ladder = self.ladder.load();

        let (mut shed, mut downgraded, mut admitted) = (0u32, 0u32, 0u64);
        let mut sched = relock(&self.sched);
        let (mut lane_n, mut lane_bytes) = sched.queued_prefetch(id.0);
        let mut backlog = engine_pf + sched.queued_prefetch_total();
        for (key, pri) in prefetch {
            let verdict = if draining {
                Err(ShedReason::Draining)
            } else if generation < session_gen {
                Err(ShedReason::StaleGeneration)
            } else if lane_n >= ladder.per_client_queue {
                Err(ShedReason::ClientQuota)
            } else if lane_bytes + hint > ladder.per_client_bytes {
                Err(ShedReason::ByteQuota)
            } else if breaker_open {
                Err(ShedReason::BreakerOpen)
            } else if backlog >= ladder.shed_queue_depth {
                Err(ShedReason::QueueDepth)
            } else if pool_bytes >= ladder.shed_resident_bytes {
                Err(ShedReason::PoolPressure)
            } else if backlog >= ladder.downgrade_queue_depth {
                Ok(pri * 0.25)
            } else {
                Ok(pri)
            };
            match verdict {
                Ok(p) => {
                    if p < pri {
                        downgraded += 1;
                        self.stats.prefetch_downgraded.inc();
                    } else {
                        self.stats.prefetch_admitted.inc();
                    }
                    sched.push_prefetch(
                        id.0,
                        PrefetchEntry { key, pri: p, gen: session_gen, bytes: hint },
                    );
                    admitted += 1;
                    lane_n += 1;
                    lane_bytes += hint;
                    backlog += 1;
                }
                Err(reason) => {
                    shed += 1;
                    self.stats.prefetch_shed.inc();
                    self.stats.shed_counter(reason).inc();
                    instant(Ev::RequestShed, u64::from(id.0), u64::from(reason.code()));
                }
            }
        }
        drop(sched);
        if shed > 0 {
            if let Some(s) = relock(&self.registry).get_mut(id) {
                s.prefetch_shed += u64::from(shed);
            }
        }
        (shed, downgraded, admitted)
    }

    /// Move queued work into the shared engine in DRR order: demand
    /// drains completely, prefetch stops at the engine backlog target.
    /// While draining, prefetch stays queued (drain discards it).
    pub fn pump(&self) {
        loop {
            let e = relock(&self.sched).pop_next_demand(self.cfg.quantum);
            let Some((sid, e)) = e else { break };
            // Restore the submitting request's trace context around
            // admission: the engine captures it for the whole job.
            let ticket =
                viz_telemetry::with_trace(e.trace, || self.engine.request_tagged(e.key, sid));
            // A dropped receiver (disconnected client) just drops the
            // ticket; the engine still completes the read into the pool.
            let _ = e.tx.send((e.key, ticket));
        }
        if self.is_draining() {
            return;
        }
        let engine_queue_target = self.ladder.engine_queue_target.load(Ordering::Relaxed);
        loop {
            let (_, engine_pf) = self.engine.queue_depths();
            if engine_pf >= engine_queue_target {
                break;
            }
            // Pop a bounded run in DRR order under one scheduler lock,
            // then admit it to the engine in per-session batches (the
            // engine takes its own lock once per batch instead of once
            // per key — see `FetchEngine::prefetch_batch_tagged`).
            let budget =
                engine_queue_target.saturating_sub(engine_pf).min(self.cfg.pump_batch.max(1));
            let mut run: Vec<(u32, BlockKey, f64)> = Vec::with_capacity(budget);
            {
                let mut sched = relock(&self.sched);
                for _ in 0..budget {
                    let Some((sid, e)) = sched.pop_next_prefetch(self.cfg.quantum) else { break };
                    run.push((sid, e.key, e.pri));
                }
            }
            if run.is_empty() {
                break;
            }
            let mut i = 0;
            while i < run.len() {
                let sid = run[i].0;
                let end = run[i..].iter().position(|r| r.0 != sid).map_or(run.len(), |off| i + off);
                let items: Vec<(BlockKey, f64)> = run[i..end].iter().map(|r| (r.1, r.2)).collect();
                self.engine.prefetch_batch_tagged(&items, sid);
                i = end;
            }
        }
    }

    /// Graceful shutdown: refuse new work, flush queued demand into the
    /// engine, discard queued prefetch, wait for the engine to go idle,
    /// and close every session.
    pub fn drain(&self) -> DrainReport {
        self.draining.store(true, Ordering::SeqCst);
        let demand_flushed = relock(&self.sched).queued_demand_total();
        self.pump();
        let mut prefetch_dropped = 0;
        let ids = relock(&self.registry).ids();
        {
            let mut sched = relock(&self.sched);
            for id in &ids {
                let (_, p) = sched.remove_session(id.0);
                prefetch_dropped += p;
            }
        }
        self.engine.sync();
        let mut sessions_closed = 0;
        for id in ids {
            if self.close_session_inner(id, true) {
                sessions_closed += 1;
            }
        }
        DrainReport { sessions_closed, demand_flushed, prefetch_dropped }
    }

    /// Snapshot every registered session.
    pub fn sessions(&self) -> Vec<SessionView> {
        relock(&self.registry).views()
    }

    /// Serve-layer metrics snapshot.
    pub fn metrics(&self) -> ServeMetrics {
        let s = &self.stats;
        ServeMetrics {
            sessions_opened: s.sessions_opened.get(),
            sessions_closed: s.sessions_closed.get(),
            fetch_requests: s.fetch_requests.get(),
            demand_admitted: s.demand_admitted.get(),
            prefetch_admitted: s.prefetch_admitted.get(),
            prefetch_downgraded: s.prefetch_downgraded.get(),
            prefetch_shed: s.prefetch_shed.get(),
            demand_served: s.demand_served.get(),
            demand_errors: s.demand_errors.get(),
            bytes_served: s.bytes_served.get(),
        }
    }

    /// The counter set a `Stats` request answers with: serve-layer
    /// counters, engine counters (`fetch_` prefix), pool gauges, and the
    /// engine's live queue depths — the load signal the cluster router
    /// uses for tie-breaking between replica owners.
    pub fn wire_counters(&self) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> =
            self.stats.pairs().into_iter().map(|(n, c)| (n.to_string(), c)).collect();
        v.extend(self.engine.counter_pairs().into_iter().map(|(n, c)| (format!("fetch_{n}"), c)));
        let pool = self.engine.pool();
        v.push(("pool_resident_blocks".to_string(), pool.len() as u64));
        v.push(("pool_resident_bytes".to_string(), pool.bytes_resident() as u64));
        let (qd, qp) = self.engine.queue_depths();
        v.push(("engine_queue_demand".to_string(), qd as u64));
        v.push(("engine_queue_prefetch".to_string(), qp as u64));
        v.push(("sessions_active".to_string(), relock(&self.registry).len() as u64));
        // Demand-latency SLO signal: p99 of the RTT window currently
        // accumulating, plus its sample count so consumers can judge
        // significance.
        v.push(("serve_demand_p99_ns".to_string(), self.demand_rtt.percentile(0.99)));
        v.push(("serve_demand_rtt_count".to_string(), self.demand_rtt.count()));
        // The live ladder, so a scraper can watch the controller actuate.
        let ladder = self.ladder.load();
        v.push(("ladder_per_client_queue".to_string(), ladder.per_client_queue as u64));
        v.push(("ladder_per_client_bytes".to_string(), ladder.per_client_bytes as u64));
        v.push(("ladder_engine_queue_target".to_string(), ladder.engine_queue_target as u64));
        v.push(("ladder_shed_queue_depth".to_string(), ladder.shed_queue_depth as u64));
        v.push(("ladder_downgrade_queue_depth".to_string(), ladder.downgrade_queue_depth as u64));
        v.push(("ladder_shed_resident_bytes".to_string(), ladder.shed_resident_bytes as u64));
        // Telemetry-plane health: is the gate on, and has any per-thread
        // ring ever overflowed (cumulative — a lost event is permanent).
        v.push(("telemetry_enabled".to_string(), u64::from(viz_telemetry::enabled())));
        v.push(("telemetry_ring_dropped_total".to_string(), viz_telemetry::dropped_total()));
        // Named gauges published by controllers and other components
        // through the always-on stats plane.
        v.extend(viz_telemetry::stats::gauges());
        v
    }

    /// Answer a `TelemetryGet`: drain this process's rings (routing the
    /// batch through the flight recorder) and package events, per-span
    /// summary histograms, and wire counters for the collector. `node` is
    /// the responder's cluster identity ([`proto::PING_FROM_CLIENT`] for
    /// a plain server).
    pub fn wire_telemetry(&self, node: u32) -> proto::WireTelemetry {
        let tr = viz_telemetry::drain();
        let mut hists = Vec::new();
        for kind in viz_telemetry::EventKind::ALL {
            if !kind.is_span() {
                continue;
            }
            let h = tr.histogram(kind);
            let (pairs, count, sum, min, max) = h.sparse();
            if count > 0 {
                hists.push(proto::HistSnapshot { kind: kind as u8, pairs, count, sum, min, max });
            }
        }
        proto::WireTelemetry {
            node,
            now_ns: viz_telemetry::now_ns(),
            dropped: viz_telemetry::dropped_total(),
            events: tr.events,
            hists,
            counters: self.wire_counters(),
        }
    }

    /// Count a peer-forward answered from local storage without engine
    /// submission (the cluster node's skew/hop-cap path); keeps the
    /// `serve_peer_*` wire counters honest when requests bypass
    /// [`handle_request`].
    pub fn record_peer_direct(&self, keys: u64) {
        self.stats.peer_requests.inc();
        self.stats.peer_demand_keys.add(keys);
    }

    fn record_served(&self, id: SessionId, served: u64, errors: u64, bytes: u64) {
        self.stats.demand_served.add(served);
        self.stats.demand_errors.add(errors);
        self.stats.bytes_served.add(bytes);
        if let Some(s) = relock(&self.registry).get_mut(id) {
            s.demand_served += served;
        }
    }
}

/// An admitted frame request: collects the demand outcomes once the pump
/// has issued them.
///
/// Two consumption styles share this state: the blocking [`Submission::collect`]
/// (thread-per-connection servers park here) and the incremental
/// [`Submission::poll_ready`] (the reactor calls it each loop turn and
/// never blocks). Polling and then collecting is fine — tickets already
/// drained by a poll are resolved or parked in `waiting`, and `collect`
/// finishes both.
pub struct Submission {
    session: SessionId,
    demand_keys: Vec<BlockKey>,
    rx: Receiver<(BlockKey, Ticket)>,
    /// Entries received off `rx` so far (resolved or parked).
    received: usize,
    /// The sender side went away (session closed underneath us).
    disconnected: bool,
    /// Tickets received but not yet resolved (poll path only).
    waiting: Vec<(BlockKey, Ticket)>,
    got: HashMap<BlockKey, Result<Arc<Vec<f32>>, u16>>,
    shed: u32,
    downgraded: u32,
    /// Admission time; `finish` records submit→outcome as the frame's
    /// demand RTT.
    t0: Instant,
}

impl Submission {
    /// Prefetch entries shed at admission.
    pub fn shed(&self) -> u32 {
        self.shed
    }

    /// Prefetch entries admitted at reduced priority.
    pub fn downgraded(&self) -> u32 {
        self.downgraded
    }

    /// Drain whatever the pump has issued and resolve whatever the
    /// engine has finished, without blocking. Returns `true` once every
    /// demand key has an outcome (or the session vanished), i.e. the
    /// reply is complete and a `collect_*` call will not block.
    pub fn poll_ready(&mut self) -> bool {
        loop {
            match self.rx.try_recv() {
                Ok(pair) => {
                    self.received += 1;
                    self.waiting.push(pair);
                }
                Err(std::sync::mpsc::TryRecvError::Empty) => break,
                Err(std::sync::mpsc::TryRecvError::Disconnected) => {
                    self.disconnected = true;
                    break;
                }
            }
        }
        let waiting = std::mem::take(&mut self.waiting);
        for (key, ticket) in waiting {
            match ticket.try_wait() {
                Ok(r) => {
                    self.got.insert(key, r.map_err(|e| errkind_code(e.kind)));
                }
                Err(still_pending) => self.waiting.push((key, still_pending)),
            }
        }
        self.waiting.is_empty() && (self.received >= self.demand_keys.len() || self.disconnected)
    }

    /// Block until every demand key has an outcome (the engine's workers
    /// resolve the tickets). Requires a [`Server::pump`] to have issued
    /// the entries; [`serve_connection`] does this.
    pub fn collect(mut self, server: &Server) -> Vec<BlockReply> {
        let deadline = server.cfg.demand_deadline;
        let resolve = |ticket: Ticket| match deadline {
            Some(d) => match ticket.wait_timeout(d) {
                Ok(r) => r.map_err(|e| errkind_code(e.kind)),
                Err(_still_pending) => Err(errkind_code(io::ErrorKind::TimedOut)),
            },
            None => ticket.wait().map_err(|e| errkind_code(e.kind)),
        };
        // Tickets an earlier poll drained but could not resolve.
        for (key, ticket) in std::mem::take(&mut self.waiting) {
            let outcome = resolve(ticket);
            self.got.insert(key, outcome);
        }
        while self.received < self.demand_keys.len() {
            // A dropped sender means the session was closed underneath
            // us; the remaining keys resolve as Interrupted below.
            let Ok((key, ticket)) = self.rx.recv() else { break };
            self.received += 1;
            let outcome = resolve(ticket);
            self.got.insert(key, outcome);
        }
        self.finish(server, io::ErrorKind::Interrupted)
    }

    /// Non-blocking collection for deterministic (`workers = 0`) runs:
    /// call after the engine has been stepped to idle; any ticket still
    /// unresolved reports `Interrupted`.
    pub fn collect_ready(mut self, server: &Server) -> Vec<BlockReply> {
        self.poll_ready();
        self.finish(server, io::ErrorKind::Interrupted)
    }

    /// Non-blocking collection at a missed deadline: unresolved keys
    /// report `TimedOut` (the reactor's timer wheel lands here).
    pub fn collect_timed_out(mut self, server: &Server) -> Vec<BlockReply> {
        self.poll_ready();
        self.finish(server, io::ErrorKind::TimedOut)
    }

    fn finish(self, server: &Server, missing: io::ErrorKind) -> Vec<BlockReply> {
        if !self.demand_keys.is_empty() {
            let rtt = self.t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            server.demand_rtt.record(rtt);
        }
        let missing = errkind_code(missing);
        let got = self.got;
        let (mut served, mut errors, mut bytes) = (0u64, 0u64, 0u64);
        let replies: Vec<BlockReply> = self
            .demand_keys
            .iter()
            .map(|&key| {
                let result = got.get(&key).cloned().unwrap_or(Err(missing));
                match &result {
                    Ok(data) => {
                        served += 1;
                        bytes += (data.len() * std::mem::size_of::<f32>()) as u64;
                    }
                    Err(_) => errors += 1,
                }
                BlockReply { key, result }
            })
            .collect();
        server.record_served(self.session, served, errors, bytes);
        replies
    }
}

/// What a decoded request needs next: an immediate reply, or demand
/// collection after a pump.
pub enum Outcome {
    /// Reply is ready to send.
    Ready(Response),
    /// A `Fetch` was admitted; pump, then resolve the pending fetch.
    Fetch(PendingFetch),
}

/// An admitted `Fetch` awaiting its demand outcomes.
pub struct PendingFetch {
    session: u32,
    sub: Submission,
    /// Span clock opened at dispatch; the resolving call closes the
    /// `RpcServe` span with it.
    t0: Option<std::time::Instant>,
    /// Wire tag of the originating request (the `RpcServe` arg).
    tag: u8,
    /// Trace context of the originating request, re-established when the
    /// reply resolves (resolution runs outside the dispatch scope).
    trace: u64,
}

impl PendingFetch {
    /// The session the fetch belongs to.
    pub fn session(&self) -> u32 {
        self.session
    }

    /// Non-blocking progress check: `true` once the reply is complete
    /// and [`PendingFetch::resolve_now`] will lose nothing.
    pub fn poll(&mut self) -> bool {
        self.sub.poll_ready()
    }

    fn rpc_span(t0: Option<std::time::Instant>, session: u32, tag: u8, trace: u64) {
        viz_telemetry::with_trace(trace, || {
            viz_telemetry::span(Ev::RpcServe, u64::from(session), u64::from(tag), t0);
        });
    }

    /// Block until the reply is complete (threaded servers).
    pub fn wait(self, server: &Server) -> Response {
        let (shed, downgraded) = (self.sub.shed, self.sub.downgraded);
        let (t0, tag, trace) = (self.t0, self.tag, self.trace);
        let blocks = self.sub.collect(server);
        Self::rpc_span(t0, self.session, tag, trace);
        Response::FetchReply { session: self.session, blocks, shed, downgraded }
    }

    /// Resolve from whatever is ready (deterministic stepper).
    pub fn resolve_now(self, server: &Server) -> Response {
        let (shed, downgraded) = (self.sub.shed, self.sub.downgraded);
        let (t0, tag, trace) = (self.t0, self.tag, self.trace);
        let blocks = self.sub.collect_ready(server);
        Self::rpc_span(t0, self.session, tag, trace);
        Response::FetchReply { session: self.session, blocks, shed, downgraded }
    }

    /// Resolve at a missed demand deadline: unresolved keys report
    /// `TimedOut` (their reads stay in flight and land in the pool for a
    /// later frame — same degraded-frame contract as the thread model's
    /// per-ticket deadline).
    pub fn resolve_timed_out(self, server: &Server) -> Response {
        let (shed, downgraded) = (self.sub.shed, self.sub.downgraded);
        let (t0, tag, trace) = (self.t0, self.tag, self.trace);
        let blocks = self.sub.collect_timed_out(server);
        Self::rpc_span(t0, self.session, tag, trace);
        Response::FetchReply { session: self.session, blocks, shed, downgraded }
    }
}

/// Dispatch one decoded request against a server. Requests carrying a
/// v2 trace context run with the thread's trace context set to it, so
/// everything recorded during admission — and, via [`DemandEntry`], the
/// engine work pumped later — is attributed to the originating client
/// request.
pub fn handle_request(server: &Server, req: Request) -> Outcome {
    let ctx = req.trace_ctx();
    if ctx.is_some() {
        viz_telemetry::with_trace(ctx.trace, || handle_request_inner(server, req))
    } else {
        handle_request_inner(server, req)
    }
}

fn handle_request_inner(server: &Server, req: Request) -> Outcome {
    let tag = req.tag_code();
    match req {
        Request::Open { name } => Outcome::Ready(match server.open_session(&name) {
            Ok(id) => Response::OpenAck { session: id.0 },
            Err(e) => Response::Error { code: e.code(), message: e.to_string() },
        }),
        Request::Close { session } => Outcome::Ready(if server.close_session(SessionId(session)) {
            Response::CloseAck { session }
        } else {
            let e = ServeError::UnknownSession;
            Response::Error { code: e.code(), message: e.to_string() }
        }),
        Request::Fetch { session, generation, demand, prefetch, trace } => {
            let t0 = viz_telemetry::start();
            match server.submit(SessionId(session), generation, demand, prefetch) {
                Ok(sub) => {
                    Outcome::Fetch(PendingFetch { session, sub, t0, tag, trace: trace.trace })
                }
                Err(e) => {
                    Outcome::Ready(Response::Error { code: e.code(), message: e.to_string() })
                }
            }
        }
        Request::Advance { session, trace: _ } => {
            let t0 = viz_telemetry::start();
            let resp = match server.advance(SessionId(session)) {
                Some(generation) => Response::AdvanceAck { session, generation },
                None => {
                    let e = ServeError::UnknownSession;
                    Response::Error { code: e.code(), message: e.to_string() }
                }
            };
            viz_telemetry::span(Ev::RpcServe, u64::from(session), u64::from(tag), t0);
            Outcome::Ready(resp)
        }
        Request::Stats => Outcome::Ready(Response::StatsReply { counters: server.wire_counters() }),
        // A plain single-node server has no shard map to hand out; the
        // cluster layer's dispatcher intercepts this tag before it lands
        // here.
        Request::MapGet => Outcome::Ready(Response::Error {
            code: proto::ERR_NO_MAP,
            message: "no shard map installed".to_string(),
        }),
        // A peer forward on a plain server resolves like a demand-only
        // fetch: every key reads locally (shared storage), no further
        // forwarding. Generation 0 is fine — the stale check only
        // guards prefetch and a peer forward carries none.
        Request::PeerFetch { session, hops: _, demand, trace } => {
            let t0 = viz_telemetry::start();
            server.stats.peer_requests.inc();
            server.stats.peer_demand_keys.add(demand.len() as u64);
            match server.submit(SessionId(session), 0, demand, Vec::new()) {
                Ok(sub) => {
                    Outcome::Fetch(PendingFetch { session, sub, t0, tag, trace: trace.trace })
                }
                Err(e) => {
                    Outcome::Ready(Response::Error { code: e.code(), message: e.to_string() })
                }
            }
        }
        // A plain server has no node identity or shard map; it still
        // answers the heartbeat (liveness is liveness) with the sentinel
        // id and version 0. The cluster dispatcher intercepts this tag to
        // fill in real values and feed its failure detector.
        Request::Ping { .. } => Outcome::Ready(Response::Pong {
            node: proto::PING_FROM_CLIENT,
            map_version: 0,
            now_ns: viz_telemetry::now_ns(),
        }),
        // Scrape this process's telemetry plane. On a cluster node the
        // dispatcher intercepts the tag to stamp its real node id.
        Request::TelemetryGet => {
            Outcome::Ready(Response::TelemetryReply(server.wire_telemetry(proto::PING_FROM_CLIENT)))
        }
    }
}

/// Per-node request interceptor: lets a layer above the server (the
/// cluster node) claim protocol tags the plain server cannot answer —
/// `MapGet`, `PeerFetch`, ownership-partitioned `Fetch` — while passing
/// everything else to [`handle_request`]. One dispatcher is shared by
/// every connection of a front end, so implementations hold their own
/// state behind `Arc`s.
pub trait RequestDispatch: Send + Sync {
    /// Dispatch one decoded request against `server`.
    fn dispatch(&self, server: &Arc<Server>, req: Request) -> Outcome;
}

/// The single-node dispatcher: every request goes straight to
/// [`handle_request`].
pub struct DefaultDispatch;

impl RequestDispatch for DefaultDispatch {
    fn dispatch(&self, server: &Arc<Server>, req: Request) -> Outcome {
        handle_request(server, req)
    }
}

/// Serve one connection until the peer disconnects: decode → dispatch →
/// pump → reply. Malformed frames answer with a typed `Error` response
/// and the connection stays up; sessions opened on this connection are
/// closed when it ends.
pub fn serve_connection<T: Transport>(server: &Arc<Server>, t: T) {
    serve_connection_with(server, &DefaultDispatch, t);
}

/// [`serve_connection`] with a custom [`RequestDispatch`] — the cluster
/// node's TCP front end routes every decoded request through its
/// ownership logic this way.
pub fn serve_connection_with<T: Transport>(
    server: &Arc<Server>,
    dispatch: &dyn RequestDispatch,
    mut t: T,
) {
    let mut owned: Vec<SessionId> = Vec::new();
    while let Ok(frame) = t.recv() {
        // Answer at the version the request claimed so a v1 client keeps
        // decoding replies from a v2 server.
        let mut ver = proto::PROTO_VERSION;
        let resp = match proto::decode_request_full(&frame) {
            Ok((v, req)) => {
                ver = v;
                match dispatch.dispatch(server, req) {
                    Outcome::Ready(r) => r,
                    Outcome::Fetch(p) => {
                        server.pump();
                        p.wait(server)
                    }
                }
            }
            Err(pe) => Response::Error { code: pe.code(), message: pe.to_string() },
        };
        match &resp {
            Response::OpenAck { session } => owned.push(SessionId(*session)),
            Response::CloseAck { session } => owned.retain(|s| s.0 != *session),
            _ => {}
        }
        if t.send(&proto::encode_response_versioned(&resp, ver)).is_err() {
            break;
        }
        server.pump();
    }
    for id in owned {
        server.close_session(id);
    }
}

/// A live TCP connection: the accept-side stream handle (kept so
/// shutdown can force the socket closed) and its handler thread.
type TcpConns = Arc<Mutex<Vec<(TcpStream, JoinHandle<()>)>>>;

/// A localhost TCP front end: accept thread + one thread per connection.
pub struct TcpServer {
    server: Arc<Server>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: TcpConns,
}

impl TcpServer {
    /// Bind and start accepting. Use `"127.0.0.1:0"` to let the OS pick
    /// a port; read it back via [`TcpServer::local_addr`].
    pub fn bind(server: Arc<Server>, addr: &str) -> io::Result<TcpServer> {
        TcpServer::bind_with(server, Arc::new(DefaultDispatch), addr)
    }

    /// [`TcpServer::bind`] with a custom [`RequestDispatch`] shared by
    /// every accepted connection (how a cluster node exposes its
    /// ownership routing over TCP).
    pub fn bind_with(
        server: Arc<Server>,
        dispatch: Arc<dyn RequestDispatch>,
        addr: &str,
    ) -> io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns: TcpConns = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let server = server.clone();
            let stop = stop.clone();
            let conns = conns.clone();
            std::thread::spawn(move || {
                while let Ok((stream, _)) = listener.accept() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let peer = match stream.try_clone() {
                        Ok(c) => c,
                        Err(_) => continue,
                    };
                    let server = server.clone();
                    let dispatch = dispatch.clone();
                    let handle = std::thread::spawn(move || {
                        serve_connection_with(
                            &server,
                            &*dispatch,
                            crate::TcpTransport::new(stream),
                        );
                    });
                    relock(&conns).push((peer, handle));
                }
            })
        };
        Ok(TcpServer { server, addr: local, stop, accept: Some(accept), conns })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served [`Server`].
    pub fn server(&self) -> &Arc<Server> {
        &self.server
    }

    /// Stop accepting, close remaining connections, and drain.
    pub fn shutdown(mut self) -> DrainReport {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the accept thread with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let conns = std::mem::take(&mut *relock(&self.conns));
        for (stream, handle) in conns {
            let _ = stream.shutdown(std::net::Shutdown::Both);
            let _ = handle.join();
        }
        self.server.drain()
    }
}

/// Deterministic in-process front end: the test owns every step. Each
/// [`InProcServer::connect`] yields the client end of a frame pipe;
/// `poll` decodes at most one request per connection (preserving
/// request→reply ordering), `step` pumps the scheduler and runs the
/// `workers = 0` engine to idle, `flush` sends the completed replies.
pub struct InProcServer {
    server: Arc<Server>,
    conns: Vec<InProcConn>,
}

struct InProcConn {
    t: InProcTransport,
    owned: Vec<SessionId>,
    pending: Option<PendingFetch>,
    dead: bool,
}

impl InProcServer {
    /// Wrap a server (typically over [`FetchEngine::deterministic`]).
    pub fn new(server: Arc<Server>) -> InProcServer {
        InProcServer { server, conns: Vec::new() }
    }

    /// The served [`Server`].
    pub fn server(&self) -> &Arc<Server> {
        &self.server
    }

    /// Open a new connection; returns the client end.
    pub fn connect(&mut self) -> InProcTransport {
        let (client, server_end) = inproc_pair();
        self.conns.push(InProcConn {
            t: server_end,
            owned: Vec::new(),
            pending: None,
            dead: false,
        });
        client
    }

    /// Decode and dispatch at most one waiting request per connection.
    /// Immediate replies go out now; admitted fetches park until
    /// [`InProcServer::flush`]. Returns requests processed.
    pub fn poll(&mut self) -> usize {
        let mut processed = 0;
        for conn in &mut self.conns {
            if conn.dead || conn.pending.is_some() {
                continue;
            }
            let frame = match conn.t.try_recv() {
                Ok(Some(f)) => f,
                Ok(None) => continue,
                Err(_) => {
                    conn.dead = true;
                    continue;
                }
            };
            processed += 1;
            let resp = match proto::decode_request(&frame) {
                Ok(req) => match handle_request(&self.server, req) {
                    Outcome::Ready(r) => r,
                    Outcome::Fetch(p) => {
                        conn.pending = Some(p);
                        continue;
                    }
                },
                Err(pe) => Response::Error { code: pe.code(), message: pe.to_string() },
            };
            match &resp {
                Response::OpenAck { session } => conn.owned.push(SessionId(*session)),
                Response::CloseAck { session } => conn.owned.retain(|s| s.0 != *session),
                _ => {}
            }
            if conn.t.send(&proto::encode_response(&resp)).is_err() {
                conn.dead = true;
            }
        }
        self.reap();
        processed
    }

    /// Pump the scheduler into the engine and run the inline engine to
    /// idle. Returns jobs the engine executed.
    pub fn step(&mut self) -> usize {
        self.server.pump();
        self.server.engine().run_until_idle()
    }

    /// Resolve parked fetches from the now-idle engine and send their
    /// replies. Returns replies sent.
    pub fn flush(&mut self) -> usize {
        let mut sent = 0;
        for conn in &mut self.conns {
            let Some(p) = conn.pending.take() else { continue };
            let resp = p.resolve_now(&self.server);
            if conn.t.send(&proto::encode_response(&resp)).is_err() {
                conn.dead = true;
            } else {
                sent += 1;
            }
        }
        self.reap();
        sent
    }

    /// Convenience: poll + step + flush until no progress is made.
    pub fn tick(&mut self) {
        loop {
            let polled = self.poll();
            let stepped = self.step();
            let flushed = self.flush();
            if polled == 0 && stepped == 0 && flushed == 0 {
                break;
            }
        }
    }

    fn reap(&mut self) {
        let server = &self.server;
        self.conns.retain_mut(|c| {
            if c.dead {
                for id in c.owned.drain(..) {
                    server.close_session(id);
                }
                false
            } else {
                true
            }
        });
    }
}
