//! # viz-serve — multi-client block/frame server
//!
//! One shared [`viz_fetch::FetchEngine`] + [`viz_fetch::BlockPool`]
//! serving many visualization clients at once. The paper's replacement
//! policy and fetch overlap assume a single viewer; this crate is the
//! layer that lets N viewers share the machinery without sharing fate:
//!
//! - [`proto`] — a length-prefixed, CRC-framed, versioned binary wire
//!   protocol (Open / Close / Fetch / Advance / Stats request–response
//!   pairs). Corruption decodes to typed [`proto::ProtoError`]s, never
//!   panics, mirroring the persist codecs' contract.
//! - [`transport`] — frame pipes: an in-process pair for deterministic
//!   tests, localhost TCP for real connections.
//! - [`registry`] — per-session identity: generation counter, optional
//!   server-side [`viz_core::ClientFlight`], accounting.
//! - [`server`] — the tenant layer: deficit-round-robin fairness across
//!   sessions within each priority class, per-client quotas, a load-shed
//!   ladder that rejects or downgrades prefetch (never demand) under
//!   pressure, graceful drain, and per-client telemetry through the
//!   `viz_telemetry` rings. Duplicate keys across *different* clients
//!   coalesce into one source read inside the shared engine.
//! - [`reactor`] — the scaling front end: every connection on one
//!   poll-driven event loop (demand deadlines on a timer wheel, no
//!   thread per client), selected by [`ServeConfig::backend`] via
//!   [`TcpFrontend`]; its in-process twin drives thousands of virtual
//!   sessions on a virtual clock for the soak suite.
//! - [`client`] — a typed client over any transport, with split
//!   send/recv halves for deterministic stepping.
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use viz_fetch::{BlockPool, FetchEngine};
//! use viz_serve::{InProcServer, ServeClient, ServeConfig, Server};
//! use viz_volume::{BlockId, BlockKey, MemBlockStore};
//!
//! let store = MemBlockStore::new();
//! store.insert(BlockKey::scalar(BlockId(7)), vec![1.5; 8]);
//! let engine = FetchEngine::deterministic(Arc::new(store), Arc::new(BlockPool::new()));
//! let server = Server::new(Arc::new(engine), ServeConfig::default());
//!
//! let mut inproc = InProcServer::new(server);
//! let mut client = ServeClient::new(inproc.connect());
//! client.send_open("viewer").unwrap();
//! inproc.tick();
//! client.recv_open().unwrap();
//!
//! client.send_fetch(0, vec![BlockKey::scalar(BlockId(7))], vec![]).unwrap();
//! inproc.tick();
//! let got = client.recv_fetch().unwrap();
//! assert_eq!(got.blocks[0].result.as_ref().unwrap()[0], 1.5);
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod proto;
pub mod reactor;
pub mod registry;
mod sched;
pub mod server;
pub mod transport;

pub use client::{ClientError, FetchOutcome, ServeClient};
pub use proto::{
    BlockReply, HistSnapshot, ProtoError, Request, Response, TraceCtx, WireTelemetry,
    MAX_FRAME_BYTES, MIN_PROTO_VERSION, PROTO_VERSION,
};
pub use reactor::{ReactorInProcServer, ReactorTcpServer, TcpFrontend};
pub use registry::{SessionId, SessionView};
pub use server::{
    handle_request, serve_connection, serve_connection_with, DefaultDispatch, DrainReport,
    InProcServer, IoBackend, LadderConfig, Outcome, PendingFetch, RequestDispatch, ServeConfig,
    ServeError, ServeMetrics, Server, ShedReason, Submission, TcpServer,
};
pub use transport::{inproc_pair, InProcTransport, TcpTransport, Transport};
