//! The wire protocol: length-prefixed, CRC-framed, versioned binary
//! messages.
//!
//! Every frame on the wire is `[body_len: u32 LE][crc: u32 LE][body]`,
//! where `crc` is the CRC-32 of `body` (the same polynomial the block
//! store frames use, via [`viz_volume::crc32`]). The body opens with the
//! `b"VSRV"` magic, a `u16` protocol version, and a one-byte message tag,
//! followed by the tag-specific payload. Requests use tags `0x01..=0x08`,
//! responses mirror them at `0x81..=0x87`, and `0xFF` is the typed error
//! reply. The cluster layer rides the same version: `MapGet`/`MapReply`
//! exchange the opaque CRC-framed shard map, `PeerFetch` is the
//! node-to-node demand forward (a hop counter bounds forwarding cycles
//! under shard-map skew), and `Ping`/`Pong` carry membership heartbeats
//! with piggybacked map versions for anti-entropy.
//!
//! Corruption never panics: truncation, a flipped CRC byte, an unknown
//! tag, and version skew each map to a distinct [`ProtoError`] variant,
//! mirroring the persist codecs' corruption contract. A v3 client hitting
//! a v2 server (or vice versa) gets [`ProtoError::VersionSkew`] and the
//! server answers with a [`Response::Error`] carrying [`ERR_VERSION`]
//! instead of dropping the connection.
//!
//! ## Version 2 (additive)
//!
//! v2 appends distributed-tracing fields; every v1 frame still decodes
//! (the new fields default to zero) and [`encode_request_versioned`] at
//! version 1 reproduces the v1 byte layout exactly:
//!
//! - `Fetch` / `Advance` / `PeerFetch` carry a trailing [`TraceCtx`]
//!   (trace id + parent span id) so server-side work is attributable to
//!   the originating client request across node boundaries.
//! - `Pong` carries the responder's telemetry clock (`now_ns`), giving
//!   heartbeat exchanges an RTT-midpoint clock-offset estimate for
//!   merged traces.
//! - `TelemetryGet`/`TelemetryReply` scrape a node's event rings,
//!   summary histograms, and wire counters in one round trip.
//!
//! Servers answer at the version the request claimed, so a v1 client
//! against a v2 server keeps working.

use std::fmt;
use std::io;
use std::sync::Arc;
use viz_telemetry::{EventKind, TraceEvent};
use viz_volume::{crc32, BlockId, BlockKey};

/// Frame magic, first four body bytes.
pub const MAGIC: [u8; 4] = *b"VSRV";
/// Protocol version this build speaks.
pub const PROTO_VERSION: u16 = 2;
/// Oldest protocol version this build still decodes.
pub const MIN_PROTO_VERSION: u16 = 1;
/// Upper bound on one frame body; larger length prefixes are rejected
/// before any allocation.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

const TAG_OPEN: u8 = 0x01;
const TAG_CLOSE: u8 = 0x02;
const TAG_FETCH: u8 = 0x03;
const TAG_ADVANCE: u8 = 0x04;
const TAG_STATS: u8 = 0x05;
const TAG_MAP_GET: u8 = 0x06;
const TAG_PEER_FETCH: u8 = 0x07;
const TAG_PING: u8 = 0x08;
const TAG_TELEMETRY_GET: u8 = 0x09;
const TAG_OPEN_ACK: u8 = 0x81;
const TAG_CLOSE_ACK: u8 = 0x82;
const TAG_FETCH_REPLY: u8 = 0x83;
const TAG_ADVANCE_ACK: u8 = 0x84;
const TAG_STATS_REPLY: u8 = 0x85;
const TAG_MAP_REPLY: u8 = 0x86;
const TAG_PONG: u8 = 0x87;
const TAG_TELEMETRY_REPLY: u8 = 0x88;
const TAG_ERROR: u8 = 0xFF;

/// Distributed-trace context carried on v2 `Fetch`/`Advance`/`PeerFetch`
/// frames: the 64-bit trace id minted by the originating client/Router
/// and the parent span id within that trace. All-zero ([`TraceCtx::NONE`])
/// means "untraced" — what every v1 frame decodes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceCtx {
    /// Trace id (0 = none).
    pub trace: u64,
    /// Parent span id within the trace (0 = root).
    pub span: u64,
}

impl TraceCtx {
    /// The untraced context.
    pub const NONE: TraceCtx = TraceCtx { trace: 0, span: 0 };

    /// Whether this context names a trace.
    pub fn is_some(self) -> bool {
        self.trace != 0
    }
}

/// Wire error code: malformed frame or payload.
pub const ERR_PROTO: u16 = 1;
/// Wire error code: protocol version skew.
pub const ERR_VERSION: u16 = 2;
/// Wire error code: request named a session the registry does not know.
pub const ERR_UNKNOWN_SESSION: u16 = 3;
/// Wire error code: the registry is at its session cap.
pub const ERR_TOO_MANY_SESSIONS: u16 = 4;
/// Wire error code: the server is draining and rejects new work.
pub const ERR_DRAINING: u16 = 5;
/// Wire error code: a `MapGet` reached a server with no shard map
/// installed (a plain single-node server, or a cluster node before its
/// first map push).
pub const ERR_NO_MAP: u16 = 6;

/// Typed decode failure. Every corruption mode is a value, never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// Fewer bytes than the frame header or its length prefix promise.
    Truncated {
        /// Bytes the frame needed.
        need: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// Length prefix beyond [`MAX_FRAME_BYTES`].
    TooLarge(usize),
    /// The stored CRC does not match the body.
    BadCrc {
        /// CRC-32 stored in the frame header.
        stored: u32,
        /// CRC-32 computed over the received body.
        computed: u32,
    },
    /// The body does not open with [`MAGIC`].
    BadMagic([u8; 4]),
    /// The frame's protocol version is not one this build speaks.
    VersionSkew {
        /// Version the peer sent.
        got: u16,
        /// Version this build supports.
        supported: u16,
    },
    /// A message tag outside the defined request/response sets.
    UnknownTag(u8),
    /// Structurally invalid payload under a valid header.
    Malformed(&'static str),
}

impl ProtoError {
    /// Wire error code a server embeds in its [`Response::Error`] reply.
    pub fn code(&self) -> u16 {
        match self {
            ProtoError::VersionSkew { .. } => ERR_VERSION,
            _ => ERR_PROTO,
        }
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Truncated { need, got } => {
                write!(f, "truncated frame: need {need} bytes, got {got}")
            }
            ProtoError::TooLarge(n) => write!(f, "frame length {n} exceeds {MAX_FRAME_BYTES}"),
            ProtoError::BadCrc { stored, computed } => write!(
                f,
                "frame checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
            ProtoError::BadMagic(m) => write!(f, "bad frame magic {m:?}"),
            ProtoError::VersionSkew { got, supported } => {
                write!(f, "protocol version skew: peer speaks v{got}, this build v{supported}")
            }
            ProtoError::UnknownTag(t) => write!(f, "unknown message tag {t:#04x}"),
            ProtoError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<ProtoError> for io::Error {
    fn from(e: ProtoError) -> Self {
        let kind = match e {
            ProtoError::Truncated { .. } => io::ErrorKind::UnexpectedEof,
            _ => io::ErrorKind::InvalidData,
        };
        io::Error::new(kind, e.to_string())
    }
}

/// Client → server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Register a session; the reply carries its id.
    Open {
        /// Client-chosen display name (telemetry labels, diagnostics).
        name: String,
    },
    /// Unregister a session; queued prefetch for it is discarded.
    Close {
        /// Session to close.
        session: u32,
    },
    /// One frame's block wants: demand keys the frame renders from plus
    /// `(key, priority)` speculation for upcoming steps.
    Fetch {
        /// Requesting session.
        session: u32,
        /// Client generation the prefetches belong to; older than the
        /// session's current generation means they are stale and shed.
        generation: u64,
        /// Demand keys (never shed, never downgraded).
        demand: Vec<BlockKey>,
        /// Prefetch keys with `T_important` priorities.
        prefetch: Vec<(BlockKey, f64)>,
        /// Trace context (v2; [`TraceCtx::NONE`] on v1 frames).
        trace: TraceCtx,
    },
    /// Advance the session's frame generation (camera stepped): queued
    /// prefetch from earlier generations is purged, and a server-side
    /// [`viz_core::ClientFlight`], if attached, contributes the next
    /// frame's prefetch set.
    Advance {
        /// Session to advance.
        session: u32,
        /// Trace context (v2; [`TraceCtx::NONE`] on v1 frames).
        trace: TraceCtx,
    },
    /// Snapshot server + engine counters.
    Stats,
    /// Ask for the serving node's current shard map (cluster layer).
    MapGet,
    /// Node-to-node demand forward: the sender does not own these keys
    /// and asks their owner to resolve them. Replies with a normal
    /// [`Response::FetchReply`]. Prefetch never crosses nodes.
    PeerFetch {
        /// The sender's peer session on the receiving node.
        session: u32,
        /// Forwarding hops already taken; receivers reject further
        /// forwarding once this reaches the hop cap, bounding cycles
        /// when two nodes briefly disagree about ownership.
        hops: u8,
        /// Demand keys to resolve on the owner.
        demand: Vec<BlockKey>,
        /// Trace context of the originating client request, so the
        /// owner's work lands in the same cross-node trace (v2).
        trace: TraceCtx,
    },
    /// Membership heartbeat: "I am alive, and my shard map is at this
    /// version." Sessionless, answered with [`Response::Pong`]. Both
    /// sides use the piggybacked versions for map anti-entropy: whichever
    /// party is behind pulls the newer map with `MapGet` immediately
    /// instead of learning about the skew on a failed fetch.
    Ping {
        /// Sender's node id, or [`PING_FROM_CLIENT`] for a router/client
        /// probe that has no node identity.
        from: u32,
        /// Sender's current shard-map version (0 = none installed).
        map_version: u64,
    },
    /// Drain the responding node's telemetry plane — event rings (routed
    /// through the flight recorder's history on the way), per-span-kind
    /// summary histograms, and wire counters — in one round trip (v2).
    TelemetryGet,
}

impl Request {
    /// The wire tag this request encodes with — the stable code the
    /// `RpcServe` telemetry span carries as its arg.
    pub fn tag_code(&self) -> u8 {
        match self {
            Request::Open { .. } => TAG_OPEN,
            Request::Close { .. } => TAG_CLOSE,
            Request::Fetch { .. } => TAG_FETCH,
            Request::Advance { .. } => TAG_ADVANCE,
            Request::Stats => TAG_STATS,
            Request::MapGet => TAG_MAP_GET,
            Request::PeerFetch { .. } => TAG_PEER_FETCH,
            Request::Ping { .. } => TAG_PING,
            Request::TelemetryGet => TAG_TELEMETRY_GET,
        }
    }

    /// The trace context a request carries ([`TraceCtx::NONE`] for
    /// untraced tags).
    pub fn trace_ctx(&self) -> TraceCtx {
        match self {
            Request::Fetch { trace, .. }
            | Request::Advance { trace, .. }
            | Request::PeerFetch { trace, .. } => *trace,
            _ => TraceCtx::NONE,
        }
    }
}

/// The `from` value a router or external client puts in a
/// [`Request::Ping`]: probes liveness without claiming a node id.
pub const PING_FROM_CLIENT: u32 = u32::MAX;

/// One span kind's latency summary inside a [`Response::TelemetryReply`]:
/// the sparse wire form of a `viz_telemetry` log2 histogram (only
/// occupied buckets travel).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Stable [`EventKind`] code (`kind as u8`).
    pub kind: u8,
    /// `(bucket index, count)` pairs for occupied buckets.
    pub pairs: Vec<(u16, u64)>,
    /// Total samples.
    pub count: u64,
    /// Sum of samples (ns).
    pub sum: u64,
    /// Smallest sample (ns); meaningless when `count == 0`.
    pub min: u64,
    /// Largest sample (ns).
    pub max: u64,
}

/// Payload of a [`Response::TelemetryReply`]: one node's telemetry drain.
#[derive(Debug, Clone, PartialEq)]
pub struct WireTelemetry {
    /// Responder's node id, or [`PING_FROM_CLIENT`] from a plain
    /// single-node server with no cluster identity.
    pub node: u32,
    /// Responder's telemetry clock when the drain was taken, for
    /// clock-offset alignment at the collector.
    pub now_ns: u64,
    /// Cumulative ring-overflow drops on the responder.
    pub dropped: u64,
    /// Drained trace events, oldest first.
    pub events: Vec<TraceEvent>,
    /// Per-span-kind latency summaries.
    pub hists: Vec<HistSnapshot>,
    /// Wire + engine counters, as in [`Response::StatsReply`].
    pub counters: Vec<(String, u64)>,
}

/// One demand key's outcome inside a [`Response::FetchReply`].
#[derive(Debug, Clone, PartialEq)]
pub struct BlockReply {
    /// The requested key.
    pub key: BlockKey,
    /// Payload on success, or a small error-kind code (see
    /// [`errkind_code`]) on failure.
    pub result: Result<Arc<Vec<f32>>, u16>,
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Session registered.
    OpenAck {
        /// Assigned session id.
        session: u32,
    },
    /// Session unregistered.
    CloseAck {
        /// The closed session.
        session: u32,
    },
    /// Demand outcomes plus the admission verdict on the prefetch list.
    FetchReply {
        /// Responding session.
        session: u32,
        /// One entry per demand key, in request order.
        blocks: Vec<BlockReply>,
        /// Prefetches rejected under pressure.
        shed: u32,
        /// Prefetches admitted at reduced priority.
        downgraded: u32,
    },
    /// Generation bumped.
    AdvanceAck {
        /// Responding session.
        session: u32,
        /// The session's generation after the bump.
        generation: u64,
    },
    /// Counter snapshot: serve-layer, engine, and pool gauges.
    StatsReply {
        /// `(name, value)` pairs.
        counters: Vec<(String, u64)>,
    },
    /// The serving node's shard map, opaque to the wire layer: the
    /// cluster crate's own CRC-framed codec lives inside `map_bytes`.
    MapReply {
        /// Map version, monotonically increasing across reassignments;
        /// clients and peers use it to detect skew without decoding.
        version: u64,
        /// Encoded shard map (the cluster crate's VMAP frame).
        map_bytes: Vec<u8>,
    },
    /// Heartbeat ack: the responder's identity and shard-map version.
    Pong {
        /// Responder's node id, or [`PING_FROM_CLIENT`] from a plain
        /// single-node server with no cluster identity.
        node: u32,
        /// Responder's current shard-map version (0 = none installed).
        map_version: u64,
        /// Responder's telemetry clock at answer time (v2; 0 on v1
        /// frames). With the requester's local send/receive stamps this
        /// yields an RTT-midpoint clock-offset estimate.
        now_ns: u64,
    },
    /// One node's telemetry drain (v2), answering
    /// [`Request::TelemetryGet`].
    TelemetryReply(WireTelemetry),
    /// Typed failure; the connection stays usable.
    Error {
        /// One of the `ERR_*` codes.
        code: u16,
        /// Human-readable context.
        message: String,
    },
}

/// Stable code for the `io::ErrorKind`s a [`BlockReply`] distinguishes
/// (0 = anything else), shared with the telemetry `FetchFail` arg.
pub fn errkind_code(kind: io::ErrorKind) -> u16 {
    match kind {
        io::ErrorKind::NotFound => 1,
        io::ErrorKind::InvalidData => 2,
        io::ErrorKind::Interrupted => 3,
        io::ErrorKind::TimedOut => 4,
        io::ErrorKind::WouldBlock => 5,
        _ => 0,
    }
}

/// Inverse of [`errkind_code`]: reconstruct the `io::ErrorKind` a remote
/// [`BlockReply`] failure carried, so a peer-fetching node can classify
/// the error (transient vs permanent) exactly as if the read were local.
pub fn errkind_from_code(code: u16) -> io::ErrorKind {
    match code {
        1 => io::ErrorKind::NotFound,
        2 => io::ErrorKind::InvalidData,
        3 => io::ErrorKind::Interrupted,
        4 => io::ErrorKind::TimedOut,
        5 => io::ErrorKind::WouldBlock,
        _ => io::ErrorKind::Other,
    }
}

fn put_u16(b: &mut Vec<u8>, v: u16) {
    b.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(b: &mut Vec<u8>, v: u32) {
    b.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(b: &mut Vec<u8>, v: u64) {
    b.extend_from_slice(&v.to_le_bytes());
}

fn put_key(b: &mut Vec<u8>, k: BlockKey) {
    put_u16(b, k.var);
    put_u16(b, k.time);
    put_u32(b, k.block.0);
}

/// Bounds-checked little-endian reader over a frame body.
struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, at: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.remaining() < n {
            return Err(ProtoError::Truncated { need: self.at + n, got: self.buf.len() });
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f32(&mut self) -> Result<f32, ProtoError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn key(&mut self) -> Result<BlockKey, ProtoError> {
        Ok(BlockKey::new(self.u16()?, self.u16()?, BlockId(self.u32()?)))
    }

    /// Validate a declared element count against the bytes actually left,
    /// so a corrupt count cannot drive a huge allocation.
    fn count(&self, n: u32, elem_bytes: usize) -> Result<usize, ProtoError> {
        let n = n as usize;
        if n.saturating_mul(elem_bytes) > self.remaining() {
            return Err(ProtoError::Malformed("element count exceeds payload"));
        }
        Ok(n)
    }

    fn finish(self) -> Result<(), ProtoError> {
        if self.remaining() != 0 {
            return Err(ProtoError::Malformed("trailing bytes after payload"));
        }
        Ok(())
    }
}

/// Wrap a body in the outer frame: `[len][crc][body]`.
fn frame(body: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + body.len());
    put_u32(&mut out, body.len() as u32);
    put_u32(&mut out, crc32(&body));
    out.extend_from_slice(&body);
    out
}

/// Validate the outer frame of `buf` and return its body.
pub fn frame_body(buf: &[u8]) -> Result<&[u8], ProtoError> {
    if buf.len() < 8 {
        return Err(ProtoError::Truncated { need: 8, got: buf.len() });
    }
    let len = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(ProtoError::TooLarge(len));
    }
    if buf.len() < 8 + len {
        return Err(ProtoError::Truncated { need: 8 + len, got: buf.len() });
    }
    let stored = u32::from_le_bytes(buf[4..8].try_into().unwrap());
    let body = &buf[8..8 + len];
    let computed = crc32(body);
    if stored != computed {
        return Err(ProtoError::BadCrc { stored, computed });
    }
    Ok(body)
}

/// The `[body_len]` a transport needs to finish reading a frame whose
/// first 8 header bytes are in `header`.
pub fn frame_body_len(header: &[u8; 8]) -> Result<usize, ProtoError> {
    let len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(ProtoError::TooLarge(len));
    }
    Ok(len)
}

fn body_header(version: u16, tag: u8) -> Vec<u8> {
    let mut b = Vec::with_capacity(64);
    b.extend_from_slice(&MAGIC);
    put_u16(&mut b, version);
    b.push(tag);
    b
}

fn open_body(buf: &[u8]) -> Result<(u8, u16, Reader<'_>), ProtoError> {
    let body = frame_body(buf)?;
    let mut r = Reader::new(body);
    let magic: [u8; 4] = r.take(4)?.try_into().unwrap();
    if magic != MAGIC {
        return Err(ProtoError::BadMagic(magic));
    }
    let version = r.u16()?;
    if !(MIN_PROTO_VERSION..=PROTO_VERSION).contains(&version) {
        return Err(ProtoError::VersionSkew { got: version, supported: PROTO_VERSION });
    }
    let tag = r.u8()?;
    Ok((tag, version, r))
}

fn put_trace(b: &mut Vec<u8>, version: u16, t: TraceCtx) {
    if version >= 2 {
        put_u64(b, t.trace);
        put_u64(b, t.span);
    }
}

fn read_trace(r: &mut Reader<'_>, version: u16) -> Result<TraceCtx, ProtoError> {
    if version >= 2 {
        Ok(TraceCtx { trace: r.u64()?, span: r.u64()? })
    } else {
        Ok(TraceCtx::NONE)
    }
}

/// Encode a request at [`PROTO_VERSION`].
pub fn encode_request(req: &Request) -> Vec<u8> {
    encode_request_versioned(req, PROTO_VERSION)
}

/// Encode a request claiming `version` — how compatibility probes and the
/// version-skew tests manufacture frames from a future client.
pub fn encode_request_versioned(req: &Request, version: u16) -> Vec<u8> {
    let mut b;
    match req {
        Request::Open { name } => {
            b = body_header(version, TAG_OPEN);
            put_u16(&mut b, name.len() as u16);
            b.extend_from_slice(name.as_bytes());
        }
        Request::Close { session } => {
            b = body_header(version, TAG_CLOSE);
            put_u32(&mut b, *session);
        }
        Request::Fetch { session, generation, demand, prefetch, trace } => {
            b = body_header(version, TAG_FETCH);
            put_u32(&mut b, *session);
            put_u64(&mut b, *generation);
            put_u32(&mut b, demand.len() as u32);
            for &k in demand {
                put_key(&mut b, k);
            }
            put_u32(&mut b, prefetch.len() as u32);
            for &(k, pri) in prefetch {
                put_key(&mut b, k);
                put_u64(&mut b, pri.to_bits());
            }
            put_trace(&mut b, version, *trace);
        }
        Request::Advance { session, trace } => {
            b = body_header(version, TAG_ADVANCE);
            put_u32(&mut b, *session);
            put_trace(&mut b, version, *trace);
        }
        Request::Stats => {
            b = body_header(version, TAG_STATS);
        }
        Request::MapGet => {
            b = body_header(version, TAG_MAP_GET);
        }
        Request::PeerFetch { session, hops, demand, trace } => {
            b = body_header(version, TAG_PEER_FETCH);
            put_u32(&mut b, *session);
            b.push(*hops);
            put_u32(&mut b, demand.len() as u32);
            for &k in demand {
                put_key(&mut b, k);
            }
            put_trace(&mut b, version, *trace);
        }
        Request::Ping { from, map_version } => {
            b = body_header(version, TAG_PING);
            put_u32(&mut b, *from);
            put_u64(&mut b, *map_version);
        }
        Request::TelemetryGet => {
            b = body_header(version, TAG_TELEMETRY_GET);
        }
    }
    frame(b)
}

/// Decode a request frame.
pub fn decode_request(buf: &[u8]) -> Result<Request, ProtoError> {
    decode_request_full(buf).map(|(_, req)| req)
}

/// Decode a request frame and report the protocol version it claimed, so
/// servers can answer v1 clients with v1 replies.
pub fn decode_request_full(buf: &[u8]) -> Result<(u16, Request), ProtoError> {
    let (tag, version, mut r) = open_body(buf)?;
    let req = match tag {
        TAG_OPEN => {
            let n = r.u16()? as usize;
            let bytes = r.take(n)?;
            let name = std::str::from_utf8(bytes)
                .map_err(|_| ProtoError::Malformed("session name is not UTF-8"))?
                .to_string();
            Request::Open { name }
        }
        TAG_CLOSE => Request::Close { session: r.u32()? },
        TAG_FETCH => {
            let session = r.u32()?;
            let generation = r.u64()?;
            let nd = r.u32()?;
            let nd = r.count(nd, 8)?;
            let mut demand = Vec::with_capacity(nd);
            for _ in 0..nd {
                demand.push(r.key()?);
            }
            let np = r.u32()?;
            let np = r.count(np, 16)?;
            let mut prefetch = Vec::with_capacity(np);
            for _ in 0..np {
                let k = r.key()?;
                prefetch.push((k, f64::from_bits(r.u64()?)));
            }
            let trace = read_trace(&mut r, version)?;
            Request::Fetch { session, generation, demand, prefetch, trace }
        }
        TAG_ADVANCE => {
            let session = r.u32()?;
            let trace = read_trace(&mut r, version)?;
            Request::Advance { session, trace }
        }
        TAG_STATS => Request::Stats,
        TAG_MAP_GET => Request::MapGet,
        TAG_PEER_FETCH => {
            let session = r.u32()?;
            let hops = r.u8()?;
            let n = r.u32()?;
            let n = r.count(n, 8)?;
            let mut demand = Vec::with_capacity(n);
            for _ in 0..n {
                demand.push(r.key()?);
            }
            let trace = read_trace(&mut r, version)?;
            Request::PeerFetch { session, hops, demand, trace }
        }
        TAG_PING => Request::Ping { from: r.u32()?, map_version: r.u64()? },
        TAG_TELEMETRY_GET => Request::TelemetryGet,
        t => return Err(ProtoError::UnknownTag(t)),
    };
    r.finish()?;
    Ok((version, req))
}

/// Encode a response at [`PROTO_VERSION`].
pub fn encode_response(resp: &Response) -> Vec<u8> {
    encode_response_versioned(resp, PROTO_VERSION)
}

/// Encode a response claiming `version`, omitting fields the version
/// predates — servers answer at the version the request claimed so v1
/// clients keep decoding replies.
pub fn encode_response_versioned(resp: &Response, version: u16) -> Vec<u8> {
    let mut b;
    match resp {
        Response::OpenAck { session } => {
            b = body_header(version, TAG_OPEN_ACK);
            put_u32(&mut b, *session);
        }
        Response::CloseAck { session } => {
            b = body_header(version, TAG_CLOSE_ACK);
            put_u32(&mut b, *session);
        }
        Response::FetchReply { session, blocks, shed, downgraded } => {
            b = body_header(version, TAG_FETCH_REPLY);
            put_u32(&mut b, *session);
            put_u32(&mut b, *shed);
            put_u32(&mut b, *downgraded);
            put_u32(&mut b, blocks.len() as u32);
            for br in blocks {
                put_key(&mut b, br.key);
                match &br.result {
                    Ok(data) => {
                        b.push(0);
                        put_u32(&mut b, data.len() as u32);
                        for &v in data.iter() {
                            b.extend_from_slice(&v.to_le_bytes());
                        }
                    }
                    Err(code) => {
                        b.push(1);
                        put_u16(&mut b, *code);
                    }
                }
            }
        }
        Response::AdvanceAck { session, generation } => {
            b = body_header(version, TAG_ADVANCE_ACK);
            put_u32(&mut b, *session);
            put_u64(&mut b, *generation);
        }
        Response::StatsReply { counters } => {
            b = body_header(version, TAG_STATS_REPLY);
            put_u32(&mut b, counters.len() as u32);
            for (name, value) in counters {
                put_u16(&mut b, name.len() as u16);
                b.extend_from_slice(name.as_bytes());
                put_u64(&mut b, *value);
            }
        }
        Response::MapReply { version: map_ver, map_bytes } => {
            b = body_header(version, TAG_MAP_REPLY);
            put_u64(&mut b, *map_ver);
            put_u32(&mut b, map_bytes.len() as u32);
            b.extend_from_slice(map_bytes);
        }
        Response::Pong { node, map_version, now_ns } => {
            b = body_header(version, TAG_PONG);
            put_u32(&mut b, *node);
            put_u64(&mut b, *map_version);
            if version >= 2 {
                put_u64(&mut b, *now_ns);
            }
        }
        Response::TelemetryReply(t) => {
            b = body_header(version, TAG_TELEMETRY_REPLY);
            put_u32(&mut b, t.node);
            put_u64(&mut b, t.now_ns);
            put_u64(&mut b, t.dropped);
            put_u32(&mut b, t.events.len() as u32);
            for e in &t.events {
                put_u64(&mut b, e.t_ns);
                put_u64(&mut b, e.dur_ns);
                put_u64(&mut b, e.key);
                put_u64(&mut b, e.arg);
                put_u64(&mut b, e.trace);
                b.push(e.kind as u8);
                put_u16(&mut b, e.tid);
                put_u16(&mut b, e.node);
            }
            put_u32(&mut b, t.hists.len() as u32);
            for h in &t.hists {
                b.push(h.kind);
                put_u64(&mut b, h.count);
                put_u64(&mut b, h.sum);
                put_u64(&mut b, h.min);
                put_u64(&mut b, h.max);
                put_u32(&mut b, h.pairs.len() as u32);
                for &(i, c) in &h.pairs {
                    put_u16(&mut b, i);
                    put_u64(&mut b, c);
                }
            }
            put_u32(&mut b, t.counters.len() as u32);
            for (name, value) in &t.counters {
                put_u16(&mut b, name.len() as u16);
                b.extend_from_slice(name.as_bytes());
                put_u64(&mut b, *value);
            }
        }
        Response::Error { code, message } => {
            b = body_header(version, TAG_ERROR);
            put_u16(&mut b, *code);
            put_u16(&mut b, message.len() as u16);
            b.extend_from_slice(message.as_bytes());
        }
    }
    frame(b)
}

/// Decode a response frame.
pub fn decode_response(buf: &[u8]) -> Result<Response, ProtoError> {
    let (tag, version, mut r) = open_body(buf)?;
    let resp = match tag {
        TAG_OPEN_ACK => Response::OpenAck { session: r.u32()? },
        TAG_CLOSE_ACK => Response::CloseAck { session: r.u32()? },
        TAG_FETCH_REPLY => {
            let session = r.u32()?;
            let shed = r.u32()?;
            let downgraded = r.u32()?;
            let n = r.u32()?;
            let n = r.count(n, 9)?;
            let mut blocks = Vec::with_capacity(n);
            for _ in 0..n {
                let key = r.key()?;
                let result = match r.u8()? {
                    0 => {
                        let len = r.u32()?;
                        let len = r.count(len, 4)?;
                        let mut data = Vec::with_capacity(len);
                        for _ in 0..len {
                            data.push(r.f32()?);
                        }
                        Ok(Arc::new(data))
                    }
                    1 => Err(r.u16()?),
                    _ => return Err(ProtoError::Malformed("bad block status byte")),
                };
                blocks.push(BlockReply { key, result });
            }
            Response::FetchReply { session, blocks, shed, downgraded }
        }
        TAG_ADVANCE_ACK => Response::AdvanceAck { session: r.u32()?, generation: r.u64()? },
        TAG_STATS_REPLY => {
            let n = r.u32()?;
            let n = r.count(n, 10)?;
            let mut counters = Vec::with_capacity(n);
            for _ in 0..n {
                let len = r.u16()? as usize;
                let name = std::str::from_utf8(r.take(len)?)
                    .map_err(|_| ProtoError::Malformed("counter name is not UTF-8"))?
                    .to_string();
                counters.push((name, r.u64()?));
            }
            Response::StatsReply { counters }
        }
        TAG_MAP_REPLY => {
            let version = r.u64()?;
            let n = r.u32()?;
            let n = r.count(n, 1)?;
            let map_bytes = r.take(n)?.to_vec();
            Response::MapReply { version, map_bytes }
        }
        TAG_PONG => {
            let node = r.u32()?;
            let map_version = r.u64()?;
            let now_ns = if version >= 2 { r.u64()? } else { 0 };
            Response::Pong { node, map_version, now_ns }
        }
        TAG_TELEMETRY_REPLY => {
            let node = r.u32()?;
            let now_ns = r.u64()?;
            let dropped = r.u64()?;
            let ne = r.u32()?;
            let ne = r.count(ne, 45)?;
            let mut events = Vec::with_capacity(ne);
            for _ in 0..ne {
                let t_ns = r.u64()?;
                let dur_ns = r.u64()?;
                let key = r.u64()?;
                let arg = r.u64()?;
                let trace = r.u64()?;
                let code = r.u8()?;
                let kind = *EventKind::ALL
                    .get(code as usize)
                    .ok_or(ProtoError::Malformed("unknown event kind code"))?;
                let tid = r.u16()?;
                let enode = r.u16()?;
                events.push(TraceEvent { t_ns, dur_ns, key, arg, trace, kind, tid, node: enode });
            }
            let nh = r.u32()?;
            let nh = r.count(nh, 37)?;
            let mut hists = Vec::with_capacity(nh);
            for _ in 0..nh {
                let kind = r.u8()?;
                let count = r.u64()?;
                let sum = r.u64()?;
                let min = r.u64()?;
                let max = r.u64()?;
                let np = r.u32()?;
                let np = r.count(np, 10)?;
                let mut pairs = Vec::with_capacity(np);
                for _ in 0..np {
                    let i = r.u16()?;
                    pairs.push((i, r.u64()?));
                }
                hists.push(HistSnapshot { kind, pairs, count, sum, min, max });
            }
            let nc = r.u32()?;
            let nc = r.count(nc, 10)?;
            let mut counters = Vec::with_capacity(nc);
            for _ in 0..nc {
                let len = r.u16()? as usize;
                let name = std::str::from_utf8(r.take(len)?)
                    .map_err(|_| ProtoError::Malformed("counter name is not UTF-8"))?
                    .to_string();
                counters.push((name, r.u64()?));
            }
            Response::TelemetryReply(WireTelemetry {
                node,
                now_ns,
                dropped,
                events,
                hists,
                counters,
            })
        }
        TAG_ERROR => {
            let code = r.u16()?;
            let len = r.u16()? as usize;
            let message = std::str::from_utf8(r.take(len)?)
                .map_err(|_| ProtoError::Malformed("error message is not UTF-8"))?
                .to_string();
            Response::Error { code, message }
        }
        t => return Err(ProtoError::UnknownTag(t)),
    };
    r.finish()?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u32) -> BlockKey {
        BlockKey::new(1, 2, BlockId(i))
    }

    fn ctx(trace: u64, span: u64) -> TraceCtx {
        TraceCtx { trace, span }
    }

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Open { name: "viewer-a".into() },
            Request::Close { session: 7 },
            Request::Fetch {
                session: 7,
                generation: 41,
                demand: vec![key(0), key(5)],
                prefetch: vec![(key(9), 2.25), (key(10), 0.0)],
                trace: ctx(0xABCD_EF01_2345_6789, 77),
            },
            Request::Advance { session: 7, trace: ctx(0x1111, 0) },
            Request::Stats,
            Request::MapGet,
            Request::PeerFetch {
                session: 9,
                hops: 1,
                demand: vec![key(3), key(4)],
                trace: ctx(0x2222, 3),
            },
            Request::Ping { from: 2, map_version: 13 },
            Request::Ping { from: PING_FROM_CLIENT, map_version: 0 },
            Request::TelemetryGet,
        ]
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::OpenAck { session: 3 },
            Response::CloseAck { session: 3 },
            Response::FetchReply {
                session: 3,
                blocks: vec![
                    BlockReply { key: key(0), result: Ok(Arc::new(vec![1.0, -2.5])) },
                    BlockReply { key: key(5), result: Err(1) },
                ],
                shed: 4,
                downgraded: 2,
            },
            Response::AdvanceAck { session: 3, generation: 42 },
            Response::StatsReply {
                counters: vec![("serve_sessions_opened".into(), 3), ("x".into(), 0)],
            },
            Response::MapReply { version: 11, map_bytes: vec![0x56, 0x4D, 0x41, 0x50, 0x00] },
            Response::Pong { node: 1, map_version: 11, now_ns: 123_456_789 },
            Response::TelemetryReply(WireTelemetry {
                node: 2,
                now_ns: 9_000,
                dropped: 5,
                events: vec![TraceEvent {
                    t_ns: 100,
                    dur_ns: 40,
                    key: 0xFEED,
                    arg: 1,
                    trace: 0xABCD,
                    kind: EventKind::SourceRead,
                    tid: 3,
                    node: 3,
                }],
                hists: vec![HistSnapshot {
                    kind: EventKind::FetchService as u8,
                    pairs: vec![(10, 4), (31, 1)],
                    count: 5,
                    sum: 1_000,
                    min: 12,
                    max: 600,
                }],
                counters: vec![("serve_requests".into(), 17)],
            }),
            Response::Error { code: ERR_DRAINING, message: "draining".into() },
        ]
    }

    #[test]
    fn request_roundtrip_every_variant() {
        for req in sample_requests() {
            let frame = encode_request(&req);
            assert_eq!(decode_request(&frame).unwrap(), req, "roundtrip failed for {req:?}");
        }
    }

    #[test]
    fn response_roundtrip_every_variant() {
        for resp in sample_responses() {
            let frame = encode_response(&resp);
            assert_eq!(decode_response(&frame).unwrap(), resp, "roundtrip failed for {resp:?}");
        }
    }

    #[test]
    fn version_skew_is_typed() {
        let frame = encode_request_versioned(&Request::Stats, 3);
        assert_eq!(
            decode_request(&frame).unwrap_err(),
            ProtoError::VersionSkew { got: 3, supported: PROTO_VERSION }
        );
        let frame = encode_request_versioned(&Request::Stats, 0);
        assert_eq!(
            decode_request(&frame).unwrap_err(),
            ProtoError::VersionSkew { got: 0, supported: PROTO_VERSION }
        );
    }

    #[test]
    fn v1_frames_still_decode_with_defaulted_trace() {
        // A v1 encode drops the trace tail; the v2 decoder must accept
        // the frame and default the context to NONE.
        for req in sample_requests() {
            if matches!(req, Request::TelemetryGet) {
                continue; // v2-only tag; a real v1 client never sends it
            }
            let frame = encode_request_versioned(&req, 1);
            let (ver, got) = decode_request_full(&frame).unwrap();
            assert_eq!(ver, 1);
            let expect = match req {
                Request::Fetch { session, generation, demand, prefetch, .. } => {
                    Request::Fetch { session, generation, demand, prefetch, trace: TraceCtx::NONE }
                }
                Request::Advance { session, .. } => {
                    Request::Advance { session, trace: TraceCtx::NONE }
                }
                Request::PeerFetch { session, hops, demand, .. } => {
                    Request::PeerFetch { session, hops, demand, trace: TraceCtx::NONE }
                }
                other => other,
            };
            assert_eq!(got, expect);
        }
        // Responses answered at v1 drop now_ns.
        let pong = Response::Pong { node: 1, map_version: 11, now_ns: 777 };
        let frame = encode_response_versioned(&pong, 1);
        assert_eq!(
            decode_response(&frame).unwrap(),
            Response::Pong { node: 1, map_version: 11, now_ns: 0 }
        );
    }

    #[test]
    fn v1_encoding_is_byte_identical_to_the_v1_layout() {
        // Golden v1 Advance frame: magic, version 1, tag 0x04, session 7.
        let frame = encode_request_versioned(&Request::Advance { session: 7, trace: ctx(9, 9) }, 1);
        let body = frame_body(&frame).unwrap();
        let mut expect = Vec::new();
        expect.extend_from_slice(b"VSRV");
        expect.extend_from_slice(&1u16.to_le_bytes());
        expect.push(0x04);
        expect.extend_from_slice(&7u32.to_le_bytes());
        assert_eq!(body, &expect[..]);
        // And the v2 encoding of the same request is exactly 16 bytes
        // (trace + span) longer.
        let frame2 =
            encode_request_versioned(&Request::Advance { session: 7, trace: ctx(9, 9) }, 2);
        assert_eq!(frame_body(&frame2).unwrap().len(), expect.len() + 16);
    }

    #[test]
    fn trace_context_rides_v2_frames() {
        let req = Request::PeerFetch {
            session: 4,
            hops: 0,
            demand: vec![key(1)],
            trace: ctx(0xD00D, 42),
        };
        let (ver, got) = decode_request_full(&encode_request(&req)).unwrap();
        assert_eq!(ver, PROTO_VERSION);
        match got {
            Request::PeerFetch { trace, .. } => assert_eq!(trace, ctx(0xD00D, 42)),
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[test]
    fn truncation_and_crc_flips_are_typed() {
        let frame = encode_request(&sample_requests()[2]);
        assert!(matches!(
            decode_request(&frame[..frame.len() - 1]).unwrap_err(),
            ProtoError::Truncated { .. }
        ));
        assert!(matches!(decode_request(&frame[..3]).unwrap_err(), ProtoError::Truncated { .. }));
        let mut crc_flip = frame.clone();
        crc_flip[5] ^= 0x10;
        assert!(matches!(decode_request(&crc_flip).unwrap_err(), ProtoError::BadCrc { .. }));
    }

    #[test]
    fn errkind_codes_roundtrip() {
        for kind in [
            io::ErrorKind::NotFound,
            io::ErrorKind::InvalidData,
            io::ErrorKind::Interrupted,
            io::ErrorKind::TimedOut,
            io::ErrorKind::WouldBlock,
        ] {
            assert_eq!(errkind_from_code(errkind_code(kind)), kind);
        }
        assert_eq!(
            errkind_from_code(errkind_code(io::ErrorKind::BrokenPipe)),
            io::ErrorKind::Other
        );
    }

    #[test]
    fn oversize_length_prefix_is_rejected_before_allocation() {
        let mut frame = encode_request(&Request::Stats);
        frame[0..4].copy_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(decode_request(&frame).unwrap_err(), ProtoError::TooLarge(_)));
    }
}
