//! Frame transports: an in-process duplex pair for deterministic tests
//! and a localhost TCP stream for real connections.
//!
//! A [`Transport`] moves whole frames (as produced by
//! [`crate::proto::encode_request`] / [`crate::proto::encode_response`],
//! including the 8-byte length + CRC header) in both directions. The
//! in-process pair is two bounded-by-nothing mpsc channels — sends never
//! block, receives can poll — which is what the `workers = 0` stepper
//! tests need: every interleaving is chosen by the test, not the kernel.

use crate::proto::{frame_body_len, ProtoError};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};

/// A bidirectional frame pipe.
pub trait Transport: Send {
    /// Send one whole frame.
    fn send(&mut self, frame: &[u8]) -> io::Result<()>;

    /// Block until a whole frame arrives (or the peer goes away).
    fn recv(&mut self) -> io::Result<Vec<u8>>;

    /// Non-blocking poll: `Ok(None)` when no frame is ready. Transports
    /// without a cheap poll (TCP) return `ErrorKind::Unsupported`.
    fn try_recv(&mut self) -> io::Result<Option<Vec<u8>>>;
}

fn broken_pipe() -> io::Error {
    io::Error::new(io::ErrorKind::BrokenPipe, "transport peer closed")
}

/// One end of an in-process duplex frame pipe (see [`inproc_pair`]).
pub struct InProcTransport {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    notify: Option<std::sync::Arc<dyn Fn() + Send + Sync>>,
}

impl std::fmt::Debug for InProcTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InProcTransport").field("notify", &self.notify.is_some()).finish()
    }
}

/// Create a connected pair of in-process transports: frames sent on one
/// end arrive on the other, in order, never corrupted and never merged.
pub fn inproc_pair() -> (InProcTransport, InProcTransport) {
    let (a_tx, b_rx) = channel();
    let (b_tx, a_rx) = channel();
    (
        InProcTransport { tx: a_tx, rx: a_rx, notify: None },
        InProcTransport { tx: b_tx, rx: b_rx, notify: None },
    )
}

impl InProcTransport {
    /// Install a readiness hook: `f` runs after every successful send,
    /// so a poll-driven peer can learn a frame is waiting without
    /// sleeping. The reactor back end marks a
    /// [`viz_fetch::ReadySet`] token here — this is what makes the
    /// in-process pipe a virtual-readiness transport.
    pub fn set_notify(&mut self, f: std::sync::Arc<dyn Fn() + Send + Sync>) {
        self.notify = Some(f);
    }
}

impl Transport for InProcTransport {
    fn send(&mut self, frame: &[u8]) -> io::Result<()> {
        self.tx.send(frame.to_vec()).map_err(|_| broken_pipe())?;
        if let Some(n) = &self.notify {
            n();
        }
        Ok(())
    }

    fn recv(&mut self) -> io::Result<Vec<u8>> {
        self.rx.recv().map_err(|_| broken_pipe())
    }

    fn try_recv(&mut self) -> io::Result<Option<Vec<u8>>> {
        match self.rx.try_recv() {
            Ok(f) => Ok(Some(f)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(broken_pipe()),
        }
    }
}

/// Frame transport over a TCP stream. Reads the 8-byte length + CRC
/// header first, bounds-checks the declared body length, then reads
/// exactly that many more bytes — a malicious length prefix is refused
/// before any allocation.
#[derive(Debug)]
pub struct TcpTransport {
    stream: TcpStream,
}

impl TcpTransport {
    /// Wrap an accepted or connected stream.
    pub fn new(stream: TcpStream) -> Self {
        TcpTransport { stream }
    }

    /// Connect to a listening [`crate::server::TcpServer`].
    pub fn connect(addr: &str) -> io::Result<Self> {
        Ok(TcpTransport { stream: TcpStream::connect(addr)? })
    }

    /// The underlying stream (read-timeout tuning, shutdown).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, frame: &[u8]) -> io::Result<()> {
        self.stream.write_all(frame)?;
        self.stream.flush()
    }

    fn recv(&mut self) -> io::Result<Vec<u8>> {
        let mut header = [0u8; 8];
        self.stream.read_exact(&mut header)?;
        let body_len = frame_body_len(&header).map_err(io::Error::from)?;
        let mut frame = vec![0u8; 8 + body_len];
        frame[..8].copy_from_slice(&header);
        self.stream.read_exact(&mut frame[8..])?;
        Ok(frame)
    }

    fn try_recv(&mut self) -> io::Result<Option<Vec<u8>>> {
        Err(io::Error::new(io::ErrorKind::Unsupported, "TCP transport has no cheap poll"))
    }
}

/// Re-exported for transports: decode failure of the length header.
pub type FrameHeaderError = ProtoError;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inproc_pair_moves_frames_both_ways() {
        let (mut a, mut b) = inproc_pair();
        a.send(b"hello").unwrap();
        a.send(b"world").unwrap();
        assert_eq!(b.try_recv().unwrap().unwrap(), b"hello");
        assert_eq!(b.recv().unwrap(), b"world");
        assert!(b.try_recv().unwrap().is_none());
        b.send(b"ack").unwrap();
        assert_eq!(a.recv().unwrap(), b"ack");
    }

    #[test]
    fn inproc_peer_drop_is_broken_pipe() {
        let (mut a, b) = inproc_pair();
        drop(b);
        assert_eq!(a.send(b"x").unwrap_err().kind(), io::ErrorKind::BrokenPipe);
        assert_eq!(a.recv().unwrap_err().kind(), io::ErrorKind::BrokenPipe);
    }
}
