//! The session registry: one entry per connected client, carrying its
//! generation counter, optional server-side [`ClientFlight`], and
//! per-session accounting.
//!
//! The registry is deliberately small: fairness queues and quotas live in
//! the scheduler (`sched`), payloads live in the shared pool, and the
//! prediction tables are shared `Arc`s inside each flight — a thousand
//! sessions cost a thousand structs, not a thousand table copies.

use std::collections::HashMap;
use std::fmt;
use viz_core::{ClientFlight, SigmaController};

/// Opaque session identifier, assigned at open, never reused within one
/// server's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u32);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// One registered client.
pub(crate) struct Session {
    pub name: String,
    /// Frame generation: prefetch submitted under an older generation is
    /// stale. Scoped to this session — the engine's global generation is
    /// untouched by serving (one client stepping must not cancel
    /// another's speculation).
    pub generation: u64,
    /// Server-side camera flight, when the deployment drives prediction
    /// from the server (attach via `Server::attach_flight`).
    pub flight: Option<ClientFlight>,
    /// Adaptive-σ loop for the attached flight (attach via
    /// `Server::attach_adaptive_sigma`): the controller plus its queued-
    /// prefetch backlog target. Each `Advance` observes the session's
    /// leftover prefetch backlog and retunes the flight's entropy gate.
    pub sigma_ctl: Option<(SigmaController, f64)>,
    /// `true` when the client is another cluster node (name opens with
    /// `peer/`): its traffic is demand-only forwarding, counted
    /// separately in the stats so operators can split local load from
    /// cluster overflow.
    pub is_peer: bool,
    pub demand_submitted: u64,
    pub prefetch_submitted: u64,
    pub prefetch_shed: u64,
    pub demand_served: u64,
}

/// Read-only snapshot of one session, for diagnostics and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionView {
    /// The session's id.
    pub id: SessionId,
    /// Client-chosen display name.
    pub name: String,
    /// Current frame generation.
    pub generation: u64,
    /// `true` when a server-side flight is attached.
    pub has_flight: bool,
    /// `true` when the session belongs to a peer cluster node.
    pub is_peer: bool,
    /// Demand keys this session has submitted.
    pub demand_submitted: u64,
    /// Prefetch keys this session has submitted.
    pub prefetch_submitted: u64,
    /// Of those, how many admission shed.
    pub prefetch_shed: u64,
    /// Demand replies delivered.
    pub demand_served: u64,
}

pub(crate) struct Registry {
    next: u32,
    sessions: HashMap<u32, Session>,
}

impl Registry {
    pub fn new() -> Self {
        Registry { next: 1, sessions: HashMap::new() }
    }

    pub fn open(&mut self, name: &str) -> SessionId {
        let id = self.next;
        self.next += 1;
        self.sessions.insert(
            id,
            Session {
                name: name.to_string(),
                generation: 0,
                flight: None,
                sigma_ctl: None,
                is_peer: name.starts_with("peer/"),
                demand_submitted: 0,
                prefetch_submitted: 0,
                prefetch_shed: 0,
                demand_served: 0,
            },
        );
        SessionId(id)
    }

    pub fn close(&mut self, id: SessionId) -> Option<Session> {
        self.sessions.remove(&id.0)
    }

    pub fn get_mut(&mut self, id: SessionId) -> Option<&mut Session> {
        self.sessions.get_mut(&id.0)
    }

    pub fn contains(&self, id: SessionId) -> bool {
        self.sessions.contains_key(&id.0)
    }

    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    pub fn ids(&self) -> Vec<SessionId> {
        let mut v: Vec<SessionId> = self.sessions.keys().copied().map(SessionId).collect();
        v.sort();
        v
    }

    pub fn views(&self) -> Vec<SessionView> {
        let mut v: Vec<SessionView> = self
            .sessions
            .iter()
            .map(|(&id, s)| SessionView {
                id: SessionId(id),
                name: s.name.clone(),
                generation: s.generation,
                has_flight: s.flight.is_some(),
                is_peer: s.is_peer,
                demand_submitted: s.demand_submitted,
                prefetch_submitted: s.prefetch_submitted,
                prefetch_shed: s.prefetch_shed,
                demand_served: s.demand_served,
            })
            .collect();
        v.sort_by_key(|s| s.id);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_never_reused() {
        let mut r = Registry::new();
        let a = r.open("a");
        let b = r.open("b");
        assert_ne!(a, b);
        assert!(r.close(a).is_some());
        let c = r.open("c");
        assert!(c > b, "closed ids must not be recycled");
        assert_eq!(r.len(), 2);
        assert_eq!(r.ids(), vec![b, c]);
        assert!(r.close(a).is_none(), "double close is a no-op");
    }

    #[test]
    fn views_reflect_accounting() {
        let mut r = Registry::new();
        let id = r.open("viewer");
        r.get_mut(id).unwrap().demand_submitted = 5;
        r.get_mut(id).unwrap().generation = 3;
        let v = &r.views()[0];
        assert_eq!((v.id, v.generation, v.demand_submitted), (id, 3, 5));
        assert!(!v.has_flight);
        assert_eq!(v.name, "viewer");
    }

    #[test]
    fn peer_sessions_are_tagged_by_name_prefix() {
        let mut r = Registry::new();
        let peer = r.open("peer/node-3");
        let local = r.open("viewer");
        assert!(r.get_mut(peer).unwrap().is_peer);
        assert!(!r.get_mut(local).unwrap().is_peer);
        let views = r.views();
        assert!(views[0].is_peer);
        assert!(!views[1].is_peer);
    }
}
