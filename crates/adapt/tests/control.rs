//! Closed-loop integration: a [`ControlPlane`] over a real deterministic
//! server, and a [`PolicySelector`] actuating a real cache.
//!
//! The ladder tests pin the loop's *direction* rather than wall-clock
//! values: with a 1 ns SLO every measured demand RTT is an overload, with
//! a 10 s SLO every RTT is headroom — both verdicts hold on any machine.
//! Throughout, the safety invariant is asserted the hard way: every
//! demand key of every frame comes back `Ok`, whatever the ladder does.

use std::sync::Arc;
use std::time::Duration;
use viz_adapt::{ControlPlane, ControlPlaneConfig, PolicySelector, PolicySelectorConfig};
use viz_cache::{CacheLevel, Lookup, PolicyKind};
use viz_fetch::{BlockPool, FetchConfig, FetchEngine, InstrumentedSource};
use viz_serve::{ServeConfig, Server};
use viz_volume::{BlockId, BlockKey, MemBlockStore};

fn key(i: u32) -> BlockKey {
    BlockKey::scalar(BlockId(i))
}

fn det_server(n: u32) -> Arc<Server> {
    let store = MemBlockStore::new();
    for i in 0..n {
        store.insert(key(i), vec![i as f32; 16]);
    }
    let src = Arc::new(InstrumentedSource::new(Arc::new(store), Duration::ZERO));
    let engine = FetchEngine::spawn(
        src,
        Arc::new(BlockPool::new()),
        FetchConfig { workers: 0, ..FetchConfig::default() },
    );
    Server::new(Arc::new(engine), ServeConfig::default())
}

fn counter(stats: &[(String, u64)], name: &str) -> u64 {
    stats.iter().find(|(n, _)| n == name).unwrap_or_else(|| panic!("missing {name}")).1
}

/// One frame: 2 demand keys + a spread of prefetch, engine stepped to
/// idle, all demand replies asserted `Ok`.
fn frame(server: &Arc<Server>, id: viz_serve::SessionId, base: u32) {
    let demand = vec![key(base % 64), key((base + 1) % 64)];
    let prefetch: Vec<(BlockKey, f64)> =
        (2..10).map(|j| (key((base + j) % 64), 1.0 / f64::from(j))).collect();
    let sub = server.submit(id, 0, demand, prefetch).unwrap();
    server.pump();
    server.engine().run_until_idle();
    for reply in sub.collect_ready(server) {
        assert!(reply.result.is_ok(), "demand must always land: {reply:?}");
    }
}

#[test]
fn overload_tightens_the_ladder_and_demand_never_sheds() {
    let server = det_server(64);
    let id = server.open_session("v").unwrap();
    let base = server.ladder();
    // A 1 ns SLO makes every real RTT read as overload.
    let mut cfg = ControlPlaneConfig::for_slo(1);
    cfg.gauge_prefix = "t_over_".to_string();
    let mut plane = ControlPlane::new(server.clone(), cfg);

    let mut last = None;
    for i in 0..12 {
        frame(&server, id, i * 3);
        last = Some(plane.tick());
    }
    let last = last.unwrap();
    assert!(last.scale < 1.0, "overload must tighten, scale = {}", last.scale);
    assert!(last.ladder.per_client_queue < base.per_client_queue);
    assert!(last.ladder.shed_queue_depth < base.shed_queue_depth);
    assert_eq!(server.ladder(), last.ladder, "plane actuates the live server");

    // The safety invariant, from the counters' point of view: every demand
    // key admitted and none errored, no matter how tight the ladder got.
    let stats = server.wire_counters();
    assert_eq!(counter(&stats, "serve_demand_admitted"), 24);
    assert_eq!(counter(&stats, "serve_demand_errors"), 0);
}

#[test]
fn headroom_reopens_the_ladder() {
    let server = det_server(64);
    let id = server.open_session("v").unwrap();
    let base = server.ladder();
    // A 10 s SLO makes every real RTT read as headroom.
    let mut cfg = ControlPlaneConfig::for_slo(10_000_000_000);
    cfg.gauge_prefix = "t_head_".to_string();
    let mut plane = ControlPlane::new(server.clone(), cfg);

    let mut last = None;
    for i in 0..12 {
        frame(&server, id, i * 3);
        last = Some(plane.tick());
    }
    let last = last.unwrap();
    assert!(last.scale > 1.0, "headroom must reopen, scale = {}", last.scale);
    assert!(last.ladder.per_client_queue > base.per_client_queue);
}

#[test]
fn interval_sheds_are_attributed_by_reason() {
    let server = det_server(64);
    let id = server.open_session("v").unwrap();
    let mut cfg = ControlPlaneConfig::for_slo(1_000_000);
    cfg.gauge_prefix = "t_shed_".to_string();
    let mut plane = ControlPlane::new(server.clone(), cfg);
    plane.tick(); // baseline interval

    let mut ladder = server.ladder();
    ladder.per_client_queue = 1;
    server.set_ladder(ladder);
    let sub = server.submit(id, 0, vec![], (0..4).map(|i| (key(i), 1.0)).collect()).unwrap();
    assert_eq!(sub.shed(), 3);

    let report = plane.tick();
    assert_eq!(report.signals.prefetch_shed, 3);
    assert_eq!(
        report.signals.shed_by_reason,
        vec![("serve_shed_entry_quota".to_string(), 3)],
        "the interval's sheds must be attributed to the quota rung"
    );
}

#[test]
fn closed_loop_policy_switch_recovers_hit_rate() {
    // A 5-key loop over 4 entries: LRU's worst case (0% hit). The
    // selector watches the same trace through its shadows and switches
    // the *real* cache; after the switch the loop starts hitting.
    let mut cache: CacheLevel<u32> = CacheLevel::new(PolicyKind::Lru, 4);
    let mut sel = PolicySelector::new(
        PolicyKind::Lru,
        &[PolicyKind::Lru, PolicyKind::Mru, PolicyKind::Lirs, PolicyKind::TwoQ],
        4,
        PolicySelectorConfig { window: 50, patience: 2, min_gain: 0.05 },
    );

    let mut hits_before = 0u32;
    let mut hits_after = 0u32;
    let mut accesses_after = 0u32;
    let mut switched = false;
    for _ in 0..200 {
        for k in 0..5u32 {
            if cache.access(k) == Lookup::Hit {
                if switched {
                    hits_after += 1;
                } else {
                    hits_before += 1;
                }
            } else {
                cache.insert(k);
            }
            if switched {
                accesses_after += 1;
            }
            if let Some(kind) = sel.observe_access(k) {
                cache.set_policy(kind);
                switched = true;
            }
        }
    }
    assert!(switched, "the selector never escaped LRU on its worst case");
    assert_eq!(hits_before, 0, "LRU hits 0% on a loop one key over capacity");
    let rate = f64::from(hits_after) / f64::from(accesses_after.max(1));
    assert!(rate > 0.5, "post-switch hit rate {rate} should clear 50%");
    assert_eq!(cache.len(), 4, "switching policies must not flush residency");
}
