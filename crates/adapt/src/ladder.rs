//! Shed-ladder autotuning against a demand-p99 SLO.
//!
//! The serve layer's ladder watermarks decide how much *speculation* the
//! server carries. Too generous and prefetch crowds the engine, inflating
//! demand latency; too stingy and the cache never warms, inflating demand
//! latency from the other side. [`LadderTuner`] holds one scalar — a
//! scale factor over the configured base ladder — and integrates it
//! against the measured demand p99: over the SLO, the scale shrinks
//! (speculation yields); comfortably under, it recovers toward (and past,
//! up to `max_scale`) the base.
//!
//! Safety: the tuner only ever resizes *prefetch* watermarks and quotas.
//! Demand admission is unconditional in the serve layer by construction —
//! no ladder value, including a scale of `min_scale`, can shed demand.

use serde::{Deserialize, Serialize};
use viz_core::{ControllerConfig, IntegralController};
use viz_serve::LadderConfig;

/// Knobs for [`LadderTuner`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LadderTunerConfig {
    /// The demand-p99 target, in nanoseconds.
    pub slo_p99_ns: u64,
    /// Integral gain on the log-ratio error, in scale units.
    pub gain: f64,
    /// Lower clamp on the scale (floor keeps a trickle of prefetch so the
    /// controller can observe recovery; watermarks also floor at 1).
    pub min_scale: f64,
    /// Upper clamp on the scale (how far past the base the ladder may
    /// open when latency is cheap).
    pub max_scale: f64,
}

impl LadderTunerConfig {
    /// Conservative defaults around a p99 SLO: gain 0.25, scale confined
    /// to `[1/16, 4]`.
    pub fn for_slo(slo_p99_ns: u64) -> Self {
        LadderTunerConfig { slo_p99_ns, gain: 0.25, min_scale: 1.0 / 16.0, max_scale: 4.0 }
    }
}

/// One-knob ladder controller (see module docs).
#[derive(Debug, Clone)]
pub struct LadderTuner {
    base: LadderConfig,
    cfg: LadderTunerConfig,
    ctl: IntegralController,
}

fn scaled(v: usize, scale: f64) -> usize {
    ((v as f64 * scale).round() as usize).max(1)
}

impl LadderTuner {
    /// Tune around `base` (typically the ladder the server started with).
    pub fn new(base: LadderConfig, cfg: LadderTunerConfig) -> Self {
        assert!(cfg.slo_p99_ns > 0, "SLO must be positive");
        let ctl = IntegralController::new(
            ControllerConfig::new(cfg.gain, cfg.min_scale, cfg.max_scale),
            1.0,
        );
        LadderTuner { base, cfg, ctl }
    }

    /// The current scale factor.
    pub fn scale(&self) -> f64 {
        self.ctl.output()
    }

    /// The SLO this tuner chases.
    pub fn slo_p99_ns(&self) -> u64 {
        self.cfg.slo_p99_ns
    }

    /// The ladder at the current scale.
    pub fn ladder(&self) -> LadderConfig {
        let s = self.ctl.output();
        LadderConfig {
            per_client_queue: scaled(self.base.per_client_queue, s),
            per_client_bytes: scaled(self.base.per_client_bytes, s),
            engine_queue_target: scaled(self.base.engine_queue_target, s),
            shed_queue_depth: scaled(self.base.shed_queue_depth, s),
            downgrade_queue_depth: scaled(self.base.downgrade_queue_depth, s),
            shed_resident_bytes: scaled(self.base.shed_resident_bytes, s),
        }
    }

    /// Feed one control period's measured demand p99; returns the ladder
    /// to install. A period with no demand samples (`p99_ns == 0`) leaves
    /// the scale untouched — silence is not evidence of health.
    pub fn observe_p99(&mut self, p99_ns: u64) -> LadderConfig {
        if p99_ns > 0 {
            // Latency above target must *shrink* the ladder: inverse sense.
            self.ctl.observe_inverse(p99_ns as f64, self.cfg.slo_p99_ns as f64);
        }
        self.ladder()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> LadderConfig {
        LadderConfig {
            per_client_queue: 256,
            per_client_bytes: 64 << 20,
            engine_queue_target: 1024,
            shed_queue_depth: 4096,
            downgrade_queue_depth: 2048,
            shed_resident_bytes: 1 << 30,
        }
    }

    #[test]
    fn over_slo_tightens_under_slo_reopens() {
        let mut t = LadderTuner::new(base(), LadderTunerConfig::for_slo(1_000_000));
        let l = t.observe_p99(4_000_000); // 4x over
        assert!(t.scale() < 1.0);
        assert!(l.per_client_queue < 256);
        assert!(l.shed_queue_depth < 4096);
        // Sustained recovery brings the ladder back.
        for _ in 0..50 {
            t.observe_p99(250_000);
        }
        assert!(t.scale() > 1.0, "cheap latency should reopen past base");
        assert!(t.ladder().per_client_queue > 256);
    }

    #[test]
    fn silence_is_a_noop() {
        let mut t = LadderTuner::new(base(), LadderTunerConfig::for_slo(1_000_000));
        t.observe_p99(4_000_000);
        let s = t.scale();
        t.observe_p99(0);
        assert_eq!(t.scale(), s);
    }

    #[test]
    fn scale_clamps_and_watermarks_floor_at_one() {
        let mut t = LadderTuner::new(base(), LadderTunerConfig::for_slo(1_000));
        for _ in 0..200 {
            t.observe_p99(1_000_000_000); // catastrophic latency
        }
        assert!((t.scale() - 1.0 / 16.0).abs() < 1e-12, "pinned at min_scale");
        let l = t.ladder();
        assert!(l.per_client_queue >= 1);
        assert!(l.downgrade_queue_depth >= 1);
        // Anti-windup: one healthy period moves the scale immediately.
        let before = t.scale();
        t.observe_p99(500);
        assert!(t.scale() > before);
    }

    #[test]
    fn converges_on_a_monotone_plant() {
        // Toy plant: p99 grows linearly with how open the ladder is.
        let slo = 1_000_000u64;
        let plant = |scale: f64| (1_500_000.0 * scale) as u64;
        let mut t = LadderTuner::new(base(), LadderTunerConfig::for_slo(slo));
        for _ in 0..300 {
            let p99 = plant(t.scale());
            t.observe_p99(p99);
        }
        let settled = plant(t.scale());
        let ratio = settled as f64 / slo as f64;
        assert!((0.9..=1.1).contains(&ratio), "settled at {ratio}x the SLO");
    }
}
