//! # viz-adapt — the closed-loop adaptive control plane
//!
//! Every knob that makes the paper's replacement policy *application-aware*
//! — the cache policy itself, the vicinal radius `r` (Eq. 6), the entropy
//! threshold σ, the serve layer's admission watermarks — is a startup
//! constant in the layers below. Meanwhile the telemetry crate records hit
//! rates, latencies, and sheds that nothing consumes online. This crate
//! closes the loop: it periodically snapshots live signals (cheaply — the
//! gauge/counter plane, never the consuming event rings) and drives three
//! actuators through small, individually testable controllers:
//!
//! - [`PolicySelector`] — per-cache policy selection from the replacement
//!   zoo, scored by [`viz_cache::ShadowSet`] over the recent key trace and
//!   debounced by [`viz_core::Hysteresis`]; actuated through
//!   [`viz_cache::CacheLevel::set_policy`] /
//!   [`viz_cache::Hierarchy::set_tier_policy`], which preserve residency.
//! - [`LadderTuner`] — one scale factor over the serve shed ladder's
//!   prefetch watermarks and per-client quotas, integrated against a
//!   demand-p99 SLO. Demand is **never** shed — the ladder only ever
//!   throttles speculation; tightening to zero stops prefetch, not frames.
//! - [`RadiusTuner`] — the paper's Eq. 6 radius model with its
//!   cache-ratio input as the control variable, so the vicinal sphere
//!   grows when demand misses say prediction is too narrow and shrinks
//!   when speculation is wasted. σ itself is driven by
//!   [`viz_core::SigmaController`], wired server-side via
//!   `Server::attach_adaptive_sigma`.
//!
//! All three are built on [`viz_core::IntegralController`] (log-ratio
//! error, output clamping as anti-windup) or [`viz_core::Hysteresis`]
//! (consecutive-win debouncing) — the shared controller vocabulary.
//!
//! [`ControlPlane`] composes them over a live [`viz_serve::Server`]: one
//! `tick()` per control period scrapes the wire-counter plane, consumes
//! the demand-RTT window, retunes the ladder, and publishes its own state
//! as gauges (`adapt_*`) so the next `Stats` scrape shows the controller
//! acting — observable by exactly the plane it observes with.

#![warn(missing_docs)]

pub mod ladder;
pub mod plane;
pub mod policy_select;
pub mod radius;
pub mod snapshot;

pub use ladder::{LadderTuner, LadderTunerConfig};
pub use plane::{ControlPlane, ControlPlaneConfig, TickReport};
pub use policy_select::{PolicySelector, PolicySelectorConfig};
pub use radius::{RadiusTuner, RadiusTunerConfig};
pub use snapshot::{SignalTracker, Signals};
