//! Per-cache policy selection by shadow scoring.
//!
//! The replacement zoo exists because no single policy wins every
//! interaction pattern: LRU collapses on loops one block larger than the
//! cache, LFU fossilizes after a phase change, MRU is the loop antidote
//! and nothing else. [`PolicySelector`] runs the candidates as shadow
//! caches over the live key trace ([`ShadowSet`]), closes a scoring
//! window every `window` accesses, and switches the real cache only when
//! one challenger beats the incumbent by a real margin, `patience`
//! windows in a row ([`Hysteresis`]) — a noisy window must never flush
//! residency state that took thousands of misses to build. The actuation
//! itself (e.g. [`viz_cache::Hierarchy::set_tier_policy`]) is left to the
//! caller, which knows which cache it is tuning.

use serde::{Deserialize, Serialize};
use std::hash::Hash;
use viz_cache::{PolicyKind, ShadowSet};
use viz_core::Hysteresis;

/// Knobs for [`PolicySelector`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolicySelectorConfig {
    /// Accesses per scoring window.
    pub window: u64,
    /// Windows a challenger must win consecutively before a switch.
    pub patience: u32,
    /// Minimum absolute hit-rate margin over the incumbent to count as a
    /// win (filters noise ties).
    pub min_gain: f64,
}

impl Default for PolicySelectorConfig {
    fn default() -> Self {
        PolicySelectorConfig { window: 512, patience: 3, min_gain: 0.02 }
    }
}

/// Shadow-scored, hysteresis-debounced policy chooser (see module docs).
pub struct PolicySelector<K: Copy + Eq + Hash> {
    shadows: ShadowSet<K>,
    kinds: Vec<PolicyKind>,
    hyst: Hysteresis,
    current: PolicyKind,
    cfg: PolicySelectorConfig,
    switches: u64,
}

impl<K: Copy + Eq + Hash + Ord + Send + 'static> PolicySelector<K> {
    /// Score `candidates` (must include `current`) at `capacity` entries.
    pub fn new(
        current: PolicyKind,
        candidates: &[PolicyKind],
        capacity: usize,
        cfg: PolicySelectorConfig,
    ) -> Self {
        assert!(cfg.window > 0, "scoring window must be positive");
        assert!(candidates.contains(&current), "the incumbent policy must be among the candidates");
        PolicySelector {
            shadows: ShadowSet::new(candidates, capacity),
            kinds: candidates.to_vec(),
            hyst: Hysteresis::new(cfg.patience),
            current,
            cfg,
            switches: 0,
        }
    }
}

impl<K: Copy + Eq + Hash> PolicySelector<K> {
    /// The policy currently selected.
    pub fn current(&self) -> PolicyKind {
        self.current
    }

    /// Switches taken so far.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Feed one access from the live trace. Returns `Some(kind)` exactly
    /// when the caller should switch the real cache to `kind` (the
    /// selector has already adopted it as the new incumbent).
    pub fn observe_access(&mut self, key: K) -> Option<PolicyKind> {
        self.shadows.observe(key);
        if self.shadows.window_accesses() < self.cfg.window {
            return None;
        }
        let scores = self.shadows.end_window();
        let incumbent =
            scores.iter().find(|s| s.kind == self.current).map(|s| s.hit_rate()).unwrap_or(0.0);
        // Best challenger strictly beating the incumbent by the margin.
        let winner = scores
            .iter()
            .enumerate()
            .filter(|(_, s)| s.kind != self.current)
            .filter(|(_, s)| s.hit_rate() >= incumbent + self.cfg.min_gain)
            .max_by(|(_, a), (_, b)| a.hit_rate().total_cmp(&b.hit_rate()))
            .map(|(i, _)| i);
        match self.hyst.observe(winner) {
            Some(arm) => {
                self.current = self.kinds[arm];
                self.switches += 1;
                Some(self.current)
            }
            None => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn selector(window: u64, patience: u32) -> PolicySelector<u32> {
        PolicySelector::new(
            PolicyKind::Lru,
            &[PolicyKind::Lru, PolicyKind::Mru, PolicyKind::Lirs],
            4,
            PolicySelectorConfig { window, patience, min_gain: 0.05 },
        )
    }

    /// Drive `n` laps of a 5-key loop over 4-entry caches: LRU hits 0%.
    fn drive_loop(sel: &mut PolicySelector<u32>, laps: usize) -> Vec<PolicyKind> {
        let mut switches = Vec::new();
        for _ in 0..laps {
            for k in 0..5u32 {
                if let Some(kind) = sel.observe_access(k) {
                    switches.push(kind);
                }
            }
        }
        switches
    }

    #[test]
    fn loop_pathology_switches_away_from_lru() {
        let mut sel = selector(50, 2);
        let switches = drive_loop(&mut sel, 100);
        assert!(!switches.is_empty(), "selector never escaped LRU on its worst case");
        assert_ne!(sel.current(), PolicyKind::Lru);
        // After the first decisive switch the incumbent should be stable:
        // no flapping back and forth.
        assert!(sel.switches() <= 2, "flapped {} times", sel.switches());
    }

    #[test]
    fn patience_delays_the_switch() {
        let mut impatient = selector(50, 1);
        let mut patient = selector(50, 4);
        // One lap short of what patience 4 needs (4 windows = 200 accesses
        // = 40 laps of 5).
        for _ in 0..30 {
            for k in 0..5u32 {
                impatient.observe_access(k);
                patient.observe_access(k);
            }
        }
        assert_ne!(impatient.current(), PolicyKind::Lru, "patience 1 switches fast");
        assert_eq!(patient.current(), PolicyKind::Lru, "patience 4 still watching");
    }

    #[test]
    fn friendly_workload_keeps_the_incumbent() {
        // Working set fits: every policy hits ~100%, no challenger can
        // clear the margin, so no switch ever fires.
        let mut sel = selector(40, 1);
        for _ in 0..100 {
            for k in 0..4u32 {
                assert_eq!(sel.observe_access(k), None);
            }
        }
        assert_eq!(sel.current(), PolicyKind::Lru);
        assert_eq!(sel.switches(), 0);
    }

    #[test]
    #[should_panic]
    fn incumbent_must_be_a_candidate() {
        let _ = PolicySelector::<u32>::new(
            PolicyKind::Arc,
            &[PolicyKind::Lru],
            4,
            PolicySelectorConfig::default(),
        );
    }
}
