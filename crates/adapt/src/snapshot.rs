//! Signal extraction from the wire-counter plane.
//!
//! The serve layer's `Stats` payload ([`viz_serve::Server::wire_counters`])
//! mixes monotone counters (sheds, errors, admissions) with point-in-time
//! gauges (queue depths, resident bytes, the demand-p99 window). A
//! controller wants *rates* for the former — "how many byte-quota sheds
//! since my last tick", not "since boot" — and current values for the
//! latter. [`SignalTracker`] does the bookkeeping: feed it each scrape and
//! it hands back [`Signals`] with deltas already taken.
//!
//! The tracker is deliberately ignorant of where the counters came from:
//! a local `Arc<Server>`, a `Stats` reply over TCP, or a cluster
//! telemetry scrape all produce the same `Vec<(String, u64)>` shape, so
//! one tracker per scraped endpoint is the whole protocol.

use std::collections::HashMap;

/// Controller-facing view of one scrape interval.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Signals {
    /// p99 of the demand-RTT window at scrape time, ns (gauge; 0 = no
    /// demand this window).
    pub demand_p99_ns: u64,
    /// Samples behind that p99 (gauge) — gate decisions on significance.
    pub demand_rtt_count: u64,
    /// Demand keys admitted this interval (delta).
    pub demand_admitted: u64,
    /// Demand replies that carried an error this interval (delta).
    pub demand_errors: u64,
    /// Prefetch admitted at full priority this interval (delta).
    pub prefetch_admitted: u64,
    /// Prefetch admitted downgraded this interval (delta).
    pub prefetch_downgraded: u64,
    /// Prefetch shed this interval (delta).
    pub prefetch_shed: u64,
    /// Per-reason shed deltas, `(wire name, delta)`, only reasons that
    /// fired this interval, sorted by name.
    pub shed_by_reason: Vec<(String, u64)>,
    /// Engine demand queue depth (gauge).
    pub queue_demand: u64,
    /// Engine prefetch queue depth (gauge).
    pub queue_prefetch: u64,
    /// Shared pool residency in bytes (gauge).
    pub pool_resident_bytes: u64,
    /// Fetch-engine hits answered from the pool this interval (delta of
    /// `fetch_coalesced` + completed work is engine-specific; this simply
    /// reports `fetch_completed`).
    pub fetch_completed: u64,
    /// Fetch-engine errors this interval (delta).
    pub fetch_errors: u64,
    /// Registered sessions (gauge).
    pub sessions_active: u64,
}

/// Delta bookkeeping across scrapes (see module docs).
#[derive(Debug, Default)]
pub struct SignalTracker {
    prev: HashMap<String, u64>,
}

const SHED_REASONS: [&str; 7] = [
    "serve_shed_breaker",
    "serve_shed_byte_quota",
    "serve_shed_draining",
    "serve_shed_entry_quota",
    "serve_shed_pool_pressure",
    "serve_shed_queue_depth",
    "serve_shed_stale_gen",
];

impl SignalTracker {
    /// A tracker with no history: the first `observe` reports the full
    /// counter values as the first interval's deltas.
    pub fn new() -> Self {
        Self::default()
    }

    fn delta(&self, counters: &HashMap<String, u64>, name: &str) -> u64 {
        let now = counters.get(name).copied().unwrap_or(0);
        let before = self.prev.get(name).copied().unwrap_or(0);
        now.saturating_sub(before)
    }

    fn gauge(counters: &HashMap<String, u64>, name: &str) -> u64 {
        counters.get(name).copied().unwrap_or(0)
    }

    /// Fold one scrape into the tracker and report the interval since the
    /// previous one.
    pub fn observe(&mut self, counters: &[(String, u64)]) -> Signals {
        let map: HashMap<String, u64> = counters.iter().map(|(n, v)| (n.clone(), *v)).collect();
        let mut shed_by_reason: Vec<(String, u64)> = SHED_REASONS
            .iter()
            .map(|&r| (r.to_string(), self.delta(&map, r)))
            .filter(|(_, d)| *d > 0)
            .collect();
        shed_by_reason.sort();
        let s = Signals {
            demand_p99_ns: Self::gauge(&map, "serve_demand_p99_ns"),
            demand_rtt_count: Self::gauge(&map, "serve_demand_rtt_count"),
            demand_admitted: self.delta(&map, "serve_demand_admitted"),
            demand_errors: self.delta(&map, "serve_demand_errors"),
            prefetch_admitted: self.delta(&map, "serve_prefetch_admitted"),
            prefetch_downgraded: self.delta(&map, "serve_prefetch_downgraded"),
            prefetch_shed: self.delta(&map, "serve_prefetch_shed"),
            shed_by_reason,
            queue_demand: Self::gauge(&map, "engine_queue_demand"),
            queue_prefetch: Self::gauge(&map, "engine_queue_prefetch"),
            pool_resident_bytes: Self::gauge(&map, "pool_resident_bytes"),
            fetch_completed: self.delta(&map, "fetch_completed"),
            fetch_errors: self.delta(&map, "fetch_errors"),
            sessions_active: Self::gauge(&map, "sessions_active"),
        };
        self.prev = map;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scrape(pairs: &[(&str, u64)]) -> Vec<(String, u64)> {
        pairs.iter().map(|(n, v)| (n.to_string(), *v)).collect()
    }

    #[test]
    fn deltas_are_per_interval_and_gauges_pass_through() {
        let mut t = SignalTracker::new();
        let s1 = t.observe(&scrape(&[
            ("serve_prefetch_shed", 10),
            ("serve_shed_entry_quota", 10),
            ("engine_queue_prefetch", 5),
            ("serve_demand_p99_ns", 1_000),
        ]));
        assert_eq!(s1.prefetch_shed, 10, "first interval reports from zero");
        assert_eq!(s1.queue_prefetch, 5);
        assert_eq!(s1.demand_p99_ns, 1_000);
        assert_eq!(s1.shed_by_reason, vec![("serve_shed_entry_quota".to_string(), 10)]);

        let s2 = t.observe(&scrape(&[
            ("serve_prefetch_shed", 13),
            ("serve_shed_entry_quota", 10),
            ("serve_shed_byte_quota", 3),
            ("engine_queue_prefetch", 2),
            ("serve_demand_p99_ns", 900),
        ]));
        assert_eq!(s2.prefetch_shed, 3, "delta, not total");
        assert_eq!(s2.queue_prefetch, 2, "gauge reflects now");
        assert_eq!(s2.demand_p99_ns, 900);
        assert_eq!(s2.shed_by_reason, vec![("serve_shed_byte_quota".to_string(), 3)]);
    }

    #[test]
    fn missing_counters_read_zero() {
        let mut t = SignalTracker::new();
        let s = t.observe(&scrape(&[]));
        assert_eq!(s, Signals::default());
    }

    #[test]
    fn counter_reset_saturates_instead_of_underflowing() {
        let mut t = SignalTracker::new();
        t.observe(&scrape(&[("serve_prefetch_shed", 100)]));
        let s = t.observe(&scrape(&[("serve_prefetch_shed", 40)]));
        assert_eq!(s.prefetch_shed, 0, "a restarted peer must not panic the controller");
    }
}
