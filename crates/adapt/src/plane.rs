//! The per-server control plane: scrape → decide → actuate → publish.
//!
//! [`ControlPlane`] owns the serve-side loop for one [`Server`]. Each
//! [`tick`](ControlPlane::tick) — one control period, driven by whatever
//! clock the host has (a bench loop, a node's heartbeat, a timer thread):
//!
//! 1. **Scrape** the wire-counter plane ([`Server::wire_counters`])
//!    through a [`SignalTracker`], getting per-interval deltas.
//! 2. **Consume** the demand-RTT window ([`Server::take_demand_window`])
//!    for the interval's p99 — windowed, so one bad boot minute can't
//!    haunt the controller forever.
//! 3. **Retune** the shed ladder through the [`LadderTuner`] and install
//!    it with [`Server::set_ladder`].
//! 4. **Publish** controller state as `adapt_*` gauges (optionally
//!    node-prefixed) so the next `Stats` scrape shows the loop acting.
//!
//! σ adaptation is per-session and stays where the session state lives
//! (`Server::attach_adaptive_sigma`); policy selection is per-cache and
//! runs where the keys flow ([`crate::PolicySelector`]). The plane
//! deliberately handles only the signals the server itself owns.

use crate::ladder::{LadderTuner, LadderTunerConfig};
use crate::snapshot::{SignalTracker, Signals};
use std::sync::Arc;
use viz_serve::{LadderConfig, Server};
use viz_telemetry::stats::set_gauge;

/// Knobs for [`ControlPlane`].
#[derive(Debug, Clone)]
pub struct ControlPlaneConfig {
    /// Ladder tuning (SLO, gain, scale clamps).
    pub ladder: LadderTunerConfig,
    /// Prefix for published gauges — distinct per node in one process
    /// (the gauge registry is process-global), e.g. `"node3_"`.
    pub gauge_prefix: String,
}

impl ControlPlaneConfig {
    /// A plane chasing `slo_p99_ns` with unprefixed gauges.
    pub fn for_slo(slo_p99_ns: u64) -> Self {
        ControlPlaneConfig {
            ladder: LadderTunerConfig::for_slo(slo_p99_ns),
            gauge_prefix: String::new(),
        }
    }
}

/// What one control period saw and did.
#[derive(Debug, Clone)]
pub struct TickReport {
    /// Interval signals (deltas + gauges).
    pub signals: Signals,
    /// Demand p99 over the consumed window, ns (0 = no demand).
    pub window_p99_ns: u64,
    /// Demand RTT samples in the window.
    pub window_count: u64,
    /// The ladder installed this period.
    pub ladder: LadderConfig,
    /// The tuner's scale after this period.
    pub scale: f64,
}

/// The per-server closed loop (see module docs).
pub struct ControlPlane {
    server: Arc<Server>,
    cfg: ControlPlaneConfig,
    tracker: SignalTracker,
    ladder: LadderTuner,
    ticks: u64,
}

impl ControlPlane {
    /// Attach a plane to a server; tuning starts from the server's
    /// *current* ladder as the base.
    pub fn new(server: Arc<Server>, cfg: ControlPlaneConfig) -> Self {
        let ladder = LadderTuner::new(server.ladder(), cfg.ladder);
        ControlPlane { server, cfg, tracker: SignalTracker::new(), ladder, ticks: 0 }
    }

    /// The server under control.
    pub fn server(&self) -> &Arc<Server> {
        &self.server
    }

    /// Control periods run so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Run one control period (see module docs).
    pub fn tick(&mut self) -> TickReport {
        self.ticks += 1;
        let signals = self.tracker.observe(&self.server.wire_counters());
        let window = self.server.take_demand_window();
        let (window_p99_ns, window_count) =
            if window.count() > 0 { (window.percentile(0.99), window.count()) } else { (0, 0) };
        let ladder = self.ladder.observe_p99(window_p99_ns);
        self.server.set_ladder(ladder);

        let p = &self.cfg.gauge_prefix;
        set_gauge(&format!("{p}adapt_ticks"), self.ticks);
        set_gauge(&format!("{p}adapt_ladder_scale_milli"), (self.ladder.scale() * 1e3) as u64);
        set_gauge(&format!("{p}adapt_window_p99_ns"), window_p99_ns);
        set_gauge(&format!("{p}adapt_window_demand"), window_count);
        set_gauge(&format!("{p}adapt_interval_shed"), signals.prefetch_shed);
        set_gauge(&format!("{p}adapt_interval_demand_errors"), signals.demand_errors);

        TickReport { signals, window_p99_ns, window_count, ladder, scale: self.ladder.scale() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;
    use std::time::Duration;
    use viz_fetch::{BlockPool, FetchConfig, FetchEngine, InstrumentedSource};
    use viz_serve::ServeConfig;
    use viz_volume::{BlockId, BlockKey, MemBlockStore};

    /// The gauge registry is process-global; serialize tests that touch it.
    static GUARD: Mutex<()> = Mutex::new(());

    fn key(i: u32) -> BlockKey {
        BlockKey::scalar(BlockId(i))
    }

    fn det_server(n: u32) -> Arc<Server> {
        let store = MemBlockStore::new();
        for i in 0..n {
            store.insert(key(i), vec![i as f32; 8]);
        }
        let src = Arc::new(InstrumentedSource::new(Arc::new(store), Duration::ZERO));
        let engine = FetchEngine::spawn(
            src,
            Arc::new(BlockPool::new()),
            FetchConfig { workers: 0, ..FetchConfig::default() },
        );
        Server::new(Arc::new(engine), ServeConfig::default())
    }

    #[test]
    fn tick_scrapes_tunes_and_publishes() {
        let _g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
        let server = det_server(16);
        let id = server.open_session("v").unwrap();
        let mut plane = ControlPlane::new(server.clone(), ControlPlaneConfig::for_slo(1_000_000));

        // Serve one demand frame so the window has a sample.
        let sub = server.submit(id, 0, vec![key(1)], vec![(key(2), 1.0)]).unwrap();
        server.pump();
        server.engine().run_until_idle();
        let replies = sub.collect_ready(&server);
        assert!(replies[0].result.is_ok());

        let report = plane.tick();
        assert_eq!(report.window_count, 1);
        assert_eq!(report.signals.demand_admitted, 1);
        assert_eq!(report.signals.prefetch_admitted, 1);
        assert_eq!(report.signals.demand_errors, 0);
        assert_eq!(plane.ticks(), 1);
        // Published state is visible on the very next scrape.
        let stats = server.wire_counters();
        let g = |name: &str| stats.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
        assert_eq!(g("adapt_ticks"), Some(1));
        assert!(g("adapt_ladder_scale_milli").is_some());
        viz_telemetry::stats::clear_gauges();
    }

    #[test]
    fn idle_ticks_leave_the_ladder_alone() {
        let _g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
        let server = det_server(4);
        let before = server.ladder();
        let mut plane = ControlPlane::new(server.clone(), ControlPlaneConfig::for_slo(1_000_000));
        for _ in 0..5 {
            let r = plane.tick();
            assert_eq!(r.window_p99_ns, 0);
            assert!((r.scale - 1.0).abs() < 1e-12);
        }
        assert_eq!(server.ladder(), before, "no demand ⇒ no retuning");
        viz_telemetry::stats::clear_gauges();
    }

    #[test]
    fn node_prefix_separates_gauges() {
        let _g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
        viz_telemetry::stats::clear_gauges();
        let server = det_server(4);
        let mut cfg = ControlPlaneConfig::for_slo(1_000_000);
        cfg.gauge_prefix = "n7_".to_string();
        let mut plane = ControlPlane::new(server, cfg);
        plane.tick();
        assert_eq!(viz_telemetry::stats::gauge("n7_adapt_ticks"), Some(1));
        assert_eq!(viz_telemetry::stats::gauge("adapt_ticks"), None);
        viz_telemetry::stats::clear_gauges();
    }
}
