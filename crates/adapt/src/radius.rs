//! The vicinal radius `r` as a control variable.
//!
//! Eq. 6 computes the radius that makes the aggregated vicinal frustum
//! exactly fill fast memory — *assuming* the configured cache ratio
//! reflects what the workload can actually keep resident. Under
//! contention (other sessions, hostile traffic) the effective share is
//! smaller; after a phase change it may be larger. [`RadiusTuner`] keeps
//! the paper's model but makes its cache-ratio input the integrator
//! state: demand misses above target mean prediction is too narrow —
//! inflate the effective ratio and the radius grows with it (Eq. 6 is
//! monotone in ρ); misses below target with wasted speculation mean the
//! sphere can shrink and return the I/O budget.

use serde::{Deserialize, Serialize};
use viz_core::{ControllerConfig, IntegralController, RadiusModel};

/// Knobs for [`RadiusTuner`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RadiusTunerConfig {
    /// Demand fast-miss rate to hold (e.g. 0.05 = 5% of demand misses
    /// fast memory).
    pub target_miss_rate: f64,
    /// Integral gain on the log-ratio error, in cache-ratio units.
    pub gain: f64,
    /// Lower clamp on the effective cache ratio.
    pub min_ratio: f64,
    /// Upper clamp on the effective cache ratio.
    pub max_ratio: f64,
}

impl RadiusTunerConfig {
    /// Defaults: hold a 5% demand miss rate, ratio confined to
    /// `[ρ/4, min(4ρ, 1)]` around the configured `rho`.
    pub fn around(rho: f64, target_miss_rate: f64) -> Self {
        RadiusTunerConfig {
            target_miss_rate,
            gain: 0.1,
            min_ratio: (rho * 0.25).max(1e-3),
            max_ratio: (rho * 4.0).min(1.0),
        }
    }
}

/// Eq. 6 with a feedback-driven effective cache ratio (see module docs).
#[derive(Debug, Clone)]
pub struct RadiusTuner {
    model: RadiusModel,
    cfg: RadiusTunerConfig,
    ctl: IntegralController,
}

impl RadiusTuner {
    /// Tune around `model` (its `cache_ratio` is the starting point).
    pub fn new(model: RadiusModel, cfg: RadiusTunerConfig) -> Self {
        assert!(cfg.target_miss_rate > 0.0 && cfg.target_miss_rate < 1.0);
        let ctl = IntegralController::new(
            ControllerConfig::new(cfg.gain, cfg.min_ratio, cfg.max_ratio),
            model.cache_ratio,
        );
        RadiusTuner { model, cfg, ctl }
    }

    /// The effective cache ratio the radius is currently computed from.
    pub fn cache_ratio(&self) -> f64 {
        self.ctl.output()
    }

    /// The model at the current effective ratio.
    pub fn model(&self) -> RadiusModel {
        RadiusModel { cache_ratio: self.ctl.output(), ..self.model }
    }

    /// Eq. 6 at view distance `d`, using the tuned ratio.
    pub fn radius_at(&self, d: f64) -> f64 {
        self.model().optimal_radius(d)
    }

    /// Feed one control period's measured demand fast-miss rate; returns
    /// the updated effective cache ratio. A zero miss rate reads as
    /// "prediction over-covers" and shrinks the sphere (floored so the
    /// log-ratio stays finite).
    pub fn observe_miss_rate(&mut self, miss_rate: f64) -> f64 {
        let actual = miss_rate.clamp(1e-4, 1.0);
        self.ctl.observe(actual, self.cfg.target_miss_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuner() -> RadiusTuner {
        let model = RadiusModel::new(0.25, 0.5);
        RadiusTuner::new(model, RadiusTunerConfig::around(0.25, 0.05))
    }

    #[test]
    fn misses_grow_the_sphere() {
        let mut t = tuner();
        let r0 = t.radius_at(2.2);
        for _ in 0..10 {
            t.observe_miss_rate(0.4); // way over the 5% target
        }
        assert!(t.cache_ratio() > 0.25);
        assert!(t.radius_at(2.2) > r0, "radius must grow with the effective ratio");
    }

    #[test]
    fn over_coverage_shrinks_it() {
        let mut t = tuner();
        let r0 = t.radius_at(2.2);
        for _ in 0..10 {
            t.observe_miss_rate(0.0); // no misses at all: speculation is over-wide
        }
        assert!(t.cache_ratio() < 0.25);
        assert!(t.radius_at(2.2) <= r0);
    }

    #[test]
    fn ratio_stays_clamped_with_no_windup() {
        let mut t = tuner();
        for _ in 0..500 {
            t.observe_miss_rate(1.0);
        }
        assert!((t.cache_ratio() - 1.0).abs() < 1e-9, "max_ratio = min(4ρ,1) = 1");
        // One over-coverage period reverses immediately (clamped
        // integrator holds no backlog).
        let before = t.cache_ratio();
        t.observe_miss_rate(0.001);
        assert!(t.cache_ratio() < before);
    }

    #[test]
    fn on_target_is_a_fixed_point() {
        let mut t = tuner();
        let before = t.cache_ratio();
        t.observe_miss_rate(0.05);
        assert!((t.cache_ratio() - before).abs() < 1e-12);
    }
}
