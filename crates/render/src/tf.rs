//! Transfer functions: the *data-dependent* interaction of §III-A.
//!
//! A transfer function maps scalar values to color and opacity; tuning it
//! is the canonical data-dependent operation that changes which blocks
//! matter without moving the camera.

use serde::{Deserialize, Serialize};

/// Linear RGBA color, components in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rgba {
    /// Red component.
    pub r: f32,
    /// Green component.
    pub g: f32,
    /// Blue component.
    pub b: f32,
    /// Opacity (1 = opaque).
    pub a: f32,
}

impl Rgba {
    /// Construct; components are clamped to `[0, 1]`.
    pub fn new(r: f32, g: f32, b: f32, a: f32) -> Self {
        Rgba {
            r: r.clamp(0.0, 1.0),
            g: g.clamp(0.0, 1.0),
            b: b.clamp(0.0, 1.0),
            a: a.clamp(0.0, 1.0),
        }
    }

    /// Fully transparent black.
    pub const TRANSPARENT: Rgba = Rgba { r: 0.0, g: 0.0, b: 0.0, a: 0.0 };

    /// Component-wise linear interpolation.
    pub fn lerp(self, other: Rgba, t: f32) -> Rgba {
        let l = |a: f32, b: f32| a + (b - a) * t;
        Rgba {
            r: l(self.r, other.r),
            g: l(self.g, other.g),
            b: l(self.b, other.b),
            a: l(self.a, other.a),
        }
    }
}

/// A control point: scalar position (normalized to `[0, 1]`) plus color.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControlPoint {
    /// Normalized scalar position in `[0, 1]`.
    pub x: f32,
    /// Color/opacity at that position.
    pub color: Rgba,
}

/// Piecewise-linear transfer function over the normalized scalar range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferFunction {
    points: Vec<ControlPoint>,
    /// Scalar range mapped onto `[0, 1]` before lookup.
    pub range: (f32, f32),
}

impl TransferFunction {
    /// Build from control points (sorted by `x` internally). Needs ≥ 1.
    pub fn new(mut points: Vec<ControlPoint>, range: (f32, f32)) -> Self {
        assert!(!points.is_empty(), "transfer function needs control points");
        assert!(range.0 <= range.1, "invalid scalar range");
        points.sort_by(|a, b| a.x.partial_cmp(&b.x).unwrap());
        TransferFunction { points, range }
    }

    /// Grayscale ramp with linearly increasing opacity.
    pub fn grayscale(range: (f32, f32)) -> Self {
        TransferFunction::new(
            vec![
                ControlPoint { x: 0.0, color: Rgba::new(0.0, 0.0, 0.0, 0.0) },
                ControlPoint { x: 1.0, color: Rgba::new(1.0, 1.0, 1.0, 0.8) },
            ],
            range,
        )
    }

    /// Black-body "heat" ramp (transparent → red → yellow → white), the
    /// look of the paper's combustion renderings.
    pub fn heat(range: (f32, f32)) -> Self {
        TransferFunction::new(
            vec![
                ControlPoint { x: 0.0, color: Rgba::new(0.0, 0.0, 0.0, 0.0) },
                ControlPoint { x: 0.25, color: Rgba::new(0.5, 0.0, 0.0, 0.05) },
                ControlPoint { x: 0.5, color: Rgba::new(1.0, 0.2, 0.0, 0.25) },
                ControlPoint { x: 0.75, color: Rgba::new(1.0, 0.8, 0.0, 0.55) },
                ControlPoint { x: 1.0, color: Rgba::new(1.0, 1.0, 1.0, 0.9) },
            ],
            range,
        )
    }

    /// A narrow opacity peak around `center` (normalized), emulating an
    /// isosurface-style rendering; everything else transparent.
    pub fn iso_peak(center: f32, width: f32, color: Rgba, range: (f32, f32)) -> Self {
        let c = center.clamp(0.0, 1.0);
        let w = width.max(1e-4);
        TransferFunction::new(
            vec![
                ControlPoint { x: 0.0, color: Rgba::TRANSPARENT },
                ControlPoint { x: (c - w).max(0.0), color: Rgba::TRANSPARENT },
                ControlPoint { x: c, color },
                ControlPoint { x: (c + w).min(1.0), color: Rgba::TRANSPARENT },
                ControlPoint { x: 1.0, color: Rgba::TRANSPARENT },
            ],
            range,
        )
    }

    /// Perceptually ordered blue→green→yellow ramp (viridis-like control
    /// points) with linear opacity — the standard scientific colormap.
    pub fn viridis(range: (f32, f32)) -> Self {
        let pts = [
            (0.0, 0.267, 0.005, 0.329),
            (0.25, 0.229, 0.322, 0.546),
            (0.5, 0.128, 0.567, 0.551),
            (0.75, 0.369, 0.789, 0.383),
            (1.0, 0.993, 0.906, 0.144),
        ];
        TransferFunction::new(
            pts.iter()
                .map(|&(x, r, g, b)| ControlPoint { x, color: Rgba::new(r, g, b, 0.85 * x) })
                .collect(),
            range,
        )
    }

    /// Blue→white→red diverging map centered at the range midpoint, for
    /// signed anomaly fields; opacity grows away from the (transparent)
    /// center.
    pub fn diverging(range: (f32, f32)) -> Self {
        TransferFunction::new(
            vec![
                ControlPoint { x: 0.0, color: Rgba::new(0.02, 0.19, 0.38, 0.8) },
                ControlPoint { x: 0.25, color: Rgba::new(0.26, 0.58, 0.76, 0.4) },
                ControlPoint { x: 0.5, color: Rgba::new(1.0, 1.0, 1.0, 0.0) },
                ControlPoint { x: 0.75, color: Rgba::new(0.94, 0.54, 0.38, 0.4) },
                ControlPoint { x: 1.0, color: Rgba::new(0.40, 0.0, 0.12, 0.8) },
            ],
            range,
        )
    }

    /// Look up the color for a raw scalar value.
    pub fn sample(&self, value: f32) -> Rgba {
        let (lo, hi) = self.range;
        let x = if hi > lo { ((value - lo) / (hi - lo)).clamp(0.0, 1.0) } else { 0.0 };
        let pts = &self.points;
        if x <= pts[0].x {
            return pts[0].color;
        }
        if x >= pts[pts.len() - 1].x {
            return pts[pts.len() - 1].color;
        }
        let i = pts.partition_point(|p| p.x <= x);
        let (a, b) = (&pts[i - 1], &pts[i]);
        let span = (b.x - a.x).max(1e-12);
        a.color.lerp(b.color, (x - a.x) / span)
    }

    /// Maximum opacity the function assigns to any value in `[lo, hi]`.
    ///
    /// Piecewise linearity means the maximum is attained at an interval
    /// endpoint or at a control point inside the interval — O(points), no
    /// sampling. Drives opacity-based block culling: a block whose
    /// value range maps to zero opacity cannot contribute to the image.
    pub fn max_opacity_in(&self, lo: f32, hi: f32) -> f32 {
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let mut best = self.sample(lo).a.max(self.sample(hi).a);
        let (rlo, rhi) = self.range;
        let span = (rhi - rlo).max(f32::MIN_POSITIVE);
        for p in &self.points {
            let value = rlo + p.x * span;
            if value >= lo && value <= hi {
                best = best.max(p.color.a);
            }
        }
        best
    }

    /// Mean opacity this transfer function assigns to a set of samples —
    /// used by query-driven importance to re-weight blocks when the user
    /// retunes visibility (a data-dependent operation).
    pub fn mean_opacity(&self, values: &[f32]) -> f64 {
        if values.is_empty() {
            return 0.0;
        }
        values.iter().map(|&v| self.sample(v).a as f64).sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rgba_clamps() {
        let c = Rgba::new(2.0, -1.0, 0.5, 3.0);
        assert_eq!((c.r, c.g, c.b, c.a), (1.0, 0.0, 0.5, 1.0));
    }

    #[test]
    fn grayscale_endpoints() {
        let tf = TransferFunction::grayscale((0.0, 10.0));
        assert_eq!(tf.sample(0.0).a, 0.0);
        let top = tf.sample(10.0);
        assert_eq!(top.r, 1.0);
        assert!((top.a - 0.8).abs() < 1e-6);
    }

    #[test]
    fn midpoint_interpolates() {
        let tf = TransferFunction::grayscale((0.0, 1.0));
        let mid = tf.sample(0.5);
        assert!((mid.r - 0.5).abs() < 1e-6);
        assert!((mid.a - 0.4).abs() < 1e-6);
    }

    #[test]
    fn out_of_range_clamps_to_endpoints() {
        let tf = TransferFunction::grayscale((0.0, 1.0));
        assert_eq!(tf.sample(-5.0), tf.sample(0.0));
        assert_eq!(tf.sample(99.0), tf.sample(1.0));
    }

    #[test]
    fn iso_peak_is_localized() {
        let tf = TransferFunction::iso_peak(0.5, 0.05, Rgba::new(1.0, 0.0, 0.0, 1.0), (0.0, 1.0));
        assert_eq!(tf.sample(0.5).a, 1.0);
        assert_eq!(tf.sample(0.3).a, 0.0);
        assert_eq!(tf.sample(0.7).a, 0.0);
    }

    #[test]
    fn degenerate_range_is_safe() {
        let tf = TransferFunction::grayscale((2.0, 2.0));
        let c = tf.sample(2.0);
        assert!(c.r.is_finite());
    }

    #[test]
    fn heat_opacity_is_monotone() {
        let tf = TransferFunction::heat((0.0, 1.0));
        let mut prev = -1.0f32;
        for i in 0..=20 {
            let a = tf.sample(i as f32 / 20.0).a;
            assert!(a >= prev - 1e-6, "opacity dipped at {i}");
            prev = a;
        }
    }

    #[test]
    fn mean_opacity_reflects_visibility() {
        let tf = TransferFunction::iso_peak(0.8, 0.1, Rgba::new(1.0, 1.0, 1.0, 1.0), (0.0, 1.0));
        let visible = vec![0.8f32; 100];
        let hidden = vec![0.1f32; 100];
        assert!(tf.mean_opacity(&visible) > 0.9);
        assert_eq!(tf.mean_opacity(&hidden), 0.0);
        assert_eq!(tf.mean_opacity(&[]), 0.0);
    }

    #[test]
    fn unsorted_control_points_are_sorted() {
        let tf = TransferFunction::new(
            vec![
                ControlPoint { x: 1.0, color: Rgba::new(1.0, 0.0, 0.0, 1.0) },
                ControlPoint { x: 0.0, color: Rgba::TRANSPARENT },
            ],
            (0.0, 1.0),
        );
        assert_eq!(tf.sample(0.0).a, 0.0);
        assert_eq!(tf.sample(1.0).a, 1.0);
    }

    #[test]
    fn viridis_is_monotone_in_luminance_and_opacity() {
        let tf = TransferFunction::viridis((0.0, 1.0));
        let mut prev_a = -1.0f32;
        let mut prev_lum = -1.0f32;
        for i in 0..=10 {
            let c = tf.sample(i as f32 / 10.0);
            let lum = 0.2126 * c.r + 0.7152 * c.g + 0.0722 * c.b;
            assert!(c.a >= prev_a - 1e-6, "opacity dipped at {i}");
            assert!(lum >= prev_lum - 1e-3, "luminance dipped at {i}");
            prev_a = c.a;
            prev_lum = lum;
        }
    }

    #[test]
    fn diverging_center_is_transparent_ends_opaque() {
        let tf = TransferFunction::diverging((-1.0, 1.0));
        assert_eq!(tf.sample(0.0).a, 0.0);
        assert!((tf.sample(-1.0).a - 0.8).abs() < 1e-6);
        assert!((tf.sample(1.0).a - 0.8).abs() < 1e-6);
        // Symmetric opacity.
        assert!((tf.sample(-0.5).a - tf.sample(0.5).a).abs() < 1e-6);
    }

    #[test]
    #[should_panic]
    fn empty_points_panic() {
        TransferFunction::new(vec![], (0.0, 1.0));
    }
}
