//! Image-quality metrics: MSE / PSNR / SSIM-lite.
//!
//! Used to *quantify* rendering fidelity claims instead of eyeballing them
//! — e.g. how much image quality the §III-B LOD baseline actually costs at
//! each pyramid level, and regression guards on the ray caster.

use crate::image::Image;

/// Mean squared error over RGB channels (images must match in size).
pub fn mse(a: &Image, b: &Image) -> f64 {
    assert_eq!(a.width(), b.width(), "width mismatch");
    assert_eq!(a.height(), b.height(), "height mismatch");
    let mut sum = 0.0f64;
    let n = (a.width() * a.height() * 3) as f64;
    for y in 0..a.height() {
        for x in 0..a.width() {
            let (pa, pb) = (a.get(x, y), b.get(x, y));
            for k in 0..3 {
                let d = (pa[k] - pb[k]) as f64;
                sum += d * d;
            }
        }
    }
    sum / n
}

/// Peak signal-to-noise ratio in dB (peak = 1.0). Identical images give
/// `f64::INFINITY`.
pub fn psnr(a: &Image, b: &Image) -> f64 {
    let e = mse(a, b);
    if e <= 0.0 {
        f64::INFINITY
    } else {
        -10.0 * e.log10()
    }
}

/// Global-statistics SSIM (single window over the whole image, luminance
/// only): a lightweight structural-similarity score in `[-1, 1]`.
///
/// Not the windowed SSIM of Wang et al. — adequate for ranking rendering
/// configurations, which is all the benches need.
pub fn ssim_global(a: &Image, b: &Image) -> f64 {
    assert_eq!(a.width(), b.width(), "width mismatch");
    assert_eq!(a.height(), b.height(), "height mismatch");
    let lum = |img: &Image| -> Vec<f64> {
        let mut out = Vec::with_capacity(img.width() * img.height());
        for y in 0..img.height() {
            for x in 0..img.width() {
                let p = img.get(x, y);
                out.push(0.2126 * p[0] as f64 + 0.7152 * p[1] as f64 + 0.0722 * p[2] as f64);
            }
        }
        out
    };
    let (la, lb) = (lum(a), lum(b));
    let n = la.len() as f64;
    let (ma, mb) = (la.iter().sum::<f64>() / n, lb.iter().sum::<f64>() / n);
    let (mut va, mut vb, mut cov) = (0.0, 0.0, 0.0);
    for (&x, &y) in la.iter().zip(&lb) {
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
        cov += (x - ma) * (y - mb);
    }
    va /= n;
    vb /= n;
    cov /= n;
    // Standard stabilizers for dynamic range 1.
    let (c1, c2) = (0.01f64.powi(2), 0.03f64.powi(2));
    ((2.0 * ma * mb + c1) * (2.0 * cov + c2)) / ((ma * ma + mb * mb + c1) * (va + vb + c2))
}

/// Box-filter downsample by an integer factor (for pyramid comparisons).
pub fn downsample(img: &Image, factor: usize) -> Image {
    assert!(factor >= 1, "factor must be >= 1");
    let w = (img.width() / factor).max(1);
    let h = (img.height() / factor).max(1);
    let mut out = Image::new(w, h);
    for oy in 0..h {
        for ox in 0..w {
            let mut acc = [0.0f32; 3];
            let mut count = 0u32;
            for dy in 0..factor {
                for dx in 0..factor {
                    let (sx, sy) = (ox * factor + dx, oy * factor + dy);
                    if sx < img.width() && sy < img.height() {
                        let p = img.get(sx, sy);
                        for k in 0..3 {
                            acc[k] += p[k];
                        }
                        count += 1;
                    }
                }
            }
            let c = count.max(1) as f32;
            out.set(ox, oy, crate::tf::Rgba::new(acc[0] / c, acc[1] / c, acc[2] / c, 1.0));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tf::Rgba;

    fn solid(w: usize, h: usize, v: f32) -> Image {
        let mut img = Image::new(w, h);
        for y in 0..h {
            for x in 0..w {
                img.set(x, y, Rgba::new(v, v, v, 1.0));
            }
        }
        img
    }

    #[test]
    fn identical_images_have_zero_mse_infinite_psnr() {
        let a = solid(8, 8, 0.5);
        assert_eq!(mse(&a, &a), 0.0);
        assert_eq!(psnr(&a, &a), f64::INFINITY);
        assert!((ssim_global(&a, &a) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn known_mse() {
        let a = solid(4, 4, 0.0);
        let b = solid(4, 4, 0.5);
        assert!((mse(&a, &b) - 0.25).abs() < 1e-9);
        assert!((psnr(&a, &b) - 6.0206).abs() < 0.01);
    }

    #[test]
    fn psnr_ranks_degradation() {
        let base = solid(8, 8, 0.5);
        let slight = solid(8, 8, 0.52);
        let heavy = solid(8, 8, 0.9);
        assert!(psnr(&base, &slight) > psnr(&base, &heavy));
    }

    #[test]
    fn ssim_detects_structure_loss() {
        // A gradient vs its mean: same brightness, no structure.
        let mut grad = Image::new(16, 16);
        for y in 0..16 {
            for x in 0..16 {
                let v = x as f32 / 15.0;
                grad.set(x, y, Rgba::new(v, v, v, 1.0));
            }
        }
        let flat = solid(16, 16, 0.5);
        let s = ssim_global(&grad, &flat);
        assert!(s < 0.5, "flat image should lose structure: {s}");
        assert!(ssim_global(&grad, &grad) > 0.999);
    }

    #[test]
    fn downsample_averages() {
        let mut img = Image::new(4, 4);
        for y in 0..4 {
            for x in 0..4 {
                img.set(x, y, Rgba::new(if x < 2 { 0.0 } else { 1.0 }, 0.5, 0.5, 1.0));
            }
        }
        let d = downsample(&img, 2);
        assert_eq!(d.width(), 2);
        assert_eq!(d.height(), 2);
        assert!((d.get(0, 0)[0] - 0.0).abs() < 1e-6);
        assert!((d.get(1, 0)[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn downsample_factor_one_is_identity() {
        let img = solid(5, 3, 0.3);
        assert_eq!(downsample(&img, 1), img);
    }

    #[test]
    #[should_panic]
    fn size_mismatch_panics() {
        mse(&solid(4, 4, 0.0), &solid(4, 5, 0.0));
    }
}
