//! Simple RGB image buffer with PPM output.

use crate::tf::Rgba;

/// A row-major RGB image (f32 components in `[0, 1]`).
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    width: usize,
    height: usize,
    pixels: Vec<[f32; 3]>,
}

impl Image {
    /// Black image of the given size.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        Image { width, height, pixels: vec![[0.0; 3]; width * height] }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Set pixel `(x, y)` ((0,0) = top-left) from an RGBA sample
    /// (alpha is dropped — compositing happens in the ray caster).
    pub fn set(&mut self, x: usize, y: usize, c: Rgba) {
        let i = y * self.width + x;
        self.pixels[i] = [c.r, c.g, c.b];
    }

    /// Get pixel `(x, y)` as RGB.
    pub fn get(&self, x: usize, y: usize) -> [f32; 3] {
        self.pixels[y * self.width + x]
    }

    /// Mutable access to a row (for parallel rendering).
    pub fn rows_mut(&mut self) -> std::slice::ChunksMut<'_, [f32; 3]> {
        self.pixels.chunks_mut(self.width)
    }

    /// Mean luminance (diagnostic / tests).
    pub fn mean_luminance(&self) -> f64 {
        if self.pixels.is_empty() {
            return 0.0;
        }
        let s: f64 = self
            .pixels
            .iter()
            .map(|p| 0.2126 * p[0] as f64 + 0.7152 * p[1] as f64 + 0.0722 * p[2] as f64)
            .sum();
        s / self.pixels.len() as f64
    }

    /// Number of pixels brighter than `threshold` luminance.
    pub fn bright_pixels(&self, threshold: f64) -> usize {
        self.pixels
            .iter()
            .filter(|p| {
                0.2126 * p[0] as f64 + 0.7152 * p[1] as f64 + 0.0722 * p[2] as f64 > threshold
            })
            .count()
    }

    /// Encode as binary PPM (P6).
    pub fn to_ppm(&self) -> Vec<u8> {
        let mut out = format!("P6\n{} {}\n255\n", self.width, self.height).into_bytes();
        for p in &self.pixels {
            for &c in p {
                out.push((c.clamp(0.0, 1.0) * 255.0).round() as u8);
            }
        }
        out
    }

    /// Write a PPM file.
    pub fn save_ppm(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_ppm())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_black() {
        let img = Image::new(4, 3);
        assert_eq!(img.get(0, 0), [0.0; 3]);
        assert_eq!(img.mean_luminance(), 0.0);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut img = Image::new(4, 3);
        img.set(2, 1, Rgba::new(0.5, 0.25, 1.0, 0.9));
        assert_eq!(img.get(2, 1), [0.5, 0.25, 1.0]);
    }

    #[test]
    fn ppm_header_and_size() {
        let img = Image::new(5, 7);
        let ppm = img.to_ppm();
        assert!(ppm.starts_with(b"P6\n5 7\n255\n"));
        assert_eq!(ppm.len(), 11 + 5 * 7 * 3);
    }

    #[test]
    fn ppm_encodes_full_white() {
        let mut img = Image::new(1, 1);
        img.set(0, 0, Rgba::new(1.0, 1.0, 1.0, 1.0));
        let ppm = img.to_ppm();
        let n = ppm.len();
        assert_eq!(&ppm[n - 3..], &[255, 255, 255]);
    }

    #[test]
    fn bright_pixel_count() {
        let mut img = Image::new(2, 2);
        img.set(0, 0, Rgba::new(1.0, 1.0, 1.0, 1.0));
        img.set(1, 1, Rgba::new(0.1, 0.1, 0.1, 1.0));
        assert_eq!(img.bright_pixels(0.5), 1);
        assert_eq!(img.bright_pixels(0.01), 2);
    }

    #[test]
    fn rows_mut_covers_image() {
        let mut img = Image::new(3, 4);
        let rows: Vec<_> = img.rows_mut().collect();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].len(), 3);
    }

    #[test]
    #[should_panic]
    fn zero_size_panics() {
        Image::new(0, 4);
    }
}
