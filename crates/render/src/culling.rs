//! Opacity-based block culling: the data-dependent companion to the
//! geometric visibility test.
//!
//! A block whose entire value range maps to zero opacity under the current
//! transfer function cannot contribute to the image, no matter how squarely
//! it sits in the frustum. Culling those blocks shrinks the demand working
//! set exactly the way §IV-C's importance filter shrinks the prefetch set —
//! and it retunes instantly when the user edits the transfer function,
//! because it needs only per-block min/max, not voxels.

use crate::raycast::frame_working_set;
use crate::tf::TransferFunction;
use viz_geom::CameraPose;
use viz_volume::{BlockId, BlockStats, BrickLayout};

/// Blocks of the frame working set that can actually contribute color:
/// geometric visibility (Eq. 1) ∩ nonzero max opacity over the block's
/// value range.
pub fn contributing_working_set(
    pose: &CameraPose,
    layout: &BrickLayout,
    stats: &[BlockStats],
    tf: &TransferFunction,
) -> Vec<BlockId> {
    assert_eq!(stats.len(), layout.num_blocks(), "one BlockStats per block");
    frame_working_set(pose, layout)
        .into_iter()
        .filter(|b| tf.max_opacity_in(stats[b.index()].min, stats[b.index()].max) > 0.0)
        .collect()
}

/// Fraction of the geometric working set the transfer function culls
/// (diagnostic for reports).
pub fn cull_fraction(
    pose: &CameraPose,
    layout: &BrickLayout,
    stats: &[BlockStats],
    tf: &TransferFunction,
) -> f64 {
    let geo = frame_working_set(pose, layout);
    if geo.is_empty() {
        return 0.0;
    }
    let kept = geo
        .iter()
        .filter(|b| tf.max_opacity_in(stats[b.index()].min, stats[b.index()].max) > 0.0)
        .count();
    1.0 - kept as f64 / geo.len() as f64
}

/// Per-block stats helper (min/max/mean/entropy) for culling.
pub fn block_stats_for(
    layout: &BrickLayout,
    field: &viz_volume::VolumeField,
    bins: usize,
) -> Vec<BlockStats> {
    let (lo, hi) = field.min_max();
    layout
        .block_ids()
        .map(|id| BlockStats::compute(&field.extract_block(layout, id), lo, hi, bins))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raycast::{orbit_pose, render, FieldSource, RenderConfig};
    use crate::tf::Rgba;
    use viz_geom::angle::deg_to_rad;
    use viz_volume::{DatasetKind, DatasetSpec, Dims3, VolumeField};

    fn setup() -> (VolumeField, BrickLayout, Vec<BlockStats>) {
        let spec = DatasetSpec::new(DatasetKind::Ball3d, 16, 7);
        let field = spec.materialize(0, 0.0);
        let layout = BrickLayout::new(field.dims, Dims3::cube(16));
        let stats = block_stats_for(&layout, &field, 64);
        (field, layout, stats)
    }

    #[test]
    fn fully_opaque_tf_culls_nothing() {
        let (field, layout, stats) = setup();
        let tf = TransferFunction::new(
            vec![crate::tf::ControlPoint { x: 0.0, color: Rgba::new(1.0, 1.0, 1.0, 1.0) }],
            field.min_max(),
        );
        let pose = orbit_pose(90.0, 0.0, 2.5, deg_to_rad(15.0));
        assert_eq!(cull_fraction(&pose, &layout, &stats, &tf), 0.0);
    }

    #[test]
    fn zero_foot_tf_culls_ambient_blocks() {
        // Finer blocks so the volume corners are entirely outside the ball,
        // and a transfer function with a zero-opacity foot (values below
        // 25% of the range invisible) — the typical interactive setup.
        let spec = DatasetSpec::new(DatasetKind::Ball3d, 16, 7);
        let field = spec.materialize(0, 0.0);
        let layout = BrickLayout::new(field.dims, Dims3::cube(8));
        let stats = block_stats_for(&layout, &field, 64);
        let tf = TransferFunction::new(
            vec![
                crate::tf::ControlPoint { x: 0.0, color: Rgba::TRANSPARENT },
                crate::tf::ControlPoint { x: 0.25, color: Rgba::TRANSPARENT },
                crate::tf::ControlPoint { x: 1.0, color: Rgba::new(1.0, 0.8, 0.2, 0.9) },
            ],
            field.min_max(),
        );
        // Wide view from afar so the frustum includes ambient corners.
        let pose = orbit_pose(90.0, 0.0, 3.0, deg_to_rad(50.0));
        let frac = cull_fraction(&pose, &layout, &stats, &tf);
        assert!(frac > 0.05, "ball exterior should be culled ({frac})");
        assert!(frac < 0.95, "ball interior must survive ({frac})");
    }

    #[test]
    fn culling_is_conservative_for_rendering() {
        // Rendering only the contributing set must produce the same image
        // as rendering everything: culled blocks are invisible by
        // construction.
        use crate::bricked::BrickedSource;
        use std::collections::HashMap;
        use std::sync::Arc;

        let (field, layout, stats) = setup();
        let tf = TransferFunction::heat(field.min_max());
        let pose = orbit_pose(80.0, 25.0, 2.5, deg_to_rad(20.0));
        let rc = RenderConfig::preview(48, 48);

        let full_src = FieldSource::new(&field, &layout);
        let img_full = render(&full_src, &pose, &tf, &rc);

        let keep = contributing_working_set(&pose, &layout, &stats, &tf);
        let map: HashMap<BlockId, Arc<Vec<f32>>> =
            keep.iter().map(|&b| (b, Arc::new(field.extract_block(&layout, b)))).collect();
        let lookup = move |id: BlockId| map.get(&id).cloned();
        let culled_src = BrickedSource::new(&layout, &lookup);
        let img_culled = render(&culled_src, &pose, &tf, &rc);

        let err = crate::metrics::mse(&img_full, &img_culled);
        assert!(err < 1e-6, "culling changed the image: mse {err}");
    }

    #[test]
    fn retuned_tf_changes_the_cull_set() {
        let (field, layout, stats) = setup();
        let (lo, hi) = field.min_max();
        let pose = orbit_pose(90.0, 0.0, 2.5, deg_to_rad(15.0));
        // An iso-peak on high values keeps few blocks; on low values many
        // more (ambient zero blocks become visible).
        let high = TransferFunction::iso_peak(0.9, 0.05, Rgba::new(1.0, 0.0, 0.0, 1.0), (lo, hi));
        let low = TransferFunction::iso_peak(0.0, 0.05, Rgba::new(1.0, 0.0, 0.0, 1.0), (lo, hi));
        let kept_high = contributing_working_set(&pose, &layout, &stats, &high).len();
        let kept_low = contributing_working_set(&pose, &layout, &stats, &low).len();
        assert!(kept_high < kept_low, "high {kept_high} vs low {kept_low}");
    }

    #[test]
    fn max_opacity_in_interval_logic() {
        let tf = TransferFunction::iso_peak(0.5, 0.1, Rgba::new(1.0, 1.0, 1.0, 1.0), (0.0, 1.0));
        // Interval containing the peak.
        assert_eq!(tf.max_opacity_in(0.2, 0.8), 1.0);
        // Interval missing the peak entirely.
        assert_eq!(tf.max_opacity_in(0.0, 0.2), 0.0);
        assert_eq!(tf.max_opacity_in(0.8, 1.0), 0.0);
        // Reversed bounds are normalized.
        assert_eq!(tf.max_opacity_in(0.8, 0.2), 1.0);
        // Endpoint inside the ramp catches partial opacity.
        assert!(tf.max_opacity_in(0.45, 0.45) > 0.0);
    }
}
