//! Data-dependent analytics of §III-A / Fig. 3: per-view histograms and a
//! variable correlation matrix computed over the blocks a view touches.
//!
//! These are the operations that force the *full-resolution* data of every
//! visible block into memory (no multi-resolution shortcut), which is the
//! paper's argument for an application-aware placement policy.

use rayon::prelude::*;
use viz_volume::Histogram;

/// Streaming accumulator for pairwise Pearson correlation of `n` variables.
///
/// Feed co-located samples (one value per variable per voxel); the final
/// matrix is symmetric with a unit diagonal — the Fig. 3 "correlation
/// matrix of 151 primary variables" computed per view.
#[derive(Debug, Clone)]
pub struct CorrelationAccumulator {
    n_vars: usize,
    count: u64,
    sum: Vec<f64>,
    /// Upper-triangular (including diagonal) co-moment sums, row-major.
    cross: Vec<f64>,
}

impl CorrelationAccumulator {
    /// Accumulator for `n_vars` variables.
    pub fn new(n_vars: usize) -> Self {
        assert!(n_vars > 0, "need at least one variable");
        CorrelationAccumulator {
            n_vars,
            count: 0,
            sum: vec![0.0; n_vars],
            cross: vec![0.0; n_vars * (n_vars + 1) / 2],
        }
    }

    /// Add one co-located sample vector (`values.len() == n_vars`).
    pub fn add(&mut self, values: &[f32]) {
        assert_eq!(values.len(), self.n_vars, "sample arity mismatch");
        self.count += 1;
        for (i, &v) in values.iter().enumerate() {
            self.sum[i] += v as f64;
        }
        let mut k = 0;
        for (i, &vi) in values.iter().enumerate() {
            let vi = vi as f64;
            for &vj in &values[i..] {
                self.cross[k] += vi * vj as f64;
                k += 1;
            }
        }
    }

    /// Number of samples accumulated.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Merge another accumulator over the same variables.
    pub fn merge(&mut self, other: &CorrelationAccumulator) {
        assert_eq!(self.n_vars, other.n_vars, "variable count mismatch");
        self.count += other.count;
        for (a, b) in self.sum.iter_mut().zip(&other.sum) {
            *a += b;
        }
        for (a, b) in self.cross.iter_mut().zip(&other.cross) {
            *a += b;
        }
    }

    /// The Pearson correlation matrix (row-major `n_vars × n_vars`).
    /// Degenerate (zero-variance) variables correlate as 0 off-diagonal.
    pub fn matrix(&self) -> Vec<f64> {
        let n = self.n_vars;
        let cnt = self.count as f64;
        let mut out = vec![0.0; n * n];
        if self.count == 0 {
            for i in 0..n {
                out[i * n + i] = 1.0;
            }
            return out;
        }
        let mean: Vec<f64> = self.sum.iter().map(|s| s / cnt).collect();
        // Variances from the packed diagonal entries.
        let mut var = vec![0.0; n];
        let mut k = 0;
        let mut cov = vec![0.0; n * n];
        for i in 0..n {
            for j in i..n {
                let c = self.cross[k] / cnt - mean[i] * mean[j];
                cov[i * n + j] = c;
                cov[j * n + i] = c;
                if i == j {
                    var[i] = c.max(0.0);
                }
                k += 1;
            }
        }
        for i in 0..n {
            for j in 0..n {
                out[i * n + j] = if i == j {
                    1.0
                } else {
                    let d = (var[i] * var[j]).sqrt();
                    if d > 1e-300 {
                        (cov[i * n + j] / d).clamp(-1.0, 1.0)
                    } else {
                        0.0
                    }
                };
            }
        }
        out
    }
}

/// Histogram of one variable over a set of resident block payloads
/// (the per-view distribution panels of Fig. 3). Parallel over blocks.
pub fn region_histogram(blocks: &[&[f32]], range: (f32, f32), bins: usize) -> Histogram {
    blocks
        .par_iter()
        .map(|b| {
            let mut h = Histogram::new(range.0, range.1, bins);
            h.add_all(b);
            h
        })
        .reduce(
            || Histogram::new(range.0, range.1, bins),
            |mut a, b| {
                a.merge(&b);
                a
            },
        )
}

/// Count voxels satisfying a query predicate over resident blocks —
/// query-based visualization (§III-A: "combination of numerous queries").
pub fn query_count<F: Fn(f32) -> bool + Sync>(blocks: &[&[f32]], pred: F) -> u64 {
    blocks.par_iter().map(|b| b.iter().filter(|&&v| pred(v)).count() as u64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_correlated_variables() {
        let mut acc = CorrelationAccumulator::new(2);
        for i in 0..100 {
            let x = i as f32;
            acc.add(&[x, 2.0 * x + 1.0]);
        }
        let m = acc.matrix();
        assert!((m[0] - 1.0).abs() < 1e-9);
        assert!((m[1] - 1.0).abs() < 1e-6, "corr = {}", m[1]);
        assert!((m[3] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn anticorrelated_variables() {
        let mut acc = CorrelationAccumulator::new(2);
        for i in 0..100 {
            let x = i as f32;
            acc.add(&[x, -x]);
        }
        assert!((acc.matrix()[1] + 1.0).abs() < 1e-6);
    }

    #[test]
    fn independent_variables_near_zero() {
        let mut acc = CorrelationAccumulator::new(2);
        // Deterministic decorrelated pair.
        for i in 0..1000 {
            let a = ((i * 31 + 7) % 101) as f32;
            let b = ((i * 57 + 13) % 89) as f32;
            acc.add(&[a, b]);
        }
        assert!(acc.matrix()[1].abs() < 0.1);
    }

    #[test]
    fn constant_variable_correlates_zero() {
        let mut acc = CorrelationAccumulator::new(2);
        for i in 0..50 {
            acc.add(&[5.0, i as f32]);
        }
        let m = acc.matrix();
        assert_eq!(m[1], 0.0);
        assert_eq!(m[0], 1.0);
    }

    #[test]
    fn empty_accumulator_is_identity() {
        let acc = CorrelationAccumulator::new(3);
        let m = acc.matrix();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(m[i * 3 + j], if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn matrix_is_symmetric() {
        let mut acc = CorrelationAccumulator::new(3);
        for i in 0..200 {
            let x = (i % 17) as f32;
            acc.add(&[x, x * x, 10.0 - x]);
        }
        let m = acc.matrix();
        for i in 0..3 {
            for j in 0..3 {
                assert!((m[i * 3 + j] - m[j * 3 + i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn merge_equals_single_pass() {
        let samples: Vec<[f32; 2]> = (0..100).map(|i| [i as f32, (i * i % 37) as f32]).collect();
        let mut whole = CorrelationAccumulator::new(2);
        for s in &samples {
            whole.add(s);
        }
        let mut a = CorrelationAccumulator::new(2);
        let mut b = CorrelationAccumulator::new(2);
        for s in &samples[..50] {
            a.add(s);
        }
        for s in &samples[50..] {
            b.add(s);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        let (ma, mw) = (a.matrix(), whole.matrix());
        for k in 0..4 {
            assert!((ma[k] - mw[k]).abs() < 1e-12);
        }
    }

    #[test]
    fn region_histogram_merges_blocks() {
        let b1 = vec![0.1f32; 10];
        let b2 = vec![0.9f32; 30];
        let h = region_histogram(&[&b1, &b2], (0.0, 1.0), 10);
        assert_eq!(h.total, 40);
        assert_eq!(h.counts.iter().sum::<u64>(), 40);
        // 0.1 lands in bin 1, 0.9 in bin 9 (10 bins over [0, 1]).
        assert_eq!(h.counts[1], 10);
        assert_eq!(h.counts[9], 30);
    }

    #[test]
    fn query_count_counts_matching_voxels() {
        let b1 = vec![0.1f32, 0.6, 0.7];
        let b2 = vec![0.8f32, 0.2];
        assert_eq!(query_count(&[&b1, &b2], |v| v > 0.5), 3);
        assert_eq!(query_count(&[], |_| true), 0);
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        CorrelationAccumulator::new(2).add(&[1.0]);
    }
}
