//! # viz-render — software volume renderer and analytics
//!
//! The rendering and data-dependent analysis side of the visualization
//! pipeline: piecewise-linear transfer functions, a parallel CPU
//! ray-casting renderer over fully or partially resident bricked volumes,
//! and the per-view analytics of the paper's Fig. 3 (region histograms and
//! variable correlation matrices).
//!
//! - [`tf`] — transfer functions (the data-dependent interaction).
//! - [`image`] — RGB image buffer with PPM output.
//! - [`raycast`] — front-to-back ray caster, parallel over rows.
//! - [`bricked`] — sampling through a partially resident block cache.
//! - [`analytics`] — histograms, correlation matrices, query counting.
//!
//! # Example
//!
//! ```
//! use viz_render::{orbit_pose, render, FieldSource, RenderConfig, TransferFunction};
//! use viz_geom::angle::deg_to_rad;
//! use viz_volume::{BrickLayout, DatasetKind, DatasetSpec, Dims3};
//!
//! let spec = DatasetSpec::new(DatasetKind::Ball3d, 32, 7);
//! let field = spec.materialize(0, 0.0);
//! let layout = BrickLayout::new(field.dims, Dims3::cube(16));
//! let src = FieldSource::new(&field, &layout);
//! let pose = orbit_pose(90.0, 0.0, 3.0, deg_to_rad(40.0));
//! let tf = TransferFunction::heat(field.min_max());
//! let img = render(&src, &pose, &tf, &RenderConfig::preview(32, 32));
//! assert!(img.mean_luminance() > 0.0); // the ball is visible
//! ```

#![warn(missing_docs)]

pub mod analytics;
pub mod bricked;
pub mod culling;
pub mod image;
pub mod metrics;
pub mod raycast;
pub mod tf;

pub use analytics::{query_count, region_histogram, CorrelationAccumulator};
pub use bricked::{BlockLookup, BrickedSource, CountingLookup};
pub use culling::{block_stats_for, contributing_working_set, cull_fraction};
pub use image::Image;
pub use metrics::{downsample, mse, psnr, ssim_global};
pub use raycast::{
    frame_working_set, orbit_pose, render, FieldSource, RenderConfig, RenderMode, SampleSource,
};
pub use tf::{ControlPoint, Rgba, TransferFunction};
