//! CPU ray-casting volume renderer.
//!
//! Front-to-back alpha compositing with trilinear reconstruction, parallel
//! over image rows. The renderer samples through a [`SampleSource`], which
//! either wraps a fully materialized field or a bricked, partially resident
//! volume — the latter is how the out-of-core examples render only the
//! blocks the cache holds (missing blocks contribute nothing, exactly like
//! an out-of-core renderer skipping unloaded bricks).

use crate::image::Image;
use crate::tf::{Rgba, TransferFunction};
use rayon::prelude::*;
use viz_geom::{CameraPose, Ray, RayGenerator, Vec3};
use viz_volume::{BrickLayout, VolumeField};

/// Source of scalar samples in *voxel* coordinates.
pub trait SampleSource: Sync {
    /// Trilinear sample at fractional voxel coordinates, `None` when the
    /// containing block is not resident.
    fn sample(&self, x: f64, y: f64, z: f64) -> Option<f32>;

    /// The brick layout (for bounds and coordinate transforms).
    fn layout(&self) -> &BrickLayout;
}

/// Sample source over a fully materialized volume.
pub struct FieldSource<'a> {
    field: &'a VolumeField,
    layout: &'a BrickLayout,
}

impl<'a> FieldSource<'a> {
    /// Wrap a field and its layout (dims must match).
    pub fn new(field: &'a VolumeField, layout: &'a BrickLayout) -> Self {
        assert_eq!(field.dims, layout.volume, "field/layout mismatch");
        FieldSource { field, layout }
    }
}

impl SampleSource for FieldSource<'_> {
    fn sample(&self, x: f64, y: f64, z: f64) -> Option<f32> {
        Some(self.field.sample_trilinear(x, y, z))
    }

    fn layout(&self) -> &BrickLayout {
        self.layout
    }
}

/// How samples along a ray combine into a pixel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RenderMode {
    /// Front-to-back alpha compositing (volume rendering).
    #[default]
    Composite,
    /// Maximum-intensity projection: the brightest sample wins, colored
    /// through the transfer function. Standard for angiography-style views
    /// and a cheap structural overview.
    Mip,
}

/// Renderer configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RenderConfig {
    /// Output image width.
    pub width: usize,
    /// Output image height.
    pub height: usize,
    /// Step size along the ray in world units (volume edge = 2).
    pub step: f64,
    /// Stop compositing when accumulated alpha exceeds this.
    pub early_termination: f32,
    /// Background color.
    pub background: Rgba,
    /// Sample combination rule.
    pub mode: RenderMode,
}

impl RenderConfig {
    /// A fast preview configuration (compositing).
    pub fn preview(width: usize, height: usize) -> Self {
        RenderConfig {
            width,
            height,
            step: 0.01,
            early_termination: 0.98,
            background: Rgba::TRANSPARENT,
            mode: RenderMode::Composite,
        }
    }

    /// Switch to maximum-intensity projection.
    pub fn mip(mut self) -> Self {
        self.mode = RenderMode::Mip;
        self
    }
}

/// Render one frame.
pub fn render<S: SampleSource>(
    source: &S,
    pose: &CameraPose,
    tf: &TransferFunction,
    config: &RenderConfig,
) -> Image {
    let pass_t0 = viz_telemetry::start();
    let gen = RayGenerator::new(pose, config.width, config.height);
    let mut img = Image::new(config.width, config.height);
    let bounds = source.layout().world_bounds();
    img.rows_mut().enumerate().par_bridge().for_each(|(py, row)| {
        for (px, out) in row.iter_mut().enumerate() {
            let ray = gen.ray(px, py);
            let c = trace(source, &ray, tf, config, &bounds);
            *out = [c.r, c.g, c.b];
        }
    });
    viz_telemetry::span(
        viz_telemetry::EventKind::RenderPass,
        RENDER_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        (config.width * config.height) as u64,
        pass_t0,
    );
    img
}

/// Monotone pass counter: the telemetry span key for [`render`].
static RENDER_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

fn trace<S: SampleSource>(
    source: &S,
    ray: &Ray,
    tf: &TransferFunction,
    config: &RenderConfig,
    bounds: &viz_geom::Aabb,
) -> Rgba {
    let Some((t0, t1)) = ray.intersect_aabb(bounds) else {
        return config.background;
    };
    let layout = source.layout();
    if config.mode == RenderMode::Mip {
        // Maximum-intensity projection: scan for the largest sample.
        let mut best: Option<f32> = None;
        let mut t = t0 + config.step * 0.5;
        while t < t1 {
            let p = ray.at(t);
            let v = layout.world_to_voxel(p);
            if let Some(s) = source.sample(v.x, v.y, v.z) {
                best = Some(best.map_or(s, |b| b.max(s)));
            }
            t += config.step;
        }
        return match best {
            Some(s) => {
                let c = tf.sample(s);
                // MIP pixels are opaque where any data was seen.
                Rgba::new(c.r, c.g, c.b, 1.0)
            }
            None => config.background,
        };
    }
    let mut color = [0.0f32; 3];
    let mut alpha = 0.0f32;
    // Opacity correction reference: the TF is calibrated for this step.
    let mut t = t0 + config.step * 0.5;
    while t < t1 && alpha < config.early_termination {
        let p = ray.at(t);
        let v = layout.world_to_voxel(p);
        if let Some(s) = source.sample(v.x, v.y, v.z) {
            let c = tf.sample(s);
            if c.a > 0.0 {
                // Front-to-back "over" compositing with premultiplied alpha.
                let w = c.a * (1.0 - alpha);
                color[0] += c.r * w;
                color[1] += c.g * w;
                color[2] += c.b * w;
                alpha += w;
            }
        }
        t += config.step;
    }
    // Composite over the background.
    let bg = config.background;
    let w = bg.a * (1.0 - alpha);
    Rgba::new(color[0] + bg.r * w, color[1] + bg.g * w, color[2] + bg.b * w, alpha + w)
}

/// Blocks whose world bounds a frame's rays can touch — equivalently the
/// Eq. 1 visible set; exposed so examples can demand-load exactly what the
/// next render needs.
pub fn frame_working_set(pose: &CameraPose, layout: &BrickLayout) -> Vec<viz_volume::BlockId> {
    layout.block_bvh().visible_blocks(&viz_geom::ConeFrustum::from_pose(pose))
}

/// Convenience: orbiting pose at `distance` looking at the layout's center
/// (world origin) with `view_angle` radians.
pub fn orbit_pose(theta_deg: f64, phi_deg: f64, distance: f64, view_angle: f64) -> CameraPose {
    let sc = viz_geom::SphericalCoord {
        radius: distance,
        theta: viz_geom::angle::deg_to_rad(theta_deg),
        phi: viz_geom::angle::deg_to_rad(phi_deg),
    };
    CameraPose::new(sc.to_cartesian(), Vec3::ZERO, view_angle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use viz_geom::angle::deg_to_rad;
    use viz_volume::{DatasetKind, DatasetSpec, Dims3};

    fn ball_setup() -> (VolumeField, BrickLayout) {
        let spec = DatasetSpec::new(DatasetKind::Ball3d, 16, 7); // 64³
        let field = spec.materialize(0, 0.0);
        let layout = BrickLayout::new(field.dims, Dims3::cube(16));
        (field, layout)
    }

    #[test]
    fn ball_renders_bright_center_dark_corners() {
        let (field, layout) = ball_setup();
        let src = FieldSource::new(&field, &layout);
        let pose = orbit_pose(90.0, 0.0, 3.0, deg_to_rad(40.0));
        let tf = TransferFunction::heat(field.min_max());
        let img = render(&src, &pose, &tf, &RenderConfig::preview(64, 64));
        // Center pixel passes through the ball: bright.
        let c = img.get(32, 32);
        let lum_c = 0.2126 * c[0] + 0.7152 * c[1] + 0.0722 * c[2];
        // Corner pixel misses or only grazes: dark.
        let k = img.get(0, 0);
        let lum_k = 0.2126 * k[0] + 0.7152 * k[1] + 0.0722 * k[2];
        assert!(lum_c > 0.05, "center too dark: {lum_c}");
        assert!(lum_k < lum_c, "corner {lum_k} >= center {lum_c}");
    }

    #[test]
    fn render_is_deterministic() {
        let (field, layout) = ball_setup();
        let src = FieldSource::new(&field, &layout);
        let pose = orbit_pose(45.0, 30.0, 3.0, deg_to_rad(40.0));
        let tf = TransferFunction::grayscale(field.min_max());
        let cfg = RenderConfig::preview(32, 32);
        let a = render(&src, &pose, &tf, &cfg);
        let b = render(&src, &pose, &tf, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn transparent_tf_gives_background() {
        let (field, layout) = ball_setup();
        let src = FieldSource::new(&field, &layout);
        let pose = orbit_pose(90.0, 0.0, 3.0, deg_to_rad(40.0));
        let tf = TransferFunction::new(
            vec![crate::tf::ControlPoint { x: 0.0, color: Rgba::TRANSPARENT }],
            field.min_max(),
        );
        let mut cfg = RenderConfig::preview(16, 16);
        cfg.background = Rgba::new(0.25, 0.5, 0.75, 1.0);
        let img = render(&src, &pose, &tf, &cfg);
        let p = img.get(8, 8);
        assert!((p[0] - 0.25).abs() < 1e-6);
        assert!((p[2] - 0.75).abs() < 1e-6);
    }

    #[test]
    fn closer_camera_sees_bigger_ball() {
        let (field, layout) = ball_setup();
        let src = FieldSource::new(&field, &layout);
        let tf = TransferFunction::heat(field.min_max());
        let cfg = RenderConfig::preview(48, 48);
        let far = render(&src, &orbit_pose(90.0, 0.0, 4.5, deg_to_rad(40.0)), &tf, &cfg);
        let near = render(&src, &orbit_pose(90.0, 0.0, 2.2, deg_to_rad(40.0)), &tf, &cfg);
        assert!(near.bright_pixels(0.02) > far.bright_pixels(0.02));
    }

    #[test]
    fn mip_mode_is_at_least_as_bright_as_compositing() {
        let (field, layout) = ball_setup();
        let src = FieldSource::new(&field, &layout);
        let pose = orbit_pose(90.0, 0.0, 3.0, deg_to_rad(40.0));
        let tf = TransferFunction::heat(field.min_max());
        let comp = render(&src, &pose, &tf, &RenderConfig::preview(32, 32));
        let mip = render(&src, &pose, &tf, &RenderConfig::preview(32, 32).mip());
        // MIP shows the single brightest sample at full opacity: the image
        // cannot be darker than the composited one on this TF.
        assert!(mip.mean_luminance() >= comp.mean_luminance());
        assert!(mip.bright_pixels(0.1) >= comp.bright_pixels(0.1));
    }

    #[test]
    fn mip_of_empty_region_is_background() {
        let (field, layout) = ball_setup();
        let src = FieldSource::new(&field, &layout);
        // Narrow FOV aimed past the volume corner sees only ambient zeros.
        let pose = orbit_pose(90.0, 0.0, 3.0, deg_to_rad(40.0));
        let tf = TransferFunction::heat(field.min_max());
        let img = render(&src, &pose, &tf, &RenderConfig::preview(16, 16).mip());
        // Corner ray passes outside the ball: zero-valued MIP maps through
        // the heat TF's transparent black -> dark pixel but alpha 1.
        let k = img.get(0, 0);
        assert!(k[0] <= 0.2);
    }

    #[test]
    fn telemetry_records_render_pass_span_with_pixel_count() {
        let (field, layout) = ball_setup();
        let src = FieldSource::new(&field, &layout);
        let pose = orbit_pose(90.0, 0.0, 3.0, deg_to_rad(40.0));
        let tf = TransferFunction::heat(field.min_max());
        viz_telemetry::set_enabled(true);
        let _ = render(&src, &pose, &tf, &RenderConfig::preview(24, 24));
        let trace = viz_telemetry::drain();
        viz_telemetry::set_enabled(false);
        // Concurrent tests may emit too; look for ours by pixel count.
        assert!(
            trace
                .events
                .iter()
                .any(|e| e.kind == viz_telemetry::EventKind::RenderPass && e.arg == 24 * 24),
            "no render_pass span for the 24x24 pass"
        );
    }

    #[test]
    fn frame_working_set_matches_cone_visibility() {
        let (_, layout) = ball_setup();
        let pose = orbit_pose(90.0, 0.0, 3.0, deg_to_rad(30.0));
        let ws = frame_working_set(&pose, &layout);
        assert!(!ws.is_empty());
        assert!(ws.len() <= layout.num_blocks());
    }

    #[test]
    fn narrow_fov_touches_fewer_blocks() {
        let (_, layout) = ball_setup();
        let narrow = frame_working_set(&orbit_pose(90.0, 0.0, 3.0, deg_to_rad(10.0)), &layout);
        let wide = frame_working_set(&orbit_pose(90.0, 0.0, 3.0, deg_to_rad(60.0)), &layout);
        assert!(narrow.len() < wide.len());
    }
}
