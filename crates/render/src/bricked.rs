//! Sample source over a *partially resident* bricked volume: the renderer
//! used by the out-of-core examples, where only cached blocks have data.
//!
//! Production out-of-core renderers pad each brick with a one-voxel ghost
//! layer so trilinear filtering never crosses into a non-resident brick;
//! here we keep bricks unpadded and clamp boundary lookups into the brick
//! that owns the sample, which introduces a seam at most one voxel wide —
//! irrelevant to cache behaviour, which is what the examples demonstrate.

use crate::raycast::SampleSource;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use viz_volume::{BlockId, BrickLayout};

/// Resolve a block id to its (resident) payload, or `None` when the block
/// is not loaded. Implemented by whatever cache the example drives.
pub trait BlockLookup: Sync {
    /// The payload of `id` in block-local x-fastest order, if resident.
    fn lookup(&self, id: BlockId) -> Option<Arc<Vec<f32>>>;
}

impl<F> BlockLookup for F
where
    F: Fn(BlockId) -> Option<Arc<Vec<f32>>> + Sync,
{
    fn lookup(&self, id: BlockId) -> Option<Arc<Vec<f32>>> {
        self(id)
    }
}

/// A [`BlockLookup`] decorator counting lookups and misses, so a renderer
/// can tell after the fact whether a frame was *degraded* — drawn while
/// some of its blocks were not resident (e.g. their demand reads missed
/// the frame deadline).
pub struct CountingLookup<L> {
    inner: L,
    lookups: AtomicU64,
    misses: AtomicU64,
}

impl<L: BlockLookup> CountingLookup<L> {
    /// Wrap a lookup.
    pub fn new(inner: L) -> Self {
        CountingLookup { inner, lookups: AtomicU64::new(0), misses: AtomicU64::new(0) }
    }

    /// `(lookups, misses)` since construction or the last [`Self::reset`].
    pub fn counts(&self) -> (u64, u64) {
        (self.lookups.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }

    /// `true` when any lookup since the last reset failed — the rendered
    /// output is missing data.
    pub fn degraded(&self) -> bool {
        self.misses.load(Ordering::Relaxed) > 0
    }

    /// Zero the counters (call between frames).
    pub fn reset(&self) {
        self.lookups.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    /// The wrapped lookup.
    pub fn inner(&self) -> &L {
        &self.inner
    }
}

impl<L: BlockLookup> BlockLookup for CountingLookup<L> {
    fn lookup(&self, id: BlockId) -> Option<Arc<Vec<f32>>> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let got = self.inner.lookup(id);
        if got.is_none() {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        got
    }
}

/// A [`SampleSource`] reading through a [`BlockLookup`].
pub struct BrickedSource<'a, L: BlockLookup> {
    layout: &'a BrickLayout,
    blocks: &'a L,
}

impl<'a, L: BlockLookup> BrickedSource<'a, L> {
    /// Create over a layout and a block resolver.
    pub fn new(layout: &'a BrickLayout, blocks: &'a L) -> Self {
        BrickedSource { layout, blocks }
    }

    /// Raw voxel fetch clamped into block `home` when `(x, y, z)` falls in a
    /// non-resident neighbour.
    fn voxel(&self, home: BlockId, home_data: &[f32], x: usize, y: usize, z: usize) -> f32 {
        let owner = self.layout.block_of_voxel(x, y, z);
        let (s, _e) = self.layout.voxel_range(owner);
        if owner == home {
            let dims = self.layout.block_dims(home);
            let (lx, ly, lz) = (x - s.nx, y - s.ny, z - s.nz);
            return home_data[dims.index(lx, ly, lz)];
        }
        if let Some(data) = self.blocks.lookup(owner) {
            let dims = self.layout.block_dims(owner);
            let (lx, ly, lz) = (x - s.nx, y - s.ny, z - s.nz);
            return data[dims.index(lx, ly, lz)];
        }
        // Neighbour not resident: clamp into the home block (seam ≤ 1 voxel).
        let (hs, he) = self.layout.voxel_range(home);
        let cx = x.clamp(hs.nx, he.nx - 1);
        let cy = y.clamp(hs.ny, he.ny - 1);
        let cz = z.clamp(hs.nz, he.nz - 1);
        let dims = self.layout.block_dims(home);
        home_data[dims.index(cx - hs.nx, cy - hs.ny, cz - hs.nz)]
    }
}

impl<L: BlockLookup> SampleSource for BrickedSource<'_, L> {
    fn sample(&self, x: f64, y: f64, z: f64) -> Option<f32> {
        let dims = self.layout.volume;
        let cx = (x - 0.5).clamp(0.0, (dims.nx - 1) as f64);
        let cy = (y - 0.5).clamp(0.0, (dims.ny - 1) as f64);
        let cz = (z - 0.5).clamp(0.0, (dims.nz - 1) as f64);
        let (x0, y0, z0) = (cx.floor() as usize, cy.floor() as usize, cz.floor() as usize);

        // The block owning the base corner decides residency for the whole
        // sample.
        let home = self.layout.block_of_voxel(x0, y0, z0);
        let home_data = self.blocks.lookup(home)?;

        let x1 = (x0 + 1).min(dims.nx - 1);
        let y1 = (y0 + 1).min(dims.ny - 1);
        let z1 = (z0 + 1).min(dims.nz - 1);
        let (fx, fy, fz) = (cx - x0 as f64, cy - y0 as f64, cz - z0 as f64);
        let g = |x: usize, y: usize, z: usize| self.voxel(home, &home_data, x, y, z) as f64;
        let lerp = |a: f64, b: f64, t: f64| a + (b - a) * t;
        let c00 = lerp(g(x0, y0, z0), g(x1, y0, z0), fx);
        let c10 = lerp(g(x0, y1, z0), g(x1, y1, z0), fx);
        let c01 = lerp(g(x0, y0, z1), g(x1, y0, z1), fx);
        let c11 = lerp(g(x0, y1, z1), g(x1, y1, z1), fx);
        Some(lerp(lerp(c00, c10, fy), lerp(c01, c11, fy), fz) as f32)
    }

    fn layout(&self) -> &BrickLayout {
        self.layout
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::RwLock;
    use std::collections::HashMap;
    use viz_volume::{Dims3, VolumeField};

    struct MapLookup(RwLock<HashMap<BlockId, Arc<Vec<f32>>>>);

    impl BlockLookup for MapLookup {
        fn lookup(&self, id: BlockId) -> Option<Arc<Vec<f32>>> {
            self.0.read().get(&id).cloned()
        }
    }

    fn setup() -> (VolumeField, BrickLayout, MapLookup) {
        let dims = Dims3::cube(16);
        let field = VolumeField::from_function(
            dims,
            &|x: f64, y: f64, z: f64, _t: f64| (x + 2.0 * y + 4.0 * z) as f32,
            0.0,
        );
        let layout = BrickLayout::new(dims, Dims3::cube(8));
        let map = MapLookup(RwLock::new(HashMap::new()));
        (field, layout, map)
    }

    fn load_all(field: &VolumeField, layout: &BrickLayout, map: &MapLookup) {
        for id in layout.block_ids() {
            map.0.write().insert(id, Arc::new(field.extract_block(layout, id)));
        }
    }

    #[test]
    fn fully_resident_matches_field_sampling() {
        let (field, layout, map) = setup();
        load_all(&field, &layout, &map);
        let src = BrickedSource::new(&layout, &map);
        for &(x, y, z) in &[(1.0, 2.0, 3.0), (7.9, 8.2, 0.6), (15.4, 15.4, 15.4), (8.0, 8.0, 8.0)] {
            let a = src.sample(x, y, z).unwrap();
            let b = field.sample_trilinear(x, y, z);
            assert!((a - b).abs() < 1e-5, "mismatch at ({x},{y},{z}): {a} vs {b}");
        }
    }

    #[test]
    fn missing_home_block_returns_none() {
        let (_, layout, map) = setup();
        let src = BrickedSource::new(&layout, &map);
        assert!(src.sample(4.0, 4.0, 4.0).is_none());
    }

    #[test]
    fn partially_resident_volume_samples_loaded_half() {
        let (field, layout, map) = setup();
        // Load only blocks with bx == 0 (x < 8).
        for id in layout.block_ids() {
            let (bx, _, _) = layout.block_coords(id);
            if bx == 0 {
                map.0.write().insert(id, Arc::new(field.extract_block(&layout, id)));
            }
        }
        let src = BrickedSource::new(&layout, &map);
        assert!(src.sample(3.0, 3.0, 3.0).is_some());
        assert!(src.sample(12.0, 3.0, 3.0).is_none());
    }

    #[test]
    fn boundary_clamp_is_finite_near_missing_neighbour() {
        let (field, layout, map) = setup();
        for id in layout.block_ids() {
            let (bx, _, _) = layout.block_coords(id);
            if bx == 0 {
                map.0.write().insert(id, Arc::new(field.extract_block(&layout, id)));
            }
        }
        let src = BrickedSource::new(&layout, &map);
        // Sample right at the brick boundary: base corner in the loaded
        // block, +x corner in the missing one.
        let v = src.sample(7.9, 4.0, 4.0).unwrap();
        assert!(v.is_finite());
        // Clamped value must lie within the loaded block's value range.
        let id = layout.block_at(0, 0, 0);
        let data = field.extract_block(&layout, id);
        let lo = data.iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = data.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        // One voxel of seam tolerance.
        assert!(v >= lo - 1.0 && v <= hi + 1.0);
    }

    #[test]
    fn counting_lookup_flags_degraded_frames() {
        let (field, layout, map) = setup();
        // Load only half the volume (bx == 0).
        for id in layout.block_ids() {
            let (bx, _, _) = layout.block_coords(id);
            if bx == 0 {
                map.0.write().insert(id, Arc::new(field.extract_block(&layout, id)));
            }
        }
        let counting = CountingLookup::new(map);
        let src = BrickedSource::new(&layout, &counting);

        // A sample entirely inside the resident half: no degradation.
        assert!(src.sample(3.0, 3.0, 3.0).is_some());
        assert!(!counting.degraded());
        let (lookups, misses) = counting.counts();
        assert!(lookups > 0);
        assert_eq!(misses, 0);

        // A sample in the missing half fails its home lookup.
        counting.reset();
        assert!(src.sample(12.0, 3.0, 3.0).is_none());
        assert!(counting.degraded());
        let (_, misses) = counting.counts();
        assert!(misses >= 1);

        // Reset clears the verdict between frames.
        counting.reset();
        assert_eq!(counting.counts(), (0, 0));
        assert!(!counting.degraded());
    }

    #[test]
    fn closure_lookup_works() {
        let (field, layout, _) = setup();
        let all: HashMap<BlockId, Arc<Vec<f32>>> =
            layout.block_ids().map(|id| (id, Arc::new(field.extract_block(&layout, id)))).collect();
        let f = move |id: BlockId| all.get(&id).cloned();
        let src = BrickedSource::new(&layout, &f);
        assert!(src.sample(5.0, 5.0, 5.0).is_some());
    }
}
