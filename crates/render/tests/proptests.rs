//! Property-based tests for the renderer and analytics.

use proptest::prelude::*;
use viz_render::{CorrelationAccumulator, Rgba, TransferFunction};

proptest! {
    /// Transfer-function output is always a valid clamped color.
    #[test]
    fn tf_output_is_clamped(v in prop::num::f32::NORMAL) {
        let tf = TransferFunction::heat((-10.0, 10.0));
        let c = tf.sample(v);
        for comp in [c.r, c.g, c.b, c.a] {
            prop_assert!((0.0..=1.0).contains(&comp));
        }
    }

    /// Piecewise-linear interpolation is bounded by its control points.
    #[test]
    fn tf_opacity_within_control_range(v in 0.0f32..1.0) {
        let tf = TransferFunction::grayscale((0.0, 1.0));
        let a = tf.sample(v).a;
        prop_assert!(a >= 0.0 && a <= 0.8 + 1e-6);
    }

    /// Correlations are in [-1, 1], symmetric, with unit diagonal.
    #[test]
    fn correlation_matrix_is_valid(
        samples in prop::collection::vec((0.0f32..10.0, 0.0f32..10.0, 0.0f32..10.0), 2..200),
    ) {
        let mut acc = CorrelationAccumulator::new(3);
        for (a, b, c) in &samples {
            acc.add(&[*a, *b, *c]);
        }
        let m = acc.matrix();
        for i in 0..3 {
            prop_assert!((m[i * 3 + i] - 1.0).abs() < 1e-9);
            for j in 0..3 {
                prop_assert!(m[i * 3 + j] >= -1.0 - 1e-9 && m[i * 3 + j] <= 1.0 + 1e-9);
                prop_assert!((m[i * 3 + j] - m[j * 3 + i]).abs() < 1e-9);
            }
        }
    }

    /// Correlation is invariant under positive affine transforms of a
    /// variable.
    #[test]
    fn correlation_affine_invariance(
        samples in prop::collection::vec((0.0f32..10.0, 0.0f32..10.0), 8..100),
        scale in 0.1f32..10.0,
        shift in -10.0f32..10.0,
    ) {
        let mut plain = CorrelationAccumulator::new(2);
        let mut scaled = CorrelationAccumulator::new(2);
        for (a, b) in &samples {
            plain.add(&[*a, *b]);
            scaled.add(&[*a * scale + shift, *b]);
        }
        let (mp, ms) = (plain.matrix(), scaled.matrix());
        // Degenerate (constant) inputs can flip to the 0 convention; only
        // compare when the variable actually varies.
        if mp[1].abs() > 1e-3 {
            prop_assert!((mp[1] - ms[1]).abs() < 1e-2, "{} vs {}", mp[1], ms[1]);
        }
    }

    /// Rgba lerp endpoints are exact.
    #[test]
    fn rgba_lerp_endpoints(
        r in 0.0f32..1.0, g in 0.0f32..1.0, b in 0.0f32..1.0, a in 0.0f32..1.0,
    ) {
        let x = Rgba::new(r, g, b, a);
        let y = Rgba::new(1.0 - r, 1.0 - g, 1.0 - b, 1.0 - a);
        prop_assert_eq!(x.lerp(y, 0.0), x);
        prop_assert_eq!(x.lerp(y, 1.0), y);
    }
}
