//! `T_important` — the block-importance table of the paper's §IV-C.
//!
//! Each block's importance is the Shannon entropy (Eq. 2) of its value
//! histogram; blocks are kept sorted by descending entropy so the policy
//! can (a) pre-load the most important blocks into fast memory and (b)
//! filter over-predicted visible sets down to the blocks most likely to
//! matter.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use viz_volume::{BlockId, BlockStats, BrickLayout, ScalarFunction, VolumeField};

/// One entry of the importance table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImportanceEntry {
    /// The block this entry describes.
    pub block: BlockId,
    /// Shannon entropy in bits (Eq. 2) over the global value range.
    pub entropy: f64,
}

/// The importance table: entropy per block, sorted descending.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImportanceTable {
    /// Entries sorted by descending entropy (ties broken by block id for
    /// determinism).
    entries: Vec<ImportanceEntry>,
    /// `entropy[block.index()]` for O(1) lookups.
    by_block: Vec<f64>,
    /// Histogram bins used.
    pub bins: usize,
}

impl ImportanceTable {
    /// Build from per-block entropies (`by_block[i]` = entropy of block i).
    pub fn from_entropies(by_block: Vec<f64>, bins: usize) -> Self {
        let mut entries: Vec<ImportanceEntry> = by_block
            .iter()
            .enumerate()
            .map(|(i, &e)| ImportanceEntry { block: BlockId(i as u32), entropy: e })
            .collect();
        entries.sort_by(|a, b| {
            b.entropy
                .partial_cmp(&a.entropy)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.block.cmp(&b.block))
        });
        ImportanceTable { entries, by_block, bins }
    }

    /// Build from a materialized field, histogramming each block over the
    /// field's global min/max so entropies are comparable across blocks.
    /// Runs block computations in parallel.
    pub fn from_field(layout: &BrickLayout, field: &VolumeField, bins: usize) -> Self {
        assert_eq!(layout.volume, field.dims, "layout does not match field");
        let (lo, hi) = field.min_max();
        let ids: Vec<BlockId> = layout.block_ids().collect();
        let by_block: Vec<f64> = ids
            .par_iter()
            .map(|&id| {
                let data = field.extract_block(layout, id);
                BlockStats::compute(&data, lo, hi, bins).entropy
            })
            .collect();
        Self::from_entropies(by_block, bins)
    }

    /// Build directly from a procedural generator without materializing the
    /// whole volume (one block at a time): the path used for paper-scale
    /// datasets that exceed memory. `range` is the variable's global value
    /// range (from metadata or a coarse pre-pass).
    pub fn from_function<F: ScalarFunction + ?Sized>(
        layout: &BrickLayout,
        f: &F,
        t: f64,
        range: (f32, f32),
        bins: usize,
    ) -> Self {
        let ids: Vec<BlockId> = layout.block_ids().collect();
        let (vnx, vny, vnz) =
            (layout.volume.nx as f64, layout.volume.ny as f64, layout.volume.nz as f64);
        let by_block: Vec<f64> = ids
            .par_iter()
            .map(|&id| {
                let (s, e) = layout.voxel_range(id);
                let mut hist = viz_volume::Histogram::new(range.0, range.1, bins);
                for z in s.nz..e.nz {
                    for y in s.ny..e.ny {
                        for x in s.nx..e.nx {
                            let v = f.eval(
                                (x as f64 + 0.5) / vnx,
                                (y as f64 + 0.5) / vny,
                                (z as f64 + 0.5) / vnz,
                                t,
                            );
                            hist.add(v);
                        }
                    }
                }
                hist.entropy()
            })
            .collect();
        Self::from_entropies(by_block, bins)
    }

    /// Number of blocks covered.
    pub fn len(&self) -> usize {
        self.by_block.len()
    }

    /// `true` when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.by_block.is_empty()
    }

    /// Entropy of one block.
    pub fn entropy(&self, block: BlockId) -> f64 {
        self.by_block[block.index()]
    }

    /// Entries sorted by descending entropy.
    pub fn ranked(&self) -> &[ImportanceEntry] {
        &self.entries
    }

    /// The `n` most important blocks.
    pub fn top_n(&self, n: usize) -> impl Iterator<Item = BlockId> + '_ {
        self.entries.iter().take(n).map(|e| e.block)
    }

    /// Blocks with entropy strictly greater than `sigma` (the paper's
    /// pre-load set, Algorithm 1 line 7).
    pub fn above_threshold(&self, sigma: f64) -> impl Iterator<Item = BlockId> + '_ {
        self.entries.iter().take_while(move |e| e.entropy > sigma).map(|e| e.block)
    }

    /// The entropy value such that exactly `fraction` of blocks lie above
    /// it — a convenient way to pick the paper's threshold σ.
    pub fn sigma_for_fraction(&self, fraction: f64) -> f64 {
        assert!((0.0..=1.0).contains(&fraction), "fraction out of [0, 1]");
        if self.entries.is_empty() || fraction >= 1.0 {
            return f64::NEG_INFINITY;
        }
        let k = ((self.entries.len() as f64) * fraction).floor() as usize;
        if k == 0 {
            return self.entries[0].entropy; // nothing strictly above max
        }
        self.entries[k.min(self.entries.len() - 1)].entropy
    }

    /// Keep only the most important `max` blocks of `set`, in descending
    /// entropy order (the paper's over-prediction fallback at the end of
    /// §IV-B). Uses partial selection — O(n + max·log max) instead of a full
    /// O(n·log n) sort; the comparator is a total order (entropy desc, id asc
    /// tiebreak), so the result is identical to sort-then-truncate.
    pub fn filter_top(&self, set: &[BlockId], max: usize) -> Vec<BlockId> {
        if max == 0 {
            return Vec::new();
        }
        let cmp = |a: &BlockId, b: &BlockId| {
            self.entropy(*b)
                .partial_cmp(&self.entropy(*a))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(b))
        };
        let mut v: Vec<BlockId> = set.to_vec();
        if v.len() > max {
            v.select_nth_unstable_by(max - 1, cmp);
            v.truncate(max);
        }
        v.sort_unstable_by(cmp);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viz_volume::{DatasetKind, DatasetSpec, Dims3};

    fn table() -> ImportanceTable {
        ImportanceTable::from_entropies(vec![0.5, 3.0, 0.0, 2.0], 64)
    }

    #[test]
    fn ranked_is_descending() {
        let t = table();
        let es: Vec<f64> = t.ranked().iter().map(|e| e.entropy).collect();
        assert_eq!(es, vec![3.0, 2.0, 0.5, 0.0]);
        assert_eq!(t.ranked()[0].block, BlockId(1));
    }

    #[test]
    fn entropy_lookup_matches_input() {
        let t = table();
        assert_eq!(t.entropy(BlockId(0)), 0.5);
        assert_eq!(t.entropy(BlockId(2)), 0.0);
    }

    #[test]
    fn top_n_and_threshold() {
        let t = table();
        let top: Vec<BlockId> = t.top_n(2).collect();
        assert_eq!(top, vec![BlockId(1), BlockId(3)]);
        let above: Vec<BlockId> = t.above_threshold(0.4).collect();
        assert_eq!(above, vec![BlockId(1), BlockId(3), BlockId(0)]);
        assert_eq!(t.above_threshold(5.0).count(), 0);
    }

    #[test]
    fn sigma_for_fraction_selects_expected_count() {
        let t = table();
        let sigma = t.sigma_for_fraction(0.5);
        assert_eq!(t.above_threshold(sigma).count(), 2);
        // Fraction 1.0: everything passes.
        assert_eq!(t.above_threshold(t.sigma_for_fraction(1.0)).count(), 4);
    }

    #[test]
    fn filter_top_orders_and_truncates() {
        let t = table();
        let set = vec![BlockId(0), BlockId(2), BlockId(3)];
        let kept = t.filter_top(&set, 2);
        assert_eq!(kept, vec![BlockId(3), BlockId(0)]);
    }

    #[test]
    fn ties_break_deterministically() {
        let t = ImportanceTable::from_entropies(vec![1.0, 1.0, 1.0], 8);
        let ids: Vec<BlockId> = t.top_n(3).collect();
        assert_eq!(ids, vec![BlockId(0), BlockId(1), BlockId(2)]);
    }

    #[test]
    fn filter_top_handles_edge_sizes() {
        let t = table();
        let set = vec![BlockId(0), BlockId(1), BlockId(2), BlockId(3)];
        assert!(t.filter_top(&set, 0).is_empty());
        // max >= len keeps everything, sorted by descending entropy.
        let all = t.filter_top(&set, 10);
        assert_eq!(all, vec![BlockId(1), BlockId(3), BlockId(0), BlockId(2)]);
    }

    #[test]
    fn filter_top_matches_full_sort() {
        // Partial selection must agree with the reference full-sort-then-
        // truncate result, ties included.
        let entropies: Vec<f64> = (0..97).map(|i| ((i * 31) % 7) as f64).collect();
        let t = ImportanceTable::from_entropies(entropies, 16);
        let set: Vec<BlockId> = (0..97).map(BlockId).collect();
        for max in [1usize, 3, 7, 48, 96, 97] {
            let mut want = set.clone();
            want.sort_by(|a, b| t.entropy(*b).partial_cmp(&t.entropy(*a)).unwrap().then(a.cmp(b)));
            want.truncate(max);
            assert_eq!(t.filter_top(&set, max), want, "max {max}");
        }
    }

    #[test]
    fn from_field_ranks_feature_blocks_first() {
        let spec = DatasetSpec::new(DatasetKind::Ball3d, 16, 3); // 64³
        let field = spec.materialize(0, 0.0);
        let layout = BrickLayout::new(field.dims, Dims3::cube(16));
        let t = ImportanceTable::from_field(&layout, &field, 64);
        assert_eq!(t.len(), layout.num_blocks());
        // The top block must out-rank the corner (ambient) block.
        let corner = layout.block_at(0, 0, 0);
        assert!(t.ranked()[0].entropy > t.entropy(corner));
    }

    #[test]
    fn from_function_matches_from_field() {
        let spec = DatasetSpec::new(DatasetKind::Ball3d, 32, 3); // 32³
        let field = spec.materialize(0, 0.0);
        let layout = BrickLayout::new(field.dims, Dims3::cube(8));
        let from_field = ImportanceTable::from_field(&layout, &field, 32);
        let range = field.min_max();
        let gen = spec.generator(0);
        let from_fn = ImportanceTable::from_function(&layout, &*gen, 0.0, range, 32);
        for id in layout.block_ids() {
            assert!(
                (from_field.entropy(id) - from_fn.entropy(id)).abs() < 1e-9,
                "block {id} differs"
            );
        }
    }

    #[test]
    fn binary_roundtrip() {
        let t = table();
        let buf = crate::persist::encode_importance_table(&t);
        let back = crate::persist::decode_importance_table(&buf).unwrap();
        assert_eq!(t, back);
    }

    /// JSON snapshot (skipped by the offline harness, which has no real
    /// serde_json).
    #[test]
    fn json_serde_roundtrip() {
        let t = table();
        let json = serde_json::to_string(&t).unwrap();
        let back: ImportanceTable = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
