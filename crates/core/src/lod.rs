//! The view-dependent multi-resolution baseline (§III-B) and the fidelity
//! argument against it.
//!
//! Conventional out-of-core renderers load distant regions at coarser
//! resolution, shrinking I/O at the cost of resolution. The paper's key
//! objection is that *data-dependent* operations (iso-surface coloring,
//! histograms, correlation) need every visible voxel at full resolution, so
//! LOD either degrades the analysis or falls back to full-resolution loads.
//! This module quantifies both sides: simulated I/O time of an LOD session
//! and the *full-resolution coverage* — the fraction of demanded voxel data
//! delivered at native resolution.

use crate::sampling::visible_blocks;
use crate::session::{SessionConfig, StepMetrics};
use serde::{Deserialize, Serialize};
use viz_cache::{AccessClass, Hierarchy, PolicyKind};
use viz_geom::CameraPose;
use viz_volume::lod::LodLevel;
use viz_volume::{BlockId, BrickLayout};

/// How an LOD session picks a level for a block.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LodPolicy {
    /// Distance (in normalized world units, volume edge = 2) below which a
    /// block is fetched at full resolution.
    pub near_distance: f64,
    /// Each additional `step_distance` beyond `near_distance` coarsens the
    /// level by one.
    pub step_distance: f64,
    /// Coarsest level the policy will request.
    pub max_level: u8,
}

impl LodPolicy {
    /// A typical configuration: full resolution within `near`, one level
    /// per additional half unit, up to `max_level`.
    pub fn new(near_distance: f64, step_distance: f64, max_level: u8) -> Self {
        assert!(near_distance >= 0.0 && step_distance > 0.0);
        LodPolicy { near_distance, step_distance, max_level }
    }

    /// Level selected for a block whose center sits `distance` from the
    /// camera.
    pub fn level_for_distance(&self, distance: f64) -> LodLevel {
        if distance <= self.near_distance {
            return LodLevel(0);
        }
        let extra = ((distance - self.near_distance) / self.step_distance).floor() as u64;
        LodLevel(extra.min(self.max_level as u64) as u8)
    }
}

/// Key of an LOD-aware cached unit: a block at a resolution level.
pub type LodKey = (BlockId, LodLevel);

/// Report of an LOD baseline run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LodReport {
    /// Steps executed.
    pub steps: usize,
    /// Demand accesses.
    pub accesses: u64,
    /// Fast-tier misses.
    pub misses: u64,
    /// Miss rate.
    pub miss_rate: f64,
    /// Σ demand I/O seconds (LOD reads are cheaper: `8^-level` bytes).
    pub io_s: f64,
    /// Σ render seconds.
    pub render_s: f64,
    /// Σ wall seconds.
    pub total_s: f64,
    /// Fraction of demanded voxel data delivered at native resolution —
    /// the fidelity available to data-dependent operations.
    pub full_res_coverage: f64,
    /// Per-step metrics.
    pub per_step: Vec<StepMetrics>,
}

/// Run the LOD baseline over a camera path.
///
/// Cache capacity is expressed in *full-resolution block equivalents*: a
/// level-`l` copy occupies `8^-l` of a slot, so the same memory holds many
/// more coarse blocks (we approximate by keying the cache on
/// `(block, level)` and scaling only the I/O bytes — the capacity
/// approximation favours LOD, making the fidelity comparison conservative).
pub fn run_lod_session(
    config: &SessionConfig,
    layout: &BrickLayout,
    policy: &LodPolicy,
    poses: &[CameraPose],
) -> LodReport {
    let num_blocks = layout.num_blocks();
    let mut hier: Hierarchy<LodKey> = Hierarchy::paper_default(
        num_blocks,
        config.cache_ratio,
        PolicyKind::Lru,
        config.block_bytes,
    );

    let mut per_step = Vec::with_capacity(poses.len());
    let (mut io_total, mut render_total, mut wall_total) = (0.0, 0.0, 0.0);
    let (mut full_res_units, mut total_units) = (0.0f64, 0.0f64);

    for pose in poses {
        let visible = visible_blocks(pose, layout);
        let mut step_io = 0.0;
        let mut step_misses = 0usize;
        for &b in &visible {
            let distance = layout.block_bounds(b).center().distance(pose.position);
            let level = policy.level_for_distance(distance);
            let o = hier.fetch((b, level), AccessClass::Demand);
            // Scale the cost model's full-block read time by the level's
            // payload ratio (8^-level voxels).
            let scale = 0.125f64.powi(level.0 as i32);
            if !o.fast_hit {
                step_misses += 1;
                step_io += o.time_s * scale;
            }
            total_units += 1.0;
            if level.0 == 0 {
                full_res_units += 1.0;
            }
        }
        let render_s = config.render.time(visible.len());
        io_total += step_io;
        render_total += render_s;
        wall_total += step_io + render_s;
        per_step.push(StepMetrics {
            visible: visible.len(),
            misses: step_misses,
            io_s: step_io,
            render_s,
            prefetch_s: 0.0,
            lookup_s: 0.0,
            total_s: step_io + render_s,
            skipped: 0,
            degraded: false,
        });
    }

    let stats = hier.stats();
    LodReport {
        steps: poses.len(),
        accesses: stats.demand_accesses,
        misses: stats.demand_fast_misses,
        miss_rate: stats.miss_rate(),
        io_s: io_total,
        render_s: render_total,
        total_s: wall_total,
        full_res_coverage: if total_units > 0.0 { full_res_units / total_units } else { 1.0 },
        per_step,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viz_geom::angle::deg_to_rad;
    use viz_geom::{CameraPath, ExplorationDomain, SphericalPath, Vec3};
    use viz_volume::Dims3;

    fn layout() -> BrickLayout {
        BrickLayout::new(Dims3::cube(64), Dims3::cube(16))
    }

    fn poses(n: usize) -> Vec<CameraPose> {
        let dom = ExplorationDomain::new(Vec3::ZERO, 2.0, 3.2);
        SphericalPath::new(dom, 2.5, 8.0, deg_to_rad(15.0)).generate(n)
    }

    #[test]
    fn level_selection_is_monotone_in_distance() {
        let p = LodPolicy::new(1.0, 0.5, 3);
        let mut prev = 0u8;
        for i in 0..20 {
            let d = i as f64 * 0.25;
            let l = p.level_for_distance(d).0;
            assert!(l >= prev, "level decreased with distance");
            prev = l;
        }
        assert_eq!(p.level_for_distance(0.5), LodLevel(0));
        assert_eq!(p.level_for_distance(100.0), LodLevel(3));
    }

    #[test]
    fn lod_reduces_io_but_loses_fidelity() {
        let l = layout();
        let cfg = SessionConfig::paper(0.5, l.nominal_block_bytes());
        let path = poses(60);
        // Aggressive LOD: everything beyond 1.0 units is coarse.
        let lod = run_lod_session(&cfg, &l, &LodPolicy::new(1.0, 0.5, 3), &path);
        // Degenerate LOD (= full resolution everywhere) as the reference.
        let full = run_lod_session(&cfg, &l, &LodPolicy::new(1e9, 1.0, 0), &path);
        assert!(lod.io_s < full.io_s, "LOD should cut I/O: {} vs {}", lod.io_s, full.io_s);
        assert_eq!(full.full_res_coverage, 1.0);
        assert!(
            lod.full_res_coverage < 0.5,
            "aggressive LOD should degrade most data ({})",
            lod.full_res_coverage
        );
    }

    #[test]
    fn report_consistency() {
        let l = layout();
        let cfg = SessionConfig::paper(0.5, l.nominal_block_bytes());
        let r = run_lod_session(&cfg, &l, &LodPolicy::new(2.0, 0.5, 2), &poses(25));
        assert_eq!(r.steps, 25);
        assert_eq!(r.per_step.len(), 25);
        let io: f64 = r.per_step.iter().map(|s| s.io_s).sum();
        assert!((io - r.io_s).abs() < 1e-9);
        assert!(r.full_res_coverage >= 0.0 && r.full_res_coverage <= 1.0);
    }

    #[test]
    fn zero_max_level_is_exactly_full_resolution() {
        let p = LodPolicy::new(0.0, 0.1, 0);
        for d in [0.0, 1.0, 100.0] {
            assert_eq!(p.level_for_distance(d), LodLevel(0));
        }
    }
}
