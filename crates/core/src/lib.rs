//! # viz-core — the application-aware data replacement policy
//!
//! The paper's primary contribution (Yu, Yu, Jiang & Wang, IPPS 2017):
//! prediction of visualization data accesses by camera-position sampling
//! (`T_visible`, Section IV-B), entropy-based block importance
//! (`T_important`, Section IV-C), the optimal vicinal-radius model
//! (Eq. 6, Section V-B2), and the Algorithm 1 I/O optimization engine that
//! pre-loads important blocks, pins the working set, and overlaps
//! prefetching with rendering.
//!
//! - [`radius`] — the Eq. 6 radius model.
//! - [`importance`] — `T_important` construction and queries.
//! - [`sampling`] — camera lattice, `T_visible` build, O(1) nearest lookup.
//! - [`session`] — Algorithm 1 and the FIFO/LRU baselines over the
//!   simulated hierarchy; per-step and aggregate metrics.
//! - [`degraded`] — per-frame I/O budgets over the real fetch engine:
//!   frames whose demand reads miss their deadline render with resident
//!   blocks only instead of stalling.
//! - [`flight`] — per-client camera flights: one viewer's pose sequence +
//!   table handles, turned into per-frame demand/prefetch requests for the
//!   serve layer's session registry.
//! - [`overlap`] — compatibility wrapper over the `viz-fetch` engine: the
//!   original single-worker [`Prefetcher`] API for disk-backed examples.
//!   New code should use `viz_fetch` directly (worker pools,
//!   entropy-priority prefetch, coalescing, cancellation).
//! - [`report`] — figure/table emission helpers for the bench harness.
//!
//! # Example — the paper's pipeline end to end
//!
//! ```
//! use viz_core::{
//!     run_session, AppAwareConfig, ImportanceTable, RadiusModel, RadiusRule,
//!     SamplingConfig, SessionConfig, Strategy, VisibleTable,
//! };
//! use viz_geom::angle::deg_to_rad;
//! use viz_geom::{CameraPath, ExplorationDomain, SphericalPath, Vec3};
//! use viz_volume::{BrickLayout, DatasetKind, DatasetSpec};
//!
//! // Dataset + partition.
//! let spec = DatasetSpec::new(DatasetKind::Ball3d, 32, 7);
//! let field = spec.materialize(0, 0.0);
//! let layout = BrickLayout::with_target_blocks(field.dims, 64);
//!
//! // T_important (Section IV-C) and T_visible (Section IV-B).
//! let importance = ImportanceTable::from_field(&layout, &field, 64);
//! let angle = deg_to_rad(15.0);
//! let sampling = SamplingConfig::paper_default(2.0, 3.2, angle).with_target_samples(256);
//! let t_visible = VisibleTable::build(
//!     sampling,
//!     &layout,
//!     RadiusRule::Optimal(RadiusModel::new(0.25, angle)),
//!     Some((&importance, layout.num_blocks() / 4)),
//! );
//!
//! // Replay an orbit under Algorithm 1.
//! let domain = ExplorationDomain::new(Vec3::ZERO, 2.0, 3.2);
//! let poses = SphericalPath::new(domain, 2.5, 10.0, angle).generate(40);
//! let cfg = SessionConfig::paper(0.5, layout.nominal_block_bytes());
//! let sigma = importance.sigma_for_fraction(0.5);
//! let report = run_session(
//!     &cfg,
//!     &layout,
//!     &Strategy::AppAware(AppAwareConfig::paper(sigma)),
//!     &poses,
//!     Some((&t_visible, &importance)),
//! );
//! assert!(report.miss_rate < 1.0);
//! assert_eq!(report.steps, 40);
//! ```

#![warn(missing_docs)]

pub mod adaptive;
pub mod degraded;
pub mod distribution;
pub mod eval;
pub mod flight;
pub mod histable;
pub mod importance;
pub mod lod;
pub mod multivar;
pub mod overlap;
pub mod persist;
pub mod prediction;
pub mod radius;
pub mod replay;
pub mod report;
pub mod sampling;
pub mod session;
pub mod trace;

pub use adaptive::{
    AdaptiveSigma, ControllerConfig, Hysteresis, IntegralController, SigmaController,
};
pub use degraded::{fetch_frame, FrameFetchReport};
pub use distribution::{parallel_fetch_time, serial_fetch_time, DeviceId, Distribution};
pub use eval::{across_seeds, RunningStats};
pub use flight::{ClientFlight, FrameRequest};
pub use histable::BlockHistogramTable;
pub use importance::{ImportanceEntry, ImportanceTable};
pub use lod::{run_lod_session, LodPolicy, LodReport};
pub use multivar::{
    run_multivar_session, ExplorationScript, MultiVarReport, MultiVarStrategy, ScriptStep,
};
pub use overlap::{BlockPool, PrefetchStats, Prefetcher};
pub use persist::{load_tables, save_tables};
pub use prediction::extrapolate_pose;
pub use radius::RadiusModel;
pub use replay::{compare, Comparison, JournalEntry, MetricDelta};
pub use report::{Metric, Row, Table};
pub use sampling::{
    visible_blocks, visible_blocks_brute_force, RadiusRule, SamplingConfig, VisibleTable,
};
pub use session::{
    compute_visibility, demand_trace, run_session, run_session_precomputed, AppAwareConfig,
    PredictorKind, RenderModel, SessionConfig, SessionReport, StepMetrics, Strategy,
};
pub use trace::ReuseProfile;
