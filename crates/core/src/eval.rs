//! Multi-seed evaluation: mean/deviation summaries across repeated runs.
//!
//! The paper reports single-run numbers; random paths make those noisy.
//! This module aggregates any per-run metric across seeds so the bench
//! harness can report `mean ± std` and shape checks can bound variance.

use serde::{Deserialize, Serialize};

/// Streaming mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        RunningStats { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample (n−1) standard deviation; 0 with fewer than 2 observations.
    pub fn std_dev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// `mean ± std` rendered for reports.
    pub fn display(&self) -> String {
        format!("{:.4} ± {:.4}", self.mean(), self.std_dev())
    }
}

/// Run a closure once per seed and summarize a metric across the runs.
pub fn across_seeds<F: FnMut(u64) -> f64>(seeds: &[u64], mut run: F) -> RunningStats {
    let mut stats = RunningStats::new();
    for &s in seeds {
        stats.push(run(s));
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_mean_and_std() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample std dev of that classic set is ~2.138.
        assert!((s.std_dev() - 2.138).abs() < 0.01);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn empty_and_single() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), None);
        let mut s = RunningStats::new();
        s.push(3.0);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.std_dev(), 0.0);
    }

    #[test]
    fn welford_matches_two_pass() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 37) % 100) as f64 * 0.1).collect();
        let mut s = RunningStats::new();
        for &x in &xs {
            s.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-9);
        assert!((s.std_dev() - var.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn across_seeds_runs_every_seed() {
        let mut seen = Vec::new();
        let stats = across_seeds(&[1, 2, 3, 4], |s| {
            seen.push(s);
            s as f64
        });
        assert_eq!(seen, vec![1, 2, 3, 4]);
        assert_eq!(stats.mean(), 2.5);
    }

    #[test]
    fn display_format() {
        let mut s = RunningStats::new();
        s.push(1.0);
        s.push(3.0);
        assert_eq!(s.display(), "2.0000 ± 1.4142");
    }

    #[test]
    fn session_miss_rate_is_stable_across_seeds() {
        // The headline claim should not be a seed artifact: OPT's miss rate
        // varies little across random paths.
        use crate::importance::ImportanceTable;
        use crate::sampling::{RadiusRule, SamplingConfig, VisibleTable};
        use crate::session::{run_session, AppAwareConfig, SessionConfig, Strategy};
        use viz_geom::angle::deg_to_rad;
        use viz_geom::{CameraPath, ExplorationDomain, RandomWalkPath, Vec3};
        use viz_volume::{BrickLayout, Dims3};

        let layout = BrickLayout::new(Dims3::cube(48), Dims3::cube(8));
        let imp = ImportanceTable::from_entropies(vec![2.0; layout.num_blocks()], 32);
        let cfg_s = SamplingConfig {
            n_theta: 6,
            n_phi: 12,
            n_dist: 2,
            d_min: 2.0,
            d_max: 3.2,
            vicinal_points: 4,
            view_angle: deg_to_rad(15.0),
            seed: 9,
        };
        let tv = VisibleTable::build(cfg_s, &layout, RadiusRule::Fixed(0.2), None);
        let cfg = SessionConfig::paper(0.5, layout.nominal_block_bytes());
        let dom = ExplorationDomain::new(Vec3::ZERO, 2.0, 3.2);
        let stats = across_seeds(&[11, 22, 33, 44, 55], |seed| {
            let path =
                RandomWalkPath::new(dom, 2.5, 5.0, 10.0, deg_to_rad(15.0), seed).generate(60);
            run_session(
                &cfg,
                &layout,
                &Strategy::AppAware(AppAwareConfig::paper(0.0)),
                &path,
                Some((&tv, &imp)),
            )
            .miss_rate
        });
        assert!(stats.std_dev() < stats.mean().max(0.02), "unstable: {}", stats.display());
    }
}
