//! Session journaling: persist experiment reports and diff them.
//!
//! Reproduction work lives and dies by "did this change move the numbers?".
//! A journal entry freezes a run's full report plus the knobs that produced
//! it; [`compare`] diffs two entries metric-by-metric with a tolerance so
//! CI (or a human) can spot regressions without eyeballing logs.

use crate::adaptive::AdaptiveSigma;
use crate::session::{
    AppAwareConfig, PredictorKind, RenderModel, SessionConfig, SessionReport, StepMetrics, Strategy,
};
use bytes::{Buf, BufMut};
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;
use viz_cache::{PolicyKind, TierCost};

const JRN_MAGIC: &[u8; 4] = b"VJRN";
const JRN_VERSION: u16 = 1;

fn jerr(m: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, m.into())
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut &[u8]) -> io::Result<String> {
    if buf.remaining() < 4 {
        return Err(jerr("truncated string length"));
    }
    let n = buf.get_u32_le() as usize;
    if buf.remaining() < n {
        return Err(jerr("truncated string payload"));
    }
    let s = std::str::from_utf8(&buf[..n]).map_err(|e| jerr(format!("bad utf8: {e}")))?.to_string();
    buf.advance(n);
    Ok(s)
}

fn get_f64(buf: &mut &[u8]) -> io::Result<f64> {
    if buf.remaining() < 8 {
        return Err(jerr("truncated f64"));
    }
    Ok(buf.get_f64_le())
}

fn get_u64(buf: &mut &[u8]) -> io::Result<u64> {
    if buf.remaining() < 8 {
        return Err(jerr("truncated u64"));
    }
    Ok(buf.get_u64_le())
}

fn get_u32(buf: &mut &[u8]) -> io::Result<u32> {
    if buf.remaining() < 4 {
        return Err(jerr("truncated u32"));
    }
    Ok(buf.get_u32_le())
}

fn get_u8(buf: &mut &[u8]) -> io::Result<u8> {
    if !buf.has_remaining() {
        return Err(jerr("truncated u8"));
    }
    Ok(buf.get_u8())
}

fn get_bool(buf: &mut &[u8]) -> io::Result<bool> {
    match get_u8(buf)? {
        0 => Ok(false),
        1 => Ok(true),
        b => Err(jerr(format!("bad bool byte {b}"))),
    }
}

/// A frozen experiment run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalEntry {
    /// Free-form experiment label ("fig12a/5deg", ...).
    pub label: String,
    /// Session configuration used.
    pub config: SessionConfig,
    /// Strategy used.
    pub strategy: Strategy,
    /// The measured report.
    pub report: SessionReport,
}

impl JournalEntry {
    /// Bundle a run into a journal entry.
    pub fn new(
        label: &str,
        config: &SessionConfig,
        strategy: &Strategy,
        report: SessionReport,
    ) -> Self {
        JournalEntry {
            label: label.to_string(),
            config: config.clone(),
            strategy: strategy.clone(),
            report,
        }
    }

    /// Serialize to the framed binary journal format (magic `VJRN`,
    /// version, CRC-32 of the body). Unlike [`JournalEntry::save`]'s JSON,
    /// this round-trips bit-exactly (floats are stored as raw IEEE bits)
    /// and has no JSON dependency.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(256 + self.report.per_step.len() * 64);
        buf.put_slice(JRN_MAGIC);
        buf.put_u16_le(JRN_VERSION);
        let crc_at = buf.len();
        buf.put_u32_le(0); // crc placeholder, patched below
        put_str(&mut buf, &self.label);
        // SessionConfig.
        let c = &self.config;
        buf.put_f64_le(c.cache_ratio);
        buf.put_u64_le(c.block_bytes as u64);
        buf.put_f64_le(c.render.base_s);
        buf.put_f64_le(c.render.per_block_s);
        buf.put_f64_le(c.lookup_s_per_entry);
        for t in &c.tier_costs {
            buf.put_f64_le(t.latency_s);
            buf.put_f64_le(t.bandwidth_bps);
        }
        match c.frame_deadline_s {
            Some(d) => {
                buf.put_u8(1);
                buf.put_f64_le(d);
            }
            None => buf.put_u8(0),
        }
        // Strategy.
        match &self.strategy {
            Strategy::Baseline(k) => {
                buf.put_u8(0);
                buf.put_u8(k.code());
            }
            Strategy::AppAware(a) => {
                buf.put_u8(1);
                buf.put_f64_le(a.sigma);
                buf.put_u8(u8::from(a.preload));
                buf.put_u8(u8::from(a.prefetch));
                buf.put_u8(u8::from(a.overlap));
                match &a.adaptive {
                    Some(ad) => {
                        buf.put_u8(1);
                        buf.put_f64_le(ad.gain);
                        buf.put_f64_le(ad.min_sigma);
                        buf.put_f64_le(ad.max_sigma);
                        buf.put_f64_le(ad.target_ratio);
                    }
                    None => buf.put_u8(0),
                }
                buf.put_u8(match a.predictor {
                    PredictorKind::Table => 0,
                    PredictorKind::DeadReckoning => 1,
                });
            }
        }
        // SessionReport.
        let r = &self.report;
        put_str(&mut buf, &r.strategy);
        buf.put_u64_le(r.steps as u64);
        buf.put_u64_le(r.accesses);
        buf.put_u64_le(r.misses);
        buf.put_f64_le(r.miss_rate);
        buf.put_f64_le(r.io_s);
        buf.put_f64_le(r.render_s);
        buf.put_f64_le(r.prefetch_s);
        buf.put_f64_le(r.lookup_s);
        buf.put_f64_le(r.total_s);
        buf.put_u64_le(r.degraded_steps as u64);
        buf.put_u32_le(r.per_step.len() as u32);
        for s in &r.per_step {
            buf.put_u32_le(s.visible as u32);
            buf.put_u32_le(s.misses as u32);
            buf.put_f64_le(s.io_s);
            buf.put_f64_le(s.render_s);
            buf.put_f64_le(s.prefetch_s);
            buf.put_f64_le(s.lookup_s);
            buf.put_f64_le(s.total_s);
            buf.put_u32_le(s.skipped as u32);
            buf.put_u8(u8::from(s.degraded));
        }
        let crc = viz_volume::crc32(&buf[crc_at + 4..]);
        buf[crc_at..crc_at + 4].copy_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Parse a buffer produced by [`JournalEntry::to_bytes`].
    pub fn from_bytes(mut buf: &[u8]) -> io::Result<JournalEntry> {
        if buf.remaining() < 10 {
            return Err(jerr("journal frame too short"));
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != JRN_MAGIC {
            return Err(jerr("bad journal magic"));
        }
        let version = buf.get_u16_le();
        if version != JRN_VERSION {
            return Err(jerr("unsupported journal version"));
        }
        let want = buf.get_u32_le();
        let got = viz_volume::crc32(buf);
        if got != want {
            return Err(jerr(format!(
                "journal checksum mismatch (stored {want:#010x}, computed {got:#010x})"
            )));
        }
        let label = get_str(&mut buf)?;
        let cache_ratio = get_f64(&mut buf)?;
        let block_bytes = get_u64(&mut buf)? as usize;
        let render = RenderModel { base_s: get_f64(&mut buf)?, per_block_s: get_f64(&mut buf)? };
        let lookup_s_per_entry = get_f64(&mut buf)?;
        let mut tier_costs = [TierCost { latency_s: 0.0, bandwidth_bps: 1.0 }; 3];
        for t in &mut tier_costs {
            t.latency_s = get_f64(&mut buf)?;
            t.bandwidth_bps = get_f64(&mut buf)?;
        }
        let frame_deadline_s = if get_bool(&mut buf)? { Some(get_f64(&mut buf)?) } else { None };
        let config = SessionConfig {
            cache_ratio,
            block_bytes,
            render,
            lookup_s_per_entry,
            tier_costs,
            frame_deadline_s,
        };
        let strategy = match get_u8(&mut buf)? {
            0 => {
                let code = get_u8(&mut buf)?;
                Strategy::Baseline(
                    PolicyKind::from_code(code)
                        .ok_or_else(|| jerr(format!("unknown policy code {code}")))?,
                )
            }
            1 => {
                let sigma = get_f64(&mut buf)?;
                let preload = get_bool(&mut buf)?;
                let prefetch = get_bool(&mut buf)?;
                let overlap = get_bool(&mut buf)?;
                let adaptive = if get_bool(&mut buf)? {
                    Some(AdaptiveSigma {
                        gain: get_f64(&mut buf)?,
                        min_sigma: get_f64(&mut buf)?,
                        max_sigma: get_f64(&mut buf)?,
                        target_ratio: get_f64(&mut buf)?,
                    })
                } else {
                    None
                };
                let predictor = match get_u8(&mut buf)? {
                    0 => PredictorKind::Table,
                    1 => PredictorKind::DeadReckoning,
                    t => return Err(jerr(format!("unknown predictor tag {t}"))),
                };
                Strategy::AppAware(AppAwareConfig {
                    sigma,
                    preload,
                    prefetch,
                    overlap,
                    adaptive,
                    predictor,
                })
            }
            t => return Err(jerr(format!("unknown strategy tag {t}"))),
        };
        let strategy_label = get_str(&mut buf)?;
        let steps = get_u64(&mut buf)? as usize;
        let accesses = get_u64(&mut buf)?;
        let misses = get_u64(&mut buf)?;
        let miss_rate = get_f64(&mut buf)?;
        let io_s = get_f64(&mut buf)?;
        let render_s = get_f64(&mut buf)?;
        let prefetch_s = get_f64(&mut buf)?;
        let lookup_s = get_f64(&mut buf)?;
        let total_s = get_f64(&mut buf)?;
        let degraded_steps = get_u64(&mut buf)? as usize;
        let n = get_u32(&mut buf)? as usize;
        let mut per_step = Vec::with_capacity(n);
        for _ in 0..n {
            per_step.push(StepMetrics {
                visible: get_u32(&mut buf)? as usize,
                misses: get_u32(&mut buf)? as usize,
                io_s: get_f64(&mut buf)?,
                render_s: get_f64(&mut buf)?,
                prefetch_s: get_f64(&mut buf)?,
                lookup_s: get_f64(&mut buf)?,
                total_s: get_f64(&mut buf)?,
                skipped: get_u32(&mut buf)? as usize,
                degraded: get_bool(&mut buf)?,
            });
        }
        if buf.has_remaining() {
            return Err(jerr("trailing bytes after journal payload"));
        }
        let report = SessionReport {
            strategy: strategy_label,
            steps,
            accesses,
            misses,
            miss_rate,
            io_s,
            render_s,
            prefetch_s,
            lookup_s,
            total_s,
            degraded_steps,
            per_step,
        };
        Ok(JournalEntry { label, config, strategy, report })
    }

    /// Write as pretty JSON.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let json = serde_json::to_vec_pretty(self).map_err(io::Error::other)?;
        std::fs::write(path, json)
    }

    /// Read back a saved entry.
    pub fn load(path: &Path) -> io::Result<JournalEntry> {
        let bytes = std::fs::read(path)?;
        serde_json::from_slice(&bytes).map_err(io::Error::other)
    }
}

/// One metric's delta between two runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricDelta {
    /// Metric name.
    pub metric: String,
    /// Value in the baseline entry.
    pub baseline: f64,
    /// Value in the candidate entry.
    pub candidate: f64,
    /// `(candidate - baseline) / max(|baseline|, eps)`.
    pub relative: f64,
}

/// Result of comparing two journal entries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Comparison {
    /// Per-metric deltas (all headline metrics, regressed or not).
    pub deltas: Vec<MetricDelta>,
    /// Metrics whose relative change exceeds the tolerance *for the worse*
    /// (higher miss rate / higher times).
    pub regressions: Vec<String>,
}

impl Comparison {
    /// `true` when nothing regressed beyond tolerance.
    pub fn is_clean(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Headline-metric accessor used by [`compare`]'s metric table.
type MetricFn = fn(&SessionReport) -> f64;

/// Compare `candidate` against `baseline` with a relative tolerance
/// (e.g. 0.05 = 5%). Lower is better for every headline metric.
pub fn compare(baseline: &JournalEntry, candidate: &JournalEntry, tolerance: f64) -> Comparison {
    assert!(tolerance >= 0.0, "tolerance must be non-negative");
    let metrics: [(&str, MetricFn); 5] = [
        ("miss_rate", |r| r.miss_rate),
        ("io_s", |r| r.io_s),
        ("prefetch_s", |r| r.prefetch_s),
        ("lookup_s", |r| r.lookup_s),
        ("total_s", |r| r.total_s),
    ];
    let mut deltas = Vec::with_capacity(metrics.len());
    let mut regressions = Vec::new();
    for (name, get) in metrics {
        let b = get(&baseline.report);
        let c = get(&candidate.report);
        let relative = (c - b) / b.abs().max(1e-12);
        if relative > tolerance {
            regressions.push(name.to_string());
        }
        deltas.push(MetricDelta { metric: name.to_string(), baseline: b, candidate: c, relative });
    }
    Comparison { deltas, regressions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{run_session, SessionConfig, Strategy};
    use viz_cache::PolicyKind;
    use viz_geom::angle::deg_to_rad;
    use viz_geom::{CameraPath, ExplorationDomain, SphericalPath, Vec3};
    use viz_volume::{BrickLayout, Dims3};

    fn run_once(deg: f64) -> JournalEntry {
        // 216 blocks / 54-block DRAM: large enough that small steps hit.
        let layout = BrickLayout::new(Dims3::cube(48), Dims3::cube(8));
        let dom = ExplorationDomain::new(Vec3::ZERO, 2.0, 3.2);
        let poses = SphericalPath::new(dom, 2.5, deg, deg_to_rad(15.0)).generate(60);
        let cfg = SessionConfig::paper(0.5, layout.nominal_block_bytes());
        let strategy = Strategy::Baseline(PolicyKind::Lru);
        let report = run_session(&cfg, &layout, &strategy, &poses, None);
        JournalEntry::new(&format!("test/{deg}deg"), &cfg, &strategy, report)
    }

    /// JSON file roundtrip (skipped by the offline harness, which has no
    /// real serde_json).
    #[test]
    fn json_save_load_roundtrip() {
        let dir = std::env::temp_dir().join(format!("viz_journal_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let entry = run_once(5.0);
        let path = dir.join("entry.json");
        entry.save(&path).unwrap();
        let back = JournalEntry::load(&path).unwrap();
        assert_eq!(back, entry);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn binary_roundtrip_is_bit_exact() {
        let entry = run_once(5.0);
        let back = JournalEntry::from_bytes(&entry.to_bytes()).unwrap();
        assert_eq!(back, entry);
    }

    #[test]
    fn binary_roundtrip_covers_appaware_strategy() {
        use crate::adaptive::AdaptiveSigma;
        use crate::session::{AppAwareConfig, PredictorKind, Strategy};
        let mut entry = run_once(5.0);
        entry.strategy = Strategy::AppAware(AppAwareConfig {
            sigma: 1.5,
            preload: true,
            prefetch: true,
            overlap: false,
            adaptive: Some(AdaptiveSigma {
                gain: 0.25,
                min_sigma: 0.0,
                max_sigma: 6.0,
                target_ratio: 0.9,
            }),
            predictor: PredictorKind::DeadReckoning,
        });
        entry.config.frame_deadline_s = Some(0.02);
        let back = JournalEntry::from_bytes(&entry.to_bytes()).unwrap();
        assert_eq!(back, entry);
    }

    #[test]
    fn binary_corruption_rejected() {
        let entry = run_once(5.0);
        let buf = entry.to_bytes();
        // Magic.
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(JournalEntry::from_bytes(&bad).is_err());
        // Version.
        let mut bad = buf.clone();
        bad[4] = 9;
        assert!(JournalEntry::from_bytes(&bad).is_err());
        // Bit rot anywhere in the body trips the checksum.
        let mut rotted = buf.clone();
        let at = buf.len() / 2;
        rotted[at] ^= 0x40;
        let e = JournalEntry::from_bytes(&rotted).unwrap_err();
        assert!(e.to_string().contains("checksum"), "got: {e}");
        // Truncation.
        for cut in [2usize, 9, 40, buf.len() - 1] {
            assert!(JournalEntry::from_bytes(&buf[..cut]).is_err(), "cut at {cut} decoded");
        }
        // Trailing garbage.
        let mut long = buf;
        long.push(0);
        assert!(JournalEntry::from_bytes(&long).is_err());
    }

    #[test]
    fn identical_runs_compare_clean() {
        let a = run_once(5.0);
        let b = run_once(5.0);
        let cmp = compare(&a, &b, 0.01);
        assert!(cmp.is_clean(), "regressions: {:?}", cmp.regressions);
        for d in &cmp.deltas {
            assert_eq!(d.relative, 0.0, "{} drifted", d.metric);
        }
    }

    /// A journal entry with hand-set metrics (tests the comparator itself,
    /// independent of simulator behaviour).
    fn synthetic(miss: f64, io: f64, total: f64) -> JournalEntry {
        let mut e = run_once(5.0);
        e.report.miss_rate = miss;
        e.report.io_s = io;
        e.report.total_s = total;
        e
    }

    #[test]
    fn worse_run_is_flagged() {
        let good = synthetic(0.05, 1.0, 10.0);
        let bad = synthetic(0.20, 4.0, 15.0);
        let cmp = compare(&good, &bad, 0.05);
        assert!(!cmp.is_clean());
        assert!(cmp.regressions.contains(&"miss_rate".to_string()));
        assert!(cmp.regressions.contains(&"io_s".to_string()));
        assert!(cmp.regressions.contains(&"total_s".to_string()));
    }

    #[test]
    fn improvement_is_not_a_regression() {
        let bad = synthetic(0.20, 4.0, 15.0);
        let good = synthetic(0.05, 1.0, 10.0);
        let cmp = compare(&bad, &good, 0.05);
        assert!(cmp.is_clean(), "improvements flagged: {:?}", cmp.regressions);
    }

    #[test]
    fn tolerance_suppresses_noise() {
        let a = run_once(5.0);
        let mut b = run_once(5.0);
        // Nudge io_s by 1%.
        b.report.io_s *= 1.01;
        assert!(compare(&a, &b, 0.05).is_clean());
        assert!(!compare(&a, &b, 0.001).is_clean());
    }

    #[test]
    fn missing_file_errors() {
        assert!(JournalEntry::load(Path::new("/nonexistent/journal.json")).is_err());
    }
}
