//! Session journaling: persist experiment reports and diff them.
//!
//! Reproduction work lives and dies by "did this change move the numbers?".
//! A journal entry freezes a run's full report plus the knobs that produced
//! it; [`compare`] diffs two entries metric-by-metric with a tolerance so
//! CI (or a human) can spot regressions without eyeballing logs.

use crate::session::{SessionConfig, SessionReport, Strategy};
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;

/// A frozen experiment run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalEntry {
    /// Free-form experiment label ("fig12a/5deg", ...).
    pub label: String,
    /// Session configuration used.
    pub config: SessionConfig,
    /// Strategy used.
    pub strategy: Strategy,
    /// The measured report.
    pub report: SessionReport,
}

impl JournalEntry {
    /// Bundle a run into a journal entry.
    pub fn new(
        label: &str,
        config: &SessionConfig,
        strategy: &Strategy,
        report: SessionReport,
    ) -> Self {
        JournalEntry {
            label: label.to_string(),
            config: config.clone(),
            strategy: strategy.clone(),
            report,
        }
    }

    /// Write as pretty JSON.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let json = serde_json::to_vec_pretty(self).map_err(io::Error::other)?;
        std::fs::write(path, json)
    }

    /// Read back a saved entry.
    pub fn load(path: &Path) -> io::Result<JournalEntry> {
        let bytes = std::fs::read(path)?;
        serde_json::from_slice(&bytes).map_err(io::Error::other)
    }
}

/// One metric's delta between two runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricDelta {
    /// Metric name.
    pub metric: String,
    /// Value in the baseline entry.
    pub baseline: f64,
    /// Value in the candidate entry.
    pub candidate: f64,
    /// `(candidate - baseline) / max(|baseline|, eps)`.
    pub relative: f64,
}

/// Result of comparing two journal entries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Comparison {
    /// Per-metric deltas (all headline metrics, regressed or not).
    pub deltas: Vec<MetricDelta>,
    /// Metrics whose relative change exceeds the tolerance *for the worse*
    /// (higher miss rate / higher times).
    pub regressions: Vec<String>,
}

impl Comparison {
    /// `true` when nothing regressed beyond tolerance.
    pub fn is_clean(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Compare `candidate` against `baseline` with a relative tolerance
/// (e.g. 0.05 = 5%). Lower is better for every headline metric.
pub fn compare(baseline: &JournalEntry, candidate: &JournalEntry, tolerance: f64) -> Comparison {
    assert!(tolerance >= 0.0, "tolerance must be non-negative");
    let metrics: [(&str, fn(&SessionReport) -> f64); 5] = [
        ("miss_rate", |r| r.miss_rate),
        ("io_s", |r| r.io_s),
        ("prefetch_s", |r| r.prefetch_s),
        ("lookup_s", |r| r.lookup_s),
        ("total_s", |r| r.total_s),
    ];
    let mut deltas = Vec::with_capacity(metrics.len());
    let mut regressions = Vec::new();
    for (name, get) in metrics {
        let b = get(&baseline.report);
        let c = get(&candidate.report);
        let relative = (c - b) / b.abs().max(1e-12);
        if relative > tolerance {
            regressions.push(name.to_string());
        }
        deltas.push(MetricDelta { metric: name.to_string(), baseline: b, candidate: c, relative });
    }
    Comparison { deltas, regressions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{run_session, SessionConfig, Strategy};
    use viz_cache::PolicyKind;
    use viz_geom::angle::deg_to_rad;
    use viz_geom::{CameraPath, ExplorationDomain, SphericalPath, Vec3};
    use viz_volume::{BrickLayout, Dims3};

    fn run_once(deg: f64) -> JournalEntry {
        // 216 blocks / 54-block DRAM: large enough that small steps hit.
        let layout = BrickLayout::new(Dims3::cube(48), Dims3::cube(8));
        let dom = ExplorationDomain::new(Vec3::ZERO, 2.0, 3.2);
        let poses = SphericalPath::new(dom, 2.5, deg, deg_to_rad(15.0)).generate(60);
        let cfg = SessionConfig::paper(0.5, layout.nominal_block_bytes());
        let strategy = Strategy::Baseline(PolicyKind::Lru);
        let report = run_session(&cfg, &layout, &strategy, &poses, None);
        JournalEntry::new(&format!("test/{deg}deg"), &cfg, &strategy, report)
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join(format!("viz_journal_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let entry = run_once(5.0);
        let path = dir.join("entry.json");
        entry.save(&path).unwrap();
        let back = JournalEntry::load(&path).unwrap();
        assert_eq!(back, entry);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn identical_runs_compare_clean() {
        let a = run_once(5.0);
        let b = run_once(5.0);
        let cmp = compare(&a, &b, 0.01);
        assert!(cmp.is_clean(), "regressions: {:?}", cmp.regressions);
        for d in &cmp.deltas {
            assert_eq!(d.relative, 0.0, "{} drifted", d.metric);
        }
    }

    /// A journal entry with hand-set metrics (tests the comparator itself,
    /// independent of simulator behaviour).
    fn synthetic(miss: f64, io: f64, total: f64) -> JournalEntry {
        let mut e = run_once(5.0);
        e.report.miss_rate = miss;
        e.report.io_s = io;
        e.report.total_s = total;
        e
    }

    #[test]
    fn worse_run_is_flagged() {
        let good = synthetic(0.05, 1.0, 10.0);
        let bad = synthetic(0.20, 4.0, 15.0);
        let cmp = compare(&good, &bad, 0.05);
        assert!(!cmp.is_clean());
        assert!(cmp.regressions.contains(&"miss_rate".to_string()));
        assert!(cmp.regressions.contains(&"io_s".to_string()));
        assert!(cmp.regressions.contains(&"total_s".to_string()));
    }

    #[test]
    fn improvement_is_not_a_regression() {
        let bad = synthetic(0.20, 4.0, 15.0);
        let good = synthetic(0.05, 1.0, 10.0);
        let cmp = compare(&bad, &good, 0.05);
        assert!(cmp.is_clean(), "improvements flagged: {:?}", cmp.regressions);
    }

    #[test]
    fn tolerance_suppresses_noise() {
        let a = run_once(5.0);
        let mut b = run_once(5.0);
        // Nudge io_s by 1%.
        b.report.io_s *= 1.01;
        assert!(compare(&a, &b, 0.05).is_clean());
        assert!(!compare(&a, &b, 0.001).is_clean());
    }

    #[test]
    fn missing_file_errors() {
        assert!(JournalEntry::load(Path::new("/nonexistent/journal.json")).is_err());
    }
}
