//! Camera-motion extrapolation (dead reckoning): the natural alternative
//! to the paper's `T_visible` table lookup.
//!
//! Instead of pre-sampling Ω, one can extrapolate the camera's recent
//! motion — rotate the current view direction by the same arc it just
//! traversed, repeat the distance change — and compute exact visibility at
//! the extrapolated pose. The ablation bench compares both: extrapolation
//! needs no pre-processing and is exact *when motion is smooth*, but it
//! carries a per-frame visibility computation and whiffs whenever the user
//! changes direction — precisely the "random or nearly randomly" behaviour
//! the paper designs for (§I).

use viz_geom::{CameraPose, Quat};

/// Extrapolate the next camera pose from the last two poses: apply the same
/// direction rotation again and repeat the (log-space) distance step.
/// With a single pose (or identical poses) the prediction is the current
/// pose itself.
pub fn extrapolate_pose(prev: Option<&CameraPose>, current: &CameraPose) -> CameraPose {
    let Some(prev) = prev else {
        return *current;
    };
    let d_prev = prev.distance().max(1e-9);
    let d_cur = current.distance().max(1e-9);
    let dir_prev = prev.view_direction();
    let dir_cur = current.view_direction();
    // Rotation that carried prev → current, applied once more.
    let arc = Quat::between(dir_prev, dir_cur);
    let dir_next = arc.rotate(dir_cur).normalize();
    // Log-space distance extrapolation (matches zoom semantics).
    let d_next = (2.0 * d_cur.ln() - d_prev.ln()).exp();
    CameraPose::from_direction_distance(dir_next, d_next, current.center, current.view_angle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use viz_geom::angle::{deg_to_rad, rad_to_deg};
    use viz_geom::{CameraPath, ExplorationDomain, SphericalPath, Vec3};

    #[test]
    fn no_history_predicts_current() {
        let pose = CameraPose::orbit(40.0, 70.0, 2.5, 15.0);
        let p = extrapolate_pose(None, &pose);
        assert_eq!(p, pose);
    }

    #[test]
    fn constant_orbit_is_predicted_exactly() {
        let dom = ExplorationDomain::new(Vec3::ZERO, 2.0, 3.2);
        let poses = SphericalPath::new(dom, 2.5, 7.0, deg_to_rad(15.0)).generate(5);
        let predicted = extrapolate_pose(Some(&poses[1]), &poses[2]);
        // A great-circle orbit with constant step: the extrapolated pose
        // must coincide with the actual next pose.
        assert!(
            predicted.position.distance(poses[3].position) < 1e-9,
            "off by {}",
            predicted.position.distance(poses[3].position)
        );
    }

    #[test]
    fn stationary_camera_predicts_itself() {
        let pose = CameraPose::orbit(40.0, 70.0, 2.5, 15.0);
        let p = extrapolate_pose(Some(&pose), &pose);
        assert!(p.position.distance(pose.position) < 1e-9);
    }

    #[test]
    fn zoom_is_extrapolated_geometrically() {
        let center = Vec3::ZERO;
        let a = CameraPose::from_direction_distance(Vec3::X, 4.0, center, 0.5);
        let b = CameraPose::from_direction_distance(Vec3::X, 2.0, center, 0.5);
        let p = extrapolate_pose(Some(&a), &b);
        // 4 → 2 → predicted 1 (geometric).
        assert!((p.distance() - 1.0).abs() < 1e-9, "d = {}", p.distance());
    }

    #[test]
    fn rotation_step_is_repeated() {
        let a = CameraPose::orbit(90.0, 0.0, 2.5, 15.0);
        let b = CameraPose::orbit(90.0, 10.0, 2.5, 15.0);
        let p = extrapolate_pose(Some(&a), &b);
        let step = rad_to_deg(b.direction_change(&p));
        assert!((step - 10.0).abs() < 1e-6, "extrapolated step {step}");
    }

    #[test]
    fn view_angle_and_center_are_preserved() {
        let a = CameraPose::orbit(10.0, 0.0, 2.5, 22.0);
        let b = CameraPose::orbit(10.0, 5.0, 2.6, 22.0);
        let p = extrapolate_pose(Some(&a), &b);
        assert_eq!(p.view_angle, b.view_angle);
        assert_eq!(p.center, b.center);
    }
}
