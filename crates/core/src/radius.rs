//! The vicinal-sphere radius model (paper §V-B2, Fig. 10, Eqs. 3–6).
//!
//! Around each sampled camera position `v` the paper aggregates the view
//! frusta of points `v'` inside a small sphere φ of radius `r`. The ideal
//! `r` makes the aggregated frustum ζ — clipped between the volume's near
//! and far planes — exactly fill the fast-memory cache.
//!
//! Derivation (volume edge normalized to 2, camera at distance `d`,
//! `τ = tan(θ/2)`): the aggregated frustum is a cone with apex `r/τ` behind
//! the camera, clipped by the planes at distances `d∓1`. With
//! `a = d + r/τ`, the clipped volume is
//!
//! ```text
//! V(ζ) = π/3 · τ² · [(a+1)³ − (a−1)³] = (2π/3) · τ² · (3a² + 1)
//! ```
//!
//! Setting `V(ζ)/8 = ρ` (the fast-memory fraction of the dataset, the
//! paper's cache-size ratio) and solving for `r` gives Eq. 6:
//!
//! ```text
//! r(d) = sqrt(4ρ/π − τ²/3) − d·τ
//! ```

use serde::{Deserialize, Serialize};

/// Parameters of the radius model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RadiusModel {
    /// `ρ`: fast-memory cache size as a fraction of the slow store holding
    /// the full dataset (the paper's "ratio of cache size").
    pub cache_ratio: f64,
    /// Full frustum view angle θ in radians.
    pub view_angle: f64,
    /// Lower clamp for the returned radius: the paper requires `r` to be
    /// larger than the camera-path step so the vicinal area contains the
    /// *next* camera position (§IV-B).
    pub min_radius: f64,
}

impl RadiusModel {
    /// Create a model; `cache_ratio` in (0, 1], positive `view_angle` < π.
    pub fn new(cache_ratio: f64, view_angle: f64) -> Self {
        assert!(cache_ratio > 0.0 && cache_ratio <= 1.0, "cache ratio out of (0, 1]");
        assert!(view_angle > 0.0 && view_angle < std::f64::consts::PI, "view angle out of (0, pi)");
        RadiusModel { cache_ratio, view_angle, min_radius: 1e-3 }
    }

    /// Set the minimum-radius clamp (e.g. the camera-path step length).
    pub fn with_min_radius(mut self, min_radius: f64) -> Self {
        assert!(min_radius >= 0.0);
        self.min_radius = min_radius;
        self
    }

    /// Eq. 6: the optimal vicinal radius for view distance `d` (normalized
    /// units: volume edge = 2). Clamped below by `min_radius` — when the
    /// camera is so far away that even `r = 0` over-predicts, the entropy
    /// filter of §IV-C takes over (the paper's own fallback).
    pub fn optimal_radius(&self, d: f64) -> f64 {
        let tau = (self.view_angle * 0.5).tan();
        let arg = 4.0 * self.cache_ratio / std::f64::consts::PI - tau * tau / 3.0;
        let r = if arg > 0.0 { arg.sqrt() - d * tau } else { f64::NEG_INFINITY };
        r.max(self.min_radius)
    }

    /// Volume of the aggregated frustum ζ for a vicinal radius `r` at view
    /// distance `d` (the paper's Eq. 3 numerator) in normalized units.
    ///
    /// Used by tests to verify that `optimal_radius` solves the fill
    /// condition, and by the benches to report predicted working-set size.
    pub fn aggregated_frustum_volume(&self, d: f64, r: f64) -> f64 {
        let tau = (self.view_angle * 0.5).tan();
        let a = d + r / tau;
        // Clip the cone between the near (a-1) and far (a+1) planes; if the
        // camera is inside the volume (a < 1) only the forward part counts.
        let h0 = (a - 1.0).max(0.0);
        let h1 = a + 1.0;
        std::f64::consts::PI / 3.0 * tau * tau * (h1.powi(3) - h0.powi(3))
    }

    /// Fraction of the (normalized, volume 8) dataset the aggregated
    /// frustum covers.
    pub fn predicted_fraction(&self, d: f64, r: f64) -> f64 {
        self.aggregated_frustum_volume(d, r) / 8.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viz_geom::angle::deg_to_rad;

    #[test]
    fn optimal_radius_satisfies_fill_condition() {
        // V(ζ(r*)) / 8 must equal the cache ratio whenever r* is interior
        // (not clamped).
        for &ratio in &[0.3, 0.5, 0.7] {
            for &d in &[2.0, 2.5, 3.0] {
                let m = RadiusModel::new(ratio, deg_to_rad(30.0));
                let r = m.optimal_radius(d);
                if r > m.min_radius {
                    let frac = m.predicted_fraction(d, r);
                    assert!((frac - ratio).abs() < 1e-9, "ratio {ratio} d {d}: fraction {frac}");
                }
            }
        }
    }

    #[test]
    fn radius_shrinks_with_distance() {
        // Intuition from §IV-B: far cameras see more, so the vicinal sphere
        // must shrink to keep the prediction within cache.
        let m = RadiusModel::new(0.5, deg_to_rad(30.0));
        let r2 = m.optimal_radius(2.0);
        let r3 = m.optimal_radius(3.0);
        assert!(r2 > r3, "r(2) = {r2} should exceed r(3) = {r3}");
    }

    #[test]
    fn radius_grows_with_cache_ratio() {
        let d = 2.5;
        let small = RadiusModel::new(0.3, deg_to_rad(30.0)).optimal_radius(d);
        let large = RadiusModel::new(0.7, deg_to_rad(30.0)).optimal_radius(d);
        assert!(large > small);
    }

    #[test]
    fn radius_shrinks_with_wider_view_angle() {
        let d = 2.5;
        let narrow = RadiusModel::new(0.5, deg_to_rad(20.0)).optimal_radius(d);
        let wide = RadiusModel::new(0.5, deg_to_rad(45.0)).optimal_radius(d);
        assert!(narrow > wide, "narrow {narrow} vs wide {wide}");
    }

    #[test]
    fn clamps_to_min_radius_when_over_budget() {
        // Far camera + wide angle + small cache: formula would go negative.
        let m = RadiusModel::new(0.05, deg_to_rad(60.0)).with_min_radius(0.01);
        let r = m.optimal_radius(10.0);
        assert_eq!(r, 0.01);
    }

    #[test]
    fn frustum_volume_is_monotone_in_radius() {
        let m = RadiusModel::new(0.5, deg_to_rad(30.0));
        let v1 = m.aggregated_frustum_volume(2.5, 0.05);
        let v2 = m.aggregated_frustum_volume(2.5, 0.10);
        assert!(v2 > v1);
    }

    #[test]
    fn camera_inside_volume_clips_near_cone() {
        let m = RadiusModel::new(0.5, deg_to_rad(30.0));
        // d + r/τ < 1: the near clip collapses to the apex.
        let v = m.aggregated_frustum_volume(0.2, 0.01);
        assert!(v > 0.0 && v.is_finite());
    }

    #[test]
    fn paper_predefined_radii_are_suboptimal() {
        // Fig. 11 compares r* against fixed r ∈ {0.1, 0.075, 0.05, 0.025}.
        // The fixed values mispredict the cache fraction at most distances.
        let m = RadiusModel::new(0.25, deg_to_rad(30.0));
        let d = 2.2;
        let r_star = m.optimal_radius(d);
        let err_star = (m.predicted_fraction(d, r_star) - 0.25).abs();
        for fixed in [0.1, 0.075, 0.05, 0.025] {
            let err_fixed = (m.predicted_fraction(d, fixed) - 0.25).abs();
            assert!(err_star <= err_fixed + 1e-12, "fixed r = {fixed} beat the optimum");
        }
    }

    #[test]
    #[should_panic]
    fn invalid_ratio_panics() {
        RadiusModel::new(0.0, 0.5);
    }

    #[test]
    #[should_panic]
    fn invalid_angle_panics() {
        RadiusModel::new(0.5, 0.0);
    }
}
