//! Threaded overlap prefetching: the real-data counterpart of the
//! simulated overlap in [`crate::session`].
//!
//! Algorithm 1 hides prefetch latency behind rendering. In the simulator
//! that is a `max(render, prefetch)` accounting rule; on real data it is
//! the [`viz_fetch`] engine: a sharded resident [`BlockPool`], a priority
//! scheduler with demand-over-prefetch ordering, request coalescing, and
//! generation-based cancellation. This module keeps the original
//! single-worker [`Prefetcher`] API alive as a thin wrapper over a
//! 1-worker [`viz_fetch::FetchEngine`] for the callers that predate the
//! engine; new code should use `viz_fetch` directly for worker pools,
//! entropy-priority prefetch, and cancellation.

use std::sync::Arc;
use viz_fetch::{FetchConfig, FetchEngine};
use viz_volume::{BlockKey, BlockSource};

pub use viz_fetch::BlockPool;

/// Counters surfaced by [`Prefetcher::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchStats {
    /// Blocks successfully loaded into the pool.
    pub fetched: u64,
    /// Requests rejected because the queue was full. Non-zero means the
    /// producer outruns the worker — saturation is observable, not silent.
    pub dropped: u64,
    /// Requests merged onto a resident block, queued request, or
    /// in-flight read.
    pub coalesced: u64,
    /// Reads that failed at the source (e.g. missing block files).
    pub errors: u64,
}

/// Background worker that loads blocks from a [`BlockSource`] into a
/// [`BlockPool`], overlapping with the caller's rendering work.
///
/// Compatibility wrapper over a single-worker [`FetchEngine`].
pub struct Prefetcher {
    engine: FetchEngine,
}

impl Prefetcher {
    /// Spawn the worker. `queue_depth` bounds the request queue; requests
    /// beyond it are dropped and counted in [`PrefetchStats::dropped`].
    pub fn spawn(source: Arc<dyn BlockSource>, pool: Arc<BlockPool>, queue_depth: usize) -> Self {
        assert!(queue_depth > 0);
        Prefetcher {
            engine: FetchEngine::spawn(
                source,
                pool,
                FetchConfig { workers: 1, queue_cap: queue_depth, ..FetchConfig::default() },
            ),
        }
    }

    /// Enqueue a block for background loading. Returns `false` when the
    /// request was dropped (queue full) — see [`Self::stats`].
    pub fn request(&self, key: BlockKey) -> bool {
        self.engine.prefetch(key, 0.0)
    }

    /// Wait until every previously enqueued request has been serviced.
    pub fn sync(&self) {
        self.engine.sync();
    }

    /// Counter snapshot (drops, coalesced duplicates, errors, loads).
    pub fn stats(&self) -> PrefetchStats {
        let m = self.engine.metrics();
        PrefetchStats {
            fetched: m.completed,
            dropped: m.dropped,
            coalesced: m.coalesced,
            errors: m.errors,
        }
    }

    /// Drain the queue, stop the worker, and return how many blocks it
    /// fetched.
    pub fn shutdown(self) -> u64 {
        self.engine.sync();
        self.engine.shutdown().completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use viz_fetch::InstrumentedSource;
    use viz_volume::{BlockId, MemBlockStore};

    fn store_with(n: u32) -> Arc<MemBlockStore> {
        let s = MemBlockStore::new();
        for i in 0..n {
            s.insert(BlockKey::scalar(BlockId(i)), vec![i as f32; 8]);
        }
        Arc::new(s)
    }

    #[test]
    fn pool_get_insert_remove() {
        let pool = BlockPool::new();
        let key = BlockKey::scalar(BlockId(1));
        assert!(pool.get(key).is_none());
        pool.insert(key, vec![1.0, 2.0]);
        assert_eq!(pool.get(key).unwrap().as_slice(), &[1.0, 2.0]);
        pool.remove(key);
        assert!(pool.get(key).is_none());
        assert_eq!(pool.stats(), (1, 2));
    }

    #[test]
    fn pool_tracks_resident_bytes_and_clears() {
        let pool = BlockPool::new();
        pool.insert(BlockKey::scalar(BlockId(0)), vec![0.0; 16]);
        pool.insert(BlockKey::scalar(BlockId(1)), vec![0.0; 8]);
        assert_eq!(pool.bytes_resident(), 96);
        pool.clear();
        assert_eq!(pool.bytes_resident(), 0);
        assert!(pool.is_empty());
    }

    #[test]
    fn prefetcher_loads_requested_blocks() {
        let source = store_with(16);
        let pool = Arc::new(BlockPool::new());
        let pf = Prefetcher::spawn(source, pool.clone(), 32);
        for i in 0..16u32 {
            assert!(pf.request(BlockKey::scalar(BlockId(i))));
        }
        pf.sync();
        assert_eq!(pool.len(), 16);
        assert_eq!(pool.get(BlockKey::scalar(BlockId(5))).unwrap().as_slice(), &[5.0f32; 8]);
        let fetched = pf.shutdown();
        assert_eq!(fetched, 16);
    }

    #[test]
    fn duplicate_requests_fetch_once() {
        let source = store_with(2);
        let pool = Arc::new(BlockPool::new());
        let pf = Prefetcher::spawn(source, pool.clone(), 8);
        for _ in 0..5 {
            pf.request(BlockKey::scalar(BlockId(0)));
        }
        pf.sync();
        assert_eq!(pf.stats().coalesced, 4);
        assert_eq!(pf.shutdown(), 1);
    }

    #[test]
    fn missing_blocks_are_skipped_and_counted() {
        let source = store_with(1);
        let pool = Arc::new(BlockPool::new());
        let pf = Prefetcher::spawn(source, pool.clone(), 8);
        pf.request(BlockKey::scalar(BlockId(0)));
        pf.request(BlockKey::scalar(BlockId(99))); // not in the store
        pf.sync();
        assert_eq!(pool.len(), 1);
        assert_eq!(pf.stats().errors, 1);
        pf.shutdown();
    }

    #[test]
    fn sync_is_a_barrier() {
        let source = store_with(64);
        let pool = Arc::new(BlockPool::new());
        let pf = Prefetcher::spawn(source, pool.clone(), 64);
        for i in 0..64u32 {
            pf.request(BlockKey::scalar(BlockId(i)));
        }
        pf.sync();
        // After sync every requested block must be resident.
        for i in 0..64u32 {
            assert!(pool.contains(BlockKey::scalar(BlockId(i))), "block {i} missing after sync");
        }
        pf.shutdown();
    }

    #[test]
    fn saturation_is_observable_via_dropped_counter() {
        // A slow source and a queue of 1: the third distinct request must
        // find the queue occupied and be dropped, visibly.
        let source = Arc::new(InstrumentedSource::new(store_with(8), Duration::from_millis(20)));
        let pool = Arc::new(BlockPool::new());
        let pf = Prefetcher::spawn(source, pool.clone(), 1);
        let mut accepted = 0u32;
        for i in 0..4u32 {
            if pf.request(BlockKey::scalar(BlockId(i))) {
                accepted += 1;
            }
        }
        pf.sync();
        let stats = pf.stats();
        assert!(stats.dropped >= 1, "queue of 1 with 4 rapid requests must drop");
        assert_eq!(accepted as u64 + stats.dropped, 4);
        assert_eq!(pool.len() as u64, stats.fetched);
        pf.shutdown();
    }

    #[test]
    fn drop_shuts_worker_down() {
        let source = store_with(4);
        let pool = Arc::new(BlockPool::new());
        {
            let pf = Prefetcher::spawn(source, pool.clone(), 8);
            pf.request(BlockKey::scalar(BlockId(0)));
            // Dropped without explicit shutdown.
        }
        // Reaching here without hanging is the assertion.
    }
}
